// Command goldencheck regenerates EXPERIMENTS.md at seed 1 into a
// temporary location and compares it section-by-section against the
// committed file. Any "### "-titled section whose content differs —
// or that exists on only one side — fails the run, with the first
// diverging line reported per section. CI runs this on every push, so
// the committed results document can never drift from what the code
// actually produces: the determinism contract (bit-identical runs at
// any -parallel setting) is what makes a byte comparison meaningful.
//
//	go run ./scripts/goldencheck                # compare EXPERIMENTS.md
//	go run ./scripts/goldencheck -md OTHER.md   # compare another doc
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	committed := flag.String("md", "EXPERIMENTS.md", "committed results document to check")
	quick := flag.Bool("quick", false, "pass -quick to the regeneration (only valid if the committed doc was generated with -quick)")
	flag.Parse()

	want, err := os.ReadFile(*committed)
	if err != nil {
		fatalf("%v", err)
	}

	dir, err := os.MkdirTemp("", "goldencheck")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(dir)
	fresh := filepath.Join(dir, "EXPERIMENTS.md")
	args := []string{"run", "./cmd/abwsim", "-exp", "all", "-seed", "1", "-md", fresh}
	if *quick {
		args = append(args, "-quick")
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatalf("regeneration failed: %v", err)
	}
	got, err := os.ReadFile(fresh)
	if err != nil {
		fatalf("%v", err)
	}

	wantSec, wantOrder := sections(string(want))
	gotSec, gotOrder := sections(string(got))
	ok := true
	for _, title := range wantOrder {
		g, present := gotSec[title]
		if !present {
			ok = false
			fmt.Fprintf(os.Stderr, "goldencheck: section %q in %s but not regenerated — stale section?\n", title, *committed)
			continue
		}
		if g != wantSec[title] {
			ok = false
			fmt.Fprintf(os.Stderr, "goldencheck: section %q differs:\n%s", title, firstDiff(wantSec[title], g))
		}
	}
	for _, title := range gotOrder {
		if _, present := wantSec[title]; !present {
			ok = false
			fmt.Fprintf(os.Stderr, "goldencheck: regenerated section %q missing from %s — commit a fresh regeneration\n", title, *committed)
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "goldencheck: %s is out of date; regenerate with: go run ./cmd/abwsim -exp all -seed 1 -md %s\n",
			*committed, *committed)
		os.Exit(1)
	}
	fmt.Printf("goldencheck: %s matches a fresh seed-1 regeneration (%d sections)\n", *committed, len(wantOrder))
}

// sections splits a results document into its preamble (everything
// before the first "### " heading) and one chunk per "### " section,
// keyed by heading line. Order is returned for stable reporting.
func sections(doc string) (map[string]string, []string) {
	out := map[string]string{}
	var order []string
	title := "(preamble)"
	var body strings.Builder
	flush := func() {
		out[title] = body.String()
		order = append(order, title)
		body.Reset()
	}
	for _, line := range strings.SplitAfter(doc, "\n") {
		if strings.HasPrefix(line, "### ") {
			flush()
			title = strings.TrimSpace(line)
		}
		body.WriteString(line)
	}
	flush()
	return out, order
}

// firstDiff renders the first line where two section bodies diverge.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("  line %d:\n  - committed: %s\n  - fresh:     %s\n", i+1, wl, gl)
		}
	}
	return "  (bodies differ only in length)\n"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "goldencheck: "+format+"\n", args...)
	os.Exit(1)
}
