// Command trainlearned regenerates the learned estimator's committed
// weight file from the dataset experiment: sweep the scenario catalog ×
// cross-traffic scalings × seeds, fit the ridge + k-NN model on the
// train split, report held-out error, and write the weights JSON that
// internal/tools/learned embeds. The whole pipeline is deterministic —
// same flags, byte-identical weight file:
//
//	go run ./scripts/trainlearned                  # rewrites the embedded weights
//	go run ./scripts/trainlearned -trials 5        # more seeds per (scenario, scaling)
//	go run ./scripts/trainlearned -csv dataset.csv # also dump the training rows
//	go run ./scripts/trainlearned -out /tmp/w.json # write elsewhere (for comparison)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"abw/internal/exp"
	"abw/internal/runner"
	"abw/internal/tools/learned"
)

func main() {
	var (
		out      = flag.String("out", "internal/tools/learned/weights.json", "weight file to write")
		csvPath  = flag.String("csv", "", "also write the generated dataset as CSV here")
		trials   = flag.Int("trials", 3, "seeds per (scenario, scaling)")
		seed     = flag.Uint64("seed", 1, "dataset and split seed")
		testFrac = flag.Float64("testfrac", 0.25, "held-out fraction of (scenario, scaling, trial) configurations")
		lambda   = flag.Float64("lambda", 100, "ridge penalty")
		k        = flag.Int("k", 5, "kNN neighborhood size")
		blend    = flag.Float64("blend", 0.05, "ridge weight in the ridge/kNN blend")
		maxknn   = flag.Int("maxknn", 6000, "kNN memory budget (training rows kept in the weight file)")
		scalings = flag.String("scalings", "0.25,0.5,0.75,1,1.25,1.5", "comma-separated cross-traffic scalings to sweep")
		parallel = flag.Int("parallel", 0, "trial-engine workers (0 = one per CPU)")
	)
	flag.Parse()
	runner.SetWorkers(*parallel)

	var scale []float64
	for _, s := range strings.Split(*scalings, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Errorf("-scalings: %w", err))
		}
		scale = append(scale, v)
	}

	cfg := exp.DatasetConfig{Scalings: scale, Trials: *trials, TestFrac: *testFrac, Seed: *seed}
	fmt.Fprintf(os.Stderr, "trainlearned: sweeping catalog (trials=%d seed=%d)...\n", *trials, *seed)
	res, err := exp.Dataset(cfg)
	if err != nil {
		fatal(err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	train, test := res.SplitRows()
	X := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, r := range train {
		X[i] = r.ModelInput()
		y[i] = r.Target
	}
	w, err := learned.Train(X, y, learned.TrainConfig{
		Lambda: *lambda, K: *k, Blend: *blend, MaxKNNRows: *maxknn,
		Plan:         res.Config.Plan,
		FeatureNames: exp.ModelInputNames(),
		Note: fmt.Sprintf("trained on %d rows (%d held out) from the catalog sweep: scalings=%s trials=%d testfrac=%g seed=%d",
			len(train), len(test), *scalings, *trials, *testFrac, *seed),
	})
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "train rows %d, test rows %d\n", len(train), len(test))
	report("train", train, w)
	report("test ", test, w)

	data, err := json.MarshalIndent(w, "", " ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(data))
}

// report prints the split's mean absolute error, in the dimensionless
// target A/C and in Mbps, plus the worst scenarios — the quick read on
// whether a retrain helped.
func report(label string, rows []exp.DatasetRow, w *learned.Weights) {
	if len(rows) == 0 {
		return
	}
	var sumAC, sumMbps float64
	perScen := map[string][]float64{}
	for _, r := range rows {
		pred, err := w.Predict(r.ModelInput())
		if err != nil {
			fatal(err)
		}
		errAC := math.Abs(pred - r.Target)
		sumAC += errAC
		sumMbps += errAC * r.CapacityMbps
		perScen[r.Scenario] = append(perScen[r.Scenario], errAC*r.CapacityMbps)
	}
	n := float64(len(rows))
	fmt.Fprintf(os.Stderr, "%s MAE: %.4f A/C (%.2f Mbps) over %d rows\n", label, sumAC/n, sumMbps/n, len(rows))

	type scenErr struct {
		name string
		mae  float64
	}
	var worst []scenErr
	for name, errs := range perScen {
		var s float64
		for _, e := range errs {
			s += e
		}
		worst = append(worst, scenErr{name, s / float64(len(errs))})
	}
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].mae != worst[j].mae {
			return worst[i].mae > worst[j].mae
		}
		return worst[i].name < worst[j].name
	})
	for i, s := range worst {
		if i >= 3 {
			break
		}
		fmt.Fprintf(os.Stderr, "  worst %s: %-14s %.2f Mbps\n", label, s.name, s.mae)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trainlearned:", err)
	os.Exit(1)
}
