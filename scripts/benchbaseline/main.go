// Command benchbaseline runs the repository's benchmarks once each
// (-benchtime 1x) and writes the parsed results as a JSON baseline —
// the starting point of the performance trajectory. Regenerate with:
//
//	go run ./scripts/benchbaseline            # writes BENCH_0.json
//	go run ./scripts/benchbaseline -out f.json
//
// CI runs the same benchmark smoke (without writing the file) so a
// benchmark that stops compiling or starts failing is caught on every
// push; comparing a fresh baseline against the committed one is how a
// perf regression investigation starts.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Baseline is the file shape.
type Baseline struct {
	Schema     string      `json:"schema"`
	Command    string      `json:"command"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPUs       int         `json:"cpus"`
	Note       string      `json:"note"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_0.json", "output file")
	flag.Parse()

	args := []string{"test", "-bench", ".", "-benchtime", "1x", "-run", "^$", "./..."}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	base := Baseline{
		Schema:    "abw-bench-baseline/1",
		Command:   "go " + strings.Join(args, " "),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Note: "single-iteration smoke numbers: good for spotting order-of-magnitude " +
			"regressions and keeping benchmarks compiling, not for micro-comparisons",
		Benchmarks: parse(&buf),
	}
	b, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchbaseline: wrote %d benchmarks to %s\n", len(base.Benchmarks), *out)
}

// parse extracts benchmark lines from `go test -bench` output,
// tracking the current package from the interleaved "pkg:" headers.
func parse(r *bytes.Buffer) []Benchmark {
	var out []Benchmark
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Package: pkg, Name: f[0], Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		out = append(out, b)
	}
	return out
}
