// Command benchbaseline runs the repository's benchmarks once each
// (-benchtime 1x) and writes the parsed results as a JSON baseline —
// one point on the performance trajectory (BENCH_0.json is the
// immutable seed-era baseline, BENCH_1.json the living
// post-optimization one and the default output). Regenerate with:
//
//	go run ./scripts/benchbaseline            # rewrites BENCH_1.json
//
// With -compare, the fresh run is checked against a committed baseline
// instead of (or in addition to) being written: any benchmark that got
// an order of magnitude slower fails the run. CI runs the compare on
// every push, so a perf regression is caught where it lands:
//
//	go run ./scripts/benchbaseline -compare BENCH_1.json
//	go run ./scripts/benchbaseline -compare BENCH_1.json,BENCH_2.json
//	go run ./scripts/benchbaseline -compare BENCH_1.json -out fresh.json
//
// The threshold is deliberately coarse (10x): single-iteration numbers
// on shared CI hardware are noisy, but an order of magnitude is a real
// regression, not noise. -benchtime passes through to `go test` for
// steadier numbers on sub-µs benchmarks (1x remains the default), and
// -budget asserts absolute wall-clock ceilings on named benchmarks:
//
//	go run ./scripts/benchbaseline -benchtime 10ms -out BENCH_4.json
//	go run ./scripts/benchbaseline -budget 'BenchmarkMatrix=600ms'
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// regressionFactor is the ns/op ratio over the baseline that fails a
// -compare run.
const regressionFactor = 10.0

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Baseline is the file shape.
type Baseline struct {
	Schema     string      `json:"schema"`
	Command    string      `json:"command"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPUs       int         `json:"cpus"`
	Note       string      `json:"note"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_1.json, the living baseline; with -compare, omit to skip writing)")
	compare := flag.String("compare", "", "comma-separated committed baseline(s) to compare against; exits 1 on order-of-magnitude regressions")
	benchtime := flag.String("benchtime", "1x", "passed to go test -benchtime; raise it (e.g. 10ms) for steadier sub-µs numbers")
	budget := flag.String("budget", "", "comma-separated absolute ceilings, e.g. 'BenchmarkMatrix=600ms'; exits 1 when a named benchmark exceeds its duration")
	flag.Parse()
	if *out == "" && *compare == "" && *budget == "" {
		// BENCH_0.json is the immutable seed-era trajectory point; the
		// default regenerates the living baseline, never the history.
		*out = "BENCH_1.json"
	}

	args := []string{"test", "-bench", ".", "-benchtime", *benchtime, "-run", "^$", "./..."}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	base := Baseline{
		Schema:    "abw-bench-baseline/1",
		Command:   "go " + strings.Join(args, " "),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Note: fmt.Sprintf("recorded at -benchtime %s: good for spotting order-of-magnitude "+
			"regressions and keeping benchmarks compiling, not for micro-comparisons", *benchtime),
		Benchmarks: parse(&buf),
	}
	if *out != "" {
		b, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchbaseline: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchbaseline: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchbaseline: wrote %d benchmarks to %s\n", len(base.Benchmarks), *out)
	}
	if *compare != "" {
		ok := true
		for _, path := range strings.Split(*compare, ",") {
			if path = strings.TrimSpace(path); path != "" && !compareAgainst(path, base.Benchmarks) {
				ok = false
			}
		}
		if !ok {
			os.Exit(1)
		}
	}
	if *budget != "" && !checkBudgets(*budget, base.Benchmarks) {
		os.Exit(1)
	}
}

// checkBudgets enforces absolute per-iteration ceilings on named
// benchmarks ("Name=duration", comma-separated). Unlike the relative
// -compare gate, a budget is a commitment: the named benchmark must
// exist in the fresh run and come in under its ceiling.
func checkBudgets(spec string, fresh []Benchmark) bool {
	ok := true
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, limit, found := strings.Cut(entry, "=")
		if !found {
			fmt.Fprintf(os.Stderr, "benchbaseline: bad -budget entry %q (want Name=duration)\n", entry)
			ok = false
			continue
		}
		max, err := time.ParseDuration(limit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchbaseline: bad -budget duration %q: %v\n", limit, err)
			ok = false
			continue
		}
		matched := false
		for _, b := range fresh {
			if b.Name != name {
				continue
			}
			matched = true
			got := time.Duration(b.NsPerOp)
			if got > max {
				ok = false
				fmt.Fprintf(os.Stderr, "benchbaseline: BUDGET EXCEEDED %s.%s: %v per op, budget %v\n",
					b.Package, b.Name, got.Round(time.Millisecond), max)
			} else {
				fmt.Printf("benchbaseline: %s.%s within budget: %v <= %v\n",
					b.Package, b.Name, got.Round(time.Millisecond), max)
			}
		}
		if !matched {
			ok = false
			fmt.Fprintf(os.Stderr, "benchbaseline: -budget %s: no such benchmark in the fresh run\n", name)
		}
	}
	return ok
}

// compareAgainst checks the fresh results against the stored baseline,
// reporting per-benchmark ratios. Benchmarks present on only one side
// (added or retired since the baseline) are skipped. Returns false when
// any shared benchmark regressed by regressionFactor or more.
func compareAgainst(path string, fresh []Benchmark) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: %v\n", err)
		return false
	}
	var stored Baseline
	if err := json.Unmarshal(raw, &stored); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: %s: %v\n", path, err)
		return false
	}
	// Stored names were normalized at write time (parse strips the
	// GOMAXPROCS suffix), so they are compared as-is: trimming again
	// would mangle legitimate trailing "-<n>" sub-benchmark names.
	old := make(map[string]Benchmark, len(stored.Benchmarks))
	for _, b := range stored.Benchmarks {
		old[b.Package+"."+b.Name] = b
	}
	ok, compared := true, 0
	for _, b := range fresh {
		ref, found := old[b.Package+"."+b.Name]
		if !found || ref.NsPerOp <= 0 || b.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := b.NsPerOp / ref.NsPerOp
		if ratio >= regressionFactor {
			ok = false
			fmt.Fprintf(os.Stderr, "benchbaseline: REGRESSION %s.%s: %.0f ns/op vs baseline %.0f (%.1fx)\n",
				b.Package, b.Name, b.NsPerOp, ref.NsPerOp, ratio)
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchbaseline: no benchmarks in common with %s\n", path)
		return false
	}
	if ok {
		fmt.Printf("benchbaseline: %d benchmarks within %gx of %s\n", compared, regressionFactor, path)
	}
	return ok
}

// trimProcsSuffix drops the "-<procs>" suffix `go test -bench` appends
// to benchmark names when GOMAXPROCS > 1, so baselines taken on
// machines with different core counts compare by the same keys.
func trimProcsSuffix(name string, procs int) string {
	if procs > 1 {
		return strings.TrimSuffix(name, fmt.Sprintf("-%d", procs))
	}
	return name
}

// parse extracts benchmark lines from `go test -bench` output,
// tracking the current package from the interleaved "pkg:" headers.
// Names are normalized with the running process's GOMAXPROCS (the test
// child inherits the same environment).
func parse(r *bytes.Buffer) []Benchmark {
	var out []Benchmark
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Package:    pkg,
			Name:       trimProcsSuffix(f[0], runtime.GOMAXPROCS(0)),
			Iterations: iters,
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		out = append(out, b)
	}
	return out
}
