module abw

go 1.21
