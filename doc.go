// Package abw reproduces "Ten Fallacies and Pitfalls on End-to-End
// Available Bandwidth Estimation" (Jain & Dovrolis, IMC 2004) as a Go
// library: a discrete-event network simulator, the paper's cross-traffic
// models and trace substrate, the seven estimation tools it classifies
// (Delphi, TOPP, Pathload, pathChirp, IGI/PTR, Spruce, BFind) plus a
// learned eighth estimator trained on their shared probe features, a
// packet-level TCP Reno, a live UDP probing transport, and one
// experiment per table and figure in the paper, all running their
// trials on a parallel, deterministic trial engine (internal/runner).
//
// This package is also the public facade: estimation techniques are
// named in a registry and run with
//
//	report, err := abw.Estimate(ctx, "pathload", abw.Params{...}, transport)
//
// where the transport is a simulated path (NewScenario, from a
// declarative ScenarioSpec or a cataloged scenario name) or live UDP
// sockets (ListenReceiver/DialReceiver; the receiver serves many
// concurrent sender sessions, and DialReceiverPool fans estimators
// out over one session each). Runs honor ctx cancellation at
// stream boundaries, accept a uniform probing Budget enforced below
// every tool, and report per-stream progress through an Observer.
// abw.Tools() lists the registered techniques and their requirements;
// abw.Scenarios() lists the cataloged simulated conditions — every
// pitfall of the paper as a nameable, reproducible scenario.
//
// Entry points:
//
//   - cmd/abwsim regenerates every table and figure;
//   - cmd/abwprobe runs the estimators over real UDP sockets;
//   - cmd/abwtrace synthesizes and analyzes traces;
//   - examples/ holds runnable walkthroughs of the public API;
//   - bench_test.go in this directory carries one benchmark per
//     table/figure.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package abw
