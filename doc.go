// Package abw reproduces "Ten Fallacies and Pitfalls on End-to-End
// Available Bandwidth Estimation" (Jain & Dovrolis, IMC 2004) as a Go
// library: a discrete-event network simulator, the paper's cross-traffic
// models and trace substrate, the seven estimation tools it classifies
// (Delphi, TOPP, Pathload, pathChirp, IGI/PTR, Spruce, BFind), a
// packet-level TCP Reno, a live UDP probing transport, and one
// experiment per table and figure in the paper, all running their
// trials on a parallel, deterministic trial engine (internal/runner).
//
// Entry points:
//
//   - cmd/abwsim regenerates every table and figure;
//   - cmd/abwprobe runs the estimators over real UDP sockets;
//   - cmd/abwtrace synthesizes and analyzes traces;
//   - examples/ holds runnable walkthroughs of the public API;
//   - bench_test.go in this directory carries one benchmark per
//     table/figure plus ablations of the design choices.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package abw
