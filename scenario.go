package abw

import (
	"abw/internal/tools/toolstest"
)

// Traffic selects a cross-traffic model for simulated scenarios.
type Traffic = toolstest.Traffic

// Cross-traffic models.
const (
	CBR         = toolstest.CBR
	Poisson     = toolstest.Poisson
	ParetoOnOff = toolstest.ParetoOnOff
)

// ScenarioOptions configures a simulated path; zero values take the
// paper's canonical parameters (50 Mbps tight link, 25 Mbps CBR cross
// traffic, one hop, seed 1).
type ScenarioOptions = toolstest.Options

// Scenario is a simulated path with known ground truth: the controlled
// conditions the paper demands for comparing estimation techniques.
// Its Transport runs any registered tool; consecutive runs observe
// consecutive slices of the cross-traffic process, exactly how a real
// tool samples a live path.
type Scenario struct {
	// Transport delivers probing streams over the simulated path.
	Transport Transport
	// TrueAvailBw is the configured long-run avail-bw of the tight
	// link — the ground truth estimates are judged against.
	TrueAvailBw Rate
	// Capacity is the tight-link capacity (what direct-probing tools
	// need as Params.Capacity).
	Capacity Rate
}

// NewScenario builds a deterministic simulated path. Identical options
// give identical packet-level behavior, so estimator runs are exactly
// reproducible.
func NewScenario(opts ScenarioOptions) *Scenario {
	sc := toolstest.New(opts)
	return &Scenario{
		Transport:   sc.Transport,
		TrueAvailBw: sc.TrueAvailBw,
		Capacity:    sc.Capacity,
	}
}
