package abw

// This file fronts the scenario subsystem: declarative simulated paths
// with exact ground truth, and the named catalog of the conditions the
// paper warns about — the scenario-side mirror of the estimator
// registry in abw.go.

import (
	"fmt"
	"time"

	"abw/internal/rng"
	"abw/internal/scenario"
)

// Declarative scenario types re-exported from the scenario subsystem.
type (
	// ScenarioSpec describes a heterogeneous simulated path: per-hop
	// capacity/buffer/delay and an arbitrary mix of traffic sources,
	// optionally time-varying.
	ScenarioSpec = scenario.Spec
	// Hop is one store-and-forward link with its cross traffic.
	Hop = scenario.Hop
	// Source is one traffic source on a hop.
	Source = scenario.Source
	// RateStep is one segment of a piecewise-constant rate profile.
	RateStep = scenario.RateStep
	// Traffic selects a cross-traffic model for simulated scenarios.
	Traffic = scenario.Kind
	// ScenarioInfo describes one cataloged scenario: name, aliases,
	// summary, and the spec behind it.
	ScenarioInfo = scenario.Descriptor
	// Queue selects a hop's queue discipline (FIFO tail-drop, RED,
	// CoDel) and carries its tuning knobs.
	Queue = scenario.Queue
	// QueueKind names a queue discipline for Queue.Kind.
	QueueKind = scenario.QueueKind
	// Loss selects a hop's stochastic loss model (Bernoulli or
	// Gilbert–Elliott bursty loss) applied on arrival.
	Loss = scenario.Loss
	// LossKind names a loss model for Loss.Kind.
	LossKind = scenario.LossKind
	// Reorder bounds a hop's random extra propagation jitter, which
	// reorders packets that were queued back-to-back.
	Reorder = scenario.Reorder
)

// Queue disciplines and loss models for Hop.Queue / Hop.Loss.
const (
	QueueFIFO  = scenario.QueueFIFO
	QueueRED   = scenario.QueueRED
	QueueCoDel = scenario.QueueCoDel

	LossNone           = scenario.LossNone
	LossBernoulli      = scenario.LossBernoulli
	LossGilbertElliott = scenario.LossGilbertElliott
)

// Cross-traffic models.
const (
	CBR              = scenario.CBR
	Poisson          = scenario.Poisson
	ParetoOnOff      = scenario.ParetoOnOff
	ParetoArrivals   = scenario.ParetoArrivals
	LRD              = scenario.LRD
	Mice             = scenario.Mice
	BufferLimitedTCP = scenario.BufferLimitedTCP
)

// Seed returns a pointer to v for ScenarioSpec.Seed: the pointer form
// makes seed 0 a valid explicit seed (nil means the default seed 1).
func Seed(v uint64) *uint64 { return scenario.Seed(v) }

// Scenarios returns the cataloged scenarios in their canonical order.
func Scenarios() []ScenarioInfo { return scenario.Catalog() }

// RandomScenarioSpec draws a structurally random but fully
// deterministic path — topology, cross traffic, queueing, loss,
// reordering, and capacity variation are all functions of seed alone —
// for property tests and stress sweeps over scenario space.
func RandomScenarioSpec(seed uint64) ScenarioSpec { return scenario.RandomSpec(rng.New(seed)) }

// LookupScenario finds a cataloged scenario by name or alias.
func LookupScenario(name string) (ScenarioInfo, bool) { return scenario.Lookup(name) }

// Scenario is a simulated path with known ground truth: the controlled
// conditions the paper demands for comparing estimation techniques.
// Its Transport runs any registered tool; consecutive runs observe
// consecutive slices of the cross-traffic process, exactly how a real
// tool samples a live path.
type Scenario struct {
	// Name is the catalog name when the scenario was built from one.
	Name string
	// Transport delivers probing streams over the simulated path.
	Transport Transport
	// TrueAvailBw is the analytic long-run avail-bw of the tight link
	// — the ground truth estimates are judged against.
	TrueAvailBw Rate
	// Capacity is the tight-link capacity (what direct-probing tools
	// need as Params.Capacity).
	Capacity Rate
	// TightLink and NarrowLink are hop indices: minimum avail-bw vs
	// minimum capacity. Where they differ, feeding a capacity tool's
	// answer to a direct-probing tool is the paper's fifth pitfall.
	TightLink, NarrowLink int

	compiled *scenario.Compiled
}

// Hops returns the path length.
func (s *Scenario) Hops() int { return len(s.compiled.Path.Links) }

// AvailBw returns the measured ground-truth avail-bw of the given hop
// over [from, from+window) of virtual time — the paper's A(t, t+τ),
// exact, from the hop's recorder.
func (s *Scenario) AvailBw(hop int, from, window time.Duration) Rate {
	return s.compiled.AvailBw(hop, from, window)
}

// SpecOrName is the input NewScenario accepts: a declarative
// ScenarioSpec, or the name of a cataloged scenario.
type SpecOrName interface{ ScenarioSpec | string }

// NewScenario builds a deterministic simulated path from a declarative
// spec or a catalog name. Identical inputs give identical packet-level
// behavior, so estimator runs are exactly reproducible.
func NewScenario[T SpecOrName](v T) (*Scenario, error) {
	switch x := any(v).(type) {
	case string:
		d, ok := scenario.Lookup(x)
		if !ok {
			return nil, fmt.Errorf("abw: unknown scenario %q (have %v)", x, scenario.Names())
		}
		cpl, err := d.Compile()
		if err != nil {
			return nil, err
		}
		return wrapScenario(d.Name, cpl), nil
	default:
		cpl, err := scenario.Compile(x.(ScenarioSpec))
		if err != nil {
			return nil, err
		}
		return wrapScenario("", cpl), nil
	}
}

func wrapScenario(name string, cpl *scenario.Compiled) *Scenario {
	return &Scenario{
		Name:        name,
		Transport:   cpl.Transport,
		TrueAvailBw: cpl.TrueAvailBw,
		Capacity:    cpl.Capacity,
		TightLink:   cpl.TightLink,
		NarrowLink:  cpl.NarrowLink,
		compiled:    cpl,
	}
}
