package abw

// This file is the public facade: the one import external users (and
// the examples) need. It re-exports the stable types from the internal
// packages and fronts the tool registry, so estimators are nameable,
// parameterizable, budgetable, cancellable and observable without ever
// importing internal/.

import (
	"context"

	"abw/internal/core"
	"abw/internal/rng"
	"abw/internal/tools/registry"
	"abw/internal/unit"
)

// Re-exported quantity types: every rate in the API is bits per second,
// every size in bytes.
type (
	// Rate is a data rate in bits per second.
	Rate = unit.Rate
	// Bytes is a data volume in bytes.
	Bytes = unit.Bytes
)

// Rate constructors and well-known capacities.
const (
	Kbps         = unit.Kbps
	Mbps         = unit.Mbps
	Gbps         = unit.Gbps
	OC3          = unit.OC3
	FastEthernet = unit.FastEthernet
)

// Core abstractions re-exported from the conceptual layer.
type (
	// Report is the outcome of one estimation run.
	Report = core.Report
	// Outcome is the JSON shape of a run: report or error text.
	Outcome = core.Outcome
	// Transport delivers probing streams (simulated or live).
	Transport = core.Transport
	// Estimator is one estimation technique, built via Tools/Estimate.
	Estimator = core.Estimator
	// Budget caps the probing effort of a run; zero fields are
	// unlimited.
	Budget = core.Budget
	// Observer receives per-stream progress events.
	Observer = core.Observer
	// StreamEvent is one per-stream progress notification.
	StreamEvent = core.StreamEvent
)

// ErrBudget is wrapped by every budget-exhaustion error; test with
// errors.Is.
var ErrBudget = core.ErrBudget

// NewOutcome captures a run's report and error into the shared JSON
// shape.
func NewOutcome(tool string, rep *Report, err error) Outcome {
	return core.NewOutcome(tool, rep, err)
}

// Rand is the module's deterministic random-number generator; tools
// that need randomness (Spruce's Poisson pair spacing) take one in
// Params.
type Rand = rng.Rand

// NewRand returns a deterministic generator for the given seed: the
// same seed always reproduces the same probing behavior.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Tool describes one registered estimation technique: name, aliases,
// required inputs, and published defaults.
type Tool = registry.Descriptor

// Params is the uniform parameter set every tool is built from; zero
// fields take the tool's published defaults.
type Params = registry.Params

// Tools returns the registered estimation techniques in their
// canonical order.
func Tools() []Tool { return registry.Tools() }

// LookupTool finds a technique by name or alias.
func LookupTool(name string) (Tool, bool) { return registry.Lookup(name) }

// NewEstimator builds the named technique from Params without running
// it, for callers that manage their own transports and budgets.
func NewEstimator(name string, p Params) (Estimator, error) {
	return registry.Build(name, p)
}

// Estimate runs the named technique over the transport: the tool is
// built from Params, the transport is decorated with the Params'
// observer and budget, and the run honors ctx cancellation at stream
// boundaries.
func Estimate(ctx context.Context, name string, p Params, t Transport) (*Report, error) {
	return registry.Estimate(ctx, name, p, t)
}
