// Liveprobe: run Pathload over real UDP sockets on loopback — the same
// estimator code that runs on the simulator, now against the kernel's
// network stack.
//
//	go run ./examples/liveprobe
package main

import (
	"fmt"
	"log"

	"abw/internal/livenet"
	"abw/internal/tools/pathload"
	"abw/internal/unit"
)

func main() {
	recv, err := livenet.ListenReceiver("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()
	fmt.Printf("receiver on %s\n", recv.Addr())

	tr, err := livenet.Dial(recv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// Loopback is fast; bracket the search accordingly and keep the
	// fleet small so the example finishes in seconds.
	est, err := pathload.New(pathload.Config{
		MinRate:        50 * unit.Mbps,
		MaxRate:        4 * unit.Gbps,
		StreamLen:      50,
		StreamsPerRate: 2,
		MaxRounds:      8,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := est.Estimate(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Println("(loopback avail-bw is bounded by kernel/scheduler overhead rather than a")
	fmt.Println(" link; expect gigabits per second, with jitter from the Go runtime — see")
	fmt.Println(" the livenet package docs on pacing)")
}
