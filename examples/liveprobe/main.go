// Liveprobe: run Pathload over real UDP sockets on loopback — the same
// estimator code that runs on the simulator, now against the kernel's
// network stack, with per-stream progress from the observer hook.
//
//	go run ./examples/liveprobe
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abw"
)

func main() {
	recv, err := abw.ListenReceiver("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()
	fmt.Printf("receiver on %s\n", recv.Addr())

	tr, err := abw.DialReceiver(recv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// Loopback is fast; bracket the search accordingly and keep the
	// fleet small so the example finishes in seconds. The observer
	// prints each resolved stream — the hook a long-running service
	// would wire to metrics.
	rep, err := abw.Estimate(context.Background(), "pathload", abw.Params{
		RateLo:    50 * abw.Mbps,
		RateHi:    4 * abw.Gbps,
		StreamLen: 50,
		Repeat:    2,
		MaxRounds: 8,
		Observer: func(ev abw.StreamEvent) {
			fmt.Printf("  stream %d: %d pkts (%d lost) at %v\n",
				ev.Stream, ev.Packets, ev.Lost, ev.At.Round(time.Millisecond))
		},
	}, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Println("(loopback avail-bw is bounded by kernel/scheduler overhead rather than a")
	fmt.Println(" link; expect gigabits per second, with jitter from the Go runtime — see")
	fmt.Println(" the livenet package docs on pacing)")
}
