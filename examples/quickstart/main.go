// Quickstart: build a simulated path with known avail-bw, run Pathload
// over it through the public abw facade, and print the estimated
// variation range.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abw"
)

func main() {
	// A single 50 Mbps tight link carrying 25 Mbps of Poisson cross
	// traffic: the true avail-bw is 25 Mbps. A spec is declarative —
	// heterogeneous hops and mixed traffic are the same shape — and
	// abw.NewScenario also accepts a catalog name ("bursty", "lrd",
	// ...; see abw.Scenarios()).
	sc, err := abw.NewScenario(abw.ScenarioSpec{
		Horizon: 2 * time.Minute,
		Seed:    abw.Seed(42),
		Hops: []abw.Hop{{
			Capacity: 50 * abw.Mbps,
			Traffic:  []abw.Source{{Kind: abw.Poisson, Rate: 25 * abw.Mbps}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The transport hides whether the path is simulated or real; every
	// registered estimator runs over it unchanged, named by the tool
	// registry.
	report, err := abw.Estimate(context.Background(), "pathload", abw.Params{
		RateLo: 1 * abw.Mbps,
		RateHi: 49 * abw.Mbps,
	}, sc.Transport)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("true avail-bw: %.0f Mbps; estimated range [%.1f, %.1f] Mbps\n",
		sc.TrueAvailBw.MbpsOf(), report.Low.MbpsOf(), report.High.MbpsOf())
	fmt.Println("(the range is the avail-bw variation at the probing timescale —")
	fmt.Println(" not a confidence interval; see misconception #9 in the paper)")
}
