// Quickstart: build a simulated path with known avail-bw, run Pathload
// over it, and print the estimated variation range.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"abw/internal/core"
	"abw/internal/crosstraffic"
	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/tools/pathload"
	"abw/internal/unit"
)

func main() {
	// A single 50 Mbps tight link carrying 25 Mbps of Poisson cross
	// traffic: the true avail-bw is 25 Mbps.
	s := sim.New()
	link := s.NewLink("tight", 50*unit.Mbps, time.Millisecond)
	path := sim.MustPath(link)
	crosstraffic.Poisson(crosstraffic.Stream{Rate: 25 * unit.Mbps}, rng.New(42)).
		Run(s, path.Route(), 0, 2*time.Minute)

	// The transport hides whether the path is simulated or real; every
	// estimator in internal/tools runs over it unchanged.
	transport := core.NewSimTransport(s, path)

	est, err := pathload.New(pathload.Config{
		MinRate: 1 * unit.Mbps,
		MaxRate: 49 * unit.Mbps,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := est.Estimate(transport)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("true avail-bw: 25 Mbps; estimated range [%.1f, %.1f] Mbps\n",
		report.Low.MbpsOf(), report.High.MbpsOf())
	fmt.Println("(the range is the avail-bw variation at the probing timescale —")
	fmt.Println(" not a confidence interval; see misconception #9 in the paper)")
}
