// Quickstart: build a simulated path with known avail-bw, run Pathload
// over it through the public abw facade, and print the estimated
// variation range.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abw"
)

func main() {
	// A single 50 Mbps tight link carrying 25 Mbps of Poisson cross
	// traffic: the true avail-bw is 25 Mbps.
	sc := abw.NewScenario(abw.ScenarioOptions{
		Capacity:  50 * abw.Mbps,
		CrossRate: 25 * abw.Mbps,
		Model:     abw.Poisson,
		Horizon:   2 * time.Minute,
		Seed:      42,
	})

	// The transport hides whether the path is simulated or real; every
	// registered estimator runs over it unchanged, named by the tool
	// registry.
	report, err := abw.Estimate(context.Background(), "pathload", abw.Params{
		RateLo: 1 * abw.Mbps,
		RateHi: 49 * abw.Mbps,
	}, sc.Transport)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("true avail-bw: %.0f Mbps; estimated range [%.1f, %.1f] Mbps\n",
		sc.TrueAvailBw.MbpsOf(), report.Low.MbpsOf(), report.High.MbpsOf())
	fmt.Println("(the range is the avail-bw variation at the probing timescale —")
	fmt.Println(" not a confidence interval; see misconception #9 in the paper)")
}
