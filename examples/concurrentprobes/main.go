// Concurrentprobes: two estimators probing the same path through one
// receiver at the same time — each sender in its own receiver session,
// so their streams never collide. This is the paper's intrusiveness
// pitfall made tangible: every probe stream one estimator sends is
// cross traffic the other one measures, so two concurrent estimates of
// the same loopback path each come out lower than a solo run.
//
//	go run ./examples/concurrentprobes
package main

import (
	"context"
	"fmt"
	"log"

	"abw"
)

func main() {
	recv, err := abw.ListenReceiver("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()
	fmt.Printf("receiver on %s\n", recv.Addr())

	// One pooled transport per estimator: a Transport is single-stream,
	// so concurrency is dial-N-sessions, not share-one-socket.
	pool, err := abw.DialReceiverPool(recv.Addr(), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	reports := make([]*abw.Report, pool.Size())
	err = pool.Run(func(i int, tr *abw.LiveTransport) error {
		rep, err := abw.Estimate(context.Background(), "pathload", abw.Params{
			RateLo:    50 * abw.Mbps,
			RateHi:    4 * abw.Gbps,
			StreamLen: 50,
			Repeat:    2,
			MaxRounds: 6,
			Rand:      abw.NewRand(uint64(i) + 1),
		}, tr)
		if err != nil {
			return err
		}
		reports[i] = rep // one writer per slot; Run joins before reads
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, rep := range reports {
		fmt.Printf("estimator %d: %v\n", i, rep)
	}
	fmt.Printf("receiver saw: %v\n", recv.Stats())
	fmt.Println("(each estimator's probes are the other's cross traffic — running both")
	fmt.Println(" at once depresses both estimates relative to a solo run: the paper's")
	fmt.Println(" intrusiveness pitfall, measured over real sockets)")
}
