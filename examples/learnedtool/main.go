// Learnedtool: the eighth estimator end to end — run the committed
// learned model as a registered tool, then peel the abstraction open:
// extract the canonical feature vector from a probing stream, build a
// model input by hand, and query the weights directly. This is the
// whole pipeline DESIGN.md's "feature pipeline & learned estimator"
// section describes, driven through the public facade.
//
//	go run ./examples/learnedtool
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abw"
)

const (
	capacity  = 50 * abw.Mbps
	crossRate = 30 * abw.Mbps // true avail-bw: 20 Mbps
)

func scenario() abw.Transport {
	sc, err := abw.NewScenario(abw.ScenarioSpec{
		Horizon: 10 * time.Minute,
		Seed:    abw.Seed(7),
		Hops: []abw.Hop{{
			Capacity: capacity,
			Traffic:  []abw.Source{{Kind: abw.Poisson, Rate: crossRate}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	return sc.Transport
}

func main() {
	// 1. The learned model as a plain registered tool: same Params, same
	// Report as the seven classical techniques.
	rep, err := abw.Estimate(context.Background(), "learned", abw.Params{Capacity: capacity}, scenario())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("true avail-bw: 20.0 Mbps (50 Mbps link, 30 Mbps Poisson cross traffic)")
	fmt.Printf("learned tool:  %.1f Mbps  [%.1f, %.1f]  (%d streams, %d packets)\n\n",
		rep.Point.MbpsOf(), rep.Low.MbpsOf(), rep.High.MbpsOf(), rep.Streams, rep.Packets)

	// 2. The same pipeline by hand: probe one stream, extract the
	// canonical features, assemble the model input, query the weights.
	w, err := abw.DefaultLearnedWeights()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed weights: %d model inputs, %d k-NN memory rows, plan %v\n",
		len(abw.LearnedModelInputNames()), len(w.KNN.X), w.Plan.RateFracs)

	t := scenario()
	for _, frac := range w.Plan.RateFracs {
		spec := abw.PeriodicProbe(abw.Rate(float64(capacity)*frac), w.Plan.PktSize, w.Plan.StreamLen)
		rec, err := abw.Probe(context.Background(), t, spec)
		if err != nil {
			log.Fatal(err)
		}
		f := abw.ExtractFeatures(rec)
		pred, err := w.Predict(abw.LearnedModelInput(f, frac, capacity.MbpsOf()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  probe at %.0f%% of C: gap ratio %.3f, trend PCT %.2f  →  predicted A/C %.3f (%.1f Mbps)\n",
			frac*100, f.GapRatio, f.TrendPCT, pred, pred*capacity.MbpsOf())
	}
}
