// Toolcomparison: run every registered estimation technique on the same
// path under the same conditions and report estimate + probing cost
// side by side — the "fair comparison under reproducible and
// controllable conditions" the paper's summary calls for. The tool list
// comes from the registry through the abw facade, so a technique added
// there shows up here with no code change.
//
//	go run ./examples/toolcomparison
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abw"
)

const (
	capacity  = 50 * abw.Mbps
	crossRate = 25 * abw.Mbps // true avail-bw: 25 Mbps
)

// scenario builds a fresh path per tool so each sees statistically
// identical (same seed) cross traffic rather than leftovers of the
// previous tool's probing.
func scenario() abw.Transport {
	sc, err := abw.NewScenario(abw.ScenarioSpec{
		Horizon: 10 * time.Minute,
		Seed:    abw.Seed(7),
		Hops: []abw.Hop{{
			Capacity: capacity,
			Traffic:  []abw.Source{{Kind: abw.Poisson, Rate: crossRate}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	return sc.Transport
}

func main() {
	fmt.Println("true avail-bw: 25.0 Mbps (50 Mbps link, 25 Mbps Poisson cross traffic)")
	fmt.Printf("%-10s %-10s %-18s %-9s %-9s %-12s %s\n",
		"tool", "estimate", "range", "streams", "packets", "probe bytes", "latency")
	for _, tool := range abw.Tools() {
		params := abw.Params{
			Capacity: capacity,
			Rand:     abw.NewRand(11),
		}
		if tool.Name == "bfind" {
			// BFind ramps an intrusive UDP load; bound it explicitly.
			params.RateLo = 5 * abw.Mbps
			params.RateHi = 48 * abw.Mbps
		}
		rep, err := abw.Estimate(context.Background(), tool.Name, params, scenario())
		if err != nil {
			fmt.Printf("%-10s error: %v\n", tool.Name, err)
			continue
		}
		rng := "-"
		if rep.Low != rep.High {
			rng = fmt.Sprintf("[%.1f, %.1f]", rep.Low.MbpsOf(), rep.High.MbpsOf())
		}
		fmt.Printf("%-10s %-10.2f %-18s %-9d %-9d %-12d %v\n",
			tool.Name, rep.Point.MbpsOf(), rng, rep.Streams, rep.Packets, rep.ProbeBytes,
			rep.Elapsed.Round(time.Millisecond))
	}
	fmt.Println("\nnote: comparisons are only meaningful at matched probing budgets and")
	fmt.Println("timescales (misconceptions #1-#3); this table reports the cost columns")
	fmt.Println("precisely so such a comparison can be made — or pass the same")
	fmt.Println("abw.Budget in Params to the end-to-end tools to enforce parity by")
	fmt.Println("construction (sim-only bfind bypasses the transport and refuses one).")
}
