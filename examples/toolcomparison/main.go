// Toolcomparison: run every estimation technique on the same path under
// the same conditions and report estimate + probing cost side by side —
// the "fair comparison under reproducible and controllable conditions"
// the paper's summary calls for.
//
//	go run ./examples/toolcomparison
package main

import (
	"fmt"
	"log"
	"time"

	"abw/internal/core"
	"abw/internal/crosstraffic"
	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/tools/bfind"
	"abw/internal/tools/delphi"
	"abw/internal/tools/igi"
	"abw/internal/tools/pathchirp"
	"abw/internal/tools/pathload"
	"abw/internal/tools/spruce"
	"abw/internal/tools/topp"
	"abw/internal/unit"
)

const (
	capacity  = 50 * unit.Mbps
	crossRate = 25 * unit.Mbps // true avail-bw: 25 Mbps
)

// scenario builds a fresh path per tool so each sees statistically
// identical (same seed) cross traffic rather than leftovers of the
// previous tool's probing.
func scenario() *core.SimTransport {
	s := sim.New()
	link := s.NewLink("tight", capacity, time.Millisecond)
	path := sim.MustPath(link)
	crosstraffic.Poisson(crosstraffic.Stream{Rate: crossRate}, rng.New(7)).
		Run(s, path.Route(), 0, 10*time.Minute)
	return core.NewSimTransport(s, path)
}

func main() {
	mk := func(name string, build func() (core.Estimator, error)) (string, core.Estimator) {
		est, err := build()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return name, est
	}
	type entry struct {
		name string
		est  core.Estimator
	}
	var tools []entry
	add := func(name string, build func() (core.Estimator, error)) {
		n, e := mk(name, build)
		tools = append(tools, entry{n, e})
	}
	add("pathload", func() (core.Estimator, error) {
		return pathload.New(pathload.Config{MinRate: 1 * unit.Mbps, MaxRate: 49 * unit.Mbps})
	})
	add("topp", func() (core.Estimator, error) {
		return topp.New(topp.Config{MinRate: 5 * unit.Mbps, MaxRate: 45 * unit.Mbps})
	})
	add("pathchirp", func() (core.Estimator, error) {
		return pathchirp.New(pathchirp.Config{Lo: 5 * unit.Mbps, Hi: 48 * unit.Mbps})
	})
	add("ptr", func() (core.Estimator, error) {
		return igi.New(igi.Config{InitRate: capacity})
	})
	add("igi", func() (core.Estimator, error) {
		return igi.New(igi.Config{Mode: igi.IGI, Capacity: capacity})
	})
	add("delphi", func() (core.Estimator, error) {
		return delphi.New(delphi.Config{Capacity: capacity})
	})
	add("spruce", func() (core.Estimator, error) {
		return spruce.New(spruce.Config{Capacity: capacity, Rand: rng.New(11)})
	})
	add("bfind", func() (core.Estimator, error) {
		return bfind.New(bfind.Config{StartRate: 5 * unit.Mbps, Step: 2 * unit.Mbps, MaxRate: 48 * unit.Mbps})
	})

	fmt.Println("true avail-bw: 25.0 Mbps (50 Mbps link, 25 Mbps Poisson cross traffic)")
	fmt.Printf("%-10s %-10s %-18s %-9s %-9s %-12s %s\n",
		"tool", "estimate", "range", "streams", "packets", "probe bytes", "latency")
	for _, e := range tools {
		rep, err := e.est.Estimate(scenario())
		if err != nil {
			fmt.Printf("%-10s error: %v\n", e.name, err)
			continue
		}
		rng := "-"
		if rep.Low != rep.High {
			rng = fmt.Sprintf("[%.1f, %.1f]", rep.Low.MbpsOf(), rep.High.MbpsOf())
		}
		fmt.Printf("%-10s %-10.2f %-18s %-9d %-9d %-12d %v\n",
			e.name, rep.Point.MbpsOf(), rng, rep.Streams, rep.Packets, rep.ProbeBytes,
			rep.Elapsed.Round(time.Millisecond))
	}
	fmt.Println("\nnote: comparisons are only meaningful at matched probing budgets and")
	fmt.Println("timescales (misconceptions #1-#3); this table reports the cost columns")
	fmt.Println("precisely so such a comparison can be made.")
}
