// Scenariocatalog: walk the named scenario catalog — every pitfall
// condition of the paper as a one-line lookup — and run direct probing
// against each, comparing the estimate with the scenario's exact
// ground truth. Scenarios where the tight link is not the narrow link
// are flagged: that is where capacity-fed tools go wrong (pitfall #5).
//
//	go run ./examples/scenariocatalog
package main

import (
	"context"
	"fmt"

	"abw"
)

func main() {
	fmt.Println("The scenario catalog, probed by Delphi (direct probing, true")
	fmt.Println("tight-link capacity supplied — the best case the paper grants it):")
	fmt.Println()
	fmt.Printf("%-17s %-5s %-8s %-10s %-13s %s\n",
		"scenario", "hops", "true A", "estimate", "tight=narrow", "summary")
	for _, info := range abw.Scenarios() {
		sc, err := abw.NewScenario(info.Name)
		if err != nil {
			fmt.Printf("%-17s error: %v\n", info.Name, err)
			continue
		}
		rep, err := abw.Estimate(context.Background(), "delphi", abw.Params{
			Capacity: sc.Capacity,
		}, sc.Transport)
		est := "error"
		if err == nil {
			est = fmt.Sprintf("%.2f", rep.Point.MbpsOf())
		}
		eq := "yes"
		if sc.TightLink != sc.NarrowLink {
			eq = "NO"
		}
		summary := info.Summary
		if len(summary) > 48 {
			summary = summary[:45] + "..."
		}
		fmt.Printf("%-17s %-5d %-8.2f %-10s %-13s %s\n",
			info.Name, sc.Hops(), sc.TrueAvailBw.MbpsOf(), est, eq, summary)
	}
	fmt.Println()
	fmt.Println("run `go run ./cmd/abwsim -exp matrix` for every registered tool")
	fmt.Println("against every scenario, with deterministic parallel execution.")
}
