// Burstiness: the same mean avail-bw under three cross-traffic models —
// watch direct probing underestimate as burstiness grows (the paper's
// pitfall #6), and the variation range widen.
//
//	go run ./examples/burstiness
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abw"
)

const (
	capacity  = 50 * abw.Mbps
	crossRate = 25 * abw.Mbps
)

func main() {
	models := []struct {
		name  string
		model abw.Traffic
	}{
		{"CBR", abw.CBR},
		{"Poisson", abw.Poisson},
		{"Pareto ON-OFF", abw.ParetoOnOff},
	}
	fmt.Println("Delphi (direct probing, 20 trains) against three cross-traffic")
	fmt.Println("models with the SAME mean avail-bw of 25 Mbps:")
	fmt.Println()
	fmt.Printf("%-15s %-12s %-20s\n", "cross traffic", "estimate", "sample range (Mbps)")
	for _, m := range models {
		sc, err := abw.NewScenario(abw.ScenarioSpec{
			Horizon: 5 * time.Minute,
			Seed:    abw.Seed(3),
			Hops: []abw.Hop{{
				Capacity: capacity,
				Traffic:  []abw.Source{{Kind: m.model, Rate: crossRate}},
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := abw.Estimate(context.Background(), "delphi", abw.Params{
			Capacity: sc.Capacity,
		}, sc.Transport)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %-12.2f [%.1f, %.1f]\n",
			m.name, rep.Point.MbpsOf(), rep.Low.MbpsOf(), rep.High.MbpsOf())
	}
	fmt.Println()
	fmt.Println("queues build before 100% utilization, so burstier traffic compresses the")
	fmt.Println("probe streams earlier — a downward bias no fixed threshold can undo,")
	fmt.Println("because it depends on the (unknown) burstiness of the path.")
}
