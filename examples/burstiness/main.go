// Burstiness: the same mean avail-bw under three cross-traffic models —
// watch direct probing underestimate as burstiness grows (the paper's
// pitfall #6), and the variation range widen.
//
//	go run ./examples/burstiness
package main

import (
	"fmt"
	"log"
	"time"

	"abw/internal/core"
	"abw/internal/crosstraffic"
	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/tools/delphi"
	"abw/internal/unit"
)

const (
	capacity  = 50 * unit.Mbps
	crossRate = 25 * unit.Mbps
)

func transportFor(model string) *core.SimTransport {
	s := sim.New()
	link := s.NewLink("tight", capacity, time.Millisecond)
	path := sim.MustPath(link)
	cfg := crosstraffic.Stream{Rate: crossRate}
	r := rng.New(3)
	var m crosstraffic.Model
	switch model {
	case "CBR":
		m = crosstraffic.CBR(cfg)
	case "Poisson":
		m = crosstraffic.Poisson(cfg, r)
	case "Pareto ON-OFF":
		m = crosstraffic.ParetoOnOff(crosstraffic.ParetoOnOffConfig{Stream: cfg, OffCap: 200}, r)
	}
	m.Run(s, path.Route(), 0, 5*time.Minute)
	return core.NewSimTransport(s, path)
}

func main() {
	fmt.Println("Delphi (direct probing, 20 trains at 40 Mbps) against three cross-traffic")
	fmt.Println("models with the SAME mean avail-bw of 25 Mbps:")
	fmt.Println()
	fmt.Printf("%-15s %-12s %-20s\n", "cross traffic", "estimate", "sample range (Mbps)")
	for _, model := range []string{"CBR", "Poisson", "Pareto ON-OFF"} {
		est, err := delphi.New(delphi.Config{Capacity: capacity, ProbeRate: 40 * unit.Mbps})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := est.Estimate(transportFor(model))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %-12.2f [%.1f, %.1f]\n",
			model, rep.Point.MbpsOf(), rep.Low.MbpsOf(), rep.High.MbpsOf())
	}
	fmt.Println()
	fmt.Println("queues build before 100% utilization, so burstier traffic compresses the")
	fmt.Println("probe streams earlier — a downward bias no fixed threshold can undo,")
	fmt.Println("because it depends on the (unknown) burstiness of the path.")
}
