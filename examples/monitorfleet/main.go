// Monitorfleet: the monitoring service as a library — a fleet of
// simulated targets measured continuously under a fake clock, so an
// hour of periodic estimation runs in milliseconds and the output is
// deterministic. This is the paper's first pitfall operationalized:
// avail-bw is a bursty process, so one probe is a sample, not an
// answer; the monitor's per-series rollups report min/mean/max and the
// union of variation ranges across a window of runs. A fleet-wide
// probing budget (the intrusiveness pitfall, solved per fleet rather
// than per tool) refuses runs once the byte ledger is spent.
//
//	go run ./examples/monitorfleet
package main

import (
	"fmt"
	"log"
	"time"

	"abw"
)

func main() {
	// EstBytes is the admission hint: what a run is expected to cost
	// before its first actuals are known. Without it, admission has to
	// project from worst-case tool defaults, which can price a cheap
	// tool out of a tight budget before it ever gets to prove itself.
	targets := []abw.MonitorTarget{
		{Name: "edge-a", Tenant: "acme", Tool: "spruce", Scenario: "canonical", Params: abw.Params{Repeat: 8}, EstBytes: 25_000},
		{Name: "edge-b", Tenant: "acme", Tool: "delphi", Scenario: "bursty", Params: abw.Params{Repeat: 2, StreamLen: 5}, EstBytes: 16_000},
		{Name: "core-1", Tenant: "globex", Tool: "pathload", Scenario: "step", Params: abw.Params{Repeat: 2, StreamLen: 20, MaxRounds: 6}, EstBytes: 330_000},
	}

	// A fake clock makes the monitor a pure function of (config, seed,
	// advance script): time moves only when we say so.
	clk := abw.NewFakeClock(time.Unix(1_700_000_000, 0).UTC())
	m, err := abw.NewMonitor(abw.MonitorConfig{
		Targets:  targets,
		Interval: 10 * time.Second,
		Seed:     42,
		Clock:    clk,
		// Enough budget for roughly four cycles of the whole fleet:
		// after that, admission refuses runs with ErrBudget and the
		// refusals land in the series as error points.
		Budget: abw.Budget{MaxBytes: 1_500_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Start()
	defer m.Close()

	// Simulate one minute of monitoring: advance, then wait for the
	// cycle's runs to drain before advancing again.
	const cycles = 6
	for i := 1; i <= cycles; i++ {
		clk.Advance(11 * time.Second)
		for {
			st := m.Stats()
			if st.Points >= uint64(len(targets)*i) && st.Active == 0 && st.Scheduled == len(targets) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	fmt.Printf("after %d cycles:\n\n", cycles)
	fmt.Printf("%-8s %-9s %-7s %9s %9s %9s %13s %5s\n",
		"target", "tool", "tenant", "min", "mean", "max", "variation", "runs")
	for _, s := range m.Store().All() {
		r := s.Rollup()
		fmt.Printf("%-8s %-9s %-7s %9.2f %9.2f %9.2f %6.2f–%-6.2f %2d+%de\n",
			s.Target, s.Tool, s.Tenant,
			r.Min.MbpsOf(), r.Mean.MbpsOf(), r.Max.MbpsOf(),
			r.VarLow.MbpsOf(), r.VarHigh.MbpsOf(), r.Count, r.Errors)
	}

	led := m.Ledger().Stats()
	fmt.Printf("\nfleet ledger: %d admitted, %d refused; %d probe bytes charged of %d budget\n",
		led.Admitted, led.Refused, led.Bytes, 1_500_000)
	for _, ten := range led.Tenants {
		fmt.Printf("  tenant %-7s %d admitted, %d refused, %d bytes\n",
			ten.Tenant, ten.Admitted, ten.Refused, ten.Bytes)
	}
	fmt.Println("\nthe same series are served over HTTP by cmd/abwmonitor (/api/series, /metrics)")
}
