// Package fft implements an iterative radix-2 fast Fourier transform on
// complex128 slices. It exists because the fractional-Gaussian-noise
// synthesizer (internal/fgn) needs circulant-embedding spectral
// factorization and the Go standard library has no FFT.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place forward DFT of x. len(x) must be a power
// of two. The transform is unnormalized: Forward followed by Inverse
// returns the original values.
func Forward(x []complex128) error { return transform(x, false) }

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization. len(x) must be a power of two.
func Inverse(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Cooley–Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// RealForward computes the DFT of a real sequence, returning a fresh
// complex slice. len(x) must be a power of two.
func RealForward(x []float64) ([]complex128, error) {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	if err := Forward(c); err != nil {
		return nil, err
	}
	return c, nil
}
