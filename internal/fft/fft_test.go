package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"abw/internal/rng"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func TestForwardMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, naive = %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	r := rng.New(2)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(r.Norm(), r.Norm())
	}
	orig := append([]complex128(nil), x...)
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	if err := Inverse(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round-trip mismatch at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestNonPow2Rejected(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Error("Forward accepted length 3")
	}
	if err := Inverse(make([]complex128, 12)); err == nil {
		t.Error("Inverse accepted length 12")
	}
	if err := Forward(nil); err == nil {
		t.Error("Forward accepted length 0")
	}
}

func TestParsevalProperty(t *testing.T) {
	// Parseval: sum |x|^2 == (1/n) sum |X|^2.
	r := rng.New(3)
	f := func(seed uint32) bool {
		n := 128
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(r.Norm(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		if err := Forward(x); err != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeEnergy-freqEnergy/float64(n)) < 1e-6*timeEnergy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestImpulseResponse(t *testing.T) {
	// DFT of a unit impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse DFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestRealForwardHermitianSymmetry(t *testing.T) {
	r := rng.New(4)
	x := make([]float64, 64)
	for i := range x {
		x[i] = r.Norm()
	}
	c, err := RealForward(x)
	if err != nil {
		t.Fatal(err)
	}
	n := len(c)
	for k := 1; k < n/2; k++ {
		if cmplx.Abs(c[k]-cmplx.Conj(c[n-k])) > 1e-9 {
			t.Fatalf("Hermitian symmetry violated at k=%d", k)
		}
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func BenchmarkForward4096(b *testing.B) {
	r := rng.New(5)
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(r.Norm(), 0)
	}
	work := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		if err := Forward(work); err != nil {
			b.Fatal(err)
		}
	}
}
