package sim

import (
	"testing"
	"time"

	"abw/internal/unit"
)

// forwardingLoop builds the steady-state hot path: pooled cross-traffic
// packets through one recorded link, the simulation advanced packet by
// packet so every packet is delivered (and recycled) before the next.
type forwardingLoop struct {
	s     *Sim
	route []*Link
	gap   time.Duration
	at    time.Duration
}

func newForwardingLoop() *forwardingLoop {
	s := New()
	l := s.NewLink("l", 100*unit.Mbps, time.Millisecond)
	// A huge epoch keeps the aggregate recorder on bin 0 forever, so the
	// loop's allocation count reflects the simulator alone.
	l.Attach(NewAggregateRecorder(100*unit.Mbps, time.Hour))
	return &forwardingLoop{
		s:     s,
		route: []*Link{l},
		gap:   unit.GapFor(1500, 50*unit.Mbps),
	}
}

func (f *forwardingLoop) step(n int) {
	for i := 0; i < n; i++ {
		p := f.s.NewPacket()
		p.Size, p.Kind, p.Route = 1500, KindCross, f.route
		f.s.Inject(p, f.at)
		f.at += f.gap
		f.s.RunUntil(f.at)
	}
}

func TestSteadyStateForwardingDoesNotAllocate(t *testing.T) {
	f := newForwardingLoop()
	f.step(1024) // warm the event, packet, and queue pools
	if allocs := testing.AllocsPerRun(2000, func() { f.step(1) }); allocs != 0 {
		t.Errorf("steady-state forwarding allocates %.2f per packet, want 0", allocs)
	}
}

// BenchmarkLinkForwarding measures the full per-packet cost of the
// simulator hot path — injection event, FIFO, transmission-complete
// event, propagation handoff, recorder update — at 0 allocs/op in
// steady state.
func BenchmarkLinkForwarding(b *testing.B) {
	f := newForwardingLoop()
	f.step(1024)
	b.ReportAllocs()
	b.ResetTimer()
	f.step(b.N)
}

// BenchmarkLinkForwardingUnpooled is the same loop with pooling off —
// the before/after of the free-list work, kept honest by CI.
func BenchmarkLinkForwardingUnpooled(b *testing.B) {
	f := newForwardingLoop()
	f.s.SetPooling(false)
	f.step(1024)
	b.ReportAllocs()
	b.ResetTimer()
	f.step(b.N)
}
