package sim

import (
	"fmt"
	"math"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

// Discipline is a pluggable queue policy for a Link — the active queue
// management layer of the issue's "Internet-realistic" link model. The
// link still serves packets in FIFO order; a discipline decides which
// packets are dropped instead of queued (Admit, RED-style early drop)
// or dropped instead of transmitted (Dequeue, CoDel-style head drop).
//
// A nil discipline is plain FIFO tail-drop, served by the link's
// branch-free fast path: installing no discipline keeps steady-state
// forwarding at 0 allocs/op exactly as before.
type Discipline interface {
	// Name identifies the policy in diagnostics ("fifo", "red", "codel").
	Name() string
	// Admit is consulted once per arrival, after the link's loss model
	// and before the buffer bound; returning false drops the packet on
	// arrival (an AQM early drop, counted in Link.Dropped).
	Admit(l *Link, p *Packet) bool
	// Dequeue is consulted when p is pulled from the queue for
	// transmission; returning false drops it instead (a head drop,
	// counted in Link.Dropped) and the link tries the next packet.
	Dequeue(l *Link, p *Packet) bool
}

// fifo is the explicit form of the default policy, for sweeps that
// treat "no AQM" as one point in a discipline × loss grid.
type fifo struct{}

func (fifo) Name() string                { return "fifo" }
func (fifo) Admit(*Link, *Packet) bool   { return true }
func (fifo) Dequeue(*Link, *Packet) bool { return true }

// NewFIFO returns the explicit FIFO tail-drop discipline. It behaves
// bit-identically to installing no discipline at all; the property
// tests sweep it alongside RED and CoDel.
func NewFIFO() Discipline { return fifo{} }

// REDConfig parameterizes Random Early Detection (Floyd & Jacobson
// 1993): an EWMA of the queue length in packets, linear drop
// probability between the thresholds, forced drop above MaxTh, and the
// standard count-based uniformization of drop spacing.
type REDConfig struct {
	// MinTh and MaxTh are the EWMA queue-length thresholds in packets
	// (defaults 5 and 15).
	MinTh, MaxTh int
	// MaxP is the drop probability as the average reaches MaxTh
	// (default 0.1).
	MaxP float64
	// Weight is the EWMA weight per arrival (default 0.002).
	Weight float64
	// MeanPktSize calibrates the idle-time decay of the average: an
	// idle link "transmits" virtual packets of this size (default 1500).
	MeanPktSize unit.Bytes
}

func (c REDConfig) withDefaults() REDConfig {
	if c.MinTh == 0 {
		c.MinTh = 5
	}
	if c.MaxTh == 0 {
		c.MaxTh = 15
	}
	if c.MaxP == 0 {
		c.MaxP = 0.1
	}
	if c.Weight == 0 {
		c.Weight = 0.002
	}
	if c.MeanPktSize == 0 {
		c.MeanPktSize = 1500
	}
	return c
}

// RED is the classic probabilistic early-drop AQM. All randomness
// comes from the generator handed to NewRED, so runs are exactly
// reproducible.
type RED struct {
	cfg REDConfig
	r   *rng.Rand

	avg   float64 // EWMA of the queue length in packets
	count int     // packets since the last drop (−1 = below MinTh)
}

// NewRED returns a RED discipline. It panics on a malformed config
// (thresholds out of order, probabilities outside (0, 1]): disciplines
// are constructed from compile-time constants or validated specs.
func NewRED(cfg REDConfig, r *rng.Rand) *RED {
	cfg = cfg.withDefaults()
	if cfg.MinTh < 1 || cfg.MaxTh <= cfg.MinTh {
		panic(fmt.Sprintf("sim: RED thresholds min=%d max=%d must satisfy 1 <= min < max", cfg.MinTh, cfg.MaxTh))
	}
	if cfg.MaxP <= 0 || cfg.MaxP > 1 {
		panic(fmt.Sprintf("sim: RED max_p %g outside (0, 1]", cfg.MaxP))
	}
	if cfg.Weight <= 0 || cfg.Weight > 1 {
		panic(fmt.Sprintf("sim: RED weight %g outside (0, 1]", cfg.Weight))
	}
	if r == nil {
		panic("sim: RED needs a random source")
	}
	return &RED{cfg: cfg, r: r, count: -1}
}

// Name implements Discipline.
func (q *RED) Name() string { return "red" }

// AvgQueue returns the current EWMA queue length, for tests.
func (q *RED) AvgQueue() float64 { return q.avg }

// Admit implements Discipline: update the average, then drop with the
// uniformized probability when the average sits between the thresholds.
func (q *RED) Admit(l *Link, p *Packet) bool {
	qlen := l.QueueLen()
	if l.busy {
		qlen++
	}
	if qlen == 0 {
		// Idle decay: the average ages as if the link had transmitted
		// m average-size packets during the idle period.
		idle := l.sim.now - l.idleSince
		if idle > 0 {
			m := float64(idle) / float64(unit.TxTime(q.cfg.MeanPktSize, l.Capacity))
			q.avg *= math.Pow(1-q.cfg.Weight, m)
		}
	} else {
		q.avg = (1-q.cfg.Weight)*q.avg + q.cfg.Weight*float64(qlen)
	}
	switch {
	case q.avg < float64(q.cfg.MinTh):
		q.count = -1
		return true
	case q.avg >= float64(q.cfg.MaxTh):
		q.count = 0
		return false
	}
	q.count++
	pb := q.cfg.MaxP * (q.avg - float64(q.cfg.MinTh)) / float64(q.cfg.MaxTh-q.cfg.MinTh)
	pa := pb / (1 - float64(q.count)*pb)
	if pa < 0 || pa >= 1 {
		pa = 1
	}
	if q.r.Float64() < pa {
		q.count = 0
		return false
	}
	return true
}

// Dequeue implements Discipline: RED never drops at the head.
func (q *RED) Dequeue(*Link, *Packet) bool { return true }

// CoDelConfig parameterizes Controlled Delay AQM (Nichols & Jacobson
// 2012): drop from the head when packet sojourn time has exceeded
// Target for at least one Interval, then tighten drop spacing by the
// inverse-sqrt control law.
type CoDelConfig struct {
	// Target is the acceptable standing queue delay (default 5 ms).
	Target time.Duration
	// Interval is the sliding window over which the minimum sojourn
	// must exceed Target before dropping starts (default 100 ms).
	Interval time.Duration
}

func (c CoDelConfig) withDefaults() CoDelConfig {
	if c.Target == 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Interval == 0 {
		c.Interval = 100 * time.Millisecond
	}
	return c
}

// CoDel is the sojourn-time head-drop AQM. It needs no randomness:
// the control law is fully deterministic.
type CoDel struct {
	cfg CoDelConfig

	firstAbove time.Duration // when sojourn first stayed above target (0 = not above)
	dropNext   time.Duration // next scheduled drop while in dropping state
	count      int           // drops in the current dropping state
	dropping   bool
}

// NewCoDel returns a CoDel discipline. It panics on non-positive
// target or interval.
func NewCoDel(cfg CoDelConfig) *CoDel {
	cfg = cfg.withDefaults()
	if cfg.Target <= 0 || cfg.Interval <= 0 {
		panic(fmt.Sprintf("sim: CoDel target %v / interval %v must be positive", cfg.Target, cfg.Interval))
	}
	return &CoDel{cfg: cfg}
}

// Name implements Discipline.
func (q *CoDel) Name() string { return "codel" }

// Admit implements Discipline: CoDel admits everything (the buffer
// bound still applies) and acts at dequeue time.
func (q *CoDel) Admit(*Link, *Packet) bool { return true }

// okToDrop updates the above-target tracking for one dequeued packet
// and reports whether the standing-queue condition currently holds.
func (q *CoDel) okToDrop(l *Link, p *Packet, now time.Duration) bool {
	sojourn := now - p.enqAt
	if sojourn < q.cfg.Target || l.queuedBytes <= 1500 {
		q.firstAbove = 0
		return false
	}
	if q.firstAbove == 0 {
		q.firstAbove = now + q.cfg.Interval
		return false
	}
	return now >= q.firstAbove
}

// controlLaw returns the next drop time: Interval/sqrt(count) after t.
func (q *CoDel) controlLaw(t time.Duration) time.Duration {
	return t + time.Duration(float64(q.cfg.Interval)/math.Sqrt(float64(q.count)))
}

// Dequeue implements Discipline with the reference CoDel state
// machine: enter the dropping state after a full interval above
// target, drop with inverse-sqrt spacing while it persists, leave as
// soon as the sojourn time recovers.
func (q *CoDel) Dequeue(l *Link, p *Packet) bool {
	now := l.sim.now
	ok := q.okToDrop(l, p, now)
	if q.dropping {
		if !ok {
			q.dropping = false
			return true
		}
		if now >= q.dropNext {
			q.count++
			q.dropNext = q.controlLaw(q.dropNext)
			return false
		}
		return true
	}
	if ok {
		q.dropping = true
		// Re-entering shortly after the last dropping state resumes
		// near the previous drop rate instead of starting over.
		if now-q.dropNext < q.cfg.Interval && q.count > 2 {
			q.count -= 2
		} else {
			q.count = 1
		}
		q.dropNext = q.controlLaw(now)
		return false
	}
	return true
}
