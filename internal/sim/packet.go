package sim

import (
	"time"

	"abw/internal/unit"
)

// Kind classifies packets so recorders can separate probe traffic from
// the cross traffic whose avail-bw is being estimated.
type Kind uint8

// Packet kinds.
const (
	KindCross Kind = iota // background cross traffic
	KindProbe             // measurement probe packets
	KindData              // TCP data segments
	KindAck               // TCP acknowledgments

	// kindSentinel terminates the enum. New kinds go above it, so the
	// recorder's per-kind counters size themselves automatically.
	kindSentinel
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCross:
		return "cross"
	case KindProbe:
		return "probe"
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	default:
		return "unknown"
	}
}

// Packet is one simulated packet. Packets are routed hop-by-hop through
// Route; when the last hop's transmission (plus propagation) completes,
// OnArrive fires with the delivery time.
type Packet struct {
	Size unit.Bytes
	Kind Kind

	// Flow and Seq identify the packet within its sender's stream; the
	// probing receiver uses them to reconstruct one-way delays, and TCP
	// uses them for its sequence space.
	Flow int
	Seq  int

	// SentAt is stamped by Inject with the injection time.
	SentAt time.Duration

	// Route is the remaining sequence of links; hop indexes the next one.
	Route []*Link
	hop   int

	// OnArrive, if non-nil, is called at final delivery.
	OnArrive func(p *Packet, at time.Duration)

	// OnDrop, if non-nil, is called when any link on the route drops the
	// packet due to a full buffer (TCP relies on this only for counters;
	// loss detection is end-to-end).
	OnDrop func(p *Packet, l *Link, at time.Duration)

	// Meta carries protocol-private state (e.g. TCP segment headers).
	Meta any

	// enqAt is stamped by each link when the packet joins its queue;
	// CoDel reads it at dequeue time as the packet's sojourn time.
	enqAt time.Duration

	// pooled marks packets obtained from Sim.NewPacket: they return to
	// the simulation's free list after their final OnArrive/OnDrop.
	pooled bool
}

// Inject introduces the packet into the simulation at time at, delivering
// it to the first link of its route (or straight to OnArrive for an empty
// route, which models a zero-length path). The injection event is
// allocation-free: it reuses a pooled event with the simulation's
// long-lived injection callback.
func (s *Sim) Inject(p *Packet, at time.Duration) {
	s.callbacks()
	s.atArg(at, s.injectFn, p)
}

// forward moves the packet into the next element of its route. Packets
// from NewPacket are recycled once the final OnArrive returns.
func (s *Sim) forward(p *Packet) {
	if p.hop < len(p.Route) {
		p.Route[p.hop].deliver(p)
		return
	}
	if p.OnArrive != nil {
		p.OnArrive(p, s.now)
	}
	s.releasePacket(p)
}
