package sim

import (
	"fmt"
	"time"

	"abw/internal/unit"
)

// CapacityStep is one segment of a piecewise-constant link-capacity
// profile: the link transmits at Rate from At until the next step (the
// last step extends forever). Variable capacity is the model for
// wireless fading and rate-adaptive links — the condition the paper's
// fixed-capacity tools have no answer for.
type CapacityStep struct {
	At   time.Duration
	Rate unit.Rate
}

// ValidateCapacitySteps checks a capacity profile: non-empty, first
// step at time 0, strictly increasing step times, positive rates.
func ValidateCapacitySteps(steps []CapacityStep) error {
	if len(steps) == 0 {
		return fmt.Errorf("sim: a capacity schedule needs at least one step")
	}
	if steps[0].At != 0 {
		return fmt.Errorf("sim: the first capacity step must be at 0 (got %v)", steps[0].At)
	}
	for i, st := range steps {
		if st.Rate <= 0 {
			return fmt.Errorf("sim: capacity step %d rate %v must be positive", i, st.Rate)
		}
		if i > 0 && st.At <= steps[i-1].At {
			return fmt.Errorf("sim: capacity steps must be strictly increasing in time (step %d at %v after %v)",
				i, st.At, steps[i-1].At)
		}
	}
	return nil
}

// MeanCapacity returns the time-weighted mean rate of the profile over
// [0, horizon), with the last step extending to the horizon — the
// long-run capacity used by analytic ground truth. It panics on an
// invalid schedule or non-positive horizon.
func MeanCapacity(steps []CapacityStep, horizon time.Duration) unit.Rate {
	if err := ValidateCapacitySteps(steps); err != nil {
		panic(err)
	}
	if horizon <= 0 {
		panic(fmt.Sprintf("sim: MeanCapacity horizon %v must be positive", horizon))
	}
	return unit.Rate(capIntegralBits(steps, 0, horizon) / horizon.Seconds())
}

// capIntegralBits returns ∫C(s)ds in bits over [from, to) for a valid
// step profile (last step extends forever).
func capIntegralBits(steps []CapacityStep, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	var total float64
	for i, st := range steps {
		if st.At >= to {
			break
		}
		segEnd := to
		if i+1 < len(steps) && steps[i+1].At < to {
			segEnd = steps[i+1].At
		}
		lo, hi := st.At, segEnd
		if lo < from {
			lo = from
		}
		if hi > lo {
			total += float64(st.Rate) * (hi - lo).Seconds()
		}
	}
	return total
}

// SetCapacitySchedule drives the link's capacity as a piecewise-
// constant process. Rate changes take effect for subsequent
// transmissions: a packet already in service completes at the rate it
// started with (the store-and-forward analogue of a modem retraining
// between frames). Call it at setup time, before the simulation runs.
//
// The schedule only changes what the link does; attach the same steps
// to the link's Recorder (Recorder.SetCapacitySchedule) so ground
// truth stays exact — see the recorder's documentation for the
// time-varying form of the paper's Equation (2).
//
// It panics on an invalid schedule (ValidateCapacitySteps) or when the
// simulation clock has already passed the first step.
func (l *Link) SetCapacitySchedule(steps []CapacityStep) {
	if err := ValidateCapacitySteps(steps); err != nil {
		panic(err)
	}
	if l.sim.now > 0 {
		panic(fmt.Sprintf("sim: capacity schedule installed at t=%v; install at setup time", l.sim.now))
	}
	own := make([]CapacityStep, len(steps))
	copy(own, steps)
	l.Capacity = own[0].Rate
	l.capSteps = own
	// Steps are chained lazily: each event applies one rate and
	// schedules the next, so a long fading schedule costs one pending
	// event at a time, not len(steps) heap entries up front.
	var apply func(i int)
	apply = func(i int) {
		l.Capacity = own[i].Rate
		if i+1 < len(own) {
			l.sim.At(own[i+1].At, func() { apply(i + 1) })
		}
	}
	if len(own) > 1 {
		l.sim.At(own[1].At, func() { apply(1) })
	}
}

// CapacitySchedule returns the installed capacity profile (nil for a
// fixed-capacity link). Shared slice; treat as read-only.
func (l *Link) CapacitySchedule() []CapacityStep { return l.capSteps }
