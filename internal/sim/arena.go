package sim

import "abw/internal/eventq"

// Footprint is the pooled-object census of one finished simulation:
// how many event structs and packets its free lists held at the end.
// Arena owners record it per scenario and Grow the arena to match
// before the next compile of the same scenario, so steady-state reuse
// never warms pools from cold.
type Footprint struct {
	Events  int
	Packets int
}

// Max returns the element-wise maximum of two footprints — the sizing
// that satisfies both runs.
func (f Footprint) Max(o Footprint) Footprint {
	if o.Events > f.Events {
		f.Events = o.Events
	}
	if o.Packets > f.Packets {
		f.Packets = o.Packets
	}
	return f
}

// Arena owns simulation memory across runs: event structs, packets,
// and aggregate-recorder bin storage reclaimed from finished
// simulations and handed to fresh ones. One arena belongs to exactly
// one goroutine (a runner shard); nothing here is synchronized.
//
// Ownership rules:
//   - Prime/PrimeRecorder move storage arena → simulation; Drain/
//     DrainRecorder move it back. A simulation drained back into the
//     arena must be idle and is dead afterwards — its queue and pools
//     are empty.
//   - Priming only seeds free lists and pre-allocated (zero-length)
//     bin storage; it never changes scheduling order, packet contents,
//     or recorded values. A primed run is bit-identical to a cold run.
type Arena struct {
	events  []*eventq.Event
	packets []*Packet
	bins    [][]epochBin
}

// Grow expands the arena's pools to at least the given footprint,
// allocating each shortfall as one contiguous block.
func (a *Arena) Grow(f Footprint) {
	if d := f.Events - len(a.events); d > 0 {
		a.events = append(a.events, eventq.NewPool(d)...)
	}
	if d := f.Packets - len(a.packets); d > 0 {
		block := make([]Packet, d)
		for i := range block {
			a.packets = append(a.packets, &block[i])
		}
	}
}

// Prime hands the arena's event and packet pools to a fresh simulation.
// Call it before any scheduling; the arena's pools are empty afterwards
// until the next Drain. The slices move by ownership transfer — a
// steady-state Drain/Grow/Prime cycle passes the same backing arrays
// back and forth without copying. Unpooled simulations take nothing and
// the arena keeps its pools.
func (a *Arena) Prime(s *Sim) {
	if s.noPool {
		return
	}
	s.q.Prime(a.events)
	a.events = nil
	if len(s.pktFree) == 0 {
		s.pktFree = a.packets
	} else {
		s.pktFree = append(s.pktFree, a.packets...)
	}
	a.packets = nil
}

// Drain reclaims a finished simulation's event and packet pools into
// the arena and returns their footprint. The simulation must be idle
// (no event mid-fire); it is logically empty afterwards. Packets still
// in flight at the horizon are not recovered — only the free list
// moves — so the footprint reflects what the next run can actually
// reuse.
func (a *Arena) Drain(s *Sim) Footprint {
	e0, p0 := len(a.events), len(a.packets)
	a.events = s.q.Reclaim(a.events)
	if len(a.packets) == 0 {
		a.packets, s.pktFree = s.pktFree, a.packets[:0]
	} else {
		a.packets = append(a.packets, s.pktFree...)
		for i := range s.pktFree {
			s.pktFree[i] = nil
		}
		s.pktFree = s.pktFree[:0]
	}
	return Footprint{Events: len(a.events) - e0, Packets: len(a.packets) - p0}
}

// PrimeRecorder hands one reclaimed bin array to an aggregate-mode
// recorder that has not started recording. Full-mode recorders and
// recorders already holding bins are left alone.
func (a *Arena) PrimeRecorder(r *Recorder) {
	if r.epoch <= 0 || r.bins != nil || len(a.bins) == 0 {
		return
	}
	n := len(a.bins) - 1
	r.bins = a.bins[n]
	a.bins[n] = nil
	a.bins = a.bins[:n]
}

// DrainRecorder reclaims an aggregate recorder's bin storage into the
// arena. The recorder is reset: its recorded history is gone.
func (a *Arena) DrainRecorder(r *Recorder) {
	if r.epoch > 0 && cap(r.bins) > 0 {
		a.bins = append(a.bins, r.bins[:0])
	}
	r.bins = nil
	r.arrivals = nil
	r.busy = nil
	r.cum = nil
	r.cumCap = nil
	r.drops = 0
}
