package sim

import (
	"fmt"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

// Link is a store-and-forward output link: packets queue in FIFO order,
// are transmitted one at a time at Capacity, and reach the next hop after
// PropDelay. A Link belongs to exactly one Sim.
//
// Beyond the plain FIFO tail-drop fixed-capacity model, a link can be
// given Internet-realistic behavior, each piece independently optional
// and off by default:
//
//   - a queue Discipline (SetDiscipline): RED early drops, CoDel head
//     drops — service order stays FIFO;
//   - a LossModel (SetLoss): random transmission loss at the input,
//     before queueing, counted separately from queue drops;
//   - propagation jitter (SetJitter): bounded random extra propagation
//     delay per packet, so packets can overtake in flight — bounded
//     reordering;
//   - a capacity schedule (SetCapacitySchedule): piecewise-constant
//     time-varying capacity (fading).
//
// With none of these installed the hot path is exactly the pre-existing
// zero-allocation FIFO fast path.
type Link struct {
	sim *Sim

	// Name identifies the link in diagnostics ("hop2", "tight", ...).
	Name string
	// Capacity is the transmission rate C_i. Under a capacity schedule
	// it holds the current rate and changes as the simulation runs.
	Capacity unit.Rate
	// PropDelay is the fixed propagation latency to the next hop.
	PropDelay time.Duration
	// BufferBytes caps the queue size in bytes, counting queued packets
	// but not the one in transmission. Zero means unbounded (the paper's
	// simulations never drop probe traffic except in the TCP study).
	BufferBytes unit.Bytes

	queue       []*Packet
	head        int
	queuedBytes unit.Bytes
	busy        bool
	idleSince   time.Duration // when busy last went false (0 = since creation)

	// txPkt/txStart describe the packet in service, read back by txDone
	// so the transmission-complete event needs no per-packet closure.
	txPkt   *Packet
	txStart time.Duration

	// Pluggable behavior; all nil/zero by default.
	disc       Discipline
	loss       LossModel
	jitterMax  time.Duration
	jitterRand *rng.Rand
	capSteps   []CapacityStep

	// Statistics.
	forwarded    int64
	dropped      int64
	droppedBytes unit.Bytes
	lost         int64
	lostBytes    unit.Bytes
	bytesServed  unit.Bytes

	rec *Recorder
}

// NewLink attaches a link to the simulation. Capacity must be positive.
func (s *Sim) NewLink(name string, capacity unit.Rate, propDelay time.Duration) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: link %q with non-positive capacity %v", name, capacity))
	}
	if propDelay < 0 {
		panic(fmt.Sprintf("sim: link %q with negative propagation delay %v", name, propDelay))
	}
	return &Link{sim: s, Name: name, Capacity: capacity, PropDelay: propDelay}
}

// Attach associates a ground-truth recorder with the link. Pass nil to
// detach.
func (l *Link) Attach(r *Recorder) { l.rec = r }

// Recorder returns the attached ground-truth recorder (nil if none).
func (l *Link) Recorder() *Recorder { return l.rec }

// SetDiscipline installs a queue discipline (RED, CoDel, explicit
// FIFO); nil restores the branch-free FIFO tail-drop fast path.
func (l *Link) SetDiscipline(d Discipline) { l.disc = d }

// Discipline returns the installed queue discipline (nil = FIFO).
func (l *Link) Discipline() Discipline { return l.disc }

// SetLoss installs a random loss process at the link input; nil
// removes it.
func (l *Link) SetLoss(m LossModel) { l.loss = m }

// Loss returns the installed loss model (nil if none).
func (l *Link) Loss() LossModel { return l.loss }

// SetJitter adds independent uniform extra propagation delay in
// [0, max) to every forwarded packet, drawn from r — the bounded
// reordering model: a packet can overtake at most the packets within
// max of it. Pass max 0 to disable. It panics on a negative max or,
// for a positive max, a nil random source.
func (l *Link) SetJitter(max time.Duration, r *rng.Rand) {
	if max < 0 {
		panic(fmt.Sprintf("sim: negative jitter bound %v", max))
	}
	if max > 0 && r == nil {
		panic("sim: jitter needs a random source")
	}
	l.jitterMax, l.jitterRand = max, r
}

// Jitter returns the jitter bound (0 = in-order delivery).
func (l *Link) Jitter() time.Duration { return l.jitterMax }

// Forwarded returns the number of packets fully transmitted by the link.
func (l *Link) Forwarded() int64 { return l.forwarded }

// Dropped returns the number of packets dropped by the queue: buffer
// tail drops plus discipline (AQM) drops. Random-loss kills are
// counted by Lost instead.
func (l *Link) Dropped() int64 { return l.dropped }

// DroppedBytes returns the bytes dropped by the queue.
func (l *Link) DroppedBytes() unit.Bytes { return l.droppedBytes }

// Lost returns the number of packets killed by the link's loss model.
func (l *Link) Lost() int64 { return l.lost }

// LostBytes returns the bytes killed by the link's loss model.
func (l *Link) LostBytes() unit.Bytes { return l.lostBytes }

// BytesServed returns the total bytes transmitted.
func (l *Link) BytesServed() unit.Bytes { return l.bytesServed }

// QueueLen returns the number of packets waiting (excluding the one in
// service).
func (l *Link) QueueLen() int { return len(l.queue) - l.head }

// QueuedBytes returns the bytes waiting in the queue.
func (l *Link) QueuedBytes() unit.Bytes { return l.queuedBytes }

// deliver is the arrival of a packet at the link input.
func (l *Link) deliver(p *Packet) {
	now := l.sim.now
	if l.rec != nil {
		l.rec.arrival(now, p)
	}
	if l.loss != nil && l.loss.Lose(p) {
		l.lost++
		l.lostBytes += p.Size
		if l.rec != nil {
			l.rec.drop(now, p)
		}
		if p.OnDrop != nil {
			p.OnDrop(p, l, now)
		}
		l.sim.releasePacket(p)
		return
	}
	if l.disc != nil && !l.disc.Admit(l, p) {
		l.drop(p, now)
		return
	}
	if l.BufferBytes > 0 && l.queuedBytes+p.Size > l.BufferBytes && l.busy {
		l.drop(p, now)
		return
	}
	p.enqAt = now
	l.push(p)
	l.queuedBytes += p.Size
	if !l.busy {
		l.startTx()
	}
}

// drop disposes of a queue-dropped packet (tail drop or AQM drop).
func (l *Link) drop(p *Packet, now time.Duration) {
	l.dropped++
	l.droppedBytes += p.Size
	if l.rec != nil {
		l.rec.drop(now, p)
	}
	if p.OnDrop != nil {
		p.OnDrop(p, l, now)
	}
	l.sim.releasePacket(p)
}

// startTx begins transmitting the next queued packet that survives the
// discipline's dequeue check (head drops pull the following packet).
// The completion event carries only the link: txDone reads the
// in-service packet back from the link, so steady-state forwarding
// schedules no closures.
func (l *Link) startTx() {
	for l.QueueLen() > 0 {
		p := l.pop()
		l.queuedBytes -= p.Size
		if l.disc != nil && !l.disc.Dequeue(l, p) {
			l.drop(p, l.sim.now)
			continue
		}
		l.busy = true
		l.txPkt = p
		l.txStart = l.sim.now
		l.sim.callbacks()
		l.sim.atArg(l.txStart+unit.TxTime(p.Size, l.Capacity), l.sim.txDoneFn, l)
		return
	}
	if l.busy {
		l.busy = false
		l.idleSince = l.sim.now
	}
}

// txDone completes the in-service packet's transmission at the current
// virtual time (the scheduled tx-end instant).
func (l *Link) txDone() {
	p, start, txEnd := l.txPkt, l.txStart, l.sim.now
	l.txPkt = nil
	l.forwarded++
	l.bytesServed += p.Size
	if l.rec != nil {
		l.rec.busyInterval(start, txEnd)
	}
	// Hand off to the next hop after propagation (plus per-packet
	// jitter when reordering is enabled). Propagation is pipelined:
	// the link can transmit the next packet while this one is in
	// flight — which is exactly what lets a jittered packet overtake.
	prop := l.PropDelay
	if l.jitterMax > 0 {
		prop += time.Duration(l.jitterRand.Float64() * float64(l.jitterMax))
	}
	if prop == 0 {
		p.hop++
		l.sim.forward(p)
	} else {
		l.sim.atArg(txEnd+prop, l.sim.advanceFn, p)
	}
	l.startTx()
}

// push/pop implement an amortized O(1) FIFO over a slice, compacting when
// the dead prefix dominates so long simulations do not leak memory.
func (l *Link) push(p *Packet) { l.queue = append(l.queue, p) }

func (l *Link) pop() *Packet {
	p := l.queue[l.head]
	l.queue[l.head] = nil
	l.head++
	if l.head > 64 && l.head*2 >= len(l.queue) {
		n := copy(l.queue, l.queue[l.head:])
		l.queue = l.queue[:n]
		l.head = 0
	}
	return p
}
