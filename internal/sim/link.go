package sim

import (
	"fmt"
	"time"

	"abw/internal/unit"
)

// Link is a store-and-forward output link: packets queue in FIFO order,
// are transmitted one at a time at Capacity, and reach the next hop after
// PropDelay. A Link belongs to exactly one Sim.
type Link struct {
	sim *Sim

	// Name identifies the link in diagnostics ("hop2", "tight", ...).
	Name string
	// Capacity is the transmission rate C_i.
	Capacity unit.Rate
	// PropDelay is the fixed propagation latency to the next hop.
	PropDelay time.Duration
	// BufferBytes caps the queue size in bytes, counting queued packets
	// but not the one in transmission. Zero means unbounded (the paper's
	// simulations never drop probe traffic except in the TCP study).
	BufferBytes unit.Bytes

	queue       []*Packet
	head        int
	queuedBytes unit.Bytes
	busy        bool

	// txPkt/txStart describe the packet in service, read back by txDone
	// so the transmission-complete event needs no per-packet closure.
	txPkt   *Packet
	txStart time.Duration

	// Statistics.
	forwarded   int64
	dropped     int64
	bytesServed unit.Bytes

	rec *Recorder
}

// NewLink attaches a link to the simulation. Capacity must be positive.
func (s *Sim) NewLink(name string, capacity unit.Rate, propDelay time.Duration) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: link %q with non-positive capacity %v", name, capacity))
	}
	if propDelay < 0 {
		panic(fmt.Sprintf("sim: link %q with negative propagation delay %v", name, propDelay))
	}
	return &Link{sim: s, Name: name, Capacity: capacity, PropDelay: propDelay}
}

// Attach associates a ground-truth recorder with the link. Pass nil to
// detach.
func (l *Link) Attach(r *Recorder) { l.rec = r }

// Recorder returns the attached ground-truth recorder (nil if none).
func (l *Link) Recorder() *Recorder { return l.rec }

// Forwarded returns the number of packets fully transmitted by the link.
func (l *Link) Forwarded() int64 { return l.forwarded }

// Dropped returns the number of packets dropped at the queue tail.
func (l *Link) Dropped() int64 { return l.dropped }

// BytesServed returns the total bytes transmitted.
func (l *Link) BytesServed() unit.Bytes { return l.bytesServed }

// QueueLen returns the number of packets waiting (excluding the one in
// service).
func (l *Link) QueueLen() int { return len(l.queue) - l.head }

// QueuedBytes returns the bytes waiting in the queue.
func (l *Link) QueuedBytes() unit.Bytes { return l.queuedBytes }

// deliver is the arrival of a packet at the link input.
func (l *Link) deliver(p *Packet) {
	now := l.sim.now
	if l.rec != nil {
		l.rec.arrival(now, p)
	}
	if l.BufferBytes > 0 && l.queuedBytes+p.Size > l.BufferBytes && l.busy {
		l.dropped++
		if l.rec != nil {
			l.rec.drop(now, p)
		}
		if p.OnDrop != nil {
			p.OnDrop(p, l, now)
		}
		l.sim.releasePacket(p)
		return
	}
	l.push(p)
	l.queuedBytes += p.Size
	if !l.busy {
		l.startTx()
	}
}

// startTx begins transmitting the head-of-line packet. The completion
// event carries only the link: txDone reads the in-service packet back
// from the link, so steady-state forwarding schedules no closures.
func (l *Link) startTx() {
	p := l.pop()
	l.queuedBytes -= p.Size
	l.busy = true
	l.txPkt = p
	l.txStart = l.sim.now
	l.sim.callbacks()
	l.sim.atArg(l.txStart+unit.TxTime(p.Size, l.Capacity), l.sim.txDoneFn, l)
}

// txDone completes the in-service packet's transmission at the current
// virtual time (the scheduled tx-end instant).
func (l *Link) txDone() {
	p, start, txEnd := l.txPkt, l.txStart, l.sim.now
	l.txPkt = nil
	l.forwarded++
	l.bytesServed += p.Size
	if l.rec != nil {
		l.rec.busyInterval(start, txEnd)
	}
	// Hand off to the next hop after propagation. Propagation is
	// pipelined: the link can transmit the next packet while this
	// one is in flight.
	if l.PropDelay == 0 {
		p.hop++
		l.sim.forward(p)
	} else {
		l.sim.atArg(txEnd+l.PropDelay, l.sim.advanceFn, p)
	}
	if l.QueueLen() > 0 {
		l.startTx()
	} else {
		l.busy = false
	}
}

// push/pop implement an amortized O(1) FIFO over a slice, compacting when
// the dead prefix dominates so long simulations do not leak memory.
func (l *Link) push(p *Packet) { l.queue = append(l.queue, p) }

func (l *Link) pop() *Packet {
	p := l.queue[l.head]
	l.queue[l.head] = nil
	l.head++
	if l.head > 64 && l.head*2 >= len(l.queue) {
		n := copy(l.queue, l.queue[l.head:])
		l.queue = l.queue[:n]
		l.head = 0
	}
	return p
}
