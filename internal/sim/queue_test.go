package sim

import (
	"math"
	"testing"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

// injectCBR schedules n packets of size bytes at a constant rate onto
// the link, starting at time start.
func injectCBR(s *Sim, l *Link, n int, size unit.Bytes, rate unit.Rate, start time.Duration) {
	gap := unit.GapFor(size, rate)
	for i := 0; i < n; i++ {
		p := s.NewPacket()
		p.Size = size
		p.Kind = KindCross
		p.Route = []*Link{l}
		s.Inject(p, start+time.Duration(i)*gap)
	}
}

func TestExplicitFIFOMatchesNilDiscipline(t *testing.T) {
	run := func(d Discipline) (int64, unit.Bytes) {
		s := New()
		l := s.NewLink("l", 10*unit.Mbps, 0)
		l.BufferBytes = 3000
		l.SetDiscipline(d)
		injectCBR(s, l, 200, 1500, 20*unit.Mbps, 0) // 2x overload: tail drops
		s.Run()
		return l.Forwarded(), l.DroppedBytes()
	}
	fn, fb := run(nil)
	en, eb := run(NewFIFO())
	if fn != en || fb != eb {
		t.Errorf("explicit FIFO (fwd=%d dropB=%d) differs from nil discipline (fwd=%d dropB=%d)", en, eb, fn, fb)
	}
	if fn == 200 {
		t.Error("overloaded bounded queue dropped nothing; test is vacuous")
	}
}

func TestREDValidation(t *testing.T) {
	r := rng.New(1)
	for name, fn := range map[string]func(){
		"thresholds":  func() { NewRED(REDConfig{MinTh: 10, MaxTh: 5}, r) },
		"maxp":        func() { NewRED(REDConfig{MaxP: 1.5}, r) },
		"weight":      func() { NewRED(REDConfig{Weight: -0.1}, r) },
		"nil rng":     func() { NewRED(REDConfig{}, nil) },
		"codel":       func() { NewCoDel(CoDelConfig{Target: -time.Millisecond}) },
		"bern range":  func() { NewBernoulliLoss(1.0, r) },
		"bern rng":    func() { NewBernoulliLoss(0.1, nil) },
		"ge loss":     func() { NewGilbertElliott(GilbertElliottConfig{LossBad: 1.0}, r) },
		"ge rng":      func() { NewGilbertElliott(GilbertElliottConfig{}, nil) },
		"jitter":      func() { New().NewLink("l", 1*unit.Mbps, 0).SetJitter(-time.Millisecond, r) },
		"jitter rng":  func() { New().NewLink("l", 1*unit.Mbps, 0).SetJitter(time.Millisecond, nil) },
		"cap empty":   func() { New().NewLink("l", 1*unit.Mbps, 0).SetCapacitySchedule(nil) },
		"cap start":   func() { MeanCapacity([]CapacityStep{{At: time.Second, Rate: 1}}, time.Minute) },
		"cap order":   func() { MeanCapacity([]CapacityStep{{0, 1 * unit.Mbps}, {0, 2 * unit.Mbps}}, time.Minute) },
		"cap rate":    func() { MeanCapacity([]CapacityStep{{0, 0}}, time.Minute) },
		"cap horizon": func() { MeanCapacity([]CapacityStep{{0, 1 * unit.Mbps}}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid config did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestREDDropsUnderCongestion drives RED well above MaxTh and checks it
// sheds load before the physical buffer forces tail drops, while an
// uncongested link sees no drops at all.
func TestREDDropsUnderCongestion(t *testing.T) {
	s := New()
	l := s.NewLink("red", 10*unit.Mbps, 0)
	red := NewRED(REDConfig{}, rng.New(7))
	l.SetDiscipline(red)
	injectCBR(s, l, 2000, 1500, 15*unit.Mbps, 0) // 1.5x overload, unbounded buffer
	s.Run()
	if l.Dropped() == 0 {
		t.Error("RED dropped nothing under sustained 1.5x overload")
	}
	if got := l.Forwarded() + l.Dropped(); got != 2000 {
		t.Errorf("forwarded+dropped = %d, want 2000", got)
	}

	s2 := New()
	l2 := s2.NewLink("red", 10*unit.Mbps, 0)
	l2.SetDiscipline(NewRED(REDConfig{}, rng.New(7)))
	injectCBR(s2, l2, 2000, 1500, 3*unit.Mbps, 0) // 30% load
	s2.Run()
	if l2.Dropped() != 0 {
		t.Errorf("RED dropped %d packets on an uncongested link", l2.Dropped())
	}
}

func TestREDIdleDecay(t *testing.T) {
	s := New()
	l := s.NewLink("red", 10*unit.Mbps, 0)
	red := NewRED(REDConfig{}, rng.New(3))
	l.SetDiscipline(red)
	// Congest, then go idle for a long time, then send one packet: the
	// average must have decayed back below MinTh so it is admitted.
	injectCBR(s, l, 500, 1500, 40*unit.Mbps, 0)
	s.Run()
	avgAfterBurst := red.AvgQueue()
	if avgAfterBurst < float64(red.cfg.MinTh) {
		t.Fatalf("avg %.2f after 4x overload below MinTh; congestion phase too weak", avgAfterBurst)
	}
	p := s.NewPacket()
	p.Size = 1500
	p.Route = []*Link{l}
	s.Inject(p, s.Now()+10*time.Second)
	s.Run()
	if red.AvgQueue() >= avgAfterBurst/2 {
		t.Errorf("avg %.2f did not decay during 10s idle (was %.2f)", red.AvgQueue(), avgAfterBurst)
	}
	if l.Lost() != 0 {
		t.Errorf("lost = %d without a loss model", l.Lost())
	}
}

func TestCoDelDropsOnStandingQueue(t *testing.T) {
	s := New()
	l := s.NewLink("codel", 10*unit.Mbps, 0)
	l.SetDiscipline(NewCoDel(CoDelConfig{}))
	// 1.5x overload for 3 seconds: sojourn grows far beyond the 5 ms
	// target, so CoDel must enter its dropping state.
	injectCBR(s, l, 2500, 1500, 15*unit.Mbps, 0)
	s.Run()
	if l.Dropped() == 0 {
		t.Error("CoDel dropped nothing with a multi-second standing queue")
	}
	if got := l.Forwarded() + l.Dropped(); got != 2500 {
		t.Errorf("forwarded+dropped = %d, want 2500", got)
	}

	// Below capacity the sojourn never exceeds target: no drops.
	s2 := New()
	l2 := s2.NewLink("codel", 10*unit.Mbps, 0)
	l2.SetDiscipline(NewCoDel(CoDelConfig{}))
	injectCBR(s2, l2, 2500, 1500, 8*unit.Mbps, 0)
	s2.Run()
	if l2.Dropped() != 0 {
		t.Errorf("CoDel dropped %d packets with no standing queue", l2.Dropped())
	}
}

func TestBernoulliLossRateAndAccounting(t *testing.T) {
	const n, p = 20000, 0.03
	s := New()
	l := s.NewLink("lossy", 100*unit.Mbps, 0)
	l.SetLoss(NewBernoulliLoss(p, rng.New(11)))
	var dropCalls int64
	for i := 0; i < n; i++ {
		pk := s.NewPacket()
		pk.Size = 1000
		pk.Route = []*Link{l}
		pk.OnDrop = func(*Packet, *Link, time.Duration) { dropCalls++ }
		s.Inject(pk, time.Duration(i)*time.Millisecond)
	}
	s.Run()
	if got := l.Forwarded() + l.Lost(); got != n {
		t.Errorf("forwarded+lost = %d, want %d", got, n)
	}
	if l.Dropped() != 0 {
		t.Errorf("loss-model kills leaked into Dropped: %d", l.Dropped())
	}
	if dropCalls != l.Lost() {
		t.Errorf("OnDrop fired %d times for %d losses", dropCalls, l.Lost())
	}
	if l.LostBytes() != unit.Bytes(l.Lost())*1000 {
		t.Errorf("LostBytes = %d for %d 1000B losses", l.LostBytes(), l.Lost())
	}
	rate := float64(l.Lost()) / n
	if math.Abs(rate-p) > 0.01 {
		t.Errorf("empirical loss rate %.4f far from %.2f", rate, p)
	}
}

func TestGilbertElliottBurstsAndMeanRate(t *testing.T) {
	cfg := GilbertElliottConfig{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.6}
	ge := NewGilbertElliott(cfg, rng.New(5))
	want := (0.01 / 0.21) * 0.6
	if got := ge.MeanRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanRate = %g, want %g", got, want)
	}
	// Empirical rate over a long stream approaches the stationary rate,
	// and identical seeds give identical loss sequences.
	const n = 200000
	losses, runs, cur := 0, []int{}, 0
	ge2 := NewGilbertElliott(cfg, rng.New(5))
	p := &Packet{}
	for i := 0; i < n; i++ {
		a := ge.Lose(p)
		if b := ge2.Lose(p); a != b {
			t.Fatalf("same-seed Gilbert–Elliott diverged at packet %d", i)
		}
		if a {
			losses++
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	rate := float64(losses) / n
	if math.Abs(rate-want) > 0.005 {
		t.Errorf("empirical rate %.4f far from stationary %.4f", rate, want)
	}
	// Burstiness: consecutive-loss runs must be longer on average than
	// an independent process at the same rate would produce (1/(1-p)).
	var sum int
	for _, r := range runs {
		sum += r
	}
	meanRun := float64(sum) / float64(len(runs))
	iid := 1 / (1 - want)
	if meanRun < 1.2*iid {
		t.Errorf("mean loss-run %.2f not meaningfully burstier than i.i.d. %.2f", meanRun, iid)
	}
}

func TestJitterReordersBoundedly(t *testing.T) {
	const n = 500
	s := New()
	// Fast link so transmission gaps are small relative to the jitter
	// bound: overtakes must happen.
	l := s.NewLink("jit", 1000*unit.Mbps, 5*time.Millisecond)
	l.SetJitter(2*time.Millisecond, rng.New(9))
	var order []int
	var times []time.Duration
	for i := 0; i < n; i++ {
		p := s.NewPacket()
		p.Size = 1500
		p.Seq = i
		p.Route = []*Link{l}
		p.OnArrive = func(p *Packet, at time.Duration) {
			order = append(order, p.Seq)
			times = append(times, at)
		}
		s.Inject(p, time.Duration(i)*20*time.Microsecond)
	}
	s.Run()
	if len(order) != n {
		t.Fatalf("delivered %d packets, want %d", len(order), n)
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
		if times[i] < times[i-1] {
			t.Fatalf("delivery times went backwards at %d", i)
		}
	}
	if inversions == 0 {
		t.Error("no reordering with jitter >> inter-packet gap")
	}
	// Bounded: a packet can be displaced at most jitter/gap positions.
	maxDisp := 0
	for pos, seq := range order {
		if d := seq - pos; d > maxDisp {
			maxDisp = d
		}
	}
	bound := int(2*time.Millisecond/(20*time.Microsecond)) + 1
	if maxDisp > bound {
		t.Errorf("displacement %d exceeds jitter bound %d positions", maxDisp, bound)
	}

	// Same seed, same schedule: bit-identical delivery order.
	s2 := New()
	l2 := s2.NewLink("jit", 1000*unit.Mbps, 5*time.Millisecond)
	l2.SetJitter(2*time.Millisecond, rng.New(9))
	var order2 []int
	for i := 0; i < n; i++ {
		p := s2.NewPacket()
		p.Size = 1500
		p.Seq = i
		p.Route = []*Link{l2}
		p.OnArrive = func(p *Packet, _ time.Duration) { order2 = append(order2, p.Seq) }
		s2.Inject(p, time.Duration(i)*20*time.Microsecond)
	}
	s2.Run()
	for i := range order {
		if order[i] != order2[i] {
			t.Fatalf("same-seed jitter delivery order diverged at %d", i)
		}
	}
}

func TestMeanCapacityAndIntegral(t *testing.T) {
	steps := []CapacityStep{
		{0, 10 * unit.Mbps},
		{10 * time.Second, 2 * unit.Mbps},
		{20 * time.Second, 6 * unit.Mbps},
	}
	// 10s@10 + 10s@2 + 10s@6 over 30s = 6 Mbps mean.
	if got, want := MeanCapacity(steps, 30*time.Second), 6*unit.Mbps; math.Abs(float64(got-want)) > 1 {
		t.Errorf("MeanCapacity = %v, want %v", got, want)
	}
	// Last step extends: over 40s mean = (100+20+60+60)/40 = 6 Mbps.
	if got, want := MeanCapacity(steps, 40*time.Second), 6*unit.Mbps; math.Abs(float64(got-want)) > 1 {
		t.Errorf("MeanCapacity(40s) = %v, want %v", got, want)
	}
	// Integral across a boundary: [5s, 15s) = 5s@10 + 5s@2 = 60 Mbit.
	if got, want := capIntegralBits(steps, 5*time.Second, 15*time.Second), 60e6; math.Abs(got-want) > 1 {
		t.Errorf("capIntegralBits = %g, want %g", got, want)
	}
	if got := capIntegralBits(steps, 15*time.Second, 15*time.Second); got != 0 {
		t.Errorf("empty-window integral = %g, want 0", got)
	}
}

func TestCapacityScheduleChangesServiceRate(t *testing.T) {
	s := New()
	l := s.NewLink("var", 10*unit.Mbps, 0)
	l.SetCapacitySchedule([]CapacityStep{
		{0, 10 * unit.Mbps},
		{time.Second, 1 * unit.Mbps},
	})
	if l.Capacity != 10*unit.Mbps {
		t.Fatalf("initial capacity %v, want 10 Mbps", l.Capacity)
	}
	var arrivals []time.Duration
	for i, at := range []time.Duration{0, 1500 * time.Millisecond} {
		p := s.NewPacket()
		p.Size = 1500
		p.Seq = i
		p.Route = []*Link{l}
		p.OnArrive = func(_ *Packet, at time.Duration) { arrivals = append(arrivals, at) }
		s.Inject(p, at)
	}
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(arrivals))
	}
	// First packet at 10 Mbps: 1500B = 1.2 ms. Second starts at 1.5 s
	// under the 1 Mbps step: 12 ms.
	if want := 1200 * time.Microsecond; arrivals[0] != want {
		t.Errorf("fast-phase delivery at %v, want %v", arrivals[0], want)
	}
	if want := 1500*time.Millisecond + 12*time.Millisecond; arrivals[1] != want {
		t.Errorf("slow-phase delivery at %v, want %v", arrivals[1], want)
	}
	if got := l.CapacitySchedule(); len(got) != 2 {
		t.Errorf("CapacitySchedule returned %d steps, want 2", len(got))
	}
}

func TestCapacityScheduleAfterStartPanics(t *testing.T) {
	s := New()
	l := s.NewLink("var", 10*unit.Mbps, 0)
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("mid-run SetCapacitySchedule did not panic")
			}
		}()
		l.SetCapacitySchedule([]CapacityStep{{0, 1 * unit.Mbps}})
	})
	s.Run()

	r := NewRecorder(10 * unit.Mbps)
	r.busyInterval(0, time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("recorder schedule after recording started did not panic")
		}
	}()
	r.SetCapacitySchedule([]CapacityStep{{0, 1 * unit.Mbps}})
}
