package sim

import (
	"math"
	"testing"
	"time"

	"abw/internal/unit"
)

// cbrScenario drives a link with perfectly periodic cross traffic at
// rate, returning the recorder after runFor.
func cbrScenario(t *testing.T, capacity, rate unit.Rate, pktSize unit.Bytes, runFor time.Duration) *Recorder {
	t.Helper()
	s := New()
	l := s.NewLink("l", capacity, 0)
	rec := NewRecorder(capacity)
	l.Attach(rec)
	gap := unit.GapFor(pktSize, rate)
	for at := time.Duration(0); at < runFor; at += gap {
		s.Inject(&Packet{Size: pktSize, Kind: KindCross, Route: []*Link{l}}, at)
	}
	s.Run()
	return rec
}

func TestUtilizationMatchesCBRRate(t *testing.T) {
	// 25 Mbps CBR on a 50 Mbps link → utilization 0.5, avail-bw 25 Mbps
	// (the paper's canonical single-hop scenario).
	rec := cbrScenario(t, 50*unit.Mbps, 25*unit.Mbps, 1500, time.Second)
	u := rec.Utilization(100*time.Millisecond, 500*time.Millisecond)
	if math.Abs(u-0.5) > 0.01 {
		t.Errorf("utilization = %g, want ~0.5", u)
	}
	a := rec.AvailBw(100*time.Millisecond, 500*time.Millisecond)
	if math.Abs(a.MbpsOf()-25) > 0.5 {
		t.Errorf("avail-bw = %v, want ~25Mbps", a)
	}
}

func TestIdleLinkFullAvailBw(t *testing.T) {
	s := New()
	l := s.NewLink("l", 100*unit.Mbps, 0)
	rec := NewRecorder(l.Capacity)
	l.Attach(rec)
	s.RunUntil(time.Second)
	if got := rec.AvailBw(0, time.Second); got != 100*unit.Mbps {
		t.Errorf("idle avail-bw = %v, want 100Mbps", got)
	}
}

func TestSaturatedLinkZeroAvailBw(t *testing.T) {
	rec := cbrScenario(t, 50*unit.Mbps, 60*unit.Mbps, 1500, time.Second)
	// Offered load exceeds capacity: utilization in the interior must be 1.
	u := rec.Utilization(200*time.Millisecond, 500*time.Millisecond)
	if u < 0.999 {
		t.Errorf("utilization = %g, want ~1", u)
	}
	if a := rec.AvailBw(200*time.Millisecond, 500*time.Millisecond); a.MbpsOf() > 0.1 {
		t.Errorf("avail-bw = %v, want ~0", a)
	}
}

func TestArrivalRateMatchesOfferedLoad(t *testing.T) {
	rec := cbrScenario(t, 50*unit.Mbps, 25*unit.Mbps, 1500, time.Second)
	got := rec.ArrivalRate(0, 900*time.Millisecond, CrossOnly)
	if math.Abs(got.MbpsOf()-25) > 0.5 {
		t.Errorf("arrival rate = %v, want ~25Mbps", got)
	}
}

func TestArrivalRateAgreesWithUtilizationWhenStable(t *testing.T) {
	// In a stable window, C·u ≈ arrival rate (the design decision noted
	// in DESIGN.md).
	rec := cbrScenario(t, 50*unit.Mbps, 30*unit.Mbps, 1500, time.Second)
	from, win := 100*time.Millisecond, 700*time.Millisecond
	byBusy := float64(rec.Capacity) * rec.Utilization(from, win)
	byArrivals := float64(rec.ArrivalRate(from, win, nil))
	if math.Abs(byBusy-byArrivals)/byArrivals > 0.02 {
		t.Errorf("C*u = %g, arrival rate = %g; want agreement within 2%%", byBusy, byArrivals)
	}
}

func TestAvailBwSeriesLengthAndValues(t *testing.T) {
	rec := cbrScenario(t, 50*unit.Mbps, 25*unit.Mbps, 1500, time.Second)
	series := rec.AvailBwSeries(0, time.Second, 100*time.Millisecond)
	if len(series) != 10 {
		t.Fatalf("series length = %d, want 10", len(series))
	}
	for i, a := range series {
		if math.Abs(a.MbpsOf()-25) > 1.0 {
			t.Errorf("window %d: avail-bw = %v, want ~25Mbps", i, a)
		}
	}
}

func TestBusyIntervalMerging(t *testing.T) {
	// Back-to-back transmissions must merge into a single interval.
	s := New()
	l := s.NewLink("l", 100*unit.Mbps, 0)
	rec := NewRecorder(l.Capacity)
	l.Attach(rec)
	for i := 0; i < 10; i++ {
		s.Inject(&Packet{Size: 1500, Route: []*Link{l}}, 0)
	}
	s.Run()
	if n := len(rec.BusyIntervals()); n != 1 {
		t.Errorf("busy intervals = %d, want 1 (merged)", n)
	}
	iv := rec.BusyIntervals()[0]
	if iv.Start != 0 || iv.End != 10*120*time.Microsecond {
		t.Errorf("merged interval = %+v, want [0, 1.2ms)", iv)
	}
}

func TestRecorderKindFiltering(t *testing.T) {
	s := New()
	l := s.NewLink("l", 100*unit.Mbps, 0)
	rec := NewRecorder(l.Capacity)
	l.Attach(rec)
	s.Inject(&Packet{Size: 1000, Kind: KindCross, Route: []*Link{l}}, 0)
	s.Inject(&Packet{Size: 1000, Kind: KindProbe, Route: []*Link{l}}, 0)
	s.RunUntil(time.Second)
	all := rec.ArrivalRate(0, time.Second, nil)
	cross := rec.ArrivalRate(0, time.Second, CrossOnly)
	if all <= cross || cross == 0 {
		t.Errorf("filtering broken: all=%v cross=%v", all, cross)
	}
}

func TestRecorderReset(t *testing.T) {
	rec := cbrScenario(t, 50*unit.Mbps, 25*unit.Mbps, 1500, 100*time.Millisecond)
	rec.Reset()
	if len(rec.Arrivals()) != 0 || len(rec.BusyIntervals()) != 0 || rec.Drops() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestResetDetachesHandedOutSlices(t *testing.T) {
	// Regression: Reset used to truncate to [:0], so recording after a
	// Reset overwrote memory a caller still held from Arrivals() or
	// BusyIntervals(). The captured history must survive intact.
	rec := cbrScenario(t, 50*unit.Mbps, 25*unit.Mbps, 1500, 50*time.Millisecond)
	arr := rec.Arrivals()
	busy := rec.BusyIntervals()
	if len(arr) == 0 || len(busy) == 0 {
		t.Fatal("setup recorded nothing")
	}
	wantArr := make([]Arrival, len(arr))
	copy(wantArr, arr)
	wantBusy := make([]Interval, len(busy))
	copy(wantBusy, busy)

	rec.Reset()
	// Record a fresh, different history into the same recorder.
	s := New()
	l := s.NewLink("l", 50*unit.Mbps, 0)
	l.Attach(rec)
	for i := 0; i < len(wantArr)+4; i++ {
		s.Inject(&Packet{Size: 40, Kind: KindProbe, Route: []*Link{l}}, time.Duration(i)*time.Millisecond)
	}
	s.Run()

	for i := range wantArr {
		if arr[i] != wantArr[i] {
			t.Fatalf("captured arrival %d overwritten after Reset: got %+v, want %+v", i, arr[i], wantArr[i])
		}
	}
	for i := range wantBusy {
		if busy[i] != wantBusy[i] {
			t.Fatalf("captured busy interval %d overwritten after Reset: got %+v, want %+v", i, busy[i], wantBusy[i])
		}
	}
}

func TestAggregateRecorderMatchesFullOnAlignedWindows(t *testing.T) {
	// Drive two identical runs, one recorded per-packet and one
	// aggregated into 10 ms epochs: on epoch-aligned windows the two
	// must agree exactly — the bins hold exact byte and busy sums.
	run := func(rec *Recorder) {
		s := New()
		l := s.NewLink("l", 50*unit.Mbps, 0)
		l.Attach(rec)
		gap := unit.GapFor(1500, 25*unit.Mbps)
		for at := time.Duration(0); at < time.Second; at += gap {
			s.Inject(&Packet{Size: 1500, Kind: KindCross, Route: []*Link{l}}, at)
		}
		s.Run()
	}
	full := NewRecorder(50 * unit.Mbps)
	agg := NewAggregateRecorder(50*unit.Mbps, 10*time.Millisecond)
	run(full)
	run(agg)
	if !agg.Aggregated() || agg.Epoch() != 10*time.Millisecond {
		t.Fatal("aggregate recorder misconfigured")
	}
	if agg.Arrivals() != nil || agg.BusyIntervals() != nil {
		t.Error("aggregate mode must not expose per-packet rows")
	}
	for _, w := range []struct{ from, win time.Duration }{
		{0, time.Second},
		{100 * time.Millisecond, 500 * time.Millisecond},
		{250 * time.Millisecond, 10 * time.Millisecond},
	} {
		uf := full.Utilization(w.from, w.win)
		ua := agg.Utilization(w.from, w.win)
		if math.Abs(uf-ua) > 1e-12 {
			t.Errorf("utilization(%v,%v): full %g, aggregate %g", w.from, w.win, uf, ua)
		}
		rf := full.ArrivalRate(w.from, w.win, CrossOnly)
		ra := agg.ArrivalRate(w.from, w.win, CrossOnly)
		if math.Abs(float64(rf-ra)) > 1e-6*float64(rf) {
			t.Errorf("arrival rate(%v,%v): full %v, aggregate %v", w.from, w.win, rf, ra)
		}
	}
}

func TestAggregateRecorderProRatesUnalignedWindows(t *testing.T) {
	// A transmitter busy for exactly the first half of every 10 ms epoch
	// pro-rates to utilization 0.5 on any window, aligned or not.
	rec := NewAggregateRecorder(10*unit.Mbps, 10*time.Millisecond)
	for e := time.Duration(0); e < 100*time.Millisecond; e += 10 * time.Millisecond {
		rec.busyInterval(e, e+5*time.Millisecond)
	}
	if u := rec.Utilization(3*time.Millisecond, 81*time.Millisecond); math.Abs(u-0.5) > 0.05 {
		t.Errorf("pro-rated utilization = %g, want ~0.5", u)
	}
}

func TestAggregateRecorderPanicsOnBadEpoch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive epoch did not panic")
		}
	}()
	NewAggregateRecorder(unit.Mbps, 0)
}

func TestIndexedUtilizationMatchesLinearScan(t *testing.T) {
	// Property check of the prefix-sum + binary-search query against the
	// obvious linear scan, over many random windows.
	rec := cbrScenario(t, 50*unit.Mbps, 35*unit.Mbps, 1500, time.Second)
	linear := func(from, to time.Duration) time.Duration {
		var busy time.Duration
		for _, iv := range rec.BusyIntervals() {
			if iv.End <= from || iv.Start >= to {
				continue
			}
			s, e := iv.Start, iv.End
			if s < from {
				s = from
			}
			if e > to {
				e = to
			}
			busy += e - s
		}
		return busy
	}
	for i := 0; i < 500; i++ {
		from := time.Duration(i) * 1873 * time.Microsecond % time.Second
		win := time.Duration(i%97+1) * 3 * time.Millisecond
		got := rec.busyTime(from, from+win)
		want := linear(from, from+win)
		if got != want {
			t.Fatalf("busyTime(%v,%v) = %v, want %v", from, win, got, want)
		}
	}
}

func TestUtilizationPanicsOnBadWindow(t *testing.T) {
	rec := NewRecorder(unit.Mbps)
	defer func() {
		if recover() == nil {
			t.Error("Utilization with zero window did not panic")
		}
	}()
	rec.Utilization(0, 0)
}

func TestPathNarrowLink(t *testing.T) {
	s := New()
	a := s.NewLink("a", 100*unit.Mbps, 0)
	b := s.NewLink("b", unit.OC3, 0)
	c := s.NewLink("c", 622*unit.Mbps, 0)
	p := MustPath(a, b, c)
	if p.NarrowLink() != a {
		t.Errorf("narrow link = %s, want a (100Mbps)", p.NarrowLink().Name)
	}
}

func TestPathValidation(t *testing.T) {
	if _, err := NewPath(); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := NewPath(nil); err == nil {
		t.Error("nil link accepted")
	}
}

func TestPathBasePropDelay(t *testing.T) {
	s := New()
	a := s.NewLink("a", 100*unit.Mbps, time.Millisecond)
	b := s.NewLink("b", 100*unit.Mbps, 2*time.Millisecond)
	p := MustPath(a, b)
	want := 2*120*time.Microsecond + 3*time.Millisecond
	if got := p.BasePropDelay(1500); got != want {
		t.Errorf("BasePropDelay = %v, want %v", got, want)
	}
}
