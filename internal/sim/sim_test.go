package sim

import (
	"testing"
	"time"

	"abw/internal/unit"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Errorf("Now() = %v, want 0", s.Now())
	}
}

func TestEventOrderAndClock(t *testing.T) {
	s := New()
	var order []time.Duration
	s.At(30, func() { order = append(order, s.Now()) })
	s.At(10, func() { order = append(order, s.Now()) })
	s.After(20, func() { order = append(order, s.Now()) })
	s.Run()
	want := []time.Duration{10, 20, 30}
	if len(order) != 3 {
		t.Fatalf("fired %d events, want 3", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.At(30, func() { fired++ })
	s.RunUntil(20)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if s.Now() != 20 {
		t.Errorf("Now() = %v, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	s.Run()
	if fired != 3 {
		t.Errorf("after Run fired = %d, want 3", fired)
	}
}

func TestStop(t *testing.T) {
	s := New()
	fired := 0
	s.At(10, func() { fired++; s.Stop() })
	s.At(20, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (Stop should halt the loop)", fired)
	}
}

func TestStopBeforeRunSticks(t *testing.T) {
	// Regression: Run/RunUntil used to reset the stop flag on entry, so
	// a Stop issued before the run was silently lost. A pre-run Stop
	// must make the next run return immediately, then be consumed.
	s := New()
	fired := 0
	s.At(10, func() { fired++ })
	s.Stop()
	s.Run()
	if fired != 0 {
		t.Fatalf("fired = %d, want 0 (pre-run Stop lost)", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0 (stopped run must not advance the clock)", s.Now())
	}
	// The stop is consumed: a second Run proceeds normally.
	s.Run()
	if fired != 1 {
		t.Fatalf("after second Run fired = %d, want 1", fired)
	}
}

func TestStopBeforeRunUntilSticks(t *testing.T) {
	s := New()
	fired := 0
	s.At(10, func() { fired++ })
	s.Stop()
	s.RunUntil(20)
	if fired != 0 || s.Now() != 0 {
		t.Fatalf("fired = %d, Now() = %v; want 0, 0", fired, s.Now())
	}
	s.RunUntil(20)
	if fired != 1 || s.Now() != 20 {
		t.Fatalf("after second RunUntil fired = %d, Now() = %v; want 1, 20", fired, s.Now())
	}
}

func TestCancelEvent(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
}

func TestSinglePacketDelay(t *testing.T) {
	// One 1500-byte packet over a 100 Mbps link with 1 ms propagation:
	// delivery at tx (120 µs) + prop (1 ms).
	s := New()
	l := s.NewLink("l0", 100*unit.Mbps, time.Millisecond)
	var arrived time.Duration
	p := &Packet{
		Size:  1500,
		Route: []*Link{l},
		OnArrive: func(_ *Packet, at time.Duration) {
			arrived = at
		},
	}
	s.Inject(p, 0)
	s.Run()
	want := 120*time.Microsecond + time.Millisecond
	if arrived != want {
		t.Errorf("arrival = %v, want %v", arrived, want)
	}
	if p.SentAt != 0 {
		t.Errorf("SentAt = %v, want 0", p.SentAt)
	}
}

func TestBackToBackQueueing(t *testing.T) {
	// Two packets injected at the same instant: the second waits a full
	// transmission time behind the first.
	s := New()
	l := s.NewLink("l0", 100*unit.Mbps, 0)
	var times []time.Duration
	for i := 0; i < 2; i++ {
		s.Inject(&Packet{
			Size:  1500,
			Seq:   i,
			Route: []*Link{l},
			OnArrive: func(_ *Packet, at time.Duration) {
				times = append(times, at)
			},
		}, 0)
	}
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(times))
	}
	tx := 120 * time.Microsecond
	if times[0] != tx || times[1] != 2*tx {
		t.Errorf("deliveries at %v, want [%v %v]", times, tx, 2*tx)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	s := New()
	l := s.NewLink("l0", 10*unit.Mbps, 0)
	var seqs []int
	for i := 0; i < 50; i++ {
		i := i
		s.Inject(&Packet{
			Size:  1500,
			Seq:   i,
			Route: []*Link{l},
			OnArrive: func(p *Packet, _ time.Duration) {
				seqs = append(seqs, p.Seq)
			},
		}, time.Duration(i)*time.Microsecond)
	}
	s.Run()
	for i, seq := range seqs {
		if seq != i {
			t.Fatalf("FIFO violated: position %d has seq %d", i, seq)
		}
	}
}

func TestMultiHopDelivery(t *testing.T) {
	// 3 hops, each 100 Mbps with 1 ms prop: store-and-forward delay is
	// 3*(tx+prop) for a single packet.
	s := New()
	l1 := s.NewLink("l1", 100*unit.Mbps, time.Millisecond)
	l2 := s.NewLink("l2", 100*unit.Mbps, time.Millisecond)
	l3 := s.NewLink("l3", 100*unit.Mbps, time.Millisecond)
	var arrived time.Duration
	s.Inject(&Packet{
		Size:  1500,
		Route: []*Link{l1, l2, l3},
		OnArrive: func(_ *Packet, at time.Duration) {
			arrived = at
		},
	}, 0)
	s.Run()
	want := 3 * (120*time.Microsecond + time.Millisecond)
	if arrived != want {
		t.Errorf("arrival = %v, want %v", arrived, want)
	}
}

func TestMultiHopPipelining(t *testing.T) {
	// While packet 1 propagates on hop 1, packet 2 may transmit: the
	// N-packet train delay over one link is tx*N + prop, not N*(tx+prop).
	s := New()
	l := s.NewLink("l", 100*unit.Mbps, 10*time.Millisecond)
	var last time.Duration
	const n = 10
	for i := 0; i < n; i++ {
		s.Inject(&Packet{
			Size:  1500,
			Route: []*Link{l},
			OnArrive: func(_ *Packet, at time.Duration) {
				last = at
			},
		}, 0)
	}
	s.Run()
	tx := 120 * time.Microsecond
	want := time.Duration(n)*tx + 10*time.Millisecond
	if last != want {
		t.Errorf("last arrival = %v, want %v", last, want)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	s := New()
	l := s.NewLink("l", 10*unit.Mbps, 0)
	l.BufferBytes = 3000 // room for two 1500B packets in queue
	delivered, dropped := 0, 0
	for i := 0; i < 10; i++ {
		s.Inject(&Packet{
			Size:     1500,
			Route:    []*Link{l},
			OnArrive: func(*Packet, time.Duration) { delivered++ },
			OnDrop:   func(*Packet, *Link, time.Duration) { dropped++ },
		}, 0)
	}
	s.Run()
	// One in service + two queued admitted; seven dropped.
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3", delivered)
	}
	if dropped != 7 {
		t.Errorf("dropped = %d, want 7", dropped)
	}
	if l.Dropped() != 7 {
		t.Errorf("link drop counter = %d, want 7", l.Dropped())
	}
}

func TestUnboundedBufferNeverDrops(t *testing.T) {
	s := New()
	l := s.NewLink("l", 1*unit.Mbps, 0)
	delivered := 0
	for i := 0; i < 200; i++ {
		s.Inject(&Packet{
			Size:     1500,
			Route:    []*Link{l},
			OnArrive: func(*Packet, time.Duration) { delivered++ },
		}, 0)
	}
	s.Run()
	if delivered != 200 {
		t.Errorf("delivered = %d, want 200", delivered)
	}
	if l.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", l.Dropped())
	}
}

func TestLinkCounters(t *testing.T) {
	s := New()
	l := s.NewLink("l", 100*unit.Mbps, 0)
	for i := 0; i < 5; i++ {
		s.Inject(&Packet{Size: 1000, Route: []*Link{l}}, 0)
	}
	s.Run()
	if l.Forwarded() != 5 {
		t.Errorf("Forwarded = %d, want 5", l.Forwarded())
	}
	if l.BytesServed() != 5000 {
		t.Errorf("BytesServed = %d, want 5000", l.BytesServed())
	}
}

func TestZeroLengthRouteDeliversImmediately(t *testing.T) {
	s := New()
	var at time.Duration = -1
	s.Inject(&Packet{OnArrive: func(_ *Packet, a time.Duration) { at = a }}, 5*time.Millisecond)
	s.Run()
	if at != 5*time.Millisecond {
		t.Errorf("arrival = %v, want 5ms", at)
	}
}

func TestInvalidLinkParamsPanic(t *testing.T) {
	s := New()
	for _, f := range []func(){
		func() { s.NewLink("bad", 0, 0) },
		func() { s.NewLink("bad", -1, 0) },
		func() { s.NewLink("bad", unit.Mbps, -time.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid link params did not panic")
				}
			}()
			f()
		}()
	}
}

func TestQueueCompaction(t *testing.T) {
	// Run enough packets through a congested link to exercise the FIFO
	// compaction path, checking order is never disturbed.
	s := New()
	l := s.NewLink("l", 50*unit.Mbps, 0)
	next := 0
	for i := 0; i < 5000; i++ {
		i := i
		s.Inject(&Packet{
			Size:  1500,
			Seq:   i,
			Route: []*Link{l},
			OnArrive: func(p *Packet, _ time.Duration) {
				if p.Seq != next {
					t.Fatalf("order violated: got %d want %d", p.Seq, next)
				}
				next++
			},
		}, time.Duration(i)*10*time.Microsecond)
	}
	s.Run()
	if next != 5000 {
		t.Fatalf("delivered %d, want 5000", next)
	}
}
