package sim

import (
	"fmt"

	"abw/internal/rng"
)

// LossModel is a random packet-loss process applied at a link's input,
// before queueing — the model for transmission loss (wireless bit
// errors, policers) as opposed to congestive queue drops, which the
// buffer bound and the queue discipline produce. Lost packets are
// counted separately (Link.Lost) so experiments can attribute every
// missing packet to its cause.
type LossModel interface {
	// Name identifies the model in diagnostics ("bernoulli", "gilbert").
	Name() string
	// Lose reports whether this arrival is killed by the loss process.
	// It is called exactly once per arrival, in arrival order, so a
	// seeded model is exactly reproducible.
	Lose(p *Packet) bool
	// MeanRate returns the stationary loss probability — the analytic
	// hook ground-truth accounting uses to convert offered load into
	// carried load.
	MeanRate() float64
}

// bernoulli drops each packet independently with fixed probability.
type bernoulli struct {
	p float64
	r *rng.Rand
}

// NewBernoulliLoss returns an independent (Bernoulli) loss process
// with per-packet drop probability p. It panics on p outside [0, 1)
// or a nil random source.
func NewBernoulliLoss(p float64, r *rng.Rand) LossModel {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("sim: Bernoulli loss probability %g outside [0, 1)", p))
	}
	if r == nil {
		panic("sim: Bernoulli loss needs a random source")
	}
	return &bernoulli{p: p, r: r}
}

func (b *bernoulli) Name() string      { return "bernoulli" }
func (b *bernoulli) Lose(*Packet) bool { return b.r.Float64() < b.p }
func (b *bernoulli) MeanRate() float64 { return b.p }

// GilbertElliottConfig parameterizes the two-state bursty loss chain:
// a Good and a Bad state with per-arrival transition probabilities and
// a per-state loss probability. The classic model for wireless fading
// and route-flap loss bursts, where losses cluster instead of arriving
// independently.
type GilbertElliottConfig struct {
	// PGoodBad and PBadGood are the per-arrival transition
	// probabilities Good→Bad and Bad→Good (defaults 0.005 and 0.1:
	// mean burst of 10 packets, ~4.8% of packets in Bad).
	PGoodBad, PBadGood float64
	// LossGood and LossBad are the drop probabilities within each
	// state (defaults 0 and 0.5).
	LossGood, LossBad float64
}

func (c GilbertElliottConfig) withDefaults() GilbertElliottConfig {
	if c.PGoodBad == 0 {
		c.PGoodBad = 0.005
	}
	if c.PBadGood == 0 {
		c.PBadGood = 0.1
	}
	if c.LossBad == 0 {
		c.LossBad = 0.5
	}
	return c
}

// gilbertElliott is the seeded two-state chain. Every arrival draws
// exactly two variates (transition, then loss) so the stream of
// random numbers consumed is independent of the path taken.
type gilbertElliott struct {
	cfg GilbertElliottConfig
	r   *rng.Rand
	bad bool
}

// NewGilbertElliott returns a bursty Gilbert–Elliott loss process.
// It panics on probabilities outside [0, 1] (loss probabilities must
// additionally be < 1) or a nil random source.
func NewGilbertElliott(cfg GilbertElliottConfig, r *rng.Rand) LossModel {
	cfg = cfg.withDefaults()
	for _, p := range []float64{cfg.PGoodBad, cfg.PBadGood} {
		if p <= 0 || p > 1 {
			panic(fmt.Sprintf("sim: Gilbert–Elliott transition probability %g outside (0, 1]", p))
		}
	}
	for _, p := range []float64{cfg.LossGood, cfg.LossBad} {
		if p < 0 || p >= 1 {
			panic(fmt.Sprintf("sim: Gilbert–Elliott loss probability %g outside [0, 1)", p))
		}
	}
	if r == nil {
		panic("sim: Gilbert–Elliott loss needs a random source")
	}
	return &gilbertElliott{cfg: cfg, r: r}
}

func (g *gilbertElliott) Name() string { return "gilbert" }

func (g *gilbertElliott) Lose(*Packet) bool {
	flip := g.r.Float64()
	if g.bad {
		if flip < g.cfg.PBadGood {
			g.bad = false
		}
	} else if flip < g.cfg.PGoodBad {
		g.bad = true
	}
	p := g.cfg.LossGood
	if g.bad {
		p = g.cfg.LossBad
	}
	return g.r.Float64() < p
}

// MeanRate is the stationary loss probability of the chain:
// π_bad·LossBad + π_good·LossGood with π_bad = PGB/(PGB+PBG).
func (g *gilbertElliott) MeanRate() float64 {
	piBad := g.cfg.PGoodBad / (g.cfg.PGoodBad + g.cfg.PBadGood)
	return piBad*g.cfg.LossBad + (1-piBad)*g.cfg.LossGood
}
