package sim

import (
	"math"
	"testing"
	"time"

	"abw/internal/unit"
)

func TestUtilizationPartialOverlapExact(t *testing.T) {
	// One 1500-byte packet on a 100 Mbps link transmits for exactly
	// 120 µs starting at t=0. Windows that partially overlap the busy
	// interval must count exactly the overlapping fraction.
	s := New()
	l := s.NewLink("l", 100*unit.Mbps, 0)
	rec := NewRecorder(l.Capacity)
	l.Attach(rec)
	s.Inject(&Packet{Size: 1500, Route: []*Link{l}}, 0)
	s.Run()
	cases := []struct {
		from, win time.Duration
		want      float64
	}{
		{0, 120 * time.Microsecond, 1.0},                      // exactly the busy interval
		{0, 240 * time.Microsecond, 0.5},                      // busy half the window
		{60 * time.Microsecond, 120 * time.Microsecond, 0.5},  // straddles the end
		{-60 * time.Microsecond, 120 * time.Microsecond, 0.5}, // straddles the start
		{120 * time.Microsecond, time.Millisecond, 0},         // after the interval
		{30 * time.Microsecond, 60 * time.Microsecond, 1.0},   // strictly inside
	}
	for _, tc := range cases {
		if got := rec.Utilization(tc.from, tc.win); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Utilization(%v, %v) = %g, want %g", tc.from, tc.win, got, tc.want)
		}
	}
}

func TestUtilizationManyWindowsSumToBusyTime(t *testing.T) {
	// The utilization integrated over disjoint windows must equal the
	// total busy time regardless of window placement — conservation of
	// the underlying measure.
	s := New()
	l := s.NewLink("l", 50*unit.Mbps, 0)
	rec := NewRecorder(l.Capacity)
	l.Attach(rec)
	for i := 0; i < 40; i++ {
		s.Inject(&Packet{Size: 1500, Route: []*Link{l}}, time.Duration(i)*700*time.Microsecond)
	}
	s.Run()
	var fromWindows time.Duration
	const win = 333 * time.Microsecond
	for at := time.Duration(0); at < 40*time.Millisecond; at += win {
		fromWindows += time.Duration(rec.Utilization(at, win) * float64(win))
	}
	var fromIntervals time.Duration
	for _, iv := range rec.BusyIntervals() {
		fromIntervals += iv.End - iv.Start
	}
	if d := fromWindows - fromIntervals; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("windowed busy time %v != interval busy time %v", fromWindows, fromIntervals)
	}
}

func TestMultiHopProbeOWDsAccumulateQueueing(t *testing.T) {
	// Integration: a probing stream over 3 tight hops must see at least
	// as much OWD growth as over 1 hop under identical per-hop load —
	// the mechanism behind Figure 4.
	owdGrowth := func(hops int) time.Duration {
		s := New()
		links := make([]*Link, hops)
		for i := range links {
			links[i] = s.NewLink("hop", 50*unit.Mbps, time.Millisecond)
		}
		// Identical deterministic per-hop cross traffic: 25 Mbps CBR.
		for _, l := range links {
			gap := unit.GapFor(1500, 25*unit.Mbps)
			for at := time.Duration(0); at < 400*time.Millisecond; at += gap {
				s.Inject(&Packet{Size: 1500, Kind: KindCross, Route: []*Link{l}}, at)
			}
		}
		// 100-packet probe at 30 Mbps (> A) through all hops.
		probeGap := unit.GapFor(1500, 30*unit.Mbps)
		var first, last time.Duration
		for i := 0; i < 100; i++ {
			i := i
			sendAt := 50*time.Millisecond + time.Duration(i)*probeGap
			s.Inject(&Packet{
				Size: 1500, Kind: KindProbe, Seq: i,
				Route: links,
				OnArrive: func(p *Packet, at time.Duration) {
					owd := at - p.SentAt
					if p.Seq == 0 {
						first = owd
					}
					if p.Seq == 99 {
						last = owd
					}
				},
			}, sendAt)
		}
		s.Run()
		return last - first
	}
	g1, g3 := owdGrowth(1), owdGrowth(3)
	if g1 <= 0 {
		t.Fatalf("single-hop overload shows no OWD growth: %v", g1)
	}
	if g3 < g1 {
		t.Errorf("3-hop OWD growth %v below 1-hop %v", g3, g1)
	}
}
