package sim

import (
	"fmt"
	"time"

	"abw/internal/unit"
)

// Arrival is one packet arrival observed at a link input.
type Arrival struct {
	At   time.Duration
	Size unit.Bytes
	Kind Kind
}

// Interval is a half-open busy period [Start, End) of a link transmitter.
type Interval struct {
	Start, End time.Duration
}

// Recorder captures the ground truth needed to compute the paper's
// Equations (1)–(3) exactly after a run: every arrival at the link input
// and every transmitter busy interval. Experiments attach a Recorder to
// the tight link and derive the population avail-bw process from it.
type Recorder struct {
	Capacity unit.Rate

	arrivals []Arrival
	busy     []Interval
	drops    int64
}

// NewRecorder returns a recorder for a link of the given capacity.
func NewRecorder(capacity unit.Rate) *Recorder {
	return &Recorder{Capacity: capacity}
}

func (r *Recorder) arrival(at time.Duration, p *Packet) {
	r.arrivals = append(r.arrivals, Arrival{At: at, Size: p.Size, Kind: p.Kind})
}

func (r *Recorder) drop(time.Duration, *Packet) { r.drops++ }

func (r *Recorder) busyInterval(start, end time.Duration) {
	// Merge with the previous interval when transmissions are
	// back-to-back, keeping the slice compact during congested periods.
	if n := len(r.busy); n > 0 && r.busy[n-1].End == start {
		r.busy[n-1].End = end
		return
	}
	r.busy = append(r.busy, Interval{Start: start, End: end})
}

// Arrivals returns the recorded arrivals (shared slice; treat as
// read-only).
func (r *Recorder) Arrivals() []Arrival { return r.arrivals }

// BusyIntervals returns the recorded busy intervals (shared slice; treat
// as read-only).
func (r *Recorder) BusyIntervals() []Interval { return r.busy }

// Drops returns the number of recorded drops.
func (r *Recorder) Drops() int64 { return r.drops }

// Reset clears the recorded history, keeping the capacity.
func (r *Recorder) Reset() {
	r.arrivals = r.arrivals[:0]
	r.busy = r.busy[:0]
	r.drops = 0
}

// Utilization returns u(from, from+window): the fraction of the window
// during which the transmitter was busy (paper Equation 1). It panics on
// a non-positive window.
func (r *Recorder) Utilization(from time.Duration, window time.Duration) float64 {
	if window <= 0 {
		panic(fmt.Sprintf("sim: utilization window %v must be positive", window))
	}
	to := from + window
	var busy time.Duration
	for _, iv := range r.busy {
		if iv.End <= from {
			continue
		}
		if iv.Start >= to {
			break
		}
		s, e := iv.Start, iv.End
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		busy += e - s
	}
	return float64(busy) / float64(window)
}

// AvailBw returns A(from, from+window) = C·(1−u) per paper Equation (2).
func (r *Recorder) AvailBw(from, window time.Duration) unit.Rate {
	return r.Capacity * unit.Rate(1-r.Utilization(from, window))
}

// AvailBwSeries samples the avail-bw process A_τ(t) on consecutive
// windows of length tau covering [from, to), i.e. the series the paper
// plots in Figure 6. Windows that would extend past to are omitted.
func (r *Recorder) AvailBwSeries(from, to, tau time.Duration) []unit.Rate {
	if tau <= 0 {
		panic(fmt.Sprintf("sim: tau %v must be positive", tau))
	}
	var out []unit.Rate
	for t := from; t+tau <= to; t += tau {
		out = append(out, r.AvailBw(t, tau))
	}
	return out
}

// ArrivalRate returns the average arrival rate of packets matching keep
// (nil = all kinds) over [from, from+window). This is the fluid-view
// cross-traffic rate R_c; in a stable (non-overloaded) window it agrees
// with C·u up to edge effects, and tests assert that agreement.
func (r *Recorder) ArrivalRate(from, window time.Duration, keep func(Kind) bool) unit.Rate {
	if window <= 0 {
		panic(fmt.Sprintf("sim: arrival-rate window %v must be positive", window))
	}
	to := from + window
	var bytes unit.Bytes
	for _, a := range r.arrivals {
		if a.At < from || a.At >= to {
			continue
		}
		if keep == nil || keep(a.Kind) {
			bytes += a.Size
		}
	}
	return unit.RateOf(bytes, window)
}

// CrossOnly is a keep filter selecting cross traffic.
func CrossOnly(k Kind) bool { return k == KindCross }
