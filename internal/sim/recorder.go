package sim

import (
	"fmt"
	"sort"
	"time"

	"abw/internal/unit"
)

// Arrival is one packet arrival observed at a link input.
type Arrival struct {
	At   time.Duration
	Size unit.Bytes
	Kind Kind
}

// Interval is a half-open busy period [Start, End) of a link transmitter.
type Interval struct {
	Start, End time.Duration
}

// kindCount sizes the per-kind byte counters of the aggregate mode,
// derived from the Kind enum's sentinel so a new kind extends the bins
// automatically.
const kindCount = int(kindSentinel)

// epochBin is one epoch of aggregate-mode ground truth: how long the
// transmitter was busy and how many bytes of each kind arrived.
type epochBin struct {
	busy  time.Duration
	bytes [kindCount]unit.Bytes
	// busyCap is ∫C(s)ds in bits over the bin's busy time — only
	// maintained under a capacity schedule, where busy time alone no
	// longer determines how much capacity the busy periods consumed.
	busyCap float64
}

// Recorder captures the ground truth needed to compute the paper's
// Equations (1)–(3) exactly after a run: every arrival at the link input
// and every transmitter busy interval. Experiments attach a Recorder to
// the tight link and derive the population avail-bw process from it.
//
// Two representations are maintained for queries:
//
//   - Full mode (NewRecorder): per-packet arrival rows and merged busy
//     intervals, each paired with an index — cumulative busy-time
//     prefix sums and the time-sorted arrival offsets — so Utilization,
//     AvailBw and ArrivalRate answer with O(log n) binary searches
//     instead of scans from the head of history.
//   - Aggregate mode (NewAggregateRecorder): bounded per-epoch byte and
//     busy-time counters instead of per-packet rows, for long-horizon
//     runs where per-packet ground truth would dominate memory. Windows
//     not aligned to the epoch grid are pro-rated within the boundary
//     epochs; Arrivals and BusyIntervals are unavailable (nil).
type Recorder struct {
	Capacity unit.Rate

	arrivals []Arrival
	busy     []Interval
	// cum[i] is the total busy time through busy[i] (inclusive): the
	// prefix-sum index behind the O(log n) utilization queries.
	cum   []time.Duration
	drops int64

	// capSteps, when set, is the link's piecewise-constant capacity
	// profile: AvailBw switches from C·(1−u) to the exact time-varying
	// form, backed by cumCap — the prefix sums of ∫C(s)ds in bits over
	// the busy intervals (full mode) or epochBin.busyCap (aggregate).
	capSteps []CapacityStep
	cumCap   []float64

	// epoch > 0 selects aggregate mode.
	epoch time.Duration
	bins  []epochBin
}

// NewRecorder returns a full (per-packet) recorder for a link of the
// given capacity.
func NewRecorder(capacity unit.Rate) *Recorder {
	return &Recorder{Capacity: capacity}
}

// NewAggregateRecorder returns a bounded recorder that aggregates
// ground truth into epochs of the given length: memory is
// horizon/epoch bins regardless of packet count. It panics on a
// non-positive epoch.
func NewAggregateRecorder(capacity unit.Rate, epoch time.Duration) *Recorder {
	if epoch <= 0 {
		panic(fmt.Sprintf("sim: aggregate recorder epoch %v must be positive", epoch))
	}
	return &Recorder{Capacity: capacity, epoch: epoch}
}

// SetCapacitySchedule tells the recorder the link's capacity is the
// given piecewise-constant profile rather than the fixed Capacity.
// AvailBw then evaluates the time-varying form of the paper's Equation
// (2) exactly:
//
//	A(t, t+τ) = (1/τ)·(∫C(s)ds − ∫_busy C(s)ds) over [t, t+τ)
//
// which reduces to C·(1−u) when C is constant. Install it before the
// run, with the same steps handed to Link.SetCapacitySchedule; it
// panics on an invalid schedule (ValidateCapacitySteps) or after
// recording has started. Capacity is reset to the profile's first rate
// (callers wanting the long-run mean can use MeanCapacity).
func (r *Recorder) SetCapacitySchedule(steps []CapacityStep) {
	if err := ValidateCapacitySteps(steps); err != nil {
		panic(err)
	}
	if len(r.busy) > 0 || len(r.bins) > 0 || len(r.arrivals) > 0 {
		panic("sim: capacity schedule installed after recording started")
	}
	own := make([]CapacityStep, len(steps))
	copy(own, steps)
	r.capSteps = own
	r.Capacity = own[0].Rate
}

// CapacitySchedule returns the installed capacity profile (nil for a
// fixed-capacity recorder). Shared slice; treat as read-only.
func (r *Recorder) CapacitySchedule() []CapacityStep { return r.capSteps }

// Aggregated reports whether the recorder runs in bounded aggregate
// mode.
func (r *Recorder) Aggregated() bool { return r.epoch > 0 }

// Epoch returns the aggregation epoch (0 in full mode).
func (r *Recorder) Epoch() time.Duration { return r.epoch }

// bin returns the aggregate bin covering time at, growing the bin slice
// as the clock advances.
func (r *Recorder) bin(at time.Duration) *epochBin {
	idx := int(at / r.epoch)
	for len(r.bins) <= idx {
		r.bins = append(r.bins, epochBin{})
	}
	return &r.bins[idx]
}

func (r *Recorder) arrival(at time.Duration, p *Packet) {
	if r.epoch > 0 {
		// An out-of-range Kind fails the bounds check loudly rather than
		// being misattributed to another kind's counter.
		r.bin(at).bytes[p.Kind] += p.Size
		return
	}
	r.arrivals = append(r.arrivals, Arrival{At: at, Size: p.Size, Kind: p.Kind})
}

func (r *Recorder) drop(time.Duration, *Packet) { r.drops++ }

func (r *Recorder) busyInterval(start, end time.Duration) {
	if r.epoch > 0 {
		// Split the interval across epoch boundaries so each bin's busy
		// time is exact.
		for start < end {
			b := r.bin(start)
			edge := (start/r.epoch + 1) * r.epoch
			if edge > end {
				edge = end
			}
			b.busy += edge - start
			if r.capSteps != nil {
				b.busyCap += capIntegralBits(r.capSteps, start, edge)
			}
			start = edge
		}
		return
	}
	// Merge with the previous interval when transmissions are
	// back-to-back, keeping the slice compact during congested periods.
	if n := len(r.busy); n > 0 && r.busy[n-1].End == start {
		r.busy[n-1].End = end
		r.cum[n-1] += end - start
		if r.capSteps != nil {
			r.cumCap[n-1] += capIntegralBits(r.capSteps, start, end)
		}
		return
	}
	var base time.Duration
	if n := len(r.cum); n > 0 {
		base = r.cum[n-1]
	}
	r.busy = append(r.busy, Interval{Start: start, End: end})
	r.cum = append(r.cum, base+(end-start))
	if r.capSteps != nil {
		var capBase float64
		if n := len(r.cumCap); n > 0 {
			capBase = r.cumCap[n-1]
		}
		r.cumCap = append(r.cumCap, capBase+capIntegralBits(r.capSteps, start, end))
	}
}

// Arrivals returns the recorded arrivals (shared slice; treat as
// read-only). Aggregate recorders return nil: per-packet rows are
// exactly what that mode does not keep.
func (r *Recorder) Arrivals() []Arrival { return r.arrivals }

// BusyIntervals returns the recorded busy intervals (shared slice; treat
// as read-only). Nil for aggregate recorders.
func (r *Recorder) BusyIntervals() []Interval { return r.busy }

// Drops returns the number of recorded drops.
func (r *Recorder) Drops() int64 { return r.drops }

// Reset clears the recorded history, keeping the capacity and mode. The
// backing storage is detached, not truncated: slices previously handed
// out by Arrivals/BusyIntervals keep their contents instead of being
// silently overwritten by post-Reset recording.
func (r *Recorder) Reset() {
	r.arrivals = nil
	r.busy = nil
	r.cum = nil
	r.cumCap = nil
	r.bins = nil
	r.drops = 0
}

// busyTime returns the transmitter's total busy time within [from, to).
func (r *Recorder) busyTime(from, to time.Duration) time.Duration {
	if r.epoch > 0 {
		return r.busyTimeBins(from, to)
	}
	n := len(r.busy)
	// First interval ending after the window opens, first interval
	// starting at/after it closes: everything in between overlaps.
	i0 := sort.Search(n, func(i int) bool { return r.busy[i].End > from })
	i1 := sort.Search(n, func(i int) bool { return r.busy[i].Start >= to })
	if i0 >= i1 {
		return 0
	}
	total := r.cum[i1-1]
	if i0 > 0 {
		total -= r.cum[i0-1]
	}
	if s := r.busy[i0].Start; s < from {
		total -= from - s
	}
	if e := r.busy[i1-1].End; e > to {
		total -= e - to
	}
	return total
}

// forEachBin visits every aggregate bin overlapping [from, to),
// passing the bin and the fraction of it the window covers (1 for
// fully-contained bins). Callers pro-rate their counters by frac —
// exact on epoch-aligned windows, an approximation at the boundary
// epochs otherwise.
func (r *Recorder) forEachBin(from, to time.Duration, visit func(b *epochBin, frac float64)) {
	i := int(from / r.epoch)
	if i < 0 {
		i = 0
	}
	for ; i < len(r.bins); i++ {
		bs := time.Duration(i) * r.epoch
		if bs >= to {
			break
		}
		lo, hi := bs, bs+r.epoch
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if lo >= hi {
			continue
		}
		frac := 1.0
		if hi-lo != r.epoch {
			frac = float64(hi-lo) / float64(r.epoch)
		}
		visit(&r.bins[i], frac)
	}
}

// busyTimeBins is busyTime over the aggregate bins.
func (r *Recorder) busyTimeBins(from, to time.Duration) time.Duration {
	var total time.Duration
	r.forEachBin(from, to, func(b *epochBin, frac float64) {
		if frac == 1 {
			total += b.busy
			return
		}
		total += time.Duration(float64(b.busy) * frac)
	})
	return total
}

// Utilization returns u(from, from+window): the fraction of the window
// during which the transmitter was busy (paper Equation 1). It panics on
// a non-positive window.
func (r *Recorder) Utilization(from time.Duration, window time.Duration) float64 {
	if window <= 0 {
		panic(fmt.Sprintf("sim: utilization window %v must be positive", window))
	}
	return float64(r.busyTime(from, from+window)) / float64(window)
}

// AvailBw returns A(from, from+window) = C·(1−u) per paper Equation (2).
// Under a capacity schedule (SetCapacitySchedule) it evaluates the exact
// time-varying generalization instead: the capacity integral over the
// window minus the capacity integral over the window's busy time, per
// unit time.
func (r *Recorder) AvailBw(from, window time.Duration) unit.Rate {
	if r.capSteps == nil {
		return r.Capacity * unit.Rate(1-r.Utilization(from, window))
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: avail-bw window %v must be positive", window))
	}
	free := capIntegralBits(r.capSteps, from, from+window) - r.busyCapBits(from, from+window)
	if free < 0 {
		// Guard against float round-off at saturated windows.
		free = 0
	}
	return unit.Rate(free / window.Seconds())
}

// busyCapBits returns ∫C(s)ds in bits over the busy time within
// [from, to) — only meaningful under a capacity schedule.
func (r *Recorder) busyCapBits(from, to time.Duration) float64 {
	if r.epoch > 0 {
		var total float64
		r.forEachBin(from, to, func(b *epochBin, frac float64) {
			total += b.busyCap * frac
		})
		return total
	}
	n := len(r.busy)
	i0 := sort.Search(n, func(i int) bool { return r.busy[i].End > from })
	i1 := sort.Search(n, func(i int) bool { return r.busy[i].Start >= to })
	if i0 >= i1 {
		return 0
	}
	total := r.cumCap[i1-1]
	if i0 > 0 {
		total -= r.cumCap[i0-1]
	}
	if s := r.busy[i0].Start; s < from {
		total -= capIntegralBits(r.capSteps, s, from)
	}
	if e := r.busy[i1-1].End; e > to {
		total -= capIntegralBits(r.capSteps, to, e)
	}
	return total
}

// AvailBwSeries samples the avail-bw process A_τ(t) on consecutive
// windows of length tau covering [from, to), i.e. the series the paper
// plots in Figure 6. Windows that would extend past to are omitted.
func (r *Recorder) AvailBwSeries(from, to, tau time.Duration) []unit.Rate {
	if tau <= 0 {
		panic(fmt.Sprintf("sim: tau %v must be positive", tau))
	}
	var out []unit.Rate
	for t := from; t+tau <= to; t += tau {
		out = append(out, r.AvailBw(t, tau))
	}
	return out
}

// ArrivalRate returns the average arrival rate of packets matching keep
// (nil = all kinds) over [from, from+window). This is the fluid-view
// cross-traffic rate R_c; in a stable (non-overloaded) window it agrees
// with C·u up to edge effects, and tests assert that agreement. In
// aggregate mode the rate comes from the epoch byte counters,
// pro-rating the window's partial boundary epochs.
func (r *Recorder) ArrivalRate(from, window time.Duration, keep func(Kind) bool) unit.Rate {
	if window <= 0 {
		panic(fmt.Sprintf("sim: arrival-rate window %v must be positive", window))
	}
	to := from + window
	if r.epoch > 0 {
		return unit.RateOf(r.bytesBins(from, to, keep), window)
	}
	// Arrivals are recorded in nondecreasing time order, so the window
	// is a contiguous run found by binary search.
	n := len(r.arrivals)
	lo := sort.Search(n, func(i int) bool { return r.arrivals[i].At >= from })
	hi := sort.Search(n, func(i int) bool { return r.arrivals[i].At >= to })
	var bytes unit.Bytes
	for _, a := range r.arrivals[lo:hi] {
		if keep == nil || keep(a.Kind) {
			bytes += a.Size
		}
	}
	return unit.RateOf(bytes, window)
}

// bytesBins sums the aggregate byte counters over [from, to).
func (r *Recorder) bytesBins(from, to time.Duration, keep func(Kind) bool) unit.Bytes {
	var total float64
	r.forEachBin(from, to, func(b *epochBin, frac float64) {
		var bytes unit.Bytes
		for k := 0; k < kindCount; k++ {
			if keep == nil || keep(Kind(k)) {
				bytes += b.bytes[k]
			}
		}
		total += float64(bytes) * frac
	})
	return unit.Bytes(total)
}

// CrossOnly is a keep filter selecting cross traffic.
func CrossOnly(k Kind) bool { return k == KindCross }
