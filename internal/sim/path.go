package sim

import (
	"fmt"
	"time"

	"abw/internal/unit"
)

// Path is an ordered sequence of links from sender to receiver, the
// paper's "end-to-end path through H links". It provides the derived
// quantities the paper defines: the narrow link (minimum capacity) and,
// given per-link utilization ground truth, the tight link (minimum
// avail-bw).
type Path struct {
	Links []*Link
}

// NewPath builds a path over the given links. At least one link is
// required.
func NewPath(links ...*Link) (*Path, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("sim: a path needs at least one link")
	}
	for i, l := range links {
		if l == nil {
			return nil, fmt.Errorf("sim: nil link at hop %d", i)
		}
	}
	return &Path{Links: links}, nil
}

// MustPath is NewPath that panics on error, for experiment setup code
// whose arguments are compile-time constants.
func MustPath(links ...*Link) *Path {
	p, err := NewPath(links...)
	if err != nil {
		panic(err)
	}
	return p
}

// TightLink returns the link with the minimum measured avail-bw over
// [from, from+window), computed from each link's attached Recorder —
// the paper's distinction between the tight link (minimum avail-bw)
// and the narrow link (minimum capacity). Links without a recorder are
// assumed idle (avail-bw = capacity). It panics on a non-positive
// window, matching Recorder.Utilization.
func (p *Path) TightLink(from, window time.Duration) *Link {
	avail := func(l *Link) unit.Rate {
		if l.rec != nil {
			return l.rec.AvailBw(from, window)
		}
		return l.Capacity
	}
	min := p.Links[0]
	minA := avail(min)
	for _, l := range p.Links[1:] {
		if a := avail(l); a < minA {
			min, minA = l, a
		}
	}
	return min
}

// NarrowLink returns the link with the minimum capacity C_n.
func (p *Path) NarrowLink() *Link {
	min := p.Links[0]
	for _, l := range p.Links[1:] {
		if l.Capacity < min.Capacity {
			min = l
		}
	}
	return min
}

// BasePropDelay returns the sum of propagation delays plus the sum of
// transmission times for a packet of the given size — the minimum
// possible one-way delay along the path, used to normalize OWD series.
func (p *Path) BasePropDelay(size unit.Bytes) time.Duration {
	var d time.Duration
	for _, l := range p.Links {
		d += l.PropDelay + unit.TxTime(size, l.Capacity)
	}
	return d
}

// Route returns the link slice to place on packets traversing the whole
// path.
func (p *Path) Route() []*Link { return p.Links }
