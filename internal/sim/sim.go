// Package sim implements the discrete-event packet network simulator that
// every experiment in the reproduction runs on: store-and-forward links
// with finite FIFO buffers, propagation delays, per-link ground-truth
// recorders, and a deterministic virtual clock with nanosecond
// resolution.
//
// The model matches the paper's setting exactly: a path is a sequence of
// store-and-forward links (Section 1, "Definitions"); cross traffic
// enters and leaves at arbitrary hops; probing packets traverse the whole
// path; the avail-bw of link i over (t, t+τ) is C_i·(1 − u_i(t, t+τ))
// where u is the fraction of time the link's transmitter is busy
// (Equations 1–2).
//
// The scheduling and forwarding hot path is allocation-free in steady
// state: events live in the queue's free list, packets obtained with
// NewPacket live in a per-Sim free list and are recycled after their
// final OnArrive/OnDrop, and the per-packet transmission/propagation
// callbacks are long-lived argument-taking functions rather than fresh
// closures.
package sim

import (
	"fmt"
	"time"

	"abw/internal/eventq"
)

// Sim is a single-threaded discrete-event simulation. The zero value is
// ready to use; time starts at 0.
type Sim struct {
	q       eventq.Queue
	now     time.Duration
	stopped bool

	pktFree []*Packet
	noPool  bool

	// Long-lived callbacks for the packet hot path, built once so
	// scheduling them never allocates a closure.
	injectFn  func(any)
	advanceFn func(any)
	txDoneFn  func(any)
}

// New returns an empty simulation.
func New() *Sim { return &Sim{} }

// SetPooling toggles event and packet reuse (on by default). A run with
// pooling disabled is bit-identical to a pooled run — the free lists
// never change scheduling order — just slower; the property tests use
// the disabled mode as their reference.
func (s *Sim) SetPooling(on bool) {
	s.noPool = !on
	s.q.SetPooling(on)
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t. Scheduling strictly in the
// past panics: it would silently reorder causality.
func (s *Sim) At(t time.Duration, fn func()) eventq.Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	return s.q.Schedule(t, fn)
}

// atArg is At for the closure-free hot path: fn is one of the Sim's
// long-lived callbacks, arg the packet or link it applies to.
func (s *Sim) atArg(t time.Duration, fn func(any), arg any) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.q.ScheduleArg(t, fn, arg)
}

// After schedules fn d after the current time.
func (s *Sim) After(d time.Duration, fn func()) eventq.Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel cancels a pending event. Stale handles (fired, canceled, or
// recycled events) are no-ops.
func (s *Sim) Cancel(h eventq.Handle) { s.q.Cancel(h) }

// Stop makes Run/RunUntil return after the currently executing event.
// Called before Run/RunUntil, it sticks: the next run returns
// immediately without executing anything, then the stop is consumed.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	if s.stopped {
		s.stopped = false
		return
	}
	for !s.stopped {
		e := s.q.Pop()
		if e == nil {
			break
		}
		s.now = e.At
		e.Call()
		s.q.Release(e)
	}
	s.stopped = false
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. Events scheduled beyond t stay pending, so simulations can be
// advanced in measured slices. A pending Stop makes it return
// immediately, clock untouched.
//
// The loop uses the queue's bounded PopUntil rather than Peek-then-Pop:
// a Peek would advance the wheel cursor to the next pending event even
// when that event (a retransmit timer, a trace-tile boundary) lies far
// past t, and everything scheduled afterwards in (t, event) would fall
// behind the cursor into the queue's slow overdue path.
func (s *Sim) RunUntil(t time.Duration) {
	if s.stopped {
		s.stopped = false
		return
	}
	for !s.stopped {
		e := s.q.PopUntil(t)
		if e == nil {
			break
		}
		s.now = e.At
		e.Call()
		s.q.Release(e)
	}
	s.stopped = false
	if t > s.now {
		s.now = t
	}
}

// Pending returns the number of queued events, for tests and leak checks.
func (s *Sim) Pending() int { return s.q.Len() }

// callbacks lazily builds the hot-path method-value callbacks, keeping
// the zero Sim usable.
func (s *Sim) callbacks() {
	if s.injectFn == nil {
		s.injectFn = s.injectNow
		s.advanceFn = s.advancePacket
		s.txDoneFn = txDoneLink
	}
}

func (s *Sim) injectNow(arg any) {
	p := arg.(*Packet)
	p.SentAt = s.now
	p.hop = 0
	s.forward(p)
}

func (s *Sim) advancePacket(arg any) {
	p := arg.(*Packet)
	p.hop++
	s.forward(p)
}

func txDoneLink(arg any) { arg.(*Link).txDone() }

// NewPacket returns a packet from the simulation's free list (or a
// fresh one), zeroed and marked for recycling: after its final
// OnArrive or OnDrop callback returns, the packet goes back to the pool
// and must not be retained. Callers that keep packets alive past
// delivery (e.g. protocol state machines) should allocate plain
// &Packet{} values instead.
func (s *Sim) NewPacket() *Packet {
	if s.noPool {
		return &Packet{}
	}
	if n := len(s.pktFree); n > 0 {
		p := s.pktFree[n-1]
		s.pktFree[n-1] = nil
		s.pktFree = s.pktFree[:n-1]
		*p = Packet{pooled: true}
		return p
	}
	return &Packet{pooled: true}
}

// releasePacket returns a pooled packet after its last callback. Plain
// packets (not from NewPacket) pass through untouched.
func (s *Sim) releasePacket(p *Packet) {
	if !p.pooled || s.noPool {
		return
	}
	p.pooled = false // guards against double release
	s.pktFree = append(s.pktFree, p)
}
