// Package sim implements the discrete-event packet network simulator that
// every experiment in the reproduction runs on: store-and-forward links
// with finite FIFO buffers, propagation delays, per-link ground-truth
// recorders, and a deterministic virtual clock with nanosecond
// resolution.
//
// The model matches the paper's setting exactly: a path is a sequence of
// store-and-forward links (Section 1, "Definitions"); cross traffic
// enters and leaves at arbitrary hops; probing packets traverse the whole
// path; the avail-bw of link i over (t, t+τ) is C_i·(1 − u_i(t, t+τ))
// where u is the fraction of time the link's transmitter is busy
// (Equations 1–2).
package sim

import (
	"fmt"
	"time"

	"abw/internal/eventq"
)

// Sim is a single-threaded discrete-event simulation. The zero value is
// ready to use; time starts at 0.
type Sim struct {
	q       eventq.Queue
	now     time.Duration
	stopped bool
}

// New returns an empty simulation.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t. Scheduling strictly in the
// past panics: it would silently reorder causality.
func (s *Sim) At(t time.Duration, fn func()) *eventq.Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	return s.q.Schedule(t, fn)
}

// After schedules fn d after the current time.
func (s *Sim) After(d time.Duration, fn func()) *eventq.Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel cancels a pending event.
func (s *Sim) Cancel(e *eventq.Event) { s.q.Cancel(e) }

// Stop makes Run/RunUntil return after the currently executing event.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped {
		e := s.q.Pop()
		if e == nil {
			return
		}
		s.now = e.At
		if e.Fn != nil {
			e.Fn()
		}
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. Events scheduled beyond t stay pending, so simulations can be
// advanced in measured slices.
func (s *Sim) RunUntil(t time.Duration) {
	s.stopped = false
	for !s.stopped {
		e := s.q.Peek()
		if e == nil || e.At > t {
			break
		}
		s.q.Pop()
		s.now = e.At
		if e.Fn != nil {
			e.Fn()
		}
	}
	if t > s.now {
		s.now = t
	}
}

// Pending returns the number of queued events, for tests and leak checks.
func (s *Sim) Pending() int { return s.q.Len() }
