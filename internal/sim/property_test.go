package sim

import (
	"fmt"
	"math"
	"testing"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

// This file is the property-test harness for the Internet-realistic
// link models: rather than checking single hand-computed examples, it
// sweeps the queue-discipline × loss-model grid over seeded random
// multi-hop paths and asserts invariants that must hold for every
// combination — packet and byte conservation, FIFO work conservation,
// RED's analytic drop bounds, and exact ground truth under
// time-varying capacity.

// disciplineMaker builds a fresh discipline per link (AQM state is
// per-queue, never shared).
type disciplineMaker struct {
	name string
	make func(r *rng.Rand) Discipline
}

// lossMaker builds a fresh loss model per link.
type lossMaker struct {
	name string
	make func(r *rng.Rand) LossModel
}

func disciplineMakers() []disciplineMaker {
	return []disciplineMaker{
		{"nil", func(*rng.Rand) Discipline { return nil }},
		{"fifo", func(*rng.Rand) Discipline { return NewFIFO() }},
		{"red", func(r *rng.Rand) Discipline { return NewRED(REDConfig{}, r) }},
		{"codel", func(*rng.Rand) Discipline { return NewCoDel(CoDelConfig{}) }},
	}
}

func lossMakers() []lossMaker {
	return []lossMaker{
		{"none", func(*rng.Rand) LossModel { return nil }},
		{"bernoulli", func(r *rng.Rand) LossModel { return NewBernoulliLoss(0.02, r) }},
		{"gilbert", func(r *rng.Rand) LossModel { return NewGilbertElliott(GilbertElliottConfig{}, r) }},
	}
}

// randomPath builds a 1–5 hop path with random capacities, buffers,
// delays and (sometimes) jitter, all seeded from r.
func randomPath(s *Sim, r *rng.Rand, dm disciplineMaker, lm lossMaker) []*Link {
	hops := 1 + int(r.Uint64()%5)
	links := make([]*Link, hops)
	for h := range links {
		cap := unit.Rate(5+90*r.Float64()) * unit.Mbps
		prop := time.Duration(r.Float64() * float64(5*time.Millisecond))
		l := s.NewLink(fmt.Sprintf("hop%d", h), cap, prop)
		if r.Float64() < 0.5 {
			l.BufferBytes = unit.Bytes(15000 + r.Uint64()%90000)
		}
		l.SetDiscipline(dm.make(rng.New(r.Uint64())))
		l.SetLoss(lm.make(rng.New(r.Uint64())))
		if r.Float64() < 0.3 {
			l.SetJitter(time.Duration(r.Float64()*float64(time.Millisecond)), rng.New(r.Uint64()))
		}
		links[h] = l
	}
	return links
}

// TestConservationAcrossModelGrid asserts, for every discipline × loss
// combination over seeded random paths, that every packet injected into
// the path is accounted for exactly once at each hop — forwarded,
// queue-dropped, or loss-killed — in both packets and bytes, and that
// end-to-end deliveries equal the last hop's forwarded count.
func TestConservationAcrossModelGrid(t *testing.T) {
	for _, dm := range disciplineMakers() {
		for _, lm := range lossMakers() {
			t.Run(dm.name+"/"+lm.name, func(t *testing.T) {
				for seed := uint64(1); seed <= 3; seed++ {
					r := rng.New(seed)
					s := New()
					links := randomPath(s, r, dm, lm)

					const n = 3000
					var delivered, sentBytes int64
					for i := 0; i < n; i++ {
						p := s.NewPacket()
						p.Size = unit.Bytes(200 + r.Uint64()%1300)
						p.Route = links
						p.OnArrive = func(*Packet, time.Duration) { delivered++ }
						sentBytes += int64(p.Size)
						// Bursty arrivals so queues actually build.
						s.Inject(p, time.Duration(r.Float64()*float64(2*time.Second)))
					}
					s.Run()

					in := int64(n)
					inBytes := sentBytes
					for h, l := range links {
						if got := l.Forwarded() + l.Dropped() + l.Lost(); got != in {
							t.Fatalf("seed %d hop %d: fwd %d + drop %d + lost %d = %d, want %d arrivals",
								seed, h, l.Forwarded(), l.Dropped(), l.Lost(), got, in)
						}
						if got := l.BytesServed() + l.DroppedBytes() + l.LostBytes(); int64(got) != inBytes {
							t.Fatalf("seed %d hop %d: byte accounting %d, want %d", seed, h, got, inBytes)
						}
						if l.QueueLen() != 0 || l.QueuedBytes() != 0 {
							t.Fatalf("seed %d hop %d: queue not drained after Run (%d pkts, %d bytes)",
								seed, h, l.QueueLen(), l.QueuedBytes())
						}
						in = l.Forwarded()
						inBytes = int64(l.BytesServed())
					}
					if last := links[len(links)-1]; delivered != last.Forwarded() {
						t.Fatalf("seed %d: delivered %d != last hop forwarded %d", seed, delivered, last.Forwarded())
					}
					if lm.name == "none" && dm.name != "red" && dm.name != "codel" {
						// No loss model and no AQM: only buffer bounds can
						// drop, and those are honest congestion drops —
						// Lost must stay zero.
						for h, l := range links {
							if l.Lost() != 0 {
								t.Fatalf("hop %d: lost %d packets without a loss model", h, l.Lost())
							}
						}
					}
				}
			})
		}
	}
}

// TestFIFOWorkConservation asserts the FIFO link is work-conserving:
// with an unbounded buffer nothing is dropped, and the transmitter's
// recorded busy time equals the fluid transmission time of every byte
// injected — the queue never idles while work is waiting.
func TestFIFOWorkConservation(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		s := New()
		cap := unit.Rate(10+40*r.Float64()) * unit.Mbps
		l := s.NewLink("fifo", cap, time.Millisecond)
		rec := NewRecorder(cap)
		l.Attach(rec)

		const n = 2000
		var bytes unit.Bytes
		for i := 0; i < n; i++ {
			p := s.NewPacket()
			p.Size = unit.Bytes(100 + r.Uint64()%1400)
			p.Route = []*Link{l}
			bytes += p.Size
			s.Inject(p, time.Duration(r.Float64()*float64(time.Second)))
		}
		s.Run()

		if l.Forwarded() != n || l.Dropped() != 0 {
			t.Fatalf("seed %d: unbounded FIFO forwarded %d dropped %d, want %d/0", seed, l.Forwarded(), l.Dropped(), n)
		}
		var busy time.Duration
		for _, iv := range rec.BusyIntervals() {
			busy += iv.End - iv.Start
		}
		want := unit.TxTime(bytes, cap)
		if diff := (busy - want).Abs(); diff > time.Duration(n) { // ≤1ns rounding per packet
			t.Fatalf("seed %d: busy time %v, want %v (Δ %v)", seed, busy, want, diff)
		}
	}
}

// TestREDDropRateWithinAnalyticBounds pins the queue occupancy seen by
// RED and checks the long-run drop rate against the analytic marking
// probability. With the count-based uniformization the packets between
// drops are ~uniform on {1..⌈1/p_b⌉}, so the rate converges to
// 2·p_b/(1+p_b); we assert the empirical rate lands between p_b and
// 2·p_b with slack for EWMA convergence.
func TestREDDropRateWithinAnalyticBounds(t *testing.T) {
	for _, occupancy := range []int{8, 10, 12} {
		s := New()
		l := s.NewLink("red", 10*unit.Mbps, 0)
		red := NewRED(REDConfig{}, rng.New(17))
		// Pin the queue state RED observes: a busy link with a fixed
		// backlog, far more arrivals than the EWMA time constant.
		l.busy = true
		for i := 0; i < occupancy-1; i++ {
			l.push(&Packet{Size: 1500})
		}
		const n = 400000
		drops := 0
		p := &Packet{Size: 1500}
		for i := 0; i < n; i++ {
			if !red.Admit(l, p) {
				drops++
			}
		}
		cfg := red.cfg
		if avg := red.AvgQueue(); math.Abs(avg-float64(occupancy)) > 0.5 {
			t.Fatalf("occupancy %d: EWMA settled at %.3f", occupancy, avg)
		}
		pb := cfg.MaxP * (float64(occupancy) - float64(cfg.MinTh)) / float64(cfg.MaxTh-cfg.MinTh)
		rate := float64(drops) / n
		lo, hi := 0.9*pb, 2.1*pb
		if rate < lo || rate > hi {
			t.Errorf("occupancy %d: drop rate %.5f outside analytic bounds [%.5f, %.5f] (p_b=%.5f)",
				occupancy, rate, lo, hi, pb)
		}
		// And the uniformized point estimate should be close.
		want := 2 * pb / (1 + pb)
		if math.Abs(rate-want) > 0.25*want {
			t.Errorf("occupancy %d: drop rate %.5f far from uniformized %.5f", occupancy, rate, want)
		}
	}
}

// TestAvailBwUnderTimeVaryingCapacity drives a CBR flow through a link
// with a piecewise-constant capacity profile and asserts the recorder's
// ground truth equals C(t) − r inside every constant segment — the
// paper's Equation (2) generalized to time-varying capacity — in both
// full and aggregate recorder modes.
func TestAvailBwUnderTimeVaryingCapacity(t *testing.T) {
	steps := []CapacityStep{
		{0, 40 * unit.Mbps},
		{4 * time.Second, 15 * unit.Mbps},
		{8 * time.Second, 25 * unit.Mbps},
	}
	const crossRate = 10 * unit.Mbps
	for _, aggregate := range []bool{false, true} {
		name := "full"
		if aggregate {
			name = "aggregate"
		}
		t.Run(name, func(t *testing.T) {
			s := New()
			l := s.NewLink("var", steps[0].Rate, 0)
			l.SetCapacitySchedule(steps)
			var rec *Recorder
			if aggregate {
				rec = NewAggregateRecorder(steps[0].Rate, 50*time.Millisecond)
			} else {
				rec = NewRecorder(steps[0].Rate)
			}
			rec.SetCapacitySchedule(steps)
			l.Attach(rec)
			injectCBR(s, l, 10000, 1500, crossRate, 0) // 12 s of CBR at 10 Mbps
			s.Run()

			// Measure within segment interiors, away from rate-change
			// transients (a packet mid-service when the rate steps).
			for i, seg := range steps {
				from := seg.At + time.Second
				window := 2 * time.Second
				got := rec.AvailBw(from, window)
				want := seg.Rate - crossRate
				if math.Abs(float64(got-want)) > 0.02*float64(seg.Rate) {
					t.Errorf("segment %d [%v @ %v]: AvailBw = %v, want %v", i, seg.At, seg.Rate, got, want)
				}
				// Cross-check against the measured arrival rate, the
				// identity the issue asks for: avail = capacity − rate.
				arr := rec.ArrivalRate(from, window, nil)
				if math.Abs(float64(got-(seg.Rate-arr))) > 0.02*float64(seg.Rate) {
					t.Errorf("segment %d: AvailBw %v inconsistent with C−R = %v", i, got, seg.Rate-arr)
				}
			}
			// A window spanning the first rate change sees the
			// time-weighted mean: 2s@40 + 2s@15 → C̄ = 27.5 Mbps.
			got := rec.AvailBw(2*time.Second, 4*time.Second)
			want := 27.5*unit.Mbps - crossRate
			if math.Abs(float64(got-want)) > 0.02*float64(want) {
				t.Errorf("cross-boundary window: AvailBw = %v, want %v", got, want)
			}
		})
	}
}

// TestDeterministicReplayAcrossModelGrid runs the same seeded scenario
// twice per grid cell and asserts bit-identical outcomes — the contract
// that makes lossy/AQM experiments reproducible.
func TestDeterministicReplayAcrossModelGrid(t *testing.T) {
	type outcome struct {
		fwd, drop, lost int64
		bytes           unit.Bytes
		end             time.Duration
	}
	run := func(seed uint64, dm disciplineMaker, lm lossMaker) []outcome {
		r := rng.New(seed)
		s := New()
		links := randomPath(s, r, dm, lm)
		for i := 0; i < 2000; i++ {
			p := s.NewPacket()
			p.Size = unit.Bytes(300 + r.Uint64()%1200)
			p.Route = links
			s.Inject(p, time.Duration(r.Float64()*float64(time.Second)))
		}
		s.Run()
		out := make([]outcome, len(links))
		for i, l := range links {
			out[i] = outcome{l.Forwarded(), l.Dropped(), l.Lost(), l.BytesServed(), s.Now()}
		}
		return out
	}
	for _, dm := range disciplineMakers() {
		for _, lm := range lossMakers() {
			a := run(42, dm, lm)
			b := run(42, dm, lm)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s/%s hop %d: replay diverged: %+v vs %+v", dm.name, lm.name, i, a[i], b[i])
				}
			}
		}
	}
}
