package core

import (
	"errors"
	"testing"
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// stubTransport resolves every stream instantly, advancing a fake clock
// by a fixed step per probe.
type stubTransport struct {
	now    time.Duration
	step   time.Duration
	probes int
}

func (s *stubTransport) Now() time.Duration { return s.now }

func (s *stubTransport) Probe(spec probe.StreamSpec) (*probe.Record, error) {
	s.probes++
	s.now += s.step
	rec := probe.NewRecord(spec)
	for i := range rec.Recv {
		rec.Recv[i] = s.now
		rec.MarkResolved()
	}
	return rec, nil
}

func spec10() probe.StreamSpec { return probe.Periodic(10*unit.Mbps, 100, 10) }

func TestBudgetZeroIsPassthrough(t *testing.T) {
	st := &stubTransport{}
	if got := WithBudget(st, Budget{}); got != Transport(st) {
		t.Error("zero budget should return the transport unchanged")
	}
	if got := WithObserver(st, nil); got != Transport(st) {
		t.Error("nil observer should return the transport unchanged")
	}
}

func TestBudgetMaxStreams(t *testing.T) {
	st := &stubTransport{}
	bt := WithBudget(st, Budget{MaxStreams: 2})
	for i := 0; i < 2; i++ {
		if _, err := bt.Probe(spec10()); err != nil {
			t.Fatalf("stream %d within budget failed: %v", i, err)
		}
	}
	if _, err := bt.Probe(spec10()); !errors.Is(err, ErrBudget) {
		t.Fatalf("third stream err = %v, want ErrBudget", err)
	}
	if st.probes != 2 {
		t.Errorf("underlying transport saw %d probes, want 2 (cap enforced before send)", st.probes)
	}
}

func TestBudgetMaxPackets(t *testing.T) {
	bt := WithBudget(&stubTransport{}, Budget{MaxPackets: 25})
	if _, err := bt.Probe(spec10()); err != nil { // 10 pkts
		t.Fatal(err)
	}
	if _, err := bt.Probe(spec10()); err != nil { // 20 pkts
		t.Fatal(err)
	}
	if _, err := bt.Probe(spec10()); !errors.Is(err, ErrBudget) { // would be 30
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestBudgetMaxBytes(t *testing.T) {
	bt := WithBudget(&stubTransport{}, Budget{MaxBytes: 1500})
	if _, err := bt.Probe(spec10()); err != nil { // 1000 B
		t.Fatal(err)
	}
	if _, err := bt.Probe(spec10()); !errors.Is(err, ErrBudget) { // would be 2000
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestBudgetMaxDuration(t *testing.T) {
	st := &stubTransport{step: 40 * time.Millisecond}
	bt := WithBudget(st, Budget{MaxDuration: 100 * time.Millisecond})
	for i := 0; i < 3; i++ { // clock: 40, 80, 120 ms after each
		if _, err := bt.Probe(spec10()); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	// 120 ms elapsed since the first probe: over budget.
	if _, err := bt.Probe(spec10()); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	streams, packets, bytes, elapsed := bt.(*BudgetTransport).Used()
	if streams != 3 || packets != 30 || bytes != 3000 {
		t.Errorf("Used() = %d streams, %d pkts, %d B; want 3, 30, 3000", streams, packets, bytes)
	}
	if elapsed != 120*time.Millisecond {
		t.Errorf("elapsed = %v, want 120ms", elapsed)
	}
}

func TestBudgetMaxDurationChargesProjectedStreamTime(t *testing.T) {
	// Regression: MaxDuration used to be checked only against the time
	// elapsed *before* the stream, so a stream admitted at
	// elapsed < MaxDuration could run arbitrarily past the cap. The cap
	// must charge the stream's projected send duration up front, like
	// MaxPackets/MaxBytes charge projected counts.
	st := &stubTransport{step: 30 * time.Millisecond}
	bt := WithBudget(st, Budget{MaxDuration: 50 * time.Millisecond})

	// 2 packets of 1250 B at 100 kbps: one 100 ms gap, so the stream
	// alone projects past the 50 ms cap even at elapsed = 0.
	long := probe.Periodic(100*unit.Kbps, 1250, 2)
	if d := long.Duration(); d != 100*time.Millisecond {
		t.Fatalf("stream duration = %v, want 100ms (test setup)", d)
	}
	if _, err := bt.Probe(long); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-long stream err = %v, want ErrBudget", err)
	}
	if st.probes != 0 {
		t.Errorf("underlying transport saw %d probes, want 0 (cap enforced before send)", st.probes)
	}

	// A stream that fits exactly (projected 50 ms at elapsed 0) is
	// admitted; after it the clock stands at 30 ms, so the same stream
	// is rejected because elapsed + projection exceeds the cap.
	fits := probe.Periodic(200*unit.Kbps, 1250, 2) // 50 ms
	if _, err := bt.Probe(fits); err != nil {
		t.Fatalf("exactly-fitting stream rejected: %v", err)
	}
	if _, err := bt.Probe(fits); !errors.Is(err, ErrBudget) {
		t.Fatalf("second stream err = %v, want ErrBudget", err)
	}
}

func TestObserverSeesStreams(t *testing.T) {
	var events []StreamEvent
	ot := WithObserver(&stubTransport{step: time.Millisecond}, func(ev StreamEvent) {
		events = append(events, ev)
	})
	for i := 0; i < 3; i++ {
		if _, err := ot.Probe(spec10()); err != nil {
			t.Fatal(err)
		}
	}
	if len(events) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Stream != i+1 {
			t.Errorf("event %d: Stream = %d, want %d", i, ev.Stream, i+1)
		}
		if ev.Packets != 10 || ev.Bytes != 1000 || ev.Lost != 0 {
			t.Errorf("event %d: %+v, want 10 pkts / 1000 B / 0 lost", i, ev)
		}
	}
	if events[2].At != 3*time.Millisecond {
		t.Errorf("event 3 At = %v, want 3ms", events[2].At)
	}
}
