package core

import (
	"math"
	"testing"
	"time"

	"abw/internal/crosstraffic"
	"abw/internal/probe"
	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/unit"
)

func TestSampleMeanStdDev(t *testing.T) {
	if got := SampleMeanStdDev(10, 4); got != 5 {
		t.Errorf("SampleMeanStdDev(10, 4) = %g, want 5", got)
	}
	if got := SampleMeanStdDev(10, 1); got != 10 {
		t.Errorf("SampleMeanStdDev(10, 1) = %g, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	SampleMeanStdDev(1, 0)
}

func TestRequiredSamples(t *testing.T) {
	// σ = 20% of mean, target 5% → k = (0.2/0.05)^2 = 16.
	k, err := RequiredSamples(20, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k != 16 {
		t.Errorf("RequiredSamples = %d, want 16", k)
	}
	// Short-timescale regime (the pitfall's "hundreds of samples"):
	// σ equal to the mean, target 5% → 400 samples.
	k, err = RequiredSamples(100, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k != 400 {
		t.Errorf("RequiredSamples = %d, want 400", k)
	}
	if _, err := RequiredSamples(-1, 100, 0.05); err == nil {
		t.Error("negative σ accepted")
	}
	if _, err := RequiredSamples(1, 0, 0.05); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := RequiredSamples(1, 100, 0); err == nil {
		t.Error("zero target accepted")
	}
}

func TestVarianceLaws(t *testing.T) {
	if got := IIDVariance(100, 4); got != 25 {
		t.Errorf("IIDVariance = %g, want 25", got)
	}
	// H=0.75: Var/k^{0.5}; k=4 → 100/2 = 50. Slower decay than IID.
	got := SelfSimilarVariance(100, 4, 0.75)
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("SelfSimilarVariance = %g, want 50", got)
	}
	if got <= IIDVariance(100, 4) {
		t.Error("self-similar variance must exceed IID variance at same k")
	}
}

func TestVarianceLawPanics(t *testing.T) {
	for _, f := range []func(){
		func() { IIDVariance(1, 0) },
		func() { SelfSimilarVariance(1, 0, 0.75) },
		func() { SelfSimilarVariance(1, 4, 0.5) },
		func() { SelfSimilarVariance(1, 4, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid variance-law input did not panic")
				}
			}()
			f()
		}()
	}
}

func TestMisconceptionsCatalog(t *testing.T) {
	if len(Misconceptions) != 10 {
		t.Fatalf("catalog has %d entries, want 10", len(Misconceptions))
	}
	fallacies, pitfalls := 0, 0
	for i, m := range Misconceptions {
		if m.ID != i+1 {
			t.Errorf("entry %d has ID %d", i, m.ID)
		}
		if m.Title == "" || m.Summary == "" || m.Experiment == "" {
			t.Errorf("entry %d incomplete", i)
		}
		switch m.Kind {
		case Fallacy:
			fallacies++
		case Pitfall:
			pitfalls++
		default:
			t.Errorf("entry %d has unknown kind %q", i, m.Kind)
		}
	}
	// The paper presents 4 fallacies and 6 pitfalls.
	if fallacies != 4 || pitfalls != 6 {
		t.Errorf("kinds = %d fallacies + %d pitfalls, want 4 + 6", fallacies, pitfalls)
	}
}

func TestReportString(t *testing.T) {
	point := &Report{Tool: "spruce", Point: 25 * unit.Mbps, Low: 25 * unit.Mbps, High: 25 * unit.Mbps}
	if s := point.String(); s == "" {
		t.Error("empty point report string")
	}
	ranged := &Report{Tool: "pathload", Point: 25 * unit.Mbps, Low: 20 * unit.Mbps, High: 30 * unit.Mbps}
	if s := ranged.String(); s == "" {
		t.Error("empty range report string")
	}
	if point.String() == ranged.String() {
		t.Error("point and range reports render identically")
	}
}

// buildSingleHop returns a transport over the paper's canonical scenario:
// one 50 Mbps link with 25 Mbps cross traffic for `horizon`.
func buildSingleHop(t *testing.T, model func(*rng.Rand) crosstraffic.Model, horizon time.Duration) *SimTransport {
	t.Helper()
	s := sim.New()
	l := s.NewLink("tight", 50*unit.Mbps, time.Millisecond)
	path := sim.MustPath(l)
	model(rng.New(1)).Run(s, []*sim.Link{l}, 0, horizon)
	return NewSimTransport(s, path)
}

func TestSimTransportProbeResolves(t *testing.T) {
	tr := buildSingleHop(t, func(r *rng.Rand) crosstraffic.Model {
		return crosstraffic.Poisson(crosstraffic.Stream{Rate: 25 * unit.Mbps}, r)
	}, 10*time.Second)
	rec, err := tr.Probe(probe.Periodic(20*unit.Mbps, 1500, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Done() {
		t.Error("probe did not resolve")
	}
	if !rec.Complete() {
		t.Errorf("lost %d packets on an unbounded-buffer path", rec.LossCount())
	}
	if rec.OutputRate() <= 0 {
		t.Error("no output rate measured")
	}
}

func TestSimTransportSequentialStreamsAdvanceTime(t *testing.T) {
	tr := buildSingleHop(t, func(r *rng.Rand) crosstraffic.Model {
		return crosstraffic.Poisson(crosstraffic.Stream{Rate: 25 * unit.Mbps}, r)
	}, 30*time.Second)
	t0 := tr.Now()
	if _, err := tr.Probe(probe.Periodic(20*unit.Mbps, 1500, 50)); err != nil {
		t.Fatal(err)
	}
	t1 := tr.Now()
	if _, err := tr.Probe(probe.Periodic(20*unit.Mbps, 1500, 50)); err != nil {
		t.Fatal(err)
	}
	t2 := tr.Now()
	if !(t0 < t1 && t1 < t2) {
		t.Errorf("virtual time did not advance: %v %v %v", t0, t1, t2)
	}
}

func TestSimTransportRejectsInvalidSpec(t *testing.T) {
	tr := buildSingleHop(t, func(r *rng.Rand) crosstraffic.Model {
		return crosstraffic.CBR(crosstraffic.Stream{Rate: 25 * unit.Mbps})
	}, time.Second)
	if _, err := tr.Probe(probe.StreamSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSimTransportMissingFields(t *testing.T) {
	var tr SimTransport
	if _, err := tr.Probe(probe.Periodic(unit.Mbps, 1500, 2)); err == nil {
		t.Error("nil sim/path accepted")
	}
}

func TestSimTransportMeasuredRatioMatchesFluid(t *testing.T) {
	// End-to-end: direct estimate over the transport with CBR cross
	// traffic recovers A = 25 Mbps via Eq. (9).
	tr := buildSingleHop(t, func(r *rng.Rand) crosstraffic.Model {
		return crosstraffic.CBR(crosstraffic.Stream{Rate: 25 * unit.Mbps, Sizes: rng.FixedSize(200)})
	}, 10*time.Second)
	rec, err := tr.Probe(probe.Periodic(40*unit.Mbps, 1500, 200))
	if err != nil {
		t.Fatal(err)
	}
	ri, ro := rec.InputRate(), rec.OutputRate()
	if ro >= ri {
		t.Fatalf("expected compression at Ri=40 > A=25: ri=%v ro=%v", ri, ro)
	}
	// Eq. (9) with known Ct.
	a := 50*unit.Mbps - ri*(50*unit.Mbps/ro-1)
	if math.Abs(a.MbpsOf()-25) > 1.5 {
		t.Errorf("direct estimate over transport = %v, want ~25Mbps", a)
	}
}
