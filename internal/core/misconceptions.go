package core

// MisconceptionKind distinguishes the paper's two headings.
type MisconceptionKind string

// Kinds, after Hennessy & Patterson's usage adopted by the paper:
// a fallacy is a commonly held false belief; a pitfall is an easily made
// mistake.
const (
	Fallacy MisconceptionKind = "fallacy"
	Pitfall MisconceptionKind = "pitfall"
)

// Misconception is one of the paper's ten fallacies/pitfalls, with a
// pointer to the experiment in this repository that demonstrates it.
type Misconception struct {
	ID         int
	Kind       MisconceptionKind
	Title      string
	Summary    string
	Experiment string // experiment name in internal/exp, or reference
}

// Misconceptions catalogs all ten, in the paper's order.
var Misconceptions = [10]Misconception{
	{
		ID: 1, Kind: Pitfall,
		Title: "Ignoring the variability of the avail-bw process",
		Summary: "Even with perfect per-sample accuracy, the sample mean of k " +
			"samples deviates from the true mean with variance Var[A_τ]/k " +
			"(Eq. 11); at short timescales hundreds of samples are needed for " +
			"ε < 5%.",
		Experiment: "fig1",
	},
	{
		ID: 2, Kind: Pitfall,
		Title: "Ignoring the relation between probing stream duration and averaging timescale",
		Summary: "The probing stream duration IS the averaging timescale τ of " +
			"the measured avail-bw process; it is a measurement knob, not an " +
			"implementation parameter.",
		Experiment: "fig2",
	},
	{
		ID: 3, Kind: Fallacy,
		Title: "Faster estimation is better",
		Summary: "Fewer or shorter streams reduce latency but raise variance: " +
			"shorter streams mean a smaller τ, hence larger Var[A_τ], hence a " +
			"noisier sample mean at fixed sample count.",
		Experiment: "latency-accuracy",
	},
	{
		ID: 4, Kind: Fallacy,
		Title: "Packet pairs are as good as packet trains",
		Summary: "With real (non-fluid) cross traffic of a few large packets, " +
			"per-pair samples quantize coarsely and the estimation error grows " +
			"with the cross-traffic packet size (Table 1).",
		Experiment: "table1",
	},
	{
		ID: 5, Kind: Pitfall,
		Title: "Estimating the tight link capacity with end-to-end capacity estimation tools",
		Summary: "Capacity tools measure the narrow link C_n, which can differ " +
			"from the tight link capacity C_t that direct probing needs " +
			"(e.g. Fast Ethernet narrow link before a loaded OC-3 tight link).",
		Experiment: "narrow-vs-tight",
	},
	{
		ID: 6, Kind: Pitfall,
		Title: "Ignoring the effects of cross traffic burstiness",
		Summary: "Queues build before 100% utilization; with bursty cross " +
			"traffic Ro/Ri dips below 1 well before Ri reaches A, biasing both " +
			"probing classes toward underestimation (Fig. 3).",
		Experiment: "fig3",
	},
	{
		ID: 7, Kind: Pitfall,
		Title: "Ignoring the effects of multiple bottlenecks",
		Summary: "With several links of (near-)equal avail-bw the probing " +
			"stream interacts with cross traffic at each, compounding the rate " +
			"compression and deepening underestimation (Fig. 4).",
		Experiment: "fig4",
	},
	{
		ID: 8, Kind: Fallacy,
		Title: "Increasing One-Way Delays is equivalent to Ro < Ri",
		Summary: "The OWD time series carries far more information than the " +
			"single Ro/Ri number: a late cross-traffic burst can depress Ro " +
			"without any increasing OWD trend (Fig. 5).",
		Experiment: "fig5",
	},
	{
		ID: 9, Kind: Fallacy,
		Title: "Iterative probing converges to a single avail-bw estimate",
		Summary: "The avail-bw process varies during the iteration; iterative " +
			"probing can only bracket a variation range (R_L, R_H) at timescale " +
			"τ — which is not a confidence interval for the mean (Fig. 6).",
		Experiment: "fig6",
	},
	{
		ID: 10, Kind: Pitfall,
		Title: "Evaluating avail-bw estimation against bulk TCP throughput",
		Summary: "Bulk TCP throughput depends on socket buffers, RTT, loss, " +
			"buffering and cross-traffic responsiveness; it can sit above or " +
			"below the avail-bw and must not be used as ground truth (Fig. 7).",
		Experiment: "fig7",
	},
}
