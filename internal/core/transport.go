package core

import (
	"fmt"
	"time"

	"abw/internal/probe"
	"abw/internal/sim"
)

// SimTransport runs probing streams over a simulated path. The cross
// traffic must already be scheduled on the simulation; each Probe call
// advances virtual time until the stream resolves, so consecutive calls
// observe consecutive (disjoint) slices of the cross-traffic process —
// exactly how a real tool samples a live path.
type SimTransport struct {
	Sim  *sim.Sim
	Path *sim.Path
	// Spacing is the idle guard inserted before each stream so streams
	// do not queue behind each other (default 10 ms).
	Spacing time.Duration
	// MaxWait bounds how long after its send duration a stream may take
	// to resolve before the remaining packets are written off as stuck
	// (default 2 s of virtual time).
	MaxWait time.Duration

	flow int
}

// NewSimTransport wires a transport over an existing simulation and
// path.
func NewSimTransport(s *sim.Sim, p *sim.Path) *SimTransport {
	return &SimTransport{Sim: s, Path: p}
}

func (st *SimTransport) spacing() time.Duration {
	if st.Spacing > 0 {
		return st.Spacing
	}
	return 10 * time.Millisecond
}

func (st *SimTransport) maxWait() time.Duration {
	if st.MaxWait > 0 {
		return st.MaxWait
	}
	return 2 * time.Second
}

// Now implements Transport on virtual time.
func (st *SimTransport) Now() time.Duration { return st.Sim.Now() }

// Probe implements Transport.
func (st *SimTransport) Probe(spec probe.StreamSpec) (*probe.Record, error) {
	if st.Sim == nil || st.Path == nil {
		return nil, fmt.Errorf("core: SimTransport missing simulation or path")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	st.flow++
	start := st.Sim.Now() + st.spacing()
	rec, err := probe.SendOverSim(st.Sim, st.Path.Route(), spec, start, st.flow)
	if err != nil {
		return nil, err
	}
	deadline := start + spec.Duration() + st.maxWait()
	// Advance in steps scaled to the stream so short probes (packet
	// pairs) do not overshoot virtual time: the clock a Probe call
	// consumes must track the stream's own footprint, or long
	// experiments drift past their scheduled cross traffic.
	step := spec.Duration() / 4
	if step < time.Millisecond {
		step = time.Millisecond
	}
	if step > 50*time.Millisecond {
		step = 50 * time.Millisecond
	}
	for !rec.Done() && st.Sim.Now() < deadline {
		d := deadline - st.Sim.Now()
		if d > step {
			d = step
		}
		st.Sim.RunUntil(st.Sim.Now() + d)
	}
	return rec, nil
}

var _ Transport = (*SimTransport)(nil)
