package core

import (
	"errors"
	"fmt"
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// ErrBudget is the sentinel wrapped by every budget-exhaustion error, so
// callers can distinguish "the tool ran out of probing budget" from a
// measurement failure with errors.Is.
var ErrBudget = errors.New("probing budget exhausted")

// Budget caps the probing effort of one estimation run. Zero fields are
// unlimited. The paper's summary demands tool comparisons "under
// reproducible and controllable conditions" at equal probing budgets;
// enforcing the caps in the transport — below every tool — makes
// cross-tool comparisons budget-fair by construction rather than by
// per-tool configuration discipline.
type Budget struct {
	// MaxStreams caps the number of probing streams.
	MaxStreams int `json:"max_streams,omitempty"`
	// MaxPackets caps the total probe packets sent.
	MaxPackets int `json:"max_packets,omitempty"`
	// MaxBytes caps the total probing volume (intrusiveness).
	MaxBytes unit.Bytes `json:"max_bytes,omitempty"`
	// MaxDuration caps the estimation latency on the transport's clock
	// (virtual time on the simulator).
	MaxDuration time.Duration `json:"max_duration_ns,omitempty"`
}

// IsZero reports whether the budget imposes no cap at all.
func (b Budget) IsZero() bool {
	return b.MaxStreams <= 0 && b.MaxPackets <= 0 && b.MaxBytes <= 0 && b.MaxDuration <= 0
}

// BudgetTransport decorates a Transport with a probing budget: a Probe
// call that would exceed any cap fails with an error wrapping ErrBudget
// before the stream is sent. Like every Transport, it is not safe for
// concurrent use; wrap a fresh one per estimation run.
type BudgetTransport struct {
	t      Transport
	budget Budget

	streams int
	packets int
	bytes   unit.Bytes
	started bool
	start   time.Duration
}

// WithBudget wraps t with the budget. A zero budget returns t unchanged.
func WithBudget(t Transport, b Budget) Transport {
	if b.IsZero() {
		return t
	}
	return &BudgetTransport{t: t, budget: b}
}

// Now implements Transport.
func (bt *BudgetTransport) Now() time.Duration { return bt.t.Now() }

// Used reports the effort consumed so far and the elapsed transport
// time since the first Probe.
func (bt *BudgetTransport) Used() (streams, packets int, bytes unit.Bytes, elapsed time.Duration) {
	if bt.started {
		elapsed = bt.t.Now() - bt.start
	}
	return bt.streams, bt.packets, bt.bytes, elapsed
}

// Probe implements Transport, charging the stream against the budget.
func (bt *BudgetTransport) Probe(spec probe.StreamSpec) (*probe.Record, error) {
	if !bt.started {
		bt.started = true
		bt.start = bt.t.Now()
	}
	b := bt.budget
	switch {
	case b.MaxStreams > 0 && bt.streams+1 > b.MaxStreams:
		return nil, fmt.Errorf("core: %w: stream %d exceeds MaxStreams %d", ErrBudget, bt.streams+1, b.MaxStreams)
	case b.MaxPackets > 0 && bt.packets+spec.Count > b.MaxPackets:
		return nil, fmt.Errorf("core: %w: %d+%d packets exceed MaxPackets %d", ErrBudget, bt.packets, spec.Count, b.MaxPackets)
	case b.MaxBytes > 0 && bt.bytes+spec.Bytes() > b.MaxBytes:
		return nil, fmt.Errorf("core: %w: %d+%d bytes exceed MaxBytes %d", ErrBudget, bt.bytes, spec.Bytes(), b.MaxBytes)
	case b.MaxDuration > 0 && bt.t.Now()-bt.start+spec.Duration() > b.MaxDuration:
		// Charge the stream's projected send duration, exactly like
		// MaxPackets/MaxBytes charge projected counts: checking only the
		// elapsed time before the stream would let a stream admitted at
		// elapsed < MaxDuration run arbitrarily past the cap.
		return nil, fmt.Errorf("core: %w: %v elapsed + %v stream exceed MaxDuration %v",
			ErrBudget, bt.t.Now()-bt.start, spec.Duration(), b.MaxDuration)
	}
	rec, err := bt.t.Probe(spec)
	if err != nil {
		return nil, err
	}
	bt.streams++
	bt.packets += spec.Count
	bt.bytes += spec.Bytes()
	return rec, nil
}

var _ Transport = (*BudgetTransport)(nil)
