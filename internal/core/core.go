// Package core defines the conceptual layer of the reproduction: the
// avail-bw definitions of the paper's Equations (1)–(3), the two probing
// paradigms (direct, Equation 9; iterative, Equation 10), the estimator
// and transport abstractions every tool implements, the sampling-theory
// facts behind Equation (11), and a machine-readable catalog of the ten
// fallacies and pitfalls.
//
// The Transport interface is the boundary between estimation logic and
// packet delivery: the same estimator code runs over the discrete-event
// simulator (SimTransport) and over real UDP sockets
// (internal/livenet.Transport).
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// Transport sends probing streams over some path and reports what the
// receiver measured. Implementations must deliver streams sequentially:
// a Probe call returns only when the stream has been fully resolved
// (every packet either received or known lost).
type Transport interface {
	// Probe sends one probing stream and returns its record.
	Probe(spec probe.StreamSpec) (*probe.Record, error)
	// Now returns the transport's clock, used for estimation-latency
	// accounting. For the simulator this is virtual time.
	Now() time.Duration
}

// Report is the outcome of one estimation run. Tools that produce a
// variation range (Pathload) set Low < High; point-estimate tools set
// Low = High = Point. Overhead fields let experiments compare tools at
// equal probing budgets, the fair-comparison requirement from the
// paper's summary.
type Report struct {
	// Tool names the estimator that produced the report.
	Tool string `json:"tool"`
	// Point is the headline avail-bw estimate.
	Point unit.Rate `json:"point_bps"`
	// Low and High bound the estimated variation range of the avail-bw
	// process at the probing timescale. This range is NOT a confidence
	// interval for the mean — see Misconceptions[8].
	Low  unit.Rate `json:"low_bps"`
	High unit.Rate `json:"high_bps"`
	// Streams and Packets count the probing effort.
	Streams int `json:"streams"`
	Packets int `json:"packets"`
	// ProbeBytes is the total probing volume (intrusiveness).
	ProbeBytes unit.Bytes `json:"probe_bytes"`
	// Elapsed is the estimation latency on the transport's clock.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Samples holds per-stream avail-bw samples for direct-probing
	// tools; nil for iterative tools, which never sample the process
	// (they only compare rates against it).
	Samples []unit.Rate `json:"samples_bps,omitempty"`
	// Capacity is the tool's own estimate of the tight-link capacity,
	// when the technique produces one (TOPP); zero otherwise.
	Capacity unit.Rate `json:"capacity_bps,omitempty"`
}

// String renders the report the way the tools' CLIs print it.
func (r *Report) String() string {
	if r.Low != r.High {
		return fmt.Sprintf("%s: avail-bw %.2f Mbps (range %.2f–%.2f Mbps, %d streams, %d pkts, %v)",
			r.Tool, r.Point.MbpsOf(), r.Low.MbpsOf(), r.High.MbpsOf(), r.Streams, r.Packets, r.Elapsed)
	}
	return fmt.Sprintf("%s: avail-bw %.2f Mbps (%d streams, %d pkts, %v)",
		r.Tool, r.Point.MbpsOf(), r.Streams, r.Packets, r.Elapsed)
}

// Estimator is one end-to-end avail-bw estimation technique.
type Estimator interface {
	// Name identifies the technique ("pathload", "spruce", ...).
	Name() string
	// Estimate runs the technique over the transport until it converges
	// or exhausts its budget. Implementations honor ctx cancellation
	// and deadlines at stream boundaries: a stream in flight completes,
	// but no further stream is sent once ctx is done.
	Estimate(ctx context.Context, t Transport) (*Report, error)
}

// Probe sends one stream through t after checking ctx. It is the helper
// every estimator's probing loop goes through, which is what makes
// cancellation uniform across tools: each loop iteration observes ctx
// exactly once, at the stream boundary.
func Probe(ctx context.Context, t Transport, spec probe.StreamSpec) (*probe.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.Probe(spec)
}

// Outcome is the JSON shape of one estimation run: the report on
// success, the error text on failure. It exists so that every consumer
// that serializes estimation results — the compare experiment,
// cmd/abwprobe -json — marshals errors the same way in one place (a
// bare error interface would marshal as {}).
type Outcome struct {
	Tool   string  `json:"tool"`
	Report *Report `json:"report,omitempty"`
	Err    string  `json:"error,omitempty"`
}

// NewOutcome captures a run's report and error into the JSON shape.
func NewOutcome(tool string, rep *Report, err error) Outcome {
	o := Outcome{Tool: tool, Report: rep}
	if err != nil {
		o.Err = err.Error()
	}
	return o
}

// --- Sampling theory (Equation 11 and the Figure 1 pitfall) ---

// SampleMeanStdDev returns the standard deviation of the mean of k
// independent samples drawn from a population with the given standard
// deviation: σ/√k (Equation 11).
func SampleMeanStdDev(popStdDev float64, k int) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("core: sample count %d must be positive", k))
	}
	return popStdDev / math.Sqrt(float64(k))
}

// RequiredSamples returns the number of independent samples needed so
// that the standard deviation of the sample mean is at most
// targetRelErr·mean. This is the quantitative content of the paper's
// first pitfall: at τ = 1 ms the answer runs into the hundreds.
func RequiredSamples(popStdDev, mean, targetRelErr float64) (int, error) {
	if popStdDev < 0 || mean <= 0 || targetRelErr <= 0 {
		return 0, fmt.Errorf("core: invalid inputs (σ=%g, mean=%g, target=%g)", popStdDev, mean, targetRelErr)
	}
	k := math.Ceil(math.Pow(popStdDev/(mean*targetRelErr), 2))
	if k < 1 {
		k = 1
	}
	return int(k), nil
}

// IIDVariance applies Equation (4): the variance of the τk-scale process
// given the τ-scale variance, under independence.
func IIDVariance(varTau float64, k int) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("core: aggregation factor %d must be positive", k))
	}
	return varTau / float64(k)
}

// SelfSimilarVariance applies Equation (5): the variance of the τk-scale
// process for an exactly self-similar process with Hurst parameter h.
func SelfSimilarVariance(varTau float64, k int, h float64) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("core: aggregation factor %d must be positive", k))
	}
	if h <= 0.5 || h >= 1 {
		panic(fmt.Sprintf("core: Hurst parameter %g outside (0.5, 1)", h))
	}
	return varTau / math.Pow(float64(k), 2*(1-h))
}
