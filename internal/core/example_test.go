package core_test

import (
	"fmt"

	"abw/internal/core"
)

// Equation (11) in action: how many independent samples does a target
// accuracy need? At short timescales the avail-bw process is noisy
// (large σ relative to the mean), and the answer runs into the hundreds
// — the quantitative core of the paper's first pitfall.
func ExampleRequiredSamples() {
	// Long timescale: σ = 10% of the mean, 5% target accuracy.
	easy, _ := core.RequiredSamples(10, 100, 0.05)
	// Short timescale: σ equal to the mean, same target.
	hard, _ := core.RequiredSamples(100, 100, 0.05)
	fmt.Printf("σ=10%% of mean: %d samples\n", easy)
	fmt.Printf("σ=100%% of mean: %d samples\n", hard)
	// Output:
	// σ=10% of mean: 4 samples
	// σ=100% of mean: 400 samples
}

// The misconception catalog is data, so tools can cite the pitfalls
// they are subject to.
func ExampleMisconceptions() {
	m := core.Misconceptions[4] // pitfall 5: narrow vs tight capacity
	fmt.Printf("#%d [%s] %s\n", m.ID, m.Kind, m.Title)
	// Output:
	// #5 [pitfall] Estimating the tight link capacity with end-to-end capacity estimation tools
}
