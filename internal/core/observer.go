package core

import (
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// StreamEvent is one per-stream progress notification: what an observer
// learns each time a probing stream resolves. Estimation runs are
// opaque between their start and their report; the observer hook is the
// seam that makes them observable from outside — a progress bar in
// cmd/abwprobe, a metric sink in a long-running service.
type StreamEvent struct {
	// Stream is the 1-based ordinal of the stream within the run.
	Stream int
	// Packets and Bytes are the stream's size as sent.
	Packets int
	Bytes   unit.Bytes
	// Lost counts the stream's packets known lost.
	Lost int
	// At is the transport clock when the stream resolved.
	At time.Duration
}

// Observer receives per-stream progress events. Calls happen on the
// estimating goroutine, between streams; a slow observer slows probing.
type Observer func(StreamEvent)

// observedTransport decorates a Transport, invoking the observer after
// every successfully resolved stream.
type observedTransport struct {
	t       Transport
	obs     Observer
	streams int
}

// WithObserver wraps t so obs sees every resolved stream. A nil
// observer returns t unchanged.
func WithObserver(t Transport, obs Observer) Transport {
	if obs == nil {
		return t
	}
	return &observedTransport{t: t, obs: obs}
}

// Now implements Transport.
func (ot *observedTransport) Now() time.Duration { return ot.t.Now() }

// Probe implements Transport.
func (ot *observedTransport) Probe(spec probe.StreamSpec) (*probe.Record, error) {
	rec, err := ot.t.Probe(spec)
	if err != nil {
		return nil, err
	}
	ot.streams++
	ot.obs(StreamEvent{
		Stream:  ot.streams,
		Packets: spec.Count,
		Bytes:   spec.Bytes(),
		Lost:    rec.LossCount(),
		At:      ot.t.Now(),
	})
	return rec, nil
}

var _ Transport = (*observedTransport)(nil)
