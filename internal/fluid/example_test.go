package fluid_test

import (
	"fmt"

	"abw/internal/fluid"
	"abw/internal/unit"
)

// The paper's canonical single-hop numbers: a 50 Mbps tight link with
// 25 Mbps fluid cross traffic, probed at 40 Mbps.
func Example() {
	link, err := fluid.NewLink(50*unit.Mbps, 25*unit.Mbps)
	if err != nil {
		panic(err)
	}
	ri := 40 * unit.Mbps
	ro := link.OutputRate(ri) // Eq. (8)
	a, err := fluid.DirectEstimate(link.Capacity, ri, ro)
	if err != nil {
		panic(err)
	}
	fmt.Printf("avail-bw %.0f Mbps, Ro %.2f Mbps, Eq.(9) recovers %.0f Mbps\n",
		link.AvailBw().MbpsOf(), ro.MbpsOf(), a.MbpsOf())
	fmt.Printf("overloaded per Eq.(10): %v\n", fluid.ExceedsAvailBw(ri, ro))
	// Output:
	// avail-bw 25 Mbps, Ro 30.77 Mbps, Eq.(9) recovers 25 Mbps
	// overloaded per Eq.(10): true
}

// Multiple equally tight links compress a probing stream more than one —
// the fluid skeleton of the paper's Figure 4.
func ExamplePath_OutputRate() {
	one, _ := fluid.NewPath(fluid.Link{Capacity: 50 * unit.Mbps, Cross: 25 * unit.Mbps})
	five, _ := fluid.NewPath(
		fluid.Link{Capacity: 50 * unit.Mbps, Cross: 25 * unit.Mbps},
		fluid.Link{Capacity: 50 * unit.Mbps, Cross: 25 * unit.Mbps},
		fluid.Link{Capacity: 50 * unit.Mbps, Cross: 25 * unit.Mbps},
		fluid.Link{Capacity: 50 * unit.Mbps, Cross: 25 * unit.Mbps},
		fluid.Link{Capacity: 50 * unit.Mbps, Cross: 25 * unit.Mbps},
	)
	ri := 30 * unit.Mbps
	fmt.Printf("Ro/Ri over 1 tight link: %.3f\n", float64(one.OutputRate(ri))/float64(ri))
	fmt.Printf("Ro/Ri over 5 tight links: %.3f\n", float64(five.OutputRate(ri))/float64(ri))
	// Output:
	// Ro/Ri over 1 tight link: 0.909
	// Ro/Ri over 5 tight links: 0.838
}
