// Package fluid implements the single-link fluid cross-traffic model of
// the paper's Section 1 — the idealized setting every estimation
// technique is derived from — plus the multi-hop piecewise-linear
// rate-response curve used by TOPP-style analysis.
//
// In the fluid model a link of capacity Ct carries constant-rate cross
// traffic Rc, so the avail-bw is A = Ct − Rc exactly. Probing at rate
// Ri > A overloads the link deterministically, producing the queue
// growth (Eq. 6), one-way-delay slope (Eq. 7) and output-rate compression
// (Eq. 8) that direct probing inverts (Eq. 9) and iterative probing
// thresholds (Eq. 10).
package fluid

import (
	"fmt"
	"time"

	"abw/internal/unit"
)

// Link is a single fluid link.
type Link struct {
	// Capacity is the tight-link capacity Ct.
	Capacity unit.Rate
	// Cross is the constant fluid cross-traffic rate Rc < Capacity.
	Cross unit.Rate
}

// NewLink validates and returns a fluid link.
func NewLink(capacity, cross unit.Rate) (Link, error) {
	if capacity <= 0 {
		return Link{}, fmt.Errorf("fluid: capacity %v must be positive", capacity)
	}
	if cross < 0 || cross >= capacity {
		return Link{}, fmt.Errorf("fluid: cross rate %v must be in [0, capacity)", cross)
	}
	return Link{Capacity: capacity, Cross: cross}, nil
}

// AvailBw returns A = Ct − Rc (Equations 2–3 in the fluid setting).
func (l Link) AvailBw() unit.Rate { return l.Capacity - l.Cross }

// QueueGrowthPerPacket returns Δq, the queue-size increase per probing
// packet of size size sent at rate ri (Equation 6):
//
//	Δq = L·(Ri − A)/Ri   for Ri > A, else 0.
func (l Link) QueueGrowthPerPacket(size unit.Bytes, ri unit.Rate) unit.Bytes {
	a := l.AvailBw()
	if ri <= a {
		return 0
	}
	return unit.Bytes(float64(size) * float64(ri-a) / float64(ri))
}

// OWDIncreasePerPacket returns Δd, the one-way-delay increase between
// consecutive probing packets (Equation 7):
//
//	Δd = Δq/Ct = (L/Ct)·(Ri − A)/Ri   for Ri > A, else 0.
func (l Link) OWDIncreasePerPacket(size unit.Bytes, ri unit.Rate) time.Duration {
	dq := l.QueueGrowthPerPacket(size, ri)
	if dq == 0 {
		return 0
	}
	return unit.TxTime(dq, l.Capacity)
}

// OutputRate returns Ro for a probing stream at input rate ri
// (Equation 8):
//
//	Ro = Ri·Ct / (Ct + Ri − A)   for Ri > A, else Ri.
func (l Link) OutputRate(ri unit.Rate) unit.Rate {
	a := l.AvailBw()
	if ri <= a {
		return ri
	}
	return ri * l.Capacity / (l.Capacity + ri - a)
}

// DirectEstimate inverts Equation (8) into Equation (9): given the known
// tight-link capacity and the measured input and output rates, return the
// avail-bw sample
//
//	A = Ct − Ri·(Ct/Ro − 1).
//
// It is only meaningful when Ri > A (the stream must overload the link);
// callers enforce that by probing at a sufficiently high rate.
func DirectEstimate(capacity, ri, ro unit.Rate) (unit.Rate, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("fluid: capacity %v must be positive", capacity)
	}
	if ri <= 0 || ro <= 0 {
		return 0, fmt.Errorf("fluid: rates must be positive (ri=%v ro=%v)", ri, ro)
	}
	if ro > ri {
		// Measurement noise can produce Ro slightly above Ri; clamp to
		// the no-compression case, which yields A >= Ri.
		ro = ri
	}
	return capacity - ri*(capacity/ro-1), nil
}

// ExceedsAvailBw is Equation (10), the iterative-probing predicate: the
// stream's rate exceeded the avail-bw iff the output rate was compressed.
func ExceedsAvailBw(ri, ro unit.Rate) bool { return ro < ri }

// Path is a sequence of fluid links traversed in order. Cross traffic is
// one-hop persistent: each hop's fluid rate interacts with the probing
// stream independently, which matches the paper's Figure 4 setup.
type Path struct {
	Links []Link
}

// NewPath validates the hops.
func NewPath(links ...Link) (*Path, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("fluid: a path needs at least one link")
	}
	for i, l := range links {
		if _, err := NewLink(l.Capacity, l.Cross); err != nil {
			return nil, fmt.Errorf("fluid: hop %d: %w", i, err)
		}
	}
	return &Path{Links: links}, nil
}

// AvailBw returns the end-to-end avail-bw: the minimum over hops
// (Equation 3).
func (p *Path) AvailBw() unit.Rate {
	a := p.Links[0].AvailBw()
	for _, l := range p.Links[1:] {
		if la := l.AvailBw(); la < a {
			a = la
		}
	}
	return a
}

// TightLink returns the index of the link with minimum avail-bw.
func (p *Path) TightLink() int {
	idx := 0
	for i, l := range p.Links {
		if l.AvailBw() < p.Links[idx].AvailBw() {
			idx = i
		}
	}
	return idx
}

// NarrowLink returns the index of the link with minimum capacity.
func (p *Path) NarrowLink() int {
	idx := 0
	for i, l := range p.Links {
		if l.Capacity < p.Links[idx].Capacity {
			idx = i
		}
	}
	return idx
}

// OutputRate propagates a probing stream through all hops: the output
// rate of hop i is the input rate of hop i+1. In the fluid model this is
// exact, and it already exhibits the key multi-bottleneck effect of
// Figure 4: with several equally tight links the compression accumulates
// hop by hop.
func (p *Path) OutputRate(ri unit.Rate) unit.Rate {
	r := ri
	for _, l := range p.Links {
		r = l.OutputRate(r)
	}
	return r
}

// ResponseCurve samples Ro/Ri over a range of input rates, giving the
// piecewise-linear rate response TOPP regresses on. The returned slices
// are the input rates and the corresponding ratios.
func (p *Path) ResponseCurve(from, to unit.Rate, steps int) (ri []unit.Rate, ratio []float64) {
	if steps < 2 || to <= from {
		return nil, nil
	}
	ri = make([]unit.Rate, steps)
	ratio = make([]float64, steps)
	for i := 0; i < steps; i++ {
		r := from + (to-from)*unit.Rate(i)/unit.Rate(steps-1)
		ri[i] = r
		ratio[i] = float64(p.OutputRate(r)) / float64(r)
	}
	return ri, ratio
}
