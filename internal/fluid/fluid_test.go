package fluid

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"abw/internal/unit"
)

func link(t *testing.T, c, x unit.Rate) Link {
	t.Helper()
	l, err := NewLink(c, x)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLinkValidation(t *testing.T) {
	if _, err := NewLink(0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewLink(10*unit.Mbps, 10*unit.Mbps); err == nil {
		t.Error("cross == capacity accepted")
	}
	if _, err := NewLink(10*unit.Mbps, -unit.Mbps); err == nil {
		t.Error("negative cross accepted")
	}
}

func TestAvailBw(t *testing.T) {
	l := link(t, 50*unit.Mbps, 25*unit.Mbps)
	if a := l.AvailBw(); a != 25*unit.Mbps {
		t.Errorf("AvailBw = %v, want 25Mbps", a)
	}
}

func TestEquation6QueueGrowth(t *testing.T) {
	// Paper's canonical numbers: Ct=50, A=25, Ri=40 Mbps, L=1500B.
	// Δq = L(Ri−A)/Ri = 1500·15/40 = 562.5 → 562 bytes (truncated).
	l := link(t, 50*unit.Mbps, 25*unit.Mbps)
	got := l.QueueGrowthPerPacket(1500, 40*unit.Mbps)
	if got != 562 {
		t.Errorf("Δq = %d, want 562", got)
	}
	// At or below A: no growth.
	if l.QueueGrowthPerPacket(1500, 25*unit.Mbps) != 0 {
		t.Error("Δq at Ri=A should be 0")
	}
	if l.QueueGrowthPerPacket(1500, 10*unit.Mbps) != 0 {
		t.Error("Δq below A should be 0")
	}
}

func TestEquation7OWDIncrease(t *testing.T) {
	// Δd = Δq/Ct: 562B at 50Mbps ≈ 89.9µs.
	l := link(t, 50*unit.Mbps, 25*unit.Mbps)
	got := l.OWDIncreasePerPacket(1500, 40*unit.Mbps)
	want := unit.TxTime(562, 50*unit.Mbps)
	if got != want {
		t.Errorf("Δd = %v, want %v", got, want)
	}
	if l.OWDIncreasePerPacket(1500, 20*unit.Mbps) != 0 {
		t.Error("Δd below A should be 0")
	}
}

func TestEquation8OutputRate(t *testing.T) {
	l := link(t, 50*unit.Mbps, 25*unit.Mbps)
	// Ri = 40 > A: Ro = 40·50/(50+40−25) = 2000/65 ≈ 30.77.
	got := l.OutputRate(40 * unit.Mbps)
	want := 40.0 * 50 / 65
	if math.Abs(got.MbpsOf()-want) > 1e-9 {
		t.Errorf("Ro = %v, want %.4f Mbps", got, want)
	}
	// Ri <= A: Ro = Ri.
	if got := l.OutputRate(25 * unit.Mbps); got != 25*unit.Mbps {
		t.Errorf("Ro at Ri=A = %v, want Ri", got)
	}
}

func TestEquation9InvertsEquation8(t *testing.T) {
	// DirectEstimate must recover A exactly from fluid Ro whenever
	// Ri > A — the core soundness property of direct probing.
	f := func(cRaw, aRaw, riRaw uint16) bool {
		c := unit.Rate(float64(cRaw%900)+100) * unit.Mbps
		a := unit.Rate(float64(aRaw%90)+5) * unit.Mbps / 100 * c / unit.Rate(1) // fraction of c
		a = c * unit.Rate(float64(aRaw%90+5)/100)
		ri := a + unit.Rate(float64(riRaw%50)+1)*unit.Mbps
		if ri <= a || a >= c {
			return true // skip degenerate draws
		}
		l := Link{Capacity: c, Cross: c - a}
		ro := l.OutputRate(ri)
		got, err := DirectEstimate(c, ri, ro)
		if err != nil {
			return false
		}
		return math.Abs(float64(got-a))/float64(a) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectEstimateClampsNoise(t *testing.T) {
	// Ro marginally above Ri (timing noise) must not yield nonsense:
	// clamping to Ro=Ri makes Eq. (9) collapse to A = Ri, i.e. "the
	// avail-bw is at least the probing rate".
	got, err := DirectEstimate(50*unit.Mbps, 20*unit.Mbps, 21*unit.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20*unit.Mbps {
		t.Errorf("clamped estimate = %v, want Ri (A >= Ri signal)", got)
	}
}

func TestDirectEstimateErrors(t *testing.T) {
	if _, err := DirectEstimate(0, unit.Mbps, unit.Mbps); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := DirectEstimate(unit.Mbps, 0, unit.Mbps); err == nil {
		t.Error("zero ri accepted")
	}
	if _, err := DirectEstimate(unit.Mbps, unit.Mbps, 0); err == nil {
		t.Error("zero ro accepted")
	}
}

func TestEquation10Predicate(t *testing.T) {
	if !ExceedsAvailBw(40*unit.Mbps, 30*unit.Mbps) {
		t.Error("Ro < Ri must imply Ri > A")
	}
	if ExceedsAvailBw(20*unit.Mbps, 20*unit.Mbps) {
		t.Error("Ro == Ri must imply Ri <= A")
	}
}

func TestPathAvailBwIsMin(t *testing.T) {
	p, err := NewPath(
		Link{Capacity: 100 * unit.Mbps, Cross: 20 * unit.Mbps}, // A=80
		Link{Capacity: 50 * unit.Mbps, Cross: 30 * unit.Mbps},  // A=20 (tight)
		Link{Capacity: 155 * unit.Mbps, Cross: 55 * unit.Mbps}, // A=100
	)
	if err != nil {
		t.Fatal(err)
	}
	if a := p.AvailBw(); a != 20*unit.Mbps {
		t.Errorf("path avail-bw = %v, want 20Mbps", a)
	}
	if i := p.TightLink(); i != 1 {
		t.Errorf("tight link = %d, want 1", i)
	}
}

func TestNarrowVsTightDistinct(t *testing.T) {
	// The paper's capacity-estimation pitfall: narrow (min capacity) and
	// tight (min avail-bw) can be different links. Fast Ethernet narrow
	// link with little cross traffic vs an OC-3 with heavy load.
	p, err := NewPath(
		Link{Capacity: unit.FastEthernet, Cross: 10 * unit.Mbps}, // A=90, narrow
		Link{Capacity: unit.OC3, Cross: 100 * unit.Mbps},         // A≈55.5, tight
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.NarrowLink() != 0 {
		t.Errorf("narrow link = %d, want 0", p.NarrowLink())
	}
	if p.TightLink() != 1 {
		t.Errorf("tight link = %d, want 1", p.TightLink())
	}
	// Using the narrow-link capacity in Eq. (9) instead of the tight
	// link's biases the estimate — quantify that it does.
	ri := 70 * unit.Mbps
	ro := p.OutputRate(ri)
	withTight, err := DirectEstimate(unit.OC3, ri, ro)
	if err != nil {
		t.Fatal(err)
	}
	withNarrow, err := DirectEstimate(unit.FastEthernet, ri, ro)
	if err != nil {
		t.Fatal(err)
	}
	trueA := p.AvailBw()
	errTight := math.Abs(float64(withTight-trueA)) / float64(trueA)
	errNarrow := math.Abs(float64(withNarrow-trueA)) / float64(trueA)
	if errNarrow <= errTight {
		t.Errorf("narrow-capacity estimate should be worse: tight err=%.3f narrow err=%.3f", errTight, errNarrow)
	}
}

func TestMultipleTightLinksCompressMore(t *testing.T) {
	// Figure 4's fluid skeleton: at the same Ri > A, more equally tight
	// hops compress the stream more.
	mk := func(n int) *Path {
		links := make([]Link, n)
		for i := range links {
			links[i] = Link{Capacity: 50 * unit.Mbps, Cross: 25 * unit.Mbps}
		}
		p, err := NewPath(links...)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ri := 30 * unit.Mbps
	r1 := float64(mk(1).OutputRate(ri)) / float64(ri)
	r3 := float64(mk(3).OutputRate(ri)) / float64(ri)
	r5 := float64(mk(5).OutputRate(ri)) / float64(ri)
	if !(r1 > r3 && r3 > r5) {
		t.Errorf("Ro/Ri should fall with tight links: 1→%.4f 3→%.4f 5→%.4f", r1, r3, r5)
	}
	if r1 >= 1 {
		t.Errorf("single tight link at Ri>A must compress: %.4f", r1)
	}
}

func TestResponseCurveKneeAtAvailBw(t *testing.T) {
	// The fluid response curve is flat at 1.0 until Ri = A, then falls —
	// the knee TOPP locates.
	p, err := NewPath(Link{Capacity: 50 * unit.Mbps, Cross: 25 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	ris, ratios := p.ResponseCurve(5*unit.Mbps, 45*unit.Mbps, 41)
	for i, ri := range ris {
		if ri <= 25*unit.Mbps {
			if math.Abs(ratios[i]-1) > 1e-12 {
				t.Errorf("Ri=%v: ratio %g, want 1 (below A)", ri, ratios[i])
			}
		} else if ratios[i] >= 1 {
			t.Errorf("Ri=%v: ratio %g, want < 1 (above A)", ri, ratios[i])
		}
	}
	// And the ratio must be strictly decreasing beyond the knee.
	prev := 1.0
	for i, ri := range ris {
		if ri > 25*unit.Mbps {
			if ratios[i] >= prev {
				t.Errorf("response curve not decreasing at %v", ri)
			}
			prev = ratios[i]
		}
	}
}

func TestResponseCurveDegenerateInput(t *testing.T) {
	p, _ := NewPath(Link{Capacity: 50 * unit.Mbps, Cross: 0})
	if ris, _ := p.ResponseCurve(10*unit.Mbps, 5*unit.Mbps, 10); ris != nil {
		t.Error("inverted range should return nil")
	}
	if ris, _ := p.ResponseCurve(5*unit.Mbps, 10*unit.Mbps, 1); ris != nil {
		t.Error("single step should return nil")
	}
}

func TestPathValidation(t *testing.T) {
	if _, err := NewPath(); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := NewPath(Link{Capacity: 0}); err == nil {
		t.Error("invalid hop accepted")
	}
}

func TestOWDSlopeMatchesRateCompression(t *testing.T) {
	// Consistency of Eq. (7) and Eq. (8): o = i + Δd implies
	// Ro = L/(L/Ri + Δd). Verify the two formulations agree.
	l := link(t, 50*unit.Mbps, 25*unit.Mbps)
	const L = 1500
	for _, ri := range []unit.Rate{26 * unit.Mbps, 30 * unit.Mbps, 40 * unit.Mbps, 49 * unit.Mbps} {
		gapIn := unit.GapFor(L, ri)
		// Use the exact (float) Δd rather than the truncated byte count.
		a := l.AvailBw()
		ddSec := float64(L) * 8 / float64(l.Capacity) * float64(ri-a) / float64(ri)
		gapOut := gapIn + time.Duration(ddSec*1e9)
		roFromOWD := unit.RateOf(L, gapOut)
		roFromEq8 := l.OutputRate(ri)
		if math.Abs(float64(roFromOWD-roFromEq8))/float64(roFromEq8) > 1e-3 {
			t.Errorf("Ri=%v: Ro via OWD %v != Ro via Eq8 %v", ri, roFromOWD, roFromEq8)
		}
	}
}
