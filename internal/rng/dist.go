package rng

import (
	"fmt"
	"sort"
)

// SizeDist is a distribution over packet sizes in bytes. The paper's
// "packet pairs vs packet trains" fallacy hinges on cross traffic having
// a strongly modal size distribution, so sizes get a first-class type.
type SizeDist interface {
	// Sample draws one packet size in bytes.
	Sample(r *Rand) int
	// Mean returns the expected packet size in bytes.
	Mean() float64
}

// FixedSize is a degenerate distribution: every packet has the same size.
type FixedSize int

// Sample implements SizeDist.
func (f FixedSize) Sample(*Rand) int { return int(f) }

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return float64(f) }

// ModalSizes is a discrete mixture of packet sizes, e.g. the classic
// Internet mix of 40/576/1500-byte packets.
type ModalSizes struct {
	sizes []int
	cum   []float64 // cumulative probabilities, last element == 1
	mean  float64
}

// Mode is one component of a modal packet-size mixture.
type Mode struct {
	Size int     // bytes
	Prob float64 // probability mass
}

// NewModalSizes builds a modal size distribution. Probabilities must be
// positive and are normalized to sum to one.
func NewModalSizes(modes ...Mode) (*ModalSizes, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("rng: modal size distribution needs at least one mode")
	}
	var total float64
	for _, m := range modes {
		if m.Size <= 0 {
			return nil, fmt.Errorf("rng: modal size %d must be positive", m.Size)
		}
		if m.Prob <= 0 {
			return nil, fmt.Errorf("rng: modal probability %g must be positive", m.Prob)
		}
		total += m.Prob
	}
	d := &ModalSizes{
		sizes: make([]int, len(modes)),
		cum:   make([]float64, len(modes)),
	}
	acc := 0.0
	for i, m := range modes {
		p := m.Prob / total
		acc += p
		d.sizes[i] = m.Size
		d.cum[i] = acc
		d.mean += p * float64(m.Size)
	}
	d.cum[len(d.cum)-1] = 1 // kill rounding residue
	return d, nil
}

// MustModalSizes is NewModalSizes that panics on error, for package-level
// variables describing well-known mixes.
func MustModalSizes(modes ...Mode) *ModalSizes {
	d, err := NewModalSizes(modes...)
	if err != nil {
		panic(err)
	}
	return d
}

// InternetMix is the canonical trimodal Internet packet-size mixture the
// measurement literature reports: ~50% minimum-size, ~25% 576-byte
// (pre-1500 path-MTU default), ~25% full-size packets.
var InternetMix = MustModalSizes(
	Mode{Size: 40, Prob: 0.5},
	Mode{Size: 576, Prob: 0.25},
	Mode{Size: 1500, Prob: 0.25},
)

// Sample implements SizeDist.
func (d *ModalSizes) Sample(r *Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.sizes) {
		i = len(d.sizes) - 1
	}
	return d.sizes[i]
}

// Mean implements SizeDist.
func (d *ModalSizes) Mean() float64 { return d.mean }
