// Package rng provides the deterministic random-number machinery used by
// every stochastic component of the reproduction: a xoshiro256** PRNG
// seeded through splitmix64, and the distributions the paper's workloads
// need (uniform, exponential, Pareto, normal, and modal packet-size
// mixtures).
//
// Every simulator component takes an explicit *Rand. Experiments derive
// independent sub-streams with Split, so adding one more traffic source
// to a scenario never perturbs the random numbers seen by another — a
// property the per-figure regression tests rely on.
package rng

import (
	"fmt"
	"math"
)

// Rand is a deterministic pseudo-random generator (xoshiro256**).
// It is not safe for concurrent use; the simulator is single-threaded by
// design, and parallel experiments must Split first.
type Rand struct {
	s        [4]uint64
	spare    float64 // cached second variate of the polar method
	hasSpare bool
}

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is the recommended seeder for the xoshiro family.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start at the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// fnv64 hashes a label with FNV-64a; Split and Derive share it so the
// two derivation schemes can never diverge on label handling.
func fnv64(label string) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}

// Split derives an independent generator from r, keyed by label so that
// sub-stream assignment is stable and readable at call sites. Distinct
// labels yield distinct streams; the parent stream advances by one draw.
func (r *Rand) Split(label string) *Rand {
	return New(r.Uint64() ^ fnv64(label))
}

// Derive returns the generator for one named trial stream as a pure
// function of (seed, label): no generator state is read or advanced, so
// concurrent trials can each derive their own stream without sharing a
// parent. It is the parallel-safe counterpart of Split — runner jobs
// use labels like "fig1/tau0/trial17" built from the experiment seed
// and the trial index, which is what makes the experiments bit-identical
// at every worker count.
func Derive(seed uint64, label string) *Rand {
	st := seed
	return New(splitmix64(&st) ^ fnv64(label))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn with non-positive n=%d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponential variate with the given mean. This is the
// interarrival distribution of the Poisson cross-traffic model.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("rng: Exp with non-positive mean %g", mean))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto variate with shape alpha and minimum xm.
// The paper's ON-OFF sources use alpha = 1.5 (infinite variance, finite
// mean), the canonical heavy tail for self-similar traffic.
func (r *Rand) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic(fmt.Sprintf("rng: Pareto with alpha=%g xm=%g", alpha, xm))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto variate truncated to [xm, max]. Bounding
// keeps single-run simulation time finite while preserving burstiness at
// the scales the experiments average over.
func (r *Rand) BoundedPareto(alpha, xm, max float64) float64 {
	v := r.Pareto(alpha, xm)
	if v > max {
		return max
	}
	return v
}

// Norm returns a standard normal variate via the Marsaglia polar method.
func (r *Rand) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
