package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("cross-traffic")
	b := root.Split("probing")
	// The two sub-streams must not be identical.
	diff := false
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("split sub-streams with different labels are identical")
	}
}

func TestSplitStableAcrossRuns(t *testing.T) {
	x := New(7).Split("x").Uint64()
	y := New(7).Split("x").Uint64()
	if x != y {
		t.Error("Split not deterministic for identical seed+label")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestExpMeanAndMemorylessness(t *testing.T) {
	r := New(11)
	const mean = 3.5
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / float64(n)
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("exponential mean = %g, want ~%g", got, mean)
	}
}

func TestExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestParetoMean(t *testing.T) {
	// E[X] = alpha*xm/(alpha-1) for alpha > 1. With alpha=2.5, xm=1 → 5/3.
	r := New(13)
	const alpha, xm = 2.5, 1.0
	want := alpha * xm / (alpha - 1)
	var sum float64
	n := 400000
	for i := 0; i < n; i++ {
		sum += r.Pareto(alpha, xm)
	}
	got := sum / float64(n)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("Pareto mean = %g, want ~%g", got, want)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.5, 2.0); v < 2.0 {
			t.Fatalf("Pareto variate %g below minimum 2.0", v)
		}
	}
}

func TestBoundedParetoCap(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(1.1, 1.0, 50.0)
		if v < 1.0 || v > 50.0 {
			t.Fatalf("BoundedPareto variate %g outside [1, 50]", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// With alpha=1.5 the tail P(X > x) = x^-1.5; check the empirical tail
	// at x=10 is near 10^-1.5 ≈ 0.0316.
	r := New(23)
	n := 300000
	count := 0
	for i := 0; i < n; i++ {
		if r.Pareto(1.5, 1.0) > 10 {
			count++
		}
	}
	got := float64(count) / float64(n)
	want := math.Pow(10, -1.5)
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("P(X>10) = %g, want ~%g", got, want)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(29)
	n := 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestIntnRangeProperty(t *testing.T) {
	r := New(31)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestUniformRange(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %g out of range", v)
		}
	}
}

func TestDeriveIsPureAndDistinct(t *testing.T) {
	// Pure: same (seed, label) always yields the same stream, with no
	// hidden parent state — the property parallel trials rely on.
	a := Derive(7, "fig1/tau0/trial3")
	b := Derive(7, "fig1/tau0/trial3")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive is not a pure function of (seed, label)")
		}
	}
	// Distinct labels and distinct seeds yield distinct streams.
	base := Derive(7, "trial0").Uint64()
	if Derive(7, "trial1").Uint64() == base {
		t.Error("distinct labels collided on the first draw")
	}
	if Derive(8, "trial0").Uint64() == base {
		t.Error("distinct seeds collided on the first draw")
	}
}

func TestDeriveStreamsLookIndependent(t *testing.T) {
	// Means of many derived streams should concentrate around 0.5: a
	// coarse screen against correlated per-trial streams.
	var grand float64
	for trial := 0; trial < 200; trial++ {
		r := Derive(1, "t"+string(rune('a'+trial%26))+string(rune('0'+trial/26)))
		var m float64
		for i := 0; i < 100; i++ {
			m += r.Float64()
		}
		grand += m / 100
	}
	grand /= 200
	if grand < 0.47 || grand > 0.53 {
		t.Errorf("grand mean of derived streams = %.3f, want ~0.5", grand)
	}
}
