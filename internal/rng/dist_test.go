package rng

import (
	"math"
	"testing"
)

func TestFixedSize(t *testing.T) {
	d := FixedSize(1500)
	if d.Sample(New(1)) != 1500 {
		t.Error("FixedSize sample != 1500")
	}
	if d.Mean() != 1500 {
		t.Error("FixedSize mean != 1500")
	}
}

func TestModalSizesMean(t *testing.T) {
	d := MustModalSizes(Mode{Size: 40, Prob: 0.5}, Mode{Size: 1500, Prob: 0.5})
	if got, want := d.Mean(), 770.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %g, want %g", got, want)
	}
}

func TestModalSizesEmpiricalFrequencies(t *testing.T) {
	d := MustModalSizes(
		Mode{Size: 40, Prob: 0.5},
		Mode{Size: 576, Prob: 0.25},
		Mode{Size: 1500, Prob: 0.25},
	)
	r := New(101)
	counts := map[int]int{}
	n := 200000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	checks := []struct {
		size int
		want float64
	}{{40, 0.5}, {576, 0.25}, {1500, 0.25}}
	for _, c := range checks {
		got := float64(counts[c.size]) / float64(n)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("P(size=%d) = %g, want ~%g", c.size, got, c.want)
		}
	}
}

func TestModalSizesNormalization(t *testing.T) {
	// Unnormalized weights must behave like probabilities.
	d := MustModalSizes(Mode{Size: 100, Prob: 3}, Mode{Size: 200, Prob: 1})
	if got, want := d.Mean(), 125.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %g, want %g", got, want)
	}
}

func TestModalSizesErrors(t *testing.T) {
	if _, err := NewModalSizes(); err == nil {
		t.Error("empty mode list should error")
	}
	if _, err := NewModalSizes(Mode{Size: 0, Prob: 1}); err == nil {
		t.Error("zero size should error")
	}
	if _, err := NewModalSizes(Mode{Size: 100, Prob: 0}); err == nil {
		t.Error("zero probability should error")
	}
	if _, err := NewModalSizes(Mode{Size: 100, Prob: -1}); err == nil {
		t.Error("negative probability should error")
	}
}

func TestInternetMixSamplesOnlyKnownSizes(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		switch InternetMix.Sample(r) {
		case 40, 576, 1500:
		default:
			t.Fatal("InternetMix produced an unknown size")
		}
	}
}
