package pathchirp

import (
	"context"
	"testing"

	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing rates accepted")
	}
	if _, err := New(Config{Lo: 40 * unit.Mbps, Hi: 5 * unit.Mbps}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := New(Config{Lo: 5 * unit.Mbps, Hi: 45 * unit.Mbps, PacketsPerChirp: 2}); err == nil {
		t.Error("2-packet chirp accepted")
	}
	if _, err := New(Config{Lo: 5 * unit.Mbps, Hi: 45 * unit.Mbps, Gamma: 0.8}); err == nil {
		t.Error("gamma < 1 accepted")
	}
	if _, err := New(Config{Lo: 5 * unit.Mbps, Hi: 45 * unit.Mbps, Chirps: -1}); err == nil {
		t.Error("negative chirps accepted")
	}
}

func TestEstimateCBR(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{Lo: 5 * unit.Mbps, Hi: 48 * unit.Mbps, PacketsPerChirp: 25, Chirps: 16})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	// Chirps probe each rate with a single pair, so the per-chirp
	// estimates are coarse; require the right neighborhood.
	if got < 15 || got > 35 {
		t.Errorf("pathchirp estimate = %.2f Mbps, want within [15, 35]", got)
	}
	if rep.Streams != 16 || rep.Packets != 16*25 {
		t.Errorf("effort accounting wrong: %+v", rep)
	}
}

func TestEstimatePoissonPlausible(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(21)})
	e, err := New(Config{Lo: 5 * unit.Mbps, Hi: 48 * unit.Mbps, PacketsPerChirp: 25, Chirps: 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if got <= 5 || got >= 48 {
		t.Errorf("pathchirp estimate = %.2f Mbps stuck at a sweep boundary", got)
	}
}

func TestIdlePathEstimatesTopRate(t *testing.T) {
	// No cross traffic: chirps never durably queue, so the estimate must
	// sit at the top of the chirp range.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossRate: 1 * unit.Mbps, CrossSize: 64})
	e, err := New(Config{Lo: 5 * unit.Mbps, Hi: 40 * unit.Mbps, PacketsPerChirp: 20, Chirps: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Point.MbpsOf() < 30 {
		t.Errorf("nearly idle path: estimate = %.2f Mbps, want near 40", rep.Point.MbpsOf())
	}
}

func TestChirpEfficiency(t *testing.T) {
	// The paper's classification point: one chirp of N packets probes
	// N−1 rates. Verify the probing budget reflects that efficiency —
	// pathChirp covers the sweep with far fewer packets than a
	// per-rate-train design would need.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{Lo: 5 * unit.Mbps, Hi: 48 * unit.Mbps, PacketsPerChirp: 30, Chirps: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	ratesProbed := rep.Streams * 29
	if rep.Packets >= ratesProbed*10 {
		t.Errorf("chirps should probe ~1 rate per packet: %d packets for %d rates", rep.Packets, ratesProbed)
	}
}

func TestMedianOf(t *testing.T) {
	if m := medianOf([]float64{3, 1, 2}); m != 2 {
		t.Errorf("medianOf odd = %g, want 2", m)
	}
	if m := medianOf([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("medianOf even = %g, want 2.5", m)
	}
	if m := medianOf(nil); m != 0 {
		t.Errorf("medianOf empty = %g, want 0", m)
	}
}
