package pathchirp

import (
	"context"
	"testing"

	"abw/internal/stats"
	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing rates accepted")
	}
	if _, err := New(Config{Lo: 40 * unit.Mbps, Hi: 5 * unit.Mbps}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := New(Config{Lo: 5 * unit.Mbps, Hi: 45 * unit.Mbps, PacketsPerChirp: 2}); err == nil {
		t.Error("2-packet chirp accepted")
	}
	if _, err := New(Config{Lo: 5 * unit.Mbps, Hi: 45 * unit.Mbps, Gamma: 0.8}); err == nil {
		t.Error("gamma < 1 accepted")
	}
	if _, err := New(Config{Lo: 5 * unit.Mbps, Hi: 45 * unit.Mbps, Chirps: -1}); err == nil {
		t.Error("negative chirps accepted")
	}
}

func TestEstimateCBR(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{Lo: 5 * unit.Mbps, Hi: 48 * unit.Mbps, PacketsPerChirp: 25, Chirps: 16})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	// Chirps probe each rate with a single pair, so the per-chirp
	// estimates are coarse; require the right neighborhood.
	if got < 15 || got > 35 {
		t.Errorf("pathchirp estimate = %.2f Mbps, want within [15, 35]", got)
	}
	if rep.Streams != 16 || rep.Packets != 16*25 {
		t.Errorf("effort accounting wrong: %+v", rep)
	}
}

func TestEstimatePoissonPlausible(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(21)})
	e, err := New(Config{Lo: 5 * unit.Mbps, Hi: 48 * unit.Mbps, PacketsPerChirp: 25, Chirps: 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if got <= 5 || got >= 48 {
		t.Errorf("pathchirp estimate = %.2f Mbps stuck at a sweep boundary", got)
	}
}

func TestIdlePathEstimatesTopRate(t *testing.T) {
	// No cross traffic: chirps never durably queue, so the estimate must
	// sit at the top of the chirp range.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossRate: 1 * unit.Mbps, CrossSize: 64})
	e, err := New(Config{Lo: 5 * unit.Mbps, Hi: 40 * unit.Mbps, PacketsPerChirp: 20, Chirps: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Point.MbpsOf() < 30 {
		t.Errorf("nearly idle path: estimate = %.2f Mbps, want near 40", rep.Point.MbpsOf())
	}
}

func TestChirpEfficiency(t *testing.T) {
	// The paper's classification point: one chirp of N packets probes
	// N−1 rates. Verify the probing budget reflects that efficiency —
	// pathChirp covers the sweep with far fewer packets than a
	// per-rate-train design would need.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{Lo: 5 * unit.Mbps, Hi: 48 * unit.Mbps, PacketsPerChirp: 30, Chirps: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	ratesProbed := rep.Streams * 29
	if rep.Packets >= ratesProbed*10 {
		t.Errorf("chirps should probe ~1 rate per packet: %d packets for %d rates", rep.Packets, ratesProbed)
	}
}

// legacyMedianOf is the private median pathChirp carried before the
// shared feature layer; kept here as the equivalence reference.
func legacyMedianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	if len(tmp)%2 == 1 {
		return tmp[len(tmp)/2]
	}
	return (tmp[len(tmp)/2-1] + tmp[len(tmp)/2]) / 2
}

// TestMedianEquivalence pins the migration onto the canonical
// stats.Median: for every non-empty input (pathChirp never takes the
// median of fewer than two steps) the shared median is bit-identical to
// the legacy private copy.
func TestMedianEquivalence(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
	}{
		{"odd", []float64{3, 1, 2}},
		{"even", []float64{4, 1, 3, 2}},
		{"two", []float64{7e-6, 3e-6}},
		{"ties", []float64{1, 1, 1, 1, 1}},
		{"negatives", []float64{-2, 5, -9, 0.5}},
		{"typicalSteps", []float64{1.2e-5, 0, 3.4e-6, 9.9e-4, 2.1e-5, 0, 8e-7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := legacyMedianOf(tc.xs)
			if got := stats.Median(tc.xs); got != want {
				t.Errorf("stats.Median = %g, legacy medianOf = %g", got, want)
			}
		})
	}
}
