// Package pathchirp implements pathChirp (Ribeiro, Riedi, Baraniuk,
// Navratil & Cottrell, PAM 2003): iterative probing with exponentially
// spaced "chirps". A single chirp of N packets probes N−1 rates at once —
// the efficiency the paper's classification notes — because every
// consecutive packet pair has a different instantaneous rate, growing
// geometrically from Lo to Hi.
//
// Per chirp, the queuing-delay signature is analyzed for excursions:
// segments where the delay rises and later drains. The onset of the final
// excursion that never drains marks the rate at which the chirp began to
// exceed the avail-bw; that pair's rate is the chirp's estimate.
// pathChirp reports a single estimate averaged over a sequence of chirps.
package pathchirp

import (
	"context"
	"fmt"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/stats"
	"abw/internal/unit"
)

// Config tunes the estimator.
type Config struct {
	// Lo and Hi bound the rates probed within each chirp (required).
	Lo, Hi unit.Rate
	// PacketsPerChirp is N (default 15).
	PacketsPerChirp int
	// Chirps is the number of chirps averaged (default 12).
	Chirps int
	// PktSize is the probe packet size (default 1000 B, pathChirp's
	// default probe size).
	PktSize unit.Bytes
	// Gamma is the nominal spread factor between consecutive gaps
	// (default 1.2); the chirp builder refits it to span [Lo, Hi]
	// exactly.
	Gamma float64
	// JitterFactor scales the excursion-detection threshold relative to
	// the chirp's median queuing delay step (default 1.0).
	JitterFactor float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Lo <= 0 || c.Hi <= c.Lo {
		return c, fmt.Errorf("pathchirp: need 0 < Lo < Hi (got %v, %v)", c.Lo, c.Hi)
	}
	if c.PacketsPerChirp == 0 {
		c.PacketsPerChirp = 15
	}
	if c.PacketsPerChirp < 3 {
		return c, fmt.Errorf("pathchirp: chirp needs at least 3 packets")
	}
	if c.Chirps == 0 {
		c.Chirps = 12
	}
	if c.Chirps < 1 {
		return c, fmt.Errorf("pathchirp: need at least one chirp")
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.Gamma == 0 {
		c.Gamma = 1.2
	}
	if c.Gamma <= 1 {
		return c, fmt.Errorf("pathchirp: gamma %g must exceed 1", c.Gamma)
	}
	if c.JitterFactor == 0 {
		c.JitterFactor = 1.0
	}
	if c.JitterFactor < 0 {
		return c, fmt.Errorf("pathchirp: negative jitter factor")
	}
	return c, nil
}

// Estimator is the pathChirp iterative prober.
type Estimator struct {
	cfg Config
}

// New validates the configuration and returns the estimator.
func New(cfg Config) (*Estimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: c}, nil
}

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "pathchirp" }

// Estimate implements core.Estimator.
func (e *Estimator) Estimate(ctx context.Context, t core.Transport) (*core.Report, error) {
	c := e.cfg
	start := t.Now()
	spec, err := probe.Chirp(c.Lo, c.Hi, c.PktSize, c.PacketsPerChirp, c.Gamma)
	if err != nil {
		return nil, fmt.Errorf("pathchirp: %w", err)
	}
	var perChirp []float64
	var streams, packets int
	var bytes unit.Bytes
	for i := 0; i < c.Chirps; i++ {
		rec, err := core.Probe(ctx, t, spec)
		if err != nil {
			return nil, fmt.Errorf("pathchirp: chirp %d: %w", i, err)
		}
		streams++
		packets += spec.Count
		bytes += spec.Bytes()
		if est, ok := e.analyzeChirp(rec); ok {
			perChirp = append(perChirp, float64(est))
		}
	}
	if len(perChirp) == 0 {
		return nil, fmt.Errorf("pathchirp: no analyzable chirps out of %d", c.Chirps)
	}
	min, max := stats.MinMax(perChirp)
	return &core.Report{
		Tool:       e.Name(),
		Point:      unit.Rate(stats.Mean(perChirp)),
		Low:        unit.Rate(min),
		High:       unit.Rate(max),
		Streams:    streams,
		Packets:    packets,
		ProbeBytes: bytes,
		Elapsed:    t.Now() - start,
	}, nil
}

// analyzeChirp locates the onset of the terminal queuing-delay excursion
// and returns the instantaneous rate at that pair.
func (e *Estimator) analyzeChirp(rec *probe.Record) (unit.Rate, bool) {
	if rec.LossCount() > 0 {
		// A lost packet inside a chirp breaks the pair sequence; treat
		// the chirp as saturated at the first loss.
		for k := 0; k < len(rec.Recv); k++ {
			if rec.Recv[k] == probe.Lost {
				if k == 0 {
					return e.cfg.Lo, true
				}
				return rec.Spec.RateAtPair(k - 1), true
			}
		}
	}
	q := rec.QueueDelaysSeconds()
	if len(q) < 3 {
		return 0, false
	}
	// Jitter threshold: median absolute delay step.
	thresh := stats.Median(probe.AbsDeltas(q)) * e.cfg.JitterFactor
	if thresh == 0 {
		thresh = 1e-7 // 100ns floor: virtually noise-free transport
	}
	// Walk backwards: find the last index where the delay was at the
	// floor (≤ thresh above minimum). Everything after it is the
	// terminal excursion.
	onset := len(q) - 1
	for i := len(q) - 1; i >= 0; i-- {
		if q[i] <= thresh {
			onset = i
			break
		}
		onset = i
	}
	last := len(q) - 1
	if q[last] <= 2*thresh {
		// The chirp drained by its end: it never durably exceeded the
		// avail-bw, so the estimate is the top chirp rate.
		return rec.Spec.RateAtPair(rec.Spec.Count - 2), true
	}
	if onset >= rec.Spec.Count-1 {
		onset = rec.Spec.Count - 2
	}
	r := rec.Spec.RateAtPair(onset)
	if r <= 0 {
		return 0, false
	}
	return r, true
}

var _ core.Estimator = (*Estimator)(nil)
