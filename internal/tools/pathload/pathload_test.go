package pathload

import (
	"context"
	"testing"

	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing rates accepted")
	}
	if _, err := New(Config{MinRate: 45 * unit.Mbps, MaxRate: 5 * unit.Mbps}); err == nil {
		t.Error("inverted bracket accepted")
	}
	if _, err := New(Config{MinRate: 5 * unit.Mbps, MaxRate: 45 * unit.Mbps, StreamLen: 4}); err == nil {
		t.Error("too-short stream accepted")
	}
	if _, err := New(Config{MinRate: 5 * unit.Mbps, MaxRate: 45 * unit.Mbps,
		IncreasingFraction: 0.2, NonIncreasingFraction: 0.8}); err == nil {
		t.Error("inverted fractions accepted")
	}
}

func TestEstimateCBRConvergesToAvailBw(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{
		MinRate: 2 * unit.Mbps, MaxRate: 48 * unit.Mbps,
		Resolution: 2 * unit.Mbps, StreamsPerRate: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	// CBR: the avail-bw process is constant at 25 Mbps; the final range
	// must contain it and the point estimate must be close.
	if rep.Low > 25*unit.Mbps || rep.High < 25*unit.Mbps {
		t.Errorf("range [%v, %v] does not contain 25Mbps", rep.Low, rep.High)
	}
	got := rep.Point.MbpsOf()
	if got < 20 || got > 30 {
		t.Errorf("point estimate = %.2f Mbps, want within [20, 30]", got)
	}
}

func TestEstimateReportsVariationRange(t *testing.T) {
	// With bursty traffic Pathload should return a nontrivial range
	// (Low < High) — the Figure 6 fallacy is that people expect a point.
	sc := toolstest.New(toolstest.Options{Model: toolstest.ParetoOnOff, Seed: toolstest.Seed(9)})
	e, err := New(Config{
		MinRate: 2 * unit.Mbps, MaxRate: 48 * unit.Mbps,
		Resolution: 1 * unit.Mbps, StreamsPerRate: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Low >= rep.High {
		t.Errorf("degenerate range [%v, %v] under bursty traffic", rep.Low, rep.High)
	}
	if rep.Low < 0 || rep.High > 50*unit.Mbps {
		t.Errorf("range outside physical bounds: [%v, %v]", rep.Low, rep.High)
	}
	// The true mean avail-bw (25 Mbps) should fall inside or near the
	// reported variation range.
	if rep.High < 15*unit.Mbps || rep.Low > 35*unit.Mbps {
		t.Errorf("range [%v, %v] implausibly far from A=25Mbps", rep.Low, rep.High)
	}
}

func TestEstimateUsesNoCapacity(t *testing.T) {
	// Defining property of iterative probing: no C_t input needed, no
	// capacity estimate produced.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR})
	e, err := New(Config{MinRate: 2 * unit.Mbps, MaxRate: 48 * unit.Mbps, StreamsPerRate: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Capacity != 0 {
		t.Error("pathload should not report a capacity estimate")
	}
	if rep.Samples != nil {
		t.Error("iterative probing must not claim avail-bw samples")
	}
}

func TestEffortAccounting(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR})
	e, err := New(Config{MinRate: 2 * unit.Mbps, MaxRate: 48 * unit.Mbps, StreamsPerRate: 2, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Streams == 0 || rep.Packets != rep.Streams*100 {
		t.Errorf("effort accounting wrong: %d streams, %d packets", rep.Streams, rep.Packets)
	}
	if rep.ProbeBytes != unit.Bytes(rep.Packets)*1500 {
		t.Errorf("probe bytes = %d, want %d", rep.ProbeBytes, rep.Packets*1500)
	}
	if rep.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}
