package pathload

import (
	"testing"
	"time"

	"abw/internal/probe"
)

// legacyOWDSeconds is the OWD conversion Pathload carried inline before
// the shared feature layer, kept verbatim as the equivalence reference.
func legacyOWDSeconds(rec *probe.Record) []float64 {
	owds := rec.OWDs()
	vals := make([]float64, len(owds))
	for j, d := range owds {
		vals[j] = d.Seconds()
	}
	return vals
}

// TestOWDSecondsEquivalence pins the trend-test input: the shared
// OWDSeconds is bit-identical to the inline conversion, including which
// packets a lossy stream contributes.
func TestOWDSecondsEquivalence(t *testing.T) {
	cases := []struct {
		name string
		recv []float64 // ms; negative = lost
	}{
		{"clean", []float64{5, 5.4, 5.9, 6.6, 7.4}},
		{"lossy", []float64{5, -1, 5.9, -1, 7.4, 7.5}},
		{"allLost", []float64{-1, -1, -1}},
		{"jittery", []float64{5, 4.9, 5.3, 5.1, 5.8, 5.2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := probe.NewRecord(probe.StreamSpec{PktSize: 1500, Count: len(tc.recv)})
			for i := range tc.recv {
				r.Sent[i] = time.Duration(i) * time.Millisecond
				if tc.recv[i] < 0 {
					r.Recv[i] = probe.Lost
				} else {
					r.Recv[i] = time.Duration(tc.recv[i] * float64(time.Millisecond))
				}
			}
			want := legacyOWDSeconds(r)
			got := r.OWDSeconds()
			if len(got) != len(want) {
				t.Fatalf("OWDSeconds len = %d, legacy %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("OWDSeconds[%d] = %g, legacy %g", i, got[i], want[i])
				}
			}
		})
	}
}
