package pathload_test

import (
	"context"
	"testing"

	"abw/internal/stats"
	"abw/internal/tools/pathload"
	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

// BenchmarkAblationTrendThresholds contrasts Pathload with default and
// aggressive PCT/PDT thresholds, exercising the trend-analysis knob.
func BenchmarkAblationTrendThresholds(b *testing.B) {
	run := func(b *testing.B, cfg stats.TrendConfig) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(uint64(i + 1))})
			est, err := pathload.New(pathload.Config{
				MinRate: 2 * unit.Mbps, MaxRate: 48 * unit.Mbps,
				StreamsPerRate: 3, Trend: cfg,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := est.Estimate(context.Background(), sc.Transport)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.Point.MbpsOf(), "estimate-mbps")
		}
	}
	b.Run("default", func(b *testing.B) { run(b, stats.TrendConfig{}) })
	b.Run("aggressive", func(b *testing.B) {
		run(b, stats.TrendConfig{PCTIncrease: 0.55, PDTIncrease: 0.4, PCTNoIncrease: 0.45, PDTNoIncrease: 0.3})
	})
}
