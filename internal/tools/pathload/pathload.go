// Package pathload implements Pathload (Jain & Dovrolis, ToN 2003), the
// iterative prober written by the paper's authors and the reference point
// for several of its clarifications:
//
//   - the probing rate moves in a binary-search pattern rather than
//     linearly (contrast with TOPP);
//   - the Ri-vs-A comparison comes from statistical analysis of the
//     one-way-delay trend (PCT/PDT), not from the Ro/Ri ratio — which is
//     exactly the paper's Figure 5 fallacy;
//   - the output is a variation range [R_L, R_H] of the avail-bw process
//     at the probing timescale, not a single number — the paper's
//     Figure 6 fallacy — and that range is not a confidence interval.
package pathload

import (
	"context"
	"fmt"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/stats"
	"abw/internal/unit"
)

// Config tunes the estimator.
type Config struct {
	// MinRate/MaxRate bracket the initial binary search (required).
	MinRate, MaxRate unit.Rate
	// Resolution ω: the search stops when High−Low < ω (default
	// (MaxRate−MinRate)/20).
	Resolution unit.Rate
	// StreamLen is packets per stream (default 100, Pathload's K).
	StreamLen int
	// StreamsPerRate is the fleet size N per probing rate (default 6).
	StreamsPerRate int
	// PktSize is the probe packet size (default 1500 B... Pathload
	// adapts L to the rate; this reproduction keeps it fixed).
	PktSize unit.Bytes
	// Trend overrides the PCT/PDT thresholds (zero = Pathload defaults).
	Trend stats.TrendConfig
	// MaxRounds bounds the binary search (default 24).
	MaxRounds int
	// IncreasingFraction and NonIncreasingFraction classify a fleet: if
	// at least IncreasingFraction of streams show an increasing trend
	// the rate is above A; if at most NonIncreasingFraction do, it is
	// below; otherwise the rate lies inside the grey (variation) region.
	// Defaults 0.7 and 0.3.
	IncreasingFraction, NonIncreasingFraction float64
}

func (c Config) withDefaults() (Config, error) {
	if c.MinRate <= 0 || c.MaxRate <= c.MinRate {
		return c, fmt.Errorf("pathload: need 0 < MinRate < MaxRate (got %v, %v)", c.MinRate, c.MaxRate)
	}
	if c.Resolution == 0 {
		c.Resolution = (c.MaxRate - c.MinRate) / 20
	}
	if c.Resolution <= 0 {
		return c, fmt.Errorf("pathload: resolution %v must be positive", c.Resolution)
	}
	if c.StreamLen == 0 {
		c.StreamLen = 100
	}
	if c.StreamLen < 10 {
		return c, fmt.Errorf("pathload: stream length %d too short for trend analysis", c.StreamLen)
	}
	if c.StreamsPerRate == 0 {
		c.StreamsPerRate = 6
	}
	if c.StreamsPerRate < 1 {
		return c, fmt.Errorf("pathload: fleet size must be positive")
	}
	if c.PktSize == 0 {
		c.PktSize = 1500
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 24
	}
	if c.MaxRounds < 1 {
		return c, fmt.Errorf("pathload: MaxRounds must be positive")
	}
	if c.IncreasingFraction == 0 {
		c.IncreasingFraction = 0.7
	}
	if c.NonIncreasingFraction == 0 {
		c.NonIncreasingFraction = 0.3
	}
	if c.IncreasingFraction <= c.NonIncreasingFraction {
		return c, fmt.Errorf("pathload: fraction thresholds inverted")
	}
	return c, nil
}

// Estimator is the Pathload iterative prober.
type Estimator struct {
	cfg Config
}

// New validates the configuration and returns the estimator.
func New(cfg Config) (*Estimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: c}, nil
}

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "pathload" }

// verdict classifies a fleet of streams at one rate.
type verdict int

const (
	above verdict = iota // rate > avail-bw region
	below                // rate < avail-bw region
	grey                 // rate inside the variation range
)

// Estimate implements core.Estimator: binary search on the probing rate,
// classifying each rate by the fraction of its fleet showing increasing
// OWD trends, and reporting the bracketed variation range.
func (e *Estimator) Estimate(ctx context.Context, t core.Transport) (*core.Report, error) {
	c := e.cfg
	start := t.Now()
	lo, hi := c.MinRate, c.MaxRate
	// greyLo/greyHi track the widest rate span classified as grey: the
	// estimated variation range of the avail-bw process at timescale τ.
	var greyLo, greyHi unit.Rate
	var streams, packets int
	var bytes unit.Bytes

	classify := func(rate unit.Rate) (verdict, error) {
		increasing := 0
		usable := 0
		for i := 0; i < c.StreamsPerRate; i++ {
			spec := probe.Periodic(rate, c.PktSize, c.StreamLen)
			rec, err := core.Probe(ctx, t, spec)
			if err != nil {
				return grey, err
			}
			streams++
			packets += spec.Count
			bytes += spec.Bytes()
			vals := rec.OWDSeconds()
			if len(vals) < c.StreamLen/2 {
				continue // too lossy to analyze
			}
			usable++
			if stats.OWDTrend(vals, c.Trend).Verdict == stats.TrendIncreasing {
				increasing++
			}
		}
		if usable == 0 {
			// Total loss at this rate: the path cannot carry it.
			return above, nil
		}
		frac := float64(increasing) / float64(usable)
		switch {
		case frac >= c.IncreasingFraction:
			return above, nil
		case frac <= c.NonIncreasingFraction:
			return below, nil
		default:
			return grey, nil
		}
	}

	for round := 0; round < c.MaxRounds && hi-lo > c.Resolution; round++ {
		mid := (lo + hi) / 2
		v, err := classify(mid)
		if err != nil {
			return nil, fmt.Errorf("pathload: %w", err)
		}
		switch v {
		case above:
			hi = mid
		case below:
			lo = mid
		case grey:
			if greyLo == 0 || mid < greyLo {
				greyLo = mid
			}
			if mid > greyHi {
				greyHi = mid
			}
			// Pathload narrows both ends toward the grey region: probe
			// the halves on each side next by shrinking the bracket
			// around the grey rate.
			if mid-lo > hi-mid {
				lo = lo + (mid-lo)/2
			} else {
				hi = hi - (hi-mid)/2
			}
		}
	}
	low, high := lo, hi
	if greyLo > 0 && greyLo < low {
		low = greyLo
	}
	if greyHi > high {
		high = greyHi
	}
	return &core.Report{
		Tool:       e.Name(),
		Point:      (low + high) / 2,
		Low:        low,
		High:       high,
		Streams:    streams,
		Packets:    packets,
		ProbeBytes: bytes,
		Elapsed:    t.Now() - start,
	}, nil
}

var _ core.Estimator = (*Estimator)(nil)
