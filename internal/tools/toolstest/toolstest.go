// Package toolstest is a thin shim over internal/scenario for
// estimation-tool tests: the paper's canonical single-hop setting
// (50 Mbps tight link, 25 Mbps cross traffic) and its homogeneous
// multi-hop variant, each exposing the ground-truth avail-bw for
// assertions. Heterogeneous topologies are expressed directly as
// scenario.Spec; this package only keeps the historical one-struct
// options for the common homogeneous case.
package toolstest

import (
	"time"

	"abw/internal/scenario"
	"abw/internal/unit"
)

// Scenario is a compiled scenario: a transport with its ground truth.
type Scenario = scenario.Compiled

// Traffic selects the cross-traffic model.
type Traffic = scenario.Kind

// Cross-traffic models for scenarios.
const (
	CBR         = scenario.CBR
	Poisson     = scenario.Poisson
	ParetoOnOff = scenario.ParetoOnOff
)

// Seed returns a pointer to v for Options.Seed: the pointer form makes
// seed 0 a valid explicit seed (nil means the default seed 1).
func Seed(v uint64) *uint64 { return scenario.Seed(v) }

// Options configures a homogeneous scenario; zero values take the
// paper's canonical parameters.
type Options struct {
	Capacity  unit.Rate     // default 50 Mbps
	CrossRate unit.Rate     // default 25 Mbps
	Model     Traffic       // default CBR
	CrossSize int           // cross packet size, default 1500 (CBR uses it too)
	Hops      int           // default 1
	Horizon   time.Duration // how long cross traffic is scheduled, default 120 s
	Seed      *uint64       // default 1; Seed(0) is a valid explicit seed
}

// New builds a scenario: Hops identical tight links, each carrying
// one-hop-persistent cross traffic of the chosen model at CrossRate.
func New(opts Options) *Scenario {
	o := opts
	if o.Capacity == 0 {
		o.Capacity = 50 * unit.Mbps
	}
	if o.CrossRate == 0 {
		o.CrossRate = 25 * unit.Mbps
	}
	if o.CrossSize == 0 {
		o.CrossSize = 1500
	}
	if o.Hops == 0 {
		o.Hops = 1
	}
	spec := scenario.Spec{Horizon: o.Horizon, Seed: o.Seed}
	for h := 0; h < o.Hops; h++ {
		spec.Hops = append(spec.Hops, scenario.Hop{
			Capacity: o.Capacity,
			Traffic: []scenario.Source{{
				Kind:    o.Model,
				Rate:    o.CrossRate,
				PktSize: unit.Bytes(o.CrossSize),
			}},
		})
	}
	return scenario.MustCompile(spec)
}
