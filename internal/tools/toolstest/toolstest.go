// Package toolstest provides shared scenario builders for estimation-tool
// tests: the paper's canonical single-hop setting (50 Mbps tight link,
// 25 Mbps cross traffic) and its multi-hop variant, each exposing the
// ground-truth avail-bw for assertions.
package toolstest

import (
	"time"

	"abw/internal/core"
	"abw/internal/crosstraffic"
	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/unit"
)

// Scenario bundles a transport with its ground truth.
type Scenario struct {
	Transport *core.SimTransport
	Sim       *sim.Sim
	Path      *sim.Path
	Recorders []*sim.Recorder
	// TrueAvailBw is the configured long-run avail-bw of the tight link.
	TrueAvailBw unit.Rate
	// Capacity is the tight-link capacity.
	Capacity unit.Rate
}

// Traffic selects the cross-traffic model.
type Traffic int

// Cross-traffic models for scenarios.
const (
	CBR Traffic = iota
	Poisson
	ParetoOnOff
)

// Options configures a scenario; zero values take the paper's canonical
// parameters.
type Options struct {
	Capacity  unit.Rate     // default 50 Mbps
	CrossRate unit.Rate     // default 25 Mbps
	Model     Traffic       // default CBR
	CrossSize int           // cross packet size, default 1500 (CBR uses it too)
	Hops      int           // default 1
	Horizon   time.Duration // how long cross traffic is scheduled, default 120 s
	Seed      uint64        // default 1
}

func (o Options) withDefaults() Options {
	if o.Capacity == 0 {
		o.Capacity = 50 * unit.Mbps
	}
	if o.CrossRate == 0 {
		o.CrossRate = 25 * unit.Mbps
	}
	if o.CrossSize == 0 {
		o.CrossSize = 1500
	}
	if o.Hops == 0 {
		o.Hops = 1
	}
	if o.Horizon == 0 {
		o.Horizon = 120 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// New builds a scenario: Hops identical tight links, each carrying
// one-hop-persistent cross traffic of the chosen model at CrossRate.
func New(opts Options) *Scenario {
	o := opts.withDefaults()
	s := sim.New()
	root := rng.New(o.Seed)
	links := make([]*sim.Link, o.Hops)
	recs := make([]*sim.Recorder, o.Hops)
	for i := range links {
		links[i] = s.NewLink("hop", o.Capacity, time.Millisecond)
		recs[i] = sim.NewRecorder(o.Capacity)
		links[i].Attach(recs[i])
	}
	path := sim.MustPath(links...)
	crosstraffic.OnePersistentPerHop(s, path, 0, o.Horizon, func(hop int) crosstraffic.Model {
		cfg := crosstraffic.Stream{
			Rate:  o.CrossRate,
			Sizes: rng.FixedSize(o.CrossSize),
			Flow:  1000 + hop,
		}
		r := root.Split("hop" + string(rune('0'+hop)))
		switch o.Model {
		case Poisson:
			return crosstraffic.Poisson(cfg, r)
		case ParetoOnOff:
			return crosstraffic.ParetoOnOff(crosstraffic.ParetoOnOffConfig{Stream: cfg, OffCap: 200}, r)
		default:
			return crosstraffic.CBR(cfg)
		}
	})
	return &Scenario{
		Transport:   core.NewSimTransport(s, path),
		Sim:         s,
		Path:        path,
		Recorders:   recs,
		TrueAvailBw: o.Capacity - o.CrossRate,
		Capacity:    o.Capacity,
	}
}
