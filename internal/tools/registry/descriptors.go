package registry

import (
	"abw/internal/core"
	"abw/internal/tools/bfind"
	"abw/internal/tools/delphi"
	"abw/internal/tools/igi"
	"abw/internal/tools/learned"
	"abw/internal/tools/pathchirp"
	"abw/internal/tools/pathload"
	"abw/internal/tools/spruce"
	"abw/internal/tools/topp"
	"abw/internal/unit"
)

// This file is the one place each tool package is imported and its
// Descriptor registered: the tool's name, what it needs, its published
// defaults, and the mapping from the uniform Params onto its Config.
// Registration order is the paper's presentation order, which the
// compare experiment and the CLI catalogs inherit.
func init() {
	Register(Descriptor{
		Name:             "pathload",
		Summary:          "iterative probing, OWD-trend binary search, variation range (Jain & Dovrolis)",
		NeedsRateBracket: true,
		Defaults:         Params{PktSize: 1500, StreamLen: 100, Repeat: 6, MaxRounds: 24},
		Build: func(p Params) (core.Estimator, error) {
			lo, hi, err := bracket(p, 1, 25, 49, 50)
			if err != nil {
				return nil, err
			}
			return pathload.New(pathload.Config{
				MinRate: lo, MaxRate: hi,
				PktSize: p.PktSize, StreamLen: p.StreamLen,
				StreamsPerRate: p.Repeat, MaxRounds: p.MaxRounds,
			})
		},
	})
	Register(Descriptor{
		Name:             "topp",
		Summary:          "iterative probing, linear rate sweep with capacity regression (Melander et al.)",
		NeedsRateBracket: true,
		Defaults:         Params{PktSize: 1500, Repeat: 40},
		Build: func(p Params) (core.Estimator, error) {
			lo, hi, err := bracket(p, 1, 10, 9, 10)
			if err != nil {
				return nil, err
			}
			return topp.New(topp.Config{
				MinRate: lo, MaxRate: hi,
				PktSize: p.PktSize, PairsPerRate: p.Repeat,
			})
		},
	})
	Register(Descriptor{
		Name:             "pathchirp",
		Aliases:          []string{"chirp"},
		Summary:          "iterative probing, exponentially spaced chirps (Ribeiro et al.)",
		NeedsRateBracket: true,
		Defaults:         Params{PktSize: 1000, StreamLen: 15, Repeat: 12},
		Build: func(p Params) (core.Estimator, error) {
			lo, hi, err := bracket(p, 1, 10, 24, 25)
			if err != nil {
				return nil, err
			}
			return pathchirp.New(pathchirp.Config{
				Lo: lo, Hi: hi,
				PktSize: p.PktSize, PacketsPerChirp: p.StreamLen, Chirps: p.Repeat,
			})
		},
	})
	Register(Descriptor{
		Name:    "ptr",
		Summary: "iterative probing, train rate at the turning point (Hu & Steenkiste)",
		// PTR starts its gap search from RateHi (or the capacity):
		// declaring the bracket keeps MissingParams honest — without
		// it a caller providing nothing would pass descriptor
		// validation only to fail in the tool's own Config check.
		NeedsRateBracket: true,
		Defaults:         Params{PktSize: 750, StreamLen: 60, MaxRounds: 30},
		Build: func(p Params) (core.Estimator, error) {
			// The initial (fastest) rate is the bracket top when given,
			// else the capacity; igi's own validation rejects neither.
			return igi.New(igi.Config{
				InitRate: firstPositive(p.RateHi, p.Capacity),
				PktSize:  p.PktSize, TrainLen: p.StreamLen, MaxIterations: p.MaxRounds,
			})
		},
	})
	Register(Descriptor{
		Name:          "igi",
		Summary:       "hybrid probing, gap model at the turning point; needs C_t (Hu & Steenkiste)",
		NeedsCapacity: true,
		Defaults:      Params{PktSize: 750, StreamLen: 60, MaxRounds: 30},
		Build: func(p Params) (core.Estimator, error) {
			// InitRate deliberately stays unset: IGI's gap model wants
			// the search to start at the capacity (back-to-back gap),
			// which igi.Config defaults to.
			return igi.New(igi.Config{
				Mode: igi.IGI, Capacity: p.Capacity,
				PktSize: p.PktSize, TrainLen: p.StreamLen, MaxIterations: p.MaxRounds,
			})
		},
	})
	Register(Descriptor{
		Name:          "delphi",
		Summary:       "direct probing, one avail-bw sample per train; needs C_t (Ribeiro et al.)",
		NeedsCapacity: true,
		Defaults:      Params{PktSize: 1500, StreamLen: 100, Repeat: 20},
		Build: func(p Params) (core.Estimator, error) {
			return delphi.New(delphi.Config{
				Capacity: p.Capacity,
				PktSize:  p.PktSize, TrainLen: p.StreamLen, Trains: p.Repeat,
			})
		},
	})
	Register(Descriptor{
		Name:          "spruce",
		Summary:       "direct probing, Poisson-spaced packet pairs; needs C_t (Strauss et al.)",
		NeedsCapacity: true,
		NeedsRand:     true,
		Defaults:      Params{PktSize: 1500, Repeat: 100},
		Build: func(p Params) (core.Estimator, error) {
			return spruce.New(spruce.Config{
				Capacity: p.Capacity, Rand: p.Rand,
				PktSize: p.PktSize, Pairs: p.Repeat,
			})
		},
	})
	Register(Descriptor{
		Name:             "bfind",
		Summary:          "sender-only UDP ramp with per-hop RTT watch; simulator only (Akella et al.)",
		NeedsRateBracket: true,
		SimOnly:          true,
		Defaults:         Params{PktSize: 1000},
		Build: func(p Params) (core.Estimator, error) {
			lo, hi, err := bracket(p, 1, 50, 24, 25)
			if err != nil {
				return nil, err
			}
			return bfind.New(bfind.Config{
				StartRate: lo, MaxRate: hi,
				LoadPktSize: p.PktSize,
			})
		},
	})
	Register(Descriptor{
		Name:          "learned",
		Aliases:       []string{"ml", "ridge-knn"},
		Summary:       "learned estimator: ridge + k-NN over the shared probe features; needs C_t (trained on the catalog)",
		NeedsCapacity: true,
		// The probe plan lives in the weight file; Params overrides map
		// onto it (StreamLen → packets per stream, Repeat → streams per
		// rate fraction) so budget-fair Quick runs stay possible.
		Defaults: Params{},
		Build: func(p Params) (core.Estimator, error) {
			return learned.New(learned.Config{
				Capacity: p.Capacity,
				PktSize:  p.PktSize, StreamLen: p.StreamLen,
				StreamsPerFrac: p.Repeat,
			})
		},
	})
}

// firstPositive returns the first positive rate.
func firstPositive(rates ...unit.Rate) unit.Rate {
	for _, r := range rates {
		if r > 0 {
			return r
		}
	}
	return 0
}
