// Package registry is the single catalog of the estimation techniques
// this module implements. Every tool is described by a Descriptor —
// name, aliases, what inputs it requires, its canonical defaults, and a
// builder over the shared Params struct — and every consumer
// (cmd/abwprobe, the compare experiment, the abw facade, the examples)
// constructs tools through this package. Before the registry, tool
// construction was a switch statement copy-pasted across three places;
// now adding a tool or changing its parameterization happens here once.
package registry

import (
	"context"
	"fmt"

	"abw/internal/core"
	"abw/internal/rng"
	"abw/internal/unit"
)

// Params is the uniform parameter set every tool is built from. Zero
// fields take the tool's published defaults (see Descriptor.Defaults);
// tools that can derive a missing field from another one do so — the
// rate-bracket tools derive their bracket from Capacity, PTR derives
// its initial rate from RateHi or Capacity.
type Params struct {
	// RateLo and RateHi bracket the probed rates for iterative tools
	// (Pathload's binary search, TOPP's sweep, pathChirp's chirp span,
	// BFind's ramp ceiling).
	RateLo, RateHi unit.Rate
	// Capacity is the tight-link capacity C_t, required by the
	// direct-probing tools (Delphi, Spruce, IGI) — with the paper's
	// pitfall that capacity tools measure the narrow link, not the
	// tight one (core.Misconceptions[4]).
	Capacity unit.Rate
	// PktSize is the probe packet size.
	PktSize unit.Bytes
	// StreamLen is the packets per probing stream (train length, chirp
	// length, Pathload's K).
	StreamLen int
	// Repeat is the tool's repetition knob: streams per rate, trains,
	// chirps, or pairs averaged.
	Repeat int
	// MaxRounds caps the probing-rate search for iterative tools.
	MaxRounds int
	// Rand drives the tool's own randomness (Spruce's Poisson pair
	// spacing). Required only where Descriptor.NeedsRand says so.
	Rand *rng.Rand
	// Budget caps the probing effort, enforced below the tool by a
	// core.BudgetTransport so cross-tool comparisons are budget-fair by
	// construction. Zero means unlimited.
	Budget core.Budget
	// Observer, if set, receives per-stream progress events.
	Observer core.Observer
}

// merged returns p with zero fields filled from the descriptor's
// defaults. Budget, Rand and Observer are run wiring, not tool shape,
// and are never defaulted.
func (p Params) merged(def Params) Params {
	if p.RateLo == 0 {
		p.RateLo = def.RateLo
	}
	if p.RateHi == 0 {
		p.RateHi = def.RateHi
	}
	if p.Capacity == 0 {
		p.Capacity = def.Capacity
	}
	if p.PktSize == 0 {
		p.PktSize = def.PktSize
	}
	if p.StreamLen == 0 {
		p.StreamLen = def.StreamLen
	}
	if p.Repeat == 0 {
		p.Repeat = def.Repeat
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = def.MaxRounds
	}
	return p
}

// Descriptor describes one registered estimation technique: everything
// a caller needs to present the tool (name, summary, requirements) and
// to build it from Params.
type Descriptor struct {
	// Name is the canonical tool name ("pathload", "spruce", ...).
	Name string
	// Aliases are alternative lookup names.
	Aliases []string
	// Summary is a one-line description for CLI catalogs.
	Summary string
	// NeedsCapacity marks direct-probing tools: Params.Capacity is
	// required ("spruce needs -capacity").
	NeedsCapacity bool
	// NeedsRateBracket marks tools probing a rate range: Params.RateLo
	// and RateHi are consumed, and required unless derivable from
	// Capacity.
	NeedsRateBracket bool
	// NeedsRand marks tools that require Params.Rand.
	NeedsRand bool
	// SimOnly marks tools that must run on a *core.SimTransport (BFind
	// observes per-hop RTTs, which no end-to-end transport offers).
	// The Budget and Observer decorators cannot hang below such a
	// tool, so Estimate refuses Params that request them.
	SimOnly bool
	// Defaults are the tool's published default Params; Build merges
	// them under the caller's Params before constructing.
	Defaults Params
	// Build constructs the estimator from merged, validated Params.
	Build func(Params) (core.Estimator, error)
}

// descriptors holds the registered tools in registration order — the
// canonical presentation order used by catalogs and the compare
// experiment.
var descriptors []Descriptor

// Register adds a tool to the catalog. It panics on a nil builder or a
// name/alias collision: registration happens at init time from this
// package only, so a collision is a programming error.
func Register(d Descriptor) {
	if d.Name == "" || d.Build == nil {
		panic("registry: descriptor needs a name and a builder")
	}
	for _, name := range append([]string{d.Name}, d.Aliases...) {
		if _, ok := Lookup(name); ok {
			panic(fmt.Sprintf("registry: duplicate tool name %q", name))
		}
	}
	descriptors = append(descriptors, d)
}

// Tools returns the registered descriptors in registration order.
func Tools() []Descriptor {
	out := make([]Descriptor, len(descriptors))
	copy(out, descriptors)
	return out
}

// Names returns the canonical tool names in registration order.
func Names() []string {
	names := make([]string, len(descriptors))
	for i, d := range descriptors {
		names[i] = d.Name
	}
	return names
}

// Lookup finds a descriptor by canonical name or alias.
func Lookup(name string) (Descriptor, bool) {
	for _, d := range descriptors {
		if d.Name == name {
			return d, true
		}
		for _, a := range d.Aliases {
			if a == name {
				return d, true
			}
		}
	}
	return Descriptor{}, false
}

// MissingParams lists the required Params the caller has not provided,
// as field names ("Capacity", "Rand", "RateLo/RateHi"). CLIs derive
// their per-tool flag requirements from this instead of hand-writing
// them.
func (d Descriptor) MissingParams(p Params) []string {
	p = p.merged(d.Defaults)
	var missing []string
	if d.NeedsCapacity && p.Capacity <= 0 {
		missing = append(missing, "Capacity")
	}
	if d.NeedsRateBracket && p.Capacity <= 0 && (p.RateLo <= 0 || p.RateHi <= p.RateLo) {
		missing = append(missing, "RateLo/RateHi")
	}
	if d.NeedsRand && p.Rand == nil {
		missing = append(missing, "Rand")
	}
	return missing
}

// ResolvedParams returns p with zero fields filled from the
// descriptor's defaults — the parameters a run built from p would
// actually use. Callers that need to reason about a run before it
// happens (the monitor's admission-cost projection) read these instead
// of re-deriving default tables.
func (d Descriptor) ResolvedParams(p Params) Params {
	return p.merged(d.Defaults)
}

// build validates requirements and runs the descriptor's builder on
// the defaults-merged Params; Build and Estimate share it so lookup
// and merge each happen once.
func (d Descriptor) build(p Params) (core.Estimator, error) {
	if missing := d.MissingParams(p); len(missing) != 0 {
		return nil, fmt.Errorf("registry: %s needs %v", d.Name, missing)
	}
	return d.Build(p.merged(d.Defaults))
}

// Build constructs the named tool from Params: lookup, defaults merge,
// requirement validation, then the descriptor's builder (which also
// runs the tool's own Config validation).
func Build(name string, p Params) (core.Estimator, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown tool %q (have %v)", name, Names())
	}
	return d.build(p)
}

// Estimate is the one-call path from a tool name to a report: build the
// tool, decorate the transport with the Params' observer and budget,
// and run it under ctx. It is what the abw facade and cmd/abwprobe
// call.
func Estimate(ctx context.Context, name string, p Params, t core.Transport) (*core.Report, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown tool %q (have %v)", name, Names())
	}
	est, err := d.build(p)
	if err != nil {
		return nil, err
	}
	if d.SimOnly {
		// SimOnly tools drive the simulator directly, below the
		// Transport seam the decorators hang on; silently dropping a
		// requested budget or observer would be a budget-unfair run
		// masquerading as a capped one, so refuse instead.
		if !p.Budget.IsZero() || p.Observer != nil {
			return nil, fmt.Errorf("registry: %s drives the simulator directly; Budget and Observer cannot be enforced on it", d.Name)
		}
	} else {
		// Order matters: the observer sees only streams the budget
		// admitted.
		t = core.WithBudget(core.WithObserver(t, p.Observer), p.Budget)
	}
	return est.Estimate(ctx, t)
}

// bracket returns the probing-rate bracket: the caller's if set,
// otherwise derived from the capacity as loNum/loDen and hiNum/hiDen of
// C_t — the canonical brackets the compare experiment has always used.
func bracket(p Params, loNum, loDen, hiNum, hiDen int64) (lo, hi unit.Rate, err error) {
	lo, hi = p.RateLo, p.RateHi
	if lo == 0 && p.Capacity > 0 {
		lo = p.Capacity * unit.Rate(loNum) / unit.Rate(loDen)
	}
	if hi == 0 && p.Capacity > 0 {
		hi = p.Capacity * unit.Rate(hiNum) / unit.Rate(hiDen)
	}
	if lo <= 0 || hi <= lo {
		return 0, 0, fmt.Errorf("registry: need a rate bracket (RateLo < RateHi) or a Capacity to derive one (got %v, %v)", lo, hi)
	}
	return lo, hi, nil
}
