package registry_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"abw/internal/core"
	"abw/internal/rng"
	"abw/internal/tools/registry"
	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

// params returns a Params set every registered tool can be built from
// on the canonical toolstest scenario, sized down so the whole catalog
// runs in seconds.
func params(sc *toolstest.Scenario) registry.Params {
	return registry.Params{
		Capacity:  sc.Capacity,
		Rand:      rng.New(7),
		StreamLen: 20,
		Repeat:    3,
		MaxRounds: 6,
	}
}

// TestRoundTripAllTools constructs every registered tool from the
// uniform Params and runs it end to end against a toolstest scenario:
// the registry's reason to exist is that this loop needs no per-tool
// code.
func TestRoundTripAllTools(t *testing.T) {
	tools := registry.Tools()
	if len(tools) < 8 {
		t.Fatalf("registry has %d tools, want at least 8", len(tools))
	}
	for _, d := range tools {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			sc := toolstest.New(toolstest.Options{Model: toolstest.CBR})
			rep, err := registry.Estimate(context.Background(), d.Name, params(sc), sc.Transport)
			if err != nil {
				t.Fatalf("%s: %v", d.Name, err)
			}
			if rep.Tool != d.Name {
				t.Errorf("report names %q, want %q", rep.Tool, d.Name)
			}
			if !rep.Point.IsValid() || rep.Point > 2*sc.Capacity {
				t.Errorf("%s: implausible estimate %v on a %v link", d.Name, rep.Point, sc.Capacity)
			}
			if rep.Packets <= 0 || rep.ProbeBytes <= 0 {
				t.Errorf("%s: probing effort not accounted: %+v", d.Name, rep)
			}
		})
	}
}

// TestAliasesAndLookup covers name resolution: canonical names,
// aliases, and the unknown-tool error listing the catalog.
func TestAliasesAndLookup(t *testing.T) {
	if _, ok := registry.Lookup("pathchirp"); !ok {
		t.Error("pathchirp not registered")
	}
	d, ok := registry.Lookup("chirp")
	if !ok || d.Name != "pathchirp" {
		t.Errorf("alias chirp resolved to %q, %v", d.Name, ok)
	}
	if _, ok := registry.Lookup("nosuch"); ok {
		t.Error("phantom tool found")
	}
	if _, err := registry.Build("nosuch", registry.Params{}); err == nil {
		t.Error("Build(nosuch) should fail")
	}
}

// TestMissingParams checks that requirement validation is descriptor-
// driven: direct-probing tools without a capacity, spruce without a
// random source, bracket tools with nothing to derive a bracket from.
func TestMissingParams(t *testing.T) {
	cases := []struct {
		tool string
		p    registry.Params
	}{
		{"spruce", registry.Params{Capacity: 50 * unit.Mbps}}, // no Rand
		{"delphi", registry.Params{RateLo: 1, RateHi: 2}},     // no Capacity
		{"igi", registry.Params{}},                            // no Capacity
		{"pathload", registry.Params{}},                       // no bracket, no Capacity
		{"topp", registry.Params{RateLo: 10 * unit.Mbps}},     // half a bracket
		{"ptr", registry.Params{}},                            // nothing to derive InitRate from
		{"bfind", registry.Params{}},                          // no ramp ceiling
	}
	for _, c := range cases {
		if _, err := registry.Build(c.tool, c.p); err == nil {
			t.Errorf("%s: Build succeeded with missing requirements %+v", c.tool, c.p)
		}
		// The descriptor must predict the failure: MissingParams is
		// what CLIs derive their requirement errors from, so any
		// Params that fail Build for a missing input must be flagged
		// here too, before a socket is ever dialed.
		d, ok := registry.Lookup(c.tool)
		if !ok {
			t.Fatalf("%s not registered", c.tool)
		}
		if missing := d.MissingParams(c.p); len(missing) == 0 {
			t.Errorf("%s: MissingParams(%+v) = none, but Build fails", c.tool, c.p)
		}
	}
	// The CLI-facing requirement list must name the missing field.
	d, _ := registry.Lookup("spruce")
	missing := d.MissingParams(registry.Params{})
	found := false
	for _, m := range missing {
		if m == "Capacity" {
			found = true
		}
	}
	if !found {
		t.Errorf("spruce MissingParams = %v, want Capacity listed", missing)
	}
}

// TestDefaultsMerge checks that zero Params fields take the
// descriptor's published defaults while set fields win.
func TestDefaultsMerge(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR})
	// Default delphi sends Trains=20 streams; Repeat=2 must override.
	rep, err := registry.Estimate(context.Background(), "delphi",
		registry.Params{Capacity: sc.Capacity, Repeat: 2}, sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Streams != 2 {
		t.Errorf("delphi ran %d trains, want the overridden 2", rep.Streams)
	}
}

// TestCancellationMidRun asserts the tentpole's contract: cancelling
// the context mid-run stops the estimator at the next stream boundary
// with a context error, promptly rather than after the full budget.
func TestCancellationMidRun(t *testing.T) {
	for _, tool := range []string{"pathload", "delphi", "spruce", "topp"} {
		tool := tool
		t.Run(tool, func(t *testing.T) {
			sc := toolstest.New(toolstest.Options{Model: toolstest.CBR})
			ctx, cancel := context.WithCancel(context.Background())
			var streams atomic.Int64
			p := params(sc)
			if tool == "spruce" {
				// Spruce batches 25 pairs per stream; ask for enough
				// pairs that the run needs several streams.
				p.Repeat = 100
			}
			p.Observer = func(ev core.StreamEvent) {
				if streams.Add(1) == 2 {
					cancel() // mid-run: two streams resolved, more to come
				}
			}
			rep, err := registry.Estimate(ctx, tool, p, sc.Transport)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v (report %v), want context.Canceled", err, rep)
			}
			if got := streams.Load(); got != 2 {
				t.Errorf("resolved %d streams after cancel, want exactly 2 (stream-boundary stop)", got)
			}
		})
	}
}

// TestCancelledBeforeStart asserts no stream is sent under an already-
// cancelled context.
func TestCancelledBeforeStart(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var streams atomic.Int64
	p := params(sc)
	p.Observer = func(core.StreamEvent) { streams.Add(1) }
	if _, err := registry.Estimate(ctx, "pathload", p, sc.Transport); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if streams.Load() != 0 {
		t.Errorf("%d streams sent under a cancelled context", streams.Load())
	}
}

// TestBudgetEnforced asserts the uniform budget is enforced below the
// tool: a stream cap smaller than the tool's appetite fails the run
// with ErrBudget.
func TestBudgetEnforced(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR})
	p := params(sc)
	p.Budget = core.Budget{MaxStreams: 2}
	var streams atomic.Int64
	p.Observer = func(core.StreamEvent) { streams.Add(1) }
	_, err := registry.Estimate(context.Background(), "delphi", p, sc.Transport)
	if !errors.Is(err, core.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if streams.Load() != 2 {
		t.Errorf("observer saw %d streams, want the budgeted 2", streams.Load())
	}
}

// TestSimOnlyRefusesDecorators asserts a SimOnly tool errors on a
// requested Budget or Observer instead of silently running uncapped:
// the transport decorators hang below core.Transport, which BFind
// bypasses.
func TestSimOnlyRefusesDecorators(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR})
	p := params(sc)
	p.Budget = core.Budget{MaxPackets: 100}
	if _, err := registry.Estimate(context.Background(), "bfind", p, sc.Transport); err == nil {
		t.Error("bfind accepted a Budget it cannot enforce")
	}
	p = params(sc)
	p.Observer = func(core.StreamEvent) {}
	if _, err := registry.Estimate(context.Background(), "bfind", p, sc.Transport); err == nil {
		t.Error("bfind accepted an Observer it cannot serve")
	}
}

// TestCompareOrderStable pins the catalog order the compare experiment
// and the CLI inherit: registration order, end-to-end tools first.
func TestCompareOrderStable(t *testing.T) {
	want := []string{"pathload", "topp", "pathchirp", "ptr", "igi", "delphi", "spruce", "bfind", "learned"}
	got := registry.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}
