package topp

import (
	"testing"
	"time"

	"abw/internal/probe"
)

// legacyRoundGaps is the summed-gap loop TOPP carried before the shared
// feature layer, kept verbatim as the equivalence reference.
func legacyRoundGaps(rec *probe.Record, pairs int) (gin, gout time.Duration) {
	for k := 0; k < pairs; k++ {
		g := rec.Gap(2 * k)
		if g == probe.Lost || g <= 0 {
			continue
		}
		gin += rec.Sent[2*k+1] - rec.Sent[2*k]
		gout += g
	}
	return gin, gout
}

func roundRecord(sentMs, recvMs []float64) *probe.Record {
	r := probe.NewRecord(probe.StreamSpec{PktSize: 1500, Count: len(recvMs)})
	for i := range recvMs {
		r.Sent[i] = time.Duration(sentMs[i] * float64(time.Millisecond))
		if recvMs[i] < 0 {
			r.Recv[i] = probe.Lost
		} else {
			r.Recv[i] = time.Duration(recvMs[i] * float64(time.Millisecond))
		}
	}
	return r
}

// TestRoundGapEquivalence pins the migration onto PairGaps: the summed
// input/output gaps of a probing round are bit-identical to the private
// loop, including which pairs each convention discards.
func TestRoundGapEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		sentMs []float64
		recvMs []float64 // negative = lost
	}{
		{
			"clean",
			[]float64{0, 0.3, 3, 3.3, 6, 6.3, 9, 9.3},
			[]float64{5, 5.4, 8, 8.35, 11, 11.6, 14, 14.3},
		},
		{
			"lossAndReorder",
			[]float64{0, 0.3, 3, 3.3, 6, 6.3, 9, 9.3},
			[]float64{5, -1, 8, 7.9, 11, 11, 14, 14.3},
		},
		{
			"allUnmeasurable",
			[]float64{0, 0.3, 3, 3.3},
			[]float64{-1, 5.4, 8, 8},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := roundRecord(tc.sentMs, tc.recvMs)
			pairs := len(tc.recvMs) / 2
			wantIn, wantOut := legacyRoundGaps(rec, pairs)
			var gotIn, gotOut time.Duration
			for k := 0; k < pairs; k++ {
				pin, pout, ok := rec.PairGaps(2 * k)
				if !ok {
					continue
				}
				gotIn += pin
				gotOut += pout
			}
			if gotIn != wantIn || gotOut != wantOut {
				t.Errorf("summed gaps = (%v, %v), legacy (%v, %v)", gotIn, gotOut, wantIn, wantOut)
			}
		})
	}
}
