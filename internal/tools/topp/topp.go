// Package topp implements TOPP — Trains Of Packet Pairs (Melander,
// Björkman & Gunningberg, Global Internet 2000) — the canonical iterative
// prober. The offered rate increases linearly across probing rounds; each
// round sends many packet pairs at that rate and measures the average
// ratio Ri/Ro. In the fluid model,
//
//	Ri/Ro = Ri/C_t + (C_t − A)/C_t    for Ri > A,
//	Ri/Ro = 1                          for Ri ≤ A,
//
// so TOPP both locates the knee (the avail-bw) and recovers the tight
// link capacity from the slope of the overloaded segment — the feature
// the paper highlights in its classification.
package topp

import (
	"context"
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/stats"
	"abw/internal/unit"
)

// Config tunes the estimator.
type Config struct {
	// MinRate/MaxRate bound the linear sweep (required, Min < Max).
	MinRate, MaxRate unit.Rate
	// Step is the rate increment per round (default (Max−Min)/15).
	Step unit.Rate
	// PairsPerRate is the number of packet pairs per probing round
	// (default 40).
	PairsPerRate int
	// PktSize is the probe packet size (default 1500 B).
	PktSize unit.Bytes
}

func (c Config) withDefaults() (Config, error) {
	if c.MinRate <= 0 || c.MaxRate <= c.MinRate {
		return c, fmt.Errorf("topp: need 0 < MinRate < MaxRate (got %v, %v)", c.MinRate, c.MaxRate)
	}
	if c.Step == 0 {
		c.Step = (c.MaxRate - c.MinRate) / 15
	}
	if c.Step <= 0 {
		return c, fmt.Errorf("topp: step %v must be positive", c.Step)
	}
	if c.PairsPerRate == 0 {
		c.PairsPerRate = 40
	}
	if c.PairsPerRate < 1 {
		return c, fmt.Errorf("topp: pairs per rate must be positive")
	}
	if c.PktSize == 0 {
		c.PktSize = 1500
	}
	return c, nil
}

// Estimator is the TOPP iterative prober.
type Estimator struct {
	cfg Config
}

// New validates the configuration and returns the estimator.
func New(cfg Config) (*Estimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: c}, nil
}

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "topp" }

// roundResult is one probing round of the sweep.
type roundResult struct {
	ri    unit.Rate
	ratio float64 // mean Ri/Ro over the round's pairs
}

// Estimate implements core.Estimator: linear sweep, then knee location
// by a piecewise fit (flat below the knee, linear above — the shape
// the fluid model predicts) plus segment regression for the capacity
// estimate. The piecewise fit is what makes the tool usable under real
// cross traffic, where individual pair ratios are heavily quantized by
// discrete cross packets (the paper's fourth misconception describes
// exactly this noise).
func (e *Estimator) Estimate(ctx context.Context, t core.Transport) (*core.Report, error) {
	c := e.cfg
	start := t.Now()
	var rounds []roundResult
	var streams, packets int
	var bytes unit.Bytes
	for ri := c.MinRate; ri <= c.MaxRate+c.Step/2; ri += c.Step {
		// A round is a train of pairs: pairs back-to-back internally at
		// ri, separated widely enough not to build standing queues.
		spec, err := pairTrain(ri, c.PktSize, c.PairsPerRate)
		if err != nil {
			return nil, fmt.Errorf("topp: %w", err)
		}
		rec, err := core.Probe(ctx, t, spec)
		if err != nil {
			return nil, fmt.Errorf("topp: %w", err)
		}
		streams++
		packets += spec.Count
		bytes += spec.Bytes()
		// Round ratio from summed gaps: Σgout/Σgin is far less noisy
		// than the mean of per-pair ratios under quantized cross
		// traffic.
		var gin, gout time.Duration
		for k := 0; k < c.PairsPerRate; k++ {
			pin, pout, ok := rec.PairGaps(2 * k)
			if !ok {
				continue
			}
			gin += pin
			gout += pout
		}
		if gin <= 0 {
			continue
		}
		rounds = append(rounds, roundResult{ri: ri, ratio: float64(gout) / float64(gin)})
	}
	if len(rounds) < 3 {
		return nil, fmt.Errorf("topp: too few measurable rounds (%d)", len(rounds))
	}
	knee := kneeIndex(rounds)
	point := rounds[knee].ri
	// Capacity from regression over the overloaded segment:
	// Ri/Ro = Ri/C_t + (C_t−A)/C_t → slope = 1/C_t.
	var capEst, regPoint unit.Rate
	var xs, ys []float64
	for _, r := range rounds[knee+1:] {
		xs = append(xs, float64(r.ri))
		ys = append(ys, r.ratio)
	}
	if len(xs) >= 3 {
		if intercept, slope, r2, err := stats.LinearFit(xs, ys); err == nil && slope > 0 && r2 > 0.5 {
			capEst = unit.Rate(1 / slope)
			// A = C_t(1 − intercept): refine the knee estimate with the
			// regression when it is credible.
			a := unit.Rate(float64(capEst) * (1 - intercept))
			if a > 0 && a < capEst {
				regPoint = a
			}
		}
	}
	low, high := point, point
	if regPoint > 0 {
		// Blend: keep the sweep knee as the range anchor, report the
		// regression refinement as the point estimate.
		if regPoint < low {
			low = regPoint
		}
		if regPoint > high {
			high = regPoint
		}
		point = regPoint
	}
	return &core.Report{
		Tool:       e.Name(),
		Point:      point,
		Low:        low,
		High:       high,
		Streams:    streams,
		Packets:    packets,
		ProbeBytes: bytes,
		Elapsed:    t.Now() - start,
		Capacity:   capEst,
	}, nil
}

// kneeIndex fits the fluid response shape — flat for rates up to the
// knee, a straight line beyond — for every candidate knee and returns
// the one with the least squared error. The flat level is a free
// parameter (the segment mean) rather than the fluid model's 1.0: under
// real cross traffic, pair dispersion has a burstiness-induced baseline
// expansion even below the avail-bw (the effect the paper's Figure 3
// documents), and anchoring at 1.0 would push the knee to zero.
func kneeIndex(rounds []roundResult) int {
	n := len(rounds)
	best, bestCost := 0, 0.0
	for j := 0; j < n; j++ {
		cost := 0.0
		flat := stats.Mean(ratios(rounds[:j+1]))
		for i := 0; i <= j; i++ {
			d := rounds[i].ratio - flat
			cost += d * d
		}
		over := rounds[j+1:]
		switch {
		case len(over) >= 3:
			xs := make([]float64, len(over))
			ys := make([]float64, len(over))
			for i, r := range over {
				xs[i] = float64(r.ri)
				ys[i] = r.ratio
			}
			if a, b, _, err := stats.LinearFit(xs, ys); err == nil && b > 0 {
				for i := range xs {
					d := ys[i] - (a + b*xs[i])
					cost += d * d
				}
			} else {
				// A non-increasing "overload" segment is implausible;
				// penalize with deviation from its own mean.
				m := stats.Mean(ys)
				for _, y := range ys {
					cost += (y - m) * (y - m)
				}
			}
		case len(over) > 0:
			m := stats.Mean(ratios(over))
			for _, r := range over {
				cost += (r.ratio - m) * (r.ratio - m)
			}
		}
		if j == 0 || cost < bestCost {
			best, bestCost = j, cost
		}
	}
	return best
}

func ratios(rs []roundResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.ratio
	}
	return out
}

// pairTrain builds a stream of n pairs at internal rate ri with relaxed
// inter-pair spacing (8 packet times), matching TOPP's probing pattern:
// pairs probe the instantaneous rate while the train's average load stays
// well below it.
func pairTrain(ri unit.Rate, size unit.Bytes, n int) (probe.StreamSpec, error) {
	if n < 1 {
		return probe.StreamSpec{}, fmt.Errorf("topp: empty pair train")
	}
	intra := unit.GapFor(size, ri)
	inter := 8 * intra
	gaps := make([]time.Duration, 0, 2*n-1)
	for k := 0; k < n; k++ {
		if k > 0 {
			gaps = append(gaps, inter)
		}
		gaps = append(gaps, intra)
	}
	return probe.StreamSpec{PktSize: size, Count: 2 * n, Gaps: gaps}, nil
}

var _ core.Estimator = (*Estimator)(nil)
