package topp

import (
	"context"
	"math"
	"testing"

	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing rates accepted")
	}
	if _, err := New(Config{MinRate: 30 * unit.Mbps, MaxRate: 10 * unit.Mbps}); err == nil {
		t.Error("inverted rates accepted")
	}
	if _, err := New(Config{MinRate: 5 * unit.Mbps, MaxRate: 45 * unit.Mbps, PairsPerRate: -1}); err == nil {
		t.Error("negative pairs accepted")
	}
}

func TestEstimateCBR(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{MinRate: 5 * unit.Mbps, MaxRate: 45 * unit.Mbps, Step: 2.5 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if math.Abs(got-25) > 5 {
		t.Errorf("TOPP estimate = %.2f Mbps, want ~25", got)
	}
	if rep.Streams == 0 || rep.Packets == 0 {
		t.Error("effort not accounted")
	}
}

func TestCapacityEstimate(t *testing.T) {
	// The slope of the overloaded segment recovers C_t — the TOPP
	// feature the paper's classification singles out.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{MinRate: 5 * unit.Mbps, MaxRate: 48 * unit.Mbps, Step: 2 * unit.Mbps, PairsPerRate: 30})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Capacity == 0 {
		t.Fatal("no capacity estimate produced")
	}
	got := rep.Capacity.MbpsOf()
	if math.Abs(got-50) > 10 {
		t.Errorf("capacity estimate = %.2f Mbps, want ~50", got)
	}
}

func TestEstimatePoissonUnderestimatesOrClose(t *testing.T) {
	// With bursty traffic TOPP dips below the true avail-bw (the
	// paper's burstiness pitfall applies to iterative probing too): the
	// estimate must not exceed truth by much, and must be positive.
	sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(5)})
	e, err := New(Config{MinRate: 5 * unit.Mbps, MaxRate: 45 * unit.Mbps, Step: 2.5 * unit.Mbps, PairsPerRate: 30})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if got <= 0 || got > 29 {
		t.Errorf("TOPP estimate = %.2f Mbps, want in (0, 29]", got)
	}
}

func TestAllRoundsOverloadedReportsFloor(t *testing.T) {
	// Sweep entirely above the avail-bw: TOPP must report ~MinRate, not
	// something inside the sweep.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{MinRate: 30 * unit.Mbps, MaxRate: 48 * unit.Mbps, Step: 3 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Point > 33*unit.Mbps {
		t.Errorf("estimate %v should be near the sweep floor when everything overloads", rep.Point)
	}
}

func TestPairTrainStructure(t *testing.T) {
	spec, err := pairTrain(40*unit.Mbps, 1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Count != 10 || len(spec.Gaps) != 9 {
		t.Fatalf("pair train shape wrong: %+v", spec)
	}
	intra := unit.GapFor(1500, 40*unit.Mbps)
	for i, g := range spec.Gaps {
		if i%2 == 0 && g != intra {
			t.Errorf("gap %d = %v, want intra %v", i, g, intra)
		}
		if i%2 == 1 && g != 8*intra {
			t.Errorf("gap %d = %v, want inter %v", i, g, 8*intra)
		}
	}
	if _, err := pairTrain(unit.Mbps, 1500, 0); err == nil {
		t.Error("empty train accepted")
	}
}
