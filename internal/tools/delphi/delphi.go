// Package delphi implements the canonical direct-probing estimator
// (Ribeiro et al., "Multifractal Cross-Traffic Estimation", ITC 2000).
// Each periodic probing train yields one sample of the avail-bw process
// by inverting the single-link rate response (the paper's Equation 9),
// assuming the tight-link capacity is known.
//
// Per the paper's classification, the defining properties are: (a) it
// samples the avail-bw process once per train, and (b) it requires the
// tight-link capacity C_t — with all the pitfalls that assumption brings
// (see core.Misconceptions[4]).
package delphi

import (
	"context"
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/fluid"
	"abw/internal/probe"
	"abw/internal/stats"
	"abw/internal/unit"
)

// Config tunes the estimator. Zero fields take defaults.
type Config struct {
	// Capacity is the assumed tight-link capacity C_t (required).
	Capacity unit.Rate
	// ProbeRate is the train input rate; it must exceed the avail-bw for
	// Equation (9) to apply. Default: 0.75·Capacity.
	ProbeRate unit.Rate
	// PktSize is the probing packet size (default 1500 B).
	PktSize unit.Bytes
	// TrainLen is packets per train (default 100). The train duration
	// sets the averaging timescale τ.
	TrainLen int
	// Trains is the number of avail-bw samples k (default 20).
	Trains int
}

func (c Config) withDefaults() (Config, error) {
	if c.Capacity <= 0 {
		return c, fmt.Errorf("delphi: tight-link capacity is required (direct probing)")
	}
	if c.ProbeRate == 0 {
		c.ProbeRate = c.Capacity * 3 / 4
	}
	if c.ProbeRate <= 0 || c.ProbeRate > c.Capacity {
		return c, fmt.Errorf("delphi: probe rate %v outside (0, capacity]", c.ProbeRate)
	}
	if c.PktSize == 0 {
		c.PktSize = 1500
	}
	if c.TrainLen == 0 {
		c.TrainLen = 100
	}
	if c.TrainLen < 2 {
		return c, fmt.Errorf("delphi: train length %d too short", c.TrainLen)
	}
	if c.Trains == 0 {
		c.Trains = 20
	}
	if c.Trains < 1 {
		return c, fmt.Errorf("delphi: need at least one train")
	}
	return c, nil
}

// Estimator is the Delphi direct prober.
type Estimator struct {
	cfg Config
}

// New validates the configuration and returns the estimator.
func New(cfg Config) (*Estimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: c}, nil
}

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "delphi" }

// Estimate implements core.Estimator: it collects one avail-bw sample
// per train via Equation (9) and reports their mean and spread.
func (e *Estimator) Estimate(ctx context.Context, t core.Transport) (*core.Report, error) {
	c := e.cfg
	start := t.Now()
	spec := probe.Periodic(c.ProbeRate, c.PktSize, c.TrainLen)
	var samples []unit.Rate
	var packets int
	var bytes unit.Bytes
	for i := 0; i < c.Trains; i++ {
		rec, err := core.Probe(ctx, t, spec)
		if err != nil {
			return nil, fmt.Errorf("delphi: train %d: %w", i, err)
		}
		packets += spec.Count
		bytes += spec.Bytes()
		ri, ro := rec.InputRate(), rec.OutputRate()
		if ri <= 0 || ro <= 0 {
			continue // unmeasurable train (heavy loss); skip the sample
		}
		a, err := fluid.DirectEstimate(c.Capacity, ri, ro)
		if err != nil {
			continue
		}
		samples = append(samples, probe.ClampToCapacity(a, c.Capacity))
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("delphi: no measurable trains out of %d", c.Trains)
	}
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = float64(s)
	}
	min, max := stats.MinMax(vals)
	rep := &core.Report{
		Tool:       e.Name(),
		Point:      unit.Rate(stats.Mean(vals)),
		Low:        unit.Rate(min),
		High:       unit.Rate(max),
		Streams:    c.Trains,
		Packets:    packets,
		ProbeBytes: bytes,
		Elapsed:    t.Now() - start,
		Samples:    samples,
	}
	return rep, nil
}

// Timescale returns the averaging timescale τ implied by the
// configuration: the train's send duration. Exposed because the paper's
// second pitfall is precisely that this is a measurement parameter.
func (e *Estimator) Timescale() time.Duration {
	return probe.Periodic(e.cfg.ProbeRate, e.cfg.PktSize, e.cfg.TrainLen).Duration()
}

var _ core.Estimator = (*Estimator)(nil)
