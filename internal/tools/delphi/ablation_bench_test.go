package delphi_test

import (
	"context"
	"testing"

	"abw/internal/stats"
	"abw/internal/tools/delphi"
	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

// BenchmarkAblationPairsVsTrains contrasts 2-packet and 100-packet
// direct probing at an equal packet budget: the quantitative content of
// fallacy 4 at the estimator level.
func BenchmarkAblationPairsVsTrains(b *testing.B) {
	run := func(b *testing.B, trainLen, trains int, metric string) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(uint64(i + 1))})
			est, err := delphi.New(delphi.Config{
				Capacity: sc.Capacity, ProbeRate: 40 * unit.Mbps,
				TrainLen: trainLen, Trains: trains,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := est.Estimate(context.Background(), sc.Transport)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(stats.RelativeError(rep.Point.MbpsOf(), 25), metric)
		}
	}
	b.Run("pairs-2x500", func(b *testing.B) { run(b, 2, 500, "eps") })
	b.Run("trains-100x10", func(b *testing.B) { run(b, 100, 10, "eps") })
}
