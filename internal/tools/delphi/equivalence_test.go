package delphi

import (
	"testing"

	"abw/internal/probe"
	"abw/internal/unit"
)

// legacyClamp is the estimate clamp Delphi carried inline before the
// shared feature layer, kept verbatim as the equivalence reference.
func legacyClamp(a, capacity unit.Rate) unit.Rate {
	if a < 0 {
		a = 0
	}
	if a > capacity {
		a = capacity
	}
	return a
}

// TestClampEquivalence pins the migration onto probe.ClampToCapacity.
func TestClampEquivalence(t *testing.T) {
	c := 10 * unit.Mbps
	cases := []struct {
		name string
		a    unit.Rate
	}{
		{"negative", -3 * unit.Mbps},
		{"zero", 0},
		{"inside", 4 * unit.Mbps},
		{"atCapacity", c},
		{"overCapacity", 15 * unit.Mbps},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got, want := probe.ClampToCapacity(tc.a, c), legacyClamp(tc.a, c); got != want {
				t.Errorf("ClampToCapacity(%v) = %v, legacy %v", tc.a, got, want)
			}
		})
	}
}
