package delphi

import (
	"context"
	"math"
	"testing"

	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing capacity accepted")
	}
	if _, err := New(Config{Capacity: 50 * unit.Mbps, ProbeRate: 60 * unit.Mbps}); err == nil {
		t.Error("probe rate above capacity accepted")
	}
	if _, err := New(Config{Capacity: 50 * unit.Mbps, TrainLen: 1}); err == nil {
		t.Error("1-packet train accepted")
	}
	if _, err := New(Config{Capacity: 50 * unit.Mbps, Trains: -1}); err == nil {
		t.Error("negative train count accepted")
	}
}

func TestDefaults(t *testing.T) {
	e, err := New(Config{Capacity: 50 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.ProbeRate != 37.5*unit.Mbps {
		t.Errorf("default probe rate = %v, want 37.5Mbps", e.cfg.ProbeRate)
	}
	if e.cfg.PktSize != 1500 || e.cfg.TrainLen != 100 || e.cfg.Trains != 20 {
		t.Errorf("defaults wrong: %+v", e.cfg)
	}
	if e.Name() != "delphi" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.Timescale() <= 0 {
		t.Error("Timescale not positive")
	}
}

func TestEstimateCBRExact(t *testing.T) {
	// With CBR cross traffic the fluid model is nearly exact: Delphi
	// must recover A = 25 Mbps tightly.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{Capacity: sc.Capacity, ProbeRate: 40 * unit.Mbps, Trains: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if math.Abs(got-25) > 1.0 {
		t.Errorf("estimate = %.2f Mbps, want ~25", got)
	}
	if rep.Streams != 10 || rep.Packets != 1000 {
		t.Errorf("effort accounting wrong: %+v", rep)
	}
	if len(rep.Samples) != 10 {
		t.Errorf("samples = %d, want 10", len(rep.Samples))
	}
	if rep.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestEstimatePoissonClose(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(7)})
	e, err := New(Config{Capacity: sc.Capacity, ProbeRate: 40 * unit.Mbps, Trains: 20, TrainLen: 200})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	// Bursty traffic biases direct probing downward (the paper's sixth
	// misconception); accept a moderate band around truth.
	if got < 17 || got > 28 {
		t.Errorf("estimate = %.2f Mbps, want within [17, 28]", got)
	}
}

func TestBurstyTrafficUnderestimates(t *testing.T) {
	// Pitfall 6 at the tool level: at equal mean avail-bw, the Pareto
	// ON-OFF estimate must not exceed the CBR estimate (burstiness can
	// only bias direct probing downward).
	est := func(m toolstest.Traffic, seed uint64) float64 {
		sc := toolstest.New(toolstest.Options{Model: m, Seed: toolstest.Seed(seed)})
		e, err := New(Config{Capacity: sc.Capacity, ProbeRate: 40 * unit.Mbps, Trains: 15})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Estimate(context.Background(), sc.Transport)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Point.MbpsOf()
	}
	cbr := est(toolstest.CBR, 3)
	pareto := est(toolstest.ParetoOnOff, 3)
	if pareto > cbr+0.5 {
		t.Errorf("Pareto ON-OFF estimate %.2f above CBR %.2f", pareto, cbr)
	}
}

func TestVariationRangeBounds(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(11)})
	e, err := New(Config{Capacity: sc.Capacity, ProbeRate: 40 * unit.Mbps, Trains: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.Low <= rep.Point && rep.Point <= rep.High) {
		t.Errorf("range ordering violated: %v <= %v <= %v", rep.Low, rep.Point, rep.High)
	}
	if rep.Low < 0 || rep.High > sc.Capacity {
		t.Errorf("range outside physical bounds: [%v, %v]", rep.Low, rep.High)
	}
}
