package bfind

import (
	"testing"

	"abw/internal/stats"
)

// TestMedianEquivalence pins BFind's sustained-rise test onto the
// canonical stats.Median: for every window the interpolated
// CDF.Quantile(0.5) it used before and the shared median are
// bit-identical (nearest-rank interpolation at q=0.5 lands exactly on
// the mean of the two middle values).
func TestMedianEquivalence(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
	}{
		{"odd", []float64{0.003, 0.001, 0.002}},
		{"even", []float64{0.004, 0.001, 0.003, 0.002}},
		{"one", []float64{0.007}},
		{"ties", []float64{0.002, 0.002, 0.002}},
		{"typicalWindow", []float64{0.0051, 0.0049, 0.0072, 0.0050, 0.0063, 0.0048, 0.0055, 0.0049, 0.0061, 0.0052}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := stats.NewCDF(tc.xs).Quantile(0.5)
			if got := stats.Median(tc.xs); got != want {
				t.Errorf("stats.Median = %g, CDF.Quantile(0.5) = %g", got, want)
			}
		})
	}
}
