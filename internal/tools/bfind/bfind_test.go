package bfind

import (
	"context"
	"testing"
	"time"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing MaxRate accepted")
	}
	if _, err := New(Config{MaxRate: 40 * unit.Mbps, StartRate: 50 * unit.Mbps}); err == nil {
		t.Error("StartRate above MaxRate accepted")
	}
	if _, err := New(Config{MaxRate: 40 * unit.Mbps, TraceProbes: 1}); err == nil {
		t.Error("single trace probe accepted")
	}
	if _, err := New(Config{MaxRate: 40 * unit.Mbps, Window: -time.Second}); err == nil {
		t.Error("negative window accepted")
	}
}

func TestRequiresSimTransport(t *testing.T) {
	e, err := New(Config{MaxRate: 40 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(context.Background(), fakeTransport{}); err == nil {
		t.Error("non-sim transport accepted")
	}
}

type fakeTransport struct{}

func (fakeTransport) Probe(probe.StreamSpec) (*probe.Record, error) { return nil, nil }
func (fakeTransport) Now() time.Duration                            { return 0 }

func TestEstimateSingleHop(t *testing.T) {
	// BFind needs finite buffers to see persistent queue growth turn
	// into delay; unbounded buffers also work since delay just grows.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 500})
	e, err := New(Config{StartRate: 10 * unit.Mbps, Step: 5 * unit.Mbps, MaxRate: 48 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	// Ramp quantization is ±Step; accept the 25±7.5 band.
	if got < 17.5 || got > 32.5 {
		t.Errorf("bfind estimate = %.2f Mbps, want ~25±7.5", got)
	}
}

func TestEstimateIdentifiesCeilingMiss(t *testing.T) {
	// Ramp ceiling below the avail-bw: BFind must report the miss as an
	// error while still returning its partial report.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 500})
	e, err := New(Config{StartRate: 2 * unit.Mbps, Step: 2 * unit.Mbps, MaxRate: 10 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err == nil {
		t.Error("expected ceiling-miss error")
	}
	if rep == nil || rep.Point != 10*unit.Mbps {
		t.Errorf("partial report should carry the ceiling: %+v", rep)
	}
}

func TestEstimateMultiHopFindsTightHop(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 500, Hops: 3})
	e, err := New(Config{StartRate: 10 * unit.Mbps, Step: 5 * unit.Mbps, MaxRate: 48 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if got < 15 || got > 35 {
		t.Errorf("bfind multi-hop estimate = %.2f Mbps, want ~25", got)
	}
	_ = core.Report{} // keep core import for the interface assertion below
	var _ core.Estimator = e
}
