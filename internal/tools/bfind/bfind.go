// Package bfind implements BFind (Akella, Seshan & Shaikh, IMC 2003),
// the odd one out in the paper's classification: it needs control of only
// the sending end. It ramps up a UDP load on the path while repeatedly
// "tracerouting" — measuring the round-trip time to every intermediate
// hop — and declares the avail-bw reached when some hop's RTT shows a
// sustained rise (a growing queue at that link).
//
// Because per-hop RTT observation has no place in the end-to-end
// core.Transport abstraction, this implementation drives the simulator
// directly: Estimate type-asserts a *core.SimTransport and emulates the
// ICMP TTL-expired responses with prefix-routed probe packets.
package bfind

import (
	"context"
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/crosstraffic"
	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/stats"
	"abw/internal/unit"
)

// Config tunes the estimator.
type Config struct {
	// StartRate is the initial UDP load (default 1 Mbps).
	StartRate unit.Rate
	// Step is the per-round rate increase (default 2 Mbps).
	Step unit.Rate
	// MaxRate bounds the ramp (required): BFind is intrusive by design
	// and needs an explicit ceiling.
	MaxRate unit.Rate
	// Window is how long each load level is held (default 200 ms).
	Window time.Duration
	// TraceProbes is the number of per-hop RTT probes per window
	// (default 10).
	TraceProbes int
	// DelayThreshold is the sustained per-hop queueing-delay increase
	// that flags a saturated link (default 5 ms).
	DelayThreshold time.Duration
	// LoadPktSize is the UDP load packet size (default 1000 B).
	LoadPktSize unit.Bytes
}

func (c Config) withDefaults() (Config, error) {
	if c.MaxRate <= 0 {
		return c, fmt.Errorf("bfind: MaxRate is required (the ramp must have a ceiling)")
	}
	if c.StartRate == 0 {
		c.StartRate = 1 * unit.Mbps
	}
	if c.StartRate <= 0 || c.StartRate > c.MaxRate {
		return c, fmt.Errorf("bfind: StartRate %v outside (0, MaxRate]", c.StartRate)
	}
	if c.Step == 0 {
		c.Step = 2 * unit.Mbps
	}
	if c.Step <= 0 {
		return c, fmt.Errorf("bfind: Step must be positive")
	}
	if c.Window == 0 {
		c.Window = 200 * time.Millisecond
	}
	if c.Window <= 0 {
		return c, fmt.Errorf("bfind: Window must be positive")
	}
	if c.TraceProbes == 0 {
		c.TraceProbes = 10
	}
	if c.TraceProbes < 2 {
		return c, fmt.Errorf("bfind: need at least 2 trace probes per window")
	}
	if c.DelayThreshold == 0 {
		c.DelayThreshold = 5 * time.Millisecond
	}
	if c.DelayThreshold <= 0 {
		return c, fmt.Errorf("bfind: DelayThreshold must be positive")
	}
	if c.LoadPktSize == 0 {
		c.LoadPktSize = 1000
	}
	return c, nil
}

// Estimator is the BFind sender-side prober.
type Estimator struct {
	cfg Config
}

// New validates the configuration and returns the estimator.
func New(cfg Config) (*Estimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: c}, nil
}

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "bfind" }

// Estimate implements core.Estimator. The transport must be a
// *core.SimTransport; BFind needs hop visibility that end-to-end
// transports cannot offer. BFind drives the simulator directly rather
// than calling Probe, so it checks ctx itself at every ramp window —
// the same stream-boundary granularity as the other tools.
func (e *Estimator) Estimate(ctx context.Context, t core.Transport) (*core.Report, error) {
	st, ok := t.(*core.SimTransport)
	if !ok {
		return nil, fmt.Errorf("bfind: requires a simulated path (per-hop RTT observation)")
	}
	c := e.cfg
	s, path := st.Sim, st.Path
	start := s.Now()
	hops := len(path.Links)

	// Baseline per-hop delays on the unloaded path.
	baseline := make([]float64, hops)
	for h := 0; h < hops; h++ {
		ds := e.traceHop(s, path, h, 5, 10*time.Millisecond)
		baseline[h] = stats.Mean(ds)
	}

	var packets int
	var bytes unit.Bytes
	saturatedHop := -1
	rate := c.StartRate
	estimate := c.MaxRate
ramp:
	for ; rate <= c.MaxRate; rate += c.Step {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Offer the UDP load for one window.
		load := crosstraffic.CBR(crosstraffic.Stream{
			Rate:  rate,
			Sizes: rng.FixedSize(c.LoadPktSize),
			Kind:  sim.KindProbe,
		})
		from := s.Now()
		ctr := load.Run(s, path.Route(), from, from+c.Window)
		// Trace every hop while the load runs: all probes for all hops
		// are scheduled inside the window before the clock advances.
		spacing := c.Window / time.Duration(c.TraceProbes+1)
		delays := make([][]float64, hops)
		outstanding := 0
		for h := 0; h < hops; h++ {
			delays[h] = make([]float64, 0, c.TraceProbes)
			h := h
			for i := 0; i < c.TraceProbes; i++ {
				sendAt := from + time.Duration(i+1)*spacing
				s.Inject(&sim.Packet{
					Size:  40,
					Kind:  sim.KindProbe,
					Route: path.Links[:h+1],
					OnArrive: func(_ *sim.Packet, at time.Duration) {
						delays[h] = append(delays[h], (at - sendAt).Seconds())
						outstanding--
					},
					OnDrop: func(*sim.Packet, *sim.Link, time.Duration) { outstanding-- },
				}, sendAt)
				outstanding++
			}
		}
		deadline := from + c.Window + time.Second
		for outstanding > 0 && s.Now() < deadline {
			step := deadline - s.Now()
			if step > 20*time.Millisecond {
				step = 20 * time.Millisecond
			}
			s.RunUntil(s.Now() + step)
		}
		if end := from + c.Window + 100*time.Millisecond; s.Now() < end {
			s.RunUntil(end)
		}
		packets += int(ctr.Packets) + hops*c.TraceProbes
		bytes += ctr.Bytes
		for h := 0; h < hops; h++ {
			if len(delays[h]) == 0 {
				continue
			}
			// Sustained rise: the median of the window's probes exceeds
			// baseline by the threshold.
			med := stats.Median(delays[h])
			if med-baseline[h] > c.DelayThreshold.Seconds() {
				saturatedHop = h
				estimate = rate
				break ramp
			}
		}
	}
	rep := &core.Report{
		Tool:       e.Name(),
		Point:      estimate,
		Low:        estimate,
		High:       estimate,
		Streams:    1,
		Packets:    packets,
		ProbeBytes: bytes,
		Elapsed:    s.Now() - start,
	}
	if saturatedHop == -1 {
		return rep, fmt.Errorf("bfind: no hop saturated up to %v (avail-bw above the ramp ceiling)", c.MaxRate)
	}
	return rep, nil
}

// traceHop measures n one-way delays to hop h (prefix routing emulates
// the TTL-expired probe). All probes are scheduled at fixed offsets
// i·spacing from now — concurrent with whatever load is running — so the
// samples stay inside the observation window regardless of queueing.
// The simulation is advanced until every probe resolves. Delays are in
// seconds.
func (e *Estimator) traceHop(s *sim.Sim, path *sim.Path, h, n int, spacing time.Duration) []float64 {
	prefix := path.Links[:h+1]
	out := make([]float64, 0, n)
	resolved := 0
	base := s.Now()
	var lastSend time.Duration
	for i := 0; i < n; i++ {
		sendAt := base + time.Duration(i+1)*spacing
		lastSend = sendAt
		s.Inject(&sim.Packet{
			Size:  40, // ICMP-sized probe
			Kind:  sim.KindProbe,
			Route: prefix,
			OnArrive: func(_ *sim.Packet, at time.Duration) {
				out = append(out, (at - sendAt).Seconds())
				resolved++
			},
			OnDrop: func(*sim.Packet, *sim.Link, time.Duration) { resolved++ },
		}, sendAt)
	}
	deadline := lastSend + time.Second
	for resolved < n && s.Now() < deadline {
		step := deadline - s.Now()
		if step > 20*time.Millisecond {
			step = 20 * time.Millisecond
		}
		s.RunUntil(s.Now() + step)
	}
	return out
}

var _ core.Estimator = (*Estimator)(nil)
