package spruce_test

import (
	"context"
	"testing"
	"time"

	"abw/internal/rng"
	"abw/internal/stats"
	"abw/internal/tools/spruce"
	"abw/internal/tools/toolstest"
)

// BenchmarkAblationSpruceSpacing contrasts Spruce's Poisson inter-pair
// spacing with dense back-to-back pairs: sparse sampling trades latency
// for independence of the samples.
func BenchmarkAblationSpruceSpacing(b *testing.B) {
	run := func(b *testing.B, spacing time.Duration) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(uint64(i + 1))})
			est, err := spruce.New(spruce.Config{
				Capacity: sc.Capacity, Pairs: 100,
				MeanSpacing: spacing, Rand: rng.New(uint64(i + 1)),
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := est.Estimate(context.Background(), sc.Transport)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(stats.RelativeError(rep.Point.MbpsOf(), 25), "eps")
		}
	}
	b.Run("poisson-20ms", func(b *testing.B) { run(b, 20*time.Millisecond) })
	b.Run("dense-1ms", func(b *testing.B) { run(b, time.Millisecond) })
}
