// Package spruce implements the Spruce estimator (Strauss, Katabi &
// Kaashoek, IMC 2003): direct probing with packet pairs instead of
// trains. Pairs are sent with intra-pair spacing equal to the tight
// link's transmission time of the probe packet (input rate ≈ C_t) and
// exponentially distributed inter-pair gaps that emulate Poisson sampling
// of the avail-bw process.
//
// Per pair, the gap model gives one avail-bw sample:
//
//	A = C_t · (1 − (Δout − Δin)/Δin)
//
// which is Equation (9) specialized to Ri = C_t. Spruce averages a fixed
// number of pair samples (100 in the original tool).
package spruce

import (
	"context"
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/rng"
	"abw/internal/stats"
	"abw/internal/unit"
)

// Config tunes the estimator. Zero fields take the original tool's
// defaults.
type Config struct {
	// Capacity is the assumed tight-link capacity C_t (required).
	Capacity unit.Rate
	// Pairs is the number of pair samples (default 100).
	Pairs int
	// PktSize is the probe packet size (default 1500 B).
	PktSize unit.Bytes
	// MeanSpacing is the mean of the exponential inter-pair gap
	// (default 20 ms, keeping average probing load low).
	MeanSpacing time.Duration
	// PairsPerBatch bounds how many pairs share one transport stream
	// (default 25); batching amortizes transport overhead while the
	// exponential spacing preserves Poisson sampling.
	PairsPerBatch int
	// Rand drives the Poisson spacing (required).
	Rand *rng.Rand
}

func (c Config) withDefaults() (Config, error) {
	if c.Capacity <= 0 {
		return c, fmt.Errorf("spruce: tight-link capacity is required (direct probing)")
	}
	if c.Pairs == 0 {
		c.Pairs = 100
	}
	if c.Pairs < 1 {
		return c, fmt.Errorf("spruce: need at least one pair")
	}
	if c.PktSize == 0 {
		c.PktSize = 1500
	}
	if c.MeanSpacing == 0 {
		c.MeanSpacing = 20 * time.Millisecond
	}
	if c.MeanSpacing < 0 {
		return c, fmt.Errorf("spruce: negative mean spacing")
	}
	if c.PairsPerBatch == 0 {
		c.PairsPerBatch = 25
	}
	if c.PairsPerBatch < 1 {
		return c, fmt.Errorf("spruce: batch size must be positive")
	}
	if c.Rand == nil {
		return c, fmt.Errorf("spruce: random source is required for Poisson spacing")
	}
	return c, nil
}

// Estimator is the Spruce direct prober.
type Estimator struct {
	cfg Config
}

// New validates the configuration and returns the estimator.
func New(cfg Config) (*Estimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: c}, nil
}

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "spruce" }

// Estimate implements core.Estimator.
func (e *Estimator) Estimate(ctx context.Context, t core.Transport) (*core.Report, error) {
	c := e.cfg
	start := t.Now()
	var samples []unit.Rate
	var streams, packets int
	var bytes unit.Bytes
	remaining := c.Pairs
	for remaining > 0 {
		n := remaining
		if n > c.PairsPerBatch {
			n = c.PairsPerBatch
		}
		remaining -= n
		spec, err := probe.PoissonPairs(c.Capacity, c.PktSize, n, c.MeanSpacing, c.Rand)
		if err != nil {
			return nil, fmt.Errorf("spruce: %w", err)
		}
		rec, err := core.Probe(ctx, t, spec)
		if err != nil {
			return nil, fmt.Errorf("spruce: %w", err)
		}
		streams++
		packets += spec.Count
		bytes += spec.Bytes()
		// The gap model's Δin is the constructed spacing gin, not the
		// measured send gap: Spruce trusts its own pacing.
		gin := unit.GapFor(c.PktSize, c.Capacity)
		for k := 0; k < n; k++ {
			_, gout, ok := rec.PairGaps(2 * k)
			if !ok {
				continue
			}
			samples = append(samples, probe.PairGapAvailBw(c.Capacity, gin, gout))
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("spruce: no measurable pairs out of %d", c.Pairs)
	}
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = float64(s)
	}
	min, max := stats.MinMax(vals)
	return &core.Report{
		Tool:       e.Name(),
		Point:      unit.Rate(stats.Mean(vals)),
		Low:        unit.Rate(min),
		High:       unit.Rate(max),
		Streams:    streams,
		Packets:    packets,
		ProbeBytes: bytes,
		Elapsed:    t.Now() - start,
		Samples:    samples,
	}, nil
}

var _ core.Estimator = (*Estimator)(nil)
