package spruce

import (
	"testing"
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// legacyPairSamples is the per-pair gap-model loop Spruce carried before
// the shared feature layer, kept verbatim as the equivalence reference.
func legacyPairSamples(rec *probe.Record, capacity unit.Rate, pktSize unit.Bytes, n int) []unit.Rate {
	var samples []unit.Rate
	gin := unit.GapFor(pktSize, capacity)
	for k := 0; k < n; k++ {
		gout := rec.Gap(2 * k)
		if gout == probe.Lost || gout <= 0 {
			continue
		}
		a := float64(capacity) * (1 - float64(gout-gin)/float64(gin))
		if a < 0 {
			a = 0
		}
		if a > float64(capacity) {
			a = float64(capacity)
		}
		samples = append(samples, unit.Rate(a))
	}
	return samples
}

func pairRecord(recvMs []float64) *probe.Record {
	n := len(recvMs)
	r := probe.NewRecord(probe.StreamSpec{PktSize: 1500, Count: n})
	for i := range recvMs {
		r.Sent[i] = time.Duration(i) * time.Millisecond
		if recvMs[i] < 0 {
			r.Recv[i] = probe.Lost
		} else {
			r.Recv[i] = time.Duration(recvMs[i] * float64(time.Millisecond))
		}
	}
	return r
}

// TestGapModelEquivalence pins the migration onto PairGaps +
// PairGapAvailBw: per-pair samples are bit-identical to the private
// loop Spruce used before, including the skip decisions for lost,
// duplicate, and reordered pairs.
func TestGapModelEquivalence(t *testing.T) {
	capacity := 48 * unit.Mbps
	cases := []struct {
		name string
		recv []float64 // ms; negative = lost
	}{
		{"clean", []float64{5, 5.3, 25, 25.2, 45, 45.7, 65, 65.25}},
		{"lossyPairs", []float64{5, -1, 25, 25.2, -1, 45.7, 65, -1}},
		{"allLost", []float64{-1, -1, -1, -1}},
		{"duplicateStamps", []float64{5, 5, 25, 25, 45, 45.7}},
		{"reordered", []float64{5, 4.8, 25, 25.2}},
		{"hugeExpansion", []float64{5, 50, 60, 61}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := pairRecord(tc.recv)
			n := len(tc.recv) / 2
			want := legacyPairSamples(rec, capacity, 1500, n)
			gin := unit.GapFor(unit.Bytes(1500), capacity)
			var got []unit.Rate
			for k := 0; k < n; k++ {
				_, gout, ok := rec.PairGaps(2 * k)
				if !ok {
					continue
				}
				got = append(got, probe.PairGapAvailBw(capacity, gin, gout))
			}
			if len(got) != len(want) {
				t.Fatalf("sample count %d, legacy %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("sample %d: %v, legacy %v", i, got[i], want[i])
				}
			}
		})
	}
}
