package spruce

import (
	"context"
	"math"
	"testing"

	"abw/internal/rng"
	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Rand: rng.New(1)}); err == nil {
		t.Error("missing capacity accepted")
	}
	if _, err := New(Config{Capacity: 50 * unit.Mbps}); err == nil {
		t.Error("missing rand accepted")
	}
	if _, err := New(Config{Capacity: 50 * unit.Mbps, Rand: rng.New(1), Pairs: -5}); err == nil {
		t.Error("negative pairs accepted")
	}
	if _, err := New(Config{Capacity: 50 * unit.Mbps, Rand: rng.New(1), PairsPerBatch: -1}); err == nil {
		t.Error("negative batch accepted")
	}
}

func TestDefaults(t *testing.T) {
	e, err := New(Config{Capacity: 50 * unit.Mbps, Rand: rng.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Pairs != 100 || e.cfg.PktSize != 1500 || e.cfg.PairsPerBatch != 25 {
		t.Errorf("defaults wrong: %+v", e.cfg)
	}
	if e.Name() != "spruce" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestEstimateCBR(t *testing.T) {
	// CBR with small packets approximates fluid: Spruce's gap model
	// should land near A = 25 Mbps.
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{Capacity: sc.Capacity, Rand: rng.New(2), Pairs: 100})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if math.Abs(got-25) > 3 {
		t.Errorf("estimate = %.2f Mbps, want ~25", got)
	}
	if len(rep.Samples) != 100 {
		t.Errorf("samples = %d, want 100", len(rep.Samples))
	}
	if rep.Streams != 4 {
		t.Errorf("streams = %d, want 4 (100 pairs / 25 per batch)", rep.Streams)
	}
}

func TestEstimatePoisson(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(5)})
	e, err := New(Config{Capacity: sc.Capacity, Rand: rng.New(3), Pairs: 200})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if got < 15 || got > 32 {
		t.Errorf("estimate = %.2f Mbps, want within [15, 32]", got)
	}
}

func TestPairQuantizationWithLargeCrossPackets(t *testing.T) {
	// Table 1's mechanism at the tool level: with 1500 B cross packets,
	// per-pair samples are coarsely quantized, so their spread is wider
	// than with 40 B packets at the same mean rate.
	spread := func(size int, seed uint64) float64 {
		sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, CrossSize: size, Seed: toolstest.Seed(seed)})
		e, err := New(Config{Capacity: sc.Capacity, Rand: rng.New(seed), Pairs: 150})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Estimate(context.Background(), sc.Transport)
		if err != nil {
			t.Fatal(err)
		}
		var mean float64
		for _, s := range rep.Samples {
			mean += s.MbpsOf()
		}
		mean /= float64(len(rep.Samples))
		var v float64
		for _, s := range rep.Samples {
			d := s.MbpsOf() - mean
			v += d * d
		}
		return math.Sqrt(v / float64(len(rep.Samples)-1))
	}
	small := spread(40, 11)
	large := spread(1500, 11)
	if large <= small {
		t.Errorf("pair-sample spread should grow with cross packet size: 40B→%.2f 1500B→%.2f", small, large)
	}
}

func TestSamplesClampedToPhysicalRange(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.ParetoOnOff, Seed: toolstest.Seed(13)})
	e, err := New(Config{Capacity: sc.Capacity, Rand: rng.New(7), Pairs: 150})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Samples {
		if s < 0 || s > sc.Capacity {
			t.Fatalf("sample %v outside [0, capacity]", s)
		}
	}
}
