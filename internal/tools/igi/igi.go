// Package igi implements the IGI and PTR estimators (Hu & Steenkiste,
// JSAC 2003). Both send 60-packet probing trains and iteratively adjust
// the source gap until the "turning point", where the average output gap
// matches the input gap — i.e. the train no longer builds queue.
//
//   - PTR (Packet Transmission Rate) reports the train's achieved rate at
//     the turning point: pure iterative probing, like TOPP with trains.
//   - IGI (Initial Gap Increasing) additionally applies a direct-probing
//     gap formula at the turning point, crediting cross traffic for the
//     gap expansion of backlogged pairs: it therefore needs the tight
//     link capacity — the hybrid classification the paper discusses.
package igi

import (
	"context"
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/unit"
)

// Mode selects which of the two estimates the tool reports.
type Mode int

// Modes.
const (
	PTR Mode = iota // packet transmission rate at the turning point
	IGI             // gap-model cross-traffic estimate (needs capacity)
)

// Config tunes the estimator.
type Config struct {
	// Mode selects PTR or IGI (default PTR).
	Mode Mode
	// Capacity is the tight-link capacity; required for IGI mode, where
	// it scales the gap formula (the original tool obtains it from
	// bprobe — see core.Misconceptions[4] for the attendant pitfall).
	Capacity unit.Rate
	// InitRate is the first probing rate (default: Capacity if known,
	// else required).
	InitRate unit.Rate
	// TrainLen is packets per train (default 60, the published value).
	TrainLen int
	// PktSize is the probe packet size (default 750 B, IGI's default).
	PktSize unit.Bytes
	// GapStep is the additive source-gap increment per iteration, as a
	// fraction of the initial gap (default 0.25).
	GapStep float64
	// Epsilon is the relative gap-convergence tolerance at the turning
	// point (default 0.05).
	Epsilon float64
	// MaxIterations bounds the search (default 30).
	MaxIterations int
}

func (c Config) withDefaults() (Config, error) {
	if c.Mode == IGI && c.Capacity <= 0 {
		return c, fmt.Errorf("igi: IGI mode requires the tight-link capacity")
	}
	if c.InitRate == 0 {
		c.InitRate = c.Capacity
	}
	if c.InitRate <= 0 {
		return c, fmt.Errorf("igi: initial probing rate required")
	}
	if c.TrainLen == 0 {
		c.TrainLen = 60
	}
	if c.TrainLen < 3 {
		return c, fmt.Errorf("igi: train length %d too short", c.TrainLen)
	}
	if c.PktSize == 0 {
		c.PktSize = 750
	}
	if c.GapStep == 0 {
		c.GapStep = 0.25
	}
	if c.GapStep <= 0 {
		return c, fmt.Errorf("igi: gap step must be positive")
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return c, fmt.Errorf("igi: epsilon %g outside (0, 1)", c.Epsilon)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 30
	}
	if c.MaxIterations < 1 {
		return c, fmt.Errorf("igi: MaxIterations must be positive")
	}
	return c, nil
}

// Estimator is the IGI/PTR prober.
type Estimator struct {
	cfg Config
}

// New validates the configuration and returns the estimator.
func New(cfg Config) (*Estimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: c}, nil
}

// Name implements core.Estimator.
func (e *Estimator) Name() string {
	if e.cfg.Mode == IGI {
		return "igi"
	}
	return "ptr"
}

// Estimate implements core.Estimator: increase the source gap from the
// initial (fastest) setting until the output gap stops expanding, then
// report PTR or the IGI gap-model estimate at that turning point.
func (e *Estimator) Estimate(ctx context.Context, t core.Transport) (*core.Report, error) {
	c := e.cfg
	start := t.Now()
	gapInit := unit.GapFor(c.PktSize, c.InitRate)
	gap := gapInit
	var streams, packets int
	var bytes unit.Bytes
	var turning *probe.Record
	for iter := 0; iter < c.MaxIterations; iter++ {
		rate := unit.RateOf(c.PktSize, gap)
		spec := probe.Periodic(rate, c.PktSize, c.TrainLen)
		rec, err := core.Probe(ctx, t, spec)
		if err != nil {
			return nil, fmt.Errorf("igi: iteration %d: %w", iter, err)
		}
		streams++
		packets += spec.Count
		bytes += spec.Bytes()
		avgOut := rec.MeanOutputGap()
		if avgOut <= 0 {
			// Unmeasurable train (all pairs lost); slow down and retry.
			gap += time.Duration(float64(gapInit) * c.GapStep)
			continue
		}
		if float64(avgOut-gap) <= c.Epsilon*float64(gap) {
			turning = rec
			break
		}
		gap += time.Duration(float64(gapInit) * c.GapStep)
		turning = rec // keep the latest in case we exhaust iterations
	}
	if turning == nil {
		return nil, fmt.Errorf("igi: no measurable trains")
	}
	var point unit.Rate
	switch c.Mode {
	case IGI:
		point = igiEstimate(turning, c.Capacity, c.PktSize)
	default:
		point = turning.OutputRate()
	}
	if point < 0 {
		point = 0
	}
	return &core.Report{
		Tool:       e.Name(),
		Point:      point,
		Low:        point,
		High:       point,
		Streams:    streams,
		Packets:    packets,
		ProbeBytes: bytes,
		Elapsed:    t.Now() - start,
	}, nil
}

// igiEstimate applies the IGI gap formula at the turning point. A pair
// that is backlogged at the tight link leaves with gap
// g_out = g_B + X/C_t, where g_B is the probe packet's transmission time
// on the tight link and X the cross traffic that slipped between the two
// probes; hence X = C_t·(g_out − g_B). At the turning point the tight
// link runs at ~full utilization (probe rate ≈ A plus cross ≈ C_t), so
// summing over all measurable pairs credits idle time to cross traffic
// only negligibly:
//
//	Rc = C_t · Σ (g_out − g_B)⁺ / Σ g_out,   A = C_t − Rc.
func igiEstimate(rec *probe.Record, capacity unit.Rate, pktSize unit.Bytes) unit.Rate {
	gb := unit.TxTime(pktSize, capacity)
	var cross, total time.Duration
	for k := 0; k+1 < rec.Spec.Count; k++ {
		_, gout, ok := rec.PairGaps(k)
		if !ok {
			continue
		}
		total += gout
		if gout > gb {
			cross += gout - gb
		}
	}
	if total == 0 {
		return 0
	}
	rc := unit.Rate(float64(capacity) * float64(cross) / float64(total))
	a := capacity - rc
	if a < 0 {
		a = 0
	}
	return a
}

var _ core.Estimator = (*Estimator)(nil)
