package igi

import (
	"testing"
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// Legacy private copies of the gap math IGI carried before the shared
// feature layer, kept verbatim as the equivalence reference.

func legacyAverageOutputGap(rec *probe.Record) time.Duration {
	var sum time.Duration
	n := 0
	for k := 0; k+1 < rec.Spec.Count; k++ {
		g := rec.Gap(k)
		if g == probe.Lost || g <= 0 {
			continue
		}
		sum += g
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

func legacyIGIEstimate(rec *probe.Record, capacity unit.Rate, pktSize unit.Bytes) unit.Rate {
	gb := unit.TxTime(pktSize, capacity)
	var cross, total time.Duration
	for k := 0; k+1 < rec.Spec.Count; k++ {
		gout := rec.Gap(k)
		if gout == probe.Lost || gout <= 0 {
			continue
		}
		total += gout
		if gout > gb {
			cross += gout - gb
		}
	}
	if total == 0 {
		return 0
	}
	rc := unit.Rate(float64(capacity) * float64(cross) / float64(total))
	a := capacity - rc
	if a < 0 {
		a = 0
	}
	return a
}

func gapRecord(recvMs []float64) *probe.Record {
	n := len(recvMs)
	r := probe.NewRecord(probe.StreamSpec{PktSize: 750, Count: n})
	for i := range recvMs {
		r.Sent[i] = time.Duration(i) * time.Millisecond
		if recvMs[i] < 0 {
			r.Recv[i] = probe.Lost
		} else {
			r.Recv[i] = time.Duration(recvMs[i] * float64(time.Millisecond))
		}
	}
	return r
}

// TestGapEquivalence pins the feature-layer migration: the shared
// MeanOutputGap and PairGaps-based gap formula are bit-identical to the
// private copies IGI used before, across loss, reordering, and
// duplicate-timestamp records (the canonical measurability convention).
func TestGapEquivalence(t *testing.T) {
	cases := []struct {
		name string
		recv []float64 // ms; negative = lost
	}{
		{"clean", []float64{5, 6, 7.2, 8.1, 9.9}},
		{"withLoss", []float64{5, -1, 7.2, 8.1, -1, 11}},
		{"allLost", []float64{-1, -1, -1, -1}},
		{"duplicates", []float64{5, 5, 6, 6, 7}},
		{"reordered", []float64{5, 8, 6, 9, 7}},
		{"single", []float64{5}},
		{"compressed", []float64{5, 5.1, 5.2, 5.25, 5.3}},
	}
	capacity := 10 * unit.Mbps
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := gapRecord(tc.recv)
			if got, want := r.MeanOutputGap(), legacyAverageOutputGap(r); got != want {
				t.Errorf("MeanOutputGap = %v, legacy = %v", got, want)
			}
			if got, want := igiEstimate(r, capacity, 750), legacyIGIEstimate(r, capacity, 750); got != want {
				t.Errorf("igiEstimate = %v, legacy = %v", got, want)
			}
		})
	}
}
