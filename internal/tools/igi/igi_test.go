package igi

import (
	"context"
	"math"
	"testing"

	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Mode: IGI}); err == nil {
		t.Error("IGI without capacity accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("PTR without init rate accepted")
	}
	if _, err := New(Config{InitRate: 50 * unit.Mbps, TrainLen: 2}); err == nil {
		t.Error("too-short train accepted")
	}
	if _, err := New(Config{InitRate: 50 * unit.Mbps, Epsilon: 1.5}); err == nil {
		t.Error("epsilon >= 1 accepted")
	}
	if _, err := New(Config{InitRate: 50 * unit.Mbps, GapStep: -0.1}); err == nil {
		t.Error("negative gap step accepted")
	}
}

func TestNames(t *testing.T) {
	ptr, err := New(Config{InitRate: 50 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if ptr.Name() != "ptr" {
		t.Errorf("Name = %q, want ptr", ptr.Name())
	}
	ig, err := New(Config{Mode: IGI, Capacity: 50 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if ig.Name() != "igi" {
		t.Errorf("Name = %q, want igi", ig.Name())
	}
}

func TestPTRConvergesCBR(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{InitRate: 50 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if math.Abs(got-25) > 6 {
		t.Errorf("PTR estimate = %.2f Mbps, want ~25", got)
	}
	if rep.Streams < 2 {
		t.Errorf("PTR should iterate: %d streams", rep.Streams)
	}
}

func TestIGIConvergesCBR(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR, CrossSize: 200})
	e, err := New(Config{Mode: IGI, Capacity: sc.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if math.Abs(got-25) > 6 {
		t.Errorf("IGI estimate = %.2f Mbps, want ~25", got)
	}
}

func TestPTRPoissonPlausible(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson, Seed: toolstest.Seed(17)})
	e, err := New(Config{InitRate: 50 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	if got < 12 || got > 33 {
		t.Errorf("PTR estimate under Poisson = %.2f Mbps, want within [12, 33]", got)
	}
}

func TestIGIEstimateClampedNonNegative(t *testing.T) {
	// Heavily bursty traffic must not drive the IGI formula negative.
	sc := toolstest.New(toolstest.Options{Model: toolstest.ParetoOnOff, Seed: toolstest.Seed(23)})
	e, err := New(Config{Mode: IGI, Capacity: sc.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Point < 0 {
		t.Errorf("IGI estimate negative: %v", rep.Point)
	}
}

func TestSixtyPacketDefault(t *testing.T) {
	e, err := New(Config{InitRate: 50 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.TrainLen != 60 {
		t.Errorf("default train length = %d, want 60 (published value)", e.cfg.TrainLen)
	}
}
