package learned

import (
	"context"
	"math"
	"testing"

	"abw/internal/core"
	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing capacity accepted")
	}
	if _, err := New(Config{Capacity: 50 * unit.Mbps, StreamLen: 1}); err == nil {
		t.Error("1-packet stream accepted")
	}
	if _, err := New(Config{Capacity: 50 * unit.Mbps, StreamsPerFrac: -1}); err == nil {
		t.Error("negative streams per rate accepted")
	}
	bad := &Weights{Schema: "nope"}
	if _, err := New(Config{Capacity: 50 * unit.Mbps, Weights: bad}); err == nil {
		t.Error("invalid weights accepted")
	}
}

func TestDefaultsComeFromPlan(t *testing.T) {
	e, err := New(Config{Capacity: 50 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	plan := e.cfg.Weights.Plan
	if e.cfg.StreamLen != plan.StreamLen || e.cfg.PktSize != plan.PktSize || e.cfg.StreamsPerFrac != plan.StreamsPerFrac {
		t.Errorf("config %+v does not follow the weight file's plan %+v", e.cfg, plan)
	}
	if e.Name() != "learned" {
		t.Errorf("Name = %q", e.Name())
	}
}

// TestEstimateCanonicalPath runs the committed weights end-to-end on
// the canonical scenario family the model trained on: a single CBR
// tight link. The tolerance is looser than the analytic tools' — the
// model fits the whole catalog, not this path — but a sane model must
// land well within the capacity scale.
func TestEstimateCanonicalPath(t *testing.T) {
	sc := toolstest.New(toolstest.Options{Model: toolstest.CBR})
	e, err := New(Config{Capacity: sc.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Estimate(context.Background(), sc.Transport)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Point.MbpsOf()
	trueA := sc.TrueAvailBw.MbpsOf()
	if math.Abs(got-trueA) > 10 {
		t.Errorf("estimate = %.2f Mbps, want %.1f ± 10", got, trueA)
	}
	if rep.Low > rep.Point || rep.Point > rep.High {
		t.Errorf("range disordered: low %v point %v high %v", rep.Low, rep.Point, rep.High)
	}
	if rep.Streams != len(e.cfg.Weights.Plan.RateFracs)*e.cfg.StreamsPerFrac {
		t.Errorf("streams = %d, want %d", rep.Streams, len(e.cfg.Weights.Plan.RateFracs)*e.cfg.StreamsPerFrac)
	}
	if rep.Packets <= 0 || rep.ProbeBytes <= 0 || rep.Elapsed <= 0 {
		t.Errorf("effort not accounted: %+v", rep)
	}
	if len(rep.Samples) != rep.Streams {
		t.Errorf("%d samples for %d streams", len(rep.Samples), rep.Streams)
	}
}

// TestEstimateDeterministic pins the registry contract: two estimators
// over identically-seeded scenarios report identical results.
func TestEstimateDeterministic(t *testing.T) {
	run := func() *core.Report {
		sc := toolstest.New(toolstest.Options{Model: toolstest.Poisson})
		e, err := New(Config{Capacity: sc.Capacity})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Estimate(context.Background(), sc.Transport)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Point != b.Point || a.Low != b.Low || a.High != b.High {
		t.Errorf("reports differ across identical runs: %+v vs %+v", a, b)
	}
}

func TestEstimateHonorsContext(t *testing.T) {
	sc := toolstest.New(toolstest.Options{})
	e, err := New(Config{Capacity: sc.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Estimate(ctx, sc.Transport); err == nil {
		t.Error("cancelled context did not abort the estimate")
	}
}
