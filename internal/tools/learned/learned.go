package learned

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"sync"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/stats"
	"abw/internal/unit"
)

// weights.json is the committed trained model; scripts/trainlearned
// regenerates it from the dataset experiment.
//
//go:embed weights.json
var embeddedWeights []byte

var (
	defaultOnce    sync.Once
	defaultWeights *Weights
	defaultErr     error
)

// Default returns the embedded trained weights, parsed once.
func Default() (*Weights, error) {
	defaultOnce.Do(func() {
		defaultWeights, defaultErr = Parse(embeddedWeights)
	})
	return defaultWeights, defaultErr
}

// Parse decodes and validates a weight file.
func Parse(data []byte) (*Weights, error) {
	var w Weights
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("learned: parsing weights: %w", err)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	return &w, nil
}

// Config tunes the estimator. Zero fields take the weight file's probe
// plan.
type Config struct {
	// Capacity is the assumed tight-link capacity C_t (required): the
	// model predicts the dimensionless A/C and scales by it, and the
	// probe plan's rate fractions are fractions of it.
	Capacity unit.Rate
	// Weights is the trained model (default: the embedded weights).
	Weights *Weights
	// StreamLen overrides the plan's packets per stream.
	StreamLen int
	// PktSize overrides the plan's probe packet size.
	PktSize unit.Bytes
	// StreamsPerFrac overrides the plan's streams per rate fraction.
	StreamsPerFrac int
}

func (c Config) withDefaults() (Config, error) {
	if c.Capacity <= 0 {
		return c, fmt.Errorf("learned: tight-link capacity is required (the model predicts A/C)")
	}
	if c.Weights == nil {
		w, err := Default()
		if err != nil {
			return c, err
		}
		c.Weights = w
	} else if err := c.Weights.validate(); err != nil {
		return c, err
	}
	if c.StreamLen == 0 {
		c.StreamLen = c.Weights.Plan.StreamLen
	}
	if c.StreamLen < 2 {
		return c, fmt.Errorf("learned: stream length %d too short", c.StreamLen)
	}
	if c.PktSize == 0 {
		c.PktSize = c.Weights.Plan.PktSize
	}
	if c.PktSize <= 0 {
		return c, fmt.Errorf("learned: packet size must be positive")
	}
	if c.StreamsPerFrac == 0 {
		c.StreamsPerFrac = c.Weights.Plan.StreamsPerFrac
	}
	if c.StreamsPerFrac < 1 {
		return c, fmt.Errorf("learned: need at least one stream per rate")
	}
	return c, nil
}

// Estimator is the learned eighth tool.
type Estimator struct {
	cfg Config
}

// New validates the configuration and returns the estimator.
func New(cfg Config) (*Estimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: c}, nil
}

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "learned" }

// Estimate implements core.Estimator: run the weight file's probe plan
// (periodic streams at fixed fractions of C_t), extract the canonical
// FeatureVector per stream, and take the median of the model's
// per-stream A/C predictions. One prediction per stream keeps the
// online inputs exactly shaped like the training rows.
func (e *Estimator) Estimate(ctx context.Context, t core.Transport) (*core.Report, error) {
	c := e.cfg
	start := t.Now()
	var preds []float64
	var samples []unit.Rate
	var streams, packets int
	var bytes unit.Bytes
	for _, frac := range c.Weights.Plan.RateFracs {
		rate := unit.Rate(float64(c.Capacity) * frac)
		if rate <= 0 {
			continue
		}
		spec := probe.Periodic(rate, c.PktSize, c.StreamLen)
		for s := 0; s < c.StreamsPerFrac; s++ {
			rec, err := core.Probe(ctx, t, spec)
			if err != nil {
				return nil, fmt.Errorf("learned: rate %.0f%%: %w", frac*100, err)
			}
			streams++
			packets += spec.Count
			bytes += spec.Bytes()
			x := ModelInput(probe.ExtractFeatures(rec), frac, c.Capacity.MbpsOf())
			y, err := c.Weights.Predict(x)
			if err != nil {
				return nil, err
			}
			preds = append(preds, y)
			samples = append(samples, probe.ClampToCapacity(unit.Rate(y*float64(c.Capacity)), c.Capacity))
		}
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("learned: probe plan produced no streams")
	}
	// Median over per-stream predictions: streams probing far from the
	// turning point carry little information and occasionally wild
	// predictions; the median keeps them from dragging the point.
	min, max := stats.MinMax(preds)
	point := probe.ClampToCapacity(unit.Rate(stats.Median(preds)*float64(c.Capacity)), c.Capacity)
	return &core.Report{
		Tool:       e.Name(),
		Point:      point,
		Low:        probe.ClampToCapacity(unit.Rate(min*float64(c.Capacity)), c.Capacity),
		High:       probe.ClampToCapacity(unit.Rate(max*float64(c.Capacity)), c.Capacity),
		Streams:    streams,
		Packets:    packets,
		ProbeBytes: bytes,
		Elapsed:    t.Now() - start,
		Samples:    samples,
	}, nil
}

var _ core.Estimator = (*Estimator)(nil)
