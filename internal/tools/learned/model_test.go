package learned

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// trainCase builds a noiseless linear problem y = 0.5 + 0.2·x0 − 0.1·x1
// plus a constant column, the degenerate case standardization must
// survive.
func trainCase() ([][]float64, []float64) {
	var X [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		x0 := float64(i) / 40
		x1 := float64(i%7) / 7
		X = append(X, []float64{x0, x1, 1})
		y = append(y, 0.5+0.2*x0-0.1*x1)
	}
	return X, y
}

func testPlan() ProbePlan {
	return ProbePlan{RateFracs: []float64{0.5}, StreamLen: 20, PktSize: 1000, StreamsPerFrac: 1}
}

func TestTrainRecoversLinearMap(t *testing.T) {
	X, y := trainCase()
	w, err := Train(X, y, TrainConfig{
		Lambda: 1e-6, Blend: 1, // pure ridge, negligible penalty
		Plan: testPlan(), FeatureNames: []string{"x0", "x1", "const"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		got, err := w.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-y[i]) > 1e-3 {
			t.Fatalf("row %d: predict %.5f, want %.5f", i, got, y[i])
		}
	}
	// The constant column must carry no weight.
	if c := w.Ridge.Coef[2]; math.Abs(c) > 1e-9 {
		t.Errorf("constant column coefficient = %g, want 0", c)
	}
}

func TestTrainDeterministic(t *testing.T) {
	X, y := trainCase()
	cfg := TrainConfig{Plan: testPlan(), FeatureNames: []string{"x0", "x1", "const"}}
	a, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two trainings on identical data differ")
	}
}

// TestWeightsJSONRoundTrip pins the round6 contract: serializing the
// trained weights and parsing them back must reproduce bit-identical
// predictions — the committed weight file IS the model.
func TestWeightsJSONRoundTrip(t *testing.T) {
	X, y := trainCase()
	w, err := Train(X, y, TrainConfig{Plan: testPlan(), FeatureNames: []string{"x0", "x1", "const"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		a, _ := w.Predict(x)
		b, _ := back.Predict(x)
		if a != b {
			t.Fatalf("prediction changed across JSON round-trip: %v vs %v", a, b)
		}
	}
}

func TestPredictClampsToUnitInterval(t *testing.T) {
	w := &Weights{
		Schema: WeightsSchema, Plan: testPlan(),
		FeatureNames: []string{"x"},
		Mean:         []float64{0}, Std: []float64{1},
		Ridge: Ridge{Intercept: 0, Coef: []float64{10}},
		Blend: 1,
	}
	if err := w.validate(); err != nil {
		t.Fatal(err)
	}
	if y, _ := w.Predict([]float64{5}); y != 1 {
		t.Errorf("predict(5) = %g, want clamp to 1", y)
	}
	if y, _ := w.Predict([]float64{-5}); y != 0 {
		t.Errorf("predict(-5) = %g, want clamp to 0", y)
	}
}

func TestKNNInterpolatesAndBreaksTiesDeterministically(t *testing.T) {
	w := &Weights{
		Schema: WeightsSchema, Plan: testPlan(),
		FeatureNames: []string{"x"},
		Mean:         []float64{0}, Std: []float64{1},
		Ridge: Ridge{Intercept: 0, Coef: []float64{0}},
		KNN: KNN{
			K: 2,
			X: [][]float64{{-1}, {1}, {3}},
			Y: []float64{0.2, 0.4, 0.9},
		},
		Blend: 0, // pure kNN
	}
	if err := w.validate(); err != nil {
		t.Fatal(err)
	}
	// Query at 0: equidistant from −1 and 1 → equal weights → mean.
	y, err := w.Predict([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-0.3) > 1e-9 {
		t.Errorf("equidistant kNN = %g, want 0.3", y)
	}
	// Query exactly on a memory row: that row dominates.
	y, _ = w.Predict([]float64{3})
	if math.Abs(y-0.9) > 1e-6 {
		t.Errorf("on-row kNN = %g, want ≈0.9", y)
	}
}

func TestTrainThinsKNNMemory(t *testing.T) {
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		X = append(X, []float64{float64(i)})
		y = append(y, float64(i)/100)
	}
	w, err := Train(X, y, TrainConfig{MaxKNNRows: 10, Plan: testPlan(), FeatureNames: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.KNN.X) > 10 {
		t.Errorf("kNN memory %d rows, budget 10", len(w.KNN.X))
	}
}

func TestValidateRejectsBadWeights(t *testing.T) {
	base := func() *Weights {
		return &Weights{
			Schema: WeightsSchema, Plan: testPlan(),
			FeatureNames: []string{"x"},
			Mean:         []float64{0}, Std: []float64{1},
			Ridge: Ridge{Coef: []float64{0}},
			Blend: 0.5,
		}
	}
	cases := []struct {
		name   string
		break_ func(*Weights)
	}{
		{"schema", func(w *Weights) { w.Schema = "nope" }},
		{"dims", func(w *Weights) { w.Std = nil }},
		{"blend", func(w *Weights) { w.Blend = 2 }},
		{"knn-shape", func(w *Weights) { w.KNN = KNN{K: 1, X: [][]float64{{1, 2}}, Y: []float64{0}} }},
		{"knn-k", func(w *Weights) { w.KNN = KNN{K: 0, X: [][]float64{{1}}, Y: []float64{0}} }},
		{"plan", func(w *Weights) { w.Plan.RateFracs = []float64{2} }},
	}
	for _, tc := range cases {
		w := base()
		tc.break_(w)
		if err := w.validate(); err == nil {
			t.Errorf("%s: bad weights accepted", tc.name)
		}
	}
}

func TestTrainRejectsBadShapes(t *testing.T) {
	plan := testPlan()
	if _, err := Train(nil, nil, TrainConfig{Plan: plan}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{0, 1}, TrainConfig{Plan: plan, FeatureNames: []string{"x"}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{0}, TrainConfig{Plan: plan, FeatureNames: []string{"a", "b"}}); err == nil {
		t.Error("name/dim mismatch accepted")
	}
}

func TestRound6(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1.23456789, 1.23457},
		{-1.23456789, -1.23457},
		{0.000123456789, 0.000123457},
		{123456789, 123457000},
	}
	for _, tc := range cases {
		if got := round6(tc.in); got != tc.want {
			t.Errorf("round6(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestDefaultWeightsParse(t *testing.T) {
	w, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Mean) != len(w.FeatureNames) {
		t.Errorf("embedded weights: %d means, %d names", len(w.Mean), len(w.FeatureNames))
	}
}
