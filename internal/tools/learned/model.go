// Package learned implements the eighth estimator: a pure-Go model
// (linear ridge regression blended with k-nearest-neighbors) trained
// offline on the dataset experiment's (features, ground-truth) rows and
// applied online to the same probe.FeatureVector the seven classical
// tools consume. The paper frames every estimator as an ad-hoc mapping
// from probe-stream timing signatures to an avail-bw number; this tool
// makes that mapping explicit and fits it to the scenario catalog
// instead of deriving it from a fluid model.
//
// The model predicts the dimensionless utilization complement A/C from
// dimensionless features, so one set of weights transfers across
// capacities. Weights are serialized JSON (weights.json, committed and
// embedded); scripts/trainlearned regenerates them from the dataset
// experiment.
package learned

import (
	"fmt"
	"math"
	"sort"

	"abw/internal/probe"
	"abw/internal/unit"
)

// ProbePlan is the probing schedule the dataset generator and the
// online estimator share: input rates as fractions of the tight-link
// capacity, stream shape, and repetitions. The plan is stored inside
// the weight file so the features the model sees online can never
// drift from the ones it was trained on.
type ProbePlan struct {
	// RateFracs are the probed input rates as fractions of C_t.
	RateFracs []float64 `json:"rate_fracs"`
	// StreamLen is packets per probing stream.
	StreamLen int `json:"stream_len"`
	// PktSize is the probe packet size in bytes.
	PktSize unit.Bytes `json:"pkt_size"`
	// StreamsPerFrac is how many streams each rate fraction sends.
	StreamsPerFrac int `json:"streams_per_frac"`
}

// DefaultPlan is the plan the committed weights were trained with:
// four rate fractions spanning the turning point, enough streams per
// fraction that the median prediction shakes off per-stream noise.
func DefaultPlan() ProbePlan {
	return ProbePlan{
		RateFracs:      []float64{0.3, 0.5, 0.7, 0.9},
		StreamLen:      120,
		PktSize:        1000,
		StreamsPerFrac: 4,
	}
}

func (p ProbePlan) validate() error {
	if len(p.RateFracs) == 0 {
		return fmt.Errorf("learned: probe plan has no rate fractions")
	}
	for _, f := range p.RateFracs {
		if f <= 0 || f > 1 {
			return fmt.Errorf("learned: rate fraction %g outside (0, 1]", f)
		}
	}
	if p.StreamLen < 2 {
		return fmt.Errorf("learned: stream length %d too short", p.StreamLen)
	}
	if p.PktSize <= 0 {
		return fmt.Errorf("learned: packet size must be positive")
	}
	if p.StreamsPerFrac < 1 {
		return fmt.Errorf("learned: need at least one stream per rate")
	}
	return nil
}

// ModelInput assembles one raw model input from a stream's canonical
// feature vector, the probing rate as a fraction of C_t, and the
// tight-link capacity in Mbps. Training (via the dataset experiment)
// and the online estimator both build inputs here, so they cannot
// drift. Three derived inputs join the raw features:
//
//   - rate_frac: the probed rate R/C — the same feature value means
//     different things at different probing intensities.
//   - log10_capacity: the target A/C is dimensionless, but the
//     queueing-noise features scale with the serialization time, so the
//     model needs to know which capacity regime a stream belongs to.
//   - direct_abw: the fluid-model direct estimate 1 + R/C − gout/gin
//     (the spruce/IGI mapping) when the stream expanded, else 1
//     ("avail-bw is at least the probed rate"). The model learns the
//     per-regime residual corrections to this analytic prior instead of
//     rediscovering the fluid formula from scratch.
func ModelInput(f probe.FeatureVector, rateFrac, capacityMbps float64) []float64 {
	direct := 1.0
	if f.HasGaps && f.GapRatio > 1 {
		direct = 1 + rateFrac - f.GapRatio
	}
	if direct < 0 {
		direct = 0
	}
	return append(f.Values(), rateFrac, math.Log10(capacityMbps), direct)
}

// ModelInputNames returns the input column names matching ModelInput.
func ModelInputNames(featureNames []string) []string {
	return append(featureNames, "rate_frac", "log10_capacity", "direct_abw")
}

// Ridge is the linear half of the model: y ≈ intercept + coef·z over
// standardized inputs z.
type Ridge struct {
	Lambda    float64   `json:"lambda"`
	Intercept float64   `json:"intercept"`
	Coef      []float64 `json:"coef"`
}

// KNN is the memory half: standardized training inputs with their
// targets; prediction is the inverse-distance-weighted mean of the K
// nearest rows.
type KNN struct {
	K int         `json:"k"`
	X [][]float64 `json:"x"`
	Y []float64   `json:"y"`
}

// Weights is the serialized model: standardization statistics, both
// model halves, the blend between them, and the probe plan that
// produced the training features.
type Weights struct {
	Schema       string    `json:"schema"`
	Plan         ProbePlan `json:"plan"`
	FeatureNames []string  `json:"feature_names"`
	Mean         []float64 `json:"mean"`
	Std          []float64 `json:"std"`
	Ridge        Ridge     `json:"ridge"`
	KNN          KNN       `json:"knn"`
	// Blend is the ridge weight in the convex combination
	// blend·ridge + (1−blend)·kNN.
	Blend float64 `json:"blend"`
	// Note records training provenance (seed, row counts).
	Note string `json:"note"`
}

// WeightsSchema identifies the weight-file format.
const WeightsSchema = "abw-learned-weights/1"

func (w *Weights) validate() error {
	if w.Schema != WeightsSchema {
		return fmt.Errorf("learned: weight schema %q, want %q", w.Schema, WeightsSchema)
	}
	if err := w.Plan.validate(); err != nil {
		return err
	}
	dim := len(w.Mean)
	if dim == 0 || len(w.Std) != dim || len(w.Ridge.Coef) != dim {
		return fmt.Errorf("learned: inconsistent dimensions (mean %d, std %d, coef %d)",
			len(w.Mean), len(w.Std), len(w.Ridge.Coef))
	}
	if len(w.KNN.X) != len(w.KNN.Y) {
		return fmt.Errorf("learned: kNN has %d inputs but %d targets", len(w.KNN.X), len(w.KNN.Y))
	}
	for i, x := range w.KNN.X {
		if len(x) != dim {
			return fmt.Errorf("learned: kNN row %d has %d dims, want %d", i, len(x), dim)
		}
	}
	if len(w.KNN.X) > 0 && w.KNN.K < 1 {
		return fmt.Errorf("learned: kNN needs K >= 1")
	}
	if w.Blend < 0 || w.Blend > 1 {
		return fmt.Errorf("learned: blend %g outside [0, 1]", w.Blend)
	}
	return nil
}

// standardize maps a raw input to z-scores under the stored statistics.
func (w *Weights) standardize(x []float64) []float64 {
	z := make([]float64, len(x))
	for i := range x {
		z[i] = (x[i] - w.Mean[i]) / w.Std[i]
	}
	return z
}

// Predict maps one raw model input (feature values plus the probing
// rate fraction) to a predicted A/C in [0, 1].
func (w *Weights) Predict(x []float64) (float64, error) {
	if len(x) != len(w.Mean) {
		return 0, fmt.Errorf("learned: input has %d dims, model wants %d", len(x), len(w.Mean))
	}
	z := w.standardize(x)
	y := w.Ridge.Intercept
	for i, c := range w.Ridge.Coef {
		y += c * z[i]
	}
	if len(w.KNN.X) > 0 {
		y = w.Blend*y + (1-w.Blend)*w.knnPredict(z)
	}
	if y < 0 {
		y = 0
	}
	if y > 1 {
		y = 1
	}
	return y, nil
}

// knnPredict is the inverse-distance-weighted mean of the K nearest
// training rows. Ties in distance resolve by row index, keeping the
// prediction deterministic.
func (w *Weights) knnPredict(z []float64) float64 {
	type cand struct {
		d2  float64
		idx int
	}
	cands := make([]cand, len(w.KNN.X))
	for i, row := range w.KNN.X {
		var d2 float64
		for j := range row {
			d := z[j] - row[j]
			d2 += d * d
		}
		cands[i] = cand{d2, i}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d2 != cands[b].d2 {
			return cands[a].d2 < cands[b].d2
		}
		return cands[a].idx < cands[b].idx
	})
	k := w.KNN.K
	if k > len(cands) {
		k = len(cands)
	}
	var num, den float64
	for _, c := range cands[:k] {
		wt := 1 / (math.Sqrt(c.d2) + 1e-9)
		num += wt * w.KNN.Y[c.idx]
		den += wt
	}
	return num / den
}

// TrainConfig tunes Train. Zero fields take defaults.
type TrainConfig struct {
	// Lambda is the ridge penalty (default 1.0).
	Lambda float64
	// K is the kNN neighborhood (default 5).
	K int
	// Blend is the ridge weight in the final prediction (default 0.3:
	// the memory half dominates, the linear half regularizes
	// extrapolation).
	Blend float64
	// MaxKNNRows bounds the stored kNN memory; training rows beyond it
	// are thinned by a deterministic stride (default 1200).
	MaxKNNRows int
	// Plan records the probe plan the features came from (required).
	Plan ProbePlan
	// FeatureNames documents the input columns (required).
	FeatureNames []string
	// Note records provenance.
	Note string
}

// Train fits the ridge + kNN model on raw inputs X (one row per probe
// stream: feature values plus rate fraction) and targets y (A/C). It is
// deterministic: same inputs, same weights.
func Train(X [][]float64, y []float64, cfg TrainConfig) (*Weights, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("learned: need matching non-empty X (%d) and y (%d)", len(X), len(y))
	}
	dim := len(X[0])
	for i, row := range X {
		if len(row) != dim {
			return nil, fmt.Errorf("learned: row %d has %d dims, want %d", i, len(row), dim)
		}
	}
	if len(cfg.FeatureNames) != dim {
		return nil, fmt.Errorf("learned: %d feature names for %d dims", len(cfg.FeatureNames), dim)
	}
	if err := cfg.Plan.validate(); err != nil {
		return nil, err
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1.0
	}
	if cfg.K == 0 {
		cfg.K = 5
	}
	if cfg.Blend == 0 {
		cfg.Blend = 0.3
	}
	if cfg.MaxKNNRows == 0 {
		cfg.MaxKNNRows = 1200
	}

	w := &Weights{
		Schema:       WeightsSchema,
		Plan:         cfg.Plan,
		FeatureNames: append([]string(nil), cfg.FeatureNames...),
		Blend:        cfg.Blend,
		Note:         cfg.Note,
	}

	// Standardization statistics; constant columns get unit scale so
	// they contribute nothing instead of dividing by zero.
	w.Mean = make([]float64, dim)
	w.Std = make([]float64, dim)
	n := float64(len(X))
	for j := 0; j < dim; j++ {
		var s float64
		for _, row := range X {
			s += row[j]
		}
		w.Mean[j] = s / n
		var ss float64
		for _, row := range X {
			d := row[j] - w.Mean[j]
			ss += d * d
		}
		w.Std[j] = math.Sqrt(ss / n)
		if w.Std[j] == 0 {
			w.Std[j] = 1
		}
	}
	Z := make([][]float64, len(X))
	for i, row := range X {
		Z[i] = w.standardize(row)
	}

	// Ridge via the normal equations on centered targets:
	// (Z'Z + λI) coef = Z'(y − ȳ), intercept = ȳ.
	var ymean float64
	for _, v := range y {
		ymean += v
	}
	ymean /= n
	a := make([][]float64, dim)
	b := make([]float64, dim)
	for j := 0; j < dim; j++ {
		a[j] = make([]float64, dim)
		for l := 0; l <= j; l++ {
			var s float64
			for i := range Z {
				s += Z[i][j] * Z[i][l]
			}
			a[j][l] = s
			if l < j {
				a[l][j] = s
			}
		}
		a[j][j] += cfg.Lambda
		var s float64
		for i := range Z {
			s += Z[i][j] * (y[i] - ymean)
		}
		b[j] = s
	}
	coef, err := solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("learned: ridge solve: %w", err)
	}
	w.Ridge = Ridge{Lambda: cfg.Lambda, Intercept: ymean, Coef: coef}

	// kNN memory: all standardized training rows, thinned by stride when
	// over budget, values rounded so the JSON round-trip is exact.
	stride := 1
	if len(Z) > cfg.MaxKNNRows {
		stride = (len(Z) + cfg.MaxKNNRows - 1) / cfg.MaxKNNRows
	}
	for i := 0; i < len(Z); i += stride {
		w.KNN.X = append(w.KNN.X, roundSlice(Z[i]))
		w.KNN.Y = append(w.KNN.Y, round6(y[i]))
	}
	w.KNN.K = cfg.K
	w.Ridge.Intercept = round6(w.Ridge.Intercept)
	w.Ridge.Coef = roundSlice(w.Ridge.Coef)
	w.Mean = roundSlice(w.Mean)
	w.Std = roundSlice(w.Std)
	return w, w.validate()
}

// solve performs Gaussian elimination with partial pivoting on a·x = b,
// destroying a and b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if a[piv][col] == 0 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// round6 rounds to 6 significant digits: enough precision for the
// model, compact and exactly JSON-round-trippable in the weight file.
func round6(v float64) float64 {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	mag := math.Pow(10, 5-math.Floor(math.Log10(math.Abs(v))))
	return math.Round(v*mag) / mag
}

func roundSlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = round6(v)
	}
	return out
}
