package tcp

import (
	"math"
	"testing"
	"time"

	"abw/internal/crosstraffic"
	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/unit"
)

// testbed builds the standard dumbbell: one bottleneck forward link and
// an uncongested reverse link.
type testbed struct {
	s        *sim.Sim
	fwd, rev *sim.Link
}

func newTestbed(capacity unit.Rate, bufPkts int, rtt time.Duration) *testbed {
	s := sim.New()
	fwd := s.NewLink("bottleneck", capacity, rtt/2)
	if bufPkts > 0 {
		fwd.BufferBytes = unit.Bytes(bufPkts) * 1500
	}
	rev := s.NewLink("reverse", unit.Gbps, rtt/2)
	return &testbed{s: s, fwd: fwd, rev: rev}
}

func (tb *testbed) conn(t *testing.T, cfg Config) *Conn {
	t.Helper()
	c, err := New(tb.s, []*sim.Link{tb.fwd}, []*sim.Link{tb.rev}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	tb := newTestbed(10*unit.Mbps, 0, 10*time.Millisecond)
	cases := []Config{
		{MSS: -1},
		{RcvWnd: -1},
		{InitCwnd: -1},
		{RTOMin: -time.Second},
		{MaxBytes: -1},
	}
	for i, cfg := range cases {
		if _, err := New(tb.s, []*sim.Link{tb.fwd}, nil, 1, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(nil, []*sim.Link{tb.fwd}, nil, 1, Config{}); err == nil {
		t.Error("nil sim accepted")
	}
	if _, err := New(tb.s, nil, nil, 1, Config{}); err == nil {
		t.Error("empty route accepted")
	}
}

func TestBulkSaturatesIdleLink(t *testing.T) {
	// Big window, ample buffer: throughput approaches link capacity
	// (minus header overhead ≈ 2.7%).
	tb := newTestbed(10*unit.Mbps, 0, 20*time.Millisecond)
	c := tb.conn(t, Config{RcvWnd: 200})
	c.Start(0)
	tb.s.RunUntil(10 * time.Second)
	got := c.Throughput(2*time.Second, 10*time.Second).MbpsOf()
	want := 10 * 1460.0 / 1500.0
	if math.Abs(got-want) > 0.5 {
		t.Errorf("bulk throughput = %.2f Mbps, want ~%.2f", got, want)
	}
	if c.Retransmits() != 0 {
		t.Errorf("retransmits on a lossless path: %d", c.Retransmits())
	}
}

func TestWindowLimitedThroughput(t *testing.T) {
	// Small Wr on a fat link: rate = Wr·MSS/RTT, the size-limited regime
	// of Figure 7.
	rtt := 40 * time.Millisecond
	tb := newTestbed(100*unit.Mbps, 0, rtt)
	const wr = 10
	c := tb.conn(t, Config{RcvWnd: wr})
	c.Start(0)
	tb.s.RunUntil(10 * time.Second)
	got := c.Throughput(2*time.Second, 10*time.Second).MbpsOf()
	want := float64(wr) * 1460 * 8 / rtt.Seconds() / 1e6 // ≈ 2.92 Mbps
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("window-limited throughput = %.2f Mbps, want ~%.2f", got, want)
	}
}

func TestThroughputScalesWithWindowUntilSaturation(t *testing.T) {
	rtt := 40 * time.Millisecond
	prev := 0.0
	for _, wr := range []int{4, 8, 16, 32} {
		tb := newTestbed(20*unit.Mbps, 0, rtt)
		c := tb.conn(t, Config{RcvWnd: wr})
		c.Start(0)
		tb.s.RunUntil(8 * time.Second)
		got := c.Throughput(2*time.Second, 8*time.Second).MbpsOf()
		if got < prev-0.2 {
			t.Errorf("Wr=%d: throughput %.2f fell below Wr/2 value %.2f", wr, got, prev)
		}
		prev = got
	}
}

func TestSlowStartThenCongestionAvoidance(t *testing.T) {
	// With a tiny buffer the connection must lose, recover, and still
	// deliver data; cwnd must have been cut at least once.
	tb := newTestbed(10*unit.Mbps, 10, 20*time.Millisecond)
	c := tb.conn(t, Config{RcvWnd: 400})
	c.Start(0)
	tb.s.RunUntil(10 * time.Second)
	if c.Retransmits() == 0 {
		t.Error("expected losses and retransmissions with a 10-packet buffer")
	}
	got := c.Throughput(2*time.Second, 10*time.Second).MbpsOf()
	if got < 5 {
		t.Errorf("post-loss throughput = %.2f Mbps, want > 5 (recovery works)", got)
	}
	if got > 9.8 {
		t.Errorf("throughput %.2f exceeds capacity", got)
	}
}

func TestSizeLimitedTransferCompletes(t *testing.T) {
	tb := newTestbed(10*unit.Mbps, 0, 10*time.Millisecond)
	c := tb.conn(t, Config{RcvWnd: 50, MaxBytes: 100_000})
	c.Start(0)
	tb.s.RunUntil(30 * time.Second)
	if !c.Done() {
		t.Fatal("size-limited transfer did not complete")
	}
	if got := c.AckedBytes(); got < 100_000 {
		t.Errorf("acked %d bytes, want >= 100000", got)
	}
}

func TestTransferCompletesDespiteLoss(t *testing.T) {
	tb := newTestbed(5*unit.Mbps, 5, 20*time.Millisecond)
	c := tb.conn(t, Config{RcvWnd: 100, MaxBytes: 300_000})
	c.Start(0)
	tb.s.RunUntil(60 * time.Second)
	if !c.Done() {
		t.Fatalf("lossy transfer did not complete (acked %d)", c.AckedBytes())
	}
}

func TestTwoFlowsShareRoughlyFairly(t *testing.T) {
	tb := newTestbed(10*unit.Mbps, 40, 20*time.Millisecond)
	a, err := New(tb.s, []*sim.Link{tb.fwd}, []*sim.Link{tb.rev}, 1, Config{RcvWnd: 200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(tb.s, []*sim.Link{tb.fwd}, []*sim.Link{tb.rev}, 2, Config{RcvWnd: 200})
	if err != nil {
		t.Fatal(err)
	}
	a.Start(0)
	b.Start(100 * time.Millisecond)
	tb.s.RunUntil(30 * time.Second)
	ta := a.Throughput(5*time.Second, 30*time.Second).MbpsOf()
	tbr := b.Throughput(5*time.Second, 30*time.Second).MbpsOf()
	sum := ta + tbr
	if sum < 8.5 {
		t.Errorf("two flows total %.2f Mbps, want near capacity", sum)
	}
	ratio := ta / tbr
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 3 {
		t.Errorf("unfair split: %.2f vs %.2f Mbps", ta, tbr)
	}
}

func TestUnresponsiveCrossTrafficBoundsThroughput(t *testing.T) {
	// 35 Mbps unresponsive cross traffic on a 50 Mbps link: TCP gets at
	// most ~avail-bw (15 Mbps) once buffers are bounded.
	tb := newTestbed(50*unit.Mbps, 60, 40*time.Millisecond)
	ct := crosstraffic.Poisson(crosstraffic.Stream{Rate: 35 * unit.Mbps}, rng.New(1))
	ct.Run(tb.s, []*sim.Link{tb.fwd}, 0, 30*time.Second)
	c := tb.conn(t, Config{RcvWnd: 400})
	c.Start(time.Second)
	tb.s.RunUntil(30 * time.Second)
	got := c.Throughput(5*time.Second, 30*time.Second).MbpsOf()
	if got > 17 {
		t.Errorf("throughput %.2f Mbps exceeds avail-bw 15 against unresponsive traffic", got)
	}
	if got < 6 {
		t.Errorf("throughput %.2f Mbps implausibly low", got)
	}
}

func TestResponsiveCrossTrafficYieldsMoreThanAvailBw(t *testing.T) {
	// The heart of Figure 7: with window-limited TCP cross traffic the
	// bulk transfer can exceed the nominal avail-bw, because the "cross
	// traffic" cannot use more than its window while our transfer can.
	tb := newTestbed(50*unit.Mbps, 100, 40*time.Millisecond)
	// Cross: 5 window-limited TCPs, each ~7 Mbps when alone → A ≈ 15.
	for i := 0; i < 5; i++ {
		cc, err := New(tb.s, []*sim.Link{tb.fwd}, []*sim.Link{tb.rev}, 100+i, Config{RcvWnd: 24})
		if err != nil {
			t.Fatal(err)
		}
		cc.Start(time.Duration(i) * 50 * time.Millisecond)
	}
	c := tb.conn(t, Config{RcvWnd: 400})
	c.Start(time.Second)
	tb.s.RunUntil(30 * time.Second)
	got := c.Throughput(5*time.Second, 30*time.Second).MbpsOf()
	if got < 15 {
		t.Errorf("against window-limited cross traffic throughput = %.2f Mbps, want > nominal avail-bw 15", got)
	}
}

func TestRTTEstimation(t *testing.T) {
	tb := newTestbed(10*unit.Mbps, 0, 30*time.Millisecond)
	c := tb.conn(t, Config{RcvWnd: 4})
	c.Start(0)
	tb.s.RunUntil(5 * time.Second)
	if c.srtt < 0.029 || c.srtt > 0.05 {
		t.Errorf("srtt = %.4fs, want ~0.03-0.05", c.srtt)
	}
}

func TestThroughputWindowEdges(t *testing.T) {
	tb := newTestbed(10*unit.Mbps, 0, 10*time.Millisecond)
	c := tb.conn(t, Config{RcvWnd: 50})
	c.Start(0)
	tb.s.RunUntil(5 * time.Second)
	if got := c.Throughput(3*time.Second, 3*time.Second); got != 0 {
		t.Errorf("empty window throughput = %v, want 0", got)
	}
	if got := c.Throughput(4*time.Second, 3*time.Second); got != 0 {
		t.Errorf("inverted window throughput = %v, want 0", got)
	}
}

func TestMiceValidation(t *testing.T) {
	if _, err := NewMice(MiceConfig{}); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := NewMice(MiceConfig{OfferedLoad: 10 * unit.Mbps, Shape: 0.9}); err == nil {
		t.Error("shape <= 1 accepted")
	}
	m, err := NewMice(MiceConfig{OfferedLoad: 10 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	tb := newTestbed(50*unit.Mbps, 0, 10*time.Millisecond)
	if err := m.Run(nil, []*sim.Link{tb.fwd}, nil, 0, time.Second, 0, rng.New(1)); err == nil {
		t.Error("nil sim accepted")
	}
	if err := m.Run(tb.s, []*sim.Link{tb.fwd}, nil, 0, time.Second, 0, nil); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestMiceOfferedLoad(t *testing.T) {
	tb := newTestbed(100*unit.Mbps, 0, 20*time.Millisecond)
	m, err := NewMice(MiceConfig{OfferedLoad: 20 * unit.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(tb.s, []*sim.Link{tb.fwd}, []*sim.Link{tb.rev}, 0, 20*time.Second, 1000, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	tb.s.RunUntil(25 * time.Second)
	rate := unit.RateOf(m.AckedBytes(), 20*time.Second).MbpsOf()
	// Heavy-tailed flow sizes converge slowly; ±40% over 20 s.
	if rate < 12 || rate > 28 {
		t.Errorf("mice delivered %.2f Mbps, want ~20±40%%", rate)
	}
	if len(m.Flows()) < 20 {
		t.Errorf("only %d flows started", len(m.Flows()))
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() unit.Bytes {
		tb := newTestbed(20*unit.Mbps, 30, 20*time.Millisecond)
		ct := crosstraffic.Poisson(crosstraffic.Stream{Rate: 10 * unit.Mbps}, rng.New(5))
		ct.Run(tb.s, []*sim.Link{tb.fwd}, 0, 10*time.Second)
		c, err := New(tb.s, []*sim.Link{tb.fwd}, []*sim.Link{tb.rev}, 1, Config{RcvWnd: 100})
		if err != nil {
			t.Fatal(err)
		}
		c.Start(0)
		tb.s.RunUntil(10 * time.Second)
		return c.AckedBytes()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay differs: %d vs %d bytes", a, b)
	}
}
