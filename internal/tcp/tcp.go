// Package tcp implements a packet-level TCP Reno sender/receiver pair on
// the discrete-event simulator: slow start, congestion avoidance, fast
// retransmit/recovery, retransmission timeouts, and — centrally for the
// paper's Figure 7 — the receiver advertised window Wr that caps the
// sending window regardless of congestion state.
//
// The paper's tenth pitfall is evaluating avail-bw estimators against
// bulk TCP throughput; this package exists to regenerate the evidence:
// TCP throughput depends on Wr, buffering, RTT, loss and cross-traffic
// responsiveness, and can land on either side of the avail-bw.
package tcp

import (
	"fmt"
	"sort"
	"time"

	"abw/internal/eventq"
	"abw/internal/sim"
	"abw/internal/unit"
)

// Config tunes a connection. Zero fields take defaults.
type Config struct {
	// MSS is the payload bytes per segment (default 1460; the wire
	// segment adds 40 bytes of headers).
	MSS unit.Bytes
	// RcvWnd is the receiver advertised window in segments — the Wr of
	// Figure 7 (default 64).
	RcvWnd int
	// InitCwnd is the initial congestion window in segments (default 2).
	InitCwnd int
	// RTOMin floors the retransmission timeout (default 200 ms).
	RTOMin time.Duration
	// MaxBytes ends the transfer after that much payload is acked;
	// 0 means a persistent (bulk) transfer.
	MaxBytes unit.Bytes
}

func (c Config) withDefaults() (Config, error) {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.MSS <= 0 {
		return c, fmt.Errorf("tcp: MSS must be positive")
	}
	if c.RcvWnd == 0 {
		c.RcvWnd = 64
	}
	if c.RcvWnd < 1 {
		return c, fmt.Errorf("tcp: receiver window must be at least 1 segment")
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 2
	}
	if c.InitCwnd < 1 {
		return c, fmt.Errorf("tcp: initial cwnd must be at least 1 segment")
	}
	if c.RTOMin == 0 {
		c.RTOMin = 200 * time.Millisecond
	}
	if c.RTOMin <= 0 {
		return c, fmt.Errorf("tcp: RTOMin must be positive")
	}
	if c.MaxBytes < 0 {
		return c, fmt.Errorf("tcp: negative MaxBytes")
	}
	return c, nil
}

const headerBytes = 40 // TCP/IP header overhead per segment
const ackBytes = 40    // pure ACK size on the wire

// Conn is one simulated TCP connection transferring data over a forward
// route with ACKs on a reverse route.
type Conn struct {
	s        *sim.Sim
	fwd, rev []*sim.Link
	cfg      Config
	flow     int

	// Sender state (sequence numbers count segments, not bytes).
	nextSeq     int
	highestAck  int // first unacked segment
	cwnd        float64
	ssthresh    float64
	dupAcks     int
	inRecovery  bool
	recoverSeq  int
	sendTimes   map[int]time.Duration // segment → first-send time (Karn)
	srtt, rttvr float64               // seconds
	rtoTimer    eventq.Handle
	rtoBackoff  int
	done        bool

	// Receiver state.
	rcvNext  int
	outOfOrd map[int]bool

	// Progress record: (time, cumulative acked segments), for
	// throughput measurement over arbitrary windows.
	progress []progressPoint

	// Stats.
	retransmits int
	timeouts    int
	startAt     time.Duration
}

type progressPoint struct {
	at    time.Duration
	acked int
}

// New creates a connection over the given routes. The forward route
// carries data segments; the reverse route carries ACKs. Both may share
// links (two-way traffic over the same bottleneck) or be disjoint (the
// usual asymmetric-measurement setup).
func New(s *sim.Sim, fwd, rev []*sim.Link, flow int, cfg Config) (*Conn, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if s == nil || len(fwd) == 0 {
		return nil, fmt.Errorf("tcp: simulation and a forward route are required")
	}
	return &Conn{
		s:         s,
		fwd:       fwd,
		rev:       rev,
		cfg:       c,
		flow:      flow,
		cwnd:      float64(c.InitCwnd),
		ssthresh:  1 << 20, // effectively unbounded until the first loss
		sendTimes: make(map[int]time.Duration),
		outOfOrd:  make(map[int]bool),
	}, nil
}

// Start begins the transfer at the given virtual time.
func (c *Conn) Start(at time.Duration) {
	c.s.At(at, func() {
		c.startAt = c.s.Now()
		c.progress = append(c.progress, progressPoint{at: c.s.Now(), acked: 0})
		c.pump()
	})
}

// window returns the current send window in whole segments.
func (c *Conn) window() int {
	w := c.cwnd
	if rw := float64(c.cfg.RcvWnd); rw < w {
		w = rw
	}
	if w < 1 {
		w = 1
	}
	return int(w)
}

// totalSegments returns the transfer length in segments, or -1 for a
// persistent transfer.
func (c *Conn) totalSegments() int {
	if c.cfg.MaxBytes == 0 {
		return -1
	}
	n := int((c.cfg.MaxBytes + c.cfg.MSS - 1) / c.cfg.MSS)
	if n < 1 {
		n = 1
	}
	return n
}

// maxBurst bounds how many new segments one ACK (or timeout) may
// release — the ns-2-style "maxburst" guard against the line-rate bursts
// that follow large cumulative ACKs.
const maxBurst = 8

// pump sends as many new segments as the window allows, up to maxBurst.
func (c *Conn) pump() {
	if c.done {
		return
	}
	total := c.totalSegments()
	sent := 0
	for c.nextSeq < c.highestAck+c.window() && sent < maxBurst {
		if total >= 0 && c.nextSeq >= total {
			break
		}
		c.sendSegment(c.nextSeq, false)
		c.nextSeq++
		sent++
	}
	c.armRTO()
}

// sendSegment transmits one segment (fresh or retransmission).
func (c *Conn) sendSegment(seq int, isRetransmit bool) {
	if isRetransmit {
		c.retransmits++
		delete(c.sendTimes, seq) // Karn: no RTT sample from retransmits
	} else if _, seen := c.sendTimes[seq]; !seen {
		c.sendTimes[seq] = c.s.Now()
	}
	pkt := &sim.Packet{
		Size:  c.cfg.MSS + headerBytes,
		Kind:  sim.KindData,
		Flow:  c.flow,
		Seq:   seq,
		Route: c.fwd,
		OnArrive: func(p *sim.Packet, _ time.Duration) {
			c.onData(p.Seq)
		},
	}
	c.s.Inject(pkt, c.s.Now())
}

// onData runs at the receiver: advance the cumulative ACK point and send
// an ACK (possibly a duplicate).
func (c *Conn) onData(seq int) {
	if seq == c.rcvNext {
		c.rcvNext++
		for c.outOfOrd[c.rcvNext] {
			delete(c.outOfOrd, c.rcvNext)
			c.rcvNext++
		}
	} else if seq > c.rcvNext {
		c.outOfOrd[seq] = true
	}
	ack := c.rcvNext
	pkt := &sim.Packet{
		Size:  ackBytes,
		Kind:  sim.KindAck,
		Flow:  c.flow,
		Seq:   ack,
		Route: c.rev,
		OnArrive: func(p *sim.Packet, _ time.Duration) {
			c.onAck(p.Seq)
		},
	}
	c.s.Inject(pkt, c.s.Now())
}

// onAck runs at the sender.
func (c *Conn) onAck(ack int) {
	if c.done {
		return
	}
	if ack > c.highestAck {
		newly := ack - c.highestAck
		// RTT sample from the highest newly acked segment that was
		// never retransmitted.
		if t0, ok := c.sendTimes[ack-1]; ok {
			c.updateRTT((c.s.Now() - t0).Seconds())
		}
		for s := c.highestAck; s < ack; s++ {
			delete(c.sendTimes, s)
		}
		c.highestAck = ack
		c.dupAcks = 0
		c.rtoBackoff = 0
		if c.inRecovery {
			if ack > c.recoverSeq {
				c.inRecovery = false
				c.cwnd = c.ssthresh
			} else {
				// Partial ACK (NewReno): retransmit the next hole.
				c.sendSegment(ack, true)
			}
		} else if c.cwnd < c.ssthresh {
			// Slow start per RFC 5681: at most one segment per ACK,
			// regardless of how much the cumulative ACK advanced —
			// otherwise a post-recovery cumulative ACK would inflate
			// cwnd in one step and the resulting line-rate burst would
			// overflow the bottleneck buffer again.
			c.cwnd++
		} else {
			inc := float64(newly) / c.cwnd
			if inc > 1 {
				inc = 1
			}
			c.cwnd += inc // congestion avoidance
		}
		c.progress = append(c.progress, progressPoint{at: c.s.Now(), acked: ack})
		if total := c.totalSegments(); total >= 0 && ack >= total {
			c.done = true
			c.disarmRTO()
			return
		}
		c.pump()
		return
	}
	// Duplicate ACK.
	c.dupAcks++
	if c.dupAcks == 3 && !c.inRecovery {
		flight := float64(c.nextSeq - c.highestAck)
		c.ssthresh = flight / 2
		if c.ssthresh < 2 {
			c.ssthresh = 2
		}
		c.cwnd = c.ssthresh + 3
		c.inRecovery = true
		c.recoverSeq = c.nextSeq
		c.sendSegment(c.highestAck, true) // fast retransmit
		c.armRTO()
	} else if c.inRecovery {
		c.cwnd++ // inflate per additional dup ACK
		c.pump()
	}
}

func (c *Conn) updateRTT(sample float64) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvr = sample / 2
		return
	}
	const alpha, beta = 0.125, 0.25
	diff := sample - c.srtt
	if diff < 0 {
		diff = -diff
	}
	c.rttvr = (1-beta)*c.rttvr + beta*diff
	c.srtt = (1-alpha)*c.srtt + alpha*sample
}

// rto returns the current retransmission timeout.
func (c *Conn) rto() time.Duration {
	base := c.cfg.RTOMin
	if c.srtt > 0 {
		d := time.Duration((c.srtt + 4*c.rttvr) * 1e9)
		if d > base {
			base = d
		}
	}
	return base << uint(c.rtoBackoff)
}

func (c *Conn) armRTO() {
	c.disarmRTO()
	if c.done || c.highestAck >= c.nextSeq {
		return // nothing in flight
	}
	c.rtoTimer = c.s.After(c.rto(), c.onTimeout)
}

func (c *Conn) disarmRTO() {
	// Cancel tolerates stale handles (fired or recycled events), so no
	// pending check is needed.
	c.s.Cancel(c.rtoTimer)
	c.rtoTimer = eventq.Handle{}
}

// onTimeout handles an RTO: collapse to slow start and go back to the
// first unacked segment. Rewinding nextSeq (go-back-N) is what lets the
// sender recover from multiple losses in one window — without it, later
// holes would only ever be repaired one per RTO and throughput would
// collapse. The receiver's reassembly buffer turns the redundant
// retransmissions into fast cumulative-ACK jumps.
func (c *Conn) onTimeout() {
	if c.done || c.highestAck >= c.nextSeq {
		return
	}
	c.timeouts++
	flight := float64(c.nextSeq - c.highestAck)
	c.ssthresh = flight / 2
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.cwnd = 1
	c.inRecovery = false
	c.dupAcks = 0
	if c.rtoBackoff < 6 {
		c.rtoBackoff++
	}
	// Karn's algorithm: anything beyond the rewind point may be sent
	// twice, so none of it can produce an RTT sample.
	for s := c.highestAck; s < c.nextSeq; s++ {
		delete(c.sendTimes, s)
	}
	c.retransmits += c.nextSeq - c.highestAck
	c.nextSeq = c.highestAck
	c.pump()
}

// Done reports whether a size-limited transfer has completed.
func (c *Conn) Done() bool { return c.done }

// AckedBytes returns the payload bytes cumulatively acked.
func (c *Conn) AckedBytes() unit.Bytes {
	return unit.Bytes(c.highestAck) * c.cfg.MSS
}

// Retransmits returns the retransmission count.
func (c *Conn) Retransmits() int { return c.retransmits }

// Timeouts returns the RTO count.
func (c *Conn) Timeouts() int { return c.timeouts }

// Throughput returns the goodput over [from, to): payload bytes newly
// acked in the window divided by its length.
func (c *Conn) Throughput(from, to time.Duration) unit.Rate {
	if to <= from || len(c.progress) == 0 {
		return 0
	}
	ackedAt := func(at time.Duration) int {
		// Latest progress point with time <= at.
		i := sort.Search(len(c.progress), func(i int) bool { return c.progress[i].at > at })
		if i == 0 {
			return 0
		}
		return c.progress[i-1].acked
	}
	segs := ackedAt(to) - ackedAt(from)
	if segs <= 0 {
		return 0
	}
	return unit.RateOf(unit.Bytes(segs)*c.cfg.MSS, to-from)
}
