package tcp

import (
	"testing"
	"time"

	"abw/internal/sim"
	"abw/internal/unit"
)

func TestRTOFiresOnTotalLoss(t *testing.T) {
	// A 1-byte buffer cannot even hold one queued segment during
	// transmission bursts; force the very first flight to lose its tail
	// and verify the RTO path recovers the transfer.
	s := sim.New()
	fwd := s.NewLink("bottleneck", 2*unit.Mbps, 10*time.Millisecond)
	fwd.BufferBytes = 1
	rev := s.NewLink("reverse", unit.Gbps, 10*time.Millisecond)
	c, err := New(s, []*sim.Link{fwd}, []*sim.Link{rev}, 1, Config{RcvWnd: 8, MaxBytes: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	s.RunUntil(2 * time.Minute)
	if !c.Done() {
		t.Fatalf("transfer stuck: acked %d bytes, %d timeouts", c.AckedBytes(), c.Timeouts())
	}
	if c.Timeouts() == 0 {
		t.Error("expected at least one RTO with a 1-byte buffer")
	}
}

func TestRTOBackoffResetsOnProgress(t *testing.T) {
	s := sim.New()
	fwd := s.NewLink("bottleneck", 10*unit.Mbps, 10*time.Millisecond)
	fwd.BufferBytes = 6000
	rev := s.NewLink("reverse", unit.Gbps, 10*time.Millisecond)
	c, err := New(s, []*sim.Link{fwd}, []*sim.Link{rev}, 1, Config{RcvWnd: 64})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	s.RunUntil(20 * time.Second)
	// After 20s of a functioning (if lossy) connection the backoff must
	// not be pinned at its cap: progress resets it.
	if c.rtoBackoff >= 6 {
		t.Errorf("rtoBackoff stuck at cap: %d", c.rtoBackoff)
	}
	if c.AckedBytes() == 0 {
		t.Error("no progress at all")
	}
}

func TestRTOGrowsWithBackoff(t *testing.T) {
	s := sim.New()
	fwd := s.NewLink("l", 10*unit.Mbps, time.Millisecond)
	c, err := New(s, []*sim.Link{fwd}, nil, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := c.rto()
	c.rtoBackoff = 3
	if got := c.rto(); got != base<<3 {
		t.Errorf("rto with backoff 3 = %v, want %v", got, base<<3)
	}
}

func TestRTOUsesSRTT(t *testing.T) {
	s := sim.New()
	fwd := s.NewLink("l", 10*unit.Mbps, time.Millisecond)
	c, err := New(s, []*sim.Link{fwd}, nil, 1, Config{RTOMin: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.updateRTT(0.100) // first sample: srtt=100ms, rttvar=50ms
	want := time.Duration((0.100 + 4*0.050) * 1e9)
	if got := c.rto(); got != want {
		t.Errorf("rto = %v, want %v (srtt + 4*rttvar)", got, want)
	}
}

func TestWindowNeverBelowOneSegment(t *testing.T) {
	s := sim.New()
	fwd := s.NewLink("l", 10*unit.Mbps, time.Millisecond)
	c, err := New(s, []*sim.Link{fwd}, nil, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.cwnd = 0.3
	if got := c.window(); got != 1 {
		t.Errorf("window = %d, want floor of 1", got)
	}
}

func TestAckToDoneConnIgnored(t *testing.T) {
	s := sim.New()
	fwd := s.NewLink("l", 10*unit.Mbps, time.Millisecond)
	c, err := New(s, []*sim.Link{fwd}, nil, 1, Config{MaxBytes: 1460})
	if err != nil {
		t.Fatal(err)
	}
	c.done = true
	c.onAck(5) // must not panic or mutate
	if c.highestAck != 0 {
		t.Error("ack processed on a done connection")
	}
}

func TestTotalSegmentsRounding(t *testing.T) {
	s := sim.New()
	fwd := s.NewLink("l", 10*unit.Mbps, time.Millisecond)
	c, err := New(s, []*sim.Link{fwd}, nil, 1, Config{MaxBytes: 1461})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.totalSegments(); got != 2 {
		t.Errorf("totalSegments(1461B) = %d, want 2", got)
	}
	c2, err := New(s, []*sim.Link{fwd}, nil, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.totalSegments(); got != -1 {
		t.Errorf("persistent transfer totalSegments = %d, want -1", got)
	}
}
