package tcp

import (
	"fmt"
	"time"

	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/unit"
)

// MiceConfig parameterizes an aggregate of short TCP transfers — the
// "many short TCP transfers" cross traffic of Figure 7. Flows arrive as
// a Poisson process; flow sizes are bounded-Pareto, the canonical
// heavy-tailed "mice and elephants" mix.
type MiceConfig struct {
	// OfferedLoad is the target long-run rate of the aggregate.
	OfferedLoad unit.Rate
	// MeanFlowBytes is the mean transfer size (default 40 kB).
	MeanFlowBytes unit.Bytes
	// Shape is the bounded-Pareto shape of flow sizes (default 1.3).
	Shape float64
	// MaxFlowBytes caps flow sizes (default 200·MeanFlowBytes).
	MaxFlowBytes unit.Bytes
	// RcvWnd is each flow's advertised window in segments (default 32).
	RcvWnd int
	// MSS is each flow's segment payload (default 1460).
	MSS unit.Bytes
}

func (c MiceConfig) withDefaults() (MiceConfig, error) {
	if c.OfferedLoad <= 0 {
		return c, fmt.Errorf("tcp: mice offered load must be positive")
	}
	if c.MeanFlowBytes == 0 {
		c.MeanFlowBytes = 40_000
	}
	if c.MeanFlowBytes <= 0 {
		return c, fmt.Errorf("tcp: mean flow size must be positive")
	}
	if c.Shape == 0 {
		c.Shape = 1.3
	}
	if c.Shape <= 1 {
		return c, fmt.Errorf("tcp: flow-size shape must exceed 1")
	}
	if c.MaxFlowBytes == 0 {
		c.MaxFlowBytes = 200 * c.MeanFlowBytes
	}
	if c.MaxFlowBytes < c.MeanFlowBytes {
		return c, fmt.Errorf("tcp: flow-size cap below the mean")
	}
	if c.RcvWnd == 0 {
		c.RcvWnd = 32
	}
	if c.RcvWnd < 1 {
		return c, fmt.Errorf("tcp: mice receiver window must be positive")
	}
	if c.MSS == 0 {
		c.MSS = 1460
	}
	return c, nil
}

// Mice is the short-flow workload generator.
type Mice struct {
	cfg   MiceConfig
	conns []*Conn
}

// NewMice validates the configuration.
func NewMice(cfg MiceConfig) (*Mice, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Mice{cfg: c}, nil
}

// Run schedules flow arrivals on [from, until). Each flow is a
// size-limited TCP connection over the given routes. flowBase offsets
// the flow IDs so mice do not collide with other connections' IDs.
func (m *Mice) Run(s *sim.Sim, fwd, rev []*sim.Link, from, until time.Duration, flowBase int, r *rng.Rand) error {
	if s == nil || len(fwd) == 0 {
		return fmt.Errorf("tcp: mice need a simulation and a forward route")
	}
	if r == nil {
		return fmt.Errorf("tcp: mice need a random source")
	}
	c := m.cfg
	// Poisson flow arrivals at rate λ = load / mean size.
	meanGapSec := float64(c.MeanFlowBytes.Bits()) / float64(c.OfferedLoad)
	// Bounded-Pareto xm from the mean: for shape a and cap b,
	// E = a·xm/(a−1)·(1−(xm/b)^{a−1})/(1−(xm/b)^a) ≈ a·xm/(a−1) when
	// b >> xm; we use the simple form and rely on the cap being large.
	xm := float64(c.MeanFlowBytes) * (c.Shape - 1) / c.Shape
	flow := flowBase
	var step func()
	at := from
	step = func() {
		if at >= until {
			return
		}
		size := unit.Bytes(r.BoundedPareto(c.Shape, xm, float64(c.MaxFlowBytes)))
		if size < c.MSS {
			size = c.MSS
		}
		conn, err := New(s, fwd, rev, flow, Config{
			MSS:      c.MSS,
			RcvWnd:   c.RcvWnd,
			MaxBytes: size,
		})
		if err == nil {
			m.conns = append(m.conns, conn)
			conn.Start(s.Now())
		}
		flow++
		at += time.Duration(r.Exp(meanGapSec) * 1e9)
		s.At(at, step)
	}
	s.At(from, step)
	return nil
}

// Flows returns the connections started so far.
func (m *Mice) Flows() []*Conn { return m.conns }

// AckedBytes sums payload delivered across all flows.
func (m *Mice) AckedBytes() unit.Bytes {
	var total unit.Bytes
	for _, c := range m.conns {
		total += c.AckedBytes()
	}
	return total
}
