// Package fgn synthesizes fractional Gaussian noise (fGn), the canonical
// exactly self-similar stationary process with Hurst parameter H. The
// paper's Equation (5) states that for such a process the variance of the
// aggregated (time-averaged) series decays as k^{-2(1-H)} instead of the
// IID law k^{-1}; this package provides the process those property tests
// and the long-range-dependent trace synthesis are built on.
//
// The generator uses the Davies–Harte circulant embedding method, which
// is exact: the output has precisely the fGn autocovariance
//
//	γ(k) = σ²/2 (|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H}).
package fgn

import (
	"fmt"
	"math"

	"abw/internal/fft"
	"abw/internal/rng"
)

// Autocov returns the theoretical autocovariance of unit-variance fGn
// with Hurst parameter h at lag k ≥ 0.
func Autocov(h float64, k int) float64 {
	if k == 0 {
		return 1
	}
	fk := float64(k)
	p := 2 * h
	return 0.5 * (math.Pow(fk+1, p) - 2*math.Pow(fk, p) + math.Pow(fk-1, p))
}

// Generator produces fixed-length sample paths of fGn with a given Hurst
// parameter. The spectral factorization is done once at construction;
// each Sample call costs two FFTs.
type Generator struct {
	h    float64
	n    int       // requested path length
	m    int       // circulant size (power of two, ≥ 2n)
	sqrt []float64 // sqrt of circulant eigenvalues
}

// NewGenerator builds a generator for length-n paths of fGn with Hurst
// parameter h in (0, 1). H = 0.5 reduces to white Gaussian noise;
// 0.5 < H < 1 gives long-range dependence (the regime of interest for
// Internet traffic, typically H ≈ 0.7–0.9).
func NewGenerator(h float64, n int) (*Generator, error) {
	if h <= 0 || h >= 1 {
		return nil, fmt.Errorf("fgn: Hurst parameter %g outside (0, 1)", h)
	}
	if n <= 0 {
		return nil, fmt.Errorf("fgn: path length %d must be positive", n)
	}
	m := fft.NextPow2(2 * n)
	// First row of the circulant embedding matrix: autocovariances
	// wrapped around the circle.
	row := make([]complex128, m)
	for i := 0; i <= m/2; i++ {
		row[i] = complex(Autocov(h, i), 0)
	}
	for i := m/2 + 1; i < m; i++ {
		row[i] = row[m-i]
	}
	if err := fft.Forward(row); err != nil {
		return nil, err
	}
	sqrtEig := make([]float64, m)
	for i, v := range row {
		ev := real(v)
		// For fGn the circulant eigenvalues are nonnegative in theory;
		// clamp tiny negative values caused by floating-point noise.
		if ev < 0 {
			if ev < -1e-6 {
				return nil, fmt.Errorf("fgn: circulant embedding failed (eigenvalue %g at %d)", ev, i)
			}
			ev = 0
		}
		sqrtEig[i] = math.Sqrt(ev)
	}
	return &Generator{h: h, n: n, m: m, sqrt: sqrtEig}, nil
}

// H returns the generator's Hurst parameter.
func (g *Generator) H() float64 { return g.h }

// Len returns the sample path length.
func (g *Generator) Len() int { return g.n }

// Sample draws one zero-mean, unit-variance fGn path of length Len().
func (g *Generator) Sample(r *rng.Rand) ([]float64, error) {
	m := g.m
	w := make([]complex128, m)
	// Complex Gaussian spectral weights with the Hermitian structure the
	// Davies–Harte construction requires.
	w[0] = complex(r.Norm()*g.sqrt[0], 0)
	w[m/2] = complex(r.Norm()*g.sqrt[m/2], 0)
	inv := 1 / math.Sqrt(2)
	for k := 1; k < m/2; k++ {
		a := r.Norm() * inv
		b := r.Norm() * inv
		w[k] = complex(a*g.sqrt[k], b*g.sqrt[k])
		w[m-k] = complex(a*g.sqrt[m-k], -b*g.sqrt[m-k])
	}
	if err := fft.Forward(w); err != nil {
		return nil, err
	}
	scale := 1 / math.Sqrt(float64(m))
	out := make([]float64, g.n)
	for i := range out {
		out[i] = real(w[i]) * scale
	}
	return out, nil
}

// CumulativeFBM integrates an fGn path into fractional Brownian motion
// increments starting at 0, useful for building rate-modulated traffic
// envelopes.
func CumulativeFBM(path []float64) []float64 {
	out := make([]float64, len(path)+1)
	for i, v := range path {
		out[i+1] = out[i] + v
	}
	return out
}
