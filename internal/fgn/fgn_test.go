package fgn

import (
	"math"
	"testing"

	"abw/internal/rng"
)

func TestAutocovKnownValues(t *testing.T) {
	// H = 0.5 (white noise): γ(0)=1, γ(k)=0 for k>0.
	if got := Autocov(0.5, 0); got != 1 {
		t.Errorf("Autocov(0.5, 0) = %g, want 1", got)
	}
	for k := 1; k < 5; k++ {
		if got := Autocov(0.5, k); math.Abs(got) > 1e-12 {
			t.Errorf("Autocov(0.5, %d) = %g, want 0", k, got)
		}
	}
	// H > 0.5: positive correlation at all lags.
	for k := 1; k < 100; k++ {
		if got := Autocov(0.8, k); got <= 0 {
			t.Errorf("Autocov(0.8, %d) = %g, want > 0", k, got)
		}
	}
	// H < 0.5: negative correlation at lag 1.
	if got := Autocov(0.3, 1); got >= 0 {
		t.Errorf("Autocov(0.3, 1) = %g, want < 0", got)
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	for _, h := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewGenerator(h, 100); err == nil {
			t.Errorf("NewGenerator(h=%g) accepted invalid Hurst", h)
		}
	}
	if _, err := NewGenerator(0.8, 0); err == nil {
		t.Error("NewGenerator(n=0) accepted")
	}
}

func TestSampleMoments(t *testing.T) {
	g, err := NewGenerator(0.75, 4096)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	var sum, sumSq float64
	n := 0
	for trial := 0; trial < 20; trial++ {
		path, err := g.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range path {
			sum += v
			sumSq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("fGn mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("fGn variance = %g, want ~1", variance)
	}
}

func TestLagOneAutocorrelation(t *testing.T) {
	// Empirical lag-1 autocorrelation should match γ(1) = 2^{2H-1} − 1.
	for _, h := range []float64{0.6, 0.8, 0.9} {
		g, err := NewGenerator(h, 8192)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(42)
		var num, den float64
		for trial := 0; trial < 10; trial++ {
			path, err := g.Sample(r)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i+1 < len(path); i++ {
				num += path[i] * path[i+1]
				den += path[i] * path[i]
			}
		}
		got := num / den
		want := Autocov(h, 1)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("H=%g: lag-1 autocorr = %g, want ~%g", h, got, want)
		}
	}
}

// aggregatedVariance computes Var of the k-aggregated series, the
// quantity in the paper's Equations (4) and (5).
func aggregatedVariance(path []float64, k int) float64 {
	n := len(path) / k
	if n < 2 {
		return math.NaN()
	}
	agg := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < k; j++ {
			s += path[i*k+j]
		}
		agg[i] = s / float64(k)
	}
	var mean float64
	for _, v := range agg {
		mean += v
	}
	mean /= float64(n)
	var variance float64
	for _, v := range agg {
		variance += (v - mean) * (v - mean)
	}
	return variance / float64(n-1)
}

func TestEquation4IIDVarianceLaw(t *testing.T) {
	// Paper Eq. (4): for an IID process, Var[A_τk] = Var[A_τ]/k.
	// fGn with H = 0.5 is IID Gaussian, so the aggregated variance must
	// fall by ~k when we aggregate over k samples.
	g, err := NewGenerator(0.5, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	path, err := g.Sample(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	v1 := aggregatedVariance(path, 1)
	for _, k := range []int{4, 16, 64} {
		vk := aggregatedVariance(path, k)
		want := v1 / float64(k)
		if vk <= 0 || math.Abs(vk-want)/want > 0.35 {
			t.Errorf("H=0.5 k=%d: aggregated variance = %g, Eq.(4) predicts %g", k, vk, want)
		}
	}
}

func TestEquation5SelfSimilarVarianceLaw(t *testing.T) {
	// Paper Eq. (5): for exactly self-similar traffic with Hurst H,
	// Var[A_τk] = Var[A_τ] / k^{2(1-H)} — slower decay than IID. Fit the
	// decay exponent from the variance–time relation and compare to
	// 2(1-H).
	for _, h := range []float64{0.7, 0.85} {
		g, err := NewGenerator(h, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		path, err := g.Sample(rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		ks := []int{1, 2, 4, 8, 16, 32, 64}
		var sx, sy, sxx, sxy float64
		for _, k := range ks {
			x := math.Log(float64(k))
			y := math.Log(aggregatedVariance(path, k))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		n := float64(len(ks))
		slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
		wantSlope := -2 * (1 - h)
		if math.Abs(slope-wantSlope) > 0.15 {
			t.Errorf("H=%g: variance-time slope = %g, Eq.(5) predicts %g", h, slope, wantSlope)
		}
	}
}

func TestSelfSimilarDecaysSlowerThanIID(t *testing.T) {
	// The qualitative claim behind the paper's first pitfall: at equal
	// k, an LRD process retains much more aggregate variance than IID.
	gIID, err := NewGenerator(0.5, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	gLRD, err := NewGenerator(0.9, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	pIID, err := gIID.Sample(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	pLRD, err := gLRD.Sample(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	const k = 64
	ratioIID := aggregatedVariance(pIID, k) / aggregatedVariance(pIID, 1)
	ratioLRD := aggregatedVariance(pLRD, k) / aggregatedVariance(pLRD, 1)
	if ratioLRD < 4*ratioIID {
		t.Errorf("LRD aggregate-variance ratio %g not clearly above IID ratio %g", ratioLRD, ratioIID)
	}
}

func TestCumulativeFBM(t *testing.T) {
	path := []float64{1, -2, 3}
	got := CumulativeFBM(path)
	want := []float64{0, 1, -1, 2}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CumulativeFBM = %v, want %v", got, want)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	g, err := NewGenerator(0.8, 256)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.Sample(rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Sample(rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fGn paths")
		}
	}
}
