package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"abw/internal/rng"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		got, err := Map(context.Background(), &Pool{Workers: workers}, 20,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	// The determinism contract: jobs deriving their randomness from
	// (seed, index) alone produce identical results at every worker
	// count.
	draw := func(i int) (float64, error) {
		r := rng.Derive(42, fmt.Sprintf("trial%d", i))
		return r.Exp(1) + r.Pareto(1.5, 1), nil
	}
	serial, err := Map(context.Background(), &Pool{Workers: 1}, 64,
		func(_ context.Context, i int) (float64, error) { return draw(i) })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := Map(context.Background(), &Pool{Workers: workers}, 64,
			func(_ context.Context, i int) (float64, error) { return draw(i) })
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: results differ from serial run", workers)
		}
	}
}

func TestMapPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	res, err := Map(context.Background(), &Pool{Workers: 4}, 100,
		func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 3 {
				return 0, boom
			}
			// Give the canceled context a chance to stop later jobs.
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if res != nil {
		t.Fatalf("results should be nil on error, got %d values", len(res))
	}
	if n := ran.Load(); n == 100 {
		t.Error("error did not stop the queue: all 100 jobs ran")
	}
}

func TestMapHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	done := make(chan struct{})
	go func() {
		<-done
		cancel()
	}()
	_, err := Map(ctx, &Pool{Workers: 2}, 1000,
		func(ctx context.Context, i int) (int, error) {
			if started.Add(1) == 2 {
				close(done)
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Millisecond):
				return i, nil
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n == 1000 {
		t.Error("cancellation did not stop the queue")
	}
}

func TestMapProgressReachesTotal(t *testing.T) {
	var calls []int
	p := &Pool{Workers: 4, OnProgress: func(done, total int) {
		if total != 30 {
			t.Errorf("total = %d, want 30", total)
		}
		calls = append(calls, done) // serialized by the pool
	}}
	if _, err := Map(context.Background(), p, 30,
		func(_ context.Context, i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 30 {
		t.Fatalf("progress calls = %d, want 30", len(calls))
	}
	seen := make(map[int]bool)
	for _, d := range calls {
		if d < 1 || d > 30 || seen[d] {
			t.Fatalf("bad progress sequence: %v", calls)
		}
		seen[d] = true
	}
}

func TestMapZeroAndNil(t *testing.T) {
	if res, err := Map[int](context.Background(), nil, 0, nil); err != nil || res != nil {
		t.Fatalf("n=0: res=%v err=%v", res, err)
	}
	res, err := Map(context.Background(), nil, 3,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(res) != 3 {
		t.Fatalf("nil pool: res=%v err=%v", res, err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if w := Workers(); w != 3 {
		t.Fatalf("Workers() = %d, want 3", w)
	}
	SetWorkers(0)
	if w := Workers(); w < 1 {
		t.Fatalf("Workers() = %d, want >= 1", w)
	}
	SetWorkers(-5)
	if w := Workers(); w < 1 {
		t.Fatalf("Workers() after negative set = %d, want >= 1", w)
	}
}

func TestAllUsesDefaultPool(t *testing.T) {
	res, err := All(5, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"0", "1", "2", "3", "4"}; !reflect.DeepEqual(res, want) {
		t.Fatalf("All = %v, want %v", res, want)
	}
	if _, err := All(2, func(i int) (int, error) { return 0, errors.New("nope") }); err == nil {
		t.Fatal("All swallowed the error")
	}
}

func TestSetProgressObservesDefaultPool(t *testing.T) {
	defer SetProgress(nil)
	var last atomic.Int64
	var calls atomic.Int64
	SetProgress(func(done, total int) {
		if total != 7 {
			t.Errorf("total = %d, want 7", total)
		}
		if int64(done) <= last.Load() {
			t.Errorf("done counter not strictly increasing: %d after %d", done, last.Load())
		}
		last.Store(int64(done))
		calls.Add(1)
	})
	if _, err := All(7, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 7 {
		t.Fatalf("progress calls = %d, want 7", calls.Load())
	}
	SetProgress(nil)
	if _, err := All(3, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 7 {
		t.Fatal("SetProgress(nil) did not remove the callback")
	}
}
