package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Result is the structured record of one experiment run: what ran, how
// it was configured, how long it took, and the experiment's own result
// payload. cmd/abwsim writes one Result per experiment under -json so
// that EXPERIMENTS.md (and any downstream analysis) regenerates from
// data rather than from hand-copied numbers.
type Result struct {
	// Name is the experiment's CLI name (fig1, table1, ...).
	Name string `json:"name"`
	// Seed is the experiment seed the run used.
	Seed uint64 `json:"seed"`
	// Quick records whether reduced trial counts were used.
	Quick bool `json:"quick"`
	// Workers is the pool size the run used.
	Workers int `json:"workers"`
	// ElapsedMS is the wall-clock run time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Payload is the experiment's full result struct.
	Payload any `json:"payload,omitempty"`
	// Table is the rendered paper-vs-measured view of Payload.
	Table any `json:"table,omitempty"`
}

// WriteJSON writes the result as <dir>/<name>.json, creating dir if
// needed.
func (r *Result) WriteJSON(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("runner: %w", err)
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("runner: marshal %s: %w", r.Name, err)
	}
	path := filepath.Join(dir, r.Name+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("runner: %w", err)
	}
	return path, nil
}
