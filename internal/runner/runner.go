// Package runner is the shared concurrent trial engine behind every
// experiment in internal/exp. An experiment expresses its trial loop as
// a set of independent, index-addressed jobs; the runner executes them
// on a bounded worker pool and returns the results in index order.
//
// Determinism contract: a job must derive all of its randomness from
// the experiment seed and its own index (see rng.Derive) and must not
// share mutable state with other jobs. Under that contract the results
// are bit-identical for every worker count, including 1 — the
// per-figure determinism tests assert exactly this — so parallelism is
// purely a wall-clock optimization, never a statistical one.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide worker count used by Do. Zero
// means "one worker per CPU". cmd/abwsim's -parallel flag and the
// determinism tests set it; everything else should leave it alone.
var defaultWorkers atomic.Int64

// SetWorkers sets the worker count used by the default pool. n <= 0
// resets to one worker per CPU (GOMAXPROCS).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers reports the worker count the default pool will use.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Pool executes independent jobs concurrently. The zero value is ready
// to use and runs one worker per CPU.
type Pool struct {
	// Workers is the number of concurrent workers; <= 0 means one per
	// CPU (GOMAXPROCS).
	Workers int
	// OnProgress, if set, is called after each job completes with the
	// number of completed jobs and the total. Calls are serialized.
	OnProgress func(done, total int)
}

func (p *Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(ctx, i) for every i in [0, n) on the pool's workers and
// returns the n results in index order, independent of scheduling. The
// first error cancels the context passed to in-flight jobs, stops
// unstarted ones, and is returned; results are nil in that case. A nil
// pool behaves like the zero Pool.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapShards(ctx, p, n, func(ctx context.Context, i, _ int) (T, error) {
		return fn(ctx, i)
	})
}

// MapShards is Map for jobs that want worker-affine state: fn
// additionally receives the shard index — the stable identity of the
// worker goroutine running it, in [0, workers). Jobs with the same
// shard index never run concurrently, so a job may freely reuse
// per-shard resources (memory arenas, scratch buffers) indexed by it.
//
// The determinism contract is unchanged and the shard index must not
// influence results: which jobs land on which shard depends on
// scheduling. Shards are memory affinity, never semantics.
func MapShards[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i, shard int) (T, error)) ([]T, error) {
	if p == nil {
		p = &Pool{}
	}
	if n <= 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	jobs := make(chan int, n) // bounded queue: all indices, workers drain it
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		done     atomic.Int64
		progMu   sync.Mutex
	)
	for w := p.workers(n); w > 0; w-- {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				v, err := fn(ctx, i, shard)
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				results[i] = v
				if p.OnProgress != nil {
					// Count under the lock so the callback sees a
					// strictly increasing done counter.
					progMu.Lock()
					p.OnProgress(int(done.Add(1)), n)
					progMu.Unlock()
				}
			}
		}(w - 1)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// defaultProgress, if set, observes every default-pool job (see
// SetProgress). Stored as a pointer so the atomic holds a comparable
// type.
var defaultProgress atomic.Pointer[func(done, total int)]

// SetProgress installs a progress callback on the default pool used by
// All: it is invoked, serialized, after every trial with the completed
// and total counts of that experiment's current fan-out. Pass nil to
// remove it. cmd/abwsim's -progress flag is the intended caller.
func SetProgress(fn func(done, total int)) {
	if fn == nil {
		defaultProgress.Store(nil)
		return
	}
	defaultProgress.Store(&fn)
}

// All runs fn(i) for every i in [0, n) on the default pool (see
// SetWorkers, SetProgress) and returns the results in index order. It
// is the convenience the experiments use for their trial loops.
func All[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return AllShards(n, func(i, _ int) (T, error) { return fn(i) })
}

// AllShards is All with the shard index passed through (see MapShards):
// the default-pool entry point for experiments that keep per-worker
// arenas. The shard index must not influence results.
func AllShards[T any](n int, fn func(i, shard int) (T, error)) ([]T, error) {
	p := &Pool{Workers: Workers()}
	if cb := defaultProgress.Load(); cb != nil {
		p.OnProgress = *cb
	}
	return MapShards(context.Background(), p, n,
		func(_ context.Context, i, shard int) (T, error) { return fn(i, shard) })
}
