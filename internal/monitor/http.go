package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"abw/internal/livenet"
)

// ReceiverStats mirrors livenet.Stats with JSON tags: the wire shape
// shared by the monitor's /api/status, its /metrics, and cmd/abwprobe's
// -stats-json — one encoder, three surfaces.
type ReceiverStats struct {
	ActiveSessions   int    `json:"active_sessions"`
	ActiveStreams    int    `json:"active_streams"`
	Sessions         uint64 `json:"sessions"`
	Streams          uint64 `json:"streams"`
	Packets          uint64 `json:"packets"`
	Drops            uint64 `json:"drops"`
	SizeMismatches   uint64 `json:"size_mismatches"`
	SourceMismatches uint64 `json:"source_mismatches"`
	Refused          uint64 `json:"refused"`
	Batches          uint64 `json:"batches"`
	RcvBufBytes      int    `json:"rcvbuf_bytes"`
	KernelTimestamps bool   `json:"kernel_timestamps"`
}

// FromReceiver converts a receiver's counters to the wire shape.
func FromReceiver(st livenet.Stats) ReceiverStats {
	return ReceiverStats{
		ActiveSessions:   st.ActiveSessions,
		ActiveStreams:    st.ActiveStreams,
		Sessions:         st.Sessions,
		Streams:          st.Streams,
		Packets:          st.Packets,
		Drops:            st.Drops,
		SizeMismatches:   st.SizeMismatches,
		SourceMismatches: st.SourceMismatches,
		Refused:          st.Refused,
		Batches:          st.Batches,
		RcvBufBytes:      st.RcvBufBytes,
		KernelTimestamps: st.KernelTimestamps,
	}
}

// EncodeReceiverStats writes a receiver's counters as one line of JSON.
func EncodeReceiverStats(w io.Writer, st livenet.Stats) error {
	b, err := json.Marshal(FromReceiver(st))
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// SeriesInfo is one series' listing entry: identity plus rollup, the
// shape /api/series returns.
type SeriesInfo struct {
	Target  string `json:"target"`
	Tool    string `json:"tool"`
	Tenant  string `json:"tenant"`
	Len     int    `json:"len"`
	Evicted uint64 `json:"evicted,omitempty"`
	Rollup  Rollup `json:"rollup"`
}

// Status is the /api/status document.
type Status struct {
	Time     time.Time      `json:"time"`
	Monitor  Stats          `json:"monitor"`
	Ledger   LedgerStats    `json:"ledger"`
	Receiver *ReceiverStats `json:"receiver,omitempty"`
}

// Status assembles the full status document (also used by the CLI's
// final report, not just HTTP).
func (m *Monitor) Status() Status {
	st := Status{
		Time:    m.clock.Now(),
		Monitor: m.Stats(),
		Ledger:  m.ledger.Stats(),
	}
	if m.cfg.Receiver != nil {
		rs := FromReceiver(m.cfg.Receiver.Stats())
		st.Receiver = &rs
	}
	return st
}

// Handler returns the monitor's HTTP surface:
//
//	GET /api/status              scheduler + ledger (+ receiver) counters
//	GET /api/series              every series' identity and rollup
//	GET /api/series/<target>/<tool>?n=N   the series' last N points
//	GET /metrics                 Prometheus text exposition
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.Status())
	})
	mux.HandleFunc("/api/series", func(w http.ResponseWriter, r *http.Request) {
		all := m.store.All()
		infos := make([]SeriesInfo, 0, len(all))
		for _, s := range all {
			infos = append(infos, SeriesInfo{
				Target: s.Target, Tool: s.Tool, Tenant: s.Tenant,
				Len: s.Len(), Evicted: s.Evicted(), Rollup: s.Rollup(),
			})
		}
		sort.Slice(infos, func(i, j int) bool {
			if infos[i].Target != infos[j].Target {
				return infos[i].Target < infos[j].Target
			}
			return infos[i].Tool < infos[j].Tool
		})
		writeJSON(w, infos)
	})
	mux.HandleFunc("/api/series/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/api/series/")
		s, ok := m.store.Lookup(key)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown series %q", key), http.StatusNotFound)
			return
		}
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("bad n %q", q), http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, struct {
			SeriesInfo
			Points []Point `json:"points"`
		}{
			SeriesInfo: SeriesInfo{
				Target: s.Target, Tool: s.Tool, Tenant: s.Tenant,
				Len: s.Len(), Evicted: s.Evicted(), Rollup: s.Rollup(),
			},
			Points: s.Last(n),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.writeMetrics(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, "abwmonitor: /api/status /api/series /api/series/<target>/<tool> /metrics\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// writeMetrics renders the Prometheus text exposition format by hand —
// the format is three line shapes (# HELP, # TYPE, sample), not worth a
// dependency.
func (m *Monitor) writeMetrics(w io.Writer) {
	st := m.Stats()
	led := m.ledger.Stats()

	g := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	c := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, fmtFloat(v))
	}

	g("abw_monitor_targets", "Scheduled measurement assignments.", float64(st.Targets))
	g("abw_monitor_scheduled", "Sessions currently scheduled: queued or running.", float64(st.Scheduled))
	g("abw_monitor_active", "Estimation runs in flight.", float64(st.Active))
	head(w, "abw_monitor_runs_total", "Completed estimation runs by result.", "counter")
	sample(w, "abw_monitor_runs_total", lbl{"result", "ok"}, float64(st.RunsOK))
	sample(w, "abw_monitor_runs_total", lbl{"result", "err"}, float64(st.RunsErr))
	head(w, "abw_monitor_admission_total", "Ledger admission decisions.", "counter")
	sample(w, "abw_monitor_admission_total", lbl{"decision", "admitted"}, float64(led.Admitted))
	sample(w, "abw_monitor_admission_total", lbl{"decision", "deferred"}, float64(led.Deferred))
	sample(w, "abw_monitor_admission_total", lbl{"decision", "refused"}, float64(led.Refused))
	c("abw_monitor_overruns_total", "Runs that finished after their next slot was due.", float64(st.Overruns))
	c("abw_monitor_sim_recompiles_total", "Sim scenarios recompiled after horizon exhaustion.", float64(st.Recompiles))
	c("abw_monitor_redials_total", "Live transports discarded as broken.", float64(st.Redials))
	c("abw_monitor_points_total", "Series points appended.", float64(st.Points))
	g("abw_monitor_budget_streams", "Probing streams charged against the fleet budget.", float64(led.Streams))
	g("abw_monitor_budget_packets", "Probe packets charged against the fleet budget.", float64(led.Packets))
	g("abw_monitor_budget_bytes", "Probe bytes charged against the fleet budget.", float64(led.Bytes))
	g("abw_monitor_window_bytes", "Probe bytes charged inside the current rate window.", float64(led.WindowBytes))
	if led.WindowCap > 0 {
		g("abw_monitor_window_cap_bytes", "Most probe bytes the rate window may hold.", float64(led.WindowCap))
	}
	if len(led.Tenants) > 0 {
		head(w, "abw_monitor_tenant_admissions_total", "Per-tenant admission decisions.", "counter")
		for _, ts := range led.Tenants {
			sample(w, "abw_monitor_tenant_admissions_total", lbl{"tenant", ts.Tenant}, float64(ts.Admitted), lbl{"decision", "admitted"})
			sample(w, "abw_monitor_tenant_admissions_total", lbl{"tenant", ts.Tenant}, float64(ts.Deferred), lbl{"decision", "deferred"})
			sample(w, "abw_monitor_tenant_admissions_total", lbl{"tenant", ts.Tenant}, float64(ts.Refused), lbl{"decision", "refused"})
		}
	}

	all := m.store.All()
	if len(all) > 0 {
		head(w, "abw_monitor_estimate_bps", "Most recent successful avail-bw estimate.", "gauge")
		for _, s := range all {
			r := s.Rollup()
			if r.Count == r.Errors {
				continue
			}
			sample(w, "abw_monitor_estimate_bps", lbl{"target", s.Target}, float64(r.Last), lbl{"tool", s.Tool})
		}
		head(w, "abw_monitor_variation_low_bps", "Lowest variation-range bound in the buffered window.", "gauge")
		for _, s := range all {
			r := s.Rollup()
			if r.Count == r.Errors {
				continue
			}
			sample(w, "abw_monitor_variation_low_bps", lbl{"target", s.Target}, float64(r.VarLow), lbl{"tool", s.Tool})
		}
		head(w, "abw_monitor_variation_high_bps", "Highest variation-range bound in the buffered window.", "gauge")
		for _, s := range all {
			r := s.Rollup()
			if r.Count == r.Errors {
				continue
			}
			sample(w, "abw_monitor_variation_high_bps", lbl{"target", s.Target}, float64(r.VarHigh), lbl{"tool", s.Tool})
		}
		head(w, "abw_monitor_series_errors", "Buffered points carrying an error.", "gauge")
		for _, s := range all {
			sample(w, "abw_monitor_series_errors", lbl{"target", s.Target}, float64(s.Rollup().Errors), lbl{"tool", s.Tool})
		}
	}

	if m.cfg.Receiver != nil {
		rs := FromReceiver(m.cfg.Receiver.Stats())
		g("abw_receiver_active_sessions", "Control connections currently open.", float64(rs.ActiveSessions))
		g("abw_receiver_active_streams", "Streams opened but not yet reported or reaped.", float64(rs.ActiveStreams))
		c("abw_receiver_sessions_total", "Sessions ever accepted.", float64(rs.Sessions))
		c("abw_receiver_streams_total", "Streams ever opened.", float64(rs.Streams))
		c("abw_receiver_packets_total", "Probe packets stamped into a stream.", float64(rs.Packets))
		c("abw_receiver_drops_total", "Datagrams discarded.", float64(rs.Drops))
		c("abw_receiver_refused_total", "Sessions refused at the session limit.", float64(rs.Refused))
		c("abw_receiver_ingest_batches_total", "Ingest batches drained from the probe socket.", float64(rs.Batches))
		g("abw_receiver_rcvbuf_bytes", "Receive buffer the kernel granted on the probe socket.", float64(rs.RcvBufBytes))
		kts := 0.0
		if rs.KernelTimestamps {
			kts = 1
		}
		g("abw_receiver_kernel_timestamps", "1 when arrival stamps come from kernel RX timestamps.", kts)
	}
}

type lbl struct{ k, v string }

func head(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one labeled sample line; labels are sorted by key for a
// stable exposition.
func sample(w io.Writer, name string, first lbl, v float64, rest ...lbl) {
	labels := append([]lbl{first}, rest...)
	sort.Slice(labels, func(i, j int) bool { return labels[i].k < labels[j].k })
	parts := make([]string, len(labels))
	for i, l := range labels {
		// strconv.Quote's escaping (backslash, quote, \n) is exactly the
		// exposition format's label escaping.
		parts[i] = l.k + "=" + strconv.Quote(l.v)
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, strings.Join(parts, ","), fmtFloat(v))
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
