// Package monitor is the fleet-scale continuous measurement service:
// the layer that turns one-shot estimation runs into the ongoing,
// variability-aware process the paper insists avail-bw estimation must
// be. A single probe is a sample of a bursty process (pitfall 1); the
// monitor schedules periodic estimates for N targets × tools, stores
// each series in a fixed-capacity ring with variation-range rollups,
// and serves the result over HTTP (JSON and Prometheus text).
//
// Scale discipline comes from admission control: every scheduled run
// must reserve its probing cost with a fleet-wide Ledger — a shared,
// concurrency-safe core.Budget plus an aggregate probe-rate cap — so
// the total load the fleet injects is bounded by construction, however
// many tenants share the receiver fleet. That is the paper's
// intrusiveness pitfall solved where it actually bites: not per tool,
// per fleet.
//
// Targets come in two flavors: live (a receiver's control address,
// probed over livenet.Pool sessions) and simulated (a scenario-catalog
// name compiled onto the deterministic simulator) — the latter makes
// the whole service hermetic for CI and load tests. All scheduling
// runs against an injectable Clock; under a FakeClock the monitor's
// behavior is a pure function of (config, seed, advance script).
package monitor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"abw/internal/core"
	"abw/internal/livenet"
	"abw/internal/tools/registry"
	"abw/internal/unit"
)

// Target is one scheduled measurement assignment: a tool running
// periodically against a live receiver or a simulated scenario.
type Target struct {
	// Name identifies the target in series keys, stats, and metrics.
	// Names must be unique per tool.
	Name string
	// Tenant is the admission-accounting group (default "default"):
	// budget fairness is per fleet, attribution is per tenant.
	Tenant string
	// Tool is the registered estimation technique to run (see
	// registry.Names).
	Tool string

	// Addr is a live receiver's control address. Exactly one of Addr
	// and Scenario must be set.
	Addr string
	// Scenario is a scenario-catalog name; runs probe the compiled
	// simulated path, consecutive runs observing consecutive slices of
	// its cross-traffic process.
	Scenario string

	// Interval overrides Config.Interval for this target.
	Interval time.Duration
	// Params parameterizes the tool (zero fields take the tool's
	// defaults). Rand and Budget are run wiring owned by the monitor
	// and must be left nil/zero; for sim targets a zero Capacity is
	// filled from the scenario's ground truth.
	Params registry.Params
	// EstBytes overrides the projected per-run probe volume used for
	// admission until the first run reports actuals.
	EstBytes unit.Bytes
}

// Config assembles a Monitor.
type Config struct {
	// Targets are the scheduled assignments (at least one).
	Targets []Target
	// Interval is the default time between a target's runs (default
	// 10 s).
	Interval time.Duration
	// Jitter spreads each target's runs by a uniform draw in
	// ±Jitter×interval (default 0.1, clamped to [0, 0.5]). Jitter is
	// per tenant and deterministic in Seed, so a thousand targets
	// configured identically do not fire as one thundering herd.
	Jitter float64
	// Seed drives every random choice the monitor makes (jitter,
	// per-run tool randomness, sim recompilation seeds) through pure
	// rng.Derive streams.
	Seed uint64
	// MaxConcurrent bounds the estimation runs in flight at once
	// (default 16).
	MaxConcurrent int
	// History is each series' ring-buffer capacity in points (default
	// 512).
	History int
	// Budget is the fleet-wide lifetime probing budget shared by every
	// run across every tenant; zero fields are unlimited.
	Budget core.Budget
	// MaxProbeRate caps the fleet's aggregate probe volume per second
	// (admission-deferred above it); zero is unlimited.
	MaxProbeRate unit.Rate
	// RateWindow is the sliding window MaxProbeRate is enforced over
	// (default 1 s).
	RateWindow time.Duration
	// RunTimeout bounds one estimation run's wall time; on expiry a
	// live run's transport is closed to unblock it (default 2 min).
	RunTimeout time.Duration
	// PoolSize is the number of sessions dialed per distinct live
	// receiver address (default min(4, MaxConcurrent)).
	PoolSize int
	// SnapshotPath, when set, persists the store there every
	// SnapshotEvery (default 1 min) and restores from it at startup.
	SnapshotPath  string
	SnapshotEvery time.Duration
	// Retention, when positive, compacts points older than this from
	// the store before each snapshot.
	Retention time.Duration
	// Clock is the time source; nil means the real clock.
	Clock Clock
	// Receiver, when set, is an in-process live receiver whose stats
	// the monitor's HTTP layer exposes alongside its own.
	Receiver *livenet.Receiver
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter > 0.5 {
		c.Jitter = 0.5
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.History <= 0 {
		c.History = 512
	}
	if c.RateWindow <= 0 {
		c.RateWindow = time.Second
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 2 * time.Minute
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
		if c.MaxConcurrent < 4 {
			c.PoolSize = c.MaxConcurrent
		}
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = time.Minute
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// Stats is a snapshot of the monitor's counters.
type Stats struct {
	// Targets is the number of scheduled assignments; Scheduled is how
	// many are currently waiting in the schedule or running — the
	// "concurrently scheduled sessions" the service sustains.
	Targets   int `json:"targets"`
	Scheduled int `json:"scheduled"`
	// Active is the estimation runs in flight right now.
	Active int `json:"active"`
	// RunsOK and RunsErr count completed runs by outcome; Deferred and
	// Refused count admission decisions that kept a run off the wire.
	RunsOK   uint64 `json:"runs_ok"`
	RunsErr  uint64 `json:"runs_err"`
	Deferred uint64 `json:"deferred"`
	Refused  uint64 `json:"refused"`
	// Overruns counts runs that finished after their next slot was
	// already due (the next run is pushed out, never overlapped).
	Overruns uint64 `json:"overruns"`
	// Recompiles counts sim targets rebuilt after exhausting their
	// scenario horizon; Redials counts live transports discarded as
	// broken.
	Recompiles uint64 `json:"recompiles"`
	Redials    uint64 `json:"redials"`
	// Points is the lifetime number of series points appended.
	Points uint64 `json:"points"`
}

// Monitor is the continuous measurement service: a scheduler over an
// injectable clock, a time-series store, a fleet admission ledger, and
// (via Handler) an HTTP stats surface. Build with New, start with
// Start, stop with Close.
type Monitor struct {
	cfg    Config
	clock  Clock
	store  *Store
	ledger *Ledger

	root     context.Context
	cancel   context.CancelFunc
	wake     chan struct{}
	loopDone chan struct{}

	mu      sync.Mutex
	heap    entryHeap
	entries []*entry
	pools   map[string]*livenet.Pool
	started bool
	closed  bool

	active     int
	runsOK     uint64
	runsErr    uint64
	overruns   uint64
	recompiles uint64
	redials    uint64

	sem chan struct{}
	wg  sync.WaitGroup
}

// New validates the config and builds the monitor without starting it:
// every target must name a registered tool, exactly one of
// Addr/Scenario, a cataloged scenario where one is named, and satisfy
// the tool's parameter requirements (sim targets may leave Capacity to
// ground truth). If SnapshotPath names an existing snapshot, the store
// restores from it.
func New(cfg Config) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("monitor: config needs at least one target")
	}
	m := &Monitor{
		cfg:      cfg,
		clock:    cfg.Clock,
		store:    NewStore(cfg.History),
		ledger:   NewLedger(cfg.Budget, cfg.MaxProbeRate, cfg.RateWindow, cfg.Clock),
		wake:     make(chan struct{}, 1),
		loopDone: make(chan struct{}),
		pools:    make(map[string]*livenet.Pool),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
	}
	m.root, m.cancel = context.WithCancel(context.Background())
	seen := make(map[string]bool, len(cfg.Targets))
	for i, t := range cfg.Targets {
		e, err := m.newEntry(i, t)
		if err != nil {
			return nil, err
		}
		if seen[e.key] {
			return nil, fmt.Errorf("monitor: duplicate target %q", e.key)
		}
		seen[e.key] = true
		m.entries = append(m.entries, e)
	}
	if cfg.SnapshotPath != "" {
		if snap, err := LoadSnapshot(cfg.SnapshotPath); err == nil {
			m.store.Restore(snap)
		}
	}
	return m, nil
}

// Start begins scheduling. The first run of each target is spread over
// one jittered interval from now. Start is idempotent; a closed
// monitor cannot be restarted.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started || m.closed {
		return
	}
	m.started = true
	now := m.clock.Now()
	for _, e := range m.entries {
		// The initial offset is a full uniform draw over the interval:
		// N identical targets land spread across [0, interval), not in
		// one burst at t=0.
		e.at = now.Add(time.Duration(e.jitter.Float64() * float64(e.interval)))
		m.heap.push(e)
	}
	go m.loop()
	if m.cfg.SnapshotPath != "" {
		m.wg.Add(1)
		go m.snapshotLoop()
	}
}

// Close stops scheduling, waits for in-flight runs, closes every live
// pool, and (when configured) writes a final snapshot. It is
// idempotent and safe to call concurrently.
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		started := m.started
		m.mu.Unlock()
		if started {
			<-m.loopDone
		}
		return
	}
	m.closed = true
	started := m.started
	pools := m.pools
	m.pools = map[string]*livenet.Pool{}
	m.mu.Unlock()

	m.cancel()
	// Closing the pools unblocks any run stuck inside a socket read;
	// context cancellation alone only reaches stream boundaries.
	for _, p := range pools {
		p.Close()
	}
	if started {
		<-m.loopDone
	} else {
		close(m.loopDone)
	}
	m.wg.Wait()
	if m.cfg.SnapshotPath != "" {
		m.store.WriteSnapshot(m.cfg.SnapshotPath, m.clock.Now())
	}
}

// Store exposes the time-series store (read side: HTTP layer, tests).
func (m *Monitor) Store() *Store { return m.store }

// Ledger exposes the fleet admission ledger.
func (m *Monitor) Ledger() *Ledger { return m.ledger }

// Clock returns the monitor's time source.
func (m *Monitor) Clock() Clock { return m.clock }

// Stats snapshots the monitor's counters.
func (m *Monitor) Stats() Stats {
	led := m.ledger.Stats()
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Targets:    len(m.entries),
		Scheduled:  m.heap.len() + m.active,
		Active:     m.active,
		RunsOK:     m.runsOK,
		RunsErr:    m.runsErr,
		Deferred:   led.Deferred,
		Refused:    led.Refused,
		Overruns:   m.overruns,
		Recompiles: m.recompiles,
		Redials:    m.redials,
		Points:     m.store.Appends(),
	}
}

// snapshotLoop persists the store every SnapshotEvery until Close,
// compacting first when a retention is configured.
func (m *Monitor) snapshotLoop() {
	defer m.wg.Done()
	t := m.clock.NewTimer(m.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-m.root.Done():
			return
		case <-t.C():
			now := m.clock.Now()
			if m.cfg.Retention > 0 {
				m.store.Compact(now.Add(-m.cfg.Retention))
			}
			m.store.WriteSnapshot(m.cfg.SnapshotPath, now)
			t.Reset(m.cfg.SnapshotEvery)
		}
	}
}
