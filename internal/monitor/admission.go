package monitor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"abw/internal/core"
	"abw/internal/unit"
)

// Cost is the declared probing cost of one estimation run: what a run
// asks the ledger to reserve before any packet is sent, and what it
// commits (the measured actuals) afterwards.
type Cost struct {
	Streams int        `json:"streams,omitempty"`
	Packets int        `json:"packets,omitempty"`
	Bytes   unit.Bytes `json:"bytes,omitempty"`
}

// Budget renders the cost as the per-run core.Budget that enforces the
// reservation below the estimator: a run can never send more than it
// was admitted for, which is what makes the fleet cap a guarantee
// rather than an accounting convention.
func (c Cost) Budget() core.Budget {
	return core.Budget{MaxStreams: c.Streams, MaxPackets: c.Packets, MaxBytes: c.Bytes}
}

// Refusal is the error an inadmissible run gets. It wraps
// core.ErrBudget — the module-wide sentinel for "the probing budget,
// not the network, said no" — and distinguishes a deferral (the
// sliding-window rate cap is momentarily full; retry after RetryAfter)
// from a refusal (a lifetime fleet cap is exhausted; retrying cannot
// help).
type Refusal struct {
	// Tenant is the accounting group whose run was turned away.
	Tenant string
	// Reason is the human-readable explanation, naming the cap and the
	// numbers that tripped it.
	Reason string
	// RetryAfter is how long until the sliding window can admit the
	// cost; zero for lifetime-cap refusals.
	RetryAfter time.Duration
}

func (r *Refusal) Error() string {
	if r.RetryAfter > 0 {
		return fmt.Sprintf("monitor: %s: deferred %s (retry in %v)", r.Tenant, r.Reason, r.RetryAfter)
	}
	return fmt.Sprintf("monitor: %s: refused %s", r.Tenant, r.Reason)
}

// Unwrap makes errors.Is(err, core.ErrBudget) true for every
// admission-control error.
func (r *Refusal) Unwrap() error { return core.ErrBudget }

// TenantStats is one tenant's admission accounting.
type TenantStats struct {
	Tenant   string     `json:"tenant"`
	Admitted uint64     `json:"admitted"`
	Deferred uint64     `json:"deferred"`
	Refused  uint64     `json:"refused"`
	Bytes    unit.Bytes `json:"bytes"` // reserved + committed probe volume
}

// LedgerStats is a snapshot of the ledger's counters.
type LedgerStats struct {
	// Admitted, Deferred, Refused count admission decisions.
	Admitted uint64 `json:"admitted"`
	Deferred uint64 `json:"deferred"`
	Refused  uint64 `json:"refused"`
	// Streams, Packets, Bytes are the lifetime totals charged against
	// the fleet budget (reservations of in-flight runs included).
	Streams int        `json:"streams"`
	Packets int        `json:"packets"`
	Bytes   unit.Bytes `json:"bytes"`
	// WindowBytes is the probe volume charged inside the current rate
	// window, and WindowCap the most it may ever hold.
	WindowBytes unit.Bytes `json:"window_bytes"`
	WindowCap   unit.Bytes `json:"window_cap,omitempty"`
	// Tenants breaks the decisions down per accounting group, sorted by
	// tenant name.
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// reservation is one admitted, not-yet-committed run.
type reservation struct {
	tenant string
	cost   Cost
	at     time.Time
}

// charge is probe volume attributed to an instant, for the sliding
// rate window.
type charge struct {
	at    time.Time
	bytes unit.Bytes
}

// Ledger is the fleet-wide admission controller: one concurrency-safe
// probing budget shared by every scheduled run across every tenant.
// Two caps compose:
//
//   - a lifetime core.Budget (streams/packets/bytes totals), the same
//     Budget type that caps a single estimation run, here shared across
//     sessions — exhausting it refuses runs permanently;
//   - an aggregate probe *rate* (MaxRate bytes/sec over Window), the
//     paper's intrusiveness pitfall at fleet scale — exceeding it
//     defers runs with a retry hint instead of refusing them.
//
// Admission is reserve-then-commit: Admit charges the declared cost
// under the lock (so concurrent admits can never jointly overshoot a
// cap), the run executes under a per-run core.Budget equal to its
// reservation, and Commit replaces the reservation with the measured
// actuals, returning the over-estimate to the pool. The invariant the
// tests assert: at every instant, charged volume never exceeds any
// configured cap.
type Ledger struct {
	clock Clock

	mu      sync.Mutex
	budget  core.Budget
	maxRate unit.Rate
	window  time.Duration

	streams int
	packets int
	bytes   unit.Bytes

	recent  []charge // window charges, oldest first
	winSum  unit.Bytes
	nextRes uint64
	open    map[uint64]reservation

	admitted uint64
	deferred uint64
	refused  uint64
	tenants  map[string]*TenantStats
}

// NewLedger builds a ledger enforcing the lifetime budget (zero fields
// unlimited; MaxDuration is ignored — wall time is the scheduler's
// axis, not a spendable volume) and the aggregate probe rate maxRate
// over the sliding window (default 1 s; rate 0 = unlimited).
func NewLedger(budget core.Budget, maxRate unit.Rate, window time.Duration, clock Clock) *Ledger {
	if clock == nil {
		clock = realClock{}
	}
	if window <= 0 {
		window = time.Second
	}
	return &Ledger{
		clock:   clock,
		budget:  budget,
		maxRate: maxRate,
		window:  window,
		open:    make(map[uint64]reservation),
		tenants: make(map[string]*TenantStats),
	}
}

// windowCap is the most probe volume the sliding window may hold.
func (l *Ledger) windowCap() unit.Bytes {
	if l.maxRate <= 0 {
		return 0
	}
	return unit.BytesIn(l.maxRate, l.window)
}

// expireLocked drops window charges older than now-window.
func (l *Ledger) expireLocked(now time.Time) {
	cutoff := now.Add(-l.window)
	i := 0
	for i < len(l.recent) && !l.recent[i].at.After(cutoff) {
		l.winSum -= l.recent[i].bytes
		i++
	}
	if i > 0 {
		l.recent = append(l.recent[:0], l.recent[i:]...)
	}
}

// Admit reserves the cost against every cap, returning a reservation
// ID for Commit. An inadmissible cost returns a *Refusal wrapping
// core.ErrBudget: deferrals carry the RetryAfter the caller should
// reschedule at, refusals are final. The check-and-charge is atomic
// under the ledger lock — the property that makes over-admission
// structurally impossible however many sessions admit concurrently.
func (l *Ledger) Admit(tenant string, c Cost) (uint64, error) {
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expireLocked(now)
	ts := l.tenantLocked(tenant)
	b := l.budget
	switch {
	case b.MaxStreams > 0 && l.streams+c.Streams > b.MaxStreams:
		l.refused++
		ts.Refused++
		return 0, &Refusal{Tenant: tenant, Reason: fmt.Sprintf(
			"fleet stream budget: %d charged + %d requested > MaxStreams %d", l.streams, c.Streams, b.MaxStreams)}
	case b.MaxPackets > 0 && l.packets+c.Packets > b.MaxPackets:
		l.refused++
		ts.Refused++
		return 0, &Refusal{Tenant: tenant, Reason: fmt.Sprintf(
			"fleet packet budget: %d charged + %d requested > MaxPackets %d", l.packets, c.Packets, b.MaxPackets)}
	case b.MaxBytes > 0 && l.bytes+c.Bytes > b.MaxBytes:
		l.refused++
		ts.Refused++
		return 0, &Refusal{Tenant: tenant, Reason: fmt.Sprintf(
			"fleet byte budget: %d charged + %d requested > MaxBytes %d", l.bytes, c.Bytes, b.MaxBytes)}
	}
	if wcap := l.windowCap(); wcap > 0 && l.winSum+c.Bytes > wcap {
		// A cost no window could ever hold is a refusal, not a deferral:
		// no amount of waiting makes it admissible.
		if c.Bytes > wcap {
			l.refused++
			ts.Refused++
			return 0, &Refusal{Tenant: tenant, Reason: fmt.Sprintf(
				"%d bytes exceed the whole rate window (%v at %.1f Mbps = %d bytes)",
				c.Bytes, l.window, l.maxRate.MbpsOf(), wcap)}
		}
		l.deferred++
		ts.Deferred++
		return 0, &Refusal{Tenant: tenant, RetryAfter: l.retryAfterLocked(now, c.Bytes, wcap), Reason: fmt.Sprintf(
			"fleet probe rate: %d window bytes + %d requested > %d (%.1f Mbps over %v)",
			l.winSum, c.Bytes, wcap, l.maxRate.MbpsOf(), l.window)}
	}
	l.streams += c.Streams
	l.packets += c.Packets
	l.bytes += c.Bytes
	if c.Bytes > 0 {
		l.recent = append(l.recent, charge{at: now, bytes: c.Bytes})
		l.winSum += c.Bytes
	}
	l.admitted++
	ts.Admitted++
	ts.Bytes += c.Bytes
	l.nextRes++
	id := l.nextRes
	l.open[id] = reservation{tenant: tenant, cost: c, at: now}
	return id, nil
}

// retryAfterLocked computes how long until enough window charges expire
// to fit need more bytes; the caller holds l.mu and has expired stale
// charges.
func (l *Ledger) retryAfterLocked(now time.Time, need, wcap unit.Bytes) time.Duration {
	free := wcap - l.winSum
	for _, ch := range l.recent {
		free += ch.bytes
		if free >= need {
			d := ch.at.Add(l.window).Sub(now)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			return d
		}
	}
	return l.window
}

// Commit settles a reservation with the run's measured actuals,
// returning any over-estimate to the lifetime pool. The rate window
// keeps the full reserved charge — the window's question is "what was
// the path exposed to around that instant", and the reservation was
// genuinely unavailable to everyone else while the run was in flight.
// Actuals above the reservation (possible only for costs the per-run
// budget does not meter, e.g. a SimOnly tool) charge the difference.
func (l *Ledger) Commit(id uint64, actual Cost) {
	l.mu.Lock()
	defer l.mu.Unlock()
	res, ok := l.open[id]
	if !ok {
		return
	}
	delete(l.open, id)
	l.streams += clampMin(actual.Streams-res.cost.Streams, -res.cost.Streams)
	l.packets += clampMin(actual.Packets-res.cost.Packets, -res.cost.Packets)
	dBytes := actual.Bytes - res.cost.Bytes
	if dBytes < -res.cost.Bytes {
		dBytes = -res.cost.Bytes
	}
	l.bytes += dBytes
	if ts := l.tenantLocked(res.tenant); ts != nil {
		ts.Bytes += dBytes
	}
}

// clampMin returns d, but no less than min (a refund can never exceed
// what was reserved).
func clampMin(d, min int) int {
	if d < min {
		return min
	}
	return d
}

func (l *Ledger) tenantLocked(tenant string) *TenantStats {
	ts := l.tenants[tenant]
	if ts == nil {
		ts = &TenantStats{Tenant: tenant}
		l.tenants[tenant] = ts
	}
	return ts
}

// Stats snapshots the ledger.
func (l *Ledger) Stats() LedgerStats {
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expireLocked(now)
	st := LedgerStats{
		Admitted:    l.admitted,
		Deferred:    l.deferred,
		Refused:     l.refused,
		Streams:     l.streams,
		Packets:     l.packets,
		Bytes:       l.bytes,
		WindowBytes: l.winSum,
		WindowCap:   l.windowCap(),
	}
	for _, ts := range l.tenants {
		st.Tenants = append(st.Tenants, *ts)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}
