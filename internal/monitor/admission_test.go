package monitor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abw/internal/core"
	"abw/internal/unit"
)

// TestLedgerConcurrentAdmitNeverOverAdmits is the acceptance test for
// the shared-budget guarantee, run under -race: G goroutines hammer one
// ledger with admissions and commits, and at no point — sampled
// concurrently, and checked exactly at the end — does the charged
// volume exceed any fleet cap. Every turn-away satisfies
// errors.Is(err, core.ErrBudget).
func TestLedgerConcurrentAdmitNeverOverAdmits(t *testing.T) {
	const (
		G        = 16
		perG     = 200
		maxBytes = 1_000_000
	)
	cost := Cost{Streams: 2, Packets: 10, Bytes: 1000}
	led := NewLedger(core.Budget{MaxBytes: maxBytes, MaxStreams: 2 * maxBytes / 1000, MaxPackets: 10 * maxBytes / 1000}, 0, 0, nil)

	var admitted, turnedAway, badErr atomic.Uint64
	stopSampling := make(chan struct{})
	var samplerWg sync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if st := led.Stats(); st.Bytes > maxBytes {
				t.Errorf("mid-flight over-admission: %d bytes charged > cap %d", st.Bytes, maxBytes)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id, err := led.Admit("tenant", cost)
				if err != nil {
					if !errors.Is(err, core.ErrBudget) {
						badErr.Add(1)
					}
					turnedAway.Add(1)
					continue
				}
				admitted.Add(1)
				if i%3 == 0 {
					// A third of the runs report lower actuals, refunding
					// the difference — the refund must never let the total
					// overshoot either.
					led.Commit(id, Cost{Streams: 1, Packets: 5, Bytes: 500})
				} else {
					led.Commit(id, cost)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopSampling)
	samplerWg.Wait()

	if badErr.Load() != 0 {
		t.Errorf("%d turn-aways did not satisfy errors.Is(err, core.ErrBudget)", badErr.Load())
	}
	st := led.Stats()
	if st.Bytes > maxBytes {
		t.Errorf("final charge %d bytes > cap %d", st.Bytes, maxBytes)
	}
	if st.Admitted != admitted.Load() || st.Refused != turnedAway.Load() {
		t.Errorf("ledger counted %d admitted / %d refused; callers saw %d / %d",
			st.Admitted, st.Refused, admitted.Load(), turnedAway.Load())
	}
	if admitted.Load() == 0 || turnedAway.Load() == 0 {
		t.Fatalf("test exercised nothing: %d admitted, %d turned away (want both nonzero)",
			admitted.Load(), turnedAway.Load())
	}
}

// TestLedgerRateDeferral: the sliding-window rate cap defers (with a
// usable retry hint) rather than refuses, and the hint is honest — the
// same cost is admissible once the clock passes it.
func TestLedgerRateDeferral(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	led := NewLedger(core.Budget{}, unit.Rate(8_000_000), time.Second, clk) // 1 MB/s window
	if _, err := led.Admit("a", Cost{Bytes: 800_000}); err != nil {
		t.Fatalf("first 800 KB refused: %v", err)
	}
	_, err := led.Admit("a", Cost{Bytes: 400_000})
	var ref *Refusal
	if !errors.As(err, &ref) || ref.RetryAfter <= 0 {
		t.Fatalf("expected a deferral with a retry hint, got %v", err)
	}
	if !errors.Is(err, core.ErrBudget) {
		t.Error("deferral does not unwrap to core.ErrBudget")
	}
	if ref.RetryAfter > time.Second {
		t.Errorf("RetryAfter %v exceeds the window", ref.RetryAfter)
	}
	clk.Advance(ref.RetryAfter)
	if _, err := led.Admit("a", Cost{Bytes: 400_000}); err != nil {
		t.Fatalf("retry hint was dishonest: still inadmissible after %v: %v", ref.RetryAfter, err)
	}
	st := led.Stats()
	if st.Deferred != 1 || st.Admitted != 2 {
		t.Errorf("Deferred/Admitted = %d/%d, want 1/2", st.Deferred, st.Admitted)
	}
}

// TestLedgerOversizedCostRefusedOutright: a cost no window could ever
// hold must be a final refusal, not an infinite deferral loop.
func TestLedgerOversizedCostRefusedOutright(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	led := NewLedger(core.Budget{}, unit.Rate(8_000_000), time.Second, clk)
	_, err := led.Admit("a", Cost{Bytes: 2_000_000})
	var ref *Refusal
	if !errors.As(err, &ref) {
		t.Fatalf("expected a refusal, got %v", err)
	}
	if ref.RetryAfter != 0 {
		t.Errorf("oversized cost got a retry hint %v; waiting cannot help", ref.RetryAfter)
	}
}

// TestLedgerCommitSettlesActuals: commit refunds the over-estimate on
// lifetime totals (freeing headroom for later runs) while the rate
// window keeps the full reservation.
func TestLedgerCommitSettlesActuals(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	led := NewLedger(core.Budget{MaxBytes: 1000}, unit.Rate(8_000_000), time.Second, clk)
	id, err := led.Admit("a", Cost{Streams: 4, Packets: 40, Bytes: 900})
	if err != nil {
		t.Fatal(err)
	}
	led.Commit(id, Cost{Streams: 1, Packets: 2, Bytes: 100})
	st := led.Stats()
	if st.Bytes != 100 || st.Streams != 1 || st.Packets != 2 {
		t.Errorf("lifetime totals after refund = %d bytes / %d streams / %d packets, want 100/1/2",
			st.Bytes, st.Streams, st.Packets)
	}
	if st.WindowBytes != 900 {
		t.Errorf("window kept %d bytes, want the full 900 reservation", st.WindowBytes)
	}
	if _, err := led.Admit("a", Cost{Bytes: 900}); err != nil {
		t.Errorf("refund did not free lifetime headroom: %v", err)
	}
	led.Commit(9999, Cost{Bytes: 1}) // unknown reservation: a no-op, not a corruption
	if got := led.Stats().Bytes; got != 1000 {
		t.Errorf("unknown-ID commit changed the books: %d bytes, want 1000", got)
	}
}
