package monitor

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"abw/internal/unit"
)

// Point is one completed (or failed) estimation run in a series. A
// failed run keeps its slot in the ring — gaps are information: a
// series that alternates estimates with budget refusals tells the
// operator the fleet cap is the binding constraint, which a
// success-only series would hide.
type Point struct {
	// At is the run's dispatch time on the monitor's clock.
	At time.Time `json:"at"`
	// Seq numbers the runs of this series from 0, including failed and
	// refused ones, so consumers can detect evicted history.
	Seq uint64 `json:"seq"`
	// Point, Low, High are the estimate and its variation range
	// (Low = High for point-estimate tools); zero when Err is set.
	Point unit.Rate `json:"point_bps"`
	Low   unit.Rate `json:"low_bps"`
	High  unit.Rate `json:"high_bps"`
	// True is the scenario's analytic ground truth for sim targets;
	// zero for live targets, which have no oracle.
	True unit.Rate `json:"true_bps,omitempty"`
	// Streams, Packets, ProbeBytes are the run's measured probing cost.
	Streams    int        `json:"streams,omitempty"`
	Packets    int        `json:"packets,omitempty"`
	ProbeBytes unit.Bytes `json:"probe_bytes,omitempty"`
	// Elapsed is the estimation latency on the run's transport clock
	// (virtual time for sim targets).
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
	// Err is the run's failure text (estimation error, admission
	// refusal); empty on success.
	Err string `json:"error,omitempty"`
}

// Rollup summarizes one series' buffered points: the min/mean/max of
// the successful estimates, and the variation range — the lowest Low to
// the highest High any run reported, the paper's "avail-bw is a process
// with a variation range, not a number" rendered as an operator-facing
// aggregate.
type Rollup struct {
	Count  int `json:"count"`  // points buffered, including failures
	Errors int `json:"errors"` // points that carry an error
	// Min, Mean, Max aggregate the successful estimates' Point values.
	Min  unit.Rate `json:"min_bps"`
	Mean unit.Rate `json:"mean_bps"`
	Max  unit.Rate `json:"max_bps"`
	// VarLow and VarHigh bound the union of the runs' variation ranges.
	VarLow  unit.Rate `json:"var_low_bps"`
	VarHigh unit.Rate `json:"var_high_bps"`
	// Last is the most recent successful estimate and LastAt its time.
	Last   unit.Rate `json:"last_bps"`
	LastAt time.Time `json:"last_at"`
}

// Series is the append-only history of one (target, tool): a
// fixed-capacity ring buffer of Points. Appending past capacity evicts
// the oldest point; Evicted counts what the window lost. All methods
// are safe for concurrent use.
type Series struct {
	// Target, Tool, Tenant identify the series; set once at creation.
	Target string `json:"target"`
	Tool   string `json:"tool"`
	Tenant string `json:"tenant"`

	mu      sync.Mutex
	buf     []Point // ring storage, len == capacity once full
	head    int     // index of the oldest point
	seq     uint64  // next Seq to assign
	evicted uint64
}

func newSeries(target, tool, tenant string, capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{Target: target, Tool: tool, Tenant: tenant, buf: make([]Point, 0, capacity)}
}

// Key renders the series' map key, "target/tool".
func (s *Series) Key() string { return s.Target + "/" + s.Tool }

// Append stamps the point with the next sequence number and stores it,
// evicting the oldest point if the ring is full.
func (s *Series) Append(p Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p.Seq = s.seq
	s.seq++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, p)
		return
	}
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
	s.evicted++
}

// Last returns up to n most recent points, oldest first. n <= 0 means
// all buffered points.
func (s *Series) Last(n int) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := len(s.buf)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]Point, 0, n)
	for i := total - n; i < total; i++ {
		out = append(out, s.buf[(s.head+i)%total])
	}
	return out
}

// Len reports the points currently buffered.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Evicted reports how many points the ring has dropped to stay within
// capacity (compaction drops are counted too).
func (s *Series) Evicted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Rollup computes the series' summary over the buffered window.
func (s *Series) Rollup() Rollup {
	s.mu.Lock()
	defer s.mu.Unlock()
	var r Rollup
	var sum float64
	ok := 0
	for i := 0; i < len(s.buf); i++ {
		p := s.buf[(s.head+i)%len(s.buf)]
		r.Count++
		if p.Err != "" {
			r.Errors++
			continue
		}
		if ok == 0 {
			r.Min, r.Max = p.Point, p.Point
			r.VarLow, r.VarHigh = p.Low, p.High
		} else {
			if p.Point < r.Min {
				r.Min = p.Point
			}
			if p.Point > r.Max {
				r.Max = p.Point
			}
			if p.Low < r.VarLow {
				r.VarLow = p.Low
			}
			if p.High > r.VarHigh {
				r.VarHigh = p.High
			}
		}
		sum += float64(p.Point)
		ok++
		r.Last, r.LastAt = p.Point, p.At
	}
	if ok > 0 {
		r.Mean = unit.Rate(sum / float64(ok))
	}
	return r
}

// compact drops buffered points older than cutoff; it reports how many
// were dropped and how many remain. Dropped points count as evicted.
func (s *Series) compact(cutoff time.Time) (dropped, kept int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := make([]Point, 0, cap(s.buf))
	for i := 0; i < len(s.buf); i++ {
		p := s.buf[(s.head+i)%len(s.buf)]
		if p.At.Before(cutoff) {
			dropped++
			continue
		}
		keep = append(keep, p)
	}
	s.buf, s.head = keep, 0
	s.evicted += uint64(dropped)
	return dropped, len(keep)
}

// Store holds every series the monitor maintains, keyed by
// (target, tool). It is the append-only time-series layer: runs append
// Points, the HTTP layer reads series and rollups, snapshots persist
// the window to disk, and compaction trims it. All methods are safe for
// concurrent use.
type Store struct {
	capacity int

	mu     sync.RWMutex
	series map[string]*Series
	order  []string // creation order, for stable listings

	appends uint64
}

// NewStore returns a store whose series each buffer up to capacity
// points (default 512).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = 512
	}
	return &Store{capacity: capacity, series: make(map[string]*Series)}
}

// Series returns the series for (target, tool), creating it on first
// use.
func (st *Store) Series(target, tool, tenant string) *Series {
	key := target + "/" + tool
	st.mu.RLock()
	s := st.series[key]
	st.mu.RUnlock()
	if s != nil {
		return s
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if s = st.series[key]; s == nil {
		s = newSeries(target, tool, tenant, st.capacity)
		st.series[key] = s
		st.order = append(st.order, key)
	}
	return s
}

// Lookup finds an existing series by its "target/tool" key.
func (st *Store) Lookup(key string) (*Series, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.series[key]
	return s, ok
}

// All returns every series in creation order.
func (st *Store) All() []*Series {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*Series, 0, len(st.order))
	for _, key := range st.order {
		out = append(out, st.series[key])
	}
	return out
}

// Append records one run into its series.
func (st *Store) Append(target, tool, tenant string, p Point) {
	st.Series(target, tool, tenant).Append(p)
	st.mu.Lock()
	st.appends++
	st.mu.Unlock()
}

// Appends reports the lifetime number of points appended.
func (st *Store) Appends() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.appends
}

// Compact drops every buffered point older than cutoff and removes
// series left empty, returning (points dropped, series removed). The
// lifetime counters survive; only window contents are trimmed.
func (st *Store) Compact(cutoff time.Time) (points, removed int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	keepOrder := st.order[:0]
	for _, key := range st.order {
		s := st.series[key]
		dropped, kept := s.compact(cutoff)
		points += dropped
		if kept == 0 && dropped > 0 {
			delete(st.series, key)
			removed++
			continue
		}
		keepOrder = append(keepOrder, key)
	}
	st.order = keepOrder
	return points, removed
}

// Snapshot is the on-disk shape of the store: every series' buffered
// window plus its rollup, so a snapshot file is directly consumable by
// humans and dashboards without replaying points.
type Snapshot struct {
	Schema  string           `json:"schema"`
	TakenAt time.Time        `json:"taken_at"`
	Series  []SnapshotSeries `json:"series"`
}

// SnapshotSeries is one series in a snapshot.
type SnapshotSeries struct {
	Target  string  `json:"target"`
	Tool    string  `json:"tool"`
	Tenant  string  `json:"tenant"`
	Evicted uint64  `json:"evicted,omitempty"`
	Rollup  Rollup  `json:"rollup"`
	Points  []Point `json:"points"`
}

// snapshotSchema versions the snapshot file format.
const snapshotSchema = "abw-monitor-snapshot/1"

// Snapshot captures the store's current window.
func (st *Store) Snapshot(at time.Time) Snapshot {
	snap := Snapshot{Schema: snapshotSchema, TakenAt: at}
	for _, s := range st.All() {
		s.mu.Lock()
		ev := s.evicted
		s.mu.Unlock()
		snap.Series = append(snap.Series, SnapshotSeries{
			Target:  s.Target,
			Tool:    s.Tool,
			Tenant:  s.Tenant,
			Evicted: ev,
			Rollup:  s.Rollup(),
			Points:  s.Last(0),
		})
	}
	sort.Slice(snap.Series, func(i, j int) bool {
		a, b := snap.Series[i], snap.Series[j]
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Tool < b.Tool
	})
	return snap
}

// WriteSnapshot atomically persists the store's window to path
// (write to a temp file in the same directory, then rename).
func (st *Store) WriteSnapshot(path string, at time.Time) error {
	b, err := json.MarshalIndent(st.Snapshot(at), "", "  ")
	if err != nil {
		return fmt.Errorf("monitor: snapshot encode: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".abwmonitor-snap-*")
	if err != nil {
		return fmt.Errorf("monitor: snapshot: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("monitor: snapshot write: %w", firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("monitor: snapshot rename: %w", err)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot reads a snapshot file written by WriteSnapshot.
func LoadSnapshot(path string) (Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("monitor: snapshot %s: %w", path, err)
	}
	if snap.Schema != snapshotSchema {
		return Snapshot{}, fmt.Errorf("monitor: snapshot %s: schema %q, want %q", path, snap.Schema, snapshotSchema)
	}
	return snap, nil
}

// Restore seeds the store from a snapshot, so a restarted monitor
// presents continuous history: each series keeps the snapshot's points
// (the newest ones, if the snapshot exceeds the store's capacity) and
// continues its sequence numbering where the snapshot left off.
func (st *Store) Restore(snap Snapshot) {
	for _, ss := range snap.Series {
		s := st.Series(ss.Target, ss.Tool, ss.Tenant)
		s.mu.Lock()
		pts := ss.Points
		if len(pts) > cap(s.buf) {
			pts = pts[len(pts)-cap(s.buf):]
		}
		s.buf = append(s.buf[:0], pts...)
		s.head = 0
		s.evicted = ss.Evicted + uint64(len(ss.Points)-len(pts))
		s.seq = 0
		for _, p := range pts {
			if p.Seq+1 > s.seq {
				s.seq = p.Seq + 1
			}
		}
		s.mu.Unlock()
	}
}
