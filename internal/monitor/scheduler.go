package monitor

import (
	"context"
	"errors"
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/livenet"
	"abw/internal/rng"
	"abw/internal/scenario"
	"abw/internal/tools/registry"
	"abw/internal/unit"
)

// simRecorderEpoch is the aggregate-recorder granularity sim targets
// compile with: per-epoch counters instead of per-packet rows, so a
// monitor that runs for weeks holds bounded ground-truth state.
const simRecorderEpoch = 100 * time.Millisecond

// entry is one scheduled (target, tool) assignment and its run state.
// The scheduler guarantees at most one run of an entry is in flight,
// so everything below the config fields is accessed by exactly one
// goroutine at a time.
type entry struct {
	key        string // "name/tool", the series key
	tenant     string
	t          Target
	d          registry.Descriptor
	sc         scenario.Descriptor // set for sim targets
	interval   time.Duration
	jitter     *rng.Rand
	jitterFrac float64

	at     time.Time // next due time, owned by the scheduler under m.mu
	pos    int       // heap position, -1 when not queued
	runSeq uint64

	sim      *scenario.Compiled
	simEpoch uint64

	cost      Cost
	costKnown bool
}

// newEntry validates one target against the tool registry and the
// scenario catalog, so every configuration error surfaces at New, not
// minutes later on the first scheduled run.
func (m *Monitor) newEntry(i int, t Target) (*entry, error) {
	if t.Name == "" {
		return nil, fmt.Errorf("monitor: target %d needs a name", i)
	}
	if t.Tenant == "" {
		t.Tenant = "default"
	}
	d, ok := registry.Lookup(t.Tool)
	if !ok {
		return nil, fmt.Errorf("monitor: target %q: unknown tool %q (have %v)", t.Name, t.Tool, registry.Names())
	}
	if (t.Addr == "") == (t.Scenario == "") {
		return nil, fmt.Errorf("monitor: target %q: exactly one of Addr and Scenario must be set", t.Name)
	}
	if t.Params.Rand != nil || t.Params.Observer != nil || !t.Params.Budget.IsZero() {
		return nil, fmt.Errorf("monitor: target %q: Rand, Observer and Budget are run wiring owned by the monitor", t.Name)
	}
	e := &entry{
		key:        t.Name + "/" + d.Name,
		tenant:     t.Tenant,
		t:          t,
		d:          d,
		interval:   t.Interval,
		jitterFrac: m.cfg.Jitter,
		pos:        -1,
	}
	if e.interval <= 0 {
		e.interval = m.cfg.Interval
	}
	e.jitter = rng.Derive(m.cfg.Seed, "jitter/"+e.tenant+"/"+e.key)
	if t.Scenario != "" {
		sc, ok := scenario.Lookup(t.Scenario)
		if !ok {
			return nil, fmt.Errorf("monitor: target %q: unknown scenario %q (have %v)", t.Name, t.Scenario, scenario.Names())
		}
		e.sc = sc
		return e, nil
	}
	if d.SimOnly {
		return nil, fmt.Errorf("monitor: target %q: %s is simulator-only and cannot probe a live address", t.Name, d.Name)
	}
	// Live targets get Rand from the monitor; every other requirement
	// must be satisfied by the configured Params (a sim target's
	// Capacity comes from ground truth instead).
	for _, miss := range d.MissingParams(t.Params) {
		if miss != "Rand" {
			return nil, fmt.Errorf("monitor: target %q: %s needs Params.%s", t.Name, d.Name, miss)
		}
	}
	return e, nil
}

// nextCost projects the run's probing cost for admission: the last
// run's actuals with 50% headroom once known, otherwise a conservative
// bound derived from the tool's defaults-resolved parameters (with 2x
// headroom — the reservation doubles as the run's hard core.Budget, so
// undershooting kills runs, while overshooting merely defers them).
func (e *entry) nextCost() Cost {
	if e.costKnown {
		return e.cost
	}
	p := e.d.ResolvedParams(e.t.Params)
	streams := p.Repeat
	if streams < 1 {
		streams = 1
	}
	rounds := p.MaxRounds
	if rounds < 1 {
		rounds = 1
	}
	streams *= rounds
	slen := p.StreamLen
	if slen < 1 {
		slen = 100
	}
	psize := p.PktSize
	if psize <= 0 {
		psize = 1500
	}
	c := Cost{
		Streams: 2 * streams,
		Packets: 2 * streams * slen,
		Bytes:   2 * unit.Bytes(streams*slen) * psize,
	}
	if e.t.EstBytes > 0 {
		c.Bytes = e.t.EstBytes
	}
	return c
}

// learnCost adapts the projection to a completed run's actuals.
func (e *entry) learnCost(actual Cost) {
	if actual.Bytes <= 0 {
		return
	}
	e.cost = Cost{
		Streams: actual.Streams*3/2 + 1,
		Packets: actual.Packets*3/2 + 1,
		Bytes:   actual.Bytes*3/2 + 1,
	}
	e.costKnown = true
}

// doubleCost reacts to a run that exhausted its own reservation: the
// next one asks for twice as much instead of failing forever.
func (e *entry) doubleCost() {
	if !e.costKnown {
		e.cost = e.nextCost()
		e.costKnown = true
	}
	e.cost.Streams *= 2
	e.cost.Packets *= 2
	e.cost.Bytes *= 2
}

// loop is the scheduler: pop due entries and dispatch them, wait for
// the earliest deadline otherwise. Every wait goes through the
// injectable clock, which is what makes the whole service hermetic
// under a FakeClock.
func (m *Monitor) loop() {
	defer close(m.loopDone)
	timer := m.clock.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		m.mu.Lock()
		wait := time.Duration(-1)
		var due *entry
		if next := m.heap.peek(); next != nil {
			if d := next.at.Sub(m.clock.Now()); d <= 0 {
				due = m.heap.pop()
				m.active++
			} else {
				wait = d
			}
		}
		m.mu.Unlock()
		if due != nil {
			m.wg.Add(1)
			go m.runEntry(due)
			continue
		}
		if wait < 0 {
			wait = time.Hour
		}
		timer.Reset(wait)
		select {
		case <-m.root.Done():
			return
		case <-timer.C():
		case <-m.wake:
		}
	}
}

// wakeLoop nudges the scheduler to re-examine the heap.
func (m *Monitor) wakeLoop() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// runEntry executes one scheduled run end to end: worker slot,
// admission, transport, estimate, settlement, store append, and
// rescheduling. It is the only goroutine touching the entry's run
// state while it holds it.
func (m *Monitor) runEntry(e *entry) {
	defer m.wg.Done()
	dispatched := m.clock.Now()
	var next time.Time // zero = do not reschedule (shutdown)

	defer func() {
		m.mu.Lock()
		m.active--
		if !next.IsZero() && !m.closed {
			if now := m.clock.Now(); next.Before(now) {
				// The run (or its deferral) outlived its next slot; slide
				// instead of overlapping — an entry never runs twice at
				// once.
				m.overruns++
				next = now
			}
			e.at = next
			m.heap.push(e)
		}
		m.mu.Unlock()
		m.wakeLoop()
	}()

	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-m.root.Done():
		return
	}

	now := m.clock.Now()
	cost := e.nextCost()
	resID, err := m.ledger.Admit(e.tenant, cost)
	if err != nil {
		// Turned away before any packet: the decision is itself a data
		// point (a series full of deferrals says the fleet cap is the
		// binding constraint), and a deferral reschedules at the
		// ledger's retry hint rather than the nominal interval.
		m.store.Append(e.t.Name, e.d.Name, e.tenant, Point{At: now, Err: err.Error()})
		var ref *Refusal
		if errors.As(err, &ref) && ref.RetryAfter > 0 {
			next = now.Add(ref.RetryAfter)
		} else {
			next = e.nextAt(dispatched)
		}
		return
	}

	rep, trueBw, err := m.execute(e, cost)
	var actual Cost
	if rep != nil {
		actual = Cost{Streams: rep.Streams, Packets: rep.Packets, Bytes: rep.ProbeBytes}
	}
	m.ledger.Commit(resID, actual)

	p := Point{At: now, True: trueBw}
	if err != nil {
		p.Err = err.Error()
		m.mu.Lock()
		m.runsErr++
		m.mu.Unlock()
		if errors.Is(err, core.ErrBudget) {
			e.doubleCost()
		}
	} else {
		p.Point, p.Low, p.High = rep.Point, rep.Low, rep.High
		p.Streams, p.Packets = rep.Streams, rep.Packets
		p.ProbeBytes, p.Elapsed = rep.ProbeBytes, rep.Elapsed
		e.learnCost(actual)
		m.mu.Lock()
		m.runsOK++
		m.mu.Unlock()
	}
	m.store.Append(e.t.Name, e.d.Name, e.tenant, p)
	next = e.nextAt(dispatched)
}

// nextAt is the entry's next due time: one interval after this run's
// dispatch, jittered by a deterministic ±Jitter×interval draw.
func (e *entry) nextAt(dispatched time.Time) time.Time {
	return dispatched.Add(e.interval + e.jitterSpan())
}

// jitterSpan draws the entry's next jitter offset, uniform in
// ±jitterFrac×interval from its own derived rng stream — deterministic
// per entry whatever the cross-entry goroutine interleaving.
func (e *entry) jitterSpan() time.Duration {
	if e.jitterFrac <= 0 {
		return 0
	}
	f := (e.jitter.Float64()*2 - 1) * e.jitterFrac
	return time.Duration(f * float64(e.interval))
}

// execute runs the estimator over the entry's transport. Sim targets
// probe their compiled scenario (recompiling once its horizon is
// spent); live targets lease a session from the receiver's pool, with
// a watchdog that closes the transport if the run outlives its
// timeout — the only way to unblock a probe stuck inside a socket
// read.
func (m *Monitor) execute(e *entry, cost Cost) (*core.Report, unit.Rate, error) {
	params := e.t.Params
	params.Rand = rng.Derive(m.cfg.Seed, fmt.Sprintf("run/%s/%d", e.key, e.runSeq))
	e.runSeq++
	ctx, cancel := context.WithTimeout(m.root, m.cfg.RunTimeout)
	defer cancel()

	if e.t.Scenario != "" {
		if err := m.ensureSim(e); err != nil {
			return nil, 0, err
		}
		if params.Capacity == 0 {
			params.Capacity = e.sim.Capacity
		}
		if !e.d.SimOnly {
			// The reservation is the run's hard budget; SimOnly tools
			// drive the simulator below the Transport seam, so for them
			// the ledger's reservation is accounting only.
			params.Budget = cost.Budget()
		}
		rep, err := registry.Estimate(ctx, e.d.Name, params, e.sim.Transport)
		return rep, e.sim.TrueAvailBw, err
	}

	pool, err := m.poolFor(e.t.Addr)
	if err != nil {
		return nil, 0, err
	}
	tr, err := pool.Get(ctx)
	if err != nil {
		return nil, 0, err
	}
	params.Budget = cost.Budget()
	watchdog := context.AfterFunc(ctx, func() { tr.Close() })
	rep, err := registry.Estimate(ctx, e.d.Name, params, tr)
	healthy := watchdog()
	if err != nil && !errors.Is(err, core.ErrBudget) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		// A transport-level failure may have desynchronized the control
		// channel; discard the session rather than risk misaligned
		// replies. Budget and cancellation errors happen at stream
		// boundaries and leave the channel clean.
		healthy = false
	}
	if !healthy {
		m.mu.Lock()
		m.redials++
		m.mu.Unlock()
	}
	pool.Put(tr, healthy)
	return rep, 0, err
}

// ensureSim compiles the entry's scenario on first use and recompiles
// it — under a fresh derived seed, so the new cross-traffic sample
// path is independent but reproducible — once probing has consumed
// three quarters of its horizon. Consecutive runs between recompiles
// observe consecutive slices of one cross-traffic process, exactly how
// a periodic live prober samples a real path.
func (m *Monitor) ensureSim(e *entry) error {
	if e.sim != nil {
		if e.sim.Transport.Now() < e.sim.Spec.Horizon*3/4 {
			return nil
		}
		e.sim = nil
		m.mu.Lock()
		m.recompiles++
		m.mu.Unlock()
	}
	seed := rng.Derive(m.cfg.Seed, fmt.Sprintf("sim/%s/epoch%d", e.key, e.simEpoch)).Uint64()
	e.simEpoch++
	cpl, err := e.sc.CompileSeededAggregate(seed, simRecorderEpoch)
	if err != nil {
		return fmt.Errorf("monitor: target %q: compiling scenario %q: %w", e.t.Name, e.t.Scenario, err)
	}
	e.sim = cpl
	return nil
}

// poolFor returns the session pool for a live receiver address,
// dialing it on first use (outside the monitor lock — dials are slow).
func (m *Monitor) poolFor(addr string) (*livenet.Pool, error) {
	m.mu.Lock()
	if p := m.pools[addr]; p != nil {
		m.mu.Unlock()
		return p, nil
	}
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("monitor: closed")
	}
	p, err := livenet.DialPool(addr, m.cfg.PoolSize)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		go p.Close()
		return nil, fmt.Errorf("monitor: closed")
	}
	if exist := m.pools[addr]; exist != nil {
		go p.Close()
		return exist, nil
	}
	m.pools[addr] = p
	return p, nil
}

// --- schedule heap: a plain binary min-heap over entry.at ---

type entryHeap struct {
	es []*entry
}

func (h *entryHeap) len() int { return len(h.es) }

func (h *entryHeap) peek() *entry {
	if len(h.es) == 0 {
		return nil
	}
	return h.es[0]
}

func (h *entryHeap) push(e *entry) {
	h.es = append(h.es, e)
	e.pos = len(h.es) - 1
	h.up(e.pos)
}

func (h *entryHeap) pop() *entry {
	e := h.es[0]
	last := len(h.es) - 1
	h.swap(0, last)
	h.es[last] = nil
	h.es = h.es[:last]
	if last > 0 {
		h.down(0)
	}
	e.pos = -1
	return e
}

func (h *entryHeap) swap(i, j int) {
	h.es[i], h.es[j] = h.es[j], h.es[i]
	h.es[i].pos, h.es[j].pos = i, j
}

func (h *entryHeap) less(i, j int) bool { return h.es[i].at.Before(h.es[j].at) }

func (h *entryHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *entryHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h.es) && h.less(l, min) {
			min = l
		}
		if r < len(h.es) && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h.swap(i, min)
		i = min
	}
}
