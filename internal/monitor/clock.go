package monitor

import (
	"sort"
	"sync"
	"time"
)

// Clock is the time source the monitor schedules against. Production
// code uses the real clock (nil Config.Clock); tests inject a FakeClock
// so scheduling decisions — due times, jitter draws, admission windows,
// snapshot cadence — are a pure function of the advance script, not of
// machine speed. Everything in this package that asks "what time is it"
// or "wake me later" goes through a Clock; nothing calls time.Now or
// time.After directly.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
}

// Timer is the clock-owned one-shot timer the scheduler waits on.
type Timer interface {
	// C is the channel the firing is delivered on.
	C() <-chan time.Time
	// Reset re-arms the timer for d from now, dropping any undelivered
	// firing.
	Reset(d time.Duration)
	// Stop disarms the timer; a firing already delivered stays in C.
	Stop()
}

// realClock is the production Clock, backed by the runtime clock.
type realClock struct{}

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer { return &realTimer{t: time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (rt *realTimer) C() <-chan time.Time { return rt.t.C }

func (rt *realTimer) Reset(d time.Duration) {
	// Drain-then-reset, the pre-Go-1.23 safe pattern; harmless on newer
	// runtimes.
	if !rt.t.Stop() {
		select {
		case <-rt.t.C:
		default:
		}
	}
	rt.t.Reset(d)
}

func (rt *realTimer) Stop() { rt.t.Stop() }

// FakeClock is a manually advanced Clock for deterministic tests: time
// moves only on Advance, and timers fire synchronously inside the
// Advance call, in deadline order. It is safe for concurrent use.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// NewFakeClock returns a fake clock starting at the given instant.
func NewFakeClock(at time.Time) *FakeClock {
	return &FakeClock{now: at}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTimer implements Clock.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{c: c, ch: make(chan time.Time, 1), at: c.now.Add(d), armed: true}
	c.timers = append(c.timers, t)
	c.fireDueLocked()
	return t
}

// Advance moves the clock forward by d, firing every timer whose
// deadline is reached, in deadline order. Goroutines woken by a firing
// run concurrently with the caller as usual; Advance only guarantees
// the firings are delivered.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.fireDueLocked()
}

// fireDueLocked delivers every due, armed timer; the caller holds c.mu.
func (c *FakeClock) fireDueLocked() {
	sort.SliceStable(c.timers, func(i, j int) bool { return c.timers[i].at.Before(c.timers[j].at) })
	for _, t := range c.timers {
		if t.armed && !t.at.After(c.now) {
			t.armed = false
			select {
			case t.ch <- t.at:
			default:
			}
		}
	}
}

type fakeTimer struct {
	c     *FakeClock
	ch    chan time.Time
	at    time.Time
	armed bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Reset(d time.Duration) {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	select {
	case <-t.ch:
	default:
	}
	t.at = t.c.now.Add(d)
	t.armed = true
	t.c.fireDueLocked()
}

func (t *fakeTimer) Stop() {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	t.armed = false
}
