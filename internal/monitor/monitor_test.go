package monitor

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"abw/internal/core"
	"abw/internal/livenet"
	"abw/internal/tools/registry"
	"abw/internal/unit"
)

// waitFor polls cond until it holds or the deadline expires. The fake
// clock makes *scheduling* deterministic, but dispatched runs execute
// on real goroutines, so tests wait for them to drain.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// drain advances the fake clock by d and waits until the store holds at
// least wantPoints points with no run in flight — i.e. the runs the
// advance made due have completed and been rescheduled. (Checking
// Active==0 alone races with the scheduler: it is also true before the
// loop dispatches anything.)
func drain(t *testing.T, m *Monitor, clk *FakeClock, d time.Duration, wantPoints uint64) {
	t.Helper()
	clk.Advance(d)
	waitFor(t, "runs to drain", func() bool {
		st := m.Stats()
		return st.Points >= wantPoints && st.Active == 0 && st.Scheduled == st.Targets
	})
}

func simTargets() []Target {
	return []Target{
		{Name: "edge-a", Tenant: "acme", Tool: "spruce", Scenario: "canonical", Params: registry.Params{Repeat: 2}},
		{Name: "edge-b", Tenant: "acme", Tool: "delphi", Scenario: "bursty", Params: registry.Params{Repeat: 2, StreamLen: 5}},
		{Name: "core-1", Tenant: "globex", Tool: "pathload", Scenario: "step", Params: registry.Params{Repeat: 2, StreamLen: 20, MaxRounds: 6}},
	}
}

// runScripted builds a monitor over a fake clock, advances it through
// `steps` intervals, closes it, and returns the store snapshot.
func runScripted(t *testing.T, seed uint64, steps int) Snapshot {
	t.Helper()
	clk := NewFakeClock(time.Unix(1_700_000_000, 0).UTC())
	m, err := New(Config{
		Targets:  simTargets(),
		Interval: 10 * time.Second,
		Seed:     seed,
		Clock:    clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < steps; i++ {
		drain(t, m, clk, 11*time.Second, uint64(3*(i+1)))
	}
	m.Close()
	return m.Store().Snapshot(time.Unix(0, 0))
}

// TestMonitorDeterministicUnderFakeClock is the hermeticity acceptance:
// two monitors with the same config, seed, and advance script produce
// byte-identical history — every estimate, timestamp, sequence number,
// and probing cost. This is what makes the monitor testable in CI and
// its incidents replayable.
func TestMonitorDeterministicUnderFakeClock(t *testing.T) {
	a := runScripted(t, 42, 3)
	b := runScripted(t, 42, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (config, seed, advance script) produced different histories")
	}
	if len(a.Series) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(a.Series))
	}
	for _, ss := range a.Series {
		if len(ss.Points) != 3 {
			t.Errorf("%s/%s: %d points, want 3", ss.Target, ss.Tool, len(ss.Points))
		}
		for _, p := range ss.Points {
			if p.Err != "" {
				t.Errorf("%s/%s seq %d: unexpected error %q", ss.Target, ss.Tool, p.Seq, p.Err)
			}
			if p.True <= 0 {
				t.Errorf("%s/%s seq %d: sim point lacks ground truth", ss.Target, ss.Tool, p.Seq)
			}
			if p.ProbeBytes <= 0 {
				t.Errorf("%s/%s seq %d: no probing cost recorded", ss.Target, ss.Tool, p.Seq)
			}
		}
	}
	// A different seed must actually change something (estimates, jitter
	// draws) — otherwise the determinism above is vacuous.
	c := runScripted(t, 7, 3)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical histories")
	}
}

// TestMonitorFleetBudgetEnforced: with a fleet budget sized for only a
// few runs, the monitor keeps scheduling but the ledger refuses the
// excess, refusals land in the series as error points, and the charged
// totals never exceed the cap — the admission acceptance at the
// monitor level, not just the ledger level.
func TestMonitorFleetBudgetEnforced(t *testing.T) {
	// A spruce run with Repeat 2 actually sends 2 pairs = 6 KB; EstBytes
	// declares 12 KB so the first reservation fits under the 20 KB cap,
	// the first two runs succeed, and every later one is refused.
	const maxBytes = 20_000
	clk := NewFakeClock(time.Unix(1_700_000_000, 0).UTC())
	m, err := New(Config{
		Targets: []Target{
			{Name: "edge-a", Tool: "spruce", Scenario: "canonical",
				Params: registry.Params{Repeat: 2}, EstBytes: 12_000},
		},
		Interval: 10 * time.Second,
		Seed:     1,
		Budget:   core.Budget{MaxBytes: maxBytes},
		Clock:    clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < 6; i++ {
		drain(t, m, clk, 11*time.Second, uint64(i+1))
	}
	m.Close()

	st := m.Stats()
	led := m.Ledger().Stats()
	if led.Bytes > maxBytes {
		t.Errorf("fleet charge %d bytes exceeds cap %d", led.Bytes, maxBytes)
	}
	if st.RunsOK == 0 {
		t.Error("no run succeeded; the cap should admit at least one")
	}
	if st.Refused == 0 {
		t.Error("no run was refused; the cap is not binding in this test")
	}
	s, ok := m.Store().Lookup("edge-a/spruce")
	if !ok {
		t.Fatal("series missing")
	}
	sawRefusal := false
	for _, p := range s.Last(0) {
		if p.Err != "" && strings.Contains(p.Err, "refused") {
			sawRefusal = true
		}
	}
	if !sawRefusal {
		t.Error("refusals did not land in the series as error points")
	}
}

// TestMonitorLiveSessionsLeakFree is the stream-state-leak acceptance:
// a monitor probing a real in-process receiver runs several cycles,
// then Close returns the receiver to baseline — zero active sessions,
// zero active streams.
func TestMonitorLiveSessionsLeakFree(t *testing.T) {
	r, err := livenet.ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	m, err := New(Config{
		Targets: []Target{
			{Name: "loop", Tool: "delphi", Addr: r.Addr(),
				Params: registry.Params{Capacity: 200 * unit.Mbps, Repeat: 2, StreamLen: 5}},
		},
		Interval: 50 * time.Millisecond,
		Seed:     3,
		PoolSize: 2,
		Receiver: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	waitFor(t, "three live runs", func() bool { return m.Stats().RunsOK >= 3 })
	m.Close()

	waitFor(t, "receiver back to baseline", func() bool {
		st := r.Stats()
		return st.ActiveSessions == 0 && st.ActiveStreams == 0
	})
	if st := m.Stats(); st.RunsErr > st.RunsOK {
		t.Errorf("mostly failing runs: %d ok, %d err", st.RunsOK, st.RunsErr)
	}
	s, ok := m.Store().Lookup("loop/delphi")
	if !ok || s.Len() == 0 {
		t.Fatal("live series empty")
	}
	for _, p := range s.Last(0) {
		if p.Err == "" && p.True != 0 {
			t.Errorf("live point carries ground truth %v; live paths have no oracle", p.True)
		}
	}
}

// TestMonitorSnapshotRestartContinuity: a monitor restarted over the
// same snapshot path presents continuous history — old points retained,
// sequence numbers continuing, not restarting at zero.
func TestMonitorSnapshotRestartContinuity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	cfg := func(clk *FakeClock) Config {
		return Config{
			Targets: []Target{
				{Name: "edge-a", Tool: "spruce", Scenario: "canonical", Params: registry.Params{Repeat: 2}},
			},
			Interval:     10 * time.Second,
			Seed:         9,
			SnapshotPath: path,
			Clock:        clk,
		}
	}

	clk := NewFakeClock(time.Unix(1_700_000_000, 0).UTC())
	m1, err := New(cfg(clk))
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	drain(t, m1, clk, 11*time.Second, 1)
	drain(t, m1, clk, 11*time.Second, 2)
	m1.Close() // writes the final snapshot
	s1, _ := m1.Store().Lookup("edge-a/spruce")
	if s1.Len() != 2 {
		t.Fatalf("first life recorded %d points, want 2", s1.Len())
	}

	clk2 := NewFakeClock(time.Unix(1_700_000_100, 0).UTC())
	m2, err := New(cfg(clk2))
	if err != nil {
		t.Fatal(err)
	}
	m2.Start()
	// Appends counts this life's appends only; the restored points do
	// not move it.
	drain(t, m2, clk2, 11*time.Second, 1)
	m2.Close()
	s2, ok := m2.Store().Lookup("edge-a/spruce")
	if !ok {
		t.Fatal("restarted store lost the series")
	}
	pts := s2.Last(0)
	if len(pts) != 3 {
		t.Fatalf("restarted series has %d points, want 2 restored + 1 new", len(pts))
	}
	if pts[2].Seq != 2 {
		t.Errorf("new point Seq = %d, want 2 (continuing the snapshot)", pts[2].Seq)
	}
}

// TestNewValidation: configuration errors surface at New with the
// offending target named, not at the first scheduled run.
func TestNewValidation(t *testing.T) {
	base := Target{Name: "t", Tool: "spruce", Scenario: "canonical"}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no targets", func(c *Config) { c.Targets = nil }, "at least one target"},
		{"unknown tool", func(c *Config) { c.Targets[0].Tool = "warpdrive" }, "unknown tool"},
		{"unknown scenario", func(c *Config) { c.Targets[0].Scenario = "atlantis" }, "unknown scenario"},
		{"both addr and scenario", func(c *Config) { c.Targets[0].Addr = "127.0.0.1:1" }, "exactly one"},
		{"neither addr nor scenario", func(c *Config) { c.Targets[0].Scenario = "" }, "exactly one"},
		{"no name", func(c *Config) { c.Targets[0].Name = "" }, "needs a name"},
		{"preset budget", func(c *Config) { c.Targets[0].Params.Budget = core.Budget{MaxBytes: 1} }, "owned by the monitor"},
		{"live missing capacity", func(c *Config) {
			c.Targets[0] = Target{Name: "t", Tool: "spruce", Addr: "127.0.0.1:1"}
		}, "needs Params.Capacity"},
		{"live sim-only tool", func(c *Config) {
			c.Targets[0] = Target{Name: "t", Tool: "bfind", Addr: "127.0.0.1:1"}
		}, "simulator-only"},
		{"duplicate", func(c *Config) { c.Targets = append(c.Targets, base) }, "duplicate target"},
	}
	for _, tc := range cases {
		cfg := Config{Targets: []Target{base}, Clock: NewFakeClock(time.Unix(0, 0))}
		tc.mutate(&cfg)
		_, err := New(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// And the happy path still constructs.
	if _, err := New(Config{Targets: []Target{base}, Clock: NewFakeClock(time.Unix(0, 0))}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestMonitorCloseIdempotent: Close twice (including before Start) is
// safe and leaves Stats consistent.
func TestMonitorCloseIdempotent(t *testing.T) {
	m, err := New(Config{
		Targets: []Target{{Name: "t", Tool: "spruce", Scenario: "canonical"}},
		Clock:   NewFakeClock(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close()

	clk := NewFakeClock(time.Unix(0, 0))
	m2, err := New(Config{
		Targets: []Target{{Name: "t", Tool: "spruce", Scenario: "canonical", Params: registry.Params{Repeat: 1}}},
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	m2.Start()
	drain(t, m2, clk, time.Minute, 1)
	m2.Close()
	m2.Close()
	if st := m2.Stats(); st.RunsOK == 0 {
		t.Error("no run completed before close")
	}
}
