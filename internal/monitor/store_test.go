package monitor

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"abw/internal/unit"
)

func mkPoint(at time.Time, bps unit.Rate) Point {
	return Point{At: at, Point: bps, Low: bps - unit.Mbps, High: bps + unit.Mbps}
}

// TestSeriesRing pins the ring-buffer contract: capacity bounds the
// window, eviction drops oldest-first, sequence numbers keep counting
// across evictions, and Last returns oldest-first.
func TestSeriesRing(t *testing.T) {
	s := newSeries("tgt", "spruce", "default", 4)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 7; i++ {
		s.Append(mkPoint(t0.Add(time.Duration(i)*time.Second), unit.Rate(i)*unit.Mbps))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Evicted() != 3 {
		t.Errorf("Evicted = %d, want 3", s.Evicted())
	}
	pts := s.Last(0)
	if len(pts) != 4 {
		t.Fatalf("Last(0) returned %d points, want 4", len(pts))
	}
	for i, p := range pts {
		wantSeq := uint64(3 + i)
		if p.Seq != wantSeq {
			t.Errorf("point %d: Seq = %d, want %d", i, p.Seq, wantSeq)
		}
		if p.Point != unit.Rate(3+i)*unit.Mbps {
			t.Errorf("point %d: rate = %v, want %v", i, p.Point, unit.Rate(3+i)*unit.Mbps)
		}
	}
	if got := s.Last(2); len(got) != 2 || got[1].Seq != 6 {
		t.Errorf("Last(2) = %+v, want the 2 newest (Seq 5, 6)", got)
	}
}

// TestSeriesRollup checks the aggregate: min/mean/max over successful
// estimates, the variation range as the union of per-run ranges, and
// error points counted but excluded from the numbers.
func TestSeriesRollup(t *testing.T) {
	s := newSeries("tgt", "pathload", "default", 8)
	t0 := time.Unix(1000, 0)
	s.Append(Point{At: t0, Point: 40 * unit.Mbps, Low: 30 * unit.Mbps, High: 50 * unit.Mbps})
	s.Append(Point{At: t0.Add(time.Second), Err: "budget refused"})
	s.Append(Point{At: t0.Add(2 * time.Second), Point: 60 * unit.Mbps, Low: 55 * unit.Mbps, High: 80 * unit.Mbps})
	r := s.Rollup()
	if r.Count != 3 || r.Errors != 1 {
		t.Fatalf("Count/Errors = %d/%d, want 3/1", r.Count, r.Errors)
	}
	if r.Min != 40*unit.Mbps || r.Max != 60*unit.Mbps {
		t.Errorf("Min/Max = %v/%v, want 40/60 Mbps", r.Min, r.Max)
	}
	if r.Mean != 50*unit.Mbps {
		t.Errorf("Mean = %v, want 50 Mbps", r.Mean)
	}
	if r.VarLow != 30*unit.Mbps || r.VarHigh != 80*unit.Mbps {
		t.Errorf("variation range = [%v, %v], want the union [30, 80] Mbps", r.VarLow, r.VarHigh)
	}
	if r.Last != 60*unit.Mbps || !r.LastAt.Equal(t0.Add(2*time.Second)) {
		t.Errorf("Last/LastAt = %v/%v, want 60 Mbps at t0+2s", r.Last, r.LastAt)
	}
}

// TestStoreCompact: compaction drops old points, removes emptied
// series, and keeps the remainder intact.
func TestStoreCompact(t *testing.T) {
	st := NewStore(16)
	t0 := time.Unix(1000, 0)
	st.Append("old", "spruce", "a", mkPoint(t0, 10*unit.Mbps))
	st.Append("mixed", "spruce", "a", mkPoint(t0, 10*unit.Mbps))
	st.Append("mixed", "spruce", "a", mkPoint(t0.Add(time.Hour), 20*unit.Mbps))
	points, removed := st.Compact(t0.Add(time.Minute))
	if points != 2 || removed != 1 {
		t.Fatalf("Compact = (%d points, %d removed), want (2, 1)", points, removed)
	}
	if _, ok := st.Lookup("old/spruce"); ok {
		t.Error("emptied series survived compaction")
	}
	s, ok := st.Lookup("mixed/spruce")
	if !ok || s.Len() != 1 {
		t.Fatalf("mixed series = %v len %d, want 1 surviving point", ok, s.Len())
	}
	if got := s.Last(0)[0].Point; got != 20*unit.Mbps {
		t.Errorf("surviving point = %v, want the newer 20 Mbps", got)
	}
}

// TestSnapshotRoundtrip: write → load → restore reproduces the window
// byte-for-byte, continues sequence numbering, and a capacity-smaller
// restore keeps the newest points.
func TestSnapshotRoundtrip(t *testing.T) {
	st := NewStore(8)
	t0 := time.Unix(1000, 0).UTC()
	for i := 0; i < 5; i++ {
		st.Append("tgt", "spruce", "acme", mkPoint(t0.Add(time.Duration(i)*time.Second), unit.Rate(i+1)*unit.Mbps))
	}
	st.Append("tgt2", "delphi", "acme", Point{At: t0, Err: "refused"})
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := st.WriteSnapshot(path, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != snapshotSchema || len(snap.Series) != 2 {
		t.Fatalf("snapshot schema %q, %d series; want %q, 2", snap.Schema, len(snap.Series), snapshotSchema)
	}

	st2 := NewStore(8)
	st2.Restore(snap)
	s, ok := st2.Lookup("tgt/spruce")
	if !ok {
		t.Fatal("restored store lost tgt/spruce")
	}
	if !reflect.DeepEqual(s.Last(0), st.All()[0].Last(0)) {
		t.Error("restored points differ from the originals")
	}
	if s.Tenant != "acme" {
		t.Errorf("restored tenant = %q, want acme", s.Tenant)
	}
	s.Append(mkPoint(t0.Add(time.Hour), unit.Mbps))
	if got := s.Last(1)[0].Seq; got != 5 {
		t.Errorf("post-restore Seq = %d, want 5 (continuing the snapshot's numbering)", got)
	}

	// A smaller store keeps the newest points and counts the truncation
	// as evicted.
	st3 := NewStore(2)
	st3.Restore(snap)
	s3, _ := st3.Lookup("tgt/spruce")
	pts := s3.Last(0)
	if len(pts) != 2 || pts[0].Seq != 3 || pts[1].Seq != 4 {
		t.Fatalf("truncated restore = %+v, want Seq 3,4", pts)
	}
	if s3.Evicted() != 3 {
		t.Errorf("truncated restore Evicted = %d, want 3", s3.Evicted())
	}
}

// TestLoadSnapshotRejectsForeignSchema: a schema mismatch is an error,
// not a silent empty store.
func TestLoadSnapshotRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	st := NewStore(4)
	if err := st.WriteSnapshot(path, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if err := os.WriteFile(path, []byte(`{"schema":"other/9","series":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
