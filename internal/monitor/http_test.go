package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"abw/internal/livenet"
	"abw/internal/tools/registry"
)

// newServedMonitor builds a monitor with two sim targets and an
// attached (idle) receiver, runs one cycle, and serves its handler.
func newServedMonitor(t *testing.T) (*Monitor, *httptest.Server) {
	t.Helper()
	r, err := livenet.ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	clk := NewFakeClock(time.Unix(1_700_000_000, 0).UTC())
	m, err := New(Config{
		Targets: []Target{
			// Repeat 8: enough Poisson pairs that the estimate is reliably
			// positive (2 pairs can legitimately round down to 0 bps).
			{Name: "edge-a", Tenant: "acme", Tool: "spruce", Scenario: "canonical", Params: registry.Params{Repeat: 8}},
			{Name: "edge-b", Tenant: "acme", Tool: "delphi", Scenario: "bursty", Params: registry.Params{Repeat: 2, StreamLen: 5}},
		},
		Interval: 10 * time.Second,
		Seed:     5,
		Clock:    clk,
		Receiver: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	drain(t, m, clk, 11*time.Second, 2)
	t.Cleanup(m.Close)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestHTTPStatusAndSeries: the JSON surface exposes scheduler counters,
// ledger accounting, receiver stats, series listings, and per-series
// points.
func TestHTTPStatusAndSeries(t *testing.T) {
	_, srv := newServedMonitor(t)

	code, body := get(t, srv.URL+"/api/status")
	if code != http.StatusOK {
		t.Fatalf("/api/status = %d", code)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/api/status is not JSON: %v", err)
	}
	if st.Monitor.Targets != 2 || st.Monitor.RunsOK != 2 {
		t.Errorf("status counters = %d targets / %d ok, want 2/2", st.Monitor.Targets, st.Monitor.RunsOK)
	}
	if st.Ledger.Admitted != 2 {
		t.Errorf("ledger admitted = %d, want 2", st.Ledger.Admitted)
	}
	if st.Receiver == nil {
		t.Error("status omits the attached receiver's stats")
	}

	code, body = get(t, srv.URL+"/api/series")
	if code != http.StatusOK {
		t.Fatalf("/api/series = %d", code)
	}
	var infos []SeriesInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("/api/series is not JSON: %v", err)
	}
	if len(infos) != 2 || infos[0].Target != "edge-a" || infos[1].Target != "edge-b" {
		t.Fatalf("series listing = %+v, want edge-a then edge-b", infos)
	}
	if infos[0].Rollup.Count != 1 {
		t.Errorf("edge-a rollup count = %d, want 1", infos[0].Rollup.Count)
	}

	code, body = get(t, srv.URL+"/api/series/edge-a/spruce?n=1")
	if code != http.StatusOK {
		t.Fatalf("/api/series/edge-a/spruce = %d: %s", code, body)
	}
	var detail struct {
		SeriesInfo
		Points []Point `json:"points"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatalf("series detail is not JSON: %v", err)
	}
	if len(detail.Points) != 1 || detail.Points[0].Point <= 0 {
		t.Fatalf("series detail points = %+v, want 1 successful estimate", detail.Points)
	}

	if code, _ := get(t, srv.URL+"/api/series/nope/spruce"); code != http.StatusNotFound {
		t.Errorf("unknown series = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/api/series/edge-a/spruce?n=potato"); code != http.StatusBadRequest {
		t.Errorf("bad n = %d, want 400", code)
	}
}

// TestHTTPMetricsParseable holds /metrics to the Prometheus text
// exposition format: every line is a comment or `name{labels} value`
// with a float-parsable value, HELP/TYPE precede their samples, and the
// load-bearing metrics are present.
func TestHTTPMetricsParseable(t *testing.T) {
	_, srv := newServedMonitor(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}

	typed := map[string]bool{}
	samples := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", i+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "gauge" && f[3] != "counter") {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			typed[f[2]] = true
			continue
		}
		// Sample: name or name{labels}, space, float.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", i+1, line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: unparsable value in %q: %v", i+1, line, err)
		}
		id := line[:sp]
		name := id
		if b := strings.IndexByte(id, '{'); b >= 0 {
			if !strings.HasSuffix(id, "}") {
				t.Fatalf("line %d: unterminated label set: %q", i+1, line)
			}
			name = id[:b]
			for _, pair := range strings.Split(id[b+1:len(id)-1], ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", i+1, pair)
				}
			}
		}
		if !typed[name] {
			t.Fatalf("line %d: sample %q precedes its TYPE", i+1, name)
		}
		samples[id] = val
	}

	for metric, want := range map[string]float64{
		`abw_monitor_targets`:                              2,
		`abw_monitor_runs_total{result="ok"}`:              2,
		`abw_monitor_runs_total{result="err"}`:             0,
		`abw_monitor_admission_total{decision="admitted"}`: 2,
		`abw_receiver_active_sessions`:                     0,
	} {
		got, ok := samples[metric]
		if !ok {
			t.Errorf("metric %s missing", metric)
		} else if got != want {
			t.Errorf("metric %s = %g, want %g", metric, got, want)
		}
	}
	if v, ok := samples[`abw_monitor_estimate_bps{target="edge-a",tool="spruce"}`]; !ok || v <= 0 {
		t.Errorf("per-series estimate gauge missing or non-positive (%g)", v)
	}
}
