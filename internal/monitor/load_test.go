package monitor

import (
	"fmt"
	"testing"
	"time"

	"abw/internal/core"
	"abw/internal/tools/registry"
	"abw/internal/unit"
)

// TestMonitorLoadThousandSessions is the scale acceptance: 1000
// concurrently scheduled sim sessions sustain two full measurement
// cycles under a fake clock, with the fleet ledger's caps holding and
// shutdown leaving nothing in flight. Hermetic — no sockets, no real
// sleeping — so it runs in CI at full size.
func TestMonitorLoadThousandSessions(t *testing.T) {
	const n = 1000
	scenarios := []string{"canonical", "bursty", "poisson", "mice"}
	targets := make([]Target, n)
	for i := range targets {
		targets[i] = Target{
			Name:     fmt.Sprintf("edge-%04d", i),
			Tenant:   fmt.Sprintf("tenant-%d", i%7),
			Tool:     "spruce",
			Scenario: scenarios[i%len(scenarios)],
			Params:   registry.Params{Repeat: 1},
			EstBytes: 8_000,
		}
	}
	const maxBytes = unit.Bytes(100_000_000)
	clk := NewFakeClock(time.Unix(1_700_000_000, 0).UTC())
	m, err := New(Config{
		Targets:       targets,
		Interval:      10 * time.Second,
		Seed:          11,
		MaxConcurrent: 64,
		History:       8,
		Budget:        core.Budget{MaxBytes: maxBytes},
		Clock:         clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if st := m.Stats(); st.Scheduled != n {
		t.Fatalf("Scheduled = %d after Start, want %d", st.Scheduled, n)
	}
	for i := 0; i < 2; i++ {
		drain(t, m, clk, 11*time.Second, uint64(n*(i+1)))
	}
	st := m.Stats()
	if st.RunsOK != 2*n {
		t.Errorf("RunsOK = %d, want %d (every scheduled run succeeding)", st.RunsOK, 2*n)
	}
	led := m.Ledger().Stats()
	if led.Bytes > maxBytes {
		t.Errorf("fleet charge %d exceeds cap %d", led.Bytes, maxBytes)
	}
	if len(led.Tenants) != 7 {
		t.Errorf("ledger tracked %d tenants, want 7", len(led.Tenants))
	}
	if got := len(m.Store().All()); got != n {
		t.Errorf("store holds %d series, want %d", got, n)
	}

	m.Close()
	if st := m.Stats(); st.Active != 0 {
		t.Errorf("%d runs still in flight after Close", st.Active)
	}
	// Closing again must stay a no-op at scale too.
	m.Close()
}

// BenchmarkMonitorIngest measures the store's append path — the
// per-run cost of recording a point into a full ring with concurrent
// rollup-free appends across many series, i.e. the monitor's steady
// state write load.
func BenchmarkMonitorIngest(b *testing.B) {
	st := NewStore(512)
	const series = 64
	keys := make([]string, series)
	for i := range keys {
		keys[i] = fmt.Sprintf("edge-%03d", i)
	}
	at := time.Unix(1_700_000_000, 0)
	p := Point{At: at, Point: 40 * unit.Mbps, Low: 35 * unit.Mbps, High: 45 * unit.Mbps,
		Streams: 2, Packets: 4, ProbeBytes: 6000, Elapsed: 12 * time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			st.Append(keys[i%series], "spruce", "default", p)
			i++
		}
	})
}
