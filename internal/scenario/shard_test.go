package scenario

import (
	"testing"
	"time"

	"abw/internal/unit"
)

// aggTruth snapshots an aggregate-mode compilation's observable ground
// truth over a horizon: per-hop utilization and avail-bw series plus
// drop counts.
func aggTruth(t *testing.T, c *Compiled, horizon time.Duration) [][]unit.Rate {
	t.Helper()
	c.Sim.RunUntil(horizon)
	out := make([][]unit.Rate, len(c.Recorders))
	for h, r := range c.Recorders {
		out[h] = append([]unit.Rate(nil), r.AvailBwSeries(0, horizon, 100*time.Millisecond)...)
		out[h] = append(out[h], unit.Rate(r.Drops()))
	}
	return out
}

// TestShardRecycledCompileBitIdentical is the arena safety property:
// compiling a scenario out of a shard's recycled memory — events,
// packets, and recorder bins all reclaimed from earlier runs of other
// scenarios and of itself — must give exactly the ground truth of a
// cold Compile. Three rounds make the later compiles run entirely on
// recycled, footprint-sized pools.
func TestShardRecycledCompileBitIdentical(t *testing.T) {
	const horizon = 2 * time.Second
	const epoch = 100 * time.Millisecond
	names := []string{"canonical", "bursty", "multibottleneck"}
	sh := NewShard()

	for round := 0; round < 3; round++ {
		for _, name := range names {
			d, ok := Lookup(name)
			if !ok {
				t.Fatalf("scenario %q not in catalog", name)
			}
			warm, err := sh.CompileSeededAggregate(d, 1, epoch)
			if err != nil {
				t.Fatalf("round %d %s: shard compile: %v", round, name, err)
			}
			cold, err := d.CompileSeededAggregate(1, epoch)
			if err != nil {
				t.Fatalf("round %d %s: cold compile: %v", round, name, err)
			}
			got := aggTruth(t, warm, horizon)
			want := aggTruth(t, cold, horizon)
			for h := range want {
				if len(got[h]) != len(want[h]) {
					t.Fatalf("round %d %s hop %d: %d shard samples vs %d cold",
						round, name, h, len(got[h]), len(want[h]))
				}
				for i := range want[h] {
					if got[h][i] != want[h][i] {
						t.Fatalf("round %d %s hop %d sample %d: shard %v != cold %v",
							round, name, h, i, got[h][i], want[h][i])
					}
				}
			}
			sh.Recycle(name, warm)
		}
	}

	// After a recycle the footprints must be recorded, and a fresh
	// compile must still work with a grown arena.
	for _, name := range names {
		f, ok := sh.foot[name]
		if !ok {
			t.Fatalf("no footprint recorded for %s", name)
		}
		if f.Events == 0 {
			t.Errorf("%s footprint has no events: %+v", name, f)
		}
	}
}
