package scenario

import (
	"context"
	"reflect"
	"testing"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/unit"
)

// TestFeaturesBitIdenticalUnderPooling extends the pooling safety
// property to the probe-feature layer: the canonical FeatureVector of a
// stream probed through a compiled scenario must be bit-identical
// whether the simulator reuses event/packet memory or allocates fresh —
// the feature dataset (and therefore the learned model's training
// input) cannot depend on a memory optimization.
func TestFeaturesBitIdenticalUnderPooling(t *testing.T) {
	for _, name := range []string{"canonical", "bursty", "lossy"} {
		t.Run(name, func(t *testing.T) {
			d, ok := Lookup(name)
			if !ok {
				t.Fatalf("scenario %q not in catalog", name)
			}
			probeOnce := func(pooled bool) []probe.FeatureVector {
				cpl, err := d.CompileSeeded(1)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				cpl.Sim.SetPooling(pooled)
				var out []probe.FeatureVector
				for _, frac := range []float64{0.5, 0.9} {
					rate := unit.Rate(float64(cpl.Capacity) * frac)
					rec, err := core.Probe(context.Background(), cpl.Transport, probe.Periodic(rate, 1000, 50))
					if err != nil {
						t.Fatalf("probe: %v", err)
					}
					out = append(out, probe.ExtractFeatures(rec))
				}
				return out
			}
			pooled := probeOnce(true)
			plain := probeOnce(false)
			if !reflect.DeepEqual(pooled, plain) {
				t.Errorf("features differ with pooling on/off:\n  pooled: %+v\n  plain:  %+v", pooled, plain)
			}
		})
	}
}
