// Package scenario is the declarative scenario subsystem: the single
// place in the module where cross-traffic topologies are constructed.
// A Spec describes a heterogeneous path — per-hop capacity, buffer and
// propagation delay, each hop carrying an arbitrary mix of traffic
// sources (CBR, Poisson, Pareto ON-OFF, Pareto interarrivals, LRD
// trace replay, TCP mice, window-limited persistent TCP), optionally
// with a piecewise-constant rate profile for step/ramp avail-bw — and
// Compile realizes it on the discrete-event simulator with exact
// per-hop ground truth: a Recorder per link (the paper's Equations
// 1–3 at any timescale) and the tight-vs-narrow link distinction the
// paper's fifth pitfall turns on.
//
// The named catalog (catalog.go) mirrors the estimator registry: every
// condition the paper warns about is a nameable, reproducible scenario
// that any tool can be pointed at.
package scenario

import (
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/crosstraffic"
	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/tcp"
	"abw/internal/trace"
	"abw/internal/unit"
)

// Seed returns a pointer to v, for Spec.Seed: the pointer form makes
// seed 0 a valid explicit seed (nil means the default seed 1).
func Seed(v uint64) *uint64 { return &v }

// DefaultSeed is the seed used when Spec.Seed is nil.
const DefaultSeed uint64 = 1

// Kind selects a traffic-source model.
type Kind int

// Traffic-source models.
const (
	// CBR is a perfectly periodic source: the closest packet-level
	// approximation of the paper's fluid model.
	CBR Kind = iota
	// Poisson has exponential interarrivals at the configured mean rate.
	Poisson
	// ParetoOnOff is the paper's "most bursty" model: heavy-tailed
	// ON-OFF bursts (Figure 3).
	ParetoOnOff
	// ParetoArrivals has Pareto interarrival times (Figure 7's
	// unresponsive UDP cross traffic).
	ParetoArrivals
	// LRD replays a synthesized long-range-dependent packet trace
	// (fGn rate-modulated, exactly known Hurst parameter), tiled over
	// the horizon.
	LRD
	// Mice is an aggregate of short TCP transfers: Poisson flow
	// arrivals, bounded-Pareto flow sizes (Figure 7's "size limited
	// TCP").
	Mice
	// BufferLimitedTCP is a fixed set of persistent TCP connections
	// capped by their advertised windows (Figure 7's "buffer limited
	// TCP"). Rate is the nominal aggregate used for ground-truth
	// accounting; the realized rate is congestion-responsive.
	BufferLimitedTCP
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CBR:
		return "CBR"
	case Poisson:
		return "Poisson"
	case ParetoOnOff:
		return "Pareto ON-OFF"
	case ParetoArrivals:
		return "Pareto interarrivals"
	case LRD:
		return "LRD trace"
	case Mice:
		return "TCP mice"
	case BufferLimitedTCP:
		return "buffer-limited TCP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// RateStep is one segment of a piecewise-constant rate profile: the
// source emits at Rate from At until the next step (or the horizon).
type RateStep struct {
	At   time.Duration
	Rate unit.Rate
}

// Source describes one traffic source on a hop. Zero fields take
// defaults; only Kind-relevant fields are consulted.
type Source struct {
	// Kind selects the model.
	Kind Kind
	// Rate is the long-run mean rate. For Mice it is the offered load;
	// for BufferLimitedTCP it is the nominal aggregate rate used for
	// ground-truth accounting (the realized rate is elastic).
	Rate unit.Rate
	// Steps, if set, replaces Rate with a piecewise-constant profile
	// (step/ramp avail-bw). The first step must be at 0. Only the
	// packet models (CBR, Poisson, ParetoOnOff, ParetoArrivals)
	// support profiles.
	Steps []RateStep
	// PktSize is the fixed packet size in bytes (default 1500).
	PktSize unit.Bytes
	// Sizes, if set, draws packet sizes and overrides PktSize.
	Sizes rng.SizeDist
	// Shape is the Pareto interarrival shape for ParetoArrivals
	// (default 1.9).
	Shape float64
	// Hurst is the LRD envelope's Hurst parameter (default 0.8).
	Hurst float64
	// MeanFlowBytes is the Mice mean transfer size (default 40 kB).
	MeanFlowBytes unit.Bytes
	// Conns is the BufferLimitedTCP connection count (default 1).
	Conns int
	// Window is the BufferLimitedTCP per-connection receiver window in
	// segments (default 32).
	Window int
	// SplitLabel overrides the rng derivation label (default
	// "hop<h>" for a hop's first source, "hop<h>.<j>" for the rest).
	// Experiments that predate this package pin their historical
	// labels through it so their numbers stay bit-identical.
	SplitLabel string
	// Flow labels the source's packets (0 = auto: 1000+hop for a
	// hop's first source). Purely diagnostic.
	Flow int
}

// Hop is one store-and-forward link of the path with the traffic it
// carries one-hop-persistently (enters at this link, exits after it —
// the paper's Figure 4 pattern).
type Hop struct {
	// Capacity is the link's transmission rate (required).
	Capacity unit.Rate
	// Buffer bounds the queue in bytes (0 = unbounded).
	Buffer unit.Bytes
	// PropDelay is the propagation latency (default 1 ms).
	PropDelay time.Duration
	// Traffic is the set of sources entering at this hop.
	Traffic []Source

	// Queue selects the hop's queue discipline (default FIFO tail-drop).
	Queue Queue
	// Loss adds a random transmission-loss process at the link input
	// (default none).
	Loss Loss
	// Reorder adds bounded random reordering via propagation jitter
	// (default in-order).
	Reorder Reorder
	// CapacitySteps, if set, makes the hop's capacity a piecewise-
	// constant process (wireless fading, rate adaptation). The first
	// step must be at 0; leave Capacity zero — the long-run effective
	// capacity used for ground truth is the profile's time-weighted
	// mean over the horizon.
	CapacitySteps []RateStep
}

// Spec is a declarative scenario: a heterogeneous path plus the
// schedule of every traffic source on it. Compile realizes it.
type Spec struct {
	// Hops is the sender-to-receiver link sequence (at least one).
	Hops []Hop
	// Horizon is how long traffic is scheduled (default 120 s).
	// Lazy models cost nothing beyond the virtual time actually
	// consumed, so generous horizons are cheap.
	Horizon time.Duration
	// Seed seeds all randomness; nil means DefaultSeed. Seed(0) is a
	// valid explicit seed.
	Seed *uint64
	// WithReverse forces a reverse (ack) link even when no TCP source
	// needs one, for callers that run their own TCP over the path.
	WithReverse bool
	// ReverseCapacity is the reverse link capacity (default 1 Gbps).
	ReverseCapacity unit.Rate
	// ReversePropDelay is the reverse link propagation latency
	// (default 1 ms).
	ReversePropDelay time.Duration
	// RecorderEpoch, when positive, compiles every hop's ground-truth
	// recorder in bounded aggregate mode with this epoch: per-epoch
	// byte/busy counters instead of per-packet arrival rows, so memory
	// stays Horizon/RecorderEpoch regardless of packet count. Long-run
	// scenarios (and consumers that only need coarse ground truth, like
	// the tools×scenarios matrix) opt in; per-packet queries
	// (Recorder.Arrivals/BusyIntervals) are then unavailable and
	// sub-epoch windows are pro-rated.
	RecorderEpoch time.Duration
}

// Compiled is a realized scenario: the simulation, the path with a
// ground-truth Recorder per hop, a transport for probing, and the
// analytic long-run truth derived from the spec.
type Compiled struct {
	// Spec is the defaults-resolved spec the scenario was built from.
	Spec Spec
	// Sim is the underlying simulation.
	Sim *sim.Sim
	// Path is the forward path.
	Path *sim.Path
	// Reverse is the ack link (nil unless a TCP source or WithReverse
	// asked for one).
	Reverse *sim.Link
	// Recorders holds one ground-truth recorder per hop.
	Recorders []*sim.Recorder
	// Transport delivers probing streams over the path.
	Transport *core.SimTransport
	// TrueAvailBw is the analytic long-run avail-bw of the tight link:
	// min over hops of capacity minus the hop's mean traffic rate.
	TrueAvailBw unit.Rate
	// Capacity is the tight-link capacity — what direct-probing tools
	// need as Params.Capacity (and what capacity-estimation tools do
	// NOT measure when the tight link is not the narrow one).
	Capacity unit.Rate
	// TightLink is the hop index with the minimum long-run avail-bw.
	TightLink int
	// NarrowLink is the hop index with the minimum capacity.
	NarrowLink int
}

// AvailBw returns the measured ground-truth avail-bw of the given hop
// over [from, from+window): the paper's A(t, t+τ) from the hop's
// recorder.
func (c *Compiled) AvailBw(hop int, from, window time.Duration) unit.Rate {
	return c.Recorders[hop].AvailBw(from, window)
}

// AvailBwSeries samples hop's avail-bw process A_τ(t) on consecutive
// windows covering [from, to).
func (c *Compiled) AvailBwSeries(hop int, from, to, tau time.Duration) []unit.Rate {
	return c.Recorders[hop].AvailBwSeries(from, to, tau)
}

// MustCompile is Compile that panics on error, for specs that are
// compile-time constants (the catalog, test helpers).
func MustCompile(spec Spec) *Compiled {
	c, err := Compile(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// Compile realizes the spec on a fresh simulation. Identical specs
// (including seed) give identical packet-level behavior.
func Compile(spec Spec) (*Compiled, error) { return compile(spec, nil) }

// CompileArena is Compile with the simulation's pools primed from an
// arena (see sim.Arena): the fresh simulation's event free list, packet
// pool, and aggregate-recorder bin storage are seeded from memory
// reclaimed out of earlier runs instead of warmed from cold. Priming
// only pre-fills free lists, so the compiled scenario is bit-identical
// to a plain Compile of the same spec. A nil arena is a plain Compile.
func CompileArena(spec Spec, arena *sim.Arena) (*Compiled, error) {
	return compile(spec, arena)
}

func compile(spec Spec, arena *sim.Arena) (*Compiled, error) {
	if len(spec.Hops) == 0 {
		return nil, fmt.Errorf("scenario: a spec needs at least one hop")
	}
	resolved := spec
	if resolved.Horizon == 0 {
		resolved.Horizon = 120 * time.Second
	}
	if resolved.Horizon < 0 {
		return nil, fmt.Errorf("scenario: negative horizon %v", resolved.Horizon)
	}
	if resolved.ReverseCapacity == 0 {
		resolved.ReverseCapacity = unit.Gbps
	}
	if resolved.ReversePropDelay == 0 {
		resolved.ReversePropDelay = time.Millisecond
	}
	if resolved.RecorderEpoch < 0 {
		return nil, fmt.Errorf("scenario: negative recorder epoch %v", resolved.RecorderEpoch)
	}
	seed := DefaultSeed
	if resolved.Seed != nil {
		seed = *resolved.Seed
	}

	s := sim.New()
	if arena != nil {
		arena.Prime(s)
	}
	links := make([]*sim.Link, len(resolved.Hops))
	recs := make([]*sim.Recorder, len(resolved.Hops))
	lossMeans := make([]float64, len(resolved.Hops))
	needReverse := resolved.WithReverse
	for h, hop := range resolved.Hops {
		capacity := hop.Capacity
		if len(hop.CapacitySteps) > 0 {
			if hop.Capacity != 0 {
				return nil, fmt.Errorf("scenario: hop %d sets both Capacity and CapacitySteps; leave Capacity zero (the effective capacity is derived from the profile)", h)
			}
			if err := sim.ValidateCapacitySteps(capacitySteps(hop.CapacitySteps)); err != nil {
				return nil, fmt.Errorf("scenario: hop %d: %w", h, err)
			}
			capacity = hop.CapacitySteps[0].Rate
		} else if hop.Capacity <= 0 {
			return nil, fmt.Errorf("scenario: hop %d capacity %v must be positive", h, hop.Capacity)
		}
		prop := hop.PropDelay
		if prop == 0 {
			prop = time.Millisecond
		}
		links[h] = s.NewLink(fmt.Sprintf("hop%d", h), capacity, prop)
		links[h].BufferBytes = hop.Buffer
		if resolved.RecorderEpoch > 0 {
			recs[h] = sim.NewAggregateRecorder(capacity, resolved.RecorderEpoch)
			if arena != nil {
				arena.PrimeRecorder(recs[h])
			}
		} else {
			recs[h] = sim.NewRecorder(capacity)
		}
		links[h].Attach(recs[h])
		lm, err := applyLinkModels(links[h], recs[h], h, hop, seed)
		if err != nil {
			return nil, err
		}
		lossMeans[h] = lm
		for _, src := range hop.Traffic {
			if src.Kind == Mice || src.Kind == BufferLimitedTCP {
				needReverse = true
			}
		}
	}
	path := sim.MustPath(links...)
	var reverse *sim.Link
	if needReverse {
		reverse = s.NewLink("reverse", resolved.ReverseCapacity, resolved.ReversePropDelay)
	}

	// Source realization. The split order (hop-major, source-minor) and
	// the default labels are a compatibility contract: they reproduce
	// the rng streams of the pre-subsystem constructions exactly, which
	// is what keeps EXPERIMENTS.md and the tool tests bit-identical.
	root := rng.New(seed)
	cpl := &Compiled{
		Spec:      resolved,
		Sim:       s,
		Path:      path,
		Reverse:   reverse,
		Recorders: recs,
		Transport: core.NewSimTransport(s, path),
	}
	for h, hop := range resolved.Hops {
		for j, src := range hop.Traffic {
			if err := runSource(s, root, links[h], reverse, h, j, src, resolved.Horizon); err != nil {
				return nil, err
			}
		}
	}

	// Analytic long-run ground truth: per-hop mean traffic rate from
	// the spec, tight link = argmin avail, narrow link = argmin
	// capacity (first wins on ties, matching sim.Path.NarrowLink).
	// Under a capacity profile the hop's capacity is the profile's
	// long-run mean; under a loss model the hop's carried load is the
	// offered load thinned by the stationary loss probability (lost
	// packets never consume transmission time).
	tight, narrow := 0, 0
	var tightA unit.Rate
	effCaps := make([]unit.Rate, len(resolved.Hops))
	for h, hop := range resolved.Hops {
		var load unit.Rate
		for _, src := range hop.Traffic {
			r, err := src.meanRate(resolved.Horizon)
			if err != nil {
				return nil, fmt.Errorf("scenario: hop %d: %w", h, err)
			}
			load += r
		}
		effCaps[h] = hop.effectiveCapacity(resolved.Horizon)
		carried := unit.Rate(float64(load) * (1 - lossMeans[h]))
		avail := effCaps[h] - carried
		if avail < 0 {
			avail = 0
		}
		if h == 0 || avail < tightA {
			tight, tightA = h, avail
		}
		if effCaps[h] < effCaps[narrow] {
			narrow = h
		}
	}
	cpl.TightLink, cpl.NarrowLink = tight, narrow
	cpl.TrueAvailBw = tightA
	cpl.Capacity = effCaps[tight]
	return cpl, nil
}

// meanRate returns the source's long-run mean rate over the horizon.
func (src Source) meanRate(horizon time.Duration) (unit.Rate, error) {
	segs, err := src.segments(horizon)
	if err != nil {
		return 0, err
	}
	if horizon <= 0 {
		return 0, nil
	}
	var weighted float64
	for _, g := range segs {
		weighted += float64(g.rate) * (g.until - g.from).Seconds()
	}
	return unit.Rate(weighted / horizon.Seconds()), nil
}

// segment is one constant-rate stretch of a source's profile.
type segment struct {
	from, until time.Duration
	rate        unit.Rate
}

// segments expands the source's rate profile over [0, horizon).
func (src Source) segments(horizon time.Duration) ([]segment, error) {
	if len(src.Steps) == 0 {
		if src.Rate <= 0 {
			return nil, fmt.Errorf("scenario: %s source needs a positive rate", src.Kind)
		}
		return []segment{{0, horizon, src.Rate}}, nil
	}
	switch src.Kind {
	case CBR, Poisson, ParetoOnOff, ParetoArrivals:
	default:
		return nil, fmt.Errorf("scenario: %s source does not support rate steps", src.Kind)
	}
	if src.Steps[0].At != 0 {
		return nil, fmt.Errorf("scenario: the first rate step must be at 0 (got %v)", src.Steps[0].At)
	}
	var segs []segment
	for i, st := range src.Steps {
		if st.Rate < 0 {
			return nil, fmt.Errorf("scenario: negative rate step %v", st.Rate)
		}
		until := horizon
		if i+1 < len(src.Steps) {
			until = src.Steps[i+1].At
			if until <= st.At {
				return nil, fmt.Errorf("scenario: rate steps must be strictly increasing in time")
			}
		}
		if st.At >= horizon {
			break
		}
		if until > horizon {
			until = horizon
		}
		segs = append(segs, segment{st.At, until, st.Rate})
	}
	return segs, nil
}

// sizes returns the source's packet-size distribution.
func (src Source) sizes() rng.SizeDist {
	if src.Sizes != nil {
		return src.Sizes
	}
	if src.PktSize > 0 {
		return rng.FixedSize(int(src.PktSize))
	}
	return rng.FixedSize(1500)
}

// runSource schedules one source on its hop. Sources that need
// randomness derive exactly one child stream from root, in hop-major
// order, under the source's (possibly overridden) label.
func runSource(s *sim.Sim, root *rng.Rand, link, reverse *sim.Link, h, j int, src Source, horizon time.Duration) error {
	route := []*sim.Link{link}
	label := src.SplitLabel
	if label == "" {
		if j == 0 {
			label = fmt.Sprintf("hop%d", h)
		} else {
			label = fmt.Sprintf("hop%d.%d", h, j)
		}
	}
	flow := src.Flow
	if flow == 0 {
		flow = 1000 + h
	}
	stream := func(rate unit.Rate) crosstraffic.Stream {
		return crosstraffic.Stream{Rate: rate, Sizes: src.sizes(), Flow: flow}
	}
	switch src.Kind {
	case CBR:
		segs, err := src.segments(horizon)
		if err != nil {
			return err
		}
		for _, g := range segs {
			if g.rate == 0 {
				continue
			}
			crosstraffic.CBR(stream(g.rate)).Run(s, route, g.from, g.until)
		}
	case Poisson:
		segs, err := src.segments(horizon)
		if err != nil {
			return err
		}
		r := root.Split(label)
		for _, g := range segs {
			if g.rate == 0 {
				continue
			}
			crosstraffic.Poisson(stream(g.rate), r).Run(s, route, g.from, g.until)
		}
	case ParetoOnOff:
		segs, err := src.segments(horizon)
		if err != nil {
			return err
		}
		r := root.Split(label)
		for _, g := range segs {
			if g.rate == 0 {
				continue
			}
			crosstraffic.ParetoOnOff(crosstraffic.ParetoOnOffConfig{Stream: stream(g.rate), OffCap: 200}, r).
				Run(s, route, g.from, g.until)
		}
	case ParetoArrivals:
		segs, err := src.segments(horizon)
		if err != nil {
			return err
		}
		shape := src.Shape
		if shape == 0 {
			shape = 1.9
		}
		r := root.Split(label)
		for _, g := range segs {
			if g.rate == 0 {
				continue
			}
			crosstraffic.ParetoArrivals(stream(g.rate), shape, r).Run(s, route, g.from, g.until)
		}
	case LRD:
		if src.Rate <= 0 {
			return fmt.Errorf("scenario: LRD source needs a positive rate")
		}
		if src.Rate >= link.Capacity {
			return fmt.Errorf("scenario: LRD rate %v must be below the hop capacity %v", src.Rate, link.Capacity)
		}
		hurst := src.Hurst
		if hurst == 0 {
			hurst = 0.8
		}
		sizes := src.Sizes
		if sizes == nil {
			sizes = rng.InternetMix
		}
		r := root.Split(label)
		base, err := trace.SynthesizeFGN(trace.FGNConfig{
			Capacity: link.Capacity,
			MeanRate: src.Rate,
			Hurst:    hurst,
			Span:     30 * time.Second,
			Sizes:    sizes,
		}, r)
		if err != nil {
			return fmt.Errorf("scenario: LRD synthesis: %w", err)
		}
		replayTrace(s, route, base, flow, 0, horizon)
	case Mice:
		if src.Rate <= 0 {
			return fmt.Errorf("scenario: mice source needs a positive offered load")
		}
		r := root.Split(label)
		mice, err := tcp.NewMice(tcp.MiceConfig{
			OfferedLoad:   src.Rate,
			MeanFlowBytes: src.MeanFlowBytes,
		})
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		return mice.Run(s, route, []*sim.Link{reverse}, 0, horizon, flow, r)
	case BufferLimitedTCP:
		if src.Rate <= 0 {
			return fmt.Errorf("scenario: buffer-limited TCP needs a nominal rate for ground-truth accounting")
		}
		conns := src.Conns
		if conns == 0 {
			conns = 1
		}
		window := src.Window
		if window == 0 {
			window = 32
		}
		for i := 0; i < conns; i++ {
			conn, err := tcp.New(s, route, []*sim.Link{reverse}, flow+i, tcp.Config{RcvWnd: window})
			if err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
			// Staggered starts, 50 ms apart, so the aggregate does not
			// slow-start in lockstep.
			conn.Start(time.Duration(i) * 50 * time.Millisecond)
		}
	default:
		return fmt.Errorf("scenario: unknown source kind %v", src.Kind)
	}
	return nil
}

// replayTrace tiles the base trace over [from, until). Each tile's
// injections are scheduled lazily at the tile boundary, so only tiles
// the run actually reaches materialize events.
func replayTrace(s *sim.Sim, route []*sim.Link, tr *trace.Trace, flow int, from, until time.Duration) {
	var tile func(start time.Duration)
	tile = func(start time.Duration) {
		if start >= until {
			return
		}
		for _, p := range tr.Packets() {
			at := start + p.At
			if at >= until {
				break
			}
			pkt := s.NewPacket()
			pkt.Size, pkt.Kind, pkt.Flow, pkt.Route = p.Size, sim.KindCross, flow, route
			s.Inject(pkt, at)
		}
		if next := start + tr.Span; next < until {
			s.At(next, func() { tile(next) })
		}
	}
	tile(from)
}
