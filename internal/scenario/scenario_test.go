package scenario

import (
	"reflect"
	"testing"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

// TestCBRGroundTruth is the recorder-vs-analytic property the ground
// truth rests on: under CBR cross traffic the measured avail-bw
// A(t, t+τ) must match C − R at every averaging timescale, up to the
// packet-quantization of the busy periods.
func TestCBRGroundTruth(t *testing.T) {
	cpl, err := Compile(Spec{
		Horizon: 12 * time.Second,
		Hops: []Hop{{
			Capacity: 50 * unit.Mbps,
			Traffic:  []Source{{Kind: CBR, Rate: 25 * unit.Mbps}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cpl.Sim.RunUntil(10 * time.Second)
	want := 25.0
	for _, tau := range []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, time.Second} {
		for _, from := range []time.Duration{time.Second, 3 * time.Second, 7 * time.Second} {
			got := cpl.AvailBw(0, from, tau).MbpsOf()
			if got < want*0.95 || got > want*1.05 {
				t.Errorf("AvailBw(τ=%v, t=%v) = %.2f Mbps, want %.1f ± 5%%", tau, from, got, want)
			}
		}
	}
	if cpl.TrueAvailBw != 25*unit.Mbps {
		t.Errorf("TrueAvailBw = %v, want 25 Mbps", cpl.TrueAvailBw)
	}
}

// TestTightVsNarrow asserts the catalog's two-hop scenario separates
// the tight link from the narrow link, in the analytic truth, in the
// per-hop measurements, and through sim.Path's own accessors.
func TestTightVsNarrow(t *testing.T) {
	d, ok := Lookup("narrowtight")
	if !ok {
		t.Fatal("narrowtight scenario missing from the catalog")
	}
	cpl, err := d.CompileSeeded(1)
	if err != nil {
		t.Fatal(err)
	}
	if cpl.TightLink == cpl.NarrowLink {
		t.Fatalf("TightLink = NarrowLink = %d; the scenario exists to separate them", cpl.TightLink)
	}
	if cpl.TightLink != 0 || cpl.NarrowLink != 1 {
		t.Fatalf("TightLink, NarrowLink = %d, %d; want 0, 1", cpl.TightLink, cpl.NarrowLink)
	}
	if cpl.Capacity != unit.FastEthernet {
		t.Errorf("tight-link capacity = %v, want %v", cpl.Capacity, unit.FastEthernet)
	}
	if cpl.TrueAvailBw != 20*unit.Mbps {
		t.Errorf("TrueAvailBw = %v, want 20 Mbps", cpl.TrueAvailBw)
	}

	cpl.Sim.RunUntil(6 * time.Second)
	window := 4 * time.Second
	a0 := cpl.AvailBw(0, time.Second, window).MbpsOf()
	a1 := cpl.AvailBw(1, time.Second, window).MbpsOf()
	if a0 < 20*0.85 || a0 > 20*1.15 {
		t.Errorf("measured hop-0 avail-bw %.2f Mbps, want 20 ± 15%%", a0)
	}
	if a1 < 40*0.85 || a1 > 40*1.15 {
		t.Errorf("measured hop-1 avail-bw %.2f Mbps, want 40 ± 15%%", a1)
	}
	if got := cpl.Path.TightLink(time.Second, window); got != cpl.Path.Links[0] {
		t.Errorf("Path.TightLink = %s, want hop0", got.Name)
	}
	if got := cpl.Path.NarrowLink(); got != cpl.Path.Links[1] {
		t.Errorf("Path.NarrowLink = %s, want hop1", got.Name)
	}
}

// TestSeedZero asserts seed 0 is a real seed: explicit Seed(0) gives a
// different (but reproducible) realization than Seed(1), and a nil
// seed still defaults to 1.
func TestSeedZero(t *testing.T) {
	build := func(seed *uint64) []time.Duration {
		cpl := MustCompile(Spec{
			Horizon: 2 * time.Second,
			Seed:    seed,
			Hops: []Hop{{
				Capacity: 50 * unit.Mbps,
				Traffic:  []Source{{Kind: Poisson, Rate: 25 * unit.Mbps}},
			}},
		})
		cpl.Sim.RunUntil(2 * time.Second)
		arr := cpl.Recorders[0].Arrivals()
		out := make([]time.Duration, 0, 16)
		for i := 0; i < len(arr) && i < 16; i++ {
			out = append(out, arr[i].At)
		}
		return out
	}
	zeroA, zeroB := build(Seed(0)), build(Seed(0))
	one, def := build(Seed(1)), build(nil)
	if len(zeroA) == 0 {
		t.Fatal("seed-0 scenario generated no traffic")
	}
	eq := func(a, b []time.Duration) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eq(zeroA, zeroB) {
		t.Error("seed 0 is not reproducible")
	}
	if eq(zeroA, one) {
		t.Error("seed 0 and seed 1 produced identical traffic; 0 is being coerced")
	}
	if !eq(one, def) {
		t.Error("nil seed should default to seed 1")
	}
}

// TestStepProfile asserts a stepped source changes the measured
// avail-bw at the step instant: the time-varying ground truth the
// step-change scenario is built on.
func TestStepProfile(t *testing.T) {
	cpl, err := Compile(Spec{
		Horizon: 4 * time.Second,
		Hops: []Hop{{
			Capacity: 50 * unit.Mbps,
			Traffic: []Source{{
				Kind:  CBR,
				Steps: []RateStep{{At: 0, Rate: 10 * unit.Mbps}, {At: 2 * time.Second, Rate: 35 * unit.Mbps}},
			}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic long-run truth is the time-weighted mean: C − (10+35)/2.
	if got := cpl.TrueAvailBw.MbpsOf(); got < 27 || got > 28 {
		t.Errorf("TrueAvailBw = %.2f Mbps, want 27.5", got)
	}
	cpl.Sim.RunUntil(4 * time.Second)
	early := cpl.AvailBw(0, 500*time.Millisecond, time.Second).MbpsOf()
	late := cpl.AvailBw(0, 2500*time.Millisecond, time.Second).MbpsOf()
	if early < 38 || early > 42 {
		t.Errorf("pre-step avail-bw %.2f Mbps, want ~40", early)
	}
	if late < 13 || late > 17 {
		t.Errorf("post-step avail-bw %.2f Mbps, want ~15", late)
	}
}

// TestCatalog asserts the catalog covers the conditions the issue and
// the paper call for: at least eight scenarios spanning every source
// kind, a heterogeneous multi-hop path, and a time-varying profile.
func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) < 25 {
		t.Fatalf("catalog has %d scenarios, want >= 25", len(cat))
	}
	for _, want := range []string{
		"canonical", "bursty", "lrd", "mice",
		"narrowtight", "multibottleneck", "step", "postnarrow",
		"red", "codel", "lossy", "burstloss", "reorder",
		"fading", "longpath", "verylongpath", "internet",
		"random-a", "random-b", "random-c",
	} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("catalog is missing %q", want)
		}
	}

	// Global name/alias uniqueness: every lookup key resolves to
	// exactly one descriptor.
	seen := map[string]string{}
	for _, d := range cat {
		for _, name := range append([]string{d.Name}, d.Aliases...) {
			if prev, dup := seen[name]; dup {
				t.Errorf("name %q registered by both %q and %q", name, prev, d.Name)
			}
			seen[name] = d.Name
		}
	}

	kinds := map[Kind]bool{}
	multiHop, stepped, deepPath := false, false, false
	aqm, lossy, reordered, fading := false, false, false, false
	for _, d := range cat {
		if len(d.Spec.Hops) > 1 {
			multiHop = true
		}
		if len(d.Spec.Hops) >= 10 {
			deepPath = true
		}
		for _, hop := range d.Spec.Hops {
			if hop.Queue.Kind != QueueFIFO {
				aqm = true
			}
			if hop.Loss.Kind != LossNone {
				lossy = true
			}
			if hop.Reorder.Jitter > 0 {
				reordered = true
			}
			if len(hop.CapacitySteps) > 0 {
				fading = true
			}
			for _, src := range hop.Traffic {
				kinds[src.Kind] = true
				if len(src.Steps) > 0 {
					stepped = true
				}
			}
		}
		if d.Summary == "" {
			t.Errorf("%s: empty summary", d.Name)
		}
		// Every entry compiles at two seeds, with a physical ground
		// truth: 0 < TrueAvailBw <= tight-link capacity.
		for _, seed := range []uint64{1, 2} {
			cpl, err := d.CompileSeeded(seed)
			if err != nil {
				t.Errorf("%s seed %d: %v", d.Name, seed, err)
				continue
			}
			if cpl.TrueAvailBw <= 0 {
				t.Errorf("%s seed %d: non-positive ground truth %v", d.Name, seed, cpl.TrueAvailBw)
			}
			if cpl.TrueAvailBw > cpl.Capacity {
				t.Errorf("%s seed %d: ground truth %v exceeds tight capacity %v",
					d.Name, seed, cpl.TrueAvailBw, cpl.Capacity)
			}
		}
	}
	for _, k := range []Kind{CBR, Poisson, ParetoOnOff, LRD, Mice} {
		if !kinds[k] {
			t.Errorf("no catalog scenario uses %v traffic", k)
		}
	}
	for name, got := range map[string]bool{
		"heterogeneous multi-hop": multiHop,
		"time-varying load":       stepped,
		"10+ hop path":            deepPath,
		"AQM":                     aqm,
		"random loss":             lossy,
		"reordering":              reordered,
		"variable capacity":       fading,
	} {
		if !got {
			t.Errorf("no %s scenario in the catalog", name)
		}
	}
}

// TestRandomSpecDeterminism pins the RandomSpec contract: equal
// generator states yield bit-identical specs, and every drawn spec
// compiles with positive ground truth.
func TestRandomSpecDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := RandomSpec(rng.New(seed))
		b := RandomSpec(rng.New(seed))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: RandomSpec is not deterministic", seed)
		}
		if n := len(a.Hops); n < 1 || n > 16 {
			t.Fatalf("seed %d: %d hops outside [1, 16]", seed, n)
		}
		cpl, err := Compile(a)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cpl.TrueAvailBw <= 0 || cpl.TrueAvailBw > cpl.Capacity {
			t.Fatalf("seed %d: ground truth %v outside (0, %v]", seed, cpl.TrueAvailBw, cpl.Capacity)
		}
	}
	// Different states should explore the feature space.
	differ := false
	base := RandomSpec(rng.New(1))
	for seed := uint64(2); seed <= 5 && !differ; seed++ {
		differ = !reflect.DeepEqual(base, RandomSpec(rng.New(seed)))
	}
	if !differ {
		t.Error("RandomSpec returned identical specs for different seeds")
	}
}

// TestSpecValidation covers the compile-time error paths.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no hops", Spec{}},
		{"zero capacity", Spec{Hops: []Hop{{Traffic: []Source{{Kind: CBR, Rate: unit.Mbps}}}}}},
		{"zero rate", Spec{Hops: []Hop{{Capacity: unit.Mbps, Traffic: []Source{{Kind: CBR}}}}}},
		{"steps on mice", Spec{Hops: []Hop{{Capacity: 50 * unit.Mbps, Traffic: []Source{{
			Kind: Mice, Rate: unit.Mbps, Steps: []RateStep{{At: 0, Rate: unit.Mbps}}}}}}}},
		{"late first step", Spec{Hops: []Hop{{Capacity: 50 * unit.Mbps, Traffic: []Source{{
			Kind: CBR, Steps: []RateStep{{At: time.Second, Rate: unit.Mbps}}}}}}}},
		{"lrd above capacity", Spec{Hops: []Hop{{Capacity: unit.Mbps, Traffic: []Source{{
			Kind: LRD, Rate: 2 * unit.Mbps}}}}}},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.spec); err == nil {
			t.Errorf("%s: Compile accepted an invalid spec", tc.name)
		}
	}
}
