package scenario

import (
	"fmt"
	"time"

	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/unit"
)

// This file is the declarative face of the simulator's Internet-
// realistic link models: per-hop queue disciplines, random loss,
// bounded reordering and time-varying capacity, expressed as plain
// Spec fields and wired onto the compiled links. Every feature is
// off by default, and all feature randomness is derived with
// rng.Derive under stable per-hop labels — never from the root
// source stream — so adding a feature to one hop perturbs nothing
// else and pre-existing scenarios stay bit-identical.

// QueueKind selects a hop's queue discipline.
type QueueKind int

// Queue disciplines.
const (
	// QueueFIFO is plain FIFO tail-drop — the default, served by the
	// simulator's zero-allocation fast path.
	QueueFIFO QueueKind = iota
	// QueueRED drops probabilistically as the average queue grows
	// (Random Early Detection).
	QueueRED
	// QueueCoDel drops from the head when packet sojourn time exceeds
	// the target for a full interval (Controlled Delay).
	QueueCoDel
)

// String names the queue kind.
func (k QueueKind) String() string {
	switch k {
	case QueueFIFO:
		return "FIFO"
	case QueueRED:
		return "RED"
	case QueueCoDel:
		return "CoDel"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

// Queue configures a hop's queue discipline. The zero value is FIFO
// tail-drop. RED/CoDel zero configs take the sim package's defaults.
type Queue struct {
	Kind QueueKind
	// RED overrides the RED parameters when Kind is QueueRED.
	RED sim.REDConfig
	// CoDel overrides the CoDel parameters when Kind is QueueCoDel.
	CoDel sim.CoDelConfig
}

// LossKind selects a hop's random-loss process.
type LossKind int

// Loss models.
const (
	// LossNone disables random loss (the default); packets are only
	// dropped by the queue.
	LossNone LossKind = iota
	// LossBernoulli drops each packet independently with probability
	// Loss.Rate.
	LossBernoulli
	// LossGilbertElliott drops in bursts per the two-state Gilbert–
	// Elliott chain in Loss.GilbertElliott.
	LossGilbertElliott
)

// String names the loss kind.
func (k LossKind) String() string {
	switch k {
	case LossNone:
		return "none"
	case LossBernoulli:
		return "Bernoulli"
	case LossGilbertElliott:
		return "Gilbert–Elliott"
	default:
		return fmt.Sprintf("LossKind(%d)", int(k))
	}
}

// Loss configures a hop's random transmission loss, applied at the
// link input before queueing. The zero value is no loss.
type Loss struct {
	Kind LossKind
	// Rate is the Bernoulli per-packet drop probability in [0, 1).
	Rate float64
	// GilbertElliott parameterizes the bursty chain; zero fields take
	// the sim package's defaults.
	GilbertElliott sim.GilbertElliottConfig
}

// Reorder configures bounded packet reordering on a hop: every packet
// gets independent uniform extra propagation delay in [0, Jitter), so
// packets can overtake within that bound. The zero value is in-order
// delivery.
type Reorder struct {
	Jitter time.Duration
}

// hopLabel derives the feature rng label for hop h ("hop3/red", ...).
func hopLabel(h int, feature string) string { return fmt.Sprintf("hop%d/%s", h, feature) }

// capturePanic runs f, converting a panic into an error. The sim
// constructors validate by panicking (their callers pass compile-time
// constants); Compile's contract is to return errors for bad specs.
func capturePanic(f func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	f()
	return nil
}

// applyLinkModels wires hop h's queue discipline, loss model, jitter
// and capacity schedule onto its compiled link and recorder, and
// returns the hop's stationary loss probability (0 without a loss
// model) for the analytic ground-truth accounting.
func applyLinkModels(l *sim.Link, rec *sim.Recorder, h int, hop Hop, seed uint64) (lossMean float64, err error) {
	switch hop.Queue.Kind {
	case QueueFIFO:
		// The default fast path; an explicitly-configured RED/CoDel
		// struct on a FIFO hop is ignored by design.
	case QueueRED:
		err = capturePanic(func() {
			l.SetDiscipline(sim.NewRED(hop.Queue.RED, rng.Derive(seed, hopLabel(h, "red"))))
		})
	case QueueCoDel:
		err = capturePanic(func() {
			l.SetDiscipline(sim.NewCoDel(hop.Queue.CoDel))
		})
	default:
		err = fmt.Errorf("unknown queue kind %v", hop.Queue.Kind)
	}
	if err != nil {
		return 0, fmt.Errorf("scenario: hop %d: %w", h, err)
	}

	switch hop.Loss.Kind {
	case LossNone:
	case LossBernoulli:
		err = capturePanic(func() {
			m := sim.NewBernoulliLoss(hop.Loss.Rate, rng.Derive(seed, hopLabel(h, "loss")))
			l.SetLoss(m)
			lossMean = m.MeanRate()
		})
	case LossGilbertElliott:
		err = capturePanic(func() {
			m := sim.NewGilbertElliott(hop.Loss.GilbertElliott, rng.Derive(seed, hopLabel(h, "loss")))
			l.SetLoss(m)
			lossMean = m.MeanRate()
		})
	default:
		err = fmt.Errorf("unknown loss kind %v", hop.Loss.Kind)
	}
	if err != nil {
		return 0, fmt.Errorf("scenario: hop %d: %w", h, err)
	}

	if hop.Reorder.Jitter < 0 {
		return 0, fmt.Errorf("scenario: hop %d: negative reorder jitter %v", h, hop.Reorder.Jitter)
	}
	if hop.Reorder.Jitter > 0 {
		l.SetJitter(hop.Reorder.Jitter, rng.Derive(seed, hopLabel(h, "jitter")))
	}

	if len(hop.CapacitySteps) > 0 {
		steps := capacitySteps(hop.CapacitySteps)
		if err := sim.ValidateCapacitySteps(steps); err != nil {
			return 0, fmt.Errorf("scenario: hop %d: %w", h, err)
		}
		l.SetCapacitySchedule(steps)
		rec.SetCapacitySchedule(steps)
	}
	return lossMean, nil
}

// capacitySteps converts the spec's RateStep profile to the simulator's
// form.
func capacitySteps(steps []RateStep) []sim.CapacityStep {
	out := make([]sim.CapacityStep, len(steps))
	for i, st := range steps {
		out[i] = sim.CapacityStep{At: st.At, Rate: st.Rate}
	}
	return out
}

// effectiveCapacity returns the hop's long-run capacity for analytic
// ground truth: the time-weighted mean of the capacity profile over the
// horizon, or the fixed Capacity without one.
func (hop Hop) effectiveCapacity(horizon time.Duration) unit.Rate {
	if len(hop.CapacitySteps) == 0 {
		return hop.Capacity
	}
	return sim.MeanCapacity(capacitySteps(hop.CapacitySteps), horizon)
}
