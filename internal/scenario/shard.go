package scenario

import (
	"time"

	"abw/internal/sim"
)

// Shard is one worker's reusable simulation memory for repeated
// scenario compilations: a sim.Arena plus the per-scenario footprint
// record that sizes it. A matrix-style workload gives each runner shard
// one Shard; every compile of a scenario the shard has seen before
// starts with its pools pre-grown to that scenario's last measured
// footprint, so steady-state trials stop warming pools from cold.
//
// A Shard belongs to exactly one goroutine at a time (the runner shard
// whose index it is stored under); nothing here is synchronized. Like
// the arena it wraps, a Shard only moves free-list memory around —
// compiled results are bit-identical with or without one.
type Shard struct {
	arena sim.Arena
	foot  map[string]sim.Footprint
}

// NewShard returns an empty shard.
func NewShard() *Shard {
	return &Shard{foot: make(map[string]sim.Footprint)}
}

// CompileSeededAggregate mirrors Descriptor.CompileSeededAggregate on
// the shard's arena: the arena is grown to the descriptor's recorded
// footprint (when one exists) and primes the fresh simulation. Hand the
// compilation back with Recycle when done with it.
func (sh *Shard) CompileSeededAggregate(d Descriptor, seed uint64, epoch time.Duration) (*Compiled, error) {
	if f, ok := sh.foot[d.Name]; ok {
		sh.arena.Grow(f)
	}
	sp := d.Spec
	sp.Seed = Seed(seed)
	sp.RecorderEpoch = epoch
	return CompileArena(sp, &sh.arena)
}

// CompileSpecAggregate compiles an arbitrary (possibly transformed)
// spec on the shard's arena under an explicit footprint key — the
// dataset experiment's entry point, where the spec is a cataloged
// scenario with scaled cross traffic rather than a catalog Descriptor.
// Hand the compilation back with Recycle under the same key.
func (sh *Shard) CompileSpecAggregate(key string, sp Spec, seed uint64, epoch time.Duration) (*Compiled, error) {
	if f, ok := sh.foot[key]; ok {
		sh.arena.Grow(f)
	}
	sp.Seed = Seed(seed)
	sp.RecorderEpoch = epoch
	return CompileArena(sp, &sh.arena)
}

// Recycle reclaims a finished compilation's memory — event structs,
// packets, recorder bins — into the shard and records the footprint
// under the scenario name (element-wise max across runs, so the sizing
// converges on the scenario's high-water mark). The compilation is dead
// afterwards: its simulation and recorders are empty.
func (sh *Shard) Recycle(name string, c *Compiled) {
	f := sh.arena.Drain(c.Sim)
	for _, r := range c.Recorders {
		sh.arena.DrainRecorder(r)
	}
	if old, ok := sh.foot[name]; ok {
		f = f.Max(old)
	}
	sh.foot[name] = f
}
