package scenario

import (
	"abw/internal/unit"
)

// ScaleTraffic returns a deep copy of sp with every traffic source's
// rate profile multiplied by factor — the cross-traffic sweep knob the
// dataset experiment turns: the same topology under lighter or heavier
// load, with the analytic ground truth tracking the scaling through
// Compile. The LRD model requires its mean rate strictly below the
// hop capacity, so scaled LRD sources are clamped to 95% of the hop's
// lowest capacity; other models tolerate overload and are left exact
// (an overloaded hop is a legitimate zero-avail-bw data point).
func ScaleTraffic(sp Spec, factor float64) Spec {
	out := sp
	out.Hops = make([]Hop, len(sp.Hops))
	for h, hop := range sp.Hops {
		cp := hop
		cp.Traffic = make([]Source, len(hop.Traffic))
		cp.CapacitySteps = append([]RateStep(nil), hop.CapacitySteps...)
		for j, src := range hop.Traffic {
			s := src
			s.Rate = unit.Rate(float64(src.Rate) * factor)
			s.Steps = make([]RateStep, len(src.Steps))
			for i, st := range src.Steps {
				s.Steps[i] = RateStep{At: st.At, Rate: unit.Rate(float64(st.Rate) * factor)}
			}
			if s.Kind == LRD {
				if cap := hop.minCapacity(); cap > 0 {
					if limit := unit.Rate(float64(cap) * 0.95); s.Rate > limit {
						s.Rate = limit
					}
				}
			}
			cp.Traffic[j] = s
		}
		out.Hops[h] = cp
	}
	return out
}

// minCapacity returns the hop's lowest configured capacity: the fixed
// Capacity, or the minimum over a capacity profile.
func (h Hop) minCapacity() unit.Rate {
	if len(h.CapacitySteps) == 0 {
		return h.Capacity
	}
	min := h.CapacitySteps[0].Rate
	for _, st := range h.CapacitySteps[1:] {
		if st.Rate < min {
			min = st.Rate
		}
	}
	return min
}
