package scenario

import (
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

// RandomSpec draws a random Internet-like scenario from r: a 1–16 hop
// path with heterogeneous capacities, per-hop packet-model cross
// traffic at 15–80% utilization, and a random sprinkling of the link
// models (buffer bounds, RED/CoDel, Bernoulli/Gilbert–Elliott loss,
// reordering jitter, fading capacity). The construction keeps every
// hop's long-run load strictly below its (minimum) capacity, so the
// analytic TrueAvailBw is always positive.
//
// The spec depends only on the variates drawn from r: equal generator
// states produce identical specs, which is what lets the catalog pin
// "random-*" entries and lets property tests sweep seeds. The returned
// spec's Seed is unset (compile-time choice), and the horizon is 2
// minutes — long enough for every tool, cheap under the lazy sources.
func RandomSpec(r *rng.Rand) Spec {
	hops := 1 + r.Intn(16)
	spec := Spec{
		Horizon: 2 * time.Minute,
		Hops:    make([]Hop, hops),
	}
	for h := range spec.Hops {
		hop := &spec.Hops[h]
		capacity := unit.Rate(r.Uniform(20, 200)) * unit.Mbps
		minCap := capacity

		// Fading: a few capacity levels around the base, the lowest of
		// which bounds the admissible load.
		if r.Float64() < 0.2 {
			steps := FadingSteps(r, capacity, 2+r.Intn(3), 10*time.Second, spec.Horizon)
			hop.CapacitySteps = steps
			for _, st := range steps {
				if st.Rate < minCap {
					minCap = st.Rate
				}
			}
		} else {
			hop.Capacity = capacity
		}

		// Cross traffic: one or two packet-model sources sharing a
		// 15–80% utilization of the hop's minimum capacity.
		util := r.Uniform(0.15, 0.8)
		load := unit.Rate(util * float64(minCap))
		kinds := []Kind{CBR, Poisson, ParetoOnOff, ParetoArrivals}
		sources := 1 + r.Intn(2)
		for j := 0; j < sources; j++ {
			share := load / unit.Rate(sources)
			hop.Traffic = append(hop.Traffic, Source{
				Kind: kinds[r.Intn(len(kinds))],
				Rate: share,
			})
		}

		if r.Float64() < 0.4 {
			hop.Buffer = unit.Bytes(30000 + r.Intn(220000))
		}
		switch {
		case r.Float64() < 0.15:
			hop.Queue = Queue{Kind: QueueRED}
		case r.Float64() < 0.15:
			hop.Queue = Queue{Kind: QueueCoDel}
		}
		switch {
		case r.Float64() < 0.1:
			hop.Loss = Loss{Kind: LossBernoulli, Rate: r.Uniform(0.001, 0.02)}
		case r.Float64() < 0.1:
			hop.Loss = Loss{Kind: LossGilbertElliott}
		}
		if r.Float64() < 0.2 {
			hop.Reorder = Reorder{Jitter: time.Duration(r.Uniform(0.1, 2)) * time.Millisecond}
		}
		if r.Float64() < 0.5 {
			hop.PropDelay = time.Duration(r.Uniform(0.2, 10)) * time.Millisecond
		}
	}
	return spec
}

// FadingSteps draws a piecewise-constant capacity profile around base:
// levels distinct rates in [base/2, base], dwelling an exponential time
// with the given mean at each before switching, covering [0, horizon).
// The first step is at 0 as the capacity-schedule contract requires.
func FadingSteps(r *rng.Rand, base unit.Rate, levels int, meanDwell, horizon time.Duration) []RateStep {
	if levels < 2 {
		levels = 2
	}
	rates := make([]unit.Rate, levels)
	for i := range rates {
		rates[i] = unit.Rate(r.Uniform(0.5, 1) * float64(base))
	}
	var steps []RateStep
	at := time.Duration(0)
	cur := r.Intn(levels)
	for at < horizon {
		steps = append(steps, RateStep{At: at, Rate: rates[cur]})
		at += time.Duration(r.Exp(meanDwell.Seconds()) * float64(time.Second))
		if at <= steps[len(steps)-1].At {
			at = steps[len(steps)-1].At + time.Millisecond
		}
		// Switch to a different level so consecutive steps always
		// change the rate.
		next := r.Intn(levels - 1)
		if next >= cur {
			next++
		}
		cur = next
	}
	return steps
}
