package scenario

import (
	"testing"
	"time"

	"abw/internal/sim"
)

// groundTruth snapshots everything a recorder observed.
type groundTruth struct {
	arrivals []sim.Arrival
	busy     []sim.Interval
	drops    int64
}

func snapshot(recs []*sim.Recorder) []groundTruth {
	out := make([]groundTruth, len(recs))
	for i, r := range recs {
		out[i] = groundTruth{
			arrivals: append([]sim.Arrival(nil), r.Arrivals()...),
			busy:     append([]sim.Interval(nil), r.BusyIntervals()...),
			drops:    r.Drops(),
		}
	}
	return out
}

// TestPooledRunBitIdenticalToUnpooled is the pooling safety property:
// event and packet reuse must never change scheduling order or packet
// contents. Two compilations of the same seeded scenario — one with the
// free lists disabled — must produce exactly the same per-hop ground
// truth, arrival by arrival.
func TestPooledRunBitIdenticalToUnpooled(t *testing.T) {
	const horizon = 3 * time.Second
	for _, name := range []string{"canonical", "lrd"} {
		t.Run(name, func(t *testing.T) {
			d, ok := Lookup(name)
			if !ok {
				t.Fatalf("scenario %q not in catalog", name)
			}
			run := func(pooled bool) []groundTruth {
				cpl, err := d.CompileSeeded(1)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				cpl.Sim.SetPooling(pooled)
				cpl.Sim.RunUntil(horizon)
				return snapshot(cpl.Recorders)
			}
			pooled := run(true)
			plain := run(false)
			for h := range plain {
				if len(pooled[h].arrivals) != len(plain[h].arrivals) {
					t.Fatalf("hop %d: %d pooled arrivals vs %d unpooled",
						h, len(pooled[h].arrivals), len(plain[h].arrivals))
				}
				for i := range plain[h].arrivals {
					if pooled[h].arrivals[i] != plain[h].arrivals[i] {
						t.Fatalf("hop %d arrival %d: pooled %+v != unpooled %+v",
							h, i, pooled[h].arrivals[i], plain[h].arrivals[i])
					}
				}
				if len(pooled[h].busy) != len(plain[h].busy) {
					t.Fatalf("hop %d: %d pooled busy intervals vs %d unpooled",
						h, len(pooled[h].busy), len(plain[h].busy))
				}
				for i := range plain[h].busy {
					if pooled[h].busy[i] != plain[h].busy[i] {
						t.Fatalf("hop %d busy %d: pooled %+v != unpooled %+v",
							h, i, pooled[h].busy[i], plain[h].busy[i])
					}
				}
				if pooled[h].drops != plain[h].drops {
					t.Fatalf("hop %d: pooled drops %d != unpooled %d",
						h, pooled[h].drops, plain[h].drops)
				}
			}
		})
	}
}

// TestAggregateRecorderSpecOptIn checks the Spec plumbing: a positive
// RecorderEpoch compiles every hop in bounded aggregate mode and the
// coarse ground truth agrees with the full recorders on epoch-aligned
// windows.
func TestAggregateRecorderSpecOptIn(t *testing.T) {
	d, ok := Lookup("canonical")
	if !ok {
		t.Fatal("canonical scenario missing")
	}
	full, err := d.CompileSeeded(1)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := d.CompileSeededAggregate(1, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	full.Sim.RunUntil(2 * time.Second)
	agg.Sim.RunUntil(2 * time.Second)
	for h := range agg.Recorders {
		if !agg.Recorders[h].Aggregated() {
			t.Fatalf("hop %d recorder not aggregated", h)
		}
		uf := full.Recorders[h].Utilization(500*time.Millisecond, time.Second)
		ua := agg.Recorders[h].Utilization(500*time.Millisecond, time.Second)
		if diff := uf - ua; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("hop %d: full utilization %g != aggregate %g", h, uf, ua)
		}
	}
	if _, err := Compile(Spec{
		Hops:          []Hop{{Capacity: 10 * 1e6}},
		RecorderEpoch: -time.Second,
	}); err == nil {
		t.Error("negative RecorderEpoch accepted")
	}
}
