package scenario

import (
	"fmt"
	"time"

	"abw/internal/unit"
)

// Descriptor names one cataloged scenario, mirroring the estimator
// registry: everything a caller needs to present the scenario and to
// compile it.
type Descriptor struct {
	// Name is the canonical scenario name ("canonical", "bursty", ...).
	Name string
	// Aliases are alternative lookup names.
	Aliases []string
	// Summary is a one-line description for CLI catalogs.
	Summary string
	// Spec is the declarative scenario; Compile realizes it.
	Spec Spec
}

// Compile realizes the cataloged spec.
func (d Descriptor) Compile() (*Compiled, error) { return Compile(d.Spec) }

// CompileSeeded realizes the cataloged spec under an explicit seed,
// leaving the registered Spec untouched.
func (d Descriptor) CompileSeeded(seed uint64) (*Compiled, error) {
	sp := d.Spec
	sp.Seed = Seed(seed)
	return Compile(sp)
}

// CompileSeededAggregate is CompileSeeded with every hop's ground-truth
// recorder in bounded aggregate mode (per-epoch counters instead of
// per-packet rows) — for consumers like the tools×scenarios matrix that
// run long horizons and never query per-packet ground truth. Recorder
// mode never changes packet-level behavior, so results are bit-identical
// to a CompileSeeded run.
func (d Descriptor) CompileSeededAggregate(seed uint64, epoch time.Duration) (*Compiled, error) {
	sp := d.Spec
	sp.Seed = Seed(seed)
	sp.RecorderEpoch = epoch
	return Compile(sp)
}

// catalog holds the registered scenarios in registration order — the
// canonical presentation order used by CLIs and the matrix experiment.
var catalog []Descriptor

// Register adds a scenario to the catalog. It panics on a missing
// name/spec or a name/alias collision: registration happens at init
// time from this package only, so a collision is a programming error.
func Register(d Descriptor) {
	if d.Name == "" || len(d.Spec.Hops) == 0 {
		panic("scenario: descriptor needs a name and a non-empty spec")
	}
	for _, name := range append([]string{d.Name}, d.Aliases...) {
		if _, ok := Lookup(name); ok {
			panic(fmt.Sprintf("scenario: duplicate scenario name %q", name))
		}
	}
	catalog = append(catalog, d)
}

// Catalog returns the registered scenarios in registration order.
func Catalog() []Descriptor {
	out := make([]Descriptor, len(catalog))
	copy(out, catalog)
	return out
}

// Names returns the canonical scenario names in registration order.
func Names() []string {
	names := make([]string, len(catalog))
	for i, d := range catalog {
		names[i] = d.Name
	}
	return names
}

// Lookup finds a scenario by canonical name or alias.
func Lookup(name string) (Descriptor, bool) {
	for _, d := range catalog {
		if d.Name == name {
			return d, true
		}
		for _, a := range d.Aliases {
			if a == name {
				return d, true
			}
		}
	}
	return Descriptor{}, false
}

// The catalog: every pitfall condition of the paper as a nameable
// scenario. All entries use a 10-minute horizon — the lazy source
// models cost nothing beyond the virtual time a run actually consumes
// — and the default seed unless compiled with CompileSeeded.
func init() {
	hop := func(capacity unit.Rate, srcs ...Source) Hop {
		return Hop{Capacity: capacity, Traffic: srcs}
	}
	long := 10 * time.Minute

	Register(Descriptor{
		Name:    "canonical",
		Aliases: []string{"default", "single-hop"},
		Summary: "the paper's canonical setting: 50 Mbps tight link, 25 Mbps CBR cross traffic",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: CBR, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "poisson",
		Summary: "canonical path with Poisson cross traffic at the same 25 Mbps mean",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: Poisson, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "bursty",
		Aliases: []string{"pareto"},
		Summary: "Pareto ON-OFF cross traffic: equal mean, maximal burstiness (Figure 3's worst case)",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: ParetoOnOff, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "lrd",
		Aliases: []string{"selfsimilar"},
		Summary: "long-range-dependent cross traffic (fGn-modulated, H=0.8): burstiness at every timescale",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: LRD, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "mice",
		Aliases: []string{"tcp-mice", "web"},
		Summary: "congestion-responsive cross traffic: short TCP transfers at 25 Mbps offered load",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: Mice, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "narrowtight",
		Aliases: []string{"narrow-vs-tight"},
		Summary: "tight link is not the narrow link: loaded 100 Mbps hop (A=20) before an idle-ish 50 Mbps hop (A=40)",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				hop(unit.FastEthernet, Source{Kind: Poisson, Rate: 80 * unit.Mbps}),
				hop(50*unit.Mbps, Source{Kind: Poisson, Rate: 10 * unit.Mbps}),
			},
		},
	})
	Register(Descriptor{
		Name:    "multibottleneck",
		Aliases: []string{"hetero"},
		Summary: "three heterogeneous near-tight hops (A = 26/25/26 Mbps): Figure 4's compounding underestimation",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				hop(60*unit.Mbps, Source{Kind: Poisson, Rate: 34 * unit.Mbps}),
				hop(50*unit.Mbps, Source{Kind: ParetoOnOff, Rate: 25 * unit.Mbps}),
				hop(40*unit.Mbps, Source{Kind: Poisson, Rate: 14 * unit.Mbps}),
			},
		},
	})
	Register(Descriptor{
		Name:    "step",
		Aliases: []string{"stepchange"},
		Summary: "time-varying avail-bw: cross rate steps 10→35 Mbps mid-horizon (A: 40→15 Mbps)",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{hop(50*unit.Mbps, Source{
				Kind:  Poisson,
				Steps: []RateStep{{At: 0, Rate: 10 * unit.Mbps}, {At: 5 * time.Minute, Rate: 35 * unit.Mbps}},
			})},
		},
	})
	Register(Descriptor{
		Name:    "postnarrow",
		Aliases: []string{"post-narrow-queuing"},
		Summary: "queuing after the narrow link: idle-ish 50 Mbps hop, then a loaded bursty 100 Mbps tight hop",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				hop(50*unit.Mbps, Source{Kind: CBR, Rate: 5 * unit.Mbps}),
				hop(unit.FastEthernet, Source{Kind: ParetoOnOff, Rate: 65 * unit.Mbps}),
			},
		},
	})
}
