package scenario

import (
	"fmt"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

// Descriptor names one cataloged scenario, mirroring the estimator
// registry: everything a caller needs to present the scenario and to
// compile it.
type Descriptor struct {
	// Name is the canonical scenario name ("canonical", "bursty", ...).
	Name string
	// Aliases are alternative lookup names.
	Aliases []string
	// Summary is a one-line description for CLI catalogs.
	Summary string
	// Spec is the declarative scenario; Compile realizes it.
	Spec Spec
}

// Compile realizes the cataloged spec.
func (d Descriptor) Compile() (*Compiled, error) { return Compile(d.Spec) }

// CompileSeeded realizes the cataloged spec under an explicit seed,
// leaving the registered Spec untouched.
func (d Descriptor) CompileSeeded(seed uint64) (*Compiled, error) {
	sp := d.Spec
	sp.Seed = Seed(seed)
	return Compile(sp)
}

// CompileSeededAggregate is CompileSeeded with every hop's ground-truth
// recorder in bounded aggregate mode (per-epoch counters instead of
// per-packet rows) — for consumers like the tools×scenarios matrix that
// run long horizons and never query per-packet ground truth. Recorder
// mode never changes packet-level behavior, so results are bit-identical
// to a CompileSeeded run.
func (d Descriptor) CompileSeededAggregate(seed uint64, epoch time.Duration) (*Compiled, error) {
	sp := d.Spec
	sp.Seed = Seed(seed)
	sp.RecorderEpoch = epoch
	return Compile(sp)
}

// catalog holds the registered scenarios in registration order — the
// canonical presentation order used by CLIs and the matrix experiment.
var catalog []Descriptor

// Register adds a scenario to the catalog. It panics on a missing
// name/spec or a name/alias collision: registration happens at init
// time from this package only, so a collision is a programming error.
func Register(d Descriptor) {
	if d.Name == "" || len(d.Spec.Hops) == 0 {
		panic("scenario: descriptor needs a name and a non-empty spec")
	}
	for _, name := range append([]string{d.Name}, d.Aliases...) {
		if _, ok := Lookup(name); ok {
			panic(fmt.Sprintf("scenario: duplicate scenario name %q", name))
		}
	}
	catalog = append(catalog, d)
}

// Catalog returns the registered scenarios in registration order.
func Catalog() []Descriptor {
	out := make([]Descriptor, len(catalog))
	copy(out, catalog)
	return out
}

// Names returns the canonical scenario names in registration order.
func Names() []string {
	names := make([]string, len(catalog))
	for i, d := range catalog {
		names[i] = d.Name
	}
	return names
}

// Lookup finds a scenario by canonical name or alias.
func Lookup(name string) (Descriptor, bool) {
	for _, d := range catalog {
		if d.Name == name {
			return d, true
		}
		for _, a := range d.Aliases {
			if a == name {
				return d, true
			}
		}
	}
	return Descriptor{}, false
}

// The catalog: every pitfall condition of the paper as a nameable
// scenario. All entries use a 10-minute horizon — the lazy source
// models cost nothing beyond the virtual time a run actually consumes
// — and the default seed unless compiled with CompileSeeded.
func init() {
	hop := func(capacity unit.Rate, srcs ...Source) Hop {
		return Hop{Capacity: capacity, Traffic: srcs}
	}
	long := 10 * time.Minute

	Register(Descriptor{
		Name:    "canonical",
		Aliases: []string{"default", "single-hop"},
		Summary: "the paper's canonical setting: 50 Mbps tight link, 25 Mbps CBR cross traffic",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: CBR, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "poisson",
		Summary: "canonical path with Poisson cross traffic at the same 25 Mbps mean",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: Poisson, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "bursty",
		Aliases: []string{"pareto"},
		Summary: "Pareto ON-OFF cross traffic: equal mean, maximal burstiness (Figure 3's worst case)",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: ParetoOnOff, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "lrd",
		Aliases: []string{"selfsimilar"},
		Summary: "long-range-dependent cross traffic (fGn-modulated, H=0.8): burstiness at every timescale",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: LRD, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "mice",
		Aliases: []string{"tcp-mice", "web"},
		Summary: "congestion-responsive cross traffic: short TCP transfers at 25 Mbps offered load",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(50*unit.Mbps, Source{Kind: Mice, Rate: 25 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "narrowtight",
		Aliases: []string{"narrow-vs-tight"},
		Summary: "tight link is not the narrow link: loaded 100 Mbps hop (A=20) before an idle-ish 50 Mbps hop (A=40)",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				hop(unit.FastEthernet, Source{Kind: Poisson, Rate: 80 * unit.Mbps}),
				hop(50*unit.Mbps, Source{Kind: Poisson, Rate: 10 * unit.Mbps}),
			},
		},
	})
	Register(Descriptor{
		Name:    "multibottleneck",
		Aliases: []string{"hetero"},
		Summary: "three heterogeneous near-tight hops (A = 26/25/26 Mbps): Figure 4's compounding underestimation",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				hop(60*unit.Mbps, Source{Kind: Poisson, Rate: 34 * unit.Mbps}),
				hop(50*unit.Mbps, Source{Kind: ParetoOnOff, Rate: 25 * unit.Mbps}),
				hop(40*unit.Mbps, Source{Kind: Poisson, Rate: 14 * unit.Mbps}),
			},
		},
	})
	Register(Descriptor{
		Name:    "step",
		Aliases: []string{"stepchange"},
		Summary: "time-varying avail-bw: cross rate steps 10→35 Mbps mid-horizon (A: 40→15 Mbps)",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{hop(50*unit.Mbps, Source{
				Kind:  Poisson,
				Steps: []RateStep{{At: 0, Rate: 10 * unit.Mbps}, {At: 5 * time.Minute, Rate: 35 * unit.Mbps}},
			})},
		},
	})
	Register(Descriptor{
		Name:    "postnarrow",
		Aliases: []string{"post-narrow-queuing"},
		Summary: "queuing after the narrow link: idle-ish 50 Mbps hop, then a loaded bursty 100 Mbps tight hop",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				hop(50*unit.Mbps, Source{Kind: CBR, Rate: 5 * unit.Mbps}),
				hop(unit.FastEthernet, Source{Kind: ParetoOnOff, Rate: 65 * unit.Mbps}),
			},
		},
	})

	// --- Internet-realistic link models: AQM, random loss, reordering,
	// time-varying capacity, long heterogeneous paths, and randomized
	// topologies. Conditions the paper's fluid FIFO model abstracts
	// away, under which every estimator's assumptions are stressed.

	Register(Descriptor{
		Name:    "red",
		Aliases: []string{"aqm-red"},
		Summary: "canonical path with RED on the tight link: AQM sheds probe bursts before the buffer fills",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				Capacity: 50 * unit.Mbps,
				Queue:    Queue{Kind: QueueRED},
				Traffic:  []Source{{Kind: Poisson, Rate: 25 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "red-bursty",
		Summary: "RED tight link under Pareto ON-OFF bursts: early drops cluster inside the ON periods",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				Capacity: 60 * unit.Mbps,
				Queue:    Queue{Kind: QueueRED},
				Traffic:  []Source{{Kind: ParetoOnOff, Rate: 30 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "codel",
		Aliases: []string{"aqm-codel"},
		Summary: "canonical path with CoDel on the tight link: sojourn-time head drops bound the standing queue",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				Capacity: 50 * unit.Mbps,
				Queue:    Queue{Kind: QueueCoDel},
				Traffic:  []Source{{Kind: Poisson, Rate: 25 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "codel-mice",
		Summary: "CoDel tight link carrying short TCP transfers: AQM against congestion-responsive cross traffic",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				Capacity: 50 * unit.Mbps,
				Queue:    Queue{Kind: QueueCoDel},
				Traffic:  []Source{{Kind: Mice, Rate: 20 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "lossy",
		Aliases: []string{"bernoulli-loss"},
		Summary: "1% independent random loss on the tight link: probe gaps that are not congestion signals",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				Capacity: 50 * unit.Mbps,
				Loss:     Loss{Kind: LossBernoulli, Rate: 0.01},
				Traffic:  []Source{{Kind: CBR, Rate: 25 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "burstloss",
		Aliases: []string{"gilbert", "gilbert-elliott"},
		Summary: "bursty Gilbert–Elliott loss (~4.6% in 10-packet bursts): whole probe trains vanish at once",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				Capacity: 50 * unit.Mbps,
				Loss:     Loss{Kind: LossGilbertElliott},
				Traffic:  []Source{{Kind: Poisson, Rate: 25 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "lossy-long",
		Summary: "six hops each losing 0.3% at random: per-hop loss compounds to ~1.8% end to end",
		Spec: Spec{
			Horizon: long,
			Hops: func() []Hop {
				hops := make([]Hop, 6)
				for i := range hops {
					hops[i] = Hop{
						Capacity: unit.Rate(60+10*i) * unit.Mbps,
						Loss:     Loss{Kind: LossBernoulli, Rate: 0.003},
						Traffic:  []Source{{Kind: Poisson, Rate: unit.Rate(15+5*i) * unit.Mbps}},
					}
				}
				hops[3] = Hop{
					Capacity: 50 * unit.Mbps,
					Loss:     Loss{Kind: LossBernoulli, Rate: 0.003},
					Traffic:  []Source{{Kind: Poisson, Rate: 25 * unit.Mbps}},
				}
				return hops
			}(),
		},
	})
	Register(Descriptor{
		Name:    "reorder",
		Aliases: []string{"jitter"},
		Summary: "1 ms reordering jitter on the tight link: one-way-delay trends blur at the probe timescale",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				Capacity: 50 * unit.Mbps,
				Reorder:  Reorder{Jitter: time.Millisecond},
				Traffic:  []Source{{Kind: Poisson, Rate: 25 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "reorder-heavy",
		Summary: "5 ms jitter on two consecutive hops: heavy packet reordering across the path",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				{
					Capacity: unit.FastEthernet,
					Reorder:  Reorder{Jitter: 5 * time.Millisecond},
					Traffic:  []Source{{Kind: Poisson, Rate: 40 * unit.Mbps}},
				},
				{
					Capacity: 50 * unit.Mbps,
					Reorder:  Reorder{Jitter: 5 * time.Millisecond},
					Traffic:  []Source{{Kind: Poisson, Rate: 20 * unit.Mbps}},
				},
			},
		},
	})
	Register(Descriptor{
		Name:    "fading",
		Aliases: []string{"variable-capacity"},
		Summary: "tight-link capacity cycles 50/30/40 Mbps every 100 s: avail-bw varies with no change in load",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				CapacitySteps: []RateStep{
					{At: 0, Rate: 50 * unit.Mbps},
					{At: 100 * time.Second, Rate: 30 * unit.Mbps},
					{At: 200 * time.Second, Rate: 40 * unit.Mbps},
					{At: 300 * time.Second, Rate: 50 * unit.Mbps},
					{At: 400 * time.Second, Rate: 30 * unit.Mbps},
					{At: 500 * time.Second, Rate: 40 * unit.Mbps},
				},
				Traffic: []Source{{Kind: CBR, Rate: 15 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "ramp",
		Summary: "capacity staircases 60→24 Mbps across the run: the long-run mean hides a monotone decline",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				CapacitySteps: func() []RateStep {
					steps := make([]RateStep, 10)
					for i := range steps {
						steps[i] = RateStep{
							At:   time.Duration(i) * time.Minute,
							Rate: unit.Rate(60-4*i) * unit.Mbps,
						}
					}
					return steps
				}(),
				Traffic: []Source{{Kind: Poisson, Rate: 10 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "fading-bursty",
		Summary: "fading capacity under Pareto ON-OFF load: both C(t) and R(t) move at once",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{{
				CapacitySteps: []RateStep{
					{At: 0, Rate: 60 * unit.Mbps},
					{At: 150 * time.Second, Rate: 36 * unit.Mbps},
					{At: 300 * time.Second, Rate: 48 * unit.Mbps},
					{At: 450 * time.Second, Rate: 60 * unit.Mbps},
				},
				Traffic: []Source{{Kind: ParetoOnOff, Rate: 18 * unit.Mbps}},
			}},
		},
	})
	Register(Descriptor{
		Name:    "longpath",
		Aliases: []string{"12hop"},
		Summary: "12 heterogeneous hops with one tight link mid-path: per-hop noise compounds over a long path",
		Spec: Spec{
			Horizon: long,
			Hops: func() []Hop {
				hops := make([]Hop, 12)
				for i := range hops {
					hops[i] = hop(unit.Rate(70+10*(i%4))*unit.Mbps,
						Source{Kind: Poisson, Rate: unit.Rate(20+5*(i%3)) * unit.Mbps})
				}
				hops[6] = hop(50*unit.Mbps, Source{Kind: Poisson, Rate: 28 * unit.Mbps})
				return hops
			}(),
		},
	})
	Register(Descriptor{
		Name:    "verylongpath",
		Aliases: []string{"20hop"},
		Summary: "20 hops, all moderately loaded: the regime where per-hop effects dominate end-to-end inference",
		Spec: Spec{
			Horizon: long,
			Hops: func() []Hop {
				hops := make([]Hop, 20)
				for i := range hops {
					hops[i] = hop(unit.Rate(80+5*(i%5))*unit.Mbps,
						Source{Kind: Poisson, Rate: unit.Rate(25+4*(i%4)) * unit.Mbps})
				}
				hops[10] = hop(55*unit.Mbps, Source{Kind: Poisson, Rate: 30 * unit.Mbps})
				return hops
			}(),
		},
	})
	Register(Descriptor{
		Name:    "asymmetric",
		Aliases: []string{"multi-tight"},
		Summary: "three bottlenecks of very different capacity (90/30/70 Mbps) with the middle one tight",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				hop(90*unit.Mbps, Source{Kind: ParetoOnOff, Rate: 55 * unit.Mbps}),
				hop(30*unit.Mbps, Source{Kind: Poisson, Rate: 12 * unit.Mbps}),
				hop(70*unit.Mbps, Source{Kind: Poisson, Rate: 40 * unit.Mbps}),
			},
		},
	})
	Register(Descriptor{
		Name:    "dualtight",
		Summary: "two hops with exactly equal avail-bw (A = 20 Mbps): no unique tight link exists",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				hop(unit.FastEthernet, Source{Kind: Poisson, Rate: 80 * unit.Mbps}),
				hop(60*unit.Mbps, Source{Kind: Poisson, Rate: 40 * unit.Mbps}),
			},
		},
	})
	Register(Descriptor{
		Name:    "slim",
		Aliases: []string{"dsl"},
		Summary: "a 10 Mbps access link at 40% load: low-rate regime where probe packets are coarse",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(10*unit.Mbps, Source{Kind: CBR, Rate: 4 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "gigabit",
		Summary: "a 1 Gbps link at 40% Poisson load: high-rate regime where timestamp resolution bites",
		Spec: Spec{
			Horizon: long,
			Hops:    []Hop{hop(unit.Gbps, Source{Kind: Poisson, Rate: 400 * unit.Mbps})},
		},
	})
	Register(Descriptor{
		Name:    "internet",
		Aliases: []string{"kitchen-sink"},
		Summary: "8-hop path mixing RED, CoDel, bursty loss, jitter and fading: everything at once",
		Spec: Spec{
			Horizon: long,
			Hops: []Hop{
				hop(unit.FastEthernet, Source{Kind: Poisson, Rate: 35 * unit.Mbps}),
				{
					Capacity: 80 * unit.Mbps,
					Queue:    Queue{Kind: QueueRED},
					Traffic:  []Source{{Kind: ParetoOnOff, Rate: 30 * unit.Mbps}},
				},
				{
					Capacity: 70 * unit.Mbps,
					Reorder:  Reorder{Jitter: 500 * time.Microsecond},
					Traffic:  []Source{{Kind: Poisson, Rate: 25 * unit.Mbps}},
				},
				{
					CapacitySteps: []RateStep{
						{At: 0, Rate: 60 * unit.Mbps},
						{At: 200 * time.Second, Rate: 45 * unit.Mbps},
						{At: 400 * time.Second, Rate: 60 * unit.Mbps},
					},
					Traffic: []Source{{Kind: Poisson, Rate: 20 * unit.Mbps}},
				},
				{
					Capacity: 50 * unit.Mbps,
					Queue:    Queue{Kind: QueueCoDel},
					Traffic:  []Source{{Kind: Poisson, Rate: 24 * unit.Mbps}},
				},
				{
					Capacity: 60 * unit.Mbps,
					Loss:     Loss{Kind: LossBernoulli, Rate: 0.005},
					Traffic:  []Source{{Kind: Poisson, Rate: 20 * unit.Mbps}},
				},
				{
					Capacity: 90 * unit.Mbps,
					Loss:     Loss{Kind: LossGilbertElliott},
					Traffic:  []Source{{Kind: ParetoArrivals, Rate: 30 * unit.Mbps}},
				},
				hop(unit.FastEthernet, Source{Kind: Poisson, Rate: 30 * unit.Mbps}),
			},
		},
	})
	Register(Descriptor{
		Name:    "random-a",
		Summary: "randomized Internet-like topology drawn from RandomSpec at seed 1001",
		Spec:    RandomSpec(rng.New(1001)),
	})
	Register(Descriptor{
		Name:    "random-b",
		Summary: "randomized Internet-like topology drawn from RandomSpec at seed 1002",
		Spec:    RandomSpec(rng.New(1002)),
	})
	Register(Descriptor{
		Name:    "random-c",
		Summary: "randomized Internet-like topology drawn from RandomSpec at seed 1003",
		Spec:    RandomSpec(rng.New(1003)),
	})
}
