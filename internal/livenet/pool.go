package livenet

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrPoolClosed is returned by Get on a closed pool.
var ErrPoolClosed = errors.New("livenet: pool closed")

// Pool is N session slots to one receiver — the sender-side shape for
// concurrent estimation. Each slot holds one Transport (single-stream,
// per core.Transport's contract); the pool's job is dialing, leasing,
// fan-out, and teardown. Running several estimators over one path at
// once is exactly the paper's intrusiveness pitfall: each probe stream
// is traffic every other estimator measures.
//
// Two usage modes, not to be mixed on one pool:
//
//   - Fan-out: Run / RunContext drive every transport at once, one
//     goroutine each (the compare-experiment shape).
//   - Leasing: Get hands out one transport per concurrent caller and
//     Put returns it, with unhealthy transports discarded and their
//     slot redialed on the next Get (the long-running monitor shape).
type Pool struct {
	addr string
	opts Opts // socket options applied to every dial, redials included

	mu    sync.Mutex
	slots []*Transport       // current transport per slot; nil = vacant
	idx   map[*Transport]int // leased-or-pooled transport -> slot

	free      chan int // slot indices available to Get
	closed    chan struct{}
	closeOnce sync.Once
}

// DialPool dials n transports to a receiver's control address. On any
// dial failure (including the receiver's session limit) the already
// dialed transports are closed and the cause is returned.
func DialPool(addr string, n int) (*Pool, error) {
	return DialPoolOpts(addr, n, Opts{})
}

// DialPoolOpts is DialPool with explicit socket options; the options
// also apply when Get redials a vacated slot, so a pool's transports
// stay uniformly configured across their whole lifetime.
func DialPoolOpts(addr string, n int, opts Opts) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("livenet: pool size %d must be positive", n)
	}
	p := &Pool{
		addr:   addr,
		opts:   opts,
		slots:  make([]*Transport, n),
		idx:    make(map[*Transport]int, n),
		free:   make(chan int, n),
		closed: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		tr, err := DialOpts(addr, opts)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("livenet: pool dial %d of %d: %w", i+1, n, err)
		}
		p.slots[i] = tr
		p.idx[tr] = i
		p.free <- i
	}
	return p, nil
}

// Size returns the number of pooled slots.
func (p *Pool) Size() int { return len(p.slots) }

// Transport returns the i-th slot's transport — nil if the slot is
// vacant after an unhealthy Put and not yet redialed. Fan-out callers
// that never lease always see the dialed transport.
func (p *Pool) Transport(i int) *Transport {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.slots[i]
}

// Get leases a transport, blocking until a slot is free, the context
// is done, or the pool closes. A vacant slot (its previous transport
// was discarded as unhealthy) is redialed here, so one broken session
// costs one redial, not a rebuilt pool. The caller must return the
// transport with Put.
func (p *Pool) Get(ctx context.Context) (*Transport, error) {
	for {
		var i int
		select {
		case i = <-p.free:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-p.closed:
			return nil, ErrPoolClosed
		}
		// The select chooses randomly among ready cases, so a free slot
		// can win the race against a concurrent Close; closed wins here.
		select {
		case <-p.closed:
			return nil, ErrPoolClosed
		default:
		}
		p.mu.Lock()
		tr := p.slots[i]
		p.mu.Unlock()
		if tr != nil {
			return tr, nil
		}
		tr, err := DialOpts(p.addr, p.opts) // outside the lock: dials are slow
		if err != nil {
			p.free <- i // the slot stays vacant for the next Get to retry
			return nil, fmt.Errorf("livenet: pool redial slot %d: %w", i, err)
		}
		p.mu.Lock()
		select {
		case <-p.closed:
			p.mu.Unlock()
			tr.Close()
			return nil, ErrPoolClosed
		default:
		}
		p.slots[i] = tr
		p.idx[tr] = i
		p.mu.Unlock()
		return tr, nil
	}
}

// Put returns a leased transport. healthy=false discards it — closing
// the sockets so the receiver reaps the session — and leaves the slot
// vacant for Get to redial. Putting a transport the pool does not own
// is a no-op.
func (p *Pool) Put(tr *Transport, healthy bool) {
	if tr == nil {
		return
	}
	p.mu.Lock()
	i, ok := p.idx[tr]
	if !ok {
		p.mu.Unlock()
		return
	}
	// A transport whose control channel desynchronized mid-run can never
	// probe again; treat it as unhealthy whatever the caller thinks.
	if tr.broken {
		healthy = false
	}
	if !healthy {
		delete(p.idx, tr)
		p.slots[i] = nil
	}
	p.mu.Unlock()
	if !healthy {
		tr.Close()
	}
	p.free <- i
}

// Close closes every transport — leased ones included, which is what
// unblocks a caller stuck inside a socket read — and fails all future
// Gets. It is idempotent and safe to call concurrently.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.mu.Lock()
		trs := make([]*Transport, 0, len(p.slots))
		for _, tr := range p.slots {
			if tr != nil {
				trs = append(trs, tr)
			}
		}
		p.mu.Unlock()
		for _, tr := range trs {
			tr.Close()
		}
	})
}

// Run invokes fn concurrently, one goroutine per slot, and waits for
// all of them. Each transport is used by exactly one goroutine, so fn
// may Probe or Estimate freely. Errors are joined, each labeled with
// its transport index.
func (p *Pool) Run(fn func(i int, tr *Transport) error) error {
	return p.RunContext(context.Background(), fn)
}

// RunContext is Run under a context: when ctx is canceled the pool is
// closed, which unblocks every fn stuck inside a socket read (a probe
// waiting on a receiver that died mid-fan-out would otherwise hang its
// goroutine forever). RunContext always waits for every goroutine to
// return — no leaks on any path — and a canceled run leaves the pool
// closed, so it is spent: dial a fresh pool to probe again.
func (p *Pool) RunContext(ctx context.Context, fn func(i int, tr *Transport) error) error {
	stop := context.AfterFunc(ctx, p.Close)
	defer stop()
	errs := make([]error, len(p.slots)+1)
	var wg sync.WaitGroup
	for i := range p.slots {
		tr := p.Transport(i)
		if tr == nil {
			continue
		}
		wg.Add(1)
		go func(i int, tr *Transport) {
			defer wg.Done()
			if err := fn(i, tr); err != nil {
				errs[i] = fmt.Errorf("livenet: pool transport %d: %w", i, err)
			}
		}(i, tr)
	}
	wg.Wait()
	errs[len(p.slots)] = ctx.Err()
	return errors.Join(errs...)
}
