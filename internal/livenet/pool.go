package livenet

import (
	"errors"
	"fmt"
	"sync"
)

// Pool is N independent transports to one receiver, one session each —
// the sender-side shape for concurrent estimation. Each Transport
// remains single-stream (core.Transport's contract); the pool's job is
// dialing, fan-out, and teardown. Running several estimators over one
// path at once is exactly the paper's intrusiveness pitfall: each
// probe stream is traffic every other estimator measures.
type Pool struct {
	transports []*Transport
}

// DialPool dials n transports to a receiver's control address. On any
// dial failure (including the receiver's session limit) the already
// dialed transports are closed and the cause is returned.
func DialPool(addr string, n int) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("livenet: pool size %d must be positive", n)
	}
	p := &Pool{transports: make([]*Transport, 0, n)}
	for i := 0; i < n; i++ {
		tr, err := Dial(addr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("livenet: pool dial %d of %d: %w", i+1, n, err)
		}
		p.transports = append(p.transports, tr)
	}
	return p, nil
}

// Size returns the number of pooled transports.
func (p *Pool) Size() int { return len(p.transports) }

// Transport returns the i-th pooled transport.
func (p *Pool) Transport(i int) *Transport { return p.transports[i] }

// Close closes every pooled transport; the receiver reaps each session.
func (p *Pool) Close() {
	for _, tr := range p.transports {
		tr.Close()
	}
}

// Run invokes fn concurrently, one goroutine per transport, and waits
// for all of them. Each transport is used by exactly one goroutine, so
// fn may Probe or Estimate freely. Errors are joined, each labeled
// with its transport index.
func (p *Pool) Run(fn func(i int, tr *Transport) error) error {
	errs := make([]error, len(p.transports))
	var wg sync.WaitGroup
	for i, tr := range p.transports {
		wg.Add(1)
		go func(i int, tr *Transport) {
			defer wg.Done()
			if err := fn(i, tr); err != nil {
				errs[i] = fmt.Errorf("livenet: pool transport %d: %w", i, err)
			}
		}(i, tr)
	}
	wg.Wait()
	return errors.Join(errs...)
}
