package ingest

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

func udpPair(t *testing.T) (*net.UDPConn, *net.UDPConn) {
	t.Helper()
	rc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	sc, err := net.DialUDP("udp", nil, rc.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return rc, sc
}

// drain reads datagrams from r until count payloads are collected,
// copying them out (the slots are reused across ReadBatch calls).
func drain(t *testing.T, r Reader, count int) ([][]byte, []Datagram) {
	t.Helper()
	var payloads [][]byte
	var metas []Datagram
	batch := make([]Datagram, r.BatchSize())
	for len(payloads) < count {
		n, err := r.ReadBatch(batch)
		if err != nil {
			t.Fatalf("ReadBatch after %d datagrams: %v", len(payloads), err)
		}
		for i := 0; i < n; i++ {
			payloads = append(payloads, append([]byte(nil), batch[i].Payload...))
			m := batch[i]
			m.Payload = nil
			m.Src = &net.UDPAddr{IP: append(net.IP(nil), batch[i].Src.IP...), Port: batch[i].Src.Port}
			metas = append(metas, m)
		}
	}
	return payloads, metas
}

// sendAndDrain pushes bufs through the socket in small flow-controlled
// chunks — send, drain, repeat — so no test depends on kernel socket
// buffer depth (rmem_max is tiny on some CI hosts and a blast would
// silently drop the tail).
func sendAndDrain(t *testing.T, w *Writer, r Reader, bufs [][]byte) ([][]byte, []Datagram) {
	t.Helper()
	const chunk = 50
	var payloads [][]byte
	var metas []Datagram
	for off := 0; off < len(bufs); off += chunk {
		end := off + chunk
		if end > len(bufs) {
			end = len(bufs)
		}
		if err := w.WriteBatch(bufs[off:end]); err != nil {
			t.Fatal(err)
		}
		p, m := drain(t, r, end-off)
		payloads = append(payloads, p...)
		metas = append(metas, m...)
	}
	return payloads, metas
}

// TestReadersSeeIdenticalDatagramSequence is the reader-level
// differential test: the fast path and the portable fallback must
// deliver the same payload bytes in the same order for the same sent
// sequence, whatever their syscall batching.
func TestReadersSeeIdenticalDatagramSequence(t *testing.T) {
	const count = 500
	var got [2][][]byte
	for mode, force := range []bool{false, true} {
		rc, sc := udpPair(t)
		r := NewReader(rc, Config{ForceFallback: force})
		sent := make([][]byte, count)
		for i := range sent {
			sent[i] = []byte(fmt.Sprintf("dgram-%04d", i))
		}
		payloads, metas := sendAndDrain(t, NewWriter(sc), r, sent)
		for i, p := range payloads {
			if string(p) != string(sent[i]) {
				t.Fatalf("mode force=%v: datagram %d = %q, want %q", force, i, p, sent[i])
			}
			if metas[i].AtNs < 0 {
				t.Fatalf("mode force=%v: negative arrival stamp %d", force, metas[i].AtNs)
			}
			if metas[i].Src.Port != sc.LocalAddr().(*net.UDPAddr).Port {
				t.Fatalf("mode force=%v: datagram %d from port %d, want %d",
					force, i, metas[i].Src.Port, sc.LocalAddr().(*net.UDPAddr).Port)
			}
		}
		if force && r.Kernel() {
			t.Fatal("fallback reader claims kernel timestamps")
		}
		got[mode] = payloads
	}
	for i := range got[0] {
		if string(got[0][i]) != string(got[1][i]) {
			t.Fatalf("paths diverge at datagram %d: %q vs %q", i, got[0][i], got[1][i])
		}
	}
}

// TestKernelStampsMonotoneWithinBatch: on the fast path with kernel
// timestamps active, stamps within one drained sequence must be
// nondecreasing — the kernel stamped them in arrival order.
func TestKernelStampsMonotoneWithinBatch(t *testing.T) {
	rc, sc := udpPair(t)
	r := NewReader(rc, Config{})
	if !r.Kernel() {
		t.Skip("kernel RX timestamps unavailable on this platform/socket")
	}
	const count = 200
	bufs := make([][]byte, count)
	for i := range bufs {
		bufs[i] = []byte{byte(i), byte(i >> 8)}
	}
	_, metas := sendAndDrain(t, NewWriter(sc), r, bufs)
	kernel := 0
	last := int64(-1)
	for i, m := range metas {
		if m.AtNs < last {
			t.Fatalf("stamp %d went backwards: %d after %d", i, m.AtNs, last)
		}
		last = m.AtNs
		if m.Kernel {
			kernel++
		}
	}
	if kernel == 0 {
		t.Fatal("no datagram carried a kernel stamp despite Kernel()=true")
	}
}

// TestSlotsReusedAcrossBatches pins the buffer-ring ownership rule: a
// later ReadBatch rewrites the slot memory a previous batch handed
// out, so retaining a Payload across calls is a bug the test suite
// would catch as corrupted bytes.
func TestSlotsReusedAcrossBatches(t *testing.T) {
	rc, sc := udpPair(t)
	r := NewReader(rc, Config{Batch: 4})
	batch := make([]Datagram, r.BatchSize())

	if _, err := sc.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if n, err := r.ReadBatch(batch); err != nil || n != 1 {
		t.Fatalf("first ReadBatch = %d, %v", n, err)
	}
	held := batch[0].Payload
	if string(held) != "first" {
		t.Fatalf("payload = %q", held)
	}
	if _, err := sc.Write([]byte("seconds!")); err != nil {
		t.Fatal(err)
	}
	if n, err := r.ReadBatch(batch); err != nil || n != 1 {
		t.Fatalf("second ReadBatch = %d, %v", n, err)
	}
	if string(batch[0].Payload) != "seconds!" {
		t.Fatalf("second payload = %q", batch[0].Payload)
	}
	// The held view aliases the slot ring: after the second read of the
	// same slot its bytes must have been rewritten in place.
	if string(held[:5]) == "first" {
		t.Error("slot memory not reused: first payload survived the next batch")
	}
}

// TestReadBatchSurfacesClose: closing the socket unblocks a parked
// reader with an error rather than hanging it.
func TestReadBatchSurfacesClose(t *testing.T) {
	for _, force := range []bool{false, true} {
		rc, _ := udpPair(t)
		r := NewReader(rc, Config{ForceFallback: force})
		errc := make(chan error, 1)
		go func() {
			_, err := r.ReadBatch(make([]Datagram, r.BatchSize()))
			errc <- err
		}()
		time.Sleep(10 * time.Millisecond)
		rc.Close()
		select {
		case err := <-errc:
			if err == nil {
				t.Fatalf("force=%v: ReadBatch returned nil error on closed socket", force)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("force=%v: ReadBatch still blocked after close", force)
		}
	}
}

// TestWriterLongTrain: trains longer than one sendmmsg batch are
// chunked, all datagrams arrive, in order.
func TestWriterLongTrain(t *testing.T) {
	rc, sc := udpPair(t)
	if err := rc.SetReadBuffer(4 << 20); err != nil {
		t.Logf("SetReadBuffer: %v", err)
	}
	r := NewReader(rc, Config{})
	// One WriteBatch call longer than the sendmmsg chunk, small enough
	// (with per-datagram kernel overhead) to fit any default rcvbuf.
	const count = 150
	bufs := make([][]byte, count)
	for i := range bufs {
		bufs[i] = []byte(fmt.Sprintf("train-%03d", i))
	}
	if err := NewWriter(sc).WriteBatch(bufs); err != nil {
		t.Fatal(err)
	}
	payloads, _ := drain(t, r, count)
	for i, p := range payloads {
		if string(p) != string(bufs[i]) {
			t.Fatalf("datagram %d = %q, want %q", i, p, bufs[i])
		}
	}
}

// TestTimestamperFromWall: kernel wall stamps rebase onto the epoch;
// an instant captured between epoch creation and now must land in
// [0, elapsed].
func TestTimestamperFromWall(t *testing.T) {
	ts := NewTimestamper()
	now := time.Now()
	ns := ts.FromWall(int64(now.Unix()), int64(now.Nanosecond()))
	if ns < 0 {
		t.Fatalf("FromWall(now) = %d, want >= 0", ns)
	}
	if ns > int64(time.Second) {
		t.Fatalf("FromWall(now) = %d ns, implausibly far from the epoch", ns)
	}
	if before := ts.FromWall(int64(now.Unix())-10, int64(now.Nanosecond())); before >= 0 {
		t.Fatalf("FromWall(epoch-10s) = %d, want negative", before)
	}
}

// TestSteadyStateReadDoesNotAllocate holds the fast path to the 0
// allocs/op contract: draining batches after warmup allocates nothing.
func TestSteadyStateReadDoesNotAllocate(t *testing.T) {
	rc, sc := udpPair(t)
	r := NewReader(rc, Config{Batch: 8})
	batch := make([]Datagram, r.BatchSize())
	w := NewWriter(sc)
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = []byte("steady-state-datagram")
	}
	roundTrip := func() {
		if err := w.WriteBatch(bufs); err != nil {
			t.Fatal(err)
		}
		for got := 0; got < len(bufs); {
			n, err := r.ReadBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
	}
	roundTrip() // warmup: lazy netpoll/introspection allocations happen here
	allocs := testing.AllocsPerRun(50, roundTrip)
	if allocs > 0 {
		t.Errorf("steady-state batch round trip allocates %.1f times per run, want 0", allocs)
	}
	runtime.KeepAlive(batch)
}
