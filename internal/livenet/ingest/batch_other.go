//go:build !linux || (!amd64 && !arm64)

package ingest

import (
	"errors"
	"net"
)

// errNoFastPath reports that this platform has no batched
// kernel-timestamped receive path; NewReader degrades to the portable
// single-read fallback.
var errNoFastPath = errors.New("ingest: batched receive not supported on this platform")

func newBatchReader(conn *net.UDPConn, cfg Config) (Reader, error) {
	return nil, errNoFastPath
}

// Writer degrades to sequential sends where sendmmsg is unavailable;
// the pacing semantics are identical, only the syscall count differs.
type Writer struct {
	conn *net.UDPConn
}

// NewWriter returns the sequential-write fallback writer.
func NewWriter(conn *net.UDPConn) *Writer { return &Writer{conn: conn} }

// Batched reports whether WriteBatch coalesces syscalls (never, here).
func (w *Writer) Batched() bool { return false }

// WriteBatch sends every buffer in order, one syscall each.
func (w *Writer) WriteBatch(bufs [][]byte) error {
	for _, b := range bufs {
		if _, err := w.conn.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// EffectiveRcvBuf reports the granted receive buffer size, or 0 when
// the platform offers no way to read it back.
func EffectiveRcvBuf(conn *net.UDPConn) int { return 0 }
