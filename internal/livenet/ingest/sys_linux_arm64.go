//go:build linux && arm64

package ingest

// sysSENDMMSG is the sendmmsg syscall number; the frozen stdlib
// syscall table predates sendmmsg (Linux 3.0), so the number lives
// here per architecture.
const sysSENDMMSG uintptr = 269
