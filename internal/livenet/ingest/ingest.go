// Package ingest is livenet's datagram intake layer: it owns the
// receive syscalls, the arrival timestamps, and the buffer memory that
// probe datagrams land in, so the receiver above it never allocates on
// the packet path and never reads the clock itself.
//
// Two implementations sit behind the Reader interface:
//
//   - The Linux fast path (batch_linux.go) drains up to Config.Batch
//     datagrams per recvmmsg syscall into a reusable slot ring and
//     stamps each with the kernel's RX timestamp (SO_TIMESTAMPNS
//     control messages), so measured inter-arrival gaps exclude
//     scheduler wakeup jitter — the end-host timing pitfall the paper's
//     calibration section warns about.
//   - The portable fallback (this file) reads one datagram per syscall
//     into the same kind of reusable slot and stamps it with the
//     userspace monotonic clock. Every platform keeps working; only
//     timing fidelity and throughput differ.
//
// Buffer-ring ownership rule: ReadBatch hands out views into the
// reader's own slots (payload bytes and source addresses alike). They
// are valid until the caller's next ReadBatch call on the same reader
// — the reader is single-consumer by design. The caller must finish
// parsing and stream accounting (copying out the one datum it keeps,
// the arrival timestamp) before draining the next batch; nothing is
// ever retained from a slot, so reclamation is implicit and free.
//
// Timestamp source hierarchy: kernel RX stamp when the socket option
// took and the control message arrived intact; the reader's monotonic
// Timestamper otherwise — per datagram, so one missing control message
// degrades one stamp, not the stream. Both sources are reported
// relative to the same Timestamper epoch, and Datagram.Kernel says
// which one stamped each datagram.
package ingest

import (
	"net"
	"net/netip"
	"time"
)

// Datagram is one received probe datagram. Payload and Src point into
// the reader's reusable slot memory: they are valid until the next
// ReadBatch call, and must be copied to be retained.
type Datagram struct {
	// Payload is the datagram's bytes, length included.
	Payload []byte
	// Src is the sender's address, reused slot memory like Payload.
	Src *net.UDPAddr
	// AtNs is the arrival time in nanoseconds since the reader's
	// Timestamper epoch.
	AtNs int64
	// Kernel reports whether AtNs came from a kernel RX timestamp
	// rather than the userspace fallback clock.
	Kernel bool
}

// Config sizes a reader.
type Config struct {
	// Batch is the maximum datagrams drained per syscall on the fast
	// path (default 64, capped at 1024). The fallback path reads one
	// datagram per call regardless.
	Batch int
	// Slot is the per-datagram buffer size (default 65536, which holds
	// any IPv4 UDP payload).
	Slot int
	// ForceFallback selects the portable single-read path even where
	// the batched kernel-timestamped path is available — for
	// differential tests and for operating without kernel timestamps.
	ForceFallback bool
	// Timestamper supplies the arrival clock; nil starts a fresh one.
	Timestamper *Timestamper
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Batch > 1024 {
		c.Batch = 1024
	}
	if c.Slot <= 0 {
		c.Slot = 65536
	}
	if c.Timestamper == nil {
		c.Timestamper = NewTimestamper()
	}
	return c
}

// Reader drains datagrams from a socket into caller-visible batches.
// It is single-consumer: one goroutine calls ReadBatch in a loop, and
// each call invalidates the previous call's Datagrams.
type Reader interface {
	// ReadBatch blocks until at least one datagram is available and
	// fills ds with as many as one syscall (fast path) or one read
	// (fallback) yields, returning the count. A socket closed underneath
	// the reader surfaces as an error.
	ReadBatch(ds []Datagram) (int, error)
	// Kernel reports whether arrival stamps come from kernel RX
	// timestamps on this reader.
	Kernel() bool
	// BatchSize is the largest count one ReadBatch call can return —
	// the right length for the caller's Datagram slice.
	BatchSize() int
}

// NewReader picks the best available implementation for the platform:
// the batched kernel-timestamped fast path where supported (Linux
// amd64/arm64), the portable single-read fallback otherwise or when
// cfg.ForceFallback is set. It never fails: an error arming the fast
// path (exotic socket, denied setsockopt) degrades to the fallback.
func NewReader(conn *net.UDPConn, cfg Config) Reader {
	cfg = cfg.withDefaults()
	if !cfg.ForceFallback {
		if r, err := newBatchReader(conn, cfg); err == nil {
			return r
		}
	}
	return newSingleReader(conn, cfg)
}

// Timestamper converts arrival instants to nanoseconds since one fixed
// epoch, whichever clock observed them. Userspace stamps ride Go's
// monotonic clock; kernel stamps arrive on CLOCK_REALTIME and are
// rebased onto the same epoch via the wall time captured at creation.
// Within one stream all stamps come from one source, so the offset
// between the two clocks cancels out of every gap and trend the
// estimators consume.
type Timestamper struct {
	epoch     time.Time // carries the monotonic reading
	epochWall int64     // wall nanoseconds at the epoch, for kernel stamps
}

// NewTimestamper starts an epoch at the current instant.
func NewTimestamper() *Timestamper {
	now := time.Now()
	return &Timestamper{epoch: now, epochWall: now.UnixNano()}
}

// Now is the userspace fallback stamp: monotonic nanoseconds since the
// epoch.
func (t *Timestamper) Now() int64 { return int64(time.Since(t.epoch)) }

// FromWall rebases a kernel CLOCK_REALTIME timestamp onto the epoch.
// The result can go negative if the wall clock stepped backwards past
// the epoch mid-run; callers treat that as "no kernel stamp" rather
// than emit a negative arrival time.
func (t *Timestamper) FromWall(sec, nsec int64) int64 {
	return sec*1e9 + nsec - t.epochWall
}

// singleReader is the portable fallback: one datagram per call via the
// allocation-free ReadFromUDPAddrPort, stamped in userspace. Its slot
// memory (buffer and address) is reused across calls under the same
// ownership rule as the fast path.
type singleReader struct {
	conn *net.UDPConn
	ts   *Timestamper
	buf  []byte
	addr net.UDPAddr
}

func newSingleReader(conn *net.UDPConn, cfg Config) *singleReader {
	return &singleReader{
		conn: conn,
		ts:   cfg.Timestamper,
		buf:  make([]byte, cfg.Slot),
		addr: net.UDPAddr{IP: make(net.IP, 0, 16)},
	}
}

func (r *singleReader) ReadBatch(ds []Datagram) (int, error) {
	n, ap, err := r.conn.ReadFromUDPAddrPort(r.buf)
	at := r.ts.Now()
	if err != nil {
		return 0, err
	}
	fillUDPAddr(&r.addr, ap)
	ds[0] = Datagram{Payload: r.buf[:n], Src: &r.addr, AtNs: at}
	return 1, nil
}

func (r *singleReader) Kernel() bool   { return false }
func (r *singleReader) BatchSize() int { return 1 }

// fillUDPAddr rewrites dst in place from an AddrPort without
// allocating: dst.IP must have capacity 16.
func fillUDPAddr(dst *net.UDPAddr, ap netip.AddrPort) {
	a := ap.Addr()
	if a.Is4In6() {
		a = a.Unmap()
	}
	if a.Is4() {
		b := a.As4()
		dst.IP = append(dst.IP[:0], b[:]...)
	} else {
		b := a.As16()
		dst.IP = append(dst.IP[:0], b[:]...)
	}
	dst.Port = int(ap.Port())
	dst.Zone = ""
}
