//go:build linux && (amd64 || arm64)

package ingest

import (
	"net"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: one message header
// plus the kernel-filled received length.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

const (
	// nameSize holds the larger of sockaddr_in / sockaddr_in6.
	nameSize = syscall.SizeofSockaddrInet6
	// ctrlSize holds one SCM_TIMESTAMPNS control message (cmsghdr +
	// struct timespec) with alignment slack.
	ctrlSize = 64
)

// batchReader is the Linux fast path: recvmmsg drains up to cfg.Batch
// datagrams per syscall into a preallocated slot ring, and each
// datagram carries the kernel's RX timestamp from its SO_TIMESTAMPNS
// control message. Nothing on the per-batch path allocates: buffers,
// sockaddr scratch, control buffers, and the per-slot UDPAddrs are all
// fixed at construction and rewritten in place.
type batchReader struct {
	raw    syscall.RawConn
	ts     *Timestamper
	kernel bool

	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	slab  []byte // n × slot payload ring
	names []byte // n × nameSize sockaddr scratch
	ctrls []byte // n × ctrlSize cmsg scratch
	views [][]byte
	addrs []net.UDPAddr

	// recvFn is the RawConn.Read callback, built once so the per-batch
	// path does not allocate a closure per syscall; vlen/got/errno are
	// its captured state (single-consumer, so unsynchronized is fine).
	recvFn func(fd uintptr) bool
	vlen   int
	got    uintptr
	errno  syscall.Errno
}

// newBatchReader arms the fast path on conn: SO_TIMESTAMPNS for kernel
// RX stamps (a refusal degrades to userspace stamps, still batched)
// and the recvmmsg slot ring.
func newBatchReader(conn *net.UDPConn, cfg Config) (Reader, error) {
	raw, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	kernel := false
	ctrlErr := raw.Control(func(fd uintptr) {
		kernel = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_TIMESTAMPNS, 1) == nil
	})
	if ctrlErr != nil {
		return nil, ctrlErr
	}
	n := cfg.Batch
	r := &batchReader{
		raw:    raw,
		ts:     cfg.Timestamper,
		kernel: kernel,
		hdrs:   make([]mmsghdr, n),
		iovs:   make([]syscall.Iovec, n),
		slab:   make([]byte, n*cfg.Slot),
		names:  make([]byte, n*nameSize),
		ctrls:  make([]byte, n*ctrlSize),
		views:  make([][]byte, n),
		addrs:  make([]net.UDPAddr, n),
	}
	for i := 0; i < n; i++ {
		r.views[i] = r.slab[i*cfg.Slot : (i+1)*cfg.Slot]
		r.addrs[i].IP = make(net.IP, 0, 16)
		r.iovs[i].Base = &r.views[i][0]
		r.iovs[i].SetLen(cfg.Slot)
		h := &r.hdrs[i].Hdr
		h.Name = &r.names[i*nameSize]
		h.Iov = &r.iovs[i]
		h.Iovlen = 1
		h.Control = &r.ctrls[i*ctrlSize]
	}
	r.recvFn = func(fd uintptr) bool {
		r.got, _, r.errno = syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(r.vlen),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		// false parks the goroutine on the netpoller until the socket
		// is readable again.
		return r.errno != syscall.EAGAIN
	}
	return r, nil
}

func (r *batchReader) Kernel() bool   { return r.kernel }
func (r *batchReader) BatchSize() int { return len(r.hdrs) }

func (r *batchReader) ReadBatch(ds []Datagram) (int, error) {
	vlen := len(ds)
	if vlen > len(r.hdrs) {
		vlen = len(r.hdrs)
	}
	// Reset the kernel-written header fields the previous batch dirtied.
	for i := 0; i < vlen; i++ {
		h := &r.hdrs[i]
		h.Len = 0
		h.Hdr.Namelen = nameSize
		h.Hdr.SetControllen(ctrlSize)
		h.Hdr.Flags = 0
	}
	r.vlen = vlen
	for {
		err := r.raw.Read(r.recvFn)
		if err != nil {
			return 0, err // socket closed underneath the reader
		}
		if r.errno == syscall.EINTR {
			continue
		}
		if r.errno != 0 {
			return 0, r.errno
		}
		break
	}
	n := int(r.got)
	for i := 0; i < n; i++ {
		h := &r.hdrs[i]
		d := &ds[i]
		d.Payload = r.views[i][:h.Len]
		parseSockaddr(&r.addrs[i], r.names[i*nameSize:(i+1)*nameSize])
		d.Src = &r.addrs[i]
		d.AtNs, d.Kernel = 0, false
		if r.kernel {
			if ns, ok := kernelStampNs(r.ctrls[i*ctrlSize:i*ctrlSize+int(h.Hdr.Controllen)], r.ts); ok {
				d.AtNs, d.Kernel = ns, true
			}
		}
		if !d.Kernel {
			d.AtNs = r.ts.Now()
		}
	}
	return n, nil
}

// kernelStampNs walks a received control buffer for the SCM_TIMESTAMPNS
// message and rebases it onto the Timestamper epoch. A missing or
// malformed message — or a wall-clock step that would produce a
// negative arrival — reports ok=false so the caller falls back to the
// userspace stamp for this one datagram.
func kernelStampNs(b []byte, ts *Timestamper) (int64, bool) {
	const align = 8 // cmsg alignment on 64-bit Linux
	for len(b) >= syscall.SizeofCmsghdr {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&b[0]))
		l := int(h.Len)
		if l < syscall.SizeofCmsghdr || l > len(b) {
			return 0, false
		}
		if h.Level == syscall.SOL_SOCKET && h.Type == syscall.SCM_TIMESTAMPNS &&
			l >= syscall.SizeofCmsghdr+int(unsafe.Sizeof(syscall.Timespec{})) {
			sp := (*syscall.Timespec)(unsafe.Pointer(&b[syscall.SizeofCmsghdr]))
			ns := ts.FromWall(sp.Sec, sp.Nsec)
			return ns, ns >= 0
		}
		next := (l + align - 1) &^ (align - 1)
		if next <= 0 || next >= len(b) {
			break
		}
		b = b[next:]
	}
	return 0, false
}

// parseSockaddr rewrites dst in place from raw kernel sockaddr bytes;
// dst.IP must have capacity 16. The port sits at bytes [2:4] in
// network order for both families.
func parseSockaddr(dst *net.UDPAddr, b []byte) {
	switch *(*uint16)(unsafe.Pointer(&b[0])) {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&b[0]))
		dst.IP = append(dst.IP[:0], sa.Addr[:]...)
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&b[0]))
		dst.IP = append(dst.IP[:0], sa.Addr[:]...)
	default:
		dst.IP = dst.IP[:0]
	}
	dst.Port = int(b[2])<<8 | int(b[3])
	dst.Zone = ""
}

// Writer batches back-to-back datagrams on a connected UDP socket into
// sendmmsg calls, so a zero-gap packet train leaves the host as one
// syscall's worth of departures instead of per-packet syscall jitter.
type Writer struct {
	conn *net.UDPConn
	raw  syscall.RawConn // nil = sequential fallback
	hdrs []mmsghdr
	iovs []syscall.Iovec

	// sendFn is the RawConn.Write callback, built once so batched sends
	// do not allocate a closure per syscall.
	sendFn func(fd uintptr) bool
	vlen   int
	sent   uintptr
	errno  syscall.Errno
}

// writerBatch bounds one sendmmsg call; longer trains loop.
const writerBatch = 64

// NewWriter arms batched sends on conn; on any failure the writer
// degrades to sequential conn.Write calls, so it is always usable.
func NewWriter(conn *net.UDPConn) *Writer {
	w := &Writer{conn: conn}
	if raw, err := conn.SyscallConn(); err == nil {
		w.raw = raw
		w.hdrs = make([]mmsghdr, writerBatch)
		w.iovs = make([]syscall.Iovec, writerBatch)
		for i := range w.hdrs {
			w.hdrs[i].Hdr.Iov = &w.iovs[i]
			w.hdrs[i].Hdr.Iovlen = 1
		}
		w.sendFn = func(fd uintptr) bool {
			w.sent, _, w.errno = syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&w.hdrs[0])), uintptr(w.vlen),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			return w.errno != syscall.EAGAIN
		}
	}
	return w
}

// Batched reports whether WriteBatch coalesces into sendmmsg.
func (w *Writer) Batched() bool { return w.raw != nil }

// WriteBatch sends every buffer, in order, coalescing up to
// writerBatch per sendmmsg syscall. Partial sends resume where the
// kernel stopped.
func (w *Writer) WriteBatch(bufs [][]byte) error {
	if w.raw == nil {
		for _, b := range bufs {
			if _, err := w.conn.Write(b); err != nil {
				return err
			}
		}
		return nil
	}
	for len(bufs) > 0 {
		vlen := len(bufs)
		if vlen > writerBatch {
			vlen = writerBatch
		}
		for i := 0; i < vlen; i++ {
			w.iovs[i].Base = &bufs[i][0]
			w.iovs[i].SetLen(len(bufs[i]))
		}
		w.vlen = vlen
		if err := w.raw.Write(w.sendFn); err != nil {
			return err
		}
		if w.errno == syscall.EINTR {
			continue
		}
		if w.errno != 0 {
			return w.errno
		}
		bufs = bufs[w.sent:]
	}
	return nil
}

// EffectiveRcvBuf reports the receive buffer size the kernel actually
// granted (Linux doubles the requested value for bookkeeping), or 0 if
// it cannot be read.
func EffectiveRcvBuf(conn *net.UDPConn) int {
	raw, err := conn.SyscallConn()
	if err != nil {
		return 0
	}
	size := 0
	raw.Control(func(fd uintptr) {
		if v, err := syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF); err == nil {
			size = v
		}
	})
	return size
}
