package livenet

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// probePacket hand-crafts a probe datagram of the given total size.
func probePacket(session, stream uint32, seq uint32, size int) []byte {
	pkt := make([]byte, size)
	binary.BigEndian.PutUint32(pkt[0:4], magic)
	binary.BigEndian.PutUint32(pkt[4:8], session)
	binary.BigEndian.PutUint32(pkt[8:12], stream)
	binary.BigEndian.PutUint32(pkt[12:16], seq)
	return pkt
}

// openRawStream arms a stream over the transport's control channel
// without sending any probe traffic.
func openRawStream(t *testing.T, tr *Transport, id uint32, count, size int) ctrlMsg {
	t.Helper()
	if err := tr.enc.Encode(ctrlMsg{Type: msgStream, ID: id, Count: count, Size: size}); err != nil {
		t.Fatal(err)
	}
	var reply ctrlMsg
	if err := tr.dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

func finishRawStream(t *testing.T, tr *Transport, id uint32, deadlineMs int) ctrlMsg {
	t.Helper()
	if err := tr.enc.Encode(ctrlMsg{Type: msgDone, ID: id, DeadlineMs: deadlineMs}); err != nil {
		t.Fatal(err)
	}
	var reply ctrlMsg
	if err := tr.dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestHandshakeAssignsDistinctSessions(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	seen := map[uint32]bool{}
	for i := 0; i < 3; i++ {
		tr, err := Dial(r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		if seen[tr.SessionID()] {
			t.Fatalf("session id %d assigned twice", tr.SessionID())
		}
		seen[tr.SessionID()] = true
	}
}

// TestDisconnectReapsStreamState is the stream-leak regression: a
// sender that opens a stream and then drops its connection (an errored
// Probe, a crash) must leave no receiver-side state behind. Before the
// session layer, the rxStream stayed in the receiver map forever.
func TestDisconnectReapsStreamState(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if reply := openRawStream(t, tr, 1, 100, 200); reply.Type != msgReady {
		t.Fatalf("stream setup reply = %+v, want ready", reply)
	}
	if st := r.Stats(); st.ActiveSessions != 1 || st.ActiveStreams != 1 {
		t.Fatalf("before disconnect: %+v, want 1 session / 1 stream", st)
	}
	tr.Close() // mid-stream disconnect, no done
	waitFor(t, "session reap", func() bool {
		st := r.Stats()
		return st.ActiveSessions == 0 && st.ActiveStreams == 0
	})
}

// TestDoneUnknownStream: a done for a stream the receiver does not
// hold must get a descriptive error reply — not a dropped connection —
// and the session must remain usable afterwards.
func TestDoneUnknownStream(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	reply := finishRawStream(t, tr, 99, 1)
	if reply.Type != msgError || !strings.Contains(reply.Error, "99") {
		t.Fatalf("done on unknown stream replied %+v, want error naming stream 99", reply)
	}
	// The connection survived: a normal probe still works.
	rec, err := tr.Probe(probe.Periodic(50*unit.Mbps, 300, 10))
	if err != nil {
		t.Fatalf("probe after unknown-stream error: %v", err)
	}
	if !rec.Done() {
		t.Error("record not resolved after recovered session")
	}
}

// TestProbeSurfacesReceiverRefusal: a stream the receiver rejects must
// turn into a descriptive Transport.Probe error carrying the reason,
// not a bare decode failure.
func TestProbeSurfacesReceiverRefusal(t *testing.T) {
	r, err := ListenReceiverConfig("127.0.0.1:0", Config{MaxCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	_, err = tr.Probe(probe.Periodic(50*unit.Mbps, 300, 10))
	if err == nil || !strings.Contains(err.Error(), "rejected stream") {
		t.Fatalf("probe over MaxCount returned %v, want receiver rejection", err)
	}
	// The refusal left the session usable.
	if _, err := tr.Probe(probe.Periodic(50*unit.Mbps, 300, 4)); err != nil {
		t.Fatalf("probe within limits after refusal: %v", err)
	}
}

// TestSizeMismatchCountedAsLoss: a truncated (or padded) datagram with
// a valid header must not be stamped into the stream — it would
// corrupt every gap-based estimator — and must be counted.
func TestSizeMismatchCountedAsLoss(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	const declared = 64
	if reply := openRawStream(t, tr, 1, 2, declared); reply.Type != msgReady {
		t.Fatalf("stream setup reply = %+v", reply)
	}
	// Short packet for seq 0: header-only, 16 of the declared 64 bytes.
	if _, err := tr.udp.Write(probePacket(tr.SessionID(), 1, 0, packetHeader)); err != nil {
		t.Fatal(err)
	}
	// Full-size packet for seq 1.
	if _, err := tr.udp.Write(probePacket(tr.SessionID(), 1, 1, declared)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "full-size packet stamped", func() bool { return r.Stats().Packets >= 1 })
	res := finishRawStream(t, tr, 1, 50)
	if res.Type != msgResult || len(res.RecvNs) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.RecvNs[0] != -1 {
		t.Errorf("truncated packet was stamped at %d, want lost (-1)", res.RecvNs[0])
	}
	if res.RecvNs[1] < 0 {
		t.Error("full-size packet reported lost")
	}
	if st := r.Stats(); st.SizeMismatches != 1 {
		t.Errorf("SizeMismatches = %d, want 1", st.SizeMismatches)
	}
}

// TestSourceBindingRejectsSpoofedSender: once a session's first probe
// packet binds its UDP source, a second socket writing valid headers
// must not be able to stamp the victim's sequence slots.
func TestSourceBindingRejectsSpoofedSender(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	const size = 32
	if reply := openRawStream(t, tr, 1, 2, size); reply.Type != msgReady {
		t.Fatalf("stream setup reply = %+v", reply)
	}
	spoof, err := net.DialUDP("udp", nil, tr.udp.RemoteAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer spoof.Close()
	// An invalid packet (unknown stream) from the attacker ahead of
	// the victim's first probe must not capture the source binding:
	// only a fully valid packet binds.
	if _, err := spoof.Write(probePacket(tr.SessionID(), 77, 0, size)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "bogus-stream packet dropped", func() bool { return r.Stats().Drops >= 1 })
	// Victim's first valid packet binds the session to its source.
	if _, err := tr.udp.Write(probePacket(tr.SessionID(), 1, 0, size)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "victim packet stamped", func() bool { return r.Stats().Packets >= 1 })
	// Attacker again: a bit-identical valid header for seq 1, now
	// against the bound session.
	if _, err := spoof.Write(probePacket(tr.SessionID(), 1, 1, size)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "spoofed packet rejected", func() bool { return r.Stats().SourceMismatches >= 1 })
	res := finishRawStream(t, tr, 1, 10)
	if res.Type != msgResult || len(res.RecvNs) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.RecvNs[0] < 0 {
		t.Error("victim's own packet reported lost")
	}
	if res.RecvNs[1] != -1 {
		t.Errorf("spoofed packet resolved the victim's slot at %d", res.RecvNs[1])
	}
}

func TestMaxSessionsRefusedWithError(t *testing.T) {
	r, err := ListenReceiverConfig("127.0.0.1:0", Config{MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	first, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(r.Addr()); err == nil || !strings.Contains(err.Error(), "refused session") {
		t.Fatalf("second dial returned %v, want session refusal", err)
	}
	if st := r.Stats(); st.Refused != 1 {
		t.Errorf("Refused = %d, want 1", st.Refused)
	}
	// Freeing the slot readmits: close the first session and redial.
	first.Close()
	waitFor(t, "slot freed", func() bool { return r.Stats().ActiveSessions == 0 })
	again, err := Dial(r.Addr())
	if err != nil {
		t.Fatalf("dial after slot freed: %v", err)
	}
	again.Close()
}

func TestPerSessionStreamAndByteLimits(t *testing.T) {
	r, err := ListenReceiverConfig("127.0.0.1:0", Config{MaxStreams: 2, MaxBytes: 10000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	if reply := openRawStream(t, tr, 1, 10, 100); reply.Type != msgReady {
		t.Fatalf("stream 1: %+v", reply)
	}
	if reply := openRawStream(t, tr, 2, 10, 100); reply.Type != msgReady {
		t.Fatalf("stream 2: %+v", reply)
	}
	if reply := openRawStream(t, tr, 3, 10, 100); reply.Type != msgError || !strings.Contains(reply.Error, "stream limit") {
		t.Fatalf("third outstanding stream replied %+v, want stream-limit error", reply)
	}
	// Reporting one stream frees its slot and its bytes.
	if res := finishRawStream(t, tr, 1, 0); res.Type != msgResult {
		t.Fatalf("done stream 1: %+v", res)
	}
	if reply := openRawStream(t, tr, 3, 10, 100); reply.Type != msgReady {
		t.Fatalf("stream 3 after slot freed: %+v", reply)
	}
	// Drop to one outstanding stream (1000 bytes) so the next refusal
	// can only come from the byte limit: 95×100 = 9500 more breaches
	// MaxBytes without reaching MaxStreams.
	if res := finishRawStream(t, tr, 2, 0); res.Type != msgResult {
		t.Fatalf("done stream 2: %+v", res)
	}
	if reply := openRawStream(t, tr, 4, 95, 100); reply.Type != msgError || !strings.Contains(reply.Error, "byte limit") {
		t.Fatalf("over-byte-limit stream replied %+v, want byte-limit error", reply)
	}
	// A duplicate stream ID is refused, not silently rearmed.
	if reply := openRawStream(t, tr, 3, 10, 100); reply.Type != msgError || !strings.Contains(reply.Error, "already open") {
		t.Fatalf("duplicate stream id replied %+v, want already-open error", reply)
	}
}
