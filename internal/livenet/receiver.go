// Package livenet implements core.Transport over real sockets: probing
// streams are UDP packets paced by a hybrid sleep/busy-wait loop, and a
// TCP control channel coordinates stream setup and result collection.
// It turns the estimation tools in internal/tools into usable network
// programs — the paper's closing call is to integrate avail-bw
// estimation with real applications — while the simulator transport
// remains the substrate for controlled experiments.
//
// The receiver is a concurrent multi-session measurement server: every
// control connection gets its own server-assigned session, probe
// packets carry (sessionID, streamID), and per-session stream state
// lives behind a per-session lock, so concurrent senders never share
// mutable state and a disconnecting sender's streams are reaped with
// its session. Session, stream, and byte limits are enforced with
// explicit "error" control replies rather than silent disconnects.
//
// Clock model: send timestamps are on the sender's monotonic clock and
// receive timestamps on the receiver's. The unknown offset is constant
// over a stream, so one-way-delay *trends*, input/output *rates*, and
// pair *gaps* — everything the estimators consume — are unaffected.
// Different sessions see different offsets (one per sender clock), but
// no estimator compares timestamps across sessions.
//
// Timing quality: Go's garbage collector and scheduler can perturb
// microsecond-scale pacing (the repro calibration notes this). The
// sender therefore locks its OS thread, preallocates every buffer, and
// spins for the final stretch before each departure; residual jitter on
// loopback is typically a few microseconds.
package livenet

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"abw/internal/livenet/ingest"
)

// Config bounds a Receiver's resource usage. Zero fields take the
// defaults; limits exist so one runaway or hostile sender cannot
// exhaust the receiver that everyone else's measurements depend on.
type Config struct {
	// MaxSessions is the number of concurrent control connections
	// (default 64). Further dials are refused with an "error" reply.
	MaxSessions int
	// MaxStreams is the number of outstanding (opened, not yet
	// reported) streams per session (default 8).
	MaxStreams int
	// MaxBytes is the outstanding declared probe volume per session —
	// the sum of count×size over open streams (default 64 MiB).
	MaxBytes int64
	// MaxCount is the packet count accepted for one stream
	// (default 1<<20).
	MaxCount int
	// RcvBuf requests an SO_RCVBUF of this many bytes on the probe
	// socket (0 leaves the OS default). The kernel may grant less (or,
	// on Linux, double it); Stats reports what was actually granted.
	RcvBuf int
	// Batch is the maximum datagrams drained per ingest syscall on the
	// batched fast path (0 = ingest's default of 64).
	Batch int
	// ForceFallback disables the batched kernel-timestamped ingest fast
	// path, selecting the portable single-read loop with userspace
	// arrival stamps — for differential tests and A/B timing studies.
	ForceFallback bool
	// Clock injects the timer source for the receiver's straggler
	// waits (nil = the real clock). Tests use a fake so the waits are
	// script-driven instead of wall-clock sleeps.
	Clock Clock
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 8
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.MaxCount <= 0 {
		c.MaxCount = 1 << 20
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// Stats is a snapshot of a Receiver's counters, for monitoring and for
// asserting that sessions leave no state behind.
type Stats struct {
	ActiveSessions int // control connections currently open
	ActiveStreams  int // streams opened but not yet reported/reaped

	Sessions         uint64 // sessions ever accepted
	Streams          uint64 // streams ever opened
	Packets          uint64 // probe packets stamped into a stream
	Drops            uint64 // datagrams discarded (all causes below included)
	SizeMismatches   uint64 // datagram length ≠ the stream's declared size
	SourceMismatches uint64 // datagram source ≠ the session's bound source
	Refused          uint64 // sessions refused at MaxSessions

	Batches          uint64 // ingest batches drained (Packets+Drops arrivals over this many syscall rounds)
	RcvBufBytes      int    // receive buffer the kernel actually granted
	KernelTimestamps bool   // arrival stamps come from kernel RX timestamps
}

func (s Stats) String() string {
	src := "user"
	if s.KernelTimestamps {
		src = "kernel"
	}
	return fmt.Sprintf("sessions=%d/%d streams=%d/%d packets=%d drops=%d batches=%d ts=%s",
		s.ActiveSessions, s.Sessions, s.ActiveStreams, s.Streams, s.Packets, s.Drops, s.Batches, src)
}

// Receiver is the probing sink: a UDP socket recording per-packet
// arrival timestamps and a TCP control listener reporting them back.
// All methods are safe for concurrent use.
type Receiver struct {
	cfg    Config
	tcp    net.Listener
	udp    *net.UDPConn
	ing    ingest.Reader
	rcvbuf int // effective SO_RCVBUF the kernel granted

	mu       sync.RWMutex // guards sessions only
	sessions map[uint32]*session

	packets       atomic.Uint64
	drops         atomic.Uint64
	sizeMismatch  atomic.Uint64
	srcMismatch   atomic.Uint64
	totalSessions atomic.Uint64
	totalStreams  atomic.Uint64
	refused       atomic.Uint64
	batches       atomic.Uint64

	closeOnce sync.Once
	closed    chan struct{}
}

// ListenReceiver starts a receiver with default limits on the given
// TCP address (e.g. "127.0.0.1:0"); the UDP probe socket binds the
// same address as the chosen TCP port.
func ListenReceiver(addr string) (*Receiver, error) {
	return ListenReceiverConfig(addr, Config{})
}

// ListenReceiverConfig starts a receiver with explicit limits.
func ListenReceiverConfig(addr string, cfg Config) (*Receiver, error) {
	tl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: control listen: %w", err)
	}
	uaddr := tl.Addr().(*net.TCPAddr)
	uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: uaddr.IP, Port: uaddr.Port})
	if err != nil {
		tl.Close()
		return nil, fmt.Errorf("livenet: probe listen: %w", err)
	}
	r := &Receiver{
		cfg:      cfg.withDefaults(),
		tcp:      tl,
		udp:      uc,
		sessions: make(map[uint32]*session),
		closed:   make(chan struct{}),
	}
	if r.cfg.RcvBuf > 0 {
		// Best effort: the kernel clamps to rmem_max, and Stats reports
		// what was actually granted.
		uc.SetReadBuffer(r.cfg.RcvBuf)
	}
	r.rcvbuf = ingest.EffectiveRcvBuf(uc)
	r.ing = ingest.NewReader(uc, ingest.Config{
		Batch:         r.cfg.Batch,
		Slot:          maxPacket,
		ForceFallback: r.cfg.ForceFallback,
	})
	go r.udpLoop()
	go r.acceptLoop()
	return r, nil
}

// Addr returns the receiver's control address for Dial.
func (r *Receiver) Addr() string { return r.tcp.Addr().String() }

// Close shuts the receiver down: the listeners stop and every live
// session's control connection is closed (which reaps its streams).
func (r *Receiver) Close() {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.tcp.Close()
		r.udp.Close()
		r.mu.RLock()
		conns := make([]net.Conn, 0, len(r.sessions))
		for _, s := range r.sessions {
			conns = append(conns, s.conn)
		}
		r.mu.RUnlock()
		for _, c := range conns {
			c.Close()
		}
	})
}

// Stats snapshots the receiver's counters.
func (r *Receiver) Stats() Stats {
	st := Stats{
		Sessions:         r.totalSessions.Load(),
		Streams:          r.totalStreams.Load(),
		Packets:          r.packets.Load(),
		Drops:            r.drops.Load(),
		SizeMismatches:   r.sizeMismatch.Load(),
		SourceMismatches: r.srcMismatch.Load(),
		Refused:          r.refused.Load(),
		Batches:          r.batches.Load(),
		RcvBufBytes:      r.rcvbuf,
		KernelTimestamps: r.ing != nil && r.ing.Kernel(),
	}
	r.mu.RLock()
	st.ActiveSessions = len(r.sessions)
	for _, s := range r.sessions {
		st.ActiveStreams += s.streamCount()
	}
	r.mu.RUnlock()
	return st
}

// udpLoop drains the ingest reader and routes every probe datagram to
// its session: the receiver lock is held only for the map lookup
// (read-locked, so concurrent control traffic does not stall
// stamping), and the per-packet bookkeeping happens under the owning
// session's own lock. All per-batch state is allocated once up front;
// the ingest slot views handed out by ReadBatch are consumed entirely
// before the next call, honoring the buffer-ring ownership rule.
func (r *Receiver) udpLoop() {
	batch := make([]ingest.Datagram, r.ing.BatchSize())
	hs := make([]probeHeader, len(batch))
	oks := make([]bool, len(batch))
	for {
		n, err := r.ing.ReadBatch(batch)
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
				continue
			}
		}
		if n == 0 {
			continue
		}
		r.batches.Add(1)
		parseProbeBatch(batch[:n], hs, oks)
		for i := 0; i < n; i++ {
			if !oks[i] {
				r.drops.Add(1)
				continue
			}
			h := hs[i]
			r.mu.RLock()
			s := r.sessions[h.session]
			r.mu.RUnlock()
			if s == nil || !s.stamp(batch[i].Src, h.stream, h.seq, len(batch[i].Payload), batch[i].AtNs) {
				r.drops.Add(1)
				continue
			}
			r.packets.Add(1)
		}
	}
}

func (r *Receiver) acceptLoop() {
	for {
		conn, err := r.tcp.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
				continue
			}
		}
		go r.serve(conn)
	}
}

// addSession registers a new session under a fresh server-assigned ID,
// or reports the limit for the refusal reply. IDs are random, not
// sequential: the session ID doubles as the proof-of-possession token
// in every probe datagram (it travels only over the session's own TCP
// channel), so an off-path spoofer cannot guess a live session to race
// its source binding or stamp its slots.
func (r *Receiver) addSession(conn net.Conn) (*session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Checked under the lock so a connection accepted just before
	// Close cannot register after Close's session snapshot and
	// outlive the receiver.
	select {
	case <-r.closed:
		return nil, fmt.Errorf("receiver is shut down")
	default:
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.refused.Add(1)
		return nil, fmt.Errorf("session limit reached (%d active)", r.cfg.MaxSessions)
	}
	id, err := r.newSessionID()
	if err != nil {
		return nil, err
	}
	s := &session{
		id:      id,
		r:       r,
		conn:    conn,
		streams: make(map[uint32]*rxStream),
	}
	r.sessions[s.id] = s
	r.totalSessions.Add(1)
	return s, nil
}

// newSessionID draws an unused random nonzero session ID; the caller
// holds r.mu.
func (r *Receiver) newSessionID() (uint32, error) {
	var b [4]byte
	for tries := 0; tries < 32; tries++ {
		if _, err := rand.Read(b[:]); err != nil {
			return 0, fmt.Errorf("session id: %v", err)
		}
		id := binary.BigEndian.Uint32(b[:])
		if _, taken := r.sessions[id]; id != 0 && !taken {
			return id, nil
		}
	}
	return 0, fmt.Errorf("session id space exhausted")
}

// dropSession removes a session and reaps all of its stream state —
// the cleanup path for sender error, disconnect, and receiver close
// alike. After it returns, udpLoop can no longer route to the session
// and its streams are unreachable.
func (r *Receiver) dropSession(s *session) {
	r.mu.Lock()
	delete(r.sessions, s.id)
	r.mu.Unlock()
	s.mu.Lock()
	s.streams = nil
	s.pending = 0
	s.mu.Unlock()
}
