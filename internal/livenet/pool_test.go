package livenet

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// silentReceiver accepts control connections and completes the session
// handshake, then never answers again — the shape of a receiver that
// died (or wedged) mid-fan-out. Probes against it block forever unless
// something closes the transport.
func silentReceiver(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		session := uint32(0)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			session++
			json.NewEncoder(conn).Encode(ctrlMsg{Type: msgSession, Session: session})
			// Keep the connection open and silent; close only when the
			// listener dies.
			go func(c net.Conn) {
				buf := make([]byte, 1024)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestPoolCloseIdempotent: Close is safe to call repeatedly and
// concurrently, and fails future Gets with ErrPoolClosed.
func TestPoolCloseIdempotent(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	p, err := DialPool(r.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p.Close() }()
	}
	wg.Wait()
	p.Close()
	if _, err := p.Get(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Get on closed pool = %v, want ErrPoolClosed", err)
	}
	waitFor(t, "sessions reaped after close", func() bool { return r.Stats().ActiveSessions == 0 })
}

// TestPoolRunContextCancelUnblocksStuckProbe is the goroutine-leak
// regression: a probe against a receiver that stopped answering blocks
// inside a socket read, and plain Run would wait on it forever. With
// RunContext, canceling the context closes the transports, every
// goroutine returns, and the call comes back with the cancellation
// recorded. Run under -race.
func TestPoolRunContextCancelUnblocksStuckProbe(t *testing.T) {
	addr := silentReceiver(t)
	p, err := DialPool(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 3)
	done := make(chan error, 1)
	go func() {
		done <- p.RunContext(ctx, func(i int, tr *Transport) error {
			started <- struct{}{}
			_, err := tr.Probe(probe.Periodic(10*unit.Mbps, 100, 4)) // blocks: no "ready" ever comes
			return err
		})
	}()
	for i := 0; i < 3; i++ {
		<-started
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("RunContext returned nil; want the probe failures and the cancellation joined")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("RunContext error %v does not record the cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext still blocked 10s after cancel: stuck probe goroutines leaked")
	}
}

// TestPoolLeaseRedial: Get hands out each transport to one caller at a
// time; an unhealthy Put discards the session and the next Get redials
// a fresh one instead of resurrecting the broken transport.
func TestPoolLeaseRedial(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	p, err := DialPool(r.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	ctx := context.Background()
	a, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two concurrent leases returned the same transport")
	}

	// With both slots leased, a third Get must block until a Put.
	blocked, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := p.Get(blocked); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get with all slots leased = %v, want deadline exceeded", err)
	}

	// A healthy Put returns the same session; an unhealthy one redials.
	aID := a.SessionID()
	p.Put(a, true)
	a2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a2.SessionID() != aID {
		t.Errorf("healthy Put was not reused: session %d -> %d", aID, a2.SessionID())
	}
	p.Put(a2, false)
	bID := b.SessionID()
	a3, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a3.SessionID() == aID || a3.SessionID() == bID {
		t.Errorf("unhealthy Put resurrected session %d", a3.SessionID())
	}
	// The fresh session must actually probe.
	rec, err := a3.Probe(probe.Periodic(20*unit.Mbps, 200, 8))
	if err != nil || !rec.Done() {
		t.Fatalf("redialed transport cannot probe: %v", err)
	}
	p.Put(a3, true)
	p.Put(b, true)
	waitFor(t, "discarded session reaped", func() bool { return r.Stats().ActiveSessions == 2 })
}
