package livenet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"time"

	"abw/internal/core"
	"abw/internal/livenet/ingest"
	"abw/internal/probe"
)

// Transport is the sending side, implementing core.Transport over UDP.
// Like every core.Transport it is single-stream and not safe for
// concurrent use; for concurrent estimation dial one Transport per
// estimator (Pool does exactly that), and the receiver keeps the
// sessions apart.
type Transport struct {
	ctrl    net.Conn
	dec     *json.Decoder
	enc     *json.Encoder
	udp     *net.UDPConn
	epoch   time.Time
	session uint32

	// DrainWait is how long the receiver may wait for stragglers after
	// the last packet is sent (default 500 ms).
	DrainWait time.Duration

	nextID uint32
	buf    []byte
	// bw coalesces zero-gap packet runs into single sendmmsg calls so
	// back-to-back trains leave the host without per-packet syscall
	// jitter between them; slab/train are its reusable packet buffers,
	// grown on demand and reused across Probe calls.
	bw    *ingest.Writer
	slab  []byte
	train [][]byte
	// broken latches when the control channel's request/reply
	// alignment can no longer be trusted (an aborted stream whose
	// reply never drained); every later Probe fails fast rather than
	// misreading a stale reply and leaking receiver-side streams.
	broken bool
}

// Opts tunes a Transport's probe socket. The zero value is the
// default configuration.
type Opts struct {
	// SndBuf requests an SO_SNDBUF of this many bytes on the probe
	// socket (0 leaves the OS default) — headroom for long back-to-back
	// trains that leave in one batched send. Best effort: the kernel
	// clamps to wmem_max.
	SndBuf int
}

// Dial connects to a receiver's control address and completes the
// session handshake: the receiver assigns the session ID every probe
// packet will carry. A receiver at its session limit refuses with a
// descriptive error.
func Dial(addr string) (*Transport, error) { return DialOpts(addr, Opts{}) }

// DialOpts is Dial with explicit socket options.
func DialOpts(addr string, opts Opts) (*Transport, error) {
	ctrl, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: control dial: %w", err)
	}
	dec := json.NewDecoder(bufio.NewReader(ctrl))
	ctrl.SetReadDeadline(time.Now().Add(10 * time.Second))
	var hello ctrlMsg
	if err := dec.Decode(&hello); err != nil {
		ctrl.Close()
		return nil, fmt.Errorf("livenet: session handshake: %w", err)
	}
	ctrl.SetReadDeadline(time.Time{})
	switch hello.Type {
	case msgSession:
	case msgError:
		ctrl.Close()
		return nil, fmt.Errorf("livenet: receiver refused session: %s", hello.Error)
	default:
		ctrl.Close()
		return nil, fmt.Errorf("livenet: unexpected handshake message %q", hello.Type)
	}
	raddr := ctrl.RemoteAddr().(*net.TCPAddr)
	udp, err := net.DialUDP("udp", nil, &net.UDPAddr{IP: raddr.IP, Port: raddr.Port})
	if err != nil {
		ctrl.Close()
		return nil, fmt.Errorf("livenet: probe dial: %w", err)
	}
	if opts.SndBuf > 0 {
		udp.SetWriteBuffer(opts.SndBuf)
	}
	return &Transport{
		ctrl:    ctrl,
		dec:     dec,
		enc:     json.NewEncoder(ctrl),
		udp:     udp,
		bw:      ingest.NewWriter(udp),
		epoch:   time.Now(),
		session: hello.Session,
		buf:     make([]byte, maxPacket),
	}, nil
}

// SessionID returns the receiver-assigned session identifier.
func (t *Transport) SessionID() uint32 { return t.session }

// Batched reports whether zero-gap packet runs coalesce into batched
// sends (sendmmsg) on this platform, or fall back to per-packet writes.
func (t *Transport) Batched() bool { return t.bw.Batched() }

// Close releases the sockets; the receiver reaps the session's state.
func (t *Transport) Close() {
	t.ctrl.Close()
	t.udp.Close()
}

// Now implements core.Transport on the sender's monotonic clock.
func (t *Transport) Now() time.Duration { return time.Since(t.epoch) }

func (t *Transport) drainWait() time.Duration {
	if t.DrainWait > 0 {
		return t.DrainWait
	}
	return 500 * time.Millisecond
}

// Probe implements core.Transport: send one stream, collect the
// receiver's timestamps. A receiver refusal (limits, unknown stream)
// surfaces as a descriptive error carrying the receiver's reason.
func (t *Transport) Probe(spec probe.StreamSpec) (*probe.Record, error) {
	if t.broken {
		return nil, fmt.Errorf("livenet: control channel desynchronized by an aborted stream; redial the receiver")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if int(spec.PktSize) < packetHeader {
		return nil, fmt.Errorf("livenet: packet size %d below header size %d", spec.PktSize, packetHeader)
	}
	if int(spec.PktSize) > maxPacket {
		return nil, fmt.Errorf("livenet: packet size %d above datagram limit %d", spec.PktSize, maxPacket)
	}
	deps, err := spec.Departures()
	if err != nil {
		return nil, err
	}
	t.nextID++
	id := t.nextID
	if err := t.enc.Encode(ctrlMsg{Type: msgStream, ID: id, Count: spec.Count, Size: int(spec.PktSize)}); err != nil {
		return nil, fmt.Errorf("livenet: stream setup: %w", err)
	}
	var ready ctrlMsg
	if err := t.dec.Decode(&ready); err != nil {
		return nil, fmt.Errorf("livenet: stream setup reply: %w", err)
	}
	if ready.Type == msgError {
		return nil, fmt.Errorf("livenet: receiver rejected stream %d: %s", id, ready.Error)
	}
	if ready.Type != msgReady || ready.ID != id {
		return nil, fmt.Errorf("livenet: unexpected %q reply to stream %d setup", ready.Type, id)
	}
	rec := probe.NewRecord(spec)
	pkt := t.buf[:spec.PktSize]
	for i := range pkt {
		pkt[i] = 0
	}
	binary.BigEndian.PutUint32(pkt[0:4], magic)
	binary.BigEndian.PutUint32(pkt[4:8], t.session)
	binary.BigEndian.PutUint32(pkt[8:12], id)

	// Zero-gap runs — consecutive packets with identical departure
	// targets (Validate admits gap 0, never negative) — are coalesced
	// into one sendmmsg call each, so a back-to-back train leaves the
	// host without per-packet syscall jitter between its packets.
	// Intended (positive) gaps are still paced one departure at a time.
	maxRun := 1
	if t.bw.Batched() {
		run := 1
		for i := 1; i < spec.Count; i++ {
			if deps[i] == deps[i-1] {
				run++
			} else {
				run = 1
			}
			if run > maxRun {
				maxRun = run
			}
		}
	}
	var train [][]byte
	if maxRun > 1 {
		train = t.trainBufs(maxRun, int(spec.PktSize), id)
	}

	// The paced send loop: lock the OS thread and spin for the last
	// stretch before each departure to defeat sleep quantization.
	runtime.LockOSThread()
	start := time.Now().Add(2 * time.Millisecond)
	for i := 0; i < spec.Count; {
		j := i + 1
		for train != nil && j < spec.Count && deps[j] == deps[i] {
			j++
		}
		pace(start.Add(deps[i]))
		if run := j - i; run > 1 {
			for k := 0; k < run; k++ {
				binary.BigEndian.PutUint32(train[k][12:16], uint32(i+k))
			}
			// One stamp for the whole run: the intended gaps are zero and
			// the packets leave in a single syscall, so distinct stamps
			// would only record scheduler noise, not departures.
			at := time.Since(t.epoch)
			for k := 0; k < run; k++ {
				rec.Sent[i+k] = at
			}
			if err := t.bw.WriteBatch(train[:run]); err != nil {
				runtime.UnlockOSThread()
				t.abortStream(id)
				return nil, fmt.Errorf("livenet: send train %d..%d: %w", i, j-1, err)
			}
		} else {
			binary.BigEndian.PutUint32(pkt[12:16], uint32(i))
			rec.Sent[i] = time.Since(t.epoch)
			if _, err := t.udp.Write(pkt); err != nil {
				runtime.UnlockOSThread()
				t.abortStream(id)
				return nil, fmt.Errorf("livenet: send %d: %w", i, err)
			}
		}
		i = j
	}
	runtime.UnlockOSThread()

	if err := t.enc.Encode(ctrlMsg{Type: msgDone, ID: id, DeadlineMs: int(t.drainWait().Milliseconds())}); err != nil {
		return nil, fmt.Errorf("livenet: done: %w", err)
	}
	var res ctrlMsg
	if err := t.dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("livenet: result reply: %w", err)
	}
	if res.Type == msgError {
		return nil, fmt.Errorf("livenet: receiver error for stream %d: %s", id, res.Error)
	}
	if res.Type != msgResult || res.ID != id {
		return nil, fmt.Errorf("livenet: unexpected %q reply to stream %d done", res.Type, id)
	}
	if len(res.RecvNs) != spec.Count {
		return nil, fmt.Errorf("livenet: result has %d entries, want %d", len(res.RecvNs), spec.Count)
	}
	for i, ns := range res.RecvNs {
		if ns < 0 {
			rec.Recv[i] = probe.Lost
		} else {
			rec.Recv[i] = time.Duration(ns)
		}
		rec.MarkResolved()
	}
	return rec, nil
}

// trainBufs sizes the reusable train buffers for runs up to n packets
// of the given size and stamps every constant header field; the paced
// loop only rewrites each packet's sequence number. Buffers persist
// across Probe calls, so steady-state probing does not allocate here.
func (t *Transport) trainBufs(n, size int, stream uint32) [][]byte {
	if cap(t.slab) < n*size {
		t.slab = make([]byte, n*size)
	}
	t.slab = t.slab[:n*size]
	if cap(t.train) < n {
		t.train = make([][]byte, n)
	}
	t.train = t.train[:n]
	for k := 0; k < n; k++ {
		b := t.slab[k*size : (k+1)*size]
		for i := range b {
			b[i] = 0
		}
		binary.BigEndian.PutUint32(b[0:4], magic)
		binary.BigEndian.PutUint32(b[4:8], t.session)
		binary.BigEndian.PutUint32(b[8:12], stream)
		t.train[k] = b
	}
	return t.train
}

// abortStream best-effort releases a stream the receiver is still
// holding after a failed send — otherwise each such failure would leak
// one slot of the session's stream/byte limits until disconnect. The
// zero-deadline done frees the receiver side immediately; the reply
// (result or error) is drained so the control channel stays in
// request/reply sync for the next Probe.
func (t *Transport) abortStream(id uint32) {
	if t.enc.Encode(ctrlMsg{Type: msgDone, ID: id, DeadlineMs: 0}) != nil {
		t.broken = true
		return
	}
	t.ctrl.SetReadDeadline(time.Now().Add(2 * time.Second))
	var discard ctrlMsg
	if t.dec.Decode(&discard) != nil {
		// The reply never drained (or the decoder state is poisoned):
		// the next reply on this channel would answer the wrong
		// request, so the transport must not be probed again.
		t.broken = true
	}
	t.ctrl.SetReadDeadline(time.Time{})
}

// pace blocks until the target instant: sleep while far, spin when near.
func pace(target time.Time) {
	for {
		d := time.Until(target)
		if d <= 0 {
			return
		}
		if d > 200*time.Microsecond {
			time.Sleep(d - 100*time.Microsecond)
			continue
		}
		// Busy-wait the final stretch.
		for time.Now().Before(target) {
		}
		return
	}
}

var _ core.Transport = (*Transport)(nil)
