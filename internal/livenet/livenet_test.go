package livenet

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// newPair spins up a loopback receiver/transport pair.
func newPair(t *testing.T) (*Receiver, *Transport) {
	t.Helper()
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return r, tr
}

func TestProbeLoopbackComplete(t *testing.T) {
	_, tr := newPair(t)
	spec := probe.Periodic(20*unit.Mbps, 500, 50)
	// Pacing and loss depend on scheduler load (worse under -race on
	// shared CI runners), so the load-sensitive assertions get a few
	// attempts: the behavior must be achievable, not achieved every
	// time.
	var problems []string
	for attempt := 0; attempt < 3; attempt++ {
		rec, err := tr.Probe(spec)
		if err != nil {
			t.Fatal(err)
		}
		problems = nil
		if !rec.Done() {
			problems = append(problems, "record not resolved")
		}
		if rec.LossCount() > 2 {
			problems = append(problems, fmt.Sprintf("lost %d/50 packets on loopback", rec.LossCount()))
		}
		if got := rec.InputRate().MbpsOf(); math.Abs(got-20)/20 > 0.2 {
			problems = append(problems, fmt.Sprintf("paced input rate = %.2f Mbps, want 20±20%%", got))
		}
		if len(problems) == 0 {
			return
		}
	}
	t.Errorf("no clean stream in 3 attempts; last: %s", strings.Join(problems, "; "))
}

func TestProbeSequentialStreams(t *testing.T) {
	_, tr := newPair(t)
	for i := 0; i < 3; i++ {
		rec, err := tr.Probe(probe.Periodic(50*unit.Mbps, 300, 20))
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if rec.LossCount() > 2 {
			t.Errorf("stream %d: lost %d/20", i, rec.LossCount())
		}
	}
}

func TestProbeChirpOverLoopback(t *testing.T) {
	_, tr := newPair(t)
	spec, err := probe.Chirp(5*unit.Mbps, 100*unit.Mbps, 400, 12, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tr.Probe(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LossCount() > 2 {
		t.Errorf("chirp lost %d/12 packets", rec.LossCount())
	}
}

func TestOutputRateMeasurable(t *testing.T) {
	_, tr := newPair(t)
	rec, err := tr.Probe(probe.Periodic(10*unit.Mbps, 500, 30))
	if err != nil {
		t.Fatal(err)
	}
	ro := rec.OutputRate().MbpsOf()
	// Loopback is far faster than the probing rate: Ro ≈ Ri.
	if ro < 5 || ro > 40 {
		t.Errorf("loopback output rate = %.2f Mbps, want near 10", ro)
	}
}

func TestRelativeOWDsFinite(t *testing.T) {
	_, tr := newPair(t)
	rec, err := tr.Probe(probe.Periodic(20*unit.Mbps, 500, 30))
	if err != nil {
		t.Fatal(err)
	}
	rel := rec.RelativeOWDsMs()
	if len(rel) == 0 {
		t.Fatal("no OWDs")
	}
	for _, v := range rel {
		if math.IsNaN(v) || v < 0 || v > 1000 {
			t.Fatalf("implausible relative OWD %v ms", v)
		}
	}
}

func TestProbeValidation(t *testing.T) {
	_, tr := newPair(t)
	if _, err := tr.Probe(probe.StreamSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := tr.Probe(probe.Periodic(unit.Mbps, 8, 5)); err == nil {
		t.Error("packet smaller than header accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestReceiverCloseIdempotent(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // must not panic
}

func TestTransportNowMonotone(t *testing.T) {
	_, tr := newPair(t)
	a := tr.Now()
	time.Sleep(time.Millisecond)
	b := tr.Now()
	if b <= a {
		t.Error("Now not monotone")
	}
}
