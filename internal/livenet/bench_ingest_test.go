package livenet

import (
	"net"
	"testing"
	"time"

	"abw/internal/livenet/ingest"
)

// benchIntakePair builds a loopback UDP pair with a deep receive
// buffer, so a whole pre-filled chunk survives in the socket queue.
func benchIntakePair(b *testing.B) (*net.UDPConn, *net.UDPConn) {
	b.Helper()
	rc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rc.Close() })
	if err := rc.SetReadBuffer(4 << 20); err != nil {
		b.Logf("SetReadBuffer: %v", err)
	}
	sc, err := net.DialUDP("udp", nil, rc.LocalAddr().(*net.UDPAddr))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sc.Close() })
	return rc, sc
}

// intakeChunk sizes the pre-fill so no datagram ever overflows the
// granted receive buffer (the kernel charges ~an order of magnitude
// more than the 64 payload bytes per small datagram).
func intakeChunk(rc *net.UDPConn) int {
	chunk := ingest.EffectiveRcvBuf(rc) / 4096
	if chunk < 16 {
		chunk = 16
	}
	if chunk > 2048 {
		chunk = 2048
	}
	return chunk
}

const benchPktSize = 64

func benchIntakeBufs(chunk int) [][]byte {
	bufs := make([][]byte, chunk)
	for i := range bufs {
		bufs[i] = probePacket(1, 2, uint32(i), benchPktSize)
	}
	return bufs
}

// BenchmarkReceiverIngest prices the receiver's per-packet intake —
// receive syscalls, arrival stamping, probe-header parsing — with the
// sender excluded: each chunk is written into the socket queue while
// the timer is stopped, and only the drain is timed. One op is one
// 64-byte probe packet, so pkts/sec/core is 1e9/(ns/op).
//
//   - batched: the live path — recvmmsg slot ring, kernel RX
//     timestamps, batched header parse. Steady state allocates nothing.
//   - fallback: the portable single-read loop (ForceFallback), one
//     syscall per packet, userspace stamps.
//   - legacy: the pre-ingest receiver loop shape — ReadFromUDP
//     (allocating the source address per packet), userspace stamp,
//     single-packet parse. The baseline the tentpole is measured
//     against.
func BenchmarkReceiverIngest(b *testing.B) {
	b.Run("batched", func(b *testing.B) { benchIntake(b, false) })
	b.Run("fallback", func(b *testing.B) { benchIntake(b, true) })
	b.Run("legacy", benchLegacyIntake)
}

func benchIntake(b *testing.B, force bool) {
	rc, sc := benchIntakePair(b)
	r := ingest.NewReader(rc, ingest.Config{ForceFallback: force, Slot: maxPacket})
	w := ingest.NewWriter(sc)
	chunk := intakeChunk(rc)
	bufs := benchIntakeBufs(chunk)
	batch := make([]ingest.Datagram, r.BatchSize())
	hs := make([]probeHeader, len(batch))
	oks := make([]bool, len(batch))
	stamped := 0
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := chunk
		if b.N-done < n {
			n = b.N - done
		}
		b.StopTimer()
		if err := w.WriteBatch(bufs[:n]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for got := 0; got < n; {
			k, err := r.ReadBatch(batch)
			if err != nil {
				b.Fatal(err)
			}
			stamped += parseProbeBatch(batch[:k], hs, oks)
			got += k
		}
		done += n
	}
	b.StopTimer()
	if stamped != b.N {
		b.Fatalf("stamped %d of %d packets", stamped, b.N)
	}
}

func benchLegacyIntake(b *testing.B) {
	rc, sc := benchIntakePair(b)
	w := ingest.NewWriter(sc)
	chunk := intakeChunk(rc)
	bufs := benchIntakeBufs(chunk)
	buf := make([]byte, maxPacket)
	epoch := time.Now()
	stamped := 0
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := chunk
		if b.N-done < n {
			n = b.N - done
		}
		b.StopTimer()
		if err := w.WriteBatch(bufs[:n]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for got := 0; got < n; got++ {
			ln, src, err := rc.ReadFromUDP(buf)
			if err != nil {
				b.Fatal(err)
			}
			at := time.Since(epoch).Nanoseconds()
			if _, ok := parseProbeHeader(buf[:ln]); ok {
				stamped++
			}
			_, _ = src, at
		}
		done += n
	}
	b.StopTimer()
	if stamped != b.N {
		b.Fatalf("stamped %d of %d packets", stamped, b.N)
	}
}
