package livenet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// session is one sender's receiver-side state: the control connection,
// the streams it has opened, and the UDP source its probe packets are
// bound to. Each session has its own lock, so concurrent senders never
// contend with each other on the probe path — only the session-map
// lookup is shared, and that is read-locked.
type session struct {
	id   uint32
	r    *Receiver
	conn net.Conn

	mu      sync.Mutex
	src     *net.UDPAddr // first-seen probe source; nil until the first valid packet
	streams map[uint32]*rxStream
	pending int64 // outstanding declared probe bytes (count×size summed)
}

// rxStream is the receiver-side state of one probing stream.
type rxStream struct {
	size   int // declared per-packet datagram size; arrivals must match
	recvNs []int64
	got    int
	done   chan struct{} // closed by stamp when every slot is filled
}

// serve owns one control connection for its whole life: handshake,
// request/reply loop, and the deferred cleanup that reaps every stream
// the session still holds when the connection goes away — whether the
// sender finished cleanly, errored mid-probe, or just vanished.
func (r *Receiver) serve(conn net.Conn) {
	defer conn.Close()
	enc := json.NewEncoder(conn)
	s, err := r.addSession(conn)
	if err != nil {
		enc.Encode(ctrlMsg{Type: msgError, Error: err.Error()})
		return
	}
	defer r.dropSession(s)
	if err := enc.Encode(ctrlMsg{Type: msgSession, Session: s.id}); err != nil {
		return
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		var m ctrlMsg
		if err := dec.Decode(&m); err != nil {
			return
		}
		var reply ctrlMsg
		switch m.Type {
		case msgStream:
			reply = s.openStream(m)
		case msgDone:
			reply = s.finishStream(m)
		default:
			reply = errReply(m.ID, fmt.Sprintf("unknown control message type %q", m.Type))
		}
		if err := enc.Encode(reply); err != nil {
			return
		}
	}
}

// openStream arms receive state for one stream, enforcing the
// per-stream and per-session limits. Refusals are "error" replies that
// leave the session usable.
func (s *session) openStream(m ctrlMsg) ctrlMsg {
	cfg := s.r.cfg
	if m.Count < 1 || m.Count > cfg.MaxCount {
		return errReply(m.ID, fmt.Sprintf("stream count %d outside [1, %d]", m.Count, cfg.MaxCount))
	}
	if m.Size < packetHeader || m.Size > maxPacket {
		return errReply(m.ID, fmt.Sprintf("packet size %d outside [%d, %d]", m.Size, packetHeader, maxPacket))
	}
	vol := int64(m.Count) * int64(m.Size)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.streams) >= cfg.MaxStreams {
		return errReply(m.ID, fmt.Sprintf("stream limit reached (%d outstanding)", cfg.MaxStreams))
	}
	if s.pending+vol > cfg.MaxBytes {
		return errReply(m.ID, fmt.Sprintf("byte limit: %d outstanding + %d requested > %d", s.pending, vol, cfg.MaxBytes))
	}
	if _, dup := s.streams[m.ID]; dup {
		return errReply(m.ID, fmt.Sprintf("stream id %d already open", m.ID))
	}
	st := &rxStream{size: m.Size, recvNs: make([]int64, m.Count), done: make(chan struct{})}
	for i := range st.recvNs {
		st.recvNs[i] = -1
	}
	s.streams[m.ID] = st
	s.pending += vol
	s.r.totalStreams.Add(1)
	return ctrlMsg{Type: msgReady, ID: m.ID}
}

// finishStream waits (bounded) for stragglers, then reports and
// releases the stream. An unknown or already-reported stream ID gets a
// descriptive "error" reply instead of tearing the session down.
func (s *session) finishStream(m ctrlMsg) ctrlMsg {
	s.mu.Lock()
	st := s.streams[m.ID]
	s.mu.Unlock()
	if st == nil {
		return errReply(m.ID, fmt.Sprintf("unknown or expired stream id %d", m.ID))
	}
	wait := time.Duration(m.DeadlineMs) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxDrainWait {
		wait = maxDrainWait
	}
	s.mu.Lock()
	complete := st.got == len(st.recvNs)
	s.mu.Unlock()
	if wait > 0 && !complete {
		// Event-driven straggler drain: the last stamp closes st.done,
		// receiver shutdown closes r.closed (a closed receiver can never
		// see another straggler — the UDP socket is gone — so shutdown
		// bounds the wait, not the sender's declared drain deadline), and
		// the injected clock bounds the wait for a stream that stays
		// incomplete. No polling, so an idle drain burns no CPU and tests
		// can script the timeout.
		t := s.r.cfg.Clock.NewTimer(wait)
		select {
		case <-st.done:
		case <-s.r.closed:
		case <-t.C():
		}
		t.Stop()
	}
	s.mu.Lock()
	delete(s.streams, m.ID)
	s.pending -= int64(len(st.recvNs)) * int64(st.size)
	s.mu.Unlock()
	// Safe to read recvNs lock-free from here: stamping happens only on
	// streams reachable through the map, under the same lock as the
	// delete above.
	return ctrlMsg{Type: msgResult, ID: m.ID, RecvNs: st.recvNs}
}

// stamp records one probe arrival, enforcing the session's source
// binding and the stream's declared size; it reports whether the
// datagram was accepted. The first datagram that passes every check
// binds the session to its source address; reaching this code at all
// requires knowing the session's random ID, which travels only over
// its own TCP control channel, so an off-path spoofer can neither
// capture the binding before the real sender's first probe nor stamp
// a bound session's sequence slots from another socket.
func (s *session) stamp(src *net.UDPAddr, stream uint32, seq, size int, atNs int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.src != nil && (s.src.Port != src.Port || !s.src.IP.Equal(src.IP)) {
		s.r.srcMismatch.Add(1)
		return false
	}
	st := s.streams[stream]
	if st == nil {
		return false
	}
	if size != st.size {
		s.r.sizeMismatch.Add(1)
		return false
	}
	if seq < 0 || seq >= len(st.recvNs) || st.recvNs[seq] != -1 {
		return false
	}
	if s.src == nil {
		s.src = &net.UDPAddr{IP: append(net.IP(nil), src.IP...), Port: src.Port, Zone: src.Zone}
	}
	st.recvNs[seq] = atNs
	st.got++
	if st.got == len(st.recvNs) {
		// Exactly once: every slot fills at most once (the -1 guard
		// above), so got reaches the count a single time.
		close(st.done)
	}
	return true
}

// streamCount reports the session's outstanding streams (for Stats).
func (s *session) streamCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}
