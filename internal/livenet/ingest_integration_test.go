package livenet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"abw/internal/livenet/ingest"
)

// fakeClock is a script-driven Clock: timers never fire on their own,
// the test fires them. It lets the straggler-drain tests prove the
// wait is event-driven (completion and shutdown unblock it) without a
// single wall-clock sleep on the assertion path.
type fakeClock struct {
	mu     sync.Mutex
	timers []*fakeTimer
}

type fakeTimer struct {
	ch chan time.Time
	d  time.Duration
}

func (ft *fakeTimer) C() <-chan time.Time { return ft.ch }
func (ft *fakeTimer) Stop()               {}

func (c *fakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	ft := &fakeTimer{ch: make(chan time.Time, 1), d: d}
	c.timers = append(c.timers, ft)
	return ft
}

// fire delivers a firing to every timer created so far.
func (c *fakeClock) fire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ft := range c.timers {
		select {
		case ft.ch <- time.Time{}:
		default:
		}
	}
}

// durations lists every created timer's duration, in creation order.
func (c *fakeClock) durations() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds := make([]time.Duration, len(c.timers))
	for i, ft := range c.timers {
		ds[i] = ft.d
	}
	return ds
}

// ingestOutcome is what one receiver mode made of a fixed datagram
// sequence: which slots resolved and what the counters say. The
// differential test requires both ingest paths to produce the same one.
type ingestOutcome struct {
	resolved []bool
	packets  uint64
	drops    uint64
	sizeMism uint64
}

// runFixedSequence drives one receiver (fast path or forced fallback)
// through a fixed adversarial datagram sequence — valid, out-of-order,
// duplicate, garbage, truncated, wrong-size — and reports the outcome.
func runFixedSequence(t *testing.T, force bool) ingestOutcome {
	t.Helper()
	r, err := ListenReceiverConfig("127.0.0.1:0", Config{ForceFallback: force})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	const size = 64
	if reply := openRawStream(t, tr, 1, 4, size); reply.Type != msgReady {
		t.Fatalf("force=%v: stream setup reply = %+v", force, reply)
	}
	sid := tr.SessionID()
	sequence := [][]byte{
		probePacket(sid, 1, 0, size),         // valid, stamps slot 0
		probePacket(sid, 1, 2, size),         // valid, out of order, stamps slot 2
		probePacket(sid, 1, 2, size),         // duplicate: dropped
		{0xde, 0xad, 0xbe, 0xef},             // garbage: dropped
		probePacket(sid, 1, 1, size)[:7],     // truncated mid-header: dropped
		probePacket(sid, 1, 1, packetHeader), // wrong size for its stream: dropped
		probePacket(sid, 1, 1, size),         // valid, stamps slot 1
	}
	for _, pkt := range sequence {
		if _, err := tr.udp.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}
	// Slot 3 is never sent: it must report as a loss.
	waitFor(t, "sequence fully accounted", func() bool {
		st := r.Stats()
		return st.Packets == 3 && st.Drops == 4
	})
	if force && r.Stats().KernelTimestamps {
		t.Fatalf("forced-fallback receiver reports kernel timestamps")
	}
	res := finishRawStream(t, tr, 1, 0)
	if res.Type != msgResult || len(res.RecvNs) != 4 {
		t.Fatalf("force=%v: result = %+v", force, res)
	}
	// Arrival order was slot 0, then 2, then 1: stamps must respect it.
	if !(res.RecvNs[0] <= res.RecvNs[2] && res.RecvNs[2] <= res.RecvNs[1]) {
		t.Fatalf("force=%v: stamps out of arrival order: %v", force, res.RecvNs)
	}
	st := r.Stats()
	out := ingestOutcome{
		resolved: make([]bool, len(res.RecvNs)),
		packets:  st.Packets,
		drops:    st.Drops,
		sizeMism: st.SizeMismatches,
	}
	for i, ns := range res.RecvNs {
		out.resolved[i] = ns >= 0
	}
	return out
}

// TestFastAndFallbackProduceIdenticalRecords is the tentpole's
// differential test: the batched kernel-timestamped fast path and the
// portable single-read fallback must turn the same datagram sequence
// into the same stream record — same resolved slots, same drop
// accounting — differing only in where the timestamps came from.
func TestFastAndFallbackProduceIdenticalRecords(t *testing.T) {
	fast := runFixedSequence(t, false)
	fallback := runFixedSequence(t, true)
	if fmt.Sprintf("%+v", fast) != fmt.Sprintf("%+v", fallback) {
		t.Fatalf("paths diverge:\n fast:     %+v\n fallback: %+v", fast, fallback)
	}
	want := []bool{true, true, true, false}
	for i, ok := range want {
		if fast.resolved[i] != ok {
			t.Fatalf("slot %d resolved=%v, want %v", i, fast.resolved[i], ok)
		}
	}
	if fast.sizeMism != 1 {
		t.Fatalf("SizeMismatches = %d, want 1", fast.sizeMism)
	}
}

// TestLoopbackSoakExactAccounting pushes 100k datagrams through a
// receiver on loopback with sender-side flow control and demands exact
// accounting: every datagram stamped, zero drops, every sequence slot
// resolved, and the byte totals adding up. Flow control (send a chunk,
// wait for it to be stamped) keeps the test independent of kernel
// socket buffer depth, so it holds under -race on slow CI hosts too.
func TestLoopbackSoakExactAccounting(t *testing.T) {
	const (
		count = 100_000
		size  = 64
		chunk = 200
	)
	r, err := ListenReceiverConfig("127.0.0.1:0", Config{
		MaxCount: count,
		MaxBytes: count * size,
		RcvBuf:   4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	if reply := openRawStream(t, tr, 1, count, size); reply.Type != msgReady {
		t.Fatalf("stream setup reply = %+v", reply)
	}
	w := ingest.NewWriter(tr.udp)
	bufs := make([][]byte, chunk)
	for i := range bufs {
		bufs[i] = probePacket(tr.SessionID(), 1, 0, size)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for sent := 0; sent < count; {
		n := chunk
		if count-sent < n {
			n = count - sent
		}
		for i := 0; i < n; i++ {
			bufs[i][12] = byte(uint32(sent+i) >> 24)
			bufs[i][13] = byte(uint32(sent+i) >> 16)
			bufs[i][14] = byte(uint32(sent+i) >> 8)
			bufs[i][15] = byte(uint32(sent + i))
		}
		if err := w.WriteBatch(bufs[:n]); err != nil {
			t.Fatal(err)
		}
		sent += n
		for r.Stats().Packets < uint64(sent) {
			if time.Now().After(deadline) {
				t.Fatalf("stalled: %d of %d stamped", r.Stats().Packets, sent)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	st := r.Stats()
	if st.Packets != count || st.Drops != 0 || st.SizeMismatches != 0 || st.SourceMismatches != 0 {
		t.Fatalf("inexact accounting: %+v", st)
	}
	if st.Batches == 0 || st.Batches > count {
		t.Fatalf("Batches = %d, want in [1, %d]", st.Batches, count)
	}
	res := finishRawStream(t, tr, 1, 0)
	if res.Type != msgResult || len(res.RecvNs) != count {
		t.Fatalf("result = type %q with %d slots", res.Type, len(res.RecvNs))
	}
	bytes := 0
	last := int64(-1)
	for i, ns := range res.RecvNs {
		if ns < 0 {
			t.Fatalf("slot %d lost despite flow control", i)
		}
		if ns < last {
			t.Fatalf("stamp %d went backwards: %d after %d", i, ns, last)
		}
		last = ns
		bytes += size
	}
	if bytes != count*size {
		t.Fatalf("byte total %d, want %d", bytes, count*size)
	}
}

// TestFinishStreamWaitsOnInjectedClock holds the straggler drain to its
// event-driven contract: with an injected clock the wait blocks until
// the scripted timeout fires, and the timer duration is the sender's
// declared deadline.
func TestFinishStreamWaitsOnInjectedClock(t *testing.T) {
	fc := &fakeClock{}
	r, err := ListenReceiverConfig("127.0.0.1:0", Config{Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	const size = 32
	if reply := openRawStream(t, tr, 1, 2, size); reply.Type != msgReady {
		t.Fatalf("stream setup reply = %+v", reply)
	}
	if _, err := tr.udp.Write(probePacket(tr.SessionID(), 1, 0, size)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first packet stamped", func() bool { return r.Stats().Packets == 1 })

	results := make(chan ctrlMsg, 1)
	go func() { results <- finishRawStream(t, tr, 1, 5000) }()
	waitFor(t, "drain timer armed", func() bool { return len(fc.durations()) == 1 })
	select {
	case res := <-results:
		t.Fatalf("finish returned %+v before the drain timer fired", res)
	case <-time.After(20 * time.Millisecond):
	}
	if ds := fc.durations(); ds[0] != 5*time.Second {
		t.Fatalf("drain timer armed for %v, want 5s", ds[0])
	}
	fc.fire()
	select {
	case res := <-results:
		if res.Type != msgResult || len(res.RecvNs) != 2 {
			t.Fatalf("result = %+v", res)
		}
		if res.RecvNs[0] < 0 || res.RecvNs[1] != -1 {
			t.Fatalf("recvNs = %v, want [stamped, lost]", res.RecvNs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("finish still blocked after the drain timer fired")
	}
}

// TestFinishStreamUnblocksOnCompletion: the last straggler's arrival
// releases the drain immediately — the timer never has to fire.
func TestFinishStreamUnblocksOnCompletion(t *testing.T) {
	fc := &fakeClock{}
	r, err := ListenReceiverConfig("127.0.0.1:0", Config{Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	const size = 32
	if reply := openRawStream(t, tr, 1, 2, size); reply.Type != msgReady {
		t.Fatalf("stream setup reply = %+v", reply)
	}
	if _, err := tr.udp.Write(probePacket(tr.SessionID(), 1, 0, size)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first packet stamped", func() bool { return r.Stats().Packets == 1 })
	results := make(chan ctrlMsg, 1)
	go func() { results <- finishRawStream(t, tr, 1, 30_000) }()
	waitFor(t, "drain timer armed", func() bool { return len(fc.durations()) == 1 })
	// The straggler arrives; the never-fired fake timer must not hold
	// the result back.
	if _, err := tr.udp.Write(probePacket(tr.SessionID(), 1, 1, size)); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-results:
		if res.Type != msgResult || res.RecvNs[0] < 0 || res.RecvNs[1] < 0 {
			t.Fatalf("result = %+v, want both slots stamped", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("finish still blocked after the stream completed")
	}
}

// TestFinishStreamCancelledByShutdown: receiver Close releases a
// session handler parked in the drain wait, even though its timer (the
// fake never fires) and its stream (forever incomplete) never would.
// Without shutdown cancellation the handler goroutine — and the
// session it pins — would leak until the declared deadline.
func TestFinishStreamCancelledByShutdown(t *testing.T) {
	fc := &fakeClock{}
	r, err := ListenReceiverConfig("127.0.0.1:0", Config{Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	if reply := openRawStream(t, tr, 1, 2, 32); reply.Type != msgReady {
		t.Fatalf("stream setup reply = %+v", reply)
	}
	// No probe traffic at all: the stream stays incomplete forever.
	if err := tr.enc.Encode(ctrlMsg{Type: msgDone, ID: 1, DeadlineMs: 25_000}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drain timer armed", func() bool { return len(fc.durations()) == 1 })
	r.Close()
	// The handler's return path runs dropSession; if the drain wait were
	// not cancellable at shutdown the session would stay registered.
	waitFor(t, "session handler released by shutdown", func() bool {
		return r.Stats().ActiveSessions == 0
	})
}
