package livenet

import "time"

// Clock is the timer source for the receiver's time-based waits —
// today that is finishStream's bounded straggler drain. Production
// receivers use the real clock (nil Config.Clock); tests inject a fake
// so the waits are driven by the test, not by wall-clock sleeps.
type Clock interface {
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
}

// Timer is a one-shot timer handed out by a Clock.
type Timer interface {
	// C is the channel the firing is delivered on.
	C() <-chan time.Time
	// Stop disarms the timer; a firing already delivered stays in C.
	Stop()
}

// realClock is the production Clock, backed by the runtime clock.
type realClock struct{}

func (realClock) NewTimer(d time.Duration) Timer { return realTimer{t: time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time { return rt.t.C }
func (rt realTimer) Stop()               { rt.t.Stop() }
