package livenet

import (
	"encoding/binary"
	"time"

	"abw/internal/livenet/ingest"
)

// The wire protocol, v2 (session-scoped stream IDs).
//
// Control channel: line-delimited JSON over TCP. The receiver opens
// every connection with a "session" message carrying the
// server-assigned session ID — random, so it doubles as the token
// that proves a probe datagram belongs to the session — (or an
// "error" message when the session limit is reached, then closes). The sender then drives a
// request/reply loop — "stream" answered by "ready" or "error", "done"
// answered by "result" or "error". An "error" reply to "stream" or
// "done" leaves the connection usable; only a malformed control stream
// ends the session.
//
// Probe channel: UDP datagrams whose first packetHeader bytes are
// magic(4) sessionID(4) streamID(4) seq(4), all big-endian. The
// receiver routes each datagram by (sessionID, streamID): stream IDs
// are a per-session namespace chosen by the sender, so concurrent
// senders can never collide however they number their streams.

const packetHeader = 16 // magic(4) sessionID(4) streamID(4) seq(4)

// magic identifies probe datagrams; bumped from 0xab11e57a when the
// header grew a session ID so v1 packets cannot be misrouted.
const magic = 0xab11e57b

// maxPacket bounds declared and received datagram sizes: the maximum
// IPv4 UDP payload (65535 − 20 IP − 8 UDP), so an accepted size is
// always actually sendable.
const maxPacket = 65507

// maxDrainWait caps how long a "done" may hold its session handler
// waiting for stragglers, whatever deadline the sender declares.
const maxDrainWait = 30 * time.Second

// Control message types.
const (
	msgSession = "session" // receiver → sender: your assigned session ID
	msgStream  = "stream"  // sender → receiver: open a stream
	msgReady   = "ready"   // receiver → sender: stream is armed
	msgDone    = "done"    // sender → receiver: stream sent, report it
	msgResult  = "result"  // receiver → sender: per-packet timestamps
	msgError   = "error"   // receiver → sender: request refused / failed
)

// ctrlMsg is every control-channel message; unused fields are omitted
// on the wire.
type ctrlMsg struct {
	Type       string  `json:"type"`
	Session    uint32  `json:"session,omitempty"`
	ID         uint32  `json:"id,omitempty"`
	Count      int     `json:"count,omitempty"`
	Size       int     `json:"size,omitempty"`
	DeadlineMs int     `json:"deadline_ms,omitempty"`
	RecvNs     []int64 `json:"recv_ns,omitempty"` // -1 = lost
	Error      string  `json:"error,omitempty"`
}

func errReply(id uint32, msg string) ctrlMsg {
	return ctrlMsg{Type: msgError, ID: id, Error: msg}
}

// probeHeader is a decoded probe-datagram header.
type probeHeader struct {
	session uint32
	stream  uint32
	seq     int
}

// parseProbeHeader decodes and validates the fixed header of one probe
// datagram. It is total: any input — truncated, wrong magic, or
// adversarial — returns ok=false rather than panicking, so a malformed
// datagram can never take down the receiver loop. The fuzz harness
// (wire_fuzz_test.go) holds it to that.
func parseProbeHeader(b []byte) (h probeHeader, ok bool) {
	if len(b) < packetHeader || binary.BigEndian.Uint32(b[0:4]) != magic {
		return probeHeader{}, false
	}
	return probeHeader{
		session: binary.BigEndian.Uint32(b[4:8]),
		stream:  binary.BigEndian.Uint32(b[8:12]),
		seq:     int(binary.BigEndian.Uint32(b[12:16])),
	}, true
}

// parseProbeBatch decodes one ingest batch into preallocated header and
// validity slices, returning how many datagrams parsed cleanly. Each
// slot is independent: a truncated or garbage datagram anywhere in the
// batch marks only its own slot invalid and never disturbs its
// neighbors. It inherits parseProbeHeader's totality — any byte soup is
// an ok=false, never a panic — and the batch fuzz harness
// (wire_fuzz_test.go) holds it to that. hs and oks must be at least
// len(batch) long.
func parseProbeBatch(batch []ingest.Datagram, hs []probeHeader, oks []bool) int {
	valid := 0
	for i := range batch {
		hs[i], oks[i] = parseProbeHeader(batch[i].Payload)
		if oks[i] {
			valid++
		}
	}
	return valid
}
