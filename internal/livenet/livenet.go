// Package livenet implements core.Transport over real sockets: probing
// streams are UDP packets paced by a hybrid sleep/busy-wait loop, and a
// TCP control channel coordinates stream setup and result collection.
// It turns the estimation tools in internal/tools into usable network
// programs — the paper's closing call is to integrate avail-bw
// estimation with real applications — while the simulator transport
// remains the substrate for controlled experiments.
//
// Clock model: send timestamps are on the sender's monotonic clock and
// receive timestamps on the receiver's. The unknown offset is constant
// over a stream, so one-way-delay *trends*, input/output *rates*, and
// pair *gaps* — everything the estimators consume — are unaffected.
//
// Timing quality: Go's garbage collector and scheduler can perturb
// microsecond-scale pacing (the repro calibration notes this). The
// sender therefore locks its OS thread, preallocates every buffer, and
// spins for the final stretch before each departure; residual jitter on
// loopback is typically a few microseconds.
package livenet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"abw/internal/core"
	"abw/internal/probe"
)

const packetHeader = 16 // magic(4) streamID(4) seq(4) pad(4)

const magic = 0xab11e57a

// control messages exchanged over the TCP channel, line-delimited JSON.
type ctrlMsg struct {
	Type       string  `json:"type"` // "stream", "ready", "done", "result"
	ID         uint32  `json:"id"`
	Count      int     `json:"count,omitempty"`
	Size       int     `json:"size,omitempty"`
	DeadlineMs int     `json:"deadline_ms,omitempty"`
	RecvNs     []int64 `json:"recv_ns,omitempty"` // -1 = lost
}

// Receiver is the probing sink: a UDP socket recording per-packet
// arrival timestamps and a TCP control listener reporting them back.
type Receiver struct {
	tcp   net.Listener
	udp   *net.UDPConn
	epoch time.Time

	mu      sync.Mutex
	streams map[uint32]*rxStream

	closed chan struct{}
}

type rxStream struct {
	recvNs []int64
	got    int
}

// ListenReceiver starts a receiver on the given TCP address (e.g.
// "127.0.0.1:0"); the UDP probe socket binds the same address as the
// chosen TCP port.
func ListenReceiver(addr string) (*Receiver, error) {
	tl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: control listen: %w", err)
	}
	uaddr := tl.Addr().(*net.TCPAddr)
	uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: uaddr.IP, Port: uaddr.Port})
	if err != nil {
		tl.Close()
		return nil, fmt.Errorf("livenet: probe listen: %w", err)
	}
	r := &Receiver{
		tcp:     tl,
		udp:     uc,
		epoch:   time.Now(),
		streams: make(map[uint32]*rxStream),
		closed:  make(chan struct{}),
	}
	go r.udpLoop()
	go r.acceptLoop()
	return r, nil
}

// Addr returns the receiver's control address for Dial.
func (r *Receiver) Addr() string { return r.tcp.Addr().String() }

// Close shuts the receiver down.
func (r *Receiver) Close() {
	select {
	case <-r.closed:
		return
	default:
	}
	close(r.closed)
	r.tcp.Close()
	r.udp.Close()
}

func (r *Receiver) udpLoop() {
	buf := make([]byte, 65536)
	for {
		n, _, err := r.udp.ReadFromUDP(buf)
		at := time.Since(r.epoch).Nanoseconds()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
				continue
			}
		}
		if n < packetHeader || binary.BigEndian.Uint32(buf[0:4]) != magic {
			continue
		}
		id := binary.BigEndian.Uint32(buf[4:8])
		seq := int(binary.BigEndian.Uint32(buf[8:12]))
		r.mu.Lock()
		st := r.streams[id]
		if st != nil && seq >= 0 && seq < len(st.recvNs) && st.recvNs[seq] == -1 {
			st.recvNs[seq] = at
			st.got++
		}
		r.mu.Unlock()
	}
}

func (r *Receiver) acceptLoop() {
	for {
		conn, err := r.tcp.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
				continue
			}
		}
		go r.serve(conn)
	}
}

func (r *Receiver) serve(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var m ctrlMsg
		if err := dec.Decode(&m); err != nil {
			return
		}
		switch m.Type {
		case "stream":
			if m.Count < 1 || m.Count > 1<<20 {
				return
			}
			st := &rxStream{recvNs: make([]int64, m.Count)}
			for i := range st.recvNs {
				st.recvNs[i] = -1
			}
			r.mu.Lock()
			r.streams[m.ID] = st
			r.mu.Unlock()
			if err := enc.Encode(ctrlMsg{Type: "ready", ID: m.ID}); err != nil {
				return
			}
		case "done":
			deadline := time.Now().Add(time.Duration(m.DeadlineMs) * time.Millisecond)
			for {
				r.mu.Lock()
				st := r.streams[m.ID]
				complete := st != nil && st.got == len(st.recvNs)
				r.mu.Unlock()
				if complete || time.Now().After(deadline) {
					break
				}
				time.Sleep(200 * time.Microsecond)
			}
			r.mu.Lock()
			st := r.streams[m.ID]
			delete(r.streams, m.ID)
			r.mu.Unlock()
			if st == nil {
				return
			}
			if err := enc.Encode(ctrlMsg{Type: "result", ID: m.ID, RecvNs: st.recvNs}); err != nil {
				return
			}
		default:
			return
		}
	}
}

// Transport is the sending side, implementing core.Transport over UDP.
type Transport struct {
	ctrl  net.Conn
	dec   *json.Decoder
	enc   *json.Encoder
	udp   *net.UDPConn
	epoch time.Time
	// DrainWait is how long the receiver may wait for stragglers after
	// the last packet is sent (default 500 ms).
	DrainWait time.Duration

	nextID uint32
	buf    []byte
}

// Dial connects to a receiver's control address.
func Dial(addr string) (*Transport, error) {
	ctrl, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: control dial: %w", err)
	}
	raddr := ctrl.RemoteAddr().(*net.TCPAddr)
	udp, err := net.DialUDP("udp", nil, &net.UDPAddr{IP: raddr.IP, Port: raddr.Port})
	if err != nil {
		ctrl.Close()
		return nil, fmt.Errorf("livenet: probe dial: %w", err)
	}
	return &Transport{
		ctrl:  ctrl,
		dec:   json.NewDecoder(bufio.NewReader(ctrl)),
		enc:   json.NewEncoder(ctrl),
		udp:   udp,
		epoch: time.Now(),
		buf:   make([]byte, 65536),
	}, nil
}

// Close releases the sockets.
func (t *Transport) Close() {
	t.ctrl.Close()
	t.udp.Close()
}

// Now implements core.Transport on the sender's monotonic clock.
func (t *Transport) Now() time.Duration { return time.Since(t.epoch) }

func (t *Transport) drainWait() time.Duration {
	if t.DrainWait > 0 {
		return t.DrainWait
	}
	return 500 * time.Millisecond
}

// Probe implements core.Transport: send one stream, collect the
// receiver's timestamps.
func (t *Transport) Probe(spec probe.StreamSpec) (*probe.Record, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if int(spec.PktSize) < packetHeader {
		return nil, fmt.Errorf("livenet: packet size %d below header size %d", spec.PktSize, packetHeader)
	}
	deps, err := spec.Departures()
	if err != nil {
		return nil, err
	}
	t.nextID++
	id := t.nextID
	if err := t.enc.Encode(ctrlMsg{Type: "stream", ID: id, Count: spec.Count, Size: int(spec.PktSize)}); err != nil {
		return nil, fmt.Errorf("livenet: stream setup: %w", err)
	}
	var ready ctrlMsg
	if err := t.dec.Decode(&ready); err != nil || ready.Type != "ready" || ready.ID != id {
		return nil, fmt.Errorf("livenet: bad ready response (%v)", err)
	}
	rec := probe.NewRecord(spec)
	pkt := t.buf[:spec.PktSize]
	for i := range pkt {
		pkt[i] = 0
	}
	binary.BigEndian.PutUint32(pkt[0:4], magic)
	binary.BigEndian.PutUint32(pkt[4:8], id)

	// The paced send loop: lock the OS thread and spin for the last
	// stretch before each departure to defeat sleep quantization.
	runtime.LockOSThread()
	start := time.Now().Add(2 * time.Millisecond)
	for i := 0; i < spec.Count; i++ {
		target := start.Add(deps[i])
		pace(target)
		binary.BigEndian.PutUint32(pkt[8:12], uint32(i))
		rec.Sent[i] = time.Since(t.epoch)
		if _, err := t.udp.Write(pkt); err != nil {
			runtime.UnlockOSThread()
			return nil, fmt.Errorf("livenet: send %d: %w", i, err)
		}
	}
	runtime.UnlockOSThread()

	if err := t.enc.Encode(ctrlMsg{Type: "done", ID: id, DeadlineMs: int(t.drainWait().Milliseconds())}); err != nil {
		return nil, fmt.Errorf("livenet: done: %w", err)
	}
	var res ctrlMsg
	if err := t.dec.Decode(&res); err != nil || res.Type != "result" || res.ID != id {
		return nil, fmt.Errorf("livenet: bad result response (%v)", err)
	}
	if len(res.RecvNs) != spec.Count {
		return nil, fmt.Errorf("livenet: result has %d entries, want %d", len(res.RecvNs), spec.Count)
	}
	for i, ns := range res.RecvNs {
		if ns < 0 {
			rec.Recv[i] = probe.Lost
		} else {
			rec.Recv[i] = time.Duration(ns)
		}
		rec.MarkResolved()
	}
	return rec, nil
}

// pace blocks until the target instant: sleep while far, spin when near.
func pace(target time.Time) {
	for {
		d := time.Until(target)
		if d <= 0 {
			return
		}
		if d > 200*time.Microsecond {
			time.Sleep(d - 100*time.Microsecond)
			continue
		}
		// Busy-wait the final stretch.
		for time.Now().Before(target) {
		}
		return
	}
}

var _ core.Transport = (*Transport)(nil)
