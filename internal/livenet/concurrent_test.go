package livenet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"abw/internal/probe"
	"abw/internal/unit"
)

// TestConcurrentSendersIsolated is the cross-sender collision
// regression. Before the session layer, stream IDs were a bare
// per-Transport counter and the receiver keyed one global map by them:
// every concurrent sender's first stream was ID 1, senders mixed each
// other's arrival timestamps, and one sender's done deleted another's
// in-flight stream (this test fails on that code with decode/result
// errors). With sessions, K senders × M streams each must all come
// back fully resolved and bit-exact, with zero cross-session
// contamination, and closing a sender must free all of its state.
func TestConcurrentSendersIsolated(t *testing.T) {
	const K, M = 8, 4
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	trs := make([]*Transport, K)
	for k := 0; k < K; k++ {
		tr, err := Dial(r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		tr.DrainWait = 200 * time.Millisecond
		trs[k] = tr
	}

	// Every sender uses a distinct packet size and count: a
	// cross-session stamp would either hit a size mismatch (counted) or
	// be structurally impossible, and a swapped result would have the
	// wrong length. Each sender runs M sequential streams; all K run
	// concurrently.
	var wg sync.WaitGroup
	errs := make([]error, K)
	resolved := make([]int, K) // packets stamped per sender (non-lost)
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			count := 8 + 2*k
			size := unit.Bytes(64 + 16*k)
			for m := 0; m < M; m++ {
				rec, err := trs[k].Probe(probe.Periodic(20*unit.Mbps, size, count))
				if err != nil {
					errs[k] = fmt.Errorf("sender %d stream %d: %w", k, m, err)
					return
				}
				if !rec.Done() {
					errs[k] = fmt.Errorf("sender %d stream %d: record not fully resolved", k, m)
					return
				}
				if len(rec.Recv) != count || len(rec.Sent) != count {
					errs[k] = fmt.Errorf("sender %d stream %d: %d/%d entries, want %d",
						k, m, len(rec.Recv), len(rec.Sent), count)
					return
				}
				for i, at := range rec.Recv {
					if at != probe.Lost && at < 0 {
						errs[k] = fmt.Errorf("sender %d stream %d: negative timestamp at seq %d", k, m, i)
						return
					}
				}
				resolved[k] += count - rec.LossCount()
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Bit-exactness across the whole run: the receiver stamped exactly
	// the packets the senders got back as received — nothing was
	// double-stamped into a foreign stream or counted twice — and no
	// cross-session stamp was even attempted.
	totalResolved := 0
	for k := range resolved {
		totalResolved += resolved[k]
	}
	st := r.Stats()
	if st.Packets != uint64(totalResolved) {
		t.Errorf("receiver stamped %d packets, senders resolved %d", st.Packets, totalResolved)
	}
	if st.SizeMismatches != 0 || st.SourceMismatches != 0 {
		t.Errorf("cross-session contamination: %d size / %d source mismatches",
			st.SizeMismatches, st.SourceMismatches)
	}
	if st.Sessions != K || st.Streams != uint64(K*M) {
		t.Errorf("receiver saw %d sessions / %d streams, want %d / %d", st.Sessions, st.Streams, K, K*M)
	}

	// Closing one sender frees all of its receiver-side state while
	// the other sessions stay up.
	trs[0].Close()
	waitFor(t, "one session reaped", func() bool { return r.Stats().ActiveSessions == K-1 })
	for k := 1; k < K; k++ {
		trs[k].Close()
	}
	waitFor(t, "all sessions reaped", func() bool {
		st := r.Stats()
		return st.ActiveSessions == 0 && st.ActiveStreams == 0
	})
}

// TestPoolRunsConcurrently covers the sender-side fan-out: one dial
// call, one session per transport, every transport usable from its own
// goroutine.
func TestPoolRunsConcurrently(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	pool, err := DialPool(r.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	if pool.Size() != 3 {
		t.Fatalf("pool size = %d, want 3", pool.Size())
	}
	seen := map[uint32]bool{}
	for i := 0; i < pool.Size(); i++ {
		id := pool.Transport(i).SessionID()
		if seen[id] {
			t.Fatalf("pooled transports share session %d", id)
		}
		seen[id] = true
	}
	err = pool.Run(func(i int, tr *Transport) error {
		rec, err := tr.Probe(probe.Periodic(30*unit.Mbps, 200, 12))
		if err != nil {
			return err
		}
		if !rec.Done() {
			return fmt.Errorf("transport %d: unresolved record", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolDialFailureClosesDialed: a pool that cannot fully dial (here
// because of the receiver's session limit) must close what it opened
// and surface the refusal.
func TestPoolDialFailureClosesDialed(t *testing.T) {
	r, err := ListenReceiverConfig("127.0.0.1:0", Config{MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	if _, err := DialPool(r.Addr(), 3); err == nil {
		t.Fatal("pool over the session limit dialed successfully")
	}
	waitFor(t, "partial pool reaped", func() bool { return r.Stats().ActiveSessions == 0 })
}

// BenchmarkConcurrentSessions measures K concurrent sessions each
// sending one paced stream per iteration — the receiver's routing,
// locking, and reporting under contention.
func BenchmarkConcurrentSessions(b *testing.B) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	pool, err := DialPool(r.Addr(), 4)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	spec := probe.Periodic(500*unit.Mbps, 500, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pool.Run(func(_ int, tr *Transport) error {
			_, err := tr.Probe(spec)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}
