package livenet

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net"
	"testing"

	"abw/internal/livenet/ingest"
)

// FuzzProbeHeader holds parseProbeHeader to its totality contract: no
// input may panic, and an accepted input must round-trip its decoded
// fields. The committed corpus (testdata/fuzz/FuzzProbeHeader) pins
// the interesting shapes: valid, truncated, wrong magic, empty.
func FuzzProbeHeader(f *testing.F) {
	f.Add(probePacket(1, 2, 3, packetHeader))
	f.Add(probePacket(1, 2, 3, maxPacket))
	f.Add(probePacket(1, 2, 3, packetHeader)[:7]) // truncated mid-header
	f.Add([]byte{})
	bad := probePacket(1, 2, 3, packetHeader)
	bad[3] ^= 1 // wrong magic
	f.Add(bad)
	f.Fuzz(func(t *testing.T, b []byte) {
		h, ok := parseProbeHeader(b)
		if !ok {
			if h != (probeHeader{}) {
				t.Fatalf("rejected input returned non-zero header %+v", h)
			}
			if len(b) >= packetHeader && binary.BigEndian.Uint32(b[0:4]) == magic {
				t.Fatalf("well-formed %d-byte header rejected", len(b))
			}
			return
		}
		if len(b) < packetHeader {
			t.Fatalf("accepted %d-byte datagram below header size %d", len(b), packetHeader)
		}
		again := probePacket(h.session, h.stream, uint32(h.seq), packetHeader)
		if !bytes.Equal(b[:packetHeader], again) {
			t.Fatalf("header did not round-trip: % x -> %+v -> % x", b[:packetHeader], h, again)
		}
	})
}

// FuzzProbeBatch holds the batched parse entry to the same totality
// contract as parseProbeHeader, slot by slot: a three-slot batch of
// arbitrary datagrams — mixed valid/garbage, a truncated trailing
// datagram, empty payloads — must never panic, must agree exactly with
// per-datagram parseProbeHeader on every slot, and a bad slot must
// never disturb its neighbors' verdicts. The committed corpus
// (testdata/fuzz/FuzzProbeBatch) pins the interesting mixtures.
func FuzzProbeBatch(f *testing.F) {
	valid := probePacket(1, 2, 3, packetHeader)
	big := probePacket(7, 8, 9, maxPacket)
	bad := probePacket(1, 2, 3, packetHeader)
	bad[0] ^= 1 // wrong magic
	f.Add(valid, big, valid)
	f.Add(valid, []byte{0xde, 0xad}, valid[:7]) // garbage mid-batch, truncated trailing
	f.Add([]byte{}, valid, []byte{})
	f.Add(bad, bad, bad)
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		batch := []ingest.Datagram{{Payload: a}, {Payload: b}, {Payload: c}}
		hs := make([]probeHeader, len(batch))
		oks := make([]bool, len(batch))
		valid := parseProbeBatch(batch, hs, oks)
		count := 0
		for i, d := range batch {
			h, ok := parseProbeHeader(d.Payload)
			if ok != oks[i] || h != hs[i] {
				t.Fatalf("slot %d: batch parse (%+v, %v) disagrees with single parse (%+v, %v)",
					i, hs[i], oks[i], h, ok)
			}
			if ok {
				count++
			}
		}
		if count != valid {
			t.Fatalf("parseProbeBatch counted %d valid, slots say %d", valid, count)
		}
	})
}

// fuzzSession builds a session detached from any socket: openStream,
// finishStream and stamp only touch the session's own state and the
// receiver's counters, so the control-plane state machine can be
// fuzzed without network setup. The closed channel starts closed so
// finishStream never enters its drain wait.
func fuzzSession() *session {
	r := &Receiver{cfg: Config{}.withDefaults(), closed: make(chan struct{})}
	close(r.closed)
	return &session{id: 1, r: r, streams: make(map[uint32]*rxStream)}
}

// FuzzCtrlMsg feeds arbitrary bytes through the control-channel JSON
// decoding into the stream state machine, asserting the invariants a
// hostile sender must not be able to break: no panics, replies always
// carry a known type, and the outstanding-byte accounting returns to
// zero once every stream is reaped.
func FuzzCtrlMsg(f *testing.F) {
	f.Add([]byte(`{"type":"stream","id":1,"count":4,"size":64}`))
	f.Add([]byte(`{"type":"done","id":1}`))
	f.Add([]byte(`{"type":"stream","id":1,"count":-5,"size":999999999}`))
	f.Add([]byte(`{"type":"stream","count":1048577,"size":15}`))
	f.Add([]byte(`{"type":"bogus"}`))
	f.Add([]byte(`{"type":`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var m ctrlMsg
		if err := json.Unmarshal(raw, &m); err != nil {
			return // malformed JSON is rejected before the state machine
		}
		s := fuzzSession()
		open := s.openStream(m)
		switch open.Type {
		case msgReady:
			limits := s.r.cfg
			if m.Count < 1 || m.Count > limits.MaxCount || m.Size < packetHeader || m.Size > maxPacket {
				t.Fatalf("out-of-limit stream %+v accepted", m)
			}
		case msgError:
		default:
			t.Fatalf("openStream reply type %q", open.Type)
		}
		// Stamp attempts with the message's own (attacker-chosen)
		// numbers: must never panic or index out of range.
		src := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
		s.stamp(src, m.ID, m.Count-1, m.Size, 1)
		s.stamp(src, m.ID, -1, m.Size, 2)
		s.stamp(src, m.Session, m.Count, m.Size, 3)

		fin := m
		fin.DeadlineMs = 0 // the drain wait is time-based; not under test
		done := s.finishStream(fin)
		if open.Type == msgReady {
			if done.Type != msgResult || len(done.RecvNs) != m.Count {
				t.Fatalf("finish of an open stream returned %q with %d slots, want %q with %d",
					done.Type, len(done.RecvNs), msgResult, m.Count)
			}
		} else if done.Type != msgError {
			t.Fatalf("finish of a never-opened stream returned %q", done.Type)
		}
		if s.pending != 0 {
			t.Fatalf("outstanding bytes %d after every stream was reaped", s.pending)
		}
		if s.streamCount() != 0 {
			t.Fatalf("%d streams left after reap", s.streamCount())
		}
	})
}

// TestTruncatedProbeCountedAsLoss is the end-to-end regression for the
// parse path: datagrams truncated below the header — including a
// magic-prefixed fragment — must be counted as receiver drops and the
// armed sequence slot reported as a loss, with the UDP loop alive to
// stamp the next valid probe.
func TestTruncatedProbeCountedAsLoss(t *testing.T) {
	r, err := ListenReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tr, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	const declared = 64
	if reply := openRawStream(t, tr, 1, 2, declared); reply.Type != msgReady {
		t.Fatalf("stream setup reply = %+v", reply)
	}
	// Two sub-header datagrams: a 7-byte magic-prefixed fragment of a
	// valid seq-0 packet, and pure garbage.
	if _, err := tr.udp.Write(probePacket(tr.SessionID(), 1, 0, declared)[:7]); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.udp.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "truncated datagrams dropped", func() bool { return r.Stats().Drops >= 2 })
	// The loop survived: a valid probe for seq 1 still stamps.
	if _, err := tr.udp.Write(probePacket(tr.SessionID(), 1, 1, declared)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "valid packet stamped", func() bool { return r.Stats().Packets >= 1 })
	res := finishRawStream(t, tr, 1, 50)
	if res.Type != msgResult || len(res.RecvNs) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.RecvNs[0] != -1 {
		t.Errorf("truncated packet's slot stamped at %d, want lost (-1)", res.RecvNs[0])
	}
	if res.RecvNs[1] < 0 {
		t.Error("valid packet reported lost")
	}
}
