package crosstraffic

import (
	"math"
	"testing"
	"time"

	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/unit"
)

// runModel drives a model over a single well-provisioned link and returns
// the recorder plus the counter.
func runModel(m Model, capacity unit.Rate, runFor time.Duration) (*sim.Recorder, *Counter) {
	s := sim.New()
	l := s.NewLink("l", capacity, 0)
	rec := sim.NewRecorder(capacity)
	l.Attach(rec)
	ctr := m.Run(s, []*sim.Link{l}, 0, runFor)
	s.Run()
	return rec, ctr
}

func TestCBRRateExact(t *testing.T) {
	m := CBR(Stream{Rate: 25 * unit.Mbps})
	_, ctr := runModel(m, 50*unit.Mbps, time.Second)
	got := ctr.AvgRate(time.Second)
	if math.Abs(got.MbpsOf()-25) > 0.2 {
		t.Errorf("CBR rate = %v, want ~25Mbps", got)
	}
}

func TestCBRPerfectlyPeriodic(t *testing.T) {
	m := CBR(Stream{Rate: 12 * unit.Mbps})
	rec, _ := runModel(m, 100*unit.Mbps, 500*time.Millisecond)
	arr := rec.Arrivals()
	if len(arr) < 3 {
		t.Fatalf("too few arrivals: %d", len(arr))
	}
	gap := arr[1].At - arr[0].At
	for i := 2; i < len(arr); i++ {
		if arr[i].At-arr[i-1].At != gap {
			t.Fatalf("interarrival %d differs: %v vs %v", i, arr[i].At-arr[i-1].At, gap)
		}
	}
	if want := unit.GapFor(1500, 12*unit.Mbps); gap != want {
		t.Errorf("gap = %v, want %v", gap, want)
	}
}

func TestPoissonRateConverges(t *testing.T) {
	m := Poisson(Stream{Rate: 25 * unit.Mbps}, rng.New(1))
	_, ctr := runModel(m, 100*unit.Mbps, 5*time.Second)
	got := ctr.AvgRate(5 * time.Second)
	if math.Abs(got.MbpsOf()-25)/25 > 0.03 {
		t.Errorf("Poisson rate = %v, want ~25Mbps", got)
	}
}

func TestPoissonInterarrivalCV(t *testing.T) {
	// Exponential interarrivals have coefficient of variation 1.
	m := Poisson(Stream{Rate: 10 * unit.Mbps}, rng.New(2))
	rec, _ := runModel(m, 100*unit.Mbps, 10*time.Second)
	arr := rec.Arrivals()
	var gaps []float64
	for i := 1; i < len(arr); i++ {
		gaps = append(gaps, (arr[i].At - arr[i-1].At).Seconds())
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var v float64
	for _, g := range gaps {
		v += (g - mean) * (g - mean)
	}
	v /= float64(len(gaps) - 1)
	cv := math.Sqrt(v) / mean
	if math.Abs(cv-1) > 0.05 {
		t.Errorf("Poisson interarrival CV = %g, want ~1", cv)
	}
}

func TestPoissonModalSizes(t *testing.T) {
	sizes := rng.MustModalSizes(rng.Mode{Size: 40, Prob: 0.5}, rng.Mode{Size: 1500, Prob: 0.5})
	m := Poisson(Stream{Rate: 20 * unit.Mbps, Sizes: sizes}, rng.New(3))
	rec, _ := runModel(m, 100*unit.Mbps, 2*time.Second)
	saw := map[unit.Bytes]bool{}
	for _, a := range rec.Arrivals() {
		saw[a.Size] = true
	}
	if !saw[40] || !saw[1500] {
		t.Errorf("modal sizes not sampled: %v", saw)
	}
}

func TestParetoOnOffRateConverges(t *testing.T) {
	m := ParetoOnOff(ParetoOnOffConfig{
		Stream: Stream{Rate: 25 * unit.Mbps},
		OffCap: 200,
	}, rng.New(4))
	_, ctr := runModel(m, 200*unit.Mbps, 30*time.Second)
	got := ctr.AvgRate(30 * time.Second)
	if math.Abs(got.MbpsOf()-25)/25 > 0.15 {
		t.Errorf("ParetoOnOff long-run rate = %v, want ~25Mbps (+-15%%)", got)
	}
}

func TestParetoOnOffDefaults(t *testing.T) {
	// Defaults fill in and don't panic.
	m := ParetoOnOff(ParetoOnOffConfig{Stream: Stream{Rate: 5 * unit.Mbps}}, rng.New(5))
	_, ctr := runModel(m, 100*unit.Mbps, time.Second)
	if ctr.Packets == 0 {
		t.Error("default-config ParetoOnOff emitted nothing")
	}
}

func TestParetoOnOffValidation(t *testing.T) {
	cases := []ParetoOnOffConfig{
		{Stream: Stream{Rate: 0}},
		{Stream: Stream{Rate: 10 * unit.Mbps}, Peak: 5 * unit.Mbps},
		{Stream: Stream{Rate: 10 * unit.Mbps}, OffShape: 0.9},
		{Stream: Stream{Rate: 10 * unit.Mbps}, MaxOnPackets: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config did not panic", i)
				}
			}()
			ParetoOnOff(cfg, rng.New(1))
		}()
	}
}

// windowVariance computes the variance of per-window arrival byte counts,
// the standard burstiness measure at a timescale.
func windowVariance(rec *sim.Recorder, runFor, win time.Duration) float64 {
	var counts []float64
	for t := time.Duration(0); t+win <= runFor; t += win {
		var b unit.Bytes
		for _, a := range rec.Arrivals() {
			if a.At >= t && a.At < t+win {
				b += a.Size
			}
		}
		counts = append(counts, float64(b))
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	var v float64
	for _, c := range counts {
		v += (c - mean) * (c - mean)
	}
	return v / float64(len(counts)-1)
}

func TestBurstinessOrdering(t *testing.T) {
	// The premise of Figure 3: at equal mean rate, variability orders
	// CBR < Poisson < Pareto ON-OFF at a 10ms timescale.
	const runFor = 20 * time.Second
	const win = 10 * time.Millisecond
	mk := func(m Model) float64 {
		rec, _ := runModel(m, 200*unit.Mbps, runFor)
		return windowVariance(rec, runFor, win)
	}
	vCBR := mk(CBR(Stream{Rate: 25 * unit.Mbps}))
	vPoisson := mk(Poisson(Stream{Rate: 25 * unit.Mbps}, rng.New(6)))
	vPareto := mk(ParetoOnOff(ParetoOnOffConfig{Stream: Stream{Rate: 25 * unit.Mbps}, OffCap: 200}, rng.New(7)))
	if !(vCBR < vPoisson && vPoisson < vPareto) {
		t.Errorf("burstiness ordering violated: CBR=%g Poisson=%g Pareto=%g", vCBR, vPoisson, vPareto)
	}
}

func TestAggregateSumsRates(t *testing.T) {
	parts := make([]Model, 5)
	for i := range parts {
		parts[i] = Poisson(Stream{Rate: 5 * unit.Mbps, Flow: i}, rng.New(uint64(10+i)))
	}
	m := Aggregate(parts...)
	_, ctr := runModel(m, 100*unit.Mbps, 5*time.Second)
	got := ctr.AvgRate(5 * time.Second)
	if math.Abs(got.MbpsOf()-25)/25 > 0.05 {
		t.Errorf("aggregate rate = %v, want ~25Mbps", got)
	}
}

func TestAggregateEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty aggregate did not panic")
		}
	}()
	Aggregate()
}

func TestOnePersistentPerHop(t *testing.T) {
	// Each hop gets its own source; traffic entering hop i must not
	// appear at hop j != i.
	s := sim.New()
	var links []*sim.Link
	var recs []*sim.Recorder
	for i := 0; i < 3; i++ {
		l := s.NewLink("hop", 50*unit.Mbps, 0)
		r := sim.NewRecorder(l.Capacity)
		l.Attach(r)
		links = append(links, l)
		recs = append(recs, r)
	}
	path := sim.MustPath(links...)
	root := rng.New(20)
	OnePersistentPerHop(s, path, 0, time.Second, func(hop int) Model {
		return Poisson(Stream{Rate: 10 * unit.Mbps, Flow: hop}, root.Split(string(rune('a'+hop))))
	})
	s.Run()
	for i, rec := range recs {
		got := rec.ArrivalRate(0, time.Second, sim.CrossOnly)
		if math.Abs(got.MbpsOf()-10)/10 > 0.1 {
			t.Errorf("hop %d arrival rate = %v, want ~10Mbps", i, got)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() int64 {
		s := sim.New()
		l := s.NewLink("l", 100*unit.Mbps, 0)
		m := ParetoOnOff(ParetoOnOffConfig{Stream: Stream{Rate: 30 * unit.Mbps}}, rng.New(99))
		ctr := m.Run(s, []*sim.Link{l}, 0, 5*time.Second)
		s.Run()
		return ctr.Packets
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay differs: %d vs %d packets", a, b)
	}
}

func TestCBRPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CBR with zero rate did not panic")
		}
	}()
	CBR(Stream{})
}

func TestPoissonPanicsWithoutRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Poisson without rand did not panic")
		}
	}()
	Poisson(Stream{Rate: unit.Mbps}, nil)
}
