// Package crosstraffic implements the background-traffic models the paper
// evaluates against: Constant-Bit-Rate (periodic), Poisson, and Pareto
// ON-OFF sources (Figure 3), with configurable packet-size distributions
// (Table 1), plus aggregation helpers and the one-hop-persistent
// attachment pattern of the multiple-bottleneck experiment (Figure 4).
//
// All models share a Stream configuration (long-run average rate, packet
// sizes, packet kind) so experiments can vary burstiness while holding
// the mean avail-bw fixed — the controlled comparison at the heart of the
// "ignoring cross-traffic burstiness" pitfall.
package crosstraffic

import (
	"fmt"
	"time"

	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/unit"
)

// inject schedules one pooled cross-traffic packet: the packet comes
// from the simulation's free list and is recycled after delivery, so
// steady-state generation allocates nothing.
func inject(s *sim.Sim, route []*sim.Link, size unit.Bytes, kind sim.Kind, flow int, at time.Duration) {
	p := s.NewPacket()
	p.Size, p.Kind, p.Flow, p.Route = size, kind, flow, route
	s.Inject(p, at)
}

// Stream describes the target long-run behaviour of a traffic source.
type Stream struct {
	// Rate is the long-run average rate.
	Rate unit.Rate
	// Sizes draws packet sizes; FixedSize(1500) if nil.
	Sizes rng.SizeDist
	// Kind tags generated packets; defaults to sim.KindCross.
	Kind sim.Kind
	// Flow labels the packets' flow ID.
	Flow int
}

func (c Stream) sizes() rng.SizeDist {
	if c.Sizes == nil {
		return rng.FixedSize(1500)
	}
	return c.Sizes
}

// Counter accumulates what a source actually emitted, for calibration
// checks.
type Counter struct {
	Packets int64
	Bytes   unit.Bytes
}

// AvgRate returns the average emission rate over the given span.
func (c *Counter) AvgRate(span time.Duration) unit.Rate {
	return unit.RateOf(c.Bytes, span)
}

// Model is a traffic source that can be instantiated on a simulation. Run
// schedules all its packet injections for [from, until) and returns a
// counter that fills in as the simulation executes.
type Model interface {
	Run(s *sim.Sim, route []*sim.Link, from, until time.Duration) *Counter
}

// --- CBR ---

type cbr struct{ cfg Stream }

// CBR returns a Constant-Bit-Rate (perfectly periodic) source: the
// closest packet-level approximation of the paper's fluid model.
func CBR(cfg Stream) Model {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("crosstraffic: CBR rate %v must be positive", cfg.Rate))
	}
	return &cbr{cfg: cfg}
}

func (m *cbr) Run(s *sim.Sim, route []*sim.Link, from, until time.Duration) *Counter {
	ctr := &Counter{}
	// CBR is deterministic by definition: a fixed packet size equal to
	// the distribution mean, on a perfectly periodic schedule.
	size := unit.Bytes(m.cfg.sizes().Mean())
	if size <= 0 {
		size = 1500
	}
	gap := unit.GapFor(size, m.cfg.Rate)
	// Schedule lazily from inside the simulation to avoid materializing
	// millions of events up front.
	var step func()
	next := from
	step = func() {
		if next >= until {
			return
		}
		inject(s, route, size, m.cfg.Kind, m.cfg.Flow, next)
		ctr.Packets++
		ctr.Bytes += size
		next += gap
		s.At(next, step)
	}
	s.At(from, step)
	return ctr
}

// --- Poisson ---

type poisson struct {
	cfg Stream
	r   *rng.Rand
}

// Poisson returns a source with exponential interarrivals whose mean
// matches the configured average rate given the mean packet size.
func Poisson(cfg Stream, r *rng.Rand) Model {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("crosstraffic: Poisson rate %v must be positive", cfg.Rate))
	}
	if r == nil {
		panic("crosstraffic: Poisson needs a random source")
	}
	return &poisson{cfg: cfg, r: r}
}

func (m *poisson) Run(s *sim.Sim, route []*sim.Link, from, until time.Duration) *Counter {
	ctr := &Counter{}
	meanSize := m.cfg.sizes().Mean()
	meanGapSec := meanSize * 8 / float64(m.cfg.Rate)
	var step func()
	at := from
	step = func() {
		if at >= until {
			return
		}
		size := unit.Bytes(m.cfg.sizes().Sample(m.r))
		inject(s, route, size, m.cfg.Kind, m.cfg.Flow, at)
		ctr.Packets++
		ctr.Bytes += size
		at += time.Duration(m.r.Exp(meanGapSec) * 1e9)
		s.At(at, step)
	}
	s.At(from, step)
	return ctr
}

// --- Pareto ON-OFF ---

// ParetoOnOffConfig tunes the heavy-tailed ON-OFF source beyond the
// shared Stream settings.
type ParetoOnOffConfig struct {
	Stream
	// Peak is the emission rate during ON periods; it must exceed the
	// long-run Rate. Defaults to 4x Rate.
	Peak unit.Rate
	// OffShape is the Pareto shape of OFF durations. The paper's
	// footnote uses 1.5; that is the default.
	OffShape float64
	// MaxOnPackets bounds the uniform ON length in packets; the paper's
	// footnote draws ON uniformly between 1 and 10 packets (default 10).
	MaxOnPackets int
	// OffCap truncates OFF periods at OffCap*xm to keep single sources
	// from dying for an entire run; 0 means unbounded (exact Pareto).
	OffCap float64
}

type paretoOnOff struct {
	cfg ParetoOnOffConfig
	r   *rng.Rand
}

// ParetoOnOff returns a heavy-tailed ON-OFF source: during ON it emits a
// uniform(1..MaxOnPackets) burst back-to-back at Peak rate, then stays
// silent for a Pareto(OffShape) duration calibrated so the long-run rate
// matches cfg.Rate. Aggregating many such sources yields self-similar
// traffic (Taqqu's theorem), which is why this is the paper's "most
// bursty" model.
func ParetoOnOff(cfg ParetoOnOffConfig, r *rng.Rand) Model {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("crosstraffic: ParetoOnOff rate %v must be positive", cfg.Rate))
	}
	if r == nil {
		panic("crosstraffic: ParetoOnOff needs a random source")
	}
	if cfg.Peak == 0 {
		cfg.Peak = 4 * cfg.Rate
	}
	if cfg.Peak <= cfg.Rate {
		panic(fmt.Sprintf("crosstraffic: peak %v must exceed mean rate %v", cfg.Peak, cfg.Rate))
	}
	if cfg.OffShape == 0 {
		cfg.OffShape = 1.5
	}
	if cfg.OffShape <= 1 {
		panic(fmt.Sprintf("crosstraffic: OFF shape %g must exceed 1 for a finite mean", cfg.OffShape))
	}
	if cfg.MaxOnPackets == 0 {
		cfg.MaxOnPackets = 10
	}
	if cfg.MaxOnPackets < 1 {
		panic("crosstraffic: MaxOnPackets must be >= 1")
	}
	return &paretoOnOff{cfg: cfg, r: r}
}

// offScale returns the Pareto minimum x_m for OFF periods such that the
// duty cycle matches Rate/Peak.
func (m *paretoOnOff) offScale() float64 {
	c := m.cfg
	meanOnPkts := float64(1+c.MaxOnPackets) / 2
	meanOnSec := meanOnPkts * c.sizes().Mean() * 8 / float64(c.Peak)
	meanOffSec := meanOnSec * float64(c.Peak-c.Rate) / float64(c.Rate)
	alpha := c.OffShape
	return meanOffSec * (alpha - 1) / alpha
}

func (m *paretoOnOff) Run(s *sim.Sim, route []*sim.Link, from, until time.Duration) *Counter {
	ctr := &Counter{}
	xm := m.offScale()
	var burst func()
	at := from
	burst = func() {
		if at >= until {
			return
		}
		n := 1 + m.r.Intn(m.cfg.MaxOnPackets)
		t := at
		for i := 0; i < n && t < until; i++ {
			size := unit.Bytes(m.cfg.sizes().Sample(m.r))
			inject(s, route, size, m.cfg.Kind, m.cfg.Flow, t)
			ctr.Packets++
			ctr.Bytes += size
			t += unit.GapFor(size, m.cfg.Peak)
		}
		var off float64
		if m.cfg.OffCap > 0 {
			off = m.r.BoundedPareto(m.cfg.OffShape, xm, m.cfg.OffCap*xm)
		} else {
			off = m.r.Pareto(m.cfg.OffShape, xm)
		}
		at = t + time.Duration(off*1e9)
		if at < until {
			s.At(at, burst)
		}
	}
	s.At(from, burst)
	return ctr
}

// --- Pareto interarrivals ---

type paretoArrivals struct {
	cfg   Stream
	shape float64
	r     *rng.Rand
}

// ParetoArrivals returns a source whose interarrival times are Pareto
// with the given shape (>1), matched to the configured mean rate — the
// "UDP sources with Pareto interarrivals" cross traffic of the paper's
// Figure 7. Heavier tails (shape closer to 1) give burstier traffic at
// the same mean.
func ParetoArrivals(cfg Stream, shape float64, r *rng.Rand) Model {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("crosstraffic: ParetoArrivals rate %v must be positive", cfg.Rate))
	}
	if shape <= 1 {
		panic(fmt.Sprintf("crosstraffic: ParetoArrivals shape %g must exceed 1", shape))
	}
	if r == nil {
		panic("crosstraffic: ParetoArrivals needs a random source")
	}
	return &paretoArrivals{cfg: cfg, shape: shape, r: r}
}

func (m *paretoArrivals) Run(s *sim.Sim, route []*sim.Link, from, until time.Duration) *Counter {
	ctr := &Counter{}
	meanGapSec := m.cfg.sizes().Mean() * 8 / float64(m.cfg.Rate)
	xm := meanGapSec * (m.shape - 1) / m.shape
	var step func()
	at := from
	step = func() {
		if at >= until {
			return
		}
		size := unit.Bytes(m.cfg.sizes().Sample(m.r))
		inject(s, route, size, m.cfg.Kind, m.cfg.Flow, at)
		ctr.Packets++
		ctr.Bytes += size
		at += time.Duration(m.r.Pareto(m.shape, xm) * 1e9)
		s.At(at, step)
	}
	s.At(from, step)
	return ctr
}

// --- composition helpers ---

type aggregate struct{ parts []Model }

// Aggregate multiplexes several models into one. Each part keeps its own
// configuration; the combined long-run rate is the sum of the parts.
func Aggregate(parts ...Model) Model {
	if len(parts) == 0 {
		panic("crosstraffic: empty aggregate")
	}
	return &aggregate{parts: parts}
}

func (m *aggregate) Run(s *sim.Sim, route []*sim.Link, from, until time.Duration) *Counter {
	total := &Counter{}
	ctrs := make([]*Counter, len(m.parts))
	for i, p := range m.parts {
		ctrs[i] = p.Run(s, route, from, until)
	}
	// Totals are only correct after the simulation runs; recompute on a
	// final event instead of summing now.
	s.At(until, func() {
		total.Packets, total.Bytes = 0, 0
		for _, c := range ctrs {
			total.Packets += c.Packets
			total.Bytes += c.Bytes
		}
	})
	return total
}

// OnePersistentPerHop instantiates mk(i) for each link of the path and
// runs it over just that hop — the paper's "one-hop persistent" cross
// traffic that enters at link i and exits at link i+1 (Figure 4).
func OnePersistentPerHop(s *sim.Sim, path *sim.Path, from, until time.Duration, mk func(hop int) Model) []*Counter {
	ctrs := make([]*Counter, len(path.Links))
	for i, l := range path.Links {
		ctrs[i] = mk(i).Run(s, []*sim.Link{l}, from, until)
	}
	return ctrs
}
