package crosstraffic

import (
	"math"
	"testing"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

func TestParetoArrivalsRateConverges(t *testing.T) {
	m := ParetoArrivals(Stream{Rate: 35 * unit.Mbps}, 1.9, rng.New(1))
	_, ctr := runModel(m, 200*unit.Mbps, 20*time.Second)
	got := ctr.AvgRate(20 * time.Second)
	if math.Abs(got.MbpsOf()-35)/35 > 0.15 {
		t.Errorf("ParetoArrivals rate = %v, want ~35Mbps (+-15%%)", got)
	}
}

func TestParetoArrivalsHeavierTailThanPoisson(t *testing.T) {
	// Pareto interarrivals with shape close to 1 must produce burstier
	// windowed counts than Poisson at the same mean rate.
	const runFor = 20 * time.Second
	const win = 10 * time.Millisecond
	recPoisson, _ := runModel(Poisson(Stream{Rate: 20 * unit.Mbps}, rng.New(2)), 200*unit.Mbps, runFor)
	recPareto, _ := runModel(ParetoArrivals(Stream{Rate: 20 * unit.Mbps}, 1.3, rng.New(3)), 200*unit.Mbps, runFor)
	vPoisson := windowVariance(recPoisson, runFor, win)
	vPareto := windowVariance(recPareto, runFor, win)
	if vPareto <= vPoisson {
		t.Errorf("Pareto-gap variance %g should exceed Poisson %g", vPareto, vPoisson)
	}
}

func TestParetoArrivalsInterarrivalMinimum(t *testing.T) {
	// Pareto gaps have a hard minimum x_m: no two arrivals closer than
	// that.
	m := ParetoArrivals(Stream{Rate: 10 * unit.Mbps}, 2.0, rng.New(4))
	rec, _ := runModel(m, 100*unit.Mbps, 5*time.Second)
	arr := rec.Arrivals()
	meanGap := 1500.0 * 8 / 10e6
	xm := meanGap * (2.0 - 1) / 2.0
	for i := 1; i < len(arr); i++ {
		gap := (arr[i].At - arr[i-1].At).Seconds()
		if gap < xm*0.999 {
			t.Fatalf("interarrival %g below Pareto minimum %g", gap, xm)
		}
	}
}

func TestParetoArrivalsValidation(t *testing.T) {
	for i, f := range []func(){
		func() { ParetoArrivals(Stream{}, 1.9, rng.New(1)) },
		func() { ParetoArrivals(Stream{Rate: unit.Mbps}, 1.0, rng.New(1)) },
		func() { ParetoArrivals(Stream{Rate: unit.Mbps}, 1.9, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid ParetoArrivals config did not panic", i)
				}
			}()
			f()
		}()
	}
}
