package exp

import (
	"context"
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/rng"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/tools/registry"
)

// matrixRecorderEpoch is the aggregate ground-truth granularity of the
// matrix runs. The matrix only consumes the analytic (spec-derived)
// truth, so the recorders exist purely as bounded diagnostics: per-epoch
// counters keep the many long-horizon compilations from holding one
// Arrival row per cross-traffic packet each.
const matrixRecorderEpoch = 100 * time.Millisecond

// MatrixConfig parameterizes the tools×scenarios matrix: every
// registered end-to-end estimator against every cataloged scenario.
// This is the experiment the paper's summary asks for — "compare and
// evaluate the existing estimation techniques under reproducible and
// controllable conditions" — with the conditions drawn from the
// scenario catalog instead of a single canonical path.
type MatrixConfig struct {
	// Tools are registry names (default: every tool that runs over a
	// plain Transport; SimOnly tools need hop visibility the matrix
	// does not model fairly).
	Tools []string
	// Scenarios are catalog names (default: the whole catalog).
	Scenarios []string
	// Quick reduces per-tool probing effort for a fast pass.
	Quick bool
	// Budget, if non-zero, caps every run uniformly.
	Budget core.Budget
	Seed   uint64
}

func (c MatrixConfig) withDefaults() MatrixConfig {
	if len(c.Tools) == 0 {
		for _, d := range registry.Tools() {
			if !d.SimOnly {
				c.Tools = append(c.Tools, d.Name)
			}
		}
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = scenario.Names()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// MatrixScenarioInfo is one scenario row's ground truth.
type MatrixScenarioInfo struct {
	Name    string
	Summary string
	Hops    int
	// TrueAvailBwMbps is the analytic long-run avail-bw of the tight
	// link.
	TrueAvailBwMbps float64
	// CapacityMbps is the tight-link capacity handed to the tools.
	CapacityMbps float64
	// TightLink and NarrowLink are hop indices; where they differ the
	// scenario exercises the paper's fifth pitfall.
	TightLink, NarrowLink int
}

// MatrixCell is one (scenario, tool) outcome.
type MatrixCell struct {
	Scenario string `json:"scenario"`
	core.Outcome
	Err error `json:"-"`
}

// MatrixResult is the matrix outcome: scenario rows × tool columns.
type MatrixResult struct {
	Config    MatrixConfig
	Tools     []string
	Scenarios []MatrixScenarioInfo
	// Cells is scenario-major, tool-minor.
	Cells []MatrixCell
}

// Cell returns the outcome for a scenario/tool pair.
func (r *MatrixResult) Cell(scenarioName, tool string) (MatrixCell, bool) {
	for _, c := range r.Cells {
		if c.Scenario == scenarioName && c.Tool == tool {
			return c, true
		}
	}
	return MatrixCell{}, false
}

// Matrix runs every selected tool against every selected scenario.
// Each (scenario, tool) pair is one runner job: the tool probes a
// fresh compilation of the scenario (same seed, so every tool sees
// statistically identical conditions), with the tight-link capacity as
// its Capacity parameter — the best case the paper grants direct
// probing. Results are bit-identical at every worker count.
//
// Memory layout: every runner shard owns a scenario.Shard — an arena
// holding event structs, packets, and recorder bins reclaimed from the
// compilations it has already run, sized per scenario from the previous
// compile — so a steady-state matrix run recycles its simulation memory
// instead of re-growing every pool from cold. Shards are pure memory
// affinity; the cells are bit-identical at any worker count.
func Matrix(cfg MatrixConfig) (*MatrixResult, error) {
	c := cfg.withDefaults()
	res := &MatrixResult{Config: c, Tools: c.Tools}

	infoShard := scenario.NewShard()
	for _, name := range c.Scenarios {
		d, ok := scenario.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("exp: matrix: unknown scenario %q (have %v)", name, scenario.Names())
		}
		cpl, err := infoShard.CompileSeededAggregate(d, c.Seed, matrixRecorderEpoch)
		if err != nil {
			return nil, fmt.Errorf("exp: matrix: %s: %w", name, err)
		}
		res.Scenarios = append(res.Scenarios, MatrixScenarioInfo{
			Name:            d.Name,
			Summary:         d.Summary,
			Hops:            len(d.Spec.Hops),
			TrueAvailBwMbps: cpl.TrueAvailBw.MbpsOf(),
			CapacityMbps:    cpl.Capacity.MbpsOf(),
			TightLink:       cpl.TightLink,
			NarrowLink:      cpl.NarrowLink,
		})
		infoShard.Recycle(d.Name, cpl)
	}

	// Lazily created: each entry is touched only by the worker goroutine
	// with that shard index, so no synchronization is needed.
	shards := make([]*scenario.Shard, runner.Workers())
	cells, err := runner.AllShards(len(c.Scenarios)*len(c.Tools), func(job, shard int) (MatrixCell, error) {
		si, ti := job/len(c.Tools), job%len(c.Tools)
		name, tool := c.Scenarios[si], c.Tools[ti]
		d, _ := scenario.Lookup(name)
		var sh *scenario.Shard
		if shard < len(shards) {
			sh = shards[shard]
		}
		if sh == nil {
			sh = scenario.NewShard()
			if shard < len(shards) {
				shards[shard] = sh
			}
			// else: SetWorkers raced with the fan-out; arenas are an
			// optimization, so a throwaway shard is fine.
		}
		cpl, err := sh.CompileSeededAggregate(d, c.Seed, matrixRecorderEpoch)
		if err != nil {
			return MatrixCell{}, fmt.Errorf("exp: matrix: %s: %w", name, err)
		}
		params := registry.Params{
			Capacity: cpl.Capacity,
			Rand:     rng.New(c.Seed + 1),
			Budget:   c.Budget,
		}
		if c.Quick {
			params.Repeat = 6
			params.MaxRounds = 6
			if tool == "learned" {
				// Repeat maps onto streams-per-rate-fraction for the
				// learned tool, where 6 would *raise* effort above its
				// plan default of 4; 2 keeps quick a reduced-effort
				// pass there too (8 streams instead of 16).
				params.Repeat = 2
			}
		}
		rep, err := registry.Estimate(context.Background(), tool, params, cpl.Transport)
		sh.Recycle(d.Name, cpl)
		return MatrixCell{Scenario: d.Name, Outcome: core.NewOutcome(tool, rep, err), Err: err}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("exp: matrix: %w", err)
	}
	res.Cells = cells
	return res, nil
}

// Table renders the matrix: one row per scenario, one estimate column
// per tool, with the ground truth alongside.
func (r *MatrixResult) Table() *Table {
	t := &Table{
		Title:  "Matrix: every registered tool × every cataloged scenario (estimates in Mbps)",
		Header: []string{"scenario", "hops", "true A", "tight=narrow"},
		Notes: []string{
			"paper: which conditions break which estimator — burstiness, multiple bottlenecks, " +
				"responsive cross traffic and avail-bw variability each defeat a different technique",
			"each tool receives the tight-link capacity (the best case for direct probing); " +
				"'x' marks a failed run",
		},
	}
	t.Header = append(t.Header, r.Tools...)
	for _, sc := range r.Scenarios {
		eq := "yes"
		if sc.TightLink != sc.NarrowLink {
			eq = "NO"
		}
		row := []string{sc.Name, fmt.Sprintf("%d", sc.Hops), f2(sc.TrueAvailBwMbps), eq}
		for _, tool := range r.Tools {
			cell, ok := r.Cell(sc.Name, tool)
			switch {
			case !ok || cell.Err != nil:
				row = append(row, "x")
			default:
				row = append(row, f2(cell.Report.Point.MbpsOf()))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
