package exp

import (
	"fmt"
	"time"

	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/sim"
	"abw/internal/tcp"
	"abw/internal/unit"
)

// Figure7CrossType names the three cross-traffic flavors of Figure 7,
// using the paper's legend.
type Figure7CrossType string

// Figure 7's cross-traffic types.
const (
	// CrossParetoUDP: unresponsive UDP with Pareto interarrivals.
	CrossParetoUDP Figure7CrossType = "Pareto interarrivals"
	// CrossSizeLimited: an aggregate of many short ("size limited") TCP
	// transfers.
	CrossSizeLimited Figure7CrossType = "Size limited TCP"
	// CrossBufferLimited: a few persistent TCP transfers capped by
	// their advertised windows (socket "buffer limited").
	CrossBufferLimited Figure7CrossType = "Buffer limited TCP"
)

// Figure7Config parameterizes the TCP-vs-avail-bw experiment. Zero
// fields take values matching the paper's setting (avail-bw 15 Mbps).
type Figure7Config struct {
	Capacity  unit.Rate // default 50 Mbps
	CrossRate unit.Rate // default 35 Mbps → A = 15 Mbps
	// Windows is the Wr sweep in segments (default 2,4,...,512).
	Windows []int
	// CrossTypes selects the curves (default all three).
	CrossTypes []Figure7CrossType
	// Duration is virtual time per point (default 20 s; throughput is
	// measured after a 5 s warmup).
	Duration time.Duration
	// BufferPkts is the bottleneck buffer (default 100 packets).
	BufferPkts int
	// RTTProp is the two-way propagation delay (default 40 ms).
	RTTProp time.Duration
	// CrossConns is the number of persistent window-limited cross TCPs
	// (default 5).
	CrossConns int
	Seed       uint64
}

func (c Figure7Config) withDefaults() Figure7Config {
	if c.Capacity == 0 {
		c.Capacity = 50 * unit.Mbps
	}
	if c.CrossRate == 0 {
		c.CrossRate = 35 * unit.Mbps
	}
	if len(c.Windows) == 0 {
		c.Windows = []int{2, 4, 8, 16, 32, 64, 128, 256, 512}
	}
	if len(c.CrossTypes) == 0 {
		c.CrossTypes = []Figure7CrossType{CrossParetoUDP, CrossSizeLimited, CrossBufferLimited}
	}
	if c.Duration == 0 {
		c.Duration = 20 * time.Second
	}
	if c.BufferPkts == 0 {
		c.BufferPkts = 100
	}
	if c.RTTProp == 0 {
		c.RTTProp = 40 * time.Millisecond
	}
	if c.CrossConns == 0 {
		c.CrossConns = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Figure7Series is one cross-traffic type's throughput curve.
type Figure7Series struct {
	CrossType Figure7CrossType
	Windows   []int
	// ThroughputMbps[i] is the bulk transfer's goodput at Windows[i].
	ThroughputMbps []float64
}

// At returns the throughput at a given window.
func (s *Figure7Series) At(wr int) (float64, bool) {
	for i, w := range s.Windows {
		if w == wr {
			return s.ThroughputMbps[i], true
		}
	}
	return 0, false
}

// Figure7Result is the experiment outcome.
type Figure7Result struct {
	Config Figure7Config
	// AvailBwMbps is the nominal avail-bw the paper draws as the
	// horizontal line.
	AvailBwMbps float64
	Series      []Figure7Series
}

// Figure7 regenerates the paper's Figure 7: bulk TCP throughput as a
// function of the receiver advertised window Wr under three cross
// traffic types. The paper's claim — the evidence behind its tenth
// pitfall — is that the TCP-throughput-vs-avail-bw difference can be
// positive or negative, depending on Wr and on how congestion-responsive
// the cross traffic is, so TCP throughput is not a validation target for
// avail-bw estimators.
func Figure7(cfg Figure7Config) (*Figure7Result, error) {
	c := cfg.withDefaults()
	res := &Figure7Result{
		Config:      c,
		AvailBwMbps: (c.Capacity - c.CrossRate).MbpsOf(),
	}
	// Each (cross type, window) grid point is one runner job with its
	// own simulator, seeded from the experiment seed and grid indices.
	thru, err := runner.All(len(c.CrossTypes)*len(c.Windows), func(job int) (float64, error) {
		ci, wi := job/len(c.Windows), job%len(c.Windows)
		ct, wr := c.CrossTypes[ci], c.Windows[wi]
		src, err := fig7Source(ct, c)
		if err != nil {
			return 0, fmt.Errorf("exp: figure7: %w", err)
		}
		cpl, err := scenario.Compile(scenario.Spec{
			Horizon:          c.Duration + time.Second,
			Seed:             scenario.Seed(c.Seed + uint64(ci)*100000 + uint64(wi)*100),
			WithReverse:      true,
			ReversePropDelay: c.RTTProp / 2,
			Hops: []scenario.Hop{{
				Capacity:  c.Capacity,
				Buffer:    unit.Bytes(c.BufferPkts) * 1500,
				PropDelay: c.RTTProp / 2,
				Traffic:   []scenario.Source{src},
			}},
		})
		if err != nil {
			return 0, fmt.Errorf("exp: figure7: %w", err)
		}
		bulk, err := tcp.New(cpl.Sim, cpl.Path.Route(), []*sim.Link{cpl.Reverse}, 1, tcp.Config{RcvWnd: wr})
		if err != nil {
			return 0, fmt.Errorf("exp: figure7: %w", err)
		}
		bulk.Start(time.Second)
		cpl.Sim.RunUntil(c.Duration)
		warmup := c.Duration / 4
		return bulk.Throughput(warmup, c.Duration).MbpsOf(), nil
	})
	if err != nil {
		return nil, err
	}
	for ci, ct := range c.CrossTypes {
		series := Figure7Series{CrossType: ct}
		for wi, wr := range c.Windows {
			series.Windows = append(series.Windows, wr)
			series.ThroughputMbps = append(series.ThroughputMbps, thru[ci*len(c.Windows)+wi])
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// fig7Source maps the chosen cross-traffic type onto a scenario
// source. The SplitLabel overrides pin the rng labels this experiment
// used before the scenario subsystem, keeping its numbers
// bit-identical.
func fig7Source(ct Figure7CrossType, c Figure7Config) (scenario.Source, error) {
	switch ct {
	case CrossParetoUDP:
		return scenario.Source{
			Kind: scenario.ParetoArrivals, Rate: c.CrossRate,
			Shape: 1.9, SplitLabel: "udp", Flow: 500,
		}, nil
	case CrossSizeLimited:
		return scenario.Source{
			Kind: scenario.Mice, Rate: c.CrossRate,
			SplitLabel: "mice", Flow: 1000,
		}, nil
	case CrossBufferLimited:
		// Windows sized so the aggregate uses ~CrossRate when alone:
		// per-conn rate = Wr·MSS·8/RTT.
		perConn := float64(c.CrossRate) / float64(c.CrossConns)
		wr := int(perConn * c.RTTProp.Seconds() / (1460 * 8))
		if wr < 2 {
			wr = 2
		}
		return scenario.Source{
			Kind: scenario.BufferLimitedTCP, Rate: c.CrossRate,
			Conns: c.CrossConns, Window: wr, Flow: 100,
		}, nil
	default:
		return scenario.Source{}, fmt.Errorf("unknown cross type %q", ct)
	}
}

// Table renders the throughput curves against the avail-bw line.
func (r *Figure7Result) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 7: bulk TCP throughput vs receiver window (avail-bw = %.0f Mbps)", r.AvailBwMbps),
		Header: []string{"Wr (pkts)"},
		Notes: []string{
			"paper: the difference between TCP throughput and avail-bw can be positive or negative, " +
				"depending on Wr and on the congestion responsiveness of the cross traffic",
		},
	}
	for _, s := range r.Series {
		t.Header = append(t.Header, string(s.CrossType))
	}
	for i, wr := range r.Config.Windows {
		row := []string{fmt.Sprintf("%d", wr)}
		for _, s := range r.Series {
			row = append(row, f2(s.ThroughputMbps[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
