package exp

import (
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/rng"
	"abw/internal/runner"
	"abw/internal/sim"
	"abw/internal/tools/delphi"
	"abw/internal/tools/igi"
	"abw/internal/tools/pathchirp"
	"abw/internal/tools/pathload"
	"abw/internal/tools/spruce"
	"abw/internal/tools/topp"
	"abw/internal/unit"
)

// CompareConfig parameterizes the cross-tool comparison the paper's
// summary calls for: "compare and evaluate the existing estimation
// techniques under reproducible and controllable conditions".
type CompareConfig struct {
	Capacity  unit.Rate // default 50 Mbps
	CrossRate unit.Rate // default 25 Mbps
	Model     CrossModel
	Seed      uint64
}

func (c CompareConfig) withDefaults() CompareConfig {
	if c.Capacity == 0 {
		c.Capacity = 50 * unit.Mbps
	}
	if c.CrossRate == 0 {
		c.CrossRate = 25 * unit.Mbps
	}
	if c.Model == "" {
		c.Model = ModelPoisson
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CompareEntry is one tool's outcome on the common scenario.
type CompareEntry struct {
	Tool   string
	Report *core.Report
	// Err is the tool's estimation failure, if any. ErrMsg carries its
	// text into the structured JSON output, where a bare error
	// interface would marshal as {}.
	Err    error  `json:"-"`
	ErrMsg string `json:"Err,omitempty"`
}

// CompareResult is the comparison outcome.
type CompareResult struct {
	Config      CompareConfig
	TrueAvailBw unit.Rate
	Entries     []CompareEntry
}

// CompareTools runs every estimator against statistically identical
// copies of the same path (same seed, fresh simulation per tool so no
// tool inherits another's queue backlog), recording estimate and
// probing cost. This is the repository's broadest integration test:
// seven estimation techniques, the transport, the simulator and three
// traffic models all exercised through the public API.
func CompareTools(cfg CompareConfig) (*CompareResult, error) {
	c := cfg.withDefaults()
	res := &CompareResult{Config: c, TrueAvailBw: c.Capacity - c.CrossRate}

	scenario := func() *core.SimTransport {
		s := sim.New()
		link := s.NewLink("tight", c.Capacity, time.Millisecond)
		path := sim.MustPath(link)
		mkModel(c.Model, c.CrossRate, rng.New(c.Seed)).Run(s, path.Route(), 0, 10*time.Minute)
		return core.NewSimTransport(s, path)
	}

	builders := []struct {
		name  string
		build func() (core.Estimator, error)
	}{
		{"pathload", func() (core.Estimator, error) {
			return pathload.New(pathload.Config{MinRate: c.Capacity / 25, MaxRate: c.Capacity * 49 / 50})
		}},
		{"topp", func() (core.Estimator, error) {
			return topp.New(topp.Config{MinRate: c.Capacity / 10, MaxRate: c.Capacity * 9 / 10})
		}},
		{"pathchirp", func() (core.Estimator, error) {
			return pathchirp.New(pathchirp.Config{Lo: c.Capacity / 10, Hi: c.Capacity * 24 / 25})
		}},
		{"ptr", func() (core.Estimator, error) {
			return igi.New(igi.Config{InitRate: c.Capacity})
		}},
		{"igi", func() (core.Estimator, error) {
			return igi.New(igi.Config{Mode: igi.IGI, Capacity: c.Capacity})
		}},
		{"delphi", func() (core.Estimator, error) {
			return delphi.New(delphi.Config{Capacity: c.Capacity})
		}},
		{"spruce", func() (core.Estimator, error) {
			return spruce.New(spruce.Config{Capacity: c.Capacity, Rand: rng.New(c.Seed + 1)})
		}},
	}
	// Each tool probes its own scenario copy, so every tool is one
	// runner job; a tool's estimation failure is recorded as its entry,
	// not an experiment error.
	entries, err := runner.All(len(builders), func(bi int) (CompareEntry, error) {
		b := builders[bi]
		est, err := b.build()
		if err != nil {
			return CompareEntry{}, fmt.Errorf("exp: compare: %s: %w", b.name, err)
		}
		rep, err := est.Estimate(scenario())
		e := CompareEntry{Tool: b.name, Report: rep, Err: err}
		if err != nil {
			e.ErrMsg = err.Error()
		}
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	res.Entries = entries
	return res, nil
}

// Entry returns the named tool's entry.
func (r *CompareResult) Entry(tool string) (CompareEntry, bool) {
	for _, e := range r.Entries {
		if e.Tool == tool {
			return e, true
		}
	}
	return CompareEntry{}, false
}

// Table renders the comparison with the cost columns that make it fair.
func (r *CompareResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Tool comparison under %s cross traffic (true A = %.1f Mbps)",
			r.Config.Model, r.TrueAvailBw.MbpsOf()),
		Header: []string{"tool", "estimate", "low", "high", "streams", "packets", "latency"},
		Notes: []string{
			"comparisons are only fair at matched probing budgets and timescales (misconceptions 1-3)",
		},
	}
	for _, e := range r.Entries {
		if e.Err != nil {
			t.Rows = append(t.Rows, []string{e.Tool, "error", e.Err.Error(), "", "", "", ""})
			continue
		}
		rep := e.Report
		t.Rows = append(t.Rows, []string{
			e.Tool, f2(rep.Point.MbpsOf()), f2(rep.Low.MbpsOf()), f2(rep.High.MbpsOf()),
			fmt.Sprintf("%d", rep.Streams), fmt.Sprintf("%d", rep.Packets),
			rep.Elapsed.Round(time.Millisecond).String(),
		})
	}
	return t
}
