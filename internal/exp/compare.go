package exp

import (
	"context"
	"fmt"
	"time"

	"abw/internal/core"
	"abw/internal/rng"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/tools/registry"
	"abw/internal/unit"
)

// CompareConfig parameterizes the cross-tool comparison the paper's
// summary calls for: "compare and evaluate the existing estimation
// techniques under reproducible and controllable conditions".
type CompareConfig struct {
	Capacity  unit.Rate // default 50 Mbps
	CrossRate unit.Rate // default 25 Mbps
	Model     CrossModel
	Seed      uint64
	// Budget, if non-zero, is applied to every tool through a
	// core.BudgetTransport, making the comparison budget-fair by
	// construction rather than by per-tool configuration discipline.
	Budget core.Budget
}

func (c CompareConfig) withDefaults() CompareConfig {
	if c.Capacity == 0 {
		c.Capacity = 50 * unit.Mbps
	}
	if c.CrossRate == 0 {
		c.CrossRate = 25 * unit.Mbps
	}
	if c.Model == "" {
		c.Model = ModelPoisson
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CompareEntry is one tool's outcome on the common scenario. The
// embedded core.Outcome carries the JSON shape (report, error text);
// Err keeps the live error for programmatic use.
type CompareEntry struct {
	core.Outcome
	Err error `json:"-"`
}

// CompareResult is the comparison outcome.
type CompareResult struct {
	Config      CompareConfig
	TrueAvailBw unit.Rate
	Entries     []CompareEntry
}

// CompareTools runs every end-to-end estimator in the registry against
// statistically identical copies of the same path (same seed, fresh
// simulation per tool so no tool inherits another's queue backlog),
// recording estimate and probing cost. This is the repository's
// broadest integration test: seven estimation techniques, the
// transport, the simulator and three traffic models all exercised
// through the public construction path.
func CompareTools(cfg CompareConfig) (*CompareResult, error) {
	c := cfg.withDefaults()
	res := &CompareResult{Config: c, TrueAvailBw: c.Capacity - c.CrossRate}

	build := func() (*core.SimTransport, error) {
		cpl, err := scenario.Compile(scenario.Spec{
			Horizon: 10 * time.Minute,
			Seed:    scenario.Seed(c.Seed),
			Hops: []scenario.Hop{{
				Capacity: c.Capacity,
				Traffic:  []scenario.Source{crossSource(c.Model, c.CrossRate)},
			}},
		})
		if err != nil {
			return nil, err
		}
		return cpl.Transport, nil
	}

	// The registry's end-to-end tools, in registration order; sim-only
	// techniques (BFind) need hop visibility the common scenario does
	// not model fairly, so the comparison skips them.
	var tools []string
	for _, d := range registry.Tools() {
		if !d.SimOnly {
			tools = append(tools, d.Name)
		}
	}
	// Each tool probes its own scenario copy, so every tool is one
	// runner job; a tool's estimation failure is recorded as its entry,
	// not an experiment error.
	entries, err := runner.All(len(tools), func(ti int) (CompareEntry, error) {
		name := tools[ti]
		tr, err := build()
		if err != nil {
			return CompareEntry{}, fmt.Errorf("exp: compare: %w", err)
		}
		rep, err := registry.Estimate(context.Background(), name, registry.Params{
			Capacity: c.Capacity,
			Rand:     rng.New(c.Seed + 1),
			Budget:   c.Budget,
		}, tr)
		return CompareEntry{Outcome: core.NewOutcome(name, rep, err), Err: err}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("exp: compare: %w", err)
	}
	res.Entries = entries
	return res, nil
}

// Entry returns the named tool's entry.
func (r *CompareResult) Entry(tool string) (CompareEntry, bool) {
	for _, e := range r.Entries {
		if e.Tool == tool {
			return e, true
		}
	}
	return CompareEntry{}, false
}

// Table renders the comparison with the cost columns that make it fair.
func (r *CompareResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Tool comparison under %s cross traffic (true A = %.1f Mbps)",
			r.Config.Model, r.TrueAvailBw.MbpsOf()),
		Header: []string{"tool", "estimate", "low", "high", "streams", "packets", "latency"},
		Notes: []string{
			"comparisons are only fair at matched probing budgets and timescales (misconceptions 1-3)",
		},
	}
	for _, e := range r.Entries {
		if e.Err != nil {
			t.Rows = append(t.Rows, []string{e.Tool, "error", e.Err.Error(), "", "", "", ""})
			continue
		}
		rep := e.Report
		t.Rows = append(t.Rows, []string{
			e.Tool, f2(rep.Point.MbpsOf()), f2(rep.Low.MbpsOf()), f2(rep.High.MbpsOf()),
			fmt.Sprintf("%d", rep.Streams), fmt.Sprintf("%d", rep.Packets),
			rep.Elapsed.Round(time.Millisecond).String(),
		})
	}
	return t
}
