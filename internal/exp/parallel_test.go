package exp

import (
	"reflect"
	"testing"
	"time"

	"abw/internal/runner"
	"abw/internal/unit"
)

// TestParallelDeterminism is the runner's contract applied end-to-end:
// with a fixed seed, the experiments produce bit-identical results with
// 1 worker (serial execution) and 8 workers, because every trial derives
// its randomness from the seed and its own index.
func TestParallelDeterminism(t *testing.T) {
	defer runner.SetWorkers(0)

	fig1 := func() (any, error) {
		return Figure1(Figure1Config{Trials: 60, TraceSpan: 8 * time.Second, Seed: 7})
	}
	table1 := func() (any, error) {
		return Table1(Table1Config{
			CrossSizes: []unit.Bytes{40, 1500},
			SampleKs:   []int{10, 50},
			Trials:     6,
			Seed:       7,
		})
	}
	fig3 := func() (any, error) {
		return Figure3(Figure3Config{
			Rates:   []unit.Rate{15 * unit.Mbps, 27.5 * unit.Mbps},
			Streams: 40, StreamLen: 30, Seed: 7,
		})
	}
	latency := func() (any, error) {
		return LatencyAccuracy(LatencyAccuracyConfig{
			Durations: []time.Duration{10 * time.Millisecond},
			Counts:    []int{5},
			Trials:    6,
			Seed:      7,
		})
	}
	matrix := func() (any, error) {
		return Matrix(MatrixConfig{
			Tools:     []string{"delphi", "spruce"},
			Scenarios: []string{"canonical", "bursty", "narrowtight"},
			Quick:     true,
			Seed:      7,
		})
	}
	dataset := func() (any, error) {
		return Dataset(smallDataset(7))
	}
	cases := []struct {
		name string
		run  func() (any, error)
	}{
		{"Figure1", fig1},
		{"Table1", table1},
		{"Figure3", fig3},
		{"LatencyAccuracy", latency},
		{"Matrix", matrix},
		{"Dataset", dataset},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runner.SetWorkers(1)
			serial, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			runner.SetWorkers(8)
			parallel, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("%s: -parallel 1 and -parallel 8 results differ", tc.name)
			}
		})
	}
}
