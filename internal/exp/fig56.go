package exp

import (
	"fmt"
	"time"

	"abw/internal/probe"
	"abw/internal/rng"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/sim"
	"abw/internal/stats"
	"abw/internal/trace"
	"abw/internal/unit"
)

// Figure5Config parameterizes the OWD-trend demonstration. Zero fields
// take the paper's values: two 160-packet streams at 27 and 19 Mbps over
// a path with A = 25 Mbps.
type Figure5Config struct {
	Capacity  unit.Rate  // default 50 Mbps
	CrossRate unit.Rate  // default 25 Mbps
	AboveRate unit.Rate  // default 27 Mbps (> A)
	BelowRate unit.Rate  // default 19 Mbps (< A)
	StreamLen int        // default 160
	PktSize   unit.Bytes // default 1500
	// BurstPackets is the size of the cross-traffic burst injected near
	// the end of the below-A stream, recreating the paper's lower time
	// series where Ro < Ri despite Ri < A (default 120 packets).
	BurstPackets int
	Seed         uint64
}

func (c Figure5Config) withDefaults() Figure5Config {
	if c.Capacity == 0 {
		c.Capacity = 50 * unit.Mbps
	}
	if c.CrossRate == 0 {
		c.CrossRate = 25 * unit.Mbps
	}
	if c.AboveRate == 0 {
		c.AboveRate = 27 * unit.Mbps
	}
	if c.BelowRate == 0 {
		c.BelowRate = 19 * unit.Mbps
	}
	if c.StreamLen == 0 {
		c.StreamLen = 160
	}
	if c.PktSize == 0 {
		c.PktSize = 1500
	}
	if c.BurstPackets == 0 {
		c.BurstPackets = 120
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Figure5Stream is one probing stream's analysis.
type Figure5Stream struct {
	Label      string
	InputMbps  float64
	OutputMbps float64
	RelOWDsMs  []float64
	Trend      stats.TrendResult
}

// Figure5Result is the experiment outcome.
type Figure5Result struct {
	Config Figure5Config
	Above  Figure5Stream // Ri > A: increasing OWDs AND Ro < Ri
	Below  Figure5Stream // Ri < A with a late burst: Ro < Ri but NO trend
	TrueA  float64
}

// Figure5 regenerates the paper's Figure 5: the OWD time series carries
// more information than the single Ro/Ri number. The above-A stream
// shows a clear increasing trend; the below-A stream suffers a late
// cross-traffic burst that depresses its output rate without creating a
// trend — so rate comparison misclassifies it and trend analysis does
// not.
func Figure5(cfg Figure5Config) (*Figure5Result, error) {
	c := cfg.withDefaults()
	res := &Figure5Result{Config: c, TrueA: (c.Capacity - c.CrossRate).MbpsOf()}

	run := func(ri unit.Rate, burst bool, label string) (Figure5Stream, error) {
		spec := probe.Periodic(ri, c.PktSize, c.StreamLen)
		start := 200 * time.Millisecond
		horizon := start + spec.Duration() + 2*time.Second
		// Smooth baseline cross traffic (small packets so it is nearly
		// fluid; the burst below provides the bursty event).
		cpl, err := scenario.Compile(scenario.Spec{
			Horizon: horizon,
			Hops: []scenario.Hop{{
				Capacity: c.Capacity,
				Traffic:  []scenario.Source{{Kind: scenario.CBR, Rate: c.CrossRate, PktSize: 300}},
			}},
		})
		if err != nil {
			return Figure5Stream{}, fmt.Errorf("exp: figure5: %w", err)
		}
		s, path := cpl.Sim, cpl.Path
		if burst {
			// A dense burst arriving during the last ~10% of the stream.
			burstStart := start + spec.Duration()*9/10
			for i := 0; i < c.BurstPackets; i++ {
				s.Inject(&sim.Packet{
					Size:  1500,
					Kind:  sim.KindCross,
					Flow:  9999,
					Route: path.Route(),
				}, burstStart+time.Duration(i)*20*time.Microsecond)
			}
		}
		rec, err := probe.SendOverSim(s, path.Route(), spec, start, 1)
		if err != nil {
			return Figure5Stream{}, err
		}
		s.RunUntil(horizon)
		owds := rec.OWDs()
		vals := make([]float64, len(owds))
		for i, d := range owds {
			vals[i] = d.Seconds()
		}
		return Figure5Stream{
			Label:      label,
			InputMbps:  rec.InputRate().MbpsOf(),
			OutputMbps: rec.OutputRate().MbpsOf(),
			RelOWDsMs:  rec.RelativeOWDsMs(),
			Trend:      stats.OWDTrend(vals, stats.TrendConfig{}),
		}, nil
	}

	// The two streams run in separate simulators, so they are two
	// runner jobs (both fully deterministic: the baseline cross traffic
	// is CBR and the burst is injected at fixed instants).
	streams, err := runner.All(2, func(i int) (Figure5Stream, error) {
		if i == 0 {
			return run(c.AboveRate, false, "Ri > A")
		}
		return run(c.BelowRate, true, "Ri < A, late burst")
	})
	if err != nil {
		return nil, fmt.Errorf("exp: figure5: %w", err)
	}
	res.Above, res.Below = streams[0], streams[1]
	return res, nil
}

// Table renders both streams' verdicts.
func (r *Figure5Result) Table() *Table {
	t := &Table{
		Title:  "Figure 5: OWD trend analysis vs the Ro/Ri ratio (A = 25 Mbps)",
		Header: []string{"stream", "Ri (Mbps)", "Ro (Mbps)", "Ro<Ri?", "PCT", "PDT", "trend verdict"},
		Notes: []string{
			"paper: the lower stream has Ro < Ri from a late burst, yet no increasing OWD trend",
		},
	}
	for _, s := range []Figure5Stream{r.Above, r.Below} {
		t.Rows = append(t.Rows, []string{
			s.Label, f2(s.InputMbps), f2(s.OutputMbps),
			fmt.Sprintf("%v", s.OutputMbps < s.InputMbps-0.01),
			f2(s.Trend.PCT), f2(s.Trend.PDT), s.Trend.Verdict.String(),
		})
	}
	return t
}

// Figure6Config parameterizes the variation-range sample path. Zero
// fields take the paper's values: τ = 10 ms over 20 s.
type Figure6Config struct {
	Tau       time.Duration // default 10 ms
	Span      time.Duration // default 20 s
	TraceSpan time.Duration // default = Span
	Seed      uint64
}

func (c Figure6Config) withDefaults() Figure6Config {
	if c.Tau == 0 {
		c.Tau = 10 * time.Millisecond
	}
	if c.Span == 0 {
		c.Span = 20 * time.Second
	}
	if c.TraceSpan == 0 {
		c.TraceSpan = c.Span
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Figure6Result is the experiment outcome.
type Figure6Result struct {
	Config Figure6Config
	// SeriesMbps is the avail-bw sample path at timescale Tau.
	SeriesMbps []float64
	MeanMbps   float64
	Q05, Q95   float64
	Min, Max   float64
}

// Figure6 regenerates the paper's Figure 6: a sample path of the
// avail-bw process at τ = 10 ms, whose variation range — roughly 60 to
// 110 Mbps on the paper's trace — is what iterative probing converges
// to, rather than any single number.
func Figure6(cfg Figure6Config) (*Figure6Result, error) {
	c := cfg.withDefaults()
	tr, err := trace.SynthesizeFGN(trace.FGNConfig{Span: c.TraceSpan}, rng.New(c.Seed))
	if err != nil {
		return nil, fmt.Errorf("exp: figure6: %w", err)
	}
	series := tr.AvailBwSeries(0, c.Span, c.Tau)
	vals := make([]float64, len(series))
	for i, a := range series {
		vals[i] = a.MbpsOf()
	}
	cdf := stats.NewCDF(vals)
	min, max := stats.MinMax(vals)
	return &Figure6Result{
		Config:     c,
		SeriesMbps: vals,
		MeanMbps:   stats.Mean(vals),
		Q05:        cdf.Quantile(0.05),
		Q95:        cdf.Quantile(0.95),
		Min:        min,
		Max:        max,
	}, nil
}

// Table summarizes the sample path.
func (r *Figure6Result) Table() *Table {
	return &Table{
		Title:  "Figure 6: variation range of an avail-bw sample path (tau = 10 ms)",
		Header: []string{"windows", "mean", "q05", "q95", "min", "max"},
		Rows: [][]string{{
			fmt.Sprintf("%d", len(r.SeriesMbps)),
			f2(r.MeanMbps), f2(r.Q05), f2(r.Q95), f2(r.Min), f2(r.Max),
		}},
		Notes: []string{
			"paper: the 10ms avail-bw varies roughly between 60 and 110 Mbps — a range, not a point",
		},
	}
}
