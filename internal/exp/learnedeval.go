package exp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"abw/internal/rng"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/stats"
	"abw/internal/tools/learned"
	"abw/internal/tools/registry"
)

// LearnedEvalConfig parameterizes the held-out evaluation of the
// learned estimator: the committed weights against the classical tools
// on the dataset experiment's seed-held-out test configurations.
type LearnedEvalConfig struct {
	// Dataset is the sweep to draw test configurations from (zero value:
	// the dataset defaults — whole catalog, scalings ×0.5/1.0/1.5,
	// three trials). Its Seed is overridden by Seed below.
	Dataset DatasetConfig
	// Weights is the model under evaluation (default: the committed
	// embedded weights).
	Weights *learned.Weights
	// Quick is accepted for CLI symmetry; the classical tools always run
	// with reduced (quick-matrix) effort here, since each test
	// configuration multiplies seven full tool runs.
	Quick bool
	Seed  uint64
}

// LearnedEvalScenario is one scenario's held-out comparison.
type LearnedEvalScenario struct {
	Name string
	// Configs counts the (scaling, trial) test configurations evaluated.
	Configs int
	// LearnedMAE is the learned estimator's mean absolute error in Mbps
	// over the scenario's test configurations; BestMAE is the smallest
	// classical-tool MAE over the same configurations, from BestTool.
	LearnedMAE float64
	BestTool   string
	BestMAE    float64
	// Win marks scenarios where the learned model is no worse than the
	// best classical tool.
	Win bool
}

// LearnedEvalResult is the evaluation outcome.
type LearnedEvalResult struct {
	Config    LearnedEvalConfig
	Tools     []string // classical tools compared against
	Scenarios []LearnedEvalScenario
	Wins      int
}

// evalConfig is one held-out (scenario, scaling, trial) configuration.
type evalConfig struct {
	scen    string
	scaling float64
	trial   int
	simSeed uint64
	// capacityMbps and trueMbps are the configuration's ground truth;
	// learnedErr is |prediction − truth| in Mbps.
	capacityMbps float64
	trueMbps     float64
	learnedErr   float64
}

// LearnedEval answers the question the eighth tool exists to pose: once
// the mapping from probe features to avail-bw is learned rather than
// derived, how does it compare on held-out conditions against the seven
// analytic mappings? The learned error comes from the dataset rows
// (mean per-stream prediction per configuration); each classical tool
// then runs on a fresh compilation of the same scaled scenario at the
// same seed, with quick-matrix effort. One runner job per
// (configuration, tool) — bit-identical at any worker count.
func LearnedEval(cfg LearnedEvalConfig) (*LearnedEvalResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Weights == nil {
		w, err := learned.Default()
		if err != nil {
			return nil, fmt.Errorf("exp: learnedeval: %w", err)
		}
		cfg.Weights = w
	}
	dcfg := cfg.Dataset
	dcfg.Seed = cfg.Seed
	if len(dcfg.Plan.RateFracs) == 0 {
		dcfg.Plan = cfg.Weights.Plan
	}
	ds, err := Dataset(dcfg)
	if err != nil {
		return nil, err
	}
	res := &LearnedEvalResult{Config: cfg}
	for _, d := range registry.Tools() {
		if !d.SimOnly && d.Name != "learned" {
			res.Tools = append(res.Tools, d.Name)
		}
	}

	// Fold the test rows into configurations; the learned prediction for
	// a configuration is the median of its per-stream predictions,
	// exactly how the online estimator aggregates streams.
	_, test := ds.SplitRows()
	var configs []evalConfig
	index := map[string]int{}
	preds := map[string][]float64{}
	for _, r := range test {
		key := datasetKey(r.Scenario, r.Scaling, r.Trial)
		if _, ok := index[key]; !ok {
			index[key] = len(configs)
			configs = append(configs, evalConfig{
				scen: r.Scenario, scaling: r.Scaling, trial: r.Trial,
				simSeed: r.SimSeed, capacityMbps: r.CapacityMbps, trueMbps: r.TrueAvailBwMbps,
			})
		}
		pred, err := cfg.Weights.Predict(r.ModelInput())
		if err != nil {
			return nil, fmt.Errorf("exp: learnedeval: %w", err)
		}
		preds[key] = append(preds[key], pred)
	}
	for key, i := range index {
		c := &configs[i]
		c.learnedErr = math.Abs(stats.Median(preds[key])*c.capacityMbps - c.trueMbps)
	}

	// Classical tools on the same configurations: fresh compilation of
	// the scaled scenario at the configuration's seed per tool, as in
	// the matrix experiment.
	shards := make([]*scenario.Shard, runner.Workers())
	type toolErr struct {
		config, tool int
		errMbps      float64
		failed       bool
	}
	errs, err := runner.AllShards(len(configs)*len(res.Tools), func(job, shard int) (toolErr, error) {
		ci, ti := job/len(res.Tools), job%len(res.Tools)
		c, tool := configs[ci], res.Tools[ti]
		var sh *scenario.Shard
		if shard < len(shards) {
			sh = shards[shard]
		}
		if sh == nil {
			sh = scenario.NewShard()
			if shard < len(shards) {
				shards[shard] = sh
			}
		}
		d, _ := scenario.Lookup(c.scen)
		footKey := fmt.Sprintf("%s@%g", c.scen, c.scaling)
		cpl, err := sh.CompileSpecAggregate(footKey, scenario.ScaleTraffic(d.Spec, c.scaling), c.simSeed, matrixRecorderEpoch)
		if err != nil {
			return toolErr{}, fmt.Errorf("exp: learnedeval: %s ×%g: %w", c.scen, c.scaling, err)
		}
		params := registry.Params{
			Capacity: cpl.Capacity,
			Rand:     rng.New(cfg.Seed + 1),
			Repeat:   6, MaxRounds: 6, // quick-matrix effort
		}
		rep, estErr := registry.Estimate(context.Background(), tool, params, cpl.Transport)
		sh.Recycle(footKey, cpl)
		if estErr != nil {
			return toolErr{config: ci, tool: ti, failed: true}, nil
		}
		return toolErr{config: ci, tool: ti, errMbps: math.Abs(rep.Point.MbpsOf() - cpl.TrueAvailBw.MbpsOf())}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("exp: learnedeval: %w", err)
	}

	// Aggregate per scenario. A tool that failed on any of a scenario's
	// configurations is scored on the ones it completed; a tool that
	// completed none is out of that scenario's contest.
	type agg struct {
		sum float64
		n   int
	}
	learnedAgg := map[string]*agg{}
	classical := map[string]map[string]*agg{} // scenario → tool → agg
	for _, c := range configs {
		if learnedAgg[c.scen] == nil {
			learnedAgg[c.scen] = &agg{}
			classical[c.scen] = map[string]*agg{}
		}
		learnedAgg[c.scen].sum += c.learnedErr
		learnedAgg[c.scen].n++
	}
	for _, e := range errs {
		if e.failed {
			continue
		}
		scen := configs[e.config].scen
		tool := res.Tools[e.tool]
		if classical[scen][tool] == nil {
			classical[scen][tool] = &agg{}
		}
		classical[scen][tool].sum += e.errMbps
		classical[scen][tool].n++
	}
	var names []string
	for scen := range learnedAgg {
		names = append(names, scen)
	}
	sort.Strings(names)
	// Keep catalog order for the table.
	ordered := make([]string, 0, len(names))
	for _, d := range scenario.Catalog() {
		for _, n := range names {
			if n == d.Name {
				ordered = append(ordered, n)
			}
		}
	}
	for _, scen := range ordered {
		la := learnedAgg[scen]
		s := LearnedEvalScenario{
			Name:       scen,
			Configs:    la.n,
			LearnedMAE: la.sum / float64(la.n),
			BestMAE:    math.Inf(1),
		}
		for _, tool := range res.Tools {
			a := classical[scen][tool]
			if a == nil || a.n == 0 {
				continue
			}
			if mae := a.sum / float64(a.n); mae < s.BestMAE {
				s.BestMAE, s.BestTool = mae, tool
			}
		}
		s.Win = s.BestTool == "" || s.LearnedMAE <= s.BestMAE
		if s.Win {
			res.Wins++
		}
		res.Scenarios = append(res.Scenarios, s)
	}
	return res, nil
}

// Table renders the comparison: per scenario, the learned model's
// held-out error against the best classical tool on the same
// configurations.
func (r *LearnedEvalResult) Table() *Table {
	t := &Table{
		Title:  "Learned estimator vs best classical tool on seed-held-out test configurations (MAE in Mbps)",
		Header: []string{"scenario", "test cfgs", "learned", "best classical", "best tool", "learned wins"},
		Notes: []string{
			"paper: every estimator is an ad-hoc mapping from probe timing signatures to avail-bw; " +
				"here that mapping is learned once over shared features and held to the analytic tools' standard",
			"classical tools run with quick-matrix effort on fresh compilations of the same scaled, same-seed scenarios",
			fmt.Sprintf("learned is no worse than the best classical tool on %d of %d scenarios", r.Wins, len(r.Scenarios)),
		},
	}
	for _, s := range r.Scenarios {
		win := ""
		if s.Win {
			win = "yes"
		}
		best := "x"
		bestTool := s.BestTool
		if bestTool == "" {
			bestTool = "-"
		} else {
			best = f2(s.BestMAE)
		}
		t.Rows = append(t.Rows, []string{
			s.Name, fmt.Sprintf("%d", s.Configs), f2(s.LearnedMAE), best, bestTool, win,
		})
	}
	return t
}
