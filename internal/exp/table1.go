package exp

import (
	"fmt"
	"math"
	"time"

	"abw/internal/fluid"
	"abw/internal/probe"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/unit"
)

// Table1Config parameterizes the packet-pair vs packet-train experiment.
// Zero fields take the paper's values.
type Table1Config struct {
	Capacity   unit.Rate    // default 50 Mbps
	CrossRate  unit.Rate    // default 25 Mbps
	ProbeRate  unit.Rate    // default 40 Mbps
	ProbeSize  unit.Bytes   // default 1500 B (the paper's L)
	CrossSizes []unit.Bytes // default 40, 512, 1500 B (the paper's Lc)
	SampleKs   []int        // default 10, 20, 50, 100
	Trials     int          // sample means per (Lc, k) cell, default 25
	Seed       uint64
}

func (c Table1Config) withDefaults() Table1Config {
	if c.Capacity == 0 {
		c.Capacity = 50 * unit.Mbps
	}
	if c.CrossRate == 0 {
		c.CrossRate = 25 * unit.Mbps
	}
	if c.ProbeRate == 0 {
		c.ProbeRate = 40 * unit.Mbps
	}
	if c.ProbeSize == 0 {
		c.ProbeSize = 1500
	}
	if len(c.CrossSizes) == 0 {
		c.CrossSizes = []unit.Bytes{40, 512, 1500}
	}
	if len(c.SampleKs) == 0 {
		c.SampleKs = []int{10, 20, 50, 100}
	}
	if c.Trials == 0 {
		c.Trials = 25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Table1Cell is the mean absolute relative error for one (Lc, k) pair.
type Table1Cell struct {
	CrossSize unit.Bytes
	K         int
	AbsError  float64
}

// Table1Result is the experiment outcome.
type Table1Result struct {
	Config Table1Config
	Cells  []Table1Cell
}

// Cell returns the error for a given cross size and sample count.
func (r *Table1Result) Cell(lc unit.Bytes, k int) (float64, bool) {
	for _, c := range r.Cells {
		if c.CrossSize == lc && c.K == k {
			return c.AbsError, true
		}
	}
	return 0, false
}

// Table1 regenerates the paper's Table 1: the effect of the cross
// traffic packet size Lc on packet-pair estimation error. At equal mean
// rate, fewer/larger cross packets quantize the per-pair samples more
// coarsely, so the k-pair sample mean is noisier. The paper reports 0%
// error at Lc=40 B and up to 40% at Lc=1500 B with k=10.
func Table1(cfg Table1Config) (*Table1Result, error) {
	c := cfg.withDefaults()
	res := &Table1Result{Config: c}
	trueA := (c.Capacity - c.CrossRate).MbpsOf()
	maxK := 0
	for _, k := range c.SampleKs {
		if k > maxK {
			maxK = k
		}
	}
	// One long-lived scenario per cross size: all trials sample it, so
	// the trials of one cross size are inherently serial — the runner
	// job is the whole cross-size column, seeded by its index.
	cells, err := runner.All(len(c.CrossSizes), func(li int) ([]Table1Cell, error) {
		lc := c.CrossSizes[li]
		// Pairs are spaced 5 ms apart; a trial of maxK pairs spans
		// maxK*5ms.
		horizon := time.Duration(c.Trials+2) * time.Duration(maxK+5) * 5 * time.Millisecond * 2
		cpl, err := scenario.Compile(scenario.Spec{
			Horizon: horizon,
			Seed:    scenario.Seed(c.Seed + uint64(li)*1000),
			Hops: []scenario.Hop{{
				Capacity: c.Capacity,
				Traffic:  []scenario.Source{{Kind: scenario.Poisson, Rate: c.CrossRate, PktSize: lc, SplitLabel: "cross"}},
			}},
		})
		if err != nil {
			return nil, fmt.Errorf("exp: table1: %w", err)
		}
		tp := cpl.Transport
		tp.Spacing = 5 * time.Millisecond
		// Collect Trials × maxK pair samples, then form sample means for
		// each k from disjoint consecutive blocks.
		errSums := make(map[int]float64)
		errCounts := make(map[int]int)
		for trial := 0; trial < c.Trials; trial++ {
			samples := make([]float64, 0, maxK)
			for len(samples) < maxK {
				rec, err := tp.Probe(probe.Pair(c.ProbeRate, c.ProbeSize))
				if err != nil {
					return nil, fmt.Errorf("exp: table1: %w", err)
				}
				ri, ro := rec.PairInputRate(0), rec.PairOutputRate(0)
				if ri <= 0 || ro <= 0 {
					continue
				}
				a, err := fluid.DirectEstimate(c.Capacity, ri, ro)
				if err != nil {
					continue
				}
				v := a.MbpsOf()
				if v < 0 {
					v = 0
				}
				if v > c.Capacity.MbpsOf() {
					v = c.Capacity.MbpsOf()
				}
				samples = append(samples, v)
			}
			for _, k := range c.SampleKs {
				var mean float64
				for _, v := range samples[:k] {
					mean += v
				}
				mean /= float64(k)
				errSums[k] += math.Abs(mean-trueA) / trueA
				errCounts[k]++
			}
		}
		col := make([]Table1Cell, 0, len(c.SampleKs))
		for _, k := range c.SampleKs {
			col = append(col, Table1Cell{
				CrossSize: lc,
				K:         k,
				AbsError:  errSums[k] / float64(errCounts[k]),
			})
		}
		return col, nil
	})
	if err != nil {
		return nil, err
	}
	for _, col := range cells {
		res.Cells = append(res.Cells, col...)
	}
	return res, nil
}

// Table renders the result in the paper's Table 1 layout.
func (r *Table1Result) Table() *Table {
	t := &Table{
		Title:  "Table 1: effect of cross-traffic packet size Lc on packet-pair error",
		Header: []string{"Lc"},
		Notes: []string{
			"paper: Lc=40B -> ~0 for all k; Lc=512B -> 31/8/5/2.5%; Lc=1500B -> 40/20/8/2%",
		},
	}
	for _, k := range r.Config.SampleKs {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	for _, lc := range r.Config.CrossSizes {
		row := []string{fmt.Sprintf("%dB", lc)}
		for _, k := range r.Config.SampleKs {
			if e, ok := r.Cell(lc, k); ok {
				row = append(row, pct(e))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
