package exp

import (
	"math"
	"reflect"
	"testing"

	"abw/internal/runner"
)

// evalConfigSmall keeps the classical-tool fan-out affordable for unit
// tests: three scenarios, nominal scaling, two trials.
func evalConfigSmall(seed uint64) LearnedEvalConfig {
	return LearnedEvalConfig{
		Dataset: DatasetConfig{
			Scenarios: []string{"canonical", "bursty", "fading"},
			Scalings:  []float64{1.0},
			Trials:    2,
		},
		Seed: seed,
	}
}

func TestLearnedEvalSmoke(t *testing.T) {
	res, err := LearnedEval(evalConfigSmall(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("scenarios = %d, want 3", len(res.Scenarios))
	}
	if len(res.Tools) != 7 {
		t.Errorf("classical tools = %v, want the seven non-learned ones", res.Tools)
	}
	for _, s := range res.Scenarios {
		if s.Configs < 1 {
			t.Errorf("%s: no test configurations", s.Name)
		}
		if math.IsNaN(s.LearnedMAE) || s.LearnedMAE < 0 {
			t.Errorf("%s: learned MAE %g", s.Name, s.LearnedMAE)
		}
		if s.BestTool == "" {
			t.Errorf("%s: no classical tool completed", s.Name)
		}
		if s.Win != (s.LearnedMAE <= s.BestMAE) {
			t.Errorf("%s: win flag inconsistent with MAEs", s.Name)
		}
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

// TestLearnedEvalDeterministic extends the determinism contract to the
// evaluation experiment: worker count must not move any number.
func TestLearnedEvalDeterministic(t *testing.T) {
	defer runner.SetWorkers(0)
	run := func(workers int) *LearnedEvalResult {
		runner.SetWorkers(workers)
		res, err := LearnedEval(evalConfigSmall(7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a.Scenarios, b.Scenarios) {
		t.Error("-parallel 1 and -parallel 8 evaluations differ")
	}
}
