package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"abw/internal/runner"
	"abw/internal/tools/learned"
)

// smallDataset is the cheap sweep the tests share: two scenarios, two
// scalings, two trials, short streams.
func smallDataset(seed uint64) DatasetConfig {
	return DatasetConfig{
		Scenarios: []string{"canonical", "bursty"},
		Scalings:  []float64{0.5, 1.0},
		Trials:    2,
		Plan: learned.ProbePlan{
			RateFracs:      []float64{0.5, 0.9},
			StreamLen:      20,
			PktSize:        1000,
			StreamsPerFrac: 1,
		},
		Seed: seed,
	}
}

func TestDatasetSmoke(t *testing.T) {
	res, err := Dataset(smallDataset(1))
	if err != nil {
		t.Fatal(err)
	}
	// 2 scenarios × 2 scalings × 2 trials × 2 fracs × 1 stream.
	if want := 16; len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	wantCols := len(CSVHeader())
	for i, r := range res.Rows {
		if r.Split != "train" && r.Split != "test" {
			t.Errorf("row %d: split %q", i, r.Split)
		}
		if r.CapacityMbps <= 0 {
			t.Errorf("row %d: capacity %g", i, r.CapacityMbps)
		}
		if r.Target < 0 || r.Target > 1 {
			t.Errorf("row %d: target %g outside [0, 1]", i, r.Target)
		}
		if got := 9 + len(r.ModelInput()); got != wantCols {
			t.Errorf("row %d: %d CSV fields, header has %d", i, got, wantCols)
		}
	}
	// Every (scenario, scaling) cell must keep at least one test trial.
	cells := map[string]bool{}
	for _, r := range res.Rows {
		if r.Split == "test" {
			cells[r.Scenario+"@"+f2(r.Scaling)] = true
		}
	}
	if len(cells) != 4 {
		t.Errorf("stratified split left %d of 4 cells with a test trial", len(cells))
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

// TestDatasetScalingMovesGroundTruth pins what the scalings are for:
// heavier cross traffic must not raise the scenario's avail-bw.
func TestDatasetScalingMovesGroundTruth(t *testing.T) {
	res, err := Dataset(smallDataset(1))
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]map[float64]float64{}
	for _, r := range res.Rows {
		if truth[r.Scenario] == nil {
			truth[r.Scenario] = map[float64]float64{}
		}
		truth[r.Scenario][r.Scaling] = r.TrueAvailBwMbps
	}
	for scen, byScale := range truth {
		if byScale[1.0] > byScale[0.5] {
			t.Errorf("%s: avail-bw rose from %g to %g Mbps as cross traffic scaled 0.5 → 1.0",
				scen, byScale[0.5], byScale[1.0])
		}
	}
}

// TestDatasetDeterministicCSV is the determinism contract on the
// dataset: same seed → byte-identical CSV at any worker count.
func TestDatasetDeterministicCSV(t *testing.T) {
	defer runner.SetWorkers(0)
	render := func(workers int) []byte {
		runner.SetWorkers(workers)
		res, err := Dataset(smallDataset(7))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	for _, workers := range []int{2, 8} {
		if !bytes.Equal(serial, render(workers)) {
			t.Errorf("CSV differs between -parallel 1 and -parallel %d", workers)
		}
	}
	if lines := bytes.Count(serial, []byte("\n")); lines != 17 {
		t.Errorf("CSV has %d lines, want 17 (header + 16 rows)", lines)
	}
}

func TestDatasetWriteJSON(t *testing.T) {
	res, err := Dataset(smallDataset(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string            `json:"schema"`
		Plan    learned.ProbePlan `json:"plan"`
		Columns []string          `json:"input_columns"`
		Rows    []json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "abw-dataset/1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Rows) != len(res.Rows) {
		t.Errorf("JSON has %d rows, want %d", len(doc.Rows), len(res.Rows))
	}
	if len(doc.Columns) != len(ModelInputNames()) {
		t.Errorf("JSON has %d input columns, want %d", len(doc.Columns), len(ModelInputNames()))
	}
}

func TestDatasetRejectsBadConfig(t *testing.T) {
	if _, err := Dataset(DatasetConfig{Scenarios: []string{"no-such-scenario"}}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := Dataset(DatasetConfig{Scalings: []float64{-1}}); err == nil {
		t.Error("negative scaling accepted")
	}
}

func TestModelInputNamesMatchHeader(t *testing.T) {
	head := CSVHeader()
	names := ModelInputNames()
	if got := head[len(head)-len(names):]; strings.Join(got, ",") != strings.Join(names, ",") {
		t.Errorf("CSV header tail %v != model input names %v", got, names)
	}
	derived := []string{"rate_frac", "log10_capacity", "direct_abw"}
	if got := strings.Join(names[len(names)-3:], ","); got != strings.Join(derived, ",") {
		t.Errorf("input columns must end %v; got %v", derived, names[len(names)-3:])
	}
}

func BenchmarkDataset(b *testing.B) {
	cfg := smallDataset(1)
	cfg.Scenarios = []string{"canonical"}
	cfg.Scalings = []float64{1.0}
	cfg.Trials = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Dataset(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
