package exp

import (
	"fmt"
	"time"

	"abw/internal/fluid"
	"abw/internal/probe"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/sim"
	"abw/internal/stats"
	"abw/internal/unit"
)

// Figure2Config parameterizes the probing-duration experiment. Zero
// fields take the paper's values: a 50 Mbps link, Poisson cross traffic
// at 25 Mbps, direct probing at Ri = 40 Mbps, 100 streams per duration.
type Figure2Config struct {
	Capacity  unit.Rate       // default 50 Mbps
	CrossRate unit.Rate       // default 25 Mbps
	ProbeRate unit.Rate       // default 40 Mbps
	PktSize   unit.Bytes      // default 1500 B
	Durations []time.Duration // default 25,50,100,150,200 ms
	Streams   int             // samples per duration, default 100
	Seed      uint64
}

func (c Figure2Config) withDefaults() Figure2Config {
	if c.Capacity == 0 {
		c.Capacity = 50 * unit.Mbps
	}
	if c.CrossRate == 0 {
		c.CrossRate = 25 * unit.Mbps
	}
	if c.ProbeRate == 0 {
		c.ProbeRate = 40 * unit.Mbps
	}
	if c.PktSize == 0 {
		c.PktSize = 1500
	}
	if len(c.Durations) == 0 {
		c.Durations = []time.Duration{
			25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
			150 * time.Millisecond, 200 * time.Millisecond,
		}
	}
	if c.Streams == 0 {
		c.Streams = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Figure2Point is one duration's comparison of sample vs population
// standard deviation.
type Figure2Point struct {
	Duration time.Duration
	// SampleSD is the stddev of the per-stream direct-probing avail-bw
	// samples (Mbps).
	SampleSD float64
	// PopulationSD is the stddev of the ground-truth avail-bw process at
	// the matching timescale (Mbps).
	PopulationSD float64
}

// Figure2Result is the experiment outcome.
type Figure2Result struct {
	Config Figure2Config
	Points []Figure2Point
}

// Figure2 regenerates the paper's Figure 2: the probing stream duration
// IS the averaging timescale. For each duration, 100 direct-probing
// samples are collected and their standard deviation compared with the
// population standard deviation of A_τ at τ = duration; the two curves
// should coincide and decrease with τ.
// Each duration is one runner job: it builds its own simulator and
// derives its randomness from the seed and the duration index alone.
func Figure2(cfg Figure2Config) (*Figure2Result, error) {
	c := cfg.withDefaults()
	res := &Figure2Result{Config: c}
	points, err := runner.All(len(c.Durations), func(di int) (Figure2Point, error) {
		d := c.Durations[di]
		spec := probe.PeriodicForDuration(c.ProbeRate, c.PktSize, d)
		// Horizon: generous upper bound on the virtual time the probing
		// loop can consume (spacing + stream + resolution slack per
		// stream), so cross traffic always outlives the measurement.
		spacing := spec.Duration() + 40*time.Millisecond
		perStream := spacing + spec.Duration() + 100*time.Millisecond
		horizon := time.Duration(c.Streams+3) * perStream
		cpl, err := scenario.Compile(scenario.Spec{
			Horizon: horizon,
			Seed:    scenario.Seed(c.Seed + uint64(di)),
			Hops: []scenario.Hop{{
				Capacity: c.Capacity,
				Traffic:  []scenario.Source{{Kind: scenario.Poisson, Rate: c.CrossRate, SplitLabel: "cross"}},
			}},
		})
		if err != nil {
			return Figure2Point{}, fmt.Errorf("exp: figure2: %w", err)
		}
		rec := cpl.Recorders[0]
		tp := cpl.Transport
		tp.Spacing = spacing
		samples := make([]float64, 0, c.Streams)
		for i := 0; i < c.Streams; i++ {
			r, err := tp.Probe(spec)
			if err != nil {
				return Figure2Point{}, fmt.Errorf("exp: figure2: %w", err)
			}
			ri, ro := r.InputRate(), r.OutputRate()
			if ri <= 0 || ro <= 0 {
				continue
			}
			a, err := fluid.DirectEstimate(c.Capacity, ri, ro)
			if err != nil {
				continue
			}
			samples = append(samples, a.MbpsOf())
		}
		// Population: ground-truth avail-bw series at τ = stream
		// duration over the probed span, computed from cross-traffic
		// arrivals only — the probe streams themselves must not count
		// against the avail-bw they are measuring.
		probeEnd := tp.Now()
		if probeEnd > horizon {
			probeEnd = horizon
		}
		var pop []float64
		for at := 50 * time.Millisecond; at+spec.Duration() <= probeEnd; at += spec.Duration() {
			a := c.Capacity - rec.ArrivalRate(at, spec.Duration(), sim.CrossOnly)
			if a < 0 {
				a = 0
			}
			pop = append(pop, a.MbpsOf())
		}
		return Figure2Point{
			Duration:     d,
			SampleSD:     stats.StdDev(samples),
			PopulationSD: stats.StdDev(pop),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// Table renders the figure's two curves.
func (r *Figure2Result) Table() *Table {
	t := &Table{
		Title:  "Figure 2: probing duration controls the averaging timescale",
		Header: []string{"duration", "population SD (Mbps)", "sample SD (Mbps)"},
		Notes: []string{
			"paper: the two standard deviations are almost equal and fall with the timescale",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{p.Duration.String(), f2(p.PopulationSD), f2(p.SampleSD)})
	}
	return t
}
