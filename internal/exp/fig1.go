package exp

import (
	"fmt"
	"time"

	"abw/internal/rng"
	"abw/internal/runner"
	"abw/internal/stats"
	"abw/internal/trace"
)

// Figure1Config parameterizes the sampling-variability experiment:
// "ignoring the variability of the avail-bw process". Zero fields take
// the paper's values.
type Figure1Config struct {
	// Taus are the averaging timescales (default 1 ms, 10 ms, 100 ms).
	Taus []time.Duration
	// SamplesPerTrial is k, the samples averaged per trial (default 20,
	// the paper's choice).
	SamplesPerTrial int
	// Trials is the number of sample means per CDF (default 400).
	Trials int
	// TraceSpan is the synthetic trace length (default 30 s).
	TraceSpan time.Duration
	// Seed drives trace synthesis and sampling.
	Seed uint64
}

func (c Figure1Config) withDefaults() Figure1Config {
	if len(c.Taus) == 0 {
		c.Taus = []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	}
	if c.SamplesPerTrial == 0 {
		c.SamplesPerTrial = 20
	}
	if c.Trials == 0 {
		c.Trials = 400
	}
	if c.TraceSpan == 0 {
		c.TraceSpan = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Figure1Series is the error CDF for one averaging timescale.
type Figure1Series struct {
	Tau time.Duration
	// Errors are the per-trial relative errors ε of the k-sample mean.
	Errors []float64
	// CDF summarizes them.
	CDF *stats.CDF
}

// WithinPct returns the fraction of trials with |ε| below the bound.
func (s *Figure1Series) WithinPct(bound float64) float64 {
	n := 0
	for _, e := range s.Errors {
		if e >= -bound && e <= bound {
			n++
		}
	}
	return float64(n) / float64(len(s.Errors))
}

// Figure1Result is the full experiment outcome.
type Figure1Result struct {
	Config Figure1Config
	// TrueMeanMbps is the trace's long-run avail-bw.
	TrueMeanMbps float64
	Series       []Figure1Series
}

// Figure1 regenerates the paper's Figure 1: the CDF of the relative
// error of the 20-sample Poisson-sampled mean of the avail-bw process,
// at three averaging timescales, on a bursty LRD trace. The paper's
// claim: at τ = 1 ms the errors are large; at τ ≥ 10 ms they tighten —
// pure sampling variability, with every sample individually exact.
//
// Each (tau, trial) cell is one runner job: the trace is shared
// read-only, and every trial derives its own sampling stream from the
// experiment seed and its indices, so the result is identical at every
// worker count.
func Figure1(cfg Figure1Config) (*Figure1Result, error) {
	c := cfg.withDefaults()
	root := rng.New(c.Seed)
	tr, err := trace.SynthesizeFGN(trace.FGNConfig{Span: c.TraceSpan}, root.Split("trace"))
	if err != nil {
		return nil, fmt.Errorf("exp: figure1: %w", err)
	}
	trueMean := float64(tr.Capacity-tr.MeanRate()) / 1e6
	res := &Figure1Result{Config: c, TrueMeanMbps: trueMean}
	errs, err := runner.All(len(c.Taus)*c.Trials, func(job int) (float64, error) {
		ti, trial := job/c.Trials, job%c.Trials
		r := rng.Derive(c.Seed, fmt.Sprintf("fig1/sampling/tau%d/trial%d", ti, trial))
		samples, err := tr.PoissonSample(c.Taus[ti], c.SamplesPerTrial, r)
		if err != nil {
			return 0, fmt.Errorf("exp: figure1: %w", err)
		}
		var mean float64
		for _, s := range samples {
			mean += s.MbpsOf()
		}
		mean /= float64(len(samples))
		return stats.RelativeError(mean, trueMean), nil
	})
	if err != nil {
		return nil, err
	}
	for ti, tau := range c.Taus {
		tauErrs := errs[ti*c.Trials : (ti+1)*c.Trials]
		res.Series = append(res.Series, Figure1Series{Tau: tau, Errors: tauErrs, CDF: stats.NewCDF(tauErrs)})
	}
	return res, nil
}

// Table renders the result in the rows the figure's discussion uses.
func (r *Figure1Result) Table() *Table {
	t := &Table{
		Title:  "Figure 1: relative error of the k=20 sample mean (Poisson sampling)",
		Header: []string{"tau", "P(|eps|<5%)", "q05", "q25", "median", "q75", "q95"},
		Notes: []string{
			fmt.Sprintf("trace: OC-3-like synthetic, mean avail-bw %.1f Mbps, %d trials", r.TrueMeanMbps, r.Config.Trials),
			"paper: errors significant below tau=10ms; hundreds of samples needed at 1ms for eps<5%",
		},
	}
	for _, s := range r.Series {
		t.Rows = append(t.Rows, []string{
			s.Tau.String(),
			pct(s.WithinPct(0.05)),
			f3(s.CDF.Quantile(0.05)),
			f3(s.CDF.Quantile(0.25)),
			f3(s.CDF.Quantile(0.50)),
			f3(s.CDF.Quantile(0.75)),
			f3(s.CDF.Quantile(0.95)),
		})
	}
	return t
}
