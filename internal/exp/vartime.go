package exp

import (
	"fmt"
	"math"
	"time"

	"abw/internal/rng"
	"abw/internal/runner"
	"abw/internal/stats"
	"abw/internal/trace"
)

// VarTimeConfig parameterizes the variance–timescale study from the
// paper's Section 1: how Var[A_τ] decays with the averaging timescale,
// and how the decay law depends on the correlation structure
// (Equations 4 and 5) — "largely ignored so far in the avail-bw
// estimation literature".
type VarTimeConfig struct {
	// BaseTau is the finest timescale (default 1 ms).
	BaseTau time.Duration
	// Levels is the number of dyadic aggregation levels (default 8).
	Levels int
	// Hursts are the envelope Hurst parameters to contrast (default
	// 0.5 — short-range dependent — and 0.8 — LRD like real traffic).
	Hursts []float64
	// TraceSpan is the synthetic trace length (default 30 s).
	TraceSpan time.Duration
	Seed      uint64
}

func (c VarTimeConfig) withDefaults() VarTimeConfig {
	if c.BaseTau == 0 {
		c.BaseTau = time.Millisecond
	}
	if c.Levels == 0 {
		c.Levels = 8
	}
	if len(c.Hursts) == 0 {
		c.Hursts = []float64{0.5, 0.8}
	}
	if c.TraceSpan == 0 {
		c.TraceSpan = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// VarTimeSeries is the variance–timescale relation for one trace.
type VarTimeSeries struct {
	Hurst float64
	// Taus[i] is BaseTau·2^i; Variances[i] is Var[A_τ] in Mbps².
	Taus      []time.Duration
	Variances []float64
	// FittedSlope is the log-log decay slope; Eq. (4) predicts −1,
	// Eq. (5) predicts −2(1−H).
	FittedSlope float64
	// EstimatedHurst is recovered from the slope via H = 1 + slope/2.
	EstimatedHurst float64
}

// VarTimeResult is the study outcome.
type VarTimeResult struct {
	Config VarTimeConfig
	Series []VarTimeSeries
}

// VarianceTimescale measures Var[A_τ] across dyadic timescales on
// synthetic traces with controlled correlation structure, exhibiting
// both decay laws of the paper's Equations (4) and (5): the IID 1/k law
// at H = 0.5 and the slower k^{−2(1−H)} law under long-range dependence.
// Each Hurst parameter synthesizes and analyzes its own trace, so it is
// one runner job.
func VarianceTimescale(cfg VarTimeConfig) (*VarTimeResult, error) {
	c := cfg.withDefaults()
	res := &VarTimeResult{Config: c}
	out, err := runner.All(len(c.Hursts), func(hi int) (VarTimeSeries, error) {
		h := c.Hursts[hi]
		tr, err := trace.SynthesizeFGN(trace.FGNConfig{
			Span:   c.TraceSpan,
			Hurst:  h,
			Window: c.BaseTau,
		}, rng.New(c.Seed))
		if err != nil {
			return VarTimeSeries{}, fmt.Errorf("exp: vartime: %w", err)
		}
		base := make([]float64, 0)
		for at := time.Duration(0); at+c.BaseTau <= tr.Span; at += c.BaseTau {
			base = append(base, tr.AvailBw(at, c.BaseTau).MbpsOf())
		}
		series := VarTimeSeries{Hurst: h}
		var lx, ly []float64
		for lvl := 0; lvl < c.Levels; lvl++ {
			k := 1 << lvl
			agg := stats.Aggregate(base, k)
			if len(agg) < 4 {
				break
			}
			v := stats.Variance(agg)
			series.Taus = append(series.Taus, c.BaseTau*time.Duration(k))
			series.Variances = append(series.Variances, v)
			lx = append(lx, math.Log(float64(k)))
			ly = append(ly, math.Log(v))
		}
		if len(lx) >= 2 {
			if _, slope, _, err := stats.LinearFit(lx, ly); err == nil {
				series.FittedSlope = slope
				hEst := 1 + slope/2
				if hEst < 0 {
					hEst = 0
				}
				if hEst > 1 {
					hEst = 1
				}
				series.EstimatedHurst = hEst
			}
		}
		return series, nil
	})
	if err != nil {
		return nil, err
	}
	res.Series = out
	return res, nil
}

// Table renders the decay laws side by side.
func (r *VarTimeResult) Table() *Table {
	t := &Table{
		Title:  "Equations (4)/(5): variance of A_tau vs averaging timescale",
		Header: []string{"H (config)", "fitted slope", "Eq. prediction", "H (recovered)"},
		Notes: []string{
			"Eq.(4): IID traffic decays as k^-1; Eq.(5): self-similar as k^-2(1-H)",
		},
	}
	for _, s := range r.Series {
		pred := -1.0
		if s.Hurst > 0.5 {
			pred = -2 * (1 - s.Hurst)
		}
		t.Rows = append(t.Rows, []string{
			f2(s.Hurst), f3(s.FittedSlope), f3(pred), f2(s.EstimatedHurst),
		})
	}
	return t
}
