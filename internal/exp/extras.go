package exp

import (
	"fmt"
	"math"
	"time"

	"abw/internal/fluid"
	"abw/internal/probe"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/stats"
	"abw/internal/unit"
)

// LatencyAccuracyConfig parameterizes the "faster estimation is better"
// fallacy study: a grid over stream count and stream duration, measuring
// estimation error against total probing time.
type LatencyAccuracyConfig struct {
	Capacity  unit.Rate       // default 50 Mbps
	CrossRate unit.Rate       // default 25 Mbps
	ProbeRate unit.Rate       // default 40 Mbps
	Durations []time.Duration // default 10, 50, 200 ms
	Counts    []int           // streams averaged, default 5, 20, 80
	Trials    int             // error samples per cell, default 15
	Seed      uint64
}

func (c LatencyAccuracyConfig) withDefaults() LatencyAccuracyConfig {
	if c.Capacity == 0 {
		c.Capacity = 50 * unit.Mbps
	}
	if c.CrossRate == 0 {
		c.CrossRate = 25 * unit.Mbps
	}
	if c.ProbeRate == 0 {
		c.ProbeRate = 40 * unit.Mbps
	}
	if len(c.Durations) == 0 {
		c.Durations = []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond}
	}
	if len(c.Counts) == 0 {
		c.Counts = []int{5, 20, 80}
	}
	if c.Trials == 0 {
		c.Trials = 15
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LatencyAccuracyCell is one (duration, count) grid point.
type LatencyAccuracyCell struct {
	Duration time.Duration
	Streams  int
	// ProbingTime is the total virtual time spent probing.
	ProbingTime time.Duration
	// RMSError is the root-mean-square relative error across trials.
	RMSError float64
}

// LatencyAccuracyResult is the study outcome.
type LatencyAccuracyResult struct {
	Config LatencyAccuracyConfig
	Cells  []LatencyAccuracyCell
}

// LatencyAccuracy quantifies the estimation latency/accuracy tradeoff:
// fewer or shorter streams finish sooner but err more, because shorter
// streams mean a smaller averaging timescale (larger population
// variance) and fewer streams mean fewer samples (Equation 11).
// Every (duration, count, trial) cell is one runner job with its own
// simulator, seeded — as before the refactor — from the experiment seed
// and the three indices. Per-cell aggregation happens afterwards in
// index order, so the floating-point summation order (and hence the
// result) is identical at every worker count.
func LatencyAccuracy(cfg LatencyAccuracyConfig) (*LatencyAccuracyResult, error) {
	c := cfg.withDefaults()
	res := &LatencyAccuracyResult{Config: c}
	trueA := (c.Capacity - c.CrossRate).MbpsOf()
	type trialOut struct {
		probing time.Duration
		sq      float64
		ok      bool
	}
	jobs := len(c.Durations) * len(c.Counts) * c.Trials
	outs, err := runner.All(jobs, func(job int) (trialOut, error) {
		di := job / (len(c.Counts) * c.Trials)
		ni := job / c.Trials % len(c.Counts)
		trial := job % c.Trials
		d, n := c.Durations[di], c.Counts[ni]
		spec := probe.PeriodicForDuration(c.ProbeRate, 1500, d)
		horizon := time.Duration(n+2)*(2*spec.Duration()+20*time.Millisecond) + time.Second
		cpl, err := scenario.Compile(scenario.Spec{
			Horizon: horizon,
			Seed:    scenario.Seed(c.Seed + uint64(di*1000+ni*100+trial)),
			Hops: []scenario.Hop{{
				Capacity: c.Capacity,
				Traffic:  []scenario.Source{{Kind: scenario.Poisson, Rate: c.CrossRate, SplitLabel: "cross"}},
			}},
		})
		if err != nil {
			return trialOut{}, fmt.Errorf("exp: latency-accuracy: %w", err)
		}
		tp := cpl.Transport
		tp.Spacing = 10 * time.Millisecond
		t0 := tp.Now()
		var samples []float64
		for i := 0; i < n; i++ {
			rec, err := tp.Probe(spec)
			if err != nil {
				return trialOut{}, fmt.Errorf("exp: latency-accuracy: %w", err)
			}
			ri, ro := rec.InputRate(), rec.OutputRate()
			if ri <= 0 || ro <= 0 {
				continue
			}
			a, err := fluid.DirectEstimate(c.Capacity, ri, ro)
			if err != nil {
				continue
			}
			samples = append(samples, a.MbpsOf())
		}
		out := trialOut{probing: tp.Now() - t0}
		if len(samples) > 0 {
			e := (stats.Mean(samples) - trueA) / trueA
			out.sq, out.ok = e*e, true
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for di, d := range c.Durations {
		for ni, n := range c.Counts {
			var sqSum float64
			var probing time.Duration
			base := (di*len(c.Counts) + ni) * c.Trials
			for _, o := range outs[base : base+c.Trials] {
				probing += o.probing
				if o.ok {
					sqSum += o.sq
				}
			}
			res.Cells = append(res.Cells, LatencyAccuracyCell{
				Duration:    d,
				Streams:     n,
				ProbingTime: probing / time.Duration(c.Trials),
				RMSError:    math.Sqrt(sqSum / float64(c.Trials)),
			})
		}
	}
	return res, nil
}

// Cell returns the grid point for a duration/count pair.
func (r *LatencyAccuracyResult) Cell(d time.Duration, n int) (LatencyAccuracyCell, bool) {
	for _, c := range r.Cells {
		if c.Duration == d && c.Streams == n {
			return c, true
		}
	}
	return LatencyAccuracyCell{}, false
}

// Table renders the tradeoff grid.
func (r *LatencyAccuracyResult) Table() *Table {
	t := &Table{
		Title:  "Fallacy 3: faster estimation is better — latency vs accuracy",
		Header: []string{"stream duration", "streams", "probing time", "RMS rel. error"},
		Notes: []string{
			"the stream duration and count are accuracy knobs, not implementation parameters",
		},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			c.Duration.String(), fmt.Sprintf("%d", c.Streams), c.ProbingTime.Round(time.Millisecond).String(), pct(c.RMSError),
		})
	}
	return t
}

// NarrowVsTightConfig parameterizes the capacity-estimation pitfall
// demonstration: a Fast Ethernet narrow link followed by a loaded OC-3
// tight link.
type NarrowVsTightConfig struct {
	NarrowCapacity unit.Rate // default 100 Mbps (Fast Ethernet)
	TightCapacity  unit.Rate // default OC-3
	NarrowCross    unit.Rate // default 10 Mbps → A_narrow = 90
	TightCross     unit.Rate // default 100 Mbps → A_tight ≈ 55.5
	ProbeRate      unit.Rate // default 70 Mbps (> A_tight)
	Trains         int       // default 20
	TrainLen       int       // default 100
	Seed           uint64
}

func (c NarrowVsTightConfig) withDefaults() NarrowVsTightConfig {
	if c.NarrowCapacity == 0 {
		c.NarrowCapacity = unit.FastEthernet
	}
	if c.TightCapacity == 0 {
		c.TightCapacity = unit.OC3
	}
	if c.NarrowCross == 0 {
		c.NarrowCross = 10 * unit.Mbps
	}
	if c.TightCross == 0 {
		c.TightCross = 100 * unit.Mbps
	}
	if c.ProbeRate == 0 {
		c.ProbeRate = 70 * unit.Mbps
	}
	if c.Trains == 0 {
		c.Trains = 20
	}
	if c.TrainLen == 0 {
		c.TrainLen = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NarrowVsTightResult is the demonstration outcome.
type NarrowVsTightResult struct {
	Config NarrowVsTightConfig
	// TrueAvailBwMbps is the end-to-end avail-bw (the tight link's).
	TrueAvailBwMbps float64
	// WithTightCapacity / WithNarrowCapacity are the direct-probing
	// estimates using the correct C_t vs the capacity a capacity-
	// estimation tool would report (C_n).
	WithTightCapacity, WithNarrowCapacity float64
}

// NarrowVsTight demonstrates the paper's fifth misconception: feeding
// the narrow-link capacity (what bprobe-style tools measure) into the
// direct-probing equation instead of the tight-link capacity biases the
// estimate.
func NarrowVsTight(cfg NarrowVsTightConfig) (*NarrowVsTightResult, error) {
	c := cfg.withDefaults()
	spec := probe.Periodic(c.ProbeRate, 1500, c.TrainLen)
	horizon := time.Duration(c.Trains+2) * (2*spec.Duration() + 100*time.Millisecond)
	cpl, err := scenario.Compile(scenario.Spec{
		Horizon: horizon,
		Seed:    scenario.Seed(c.Seed),
		Hops: []scenario.Hop{
			{Capacity: c.NarrowCapacity, Traffic: []scenario.Source{
				{Kind: scenario.Poisson, Rate: c.NarrowCross, SplitLabel: "narrow", Flow: 1}}},
			{Capacity: c.TightCapacity, Traffic: []scenario.Source{
				{Kind: scenario.Poisson, Rate: c.TightCross, SplitLabel: "tight", Flow: 2}}},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("exp: narrow-vs-tight: %w", err)
	}
	tp := cpl.Transport
	var withTight, withNarrow []float64
	for i := 0; i < c.Trains; i++ {
		rec, err := tp.Probe(spec)
		if err != nil {
			return nil, fmt.Errorf("exp: narrow-vs-tight: %w", err)
		}
		ri, ro := rec.InputRate(), rec.OutputRate()
		if ri <= 0 || ro <= 0 {
			continue
		}
		if a, err := fluid.DirectEstimate(c.TightCapacity, ri, ro); err == nil {
			withTight = append(withTight, a.MbpsOf())
		}
		if a, err := fluid.DirectEstimate(c.NarrowCapacity, ri, ro); err == nil {
			withNarrow = append(withNarrow, a.MbpsOf())
		}
	}
	if len(withTight) == 0 || len(withNarrow) == 0 {
		return nil, fmt.Errorf("exp: narrow-vs-tight: no measurable trains")
	}
	return &NarrowVsTightResult{
		Config:             c,
		TrueAvailBwMbps:    (c.TightCapacity - c.TightCross).MbpsOf(),
		WithTightCapacity:  stats.Mean(withTight),
		WithNarrowCapacity: stats.Mean(withNarrow),
	}, nil
}

// Table renders the comparison.
func (r *NarrowVsTightResult) Table() *Table {
	errT := math.Abs(r.WithTightCapacity-r.TrueAvailBwMbps) / r.TrueAvailBwMbps
	errN := math.Abs(r.WithNarrowCapacity-r.TrueAvailBwMbps) / r.TrueAvailBwMbps
	return &Table{
		Title:  "Pitfall 5: narrow-link capacity is not the tight-link capacity",
		Header: []string{"variant", "estimate (Mbps)", "true A (Mbps)", "rel. error"},
		Rows: [][]string{
			{"Eq.(9) with C_t (OC-3)", f2(r.WithTightCapacity), f2(r.TrueAvailBwMbps), pct(errT)},
			{"Eq.(9) with C_n (FastE)", f2(r.WithNarrowCapacity), f2(r.TrueAvailBwMbps), pct(errN)},
		},
		Notes: []string{
			"capacity tools estimate the narrow link; direct probing needs the tight link",
		},
	}
}
