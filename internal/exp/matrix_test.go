package exp

import (
	"reflect"
	"testing"

	"abw/internal/runner"
)

// TestMatrixDeterminism is the runner contract applied to the matrix:
// identical results at every shard count, because each (scenario, tool)
// cell derives everything from the config seed and its own indices.
// The scenario list is long enough that every shard compiles several
// scenarios out of its arena — including repeats of scenarios it has
// recycled — so recycled-memory reuse is under test, not just the
// fan-out.
func TestMatrixDeterminism(t *testing.T) {
	defer runner.SetWorkers(0)
	cfg := MatrixConfig{
		Tools:     []string{"delphi", "spruce"},
		Scenarios: []string{"canonical", "narrowtight", "bursty", "multibottleneck"},
		Quick:     true,
		Seed:      7,
	}
	runner.SetWorkers(1)
	serial, err := Matrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		runner.SetWorkers(workers)
		parallel, err := Matrix(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("matrix results differ between -parallel 1 and -parallel %d", workers)
		}
	}
}

// TestMatrixGroundTruth checks the matrix against the catalog's known
// conditions: sane estimates on the canonical path, and the
// narrow≠tight flag raised exactly where the catalog says so.
func TestMatrixGroundTruth(t *testing.T) {
	res, err := Matrix(MatrixConfig{
		Tools:     []string{"delphi"},
		Scenarios: []string{"canonical", "narrowtight"},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	for _, cell := range res.Cells {
		if cell.Err != nil {
			t.Fatalf("%s/%s: %v", cell.Scenario, cell.Tool, cell.Err)
		}
	}
	canon, _ := res.Cell("canonical", "delphi")
	if got := canon.Report.Point.MbpsOf(); got < 15 || got > 35 {
		t.Errorf("delphi on canonical = %.2f Mbps, want ~25", got)
	}
	for _, sc := range res.Scenarios {
		wantSplit := sc.Name == "narrowtight"
		if (sc.TightLink != sc.NarrowLink) != wantSplit {
			t.Errorf("%s: tight %d narrow %d, split=%v unexpected", sc.Name, sc.TightLink, sc.NarrowLink, wantSplit)
		}
	}
	tab := res.Table()
	if len(tab.Rows) != 2 || len(tab.Header) != 5 {
		t.Errorf("table shape %dx%d, want 2 rows x 5 cols", len(tab.Rows), len(tab.Header))
	}
}
