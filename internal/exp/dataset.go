package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/rng"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/tools/learned"
	"abw/internal/unit"
)

// DatasetConfig parameterizes the dataset experiment: the sweep of the
// scenario catalog × cross-traffic scalings × seeds that produces the
// (features, ground-truth) rows the learned estimator trains on — the
// dataset-generation loop of the UDP_ML approach, pointed at the whole
// catalog instead of one fixed topology.
type DatasetConfig struct {
	// Scenarios are catalog names (default: the whole catalog).
	Scenarios []string
	// Scalings multiply every cross-traffic source's rate (default
	// 0.5, 1.0, 1.5: light, nominal, heavy — heavy pushes several
	// scenarios toward zero avail-bw, which the model must learn too).
	Scalings []float64
	// Trials is the number of independent seeds per (scenario, scaling)
	// (default 3).
	Trials int
	// Plan is the probing schedule per compiled scenario (default
	// learned.DefaultPlan, the plan the committed weights use).
	Plan learned.ProbePlan
	// TestFrac is the held-out fraction of (scenario, scaling, trial)
	// configurations (default 0.25). The split is derived purely from
	// Seed via rng.Derive, stratified so every (scenario, scaling) keeps
	// at least one test trial.
	TestFrac float64
	// Seed drives trial seeds and the split.
	Seed uint64
}

func (c DatasetConfig) withDefaults() DatasetConfig {
	if len(c.Scenarios) == 0 {
		c.Scenarios = scenario.Names()
	}
	if len(c.Scalings) == 0 {
		c.Scalings = []float64{0.5, 1.0, 1.5}
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if len(c.Plan.RateFracs) == 0 {
		c.Plan = learned.DefaultPlan()
	}
	if c.TestFrac == 0 {
		c.TestFrac = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// DatasetRow is one probe stream reduced to its features plus the
// scenario's analytic ground truth — one training (or test) example.
type DatasetRow struct {
	Scenario string  `json:"scenario"`
	Scaling  float64 `json:"scaling"`
	Trial    int     `json:"trial"`
	// SimSeed is the seed the scenario was compiled with, derived from
	// the config seed and the (scenario, scaling, trial) label.
	SimSeed uint64 `json:"sim_seed"`
	// Split is "train" or "test"; all rows of one (scenario, scaling,
	// trial) configuration share it, so no configuration leaks across.
	Split string `json:"split"`
	// RateFrac is the probing rate as a fraction of capacity; Stream
	// indexes the repetition at that rate.
	RateFrac float64 `json:"rate_frac"`
	Stream   int     `json:"stream"`
	// CapacityMbps and TrueAvailBwMbps are the analytic tight-link
	// ground truth; Target is the dimensionless label A/C the model
	// fits.
	CapacityMbps    float64 `json:"capacity_mbps"`
	TrueAvailBwMbps float64 `json:"true_abw_mbps"`
	Target          float64 `json:"target"`
	// Features is the canonical per-stream feature vector.
	Features probe.FeatureVector `json:"features"`
}

// ModelInput flattens the row into the learned model's raw input:
// feature values plus the derived inputs — the same vector
// learned.ModelInput assembles online.
func (r DatasetRow) ModelInput() []float64 {
	return learned.ModelInput(r.Features, r.RateFrac, r.CapacityMbps)
}

// ModelInputNames returns the input column names, matching ModelInput.
func ModelInputNames() []string {
	return learned.ModelInputNames(probe.FeatureNames())
}

// DatasetResult is the sweep outcome: rows in deterministic order
// (scenario-major, scaling, trial, rate fraction, stream).
type DatasetResult struct {
	Config DatasetConfig
	Rows   []DatasetRow
}

// datasetKey labels one (scenario, scaling, trial) configuration; it is
// both the rng derivation label for the trial's sim seed and the unit
// of the train/test split.
func datasetKey(scen string, scaling float64, trial int) string {
	return fmt.Sprintf("dataset/%s/%s/%d", scen, strconv.FormatFloat(scaling, 'g', -1, 64), trial)
}

// datasetSplit assigns each (scenario, scaling, trial) configuration to
// train or test purely from the seed: a configuration is a test one
// when its derived uniform draw falls under TestFrac, stratified so
// every (scenario, scaling) cell keeps at least one test trial (the
// trial with the cell's minimum draw). Pure function of the config —
// identical at any worker count.
func datasetSplit(c DatasetConfig) map[string]string {
	split := make(map[string]string, len(c.Scenarios)*len(c.Scalings)*c.Trials)
	for _, scen := range c.Scenarios {
		for _, sc := range c.Scalings {
			minKey := ""
			minDraw := 2.0
			anyTest := false
			for tr := 0; tr < c.Trials; tr++ {
				key := datasetKey(scen, sc, tr)
				draw := rng.Derive(c.Seed, "split/"+key).Float64()
				if draw < c.TestFrac {
					split[key] = "test"
					anyTest = true
				} else {
					split[key] = "train"
				}
				if draw < minDraw {
					minDraw, minKey = draw, key
				}
			}
			if !anyTest && minKey != "" {
				split[minKey] = "test"
			}
		}
	}
	return split
}

// Dataset sweeps the catalog × scalings × seeds and reduces every probe
// stream to one row. Each (scenario, scaling, trial) configuration is
// one runner job compiling its own scenario on the worker shard's
// arena, so rows are bit-identical at any -parallel and pooling
// setting.
func Dataset(cfg DatasetConfig) (*DatasetResult, error) {
	c := cfg.withDefaults()
	for _, name := range c.Scenarios {
		if _, ok := scenario.Lookup(name); !ok {
			return nil, fmt.Errorf("exp: dataset: unknown scenario %q (have %v)", name, scenario.Names())
		}
	}
	for _, sc := range c.Scalings {
		if sc <= 0 {
			return nil, fmt.Errorf("exp: dataset: scaling %g must be positive", sc)
		}
	}
	split := datasetSplit(c)

	type job struct {
		scen    string
		scaling float64
		trial   int
	}
	var jobs []job
	for _, scen := range c.Scenarios {
		for _, sc := range c.Scalings {
			for tr := 0; tr < c.Trials; tr++ {
				jobs = append(jobs, job{scen, sc, tr})
			}
		}
	}

	shards := make([]*scenario.Shard, runner.Workers())
	perJob, err := runner.AllShards(len(jobs), func(i, shard int) ([]DatasetRow, error) {
		j := jobs[i]
		key := datasetKey(j.scen, j.scaling, j.trial)
		simSeed := rng.Derive(c.Seed, key).Uint64()

		var sh *scenario.Shard
		if shard < len(shards) {
			sh = shards[shard]
		}
		if sh == nil {
			sh = scenario.NewShard()
			if shard < len(shards) {
				shards[shard] = sh
			}
		}
		d, _ := scenario.Lookup(j.scen)
		footKey := fmt.Sprintf("%s@%s", j.scen, strconv.FormatFloat(j.scaling, 'g', -1, 64))
		cpl, err := sh.CompileSpecAggregate(footKey, scenario.ScaleTraffic(d.Spec, j.scaling), simSeed, matrixRecorderEpoch)
		if err != nil {
			return nil, fmt.Errorf("exp: dataset: %s ×%g: %w", j.scen, j.scaling, err)
		}
		target := 0.0
		if cpl.Capacity > 0 {
			target = float64(cpl.TrueAvailBw) / float64(cpl.Capacity)
		}
		rows := make([]DatasetRow, 0, len(c.Plan.RateFracs)*c.Plan.StreamsPerFrac)
		for _, frac := range c.Plan.RateFracs {
			rate := unit.Rate(float64(cpl.Capacity) * frac)
			if rate <= 0 {
				continue
			}
			spec := probe.Periodic(rate, c.Plan.PktSize, c.Plan.StreamLen)
			for s := 0; s < c.Plan.StreamsPerFrac; s++ {
				rec, err := core.Probe(context.Background(), cpl.Transport, spec)
				if err != nil {
					return nil, fmt.Errorf("exp: dataset: %s ×%g probe: %w", j.scen, j.scaling, err)
				}
				rows = append(rows, DatasetRow{
					Scenario:        j.scen,
					Scaling:         j.scaling,
					Trial:           j.trial,
					SimSeed:         simSeed,
					Split:           split[key],
					RateFrac:        frac,
					Stream:          s,
					CapacityMbps:    cpl.Capacity.MbpsOf(),
					TrueAvailBwMbps: cpl.TrueAvailBw.MbpsOf(),
					Target:          target,
					Features:        probe.ExtractFeatures(rec),
				})
			}
		}
		sh.Recycle(footKey, cpl)
		return rows, nil
	})
	if err != nil {
		return nil, fmt.Errorf("exp: dataset: %w", err)
	}
	res := &DatasetResult{Config: c}
	for _, rows := range perJob {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// SplitRows partitions the rows by their split tag.
func (r *DatasetResult) SplitRows() (train, test []DatasetRow) {
	for _, row := range r.Rows {
		if row.Split == "test" {
			test = append(test, row)
		} else {
			train = append(train, row)
		}
	}
	return train, test
}

// CSVHeader returns the dataset's CSV column names: row identity, the
// ground truth, then the model input columns.
func CSVHeader() []string {
	head := []string{"scenario", "scaling", "trial", "sim_seed", "split", "stream",
		"capacity_mbps", "true_abw_mbps", "target"}
	return append(head, ModelInputNames()...)
}

// WriteCSV writes the rows in deterministic textual form: floats in
// Go's shortest round-trip formatting, so the same dataset is
// byte-identical regardless of worker count or platform.
func (r *DatasetResult) WriteCSV(w io.Writer) error {
	row := make([]byte, 0, 256)
	appendField := func(s string) {
		if len(row) > 0 {
			row = append(row, ',')
		}
		row = append(row, s...)
	}
	flush := func() error {
		row = append(row, '\n')
		_, err := w.Write(row)
		row = row[:0]
		return err
	}
	for _, h := range CSVHeader() {
		appendField(h)
	}
	if err := flush(); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, d := range r.Rows {
		appendField(d.Scenario)
		appendField(g(d.Scaling))
		appendField(strconv.Itoa(d.Trial))
		appendField(strconv.FormatUint(d.SimSeed, 10))
		appendField(d.Split)
		appendField(strconv.Itoa(d.Stream))
		appendField(g(d.CapacityMbps))
		appendField(g(d.TrueAvailBwMbps))
		appendField(g(d.Target))
		for _, v := range d.ModelInput() {
			appendField(g(v))
		}
		if err := flush(); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the rows as one JSON document with the resolved
// sweep parameters alongside.
func (r *DatasetResult) WriteJSON(w io.Writer) error {
	doc := struct {
		Schema    string            `json:"schema"`
		Scenarios []string          `json:"scenarios"`
		Scalings  []float64         `json:"scalings"`
		Trials    int               `json:"trials"`
		Seed      uint64            `json:"seed"`
		Plan      learned.ProbePlan `json:"plan"`
		Columns   []string          `json:"input_columns"`
		Rows      []DatasetRow      `json:"rows"`
	}{
		Schema:    "abw-dataset/1",
		Scenarios: r.Config.Scenarios,
		Scalings:  r.Config.Scalings,
		Trials:    r.Config.Trials,
		Seed:      r.Config.Seed,
		Plan:      r.Config.Plan,
		Columns:   ModelInputNames(),
		Rows:      r.Rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Table summarizes the sweep for EXPERIMENTS.md: per-scenario row
// counts, split sizes, and the ground-truth range the scalings induce.
func (r *DatasetResult) Table() *Table {
	t := &Table{
		Title:  "Dataset: probe-feature rows swept over catalog × cross-traffic scalings × seeds",
		Header: []string{"scenario", "rows", "train", "test", "min A/C", "max A/C"},
		Notes: []string{
			"one row per probe stream: the canonical FeatureVector plus the analytic ground truth",
			"split derived purely from the seed per (scenario, scaling, trial); at least one test configuration per (scenario, scaling)",
		},
	}
	for _, scen := range r.Config.Scenarios {
		var rows, train, test int
		minT, maxT := 2.0, -1.0
		for _, d := range r.Rows {
			if d.Scenario != scen {
				continue
			}
			rows++
			if d.Split == "test" {
				test++
			} else {
				train++
			}
			if d.Target < minT {
				minT = d.Target
			}
			if d.Target > maxT {
				maxT = d.Target
			}
		}
		if rows == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			scen, fmt.Sprintf("%d", rows), fmt.Sprintf("%d", train), fmt.Sprintf("%d", test),
			f2(minT), f2(maxT),
		})
	}
	return t
}
