package exp

import (
	"fmt"
	"time"

	"abw/internal/probe"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/stats"
	"abw/internal/unit"
)

// CrossModel names the cross-traffic models of Figure 3.
type CrossModel string

// Figure 3's three burstiness levels.
const (
	ModelCBR     CrossModel = "CBR"
	ModelPoisson CrossModel = "Poisson"
	ModelPareto  CrossModel = "Pareto On-Off"
)

// Figure3Config parameterizes the burstiness experiment. Zero fields
// take the paper's values: C=50 Mbps, A=25 Mbps, Ri swept 5→30 Mbps,
// 500 streams per point.
type Figure3Config struct {
	Capacity  unit.Rate
	CrossRate unit.Rate
	Rates     []unit.Rate
	Models    []CrossModel
	Streams   int // per (model, Ri) point, default 500
	StreamLen int // packets per stream, default 50
	PktSize   unit.Bytes
	Seed      uint64
}

func (c Figure3Config) withDefaults() Figure3Config {
	if c.Capacity == 0 {
		c.Capacity = 50 * unit.Mbps
	}
	if c.CrossRate == 0 {
		c.CrossRate = 25 * unit.Mbps
	}
	if len(c.Rates) == 0 {
		for ri := 5.0; ri <= 30.0; ri += 2.5 {
			c.Rates = append(c.Rates, unit.Rate(ri)*unit.Mbps)
		}
	}
	if len(c.Models) == 0 {
		c.Models = []CrossModel{ModelCBR, ModelPoisson, ModelPareto}
	}
	if c.Streams == 0 {
		c.Streams = 500
	}
	if c.StreamLen == 0 {
		c.StreamLen = 50
	}
	if c.PktSize == 0 {
		c.PktSize = 1500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RatioSeries is one model's mean Ro/Ri curve.
type RatioSeries struct {
	Model  CrossModel
	Rates  []unit.Rate
	Ratios []float64
}

// RatioAt returns the mean ratio at the given rate.
func (s *RatioSeries) RatioAt(ri unit.Rate) (float64, bool) {
	for i, r := range s.Rates {
		if r == ri {
			return s.Ratios[i], true
		}
	}
	return 0, false
}

// Figure3Result is the experiment outcome.
type Figure3Result struct {
	Config Figure3Config
	Series []RatioSeries
}

// Figure3 regenerates the paper's Figure 3: the mean Ro/Ri response
// curve under CBR, Poisson and Pareto ON-OFF cross traffic at equal mean
// avail-bw. The paper's claim: with bursty traffic the ratio dips below
// 1 well before Ri reaches A, biasing estimators downward.
// Each (model, rate) grid point is one runner job: it builds its own
// simulator and seeds it from the experiment seed and its grid indices.
func Figure3(cfg Figure3Config) (*Figure3Result, error) {
	c := cfg.withDefaults()
	res := &Figure3Result{Config: c}
	ratios, err := runner.All(len(c.Models)*len(c.Rates), func(job int) (float64, error) {
		mi, riIdx := job/len(c.Rates), job%len(c.Rates)
		model, ri := c.Models[mi], c.Rates[riIdx]
		spec := probe.Periodic(ri, c.PktSize, c.StreamLen)
		horizon := time.Duration(c.Streams+4) * (2*spec.Duration() + 100*time.Millisecond)
		cpl, err := scenario.Compile(scenario.Spec{
			Horizon: horizon,
			Seed:    scenario.Seed(c.Seed + uint64(mi)*10000 + uint64(riIdx)*100),
			Hops: []scenario.Hop{{
				Capacity: c.Capacity,
				Traffic:  []scenario.Source{crossSource(model, c.CrossRate)},
			}},
		})
		if err != nil {
			return 0, fmt.Errorf("exp: figure3: %w", err)
		}
		tp := cpl.Transport
		tp.Spacing = spec.Duration() + 20*time.Millisecond
		var ratios []float64
		for i := 0; i < c.Streams; i++ {
			rec, err := tp.Probe(spec)
			if err != nil {
				return 0, fmt.Errorf("exp: figure3: %w", err)
			}
			if r := rec.Ratio(); r > 0 {
				ratios = append(ratios, r)
			}
		}
		return stats.Mean(ratios), nil
	})
	if err != nil {
		return nil, err
	}
	for mi, model := range c.Models {
		series := RatioSeries{Model: model}
		for riIdx, ri := range c.Rates {
			series.Rates = append(series.Rates, ri)
			series.Ratios = append(series.Ratios, ratios[mi*len(c.Rates)+riIdx])
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// crossSource maps a Figure 3 cross model onto a scenario source. The
// SplitLabel overrides pin the rng derivation labels these experiments
// used before the scenario subsystem existed, so their numbers are
// bit-identical across the refactor.
func crossSource(m CrossModel, rate unit.Rate) scenario.Source {
	switch m {
	case ModelPoisson:
		return scenario.Source{Kind: scenario.Poisson, Rate: rate, SplitLabel: "poisson"}
	case ModelPareto:
		return scenario.Source{Kind: scenario.ParetoOnOff, Rate: rate, SplitLabel: "pareto"}
	default:
		return scenario.Source{Kind: scenario.CBR, Rate: rate}
	}
}

// Table renders the three curves side by side.
func (r *Figure3Result) Table() *Table {
	t := &Table{
		Title:  "Figure 3: effect of cross-traffic burstiness on Ro/Ri (A = 25 Mbps)",
		Header: []string{"Ri (Mbps)"},
		Notes: []string{
			"paper: CBR stays ~1.0 until Ri > A; Poisson and Pareto ON-OFF dip below 1 well before",
		},
	}
	for _, s := range r.Series {
		t.Header = append(t.Header, string(s.Model))
	}
	for i, ri := range r.Config.Rates {
		row := []string{f2(ri.MbpsOf())}
		for _, s := range r.Series {
			row = append(row, f3(s.Ratios[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure4Config parameterizes the multiple-bottleneck experiment. Zero
// fields take the paper's values: 1, 3 and 5 equally tight links with
// one-hop-persistent Poisson cross traffic.
type Figure4Config struct {
	Capacity   unit.Rate
	CrossRate  unit.Rate
	Rates      []unit.Rate
	TightLinks []int
	Streams    int // per point, default 500
	StreamLen  int
	PktSize    unit.Bytes
	Seed       uint64
}

func (c Figure4Config) withDefaults() Figure4Config {
	if c.Capacity == 0 {
		c.Capacity = 50 * unit.Mbps
	}
	if c.CrossRate == 0 {
		c.CrossRate = 25 * unit.Mbps
	}
	if len(c.Rates) == 0 {
		for ri := 5.0; ri <= 30.0; ri += 2.5 {
			c.Rates = append(c.Rates, unit.Rate(ri)*unit.Mbps)
		}
	}
	if len(c.TightLinks) == 0 {
		c.TightLinks = []int{1, 3, 5}
	}
	if c.Streams == 0 {
		c.Streams = 500
	}
	if c.StreamLen == 0 {
		c.StreamLen = 50
	}
	if c.PktSize == 0 {
		c.PktSize = 1500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Figure4Series is one path length's Ro/Ri curve.
type Figure4Series struct {
	TightLinks int
	Rates      []unit.Rate
	Ratios     []float64
}

// Figure4Result is the experiment outcome.
type Figure4Result struct {
	Config Figure4Config
	Series []Figure4Series
}

// Figure4 regenerates the paper's Figure 4: with multiple equally tight
// links carrying one-hop-persistent Poisson cross traffic, the Ro/Ri
// ratio at Ri = A falls as the number of tight links grows — compounding
// underestimation.
// Each (path length, rate) grid point is one runner job, seeded from
// the experiment seed and its grid indices.
func Figure4(cfg Figure4Config) (*Figure4Result, error) {
	c := cfg.withDefaults()
	res := &Figure4Result{Config: c}
	ratios, err := runner.All(len(c.TightLinks)*len(c.Rates), func(job int) (float64, error) {
		hi, riIdx := job/len(c.Rates), job%len(c.Rates)
		hops, ri := c.TightLinks[hi], c.Rates[riIdx]
		spec := probe.Periodic(ri, c.PktSize, c.StreamLen)
		horizon := time.Duration(c.Streams+4) * (2*spec.Duration() + 100*time.Millisecond)
		sp := scenario.Spec{
			Horizon: horizon,
			Seed:    scenario.Seed(c.Seed + uint64(hi)*100000 + uint64(riIdx)*100),
		}
		for h := 0; h < hops; h++ {
			sp.Hops = append(sp.Hops, scenario.Hop{
				Capacity: c.Capacity,
				Traffic:  []scenario.Source{{Kind: scenario.Poisson, Rate: c.CrossRate}},
			})
		}
		cpl, err := scenario.Compile(sp)
		if err != nil {
			return 0, fmt.Errorf("exp: figure4: %w", err)
		}
		tp := cpl.Transport
		tp.Spacing = spec.Duration() + 20*time.Millisecond
		var ratios []float64
		for i := 0; i < c.Streams; i++ {
			rec, err := tp.Probe(spec)
			if err != nil {
				return 0, fmt.Errorf("exp: figure4: %w", err)
			}
			if r := rec.Ratio(); r > 0 {
				ratios = append(ratios, r)
			}
		}
		return stats.Mean(ratios), nil
	})
	if err != nil {
		return nil, err
	}
	for hi, hops := range c.TightLinks {
		series := Figure4Series{TightLinks: hops}
		for riIdx, ri := range c.Rates {
			series.Rates = append(series.Rates, ri)
			series.Ratios = append(series.Ratios, ratios[hi*len(c.Rates)+riIdx])
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// RatioAt returns the series ratio at a given rate.
func (s *Figure4Series) RatioAt(ri unit.Rate) (float64, bool) {
	for i, r := range s.Rates {
		if r == ri {
			return s.Ratios[i], true
		}
	}
	return 0, false
}

// Table renders the per-path-length curves.
func (r *Figure4Result) Table() *Table {
	t := &Table{
		Title:  "Figure 4: effect of multiple tight links on Ro/Ri (A = 25 Mbps per link)",
		Header: []string{"Ri (Mbps)"},
		Notes: []string{
			"paper: at Ri = A the ratio falls as tight links are added",
		},
	}
	for _, s := range r.Series {
		t.Header = append(t.Header, fmt.Sprintf("%d tight", s.TightLinks))
	}
	for i, ri := range r.Config.Rates {
		row := []string{f2(ri.MbpsOf())}
		for _, s := range r.Series {
			row = append(row, f3(s.Ratios[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
