package exp

import (
	"math"
	"testing"
	"time"
)

func TestVarianceTimescaleDecayLaws(t *testing.T) {
	res, err := VarianceTimescale(VarTimeConfig{TraceSpan: 20 * time.Second, Levels: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	var iid, lrd VarTimeSeries
	for _, s := range res.Series {
		if s.Hurst == 0.5 {
			iid = s
		} else {
			lrd = s
		}
	}
	// Eq. (4): IID slope ≈ −1. The fGn envelope at H=0.5 is white, but
	// the local Poisson arrivals add their own (also IID) noise, so the
	// combined slope stays near −1.
	if math.Abs(iid.FittedSlope+1) > 0.25 {
		t.Errorf("H=0.5 slope = %.3f, Eq.(4) predicts -1", iid.FittedSlope)
	}
	// Eq. (5): LRD decays slower; slope clearly above (less negative
	// than) the IID slope, and the recovered Hurst is > 0.65.
	if lrd.FittedSlope <= iid.FittedSlope {
		t.Errorf("LRD slope %.3f should exceed IID slope %.3f", lrd.FittedSlope, iid.FittedSlope)
	}
	// The local Poisson arrival noise (slope −1) mixes with the LRD
	// envelope at fine scales, biasing the recovered Hurst downward;
	// require it clearly above the IID value rather than at 0.8.
	if lrd.EstimatedHurst < 0.6 {
		t.Errorf("recovered Hurst = %.2f, want > 0.6 for H=0.8 traffic", lrd.EstimatedHurst)
	}
	// Variance must decrease with timescale in both cases.
	for _, s := range res.Series {
		for i := 1; i < len(s.Variances); i++ {
			if s.Variances[i] >= s.Variances[i-1] {
				t.Errorf("H=%.1f: variance not decreasing at level %d", s.Hurst, i)
			}
		}
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

func TestCompareToolsIntegration(t *testing.T) {
	// The repository-wide integration test: every estimator over the
	// same CBR path must land near the true avail-bw. CBR is the fluid
	// limit, where every technique's model assumptions hold.
	res, err := CompareTools(CompareConfig{Model: ModelCBR})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 8 {
		t.Fatalf("entries = %d, want 8", len(res.Entries))
	}
	trueA := res.TrueAvailBw.MbpsOf()
	// Per-tool tolerance bands: pair/chirp-based techniques are coarser
	// by design (one pair per probed rate), and the learned model fits
	// the whole catalog rather than this path.
	tol := map[string]float64{
		"pathload": 6, "topp": 8, "pathchirp": 12,
		"ptr": 8, "igi": 8, "delphi": 3, "spruce": 5,
		"learned": 10,
	}
	for _, e := range res.Entries {
		if e.Err != nil {
			t.Errorf("%s failed: %v", e.Tool, e.Err)
			continue
		}
		got := e.Report.Point.MbpsOf()
		if math.Abs(got-trueA) > tol[e.Tool] {
			t.Errorf("%s estimate = %.2f Mbps, want %.1f ± %.0f", e.Tool, got, trueA, tol[e.Tool])
		}
		if e.Report.Streams <= 0 || e.Report.Packets <= 0 {
			t.Errorf("%s: effort not accounted: %+v", e.Tool, e.Report)
		}
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

func TestCompareToolsPoissonAllPlausible(t *testing.T) {
	res, err := CompareTools(CompareConfig{Model: ModelPoisson, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Entries {
		if e.Err != nil {
			t.Errorf("%s failed: %v", e.Tool, e.Err)
			continue
		}
		got := e.Report.Point.MbpsOf()
		// Under bursty traffic the paper predicts underestimation, so
		// accept a wide band below truth but cap the overshoot.
		if got <= 0 || got > 40 {
			t.Errorf("%s estimate = %.2f Mbps out of plausible (0, 40]", e.Tool, got)
		}
	}
}

func TestCompareEntryLookup(t *testing.T) {
	res, err := CompareTools(CompareConfig{Model: ModelCBR, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Entry("pathload"); !ok {
		t.Error("pathload entry missing")
	}
	if _, ok := res.Entry("nosuch"); ok {
		t.Error("phantom entry found")
	}
}
