// Package exp contains one experiment per table and figure in the
// paper's evaluation, plus the supporting studies its text argues from.
// Every experiment is a pure function of its config (seeded), returns a
// structured result, and can render itself in the same rows/series the
// paper reports. cmd/abwsim exposes them on the command line;
// EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid with notes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f formats a float with sensible precision for table cells.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
