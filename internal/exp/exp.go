// Package exp contains one experiment per table and figure in the
// paper's evaluation, plus the supporting studies its text argues from.
// Every experiment is a pure function of its config (seeded), returns a
// structured result, and can render itself in the same rows/series the
// paper reports. cmd/abwsim exposes them on the command line;
// EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid with notes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Markdown writes the table as a GitHub-flavored markdown table under a
// heading — the building block of the generated EXPERIMENTS.md.
func (t *Table) Markdown(w io.Writer) {
	esc := func(cells []string) []string {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = strings.ReplaceAll(c, "|", `\|`)
		}
		return out
	}
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(esc(t.Header), " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		cells := make([]string, len(t.Header))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(esc(cells), " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

// PaperClaim returns the note carrying the paper's reported values —
// the "paper" side of EXPERIMENTS.md's paper-vs-measured rows. Tables
// prefix that note with "paper:"; the first note is the fallback.
func (t *Table) PaperClaim() string {
	for _, n := range t.Notes {
		if strings.HasPrefix(n, "paper:") {
			return strings.TrimSpace(strings.TrimPrefix(n, "paper:"))
		}
	}
	if len(t.Notes) > 0 {
		return t.Notes[0]
	}
	return ""
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f formats a float with sensible precision for table cells.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
