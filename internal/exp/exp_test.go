package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"abw/internal/stats"
	"abw/internal/unit"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1SpreadShrinksWithTimescale(t *testing.T) {
	res, err := Figure1(Figure1Config{
		Trials:    150,
		TraceSpan: 12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	spread := func(s Figure1Series) float64 {
		return s.CDF.Quantile(0.95) - s.CDF.Quantile(0.05)
	}
	s1, s10, s100 := spread(res.Series[0]), spread(res.Series[1]), spread(res.Series[2])
	if !(s1 > s10 && s10 > s100) {
		t.Errorf("error spread should shrink with tau: 1ms=%.3f 10ms=%.3f 100ms=%.3f", s1, s10, s100)
	}
	// The paper's headline: at 1ms, 20 samples are NOT enough for
	// reliable 5% accuracy; at 100ms they are much better.
	if res.Series[0].WithinPct(0.05) > 0.9 {
		t.Errorf("1ms errors implausibly tight: %.2f within 5%%", res.Series[0].WithinPct(0.05))
	}
	if res.Series[2].WithinPct(0.05) < res.Series[0].WithinPct(0.05) {
		t.Error("100ms should beat 1ms on P(|eps|<5%)")
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

func TestFigure2SampleTracksPopulation(t *testing.T) {
	res, err := Figure2(Figure2Config{
		Durations: []time.Duration{25 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond},
		Streams:   60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.SampleSD <= 0 || p.PopulationSD <= 0 {
			t.Fatalf("degenerate SDs at %v: %+v", p.Duration, p)
		}
		ratio := p.SampleSD / p.PopulationSD
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("duration %v: sample SD %.2f vs population %.2f (ratio %.2f), want agreement",
				p.Duration, p.SampleSD, p.PopulationSD, ratio)
		}
	}
	// Variance falls with the averaging timescale (both curves).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if !(last.PopulationSD < first.PopulationSD) {
		t.Errorf("population SD should fall with duration: %.2f → %.2f", first.PopulationSD, last.PopulationSD)
	}
	if !(last.SampleSD < first.SampleSD) {
		t.Errorf("sample SD should fall with duration: %.2f → %.2f", first.SampleSD, last.SampleSD)
	}
}

func TestTable1ErrorGrowsWithCrossPacketSize(t *testing.T) {
	res, err := Table1(Table1Config{
		CrossSizes: []unit.Bytes{40, 1500},
		SampleKs:   []int{10, 100},
		Trials:     12,
	})
	if err != nil {
		t.Fatal(err)
	}
	small10, ok := res.Cell(40, 10)
	if !ok {
		t.Fatal("missing cell 40/10")
	}
	large10, _ := res.Cell(1500, 10)
	large100, _ := res.Cell(1500, 100)
	if large10 <= small10 {
		t.Errorf("k=10: error with 1500B cross (%.3f) should exceed 40B cross (%.3f)", large10, small10)
	}
	if large100 >= large10 {
		t.Errorf("1500B: error should fall with k: k=10 %.3f vs k=100 %.3f", large10, large100)
	}
	if small10 > 0.08 {
		t.Errorf("40B cross error %.3f should be near zero (paper reports 0)", small10)
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

func TestFigure3BurstinessOrdering(t *testing.T) {
	rates := []unit.Rate{15 * unit.Mbps, 22.5 * unit.Mbps, 27.5 * unit.Mbps}
	res, err := Figure3(Figure3Config{Rates: rates, Streams: 120, StreamLen: 40})
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[CrossModel]*RatioSeries{}
	for i := range res.Series {
		byModel[res.Series[i].Model] = &res.Series[i]
	}
	// CBR at Ri < A: ratio ≈ 1 (the fluid prediction).
	if r, _ := byModel[ModelCBR].RatioAt(22.5 * unit.Mbps); r < 0.995 {
		t.Errorf("CBR ratio at 22.5 < A: %.4f, want ~1", r)
	}
	// All models at Ri > A: ratio < 1.
	for m, s := range byModel {
		if r, _ := s.RatioAt(27.5 * unit.Mbps); r >= 1 {
			t.Errorf("%s ratio at 27.5 > A: %.4f, want < 1", m, r)
		}
	}
	// The burstiness signature just below A: bursty traffic compresses
	// the stream before the fluid knee.
	cbr, _ := byModel[ModelCBR].RatioAt(22.5 * unit.Mbps)
	poisson, _ := byModel[ModelPoisson].RatioAt(22.5 * unit.Mbps)
	pareto, _ := byModel[ModelPareto].RatioAt(22.5 * unit.Mbps)
	if !(pareto < poisson && poisson < cbr) {
		t.Errorf("burstiness ordering at Ri=22.5: pareto %.4f, poisson %.4f, cbr %.4f", pareto, poisson, cbr)
	}
}

func TestFigure4MoreTightLinksCompressMore(t *testing.T) {
	rates := []unit.Rate{25 * unit.Mbps}
	res, err := Figure4(Figure4Config{Rates: rates, Streams: 100, StreamLen: 40})
	if err != nil {
		t.Fatal(err)
	}
	get := func(h int) float64 {
		for _, s := range res.Series {
			if s.TightLinks == h {
				r, _ := s.RatioAt(25 * unit.Mbps)
				return r
			}
		}
		t.Fatalf("missing series for %d links", h)
		return 0
	}
	r1, r3, r5 := get(1), get(3), get(5)
	if !(r1 > r3 && r3 > r5) {
		t.Errorf("Ro/Ri at Ri=A should fall with tight links: 1→%.4f 3→%.4f 5→%.4f", r1, r3, r5)
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

func TestFigure5TrendBeatsRatio(t *testing.T) {
	res, err := Figure5(Figure5Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Above-A stream: rate comparison and trend both say overload.
	if res.Above.OutputMbps >= res.Above.InputMbps {
		t.Errorf("above stream: Ro %.2f should be < Ri %.2f", res.Above.OutputMbps, res.Above.InputMbps)
	}
	if res.Above.Trend.Verdict != stats.TrendIncreasing {
		t.Errorf("above stream: trend = %v, want increasing", res.Above.Trend.Verdict)
	}
	// Below-A stream with a late burst: the rate comparison is fooled...
	if res.Below.OutputMbps >= res.Below.InputMbps-0.01 {
		t.Errorf("below stream: burst should depress Ro (%.2f vs Ri %.2f)", res.Below.OutputMbps, res.Below.InputMbps)
	}
	// ...but the trend analysis is not.
	if res.Below.Trend.Verdict == stats.TrendIncreasing {
		t.Errorf("below stream misclassified as increasing (PCT=%.2f PDT=%.2f)",
			res.Below.Trend.PCT, res.Below.Trend.PDT)
	}
	if len(res.Above.RelOWDsMs) < 150 || len(res.Below.RelOWDsMs) < 150 {
		t.Error("OWD series incomplete")
	}
}

func TestFigure6VariationRange(t *testing.T) {
	res, err := Figure6(Figure6Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SeriesMbps) != 2000 {
		t.Errorf("series windows = %d, want 2000 (20s / 10ms)", len(res.SeriesMbps))
	}
	if res.Max-res.Min < 25 {
		t.Errorf("variation range = [%.0f, %.0f], want a wide band like the paper's 60–110", res.Min, res.Max)
	}
	if res.MeanMbps < 60 || res.MeanMbps > 110 {
		t.Errorf("mean avail-bw = %.1f, want in the 60–110 band", res.MeanMbps)
	}
}

func TestFigure7SignFlips(t *testing.T) {
	res, err := Figure7(Figure7Config{
		Windows:  []int{4, 256},
		Duration: 12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.AvailBwMbps
	get := func(ct Figure7CrossType, wr int) float64 {
		for _, s := range res.Series {
			if s.CrossType == ct {
				v, _ := s.At(wr)
				return v
			}
		}
		t.Fatalf("missing series %s", ct)
		return 0
	}
	// Small window: throughput far below avail-bw for every cross type
	// (window-limited regime).
	for _, ct := range res.Config.CrossTypes {
		if v := get(ct, 4); v >= a {
			t.Errorf("%s at Wr=4: %.2f Mbps, want < avail-bw %.0f", ct, v, a)
		}
	}
	// Large window: responsive (buffer-limited TCP) cross traffic cedes
	// bandwidth — throughput exceeds the nominal avail-bw; unresponsive
	// UDP does not allow that.
	if v := get(CrossBufferLimited, 256); v <= a {
		t.Errorf("buffer-limited cross at Wr=256: %.2f Mbps, want > avail-bw %.0f", v, a)
	}
	if v := get(CrossParetoUDP, 256); v > a*1.15 {
		t.Errorf("Pareto UDP cross at Wr=256: %.2f Mbps, want <= ~avail-bw %.0f", v, a)
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

func TestLatencyAccuracyTradeoff(t *testing.T) {
	res, err := LatencyAccuracy(LatencyAccuracyConfig{
		Durations: []time.Duration{10 * time.Millisecond, 200 * time.Millisecond},
		Counts:    []int{5, 40},
		Trials:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	short5, _ := res.Cell(10*time.Millisecond, 5)
	long40, _ := res.Cell(200*time.Millisecond, 40)
	if long40.RMSError >= short5.RMSError {
		t.Errorf("more+longer streams should err less: short/few %.3f vs long/many %.3f",
			short5.RMSError, long40.RMSError)
	}
	if long40.ProbingTime <= short5.ProbingTime {
		t.Error("more+longer streams must take longer — that is the tradeoff")
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

func TestNarrowVsTightPitfall(t *testing.T) {
	res, err := NarrowVsTight(NarrowVsTightConfig{Trains: 12})
	if err != nil {
		t.Fatal(err)
	}
	errTight := abs(res.WithTightCapacity-res.TrueAvailBwMbps) / res.TrueAvailBwMbps
	errNarrow := abs(res.WithNarrowCapacity-res.TrueAvailBwMbps) / res.TrueAvailBwMbps
	if errNarrow <= errTight {
		t.Errorf("narrow-capacity estimate should be worse: tight %.3f vs narrow %.3f", errTight, errNarrow)
	}
	if res.Table() == nil {
		t.Error("nil table")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
