// The binary min-heap the timing wheel replaced, retained as the
// reference implementation ("oracle") for the differential property
// tests: both queues share the Event and Handle types and must produce
// identical pop orders for identical Schedule/Cancel/Pop scripts.
package eventq

import "time"

// heapQueue is the pre-wheel event queue: a binary min-heap ordered by
// (At, seq) with the same free-list pooling and ABA-safe handles as
// Queue. Not exported — construct it with newHeapQueue in tests.
type heapQueue struct {
	h      []*Event
	seq    uint64
	free   []*Event
	noPool bool
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (q *heapQueue) SetPooling(on bool) { q.noPool = !on }

func (q *heapQueue) Len() int { return len(q.h) }

func (q *heapQueue) alloc() *Event {
	if n := len(q.free); n > 0 && !q.noPool {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return e
	}
	return &Event{}
}

func (q *heapQueue) push(e *Event, at time.Duration) Handle {
	e.At = at
	e.seq = q.seq
	e.canceled = false
	e.where = zoneHeap
	q.seq++
	e.pos = int32(len(q.h))
	q.h = append(q.h, e)
	q.siftUp(int(e.pos))
	return Handle{e: e, seq: e.seq}
}

func (q *heapQueue) Schedule(at time.Duration, fn func()) Handle {
	e := q.alloc()
	e.fn, e.argFn, e.arg = fn, nil, nil
	return q.push(e, at)
}

func (q *heapQueue) ScheduleArg(at time.Duration, fn func(any), arg any) Handle {
	e := q.alloc()
	e.fn, e.argFn, e.arg = nil, fn, arg
	return q.push(e, at)
}

func (q *heapQueue) Cancel(h Handle) {
	e := h.e
	if e == nil || e.seq != h.seq || e.where != zoneHeap {
		return
	}
	q.remove(int(e.pos))
	e.where = idxPopped
	e.canceled = true
	q.Release(e)
}

func (q *heapQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := q.h[0]
	q.remove(0)
	e.where = idxPopped
	return e
}

func (q *heapQueue) PopUntil(t time.Duration) *Event {
	if len(q.h) == 0 || q.h[0].At > t {
		return nil
	}
	return q.Pop()
}

func (q *heapQueue) Release(e *Event) {
	if e == nil || e.where != idxPopped {
		return
	}
	e.fn, e.argFn, e.arg = nil, nil, nil
	e.where = idxFreed
	if q.noPool {
		return
	}
	q.free = append(q.free, e)
}

func (q *heapQueue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// remove deletes the element at heap index i, restoring heap order.
func (q *heapQueue) remove(i int) {
	n := len(q.h) - 1
	if i != n {
		q.swap(i, n)
	}
	q.h[n] = nil
	q.h = q.h[:n]
	if i < n {
		q.siftDown(i)
		q.siftUp(i)
	}
}

func (q *heapQueue) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.h[i].pos = int32(i)
	q.h[j].pos = int32(j)
}

func (q *heapQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q.h[i], q.h[parent]) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *heapQueue) siftDown(i int) {
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && less(q.h[right], q.h[left]) {
			min = right
		}
		if !less(q.h[min], q.h[i]) {
			return
		}
		q.swap(i, min)
		i = min
	}
}
