package eventq

import (
	"math/rand"
	"testing"
	"time"
)

// queueImpl is the surface the differential test drives; Queue (the
// timing wheel) and heapQueue (the retained min-heap) both satisfy it.
type queueImpl interface {
	Schedule(time.Duration, func()) Handle
	ScheduleArg(time.Duration, func(any), any) Handle
	Cancel(Handle)
	Pop() *Event
	PopUntil(time.Duration) *Event
	Release(*Event)
	Peek() *Event
	Len() int
	SetPooling(bool)
}

// scheduleAt picks an instant for a randomized schedule op, mixing the
// regimes the wheel treats differently: the cursor's own tick, the
// recent past (overdue), nearby level-0 buckets, mid-wheel levels, the
// far future (spill), and exact duplicates of the previous instant for
// tie-break coverage.
func scheduleAt(r *rand.Rand, now, prev time.Duration) time.Duration {
	switch r.Intn(10) {
	case 0: // same instant as an earlier event: seq must break the tie
		if prev >= 0 {
			return prev
		}
		return now
	case 1: // in the past (relative to events already popped)
		return now - time.Duration(r.Int63n(int64(time.Millisecond)+1))
	case 2, 3, 4: // current or adjacent ticks
		return now + time.Duration(r.Int63n(3<<tickShift))
	case 5, 6, 7: // level 0-1 of the wheel
		return now + time.Duration(r.Int63n(int64(wheelSize)<<(tickShift+wheelBits)))
	case 8: // level 2-3
		return now + time.Duration(r.Int63n(1<<(tickShift+3*wheelBits)))
	default: // beyond the horizon: spill
		return now + time.Duration(1)<<(tickShift+epochShift) + time.Duration(r.Int63n(int64(time.Hour)))
	}
}

// TestWheelMatchesHeapDifferential drives the wheel and the heap with
// identical randomized Schedule/Cancel/Pop/Peek scripts across seeds
// and asserts identical observable behavior at every step: lengths,
// peeked and popped (At, payload) pairs — covering same-instant
// tie-breaks — and the outcome of cancels through live, stale, and
// recycled handles.
func TestWheelMatchesHeapDifferential(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		var w Queue
		h := newHeapQueue()
		impls := [2]queueImpl{&w, h}

		// Parallel handle logs, one per implementation, including
		// fired and canceled handles so cancels exercise staleness.
		var handles [2][]Handle
		now, prev := time.Duration(0), time.Duration(-1)
		nextPayload := 0

		pop := func() {
			var popped [2]*Event
			for i, q := range impls {
				popped[i] = q.Pop()
			}
			if (popped[0] == nil) != (popped[1] == nil) {
				t.Fatalf("seed %d: wheel popped %v, heap popped %v", seed, popped[0], popped[1])
			}
			if popped[0] == nil {
				return
			}
			if popped[0].At != popped[1].At || popped[0].arg != popped[1].arg {
				t.Fatalf("seed %d: pop mismatch: wheel (%v, %v) heap (%v, %v)",
					seed, popped[0].At, popped[0].arg, popped[1].At, popped[1].arg)
			}
			if popped[0].At > now {
				now = popped[0].At
			}
			for i, q := range impls {
				q.Release(popped[i])
			}
		}

		const ops = 4000
		for op := 0; op < ops; op++ {
			switch k := r.Intn(100); {
			case k < 55: // schedule
				at := scheduleAt(r, now, prev)
				prev = at
				payload := nextPayload
				nextPayload++
				for i, q := range impls {
					handles[i] = append(handles[i], q.ScheduleArg(at, func(any) {}, payload))
				}
			case k < 75: // cancel a random handle — possibly stale
				if len(handles[0]) == 0 {
					continue
				}
				j := r.Intn(len(handles[0]))
				wasPending := handles[0][j].Pending()
				if p1 := handles[1][j].Pending(); wasPending != p1 {
					t.Fatalf("seed %d op %d: Pending mismatch: wheel %v heap %v", seed, op, wasPending, p1)
				}
				for i, q := range impls {
					q.Cancel(handles[i][j])
				}
				// A live cancel must register on both. (A stale cancel's
				// Canceled() may differ: it reports false once the struct
				// is recycled, and the implementations recycle at
				// different times — a timing the contract never fixed.)
				if wasPending {
					for i := range impls {
						if h := handles[i][j]; h.Pending() || !h.Canceled() {
							t.Fatalf("seed %d op %d impl %d: live cancel: Pending=%v Canceled=%v",
								seed, op, i, h.Pending(), h.Canceled())
						}
					}
				}
			case k < 85: // pop a burst
				for i := r.Intn(4); i >= 0; i-- {
					pop()
				}
			case k < 95: // drain a bounded slice, RunUntil-style
				deadline := now + time.Duration(r.Int63n(int64(200*time.Millisecond)))
				for {
					var popped [2]*Event
					for i, q := range impls {
						popped[i] = q.PopUntil(deadline)
					}
					if (popped[0] == nil) != (popped[1] == nil) {
						t.Fatalf("seed %d op %d: PopUntil(%v): wheel %v, heap %v",
							seed, op, deadline, popped[0], popped[1])
					}
					if popped[0] == nil {
						break
					}
					if popped[0].At != popped[1].At || popped[0].arg != popped[1].arg {
						t.Fatalf("seed %d op %d: PopUntil mismatch: wheel (%v, %v) heap (%v, %v)",
							seed, op, popped[0].At, popped[0].arg, popped[1].At, popped[1].arg)
					}
					for i, q := range impls {
						q.Release(popped[i])
					}
				}
				if deadline > now {
					now = deadline
				}
			default: // peek
				pw, ph := impls[0].Peek(), impls[1].Peek()
				if (pw == nil) != (ph == nil) {
					t.Fatalf("seed %d op %d: peek nil mismatch", seed, op)
				}
				if pw != nil && (pw.At != ph.At || pw.arg != ph.arg) {
					t.Fatalf("seed %d op %d: peek mismatch: wheel (%v, %v) heap (%v, %v)",
						seed, op, pw.At, pw.arg, ph.At, ph.arg)
				}
			}
			if w.Len() != h.Len() {
				t.Fatalf("seed %d op %d: Len mismatch: wheel %d heap %d", seed, op, w.Len(), h.Len())
			}
		}

		// Drain both queues completely; every remaining pop must match.
		for w.Len() > 0 || h.Len() > 0 {
			pop()
		}
		pop() // both empty: both must return nil
	}
}

// TestWheelMatchesHeapUnpooled repeats a short differential run with
// pooling off, so recycled-struct aliasing can't mask an ordering bug.
func TestWheelMatchesHeapUnpooled(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var w Queue
	h := newHeapQueue()
	w.SetPooling(false)
	h.SetPooling(false)
	now, prev := time.Duration(0), time.Duration(-1)
	for op := 0; op < 1200; op++ {
		if r.Intn(3) > 0 {
			at := scheduleAt(r, now, prev)
			prev = at
			w.Schedule(at, nil)
			h.Schedule(at, nil)
			continue
		}
		ew, eh := w.Pop(), h.Pop()
		if (ew == nil) != (eh == nil) {
			t.Fatalf("op %d: pop nil mismatch", op)
		}
		if ew == nil {
			continue
		}
		if ew.At != eh.At || ew.seq != eh.seq {
			t.Fatalf("op %d: pop mismatch: wheel (%v, %d) heap (%v, %d)", op, ew.At, ew.seq, eh.At, eh.seq)
		}
		if ew.At > now {
			now = ew.At
		}
		w.Release(ew)
		h.Release(eh)
	}
}
