package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func drain(q *Queue) {
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Call()
		q.Release(e)
	}
}

func TestPopOrderByTime(t *testing.T) {
	var q Queue
	var got []int
	times := []time.Duration{30, 10, 20, 50, 40}
	for i, at := range times {
		i := i
		q.Schedule(at, func() { got = append(got, i) })
	}
	drain(&q)
	want := []int{1, 2, 0, 4, 3} // sorted by time 10,20,30,40,50
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestStableTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func() { got = append(got, i) })
	}
	drain(&q)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order at %d: %v", i, got[:i+1])
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	h := q.Schedule(10, func() { fired = true })
	q.Cancel(h)
	if !h.Canceled() {
		t.Error("event not marked canceled")
	}
	if h.Pending() {
		t.Error("canceled event still pending")
	}
	if q.Len() != 0 {
		t.Errorf("queue length after cancel = %d, want 0", q.Len())
	}
	drain(&q)
	if fired {
		t.Error("canceled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	var q Queue
	h := q.Schedule(10, func() {})
	q.Cancel(h)
	q.Cancel(h)        // must not panic
	q.Cancel(Handle{}) // zero handle is a no-op
}

func TestCancelMiddleKeepsOrder(t *testing.T) {
	var q Queue
	var got []time.Duration
	var cancel Handle
	for _, at := range []time.Duration{5, 3, 9, 1, 7} {
		at := at
		h := q.Schedule(at, func() { got = append(got, at) })
		if at == 3 {
			cancel = h
		}
	}
	q.Cancel(cancel)
	drain(&q)
	want := []time.Duration{1, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	// The ABA hazard of pooling: a handle kept past its event's firing
	// must not cancel the unrelated event that reuses the struct.
	var q Queue
	stale := q.Schedule(1, func() {})
	e := q.Pop()
	e.Call()
	q.Release(e)

	fired := false
	fresh := q.Schedule(2, func() { fired = true })
	if !fresh.Pending() {
		t.Fatal("fresh event not pending")
	}
	if stale.Pending() {
		t.Error("stale handle reports the recycled event as its own")
	}
	q.Cancel(stale) // must be a no-op
	drain(&q)
	if !fired {
		t.Error("stale handle canceled a recycled event")
	}
}

func TestScheduleArg(t *testing.T) {
	var q Queue
	var got []int
	record := func(a any) { got = append(got, a.(int)) }
	q.ScheduleArg(20, record, 2)
	q.ScheduleArg(10, record, 1)
	drain(&q)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestPoolReusesReleasedEvents(t *testing.T) {
	var q Queue
	h := q.Schedule(1, func() {})
	first := h.e
	e := q.Pop()
	e.Call()
	q.Release(e)
	q.Release(e) // double release must not duplicate the free entry
	if len(q.free) != 1 {
		t.Fatalf("free list has %d entries after double release, want 1", len(q.free))
	}
	h2 := q.Schedule(2, func() {})
	if h2.e != first {
		t.Error("released event was not reused")
	}
	h3 := q.Schedule(3, func() {})
	if h3.e == first {
		t.Error("one freed event satisfied two Schedules")
	}
}

func TestSetPoolingOffDisablesReuse(t *testing.T) {
	var q Queue
	q.SetPooling(false)
	h := q.Schedule(1, func() {})
	first := h.e
	e := q.Pop()
	q.Release(e)
	if h2 := q.Schedule(2, func() {}); h2.e == first {
		t.Error("pooling disabled but event was reused")
	}
}

func TestSetPoolingOffSkipsExistingFreeList(t *testing.T) {
	// Disabling pooling after events were already released must still
	// disable reuse: the free list is bypassed, not just stopped from
	// growing.
	var q Queue
	h := q.Schedule(1, func() {})
	first := h.e
	q.Release(q.Pop())
	q.SetPooling(false)
	if h2 := q.Schedule(2, func() {}); h2.e == first {
		t.Error("pooling disabled but a previously-freed event was reused")
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Error("Peek on empty queue should be nil")
	}
	q.Schedule(20, func() {})
	q.Schedule(10, func() {})
	if e := q.Peek(); e == nil || e.At != 10 {
		t.Errorf("Peek = %v, want event at 10", e)
	}
	if q.Len() != 2 {
		t.Errorf("Peek must not remove; len = %d", q.Len())
	}
}

func TestPopEmpty(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Error("Pop on empty queue should be nil")
	}
}

func TestRandomizedOrderingProperty(t *testing.T) {
	// Under random insertion and occasional cancellation, pops must come
	// out in nondecreasing time order.
	rnd := rand.New(rand.NewSource(1))
	var q Queue
	var handles []Handle
	var want []time.Duration
	for i := 0; i < 5000; i++ {
		at := time.Duration(rnd.Intn(1000))
		h := q.Schedule(at, func() {})
		if rnd.Intn(10) == 0 {
			handles = append(handles, h)
		} else {
			want = append(want, at)
		}
	}
	for _, h := range handles {
		q.Cancel(h)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []time.Duration
	for e := q.Pop(); e != nil; e = q.Pop() {
		got = append(got, e.At)
		q.Release(e)
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScheduleDuringDrain(t *testing.T) {
	// Events scheduled by a firing event must be honored.
	var q Queue
	var got []time.Duration
	q.Schedule(1, func() {
		got = append(got, 1)
		q.Schedule(2, func() { got = append(got, 2) })
	})
	drain(&q)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestSteadyStateSchedulingAllocates(t *testing.T) {
	// With pooling on and every popped event released, steady-state
	// schedule/pop cycles must not allocate at all.
	var q Queue
	for i := 0; i < 1024; i++ {
		q.Schedule(time.Duration(i), nil)
	}
	allocs := testing.AllocsPerRun(10000, func() {
		e := q.Pop()
		q.Release(e)
		q.Schedule(e.At+1024, nil)
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule/pop allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkScheduleAndPop measures the event-scheduling hot path at a
// steady queue depth: pop one, release it, schedule the next. With the
// free list this is the simulator's zero-allocation core loop.
func BenchmarkScheduleAndPop(b *testing.B) {
	rnd := rand.New(rand.NewSource(7))
	var q Queue
	for i := 0; i < 1024; i++ {
		q.Schedule(time.Duration(rnd.Intn(1<<20)), nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		q.Release(e)
		q.Schedule(e.At+time.Duration(rnd.Intn(1<<20)), nil)
	}
}

// deepBench runs the steady-depth schedule/pop loop against either
// implementation at a queue depth where the heap's O(log n) hurts:
// 16384 pending events spread over a 16.7ms window (multiple wheel
// levels). The wheel/heap pair is the acceptance comparison for the
// timing-wheel migration — the wheel must stay well ahead.
func deepBench(b *testing.B, q queueImpl) {
	const depth = 16384
	const window = 1 << 24 // ns
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < depth; i++ {
		q.Schedule(time.Duration(rnd.Intn(window)), nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		q.Release(e)
		q.Schedule(e.At+time.Duration(rnd.Intn(window)), nil)
	}
}

func BenchmarkScheduleAndPopDeep(b *testing.B) {
	var q Queue
	deepBench(b, &q)
}

func BenchmarkScheduleAndPopDeepHeap(b *testing.B) {
	deepBench(b, newHeapQueue())
}
