package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestPopOrderByTime(t *testing.T) {
	var q Queue
	var got []int
	times := []time.Duration{30, 10, 20, 50, 40}
	for i, at := range times {
		i := i
		q.Schedule(at, func() { got = append(got, i) })
	}
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Fn()
	}
	want := []int{1, 2, 0, 4, 3} // sorted by time 10,20,30,40,50
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestStableTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func() { got = append(got, i) })
	}
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Fn()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order at %d: %v", i, got[:i+1])
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Schedule(10, func() { fired = true })
	q.Cancel(e)
	if !e.Canceled() {
		t.Error("event not marked canceled")
	}
	if q.Len() != 0 {
		t.Errorf("queue length after cancel = %d, want 0", q.Len())
	}
	for ev := q.Pop(); ev != nil; ev = q.Pop() {
		ev.Fn()
	}
	if fired {
		t.Error("canceled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	var q Queue
	e := q.Schedule(10, func() {})
	q.Cancel(e)
	q.Cancel(e) // must not panic
	q.Cancel(nil)
}

func TestCancelMiddleKeepsOrder(t *testing.T) {
	var q Queue
	var got []time.Duration
	var cancel *Event
	for _, at := range []time.Duration{5, 3, 9, 1, 7} {
		at := at
		e := q.Schedule(at, func() { got = append(got, at) })
		if at == 3 {
			cancel = e
		}
	}
	q.Cancel(cancel)
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Fn()
	}
	want := []time.Duration{1, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Error("Peek on empty queue should be nil")
	}
	q.Schedule(20, func() {})
	q.Schedule(10, func() {})
	if e := q.Peek(); e == nil || e.At != 10 {
		t.Errorf("Peek = %v, want event at 10", e)
	}
	if q.Len() != 2 {
		t.Errorf("Peek must not remove; len = %d", q.Len())
	}
}

func TestPopEmpty(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Error("Pop on empty queue should be nil")
	}
}

func TestRandomizedOrderingProperty(t *testing.T) {
	// Under random insertion and occasional cancellation, pops must come
	// out in nondecreasing time order.
	rnd := rand.New(rand.NewSource(1))
	var q Queue
	var handles []*Event
	var want []time.Duration
	for i := 0; i < 5000; i++ {
		at := time.Duration(rnd.Intn(1000))
		e := q.Schedule(at, func() {})
		if rnd.Intn(10) == 0 {
			handles = append(handles, e)
		} else {
			want = append(want, at)
		}
	}
	for _, h := range handles {
		q.Cancel(h)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []time.Duration
	for e := q.Pop(); e != nil; e = q.Pop() {
		got = append(got, e.At)
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScheduleDuringDrain(t *testing.T) {
	// Events scheduled by a firing event must be honored.
	var q Queue
	var got []time.Duration
	q.Schedule(1, func() {
		got = append(got, 1)
		q.Schedule(2, func() { got = append(got, 2) })
	})
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Fn()
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func BenchmarkScheduleAndPop(b *testing.B) {
	rnd := rand.New(rand.NewSource(7))
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(time.Duration(rnd.Intn(1<<20)), nil)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
