// Package eventq implements the event queue driving the discrete-event
// simulator: a binary min-heap of timestamped callbacks with a stable
// tie-break, so two events scheduled for the same instant always fire in
// scheduling order. Determinism of the whole simulation rests on this
// property.
package eventq

import (
	"container/heap"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	At time.Duration // virtual time since simulation epoch
	Fn func()

	seq   uint64 // insertion order, breaks ties deterministically
	index int    // heap index, -1 once popped or canceled
}

// Canceled reports whether the event was removed before firing.
func (e *Event) Canceled() bool { return e.index == -2 }

// Queue is a min-heap of events ordered by (At, insertion order).
// The zero value is an empty queue ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule adds fn to run at virtual time at and returns the event handle,
// which can later be passed to Cancel. Scheduling in the past is allowed
// (the simulator treats it as "run as soon as possible"); the caller is
// responsible for monotonic clock discipline.
func (q *Queue) Schedule(at time.Duration, fn func()) *Event {
	e := &Event{At: at, Fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op, so callers can cancel timers
// unconditionally.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = -2
}

// Pop removes and returns the earliest event, or nil if the queue is
// empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Peek returns the earliest pending event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
