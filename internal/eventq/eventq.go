// Package eventq implements the event queue driving the discrete-event
// simulator: a hierarchical timing wheel of timestamped callbacks with
// a stable tie-break, so two events scheduled for the same instant
// always fire in scheduling order. Determinism of the whole simulation
// rests on this property.
//
// The wheel quantizes virtual time into ticks of 2^tickShift
// nanoseconds and keeps wheelLevels levels of wheelSize buckets each.
// Level 0 buckets hold one tick; each higher level's buckets hold
// wheelSize times the span below, so the wheel covers
// wheelSize^wheelLevels ticks (~17 s at the current geometry) ahead of
// the cursor. Events beyond that horizon wait in a spill min-heap and
// are swept into the wheel when the cursor reaches their epoch.
// Scheduling is O(1) bucket placement; Pop advances a cursor using
// per-level occupancy bitmaps and cascades higher-level buckets down,
// for amortized O(1) per event regardless of queue depth — the reason
// this replaced the binary heap (retained in heap.go as the
// differential-test oracle).
//
// Events sharing the cursor's tick live in a run slice kept sorted by
// (At, seq), which restores the sub-tick ordering the bucket quantization
// discards; events scheduled in the past go to a sorted overdue slice
// that drains before everything else. Together the zones preserve the
// heap's exact pop order: globally ascending (At, seq).
//
// The queue owns a free list of Event structs so steady-state
// scheduling allocates nothing: popped and canceled events are returned
// to the pool with Release and handed out again by the next Schedule.
// Callers therefore never hold a bare *Event across a firing — Schedule
// returns a Handle, a value type carrying the scheduling sequence
// number, so a stale Handle (its event already fired, was canceled, or
// was recycled into a different event) cancels nothing.
package eventq

import (
	"math"
	"math/bits"
	"time"
)

// Wheel geometry. One tick is 2^tickShift ns (~1 µs — finer than the
// sub-ms transmission times the simulator schedules at, coarse enough
// that a fully-loaded link advances the cursor every few events).
const (
	tickShift   = 10
	wheelBits   = 6
	wheelSize   = 1 << wheelBits
	wheelMask   = wheelSize - 1
	wheelLevels = 4
	// epochShift is the total tick-space covered by the wheel; events
	// whose tick differs from the cursor above this many bits spill.
	epochShift = wheelLevels * wheelBits
)

// Event is a callback scheduled to run at a virtual time. Events are
// owned by their Queue: after Pop the caller runs the event and gives
// the struct back with Release, which recycles it for a future
// Schedule. Hold a Handle, not an *Event.
type Event struct {
	At time.Duration // virtual time since simulation epoch

	fn    func()
	argFn func(any)
	arg   any

	// next/prev link the event into its wheel bucket (intrusive
	// doubly-linked list: zero-alloc insertion, O(1) cancel removal).
	next, prev *Event

	seq      uint64 // insertion order, breaks ties deterministically
	where    int32  // zone the event currently occupies (see below)
	pos      int32  // index while in the spill heap or heapQueue (heap.go)
	canceled bool
}

// Zone codes for Event.where. Zero is the never-scheduled zero value;
// anything >= zoneRun means "still queued". Wheel buckets encode their
// level and index so Cancel can unlink in O(1).
const (
	idxFreed  = -2 // returned to the free list
	idxPopped = -1 // removed by Pop, possibly running
	idxLimbo  = 0  // freshly allocated, not yet scheduled
	zoneRun   = 1  // run slice: events at the cursor's tick
	zoneOver  = 2  // overdue slice: scheduled in the past
	zoneSpill = 3  // spill slice: beyond the wheel horizon
	zoneHeap  = 4  // owned by the retained heapQueue (heap.go)
	zoneWheel = 8  // + lvl*wheelSize + bucket
)

func wheelZone(lvl, b int) int32 { return zoneWheel + int32(lvl)<<wheelBits + int32(b) }
func zoneLevel(where int32) int  { return int(where-zoneWheel) >> wheelBits }
func zoneBucket(where int32) int { return int(where-zoneWheel) & wheelMask }

// Call invokes the event's callback (either form; argFn wins).
func (e *Event) Call() {
	if e.argFn != nil {
		e.argFn(e.arg)
		return
	}
	if e.fn != nil {
		e.fn()
	}
}

// less is the global pop order: ascending time, insertion order on ties.
func less(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// tickOf quantizes a virtual time to its wheel tick. The arithmetic
// shift rounds toward negative infinity, so negative times sort before
// tick zero instead of wrapping.
func tickOf(at time.Duration) int64 { return int64(at) >> tickShift }

// Handle identifies one scheduled event for cancellation. The zero
// Handle is valid and refers to nothing. Because the Handle carries the
// event's scheduling sequence number, it stays safe after the event
// fires and its struct is recycled: Cancel and Pending treat a recycled
// event as gone.
type Handle struct {
	e   *Event
	seq uint64
}

// Pending reports whether the handled event is still queued (not yet
// fired, canceled, or recycled).
func (h Handle) Pending() bool {
	return h.e != nil && h.e.seq == h.seq && h.e.where >= zoneRun && !h.e.canceled
}

// Canceled reports whether the handled event was removed before firing.
// Once the event struct has been recycled into a new event the answer
// degrades to false, matching Pending.
func (h Handle) Canceled() bool {
	return h.e != nil && h.e.seq == h.seq && h.e.canceled
}

// Queue is a hierarchical timing wheel of events popped in (At,
// insertion order). The zero value is an empty queue ready to use.
type Queue struct {
	n      int // live (pending, uncanceled) events
	seq    uint64
	free   []*Event
	noPool bool

	curTick int64
	// run holds the cursor tick's events sorted by (At, seq); entries
	// before runPos have been popped. The slice is reused across ticks.
	run    []*Event
	runPos int
	// overdue is sorted descending by (At, seq) so the next event pops
	// from the end without shifting; it only ever holds events scheduled
	// in the past, which the simulator forbids, so it stays tiny.
	overdue []*Event
	// spill is a binary min-heap ordered by (At, seq), indexed through
	// Event.pos. Far-future events arrive in bursts from every traffic
	// source at once (trace tiles inject a whole tile ahead), so inserts
	// interleave arbitrarily — a sorted slice would memmove per insert;
	// the heap keeps both insert and epoch-refill at O(log n).
	spill []*Event

	wheel [wheelLevels][wheelSize]*Event // bucket list heads
	occ   [wheelLevels]uint64            // per-level occupancy bitmaps
}

// SetPooling toggles free-list reuse (on by default). Disabling it
// makes every Schedule allocate a fresh Event — behaviorally identical,
// just slower — which is how the pooling property tests get their
// reference run.
func (q *Queue) SetPooling(on bool) { q.noPool = !on }

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.n }

func (q *Queue) alloc() *Event {
	if n := len(q.free); n > 0 && !q.noPool {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return e
	}
	return &Event{}
}

func (q *Queue) push(e *Event, at time.Duration) Handle {
	e.At = at
	e.seq = q.seq
	e.canceled = false
	q.seq++
	q.place(e)
	q.n++
	return Handle{e: e, seq: e.seq}
}

// Schedule adds fn to run at virtual time at and returns a handle,
// which can later be passed to Cancel. Scheduling in the past is allowed
// (the simulator treats it as "run as soon as possible"); the caller is
// responsible for monotonic clock discipline.
func (q *Queue) Schedule(at time.Duration, fn func()) Handle {
	e := q.alloc()
	e.fn, e.argFn, e.arg = fn, nil, nil
	return q.push(e, at)
}

// ScheduleArg adds fn(arg) to run at virtual time at. Because fn can be
// a long-lived callback and arg a pooled object, this form schedules
// without allocating a closure — the simulator's packet hot path runs
// entirely on it.
func (q *Queue) ScheduleArg(at time.Duration, fn func(any), arg any) Handle {
	e := q.alloc()
	e.fn, e.argFn, e.arg = nil, fn, arg
	return q.push(e, at)
}

// place files an event into the zone its tick calls for. An event goes
// to the shallowest wheel level whose bucket span still separates it
// from the cursor — equivalently, the first level where its tick and
// the cursor agree on all higher-order bits.
func (q *Queue) place(e *Event) {
	t, c := tickOf(e.At), q.curTick
	switch {
	case t == c:
		q.insertRun(e)
	case t < c:
		q.insertSorted(&q.overdue, e, zoneOver)
	case t>>wheelBits == c>>wheelBits:
		q.bucketPush(0, int(t&wheelMask), e)
	case t>>(2*wheelBits) == c>>(2*wheelBits):
		q.bucketPush(1, int(t>>wheelBits&wheelMask), e)
	case t>>(3*wheelBits) == c>>(3*wheelBits):
		q.bucketPush(2, int(t>>(2*wheelBits)&wheelMask), e)
	case t>>epochShift == c>>epochShift:
		q.bucketPush(3, int(t>>(3*wheelBits)&wheelMask), e)
	default:
		q.spillPush(e)
	}
}

// insertRun binary-inserts into the pending tail of the run slice, so
// same-tick events scheduled mid-drain still fire in (At, seq) order.
func (q *Queue) insertRun(e *Event) {
	if q.runPos == len(q.run) {
		q.run = q.run[:0]
		q.runPos = 0
	}
	e.where = zoneRun
	lo, hi := q.runPos, len(q.run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(e, q.run[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	q.run = append(q.run, nil)
	copy(q.run[lo+1:], q.run[lo:])
	q.run[lo] = e
}

// insertSorted binary-inserts into the descending (At, seq) overdue
// slice, whose earliest event sits at the end.
func (q *Queue) insertSorted(sl *[]*Event, e *Event, zone int32) {
	e.where = zone
	s := *sl
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(e, s[mid]) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, nil)
	copy(s[lo+1:], s[lo:])
	s[lo] = e
	*sl = s
}

// spillPush adds a far-future event to the spill min-heap.
func (q *Queue) spillPush(e *Event) {
	e.where = zoneSpill
	e.pos = int32(len(q.spill))
	q.spill = append(q.spill, e)
	q.spillUp(int(e.pos))
}

// spillPop removes and returns the spill heap's minimum.
func (q *Queue) spillPop() *Event {
	e := q.spill[0]
	q.spillRemove(0)
	return e
}

// spillRemove deletes the spill heap element at index i.
func (q *Queue) spillRemove(i int) {
	n := len(q.spill) - 1
	if i != n {
		q.spillSwap(i, n)
	}
	q.spill[n] = nil
	q.spill = q.spill[:n]
	if i < n {
		q.spillDown(i)
		q.spillUp(i)
	}
}

func (q *Queue) spillSwap(i, j int) {
	q.spill[i], q.spill[j] = q.spill[j], q.spill[i]
	q.spill[i].pos = int32(i)
	q.spill[j].pos = int32(j)
}

func (q *Queue) spillUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q.spill[i], q.spill[parent]) {
			return
		}
		q.spillSwap(i, parent)
		i = parent
	}
}

func (q *Queue) spillDown(i int) {
	n := len(q.spill)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && less(q.spill[right], q.spill[left]) {
			min = right
		}
		if !less(q.spill[min], q.spill[i]) {
			return
		}
		q.spillSwap(i, min)
		i = min
	}
}

func (q *Queue) bucketPush(lvl, b int, e *Event) {
	e.where = wheelZone(lvl, b)
	head := q.wheel[lvl][b]
	e.prev = nil
	e.next = head
	if head != nil {
		head.prev = e
	}
	q.wheel[lvl][b] = e
	q.occ[lvl] |= 1 << uint(b)
}

func (q *Queue) bucketRemove(e *Event) {
	lvl, b := zoneLevel(e.where), zoneBucket(e.where)
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		q.wheel[lvl][b] = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	e.next, e.prev = nil, nil
	if q.wheel[lvl][b] == nil {
		q.occ[lvl] &^= 1 << uint(b)
	}
}

// reap releases an event whose lazy cancellation has reached a
// consumable edge of its slice.
func (q *Queue) reap(e *Event) {
	e.where = idxPopped
	q.Release(e)
}

// maxTick is the advance limit meaning "unbounded" (Pop, Peek).
const maxTick = int64(math.MaxInt64)

// front returns the earliest live event without removing it, advancing
// the cursor (and cascading buckets) as needed, or nil when empty. The
// cursor never advances past limit (a tick): with a finite limit, front
// may leave far-future events untouched and return nil — or an event
// beyond the caller's deadline, which the caller filters by At.
//
// Zone order needs no cross-checks beyond overdue-vs-run: every wheel
// and spill event has tick > curTick, every run event has tick ==
// curTick, and tick is monotone in At, so run strictly precedes the
// rest; overdue (tick < curTick) can only outrank run when its At does.
func (q *Queue) front(limit int64) *Event {
	if q.n == 0 {
		return nil
	}
	for {
		for q.runPos < len(q.run) && q.run[q.runPos].canceled {
			q.reap(q.run[q.runPos])
			q.runPos++
		}
		for n := len(q.overdue); n > 0 && q.overdue[n-1].canceled; n = len(q.overdue) {
			q.reap(q.overdue[n-1])
			q.overdue = q.overdue[:n-1]
		}
		var rn, od *Event
		if q.runPos < len(q.run) {
			rn = q.run[q.runPos]
		}
		if n := len(q.overdue); n > 0 {
			od = q.overdue[n-1]
		}
		switch {
		case od != nil && (rn == nil || less(od, rn)):
			return od
		case rn != nil:
			return rn
		}
		if !q.advance(limit) {
			return nil
		}
	}
}

// advance moves the cursor to the next occupied tick: scan level 0's
// occupancy bitmap for a bucket ahead of the cursor, else cascade the
// next occupied higher-level bucket down (re-placing its events, which
// lands the bucket-start ones in run), else jump to the spill slice's
// earliest epoch and pull that whole epoch into the wheel. Reports
// whether any live event became available.
//
// The cursor stops at limit when the next occupied tick lies beyond it.
// This is what keeps PopUntil-driven simulations fast: the cursor tracks
// the caller's clock instead of leaping to a far-future timer, so events
// scheduled "behind" such a leap never pile into the overdue slice.
// Stopping at limit is safe exactly because the scans just proved no
// event occupies (curTick, limit] — except that the cursor must not
// enter the epoch of a still-spilled event (wheel placements ahead of
// the cursor must outrank every spill entry), so the spill stop clamps
// to just before the spill tail's epoch.
func (q *Queue) advance(limit int64) bool {
	q.run = q.run[:0]
	q.runPos = 0
	for {
		if q.runPos < len(q.run) {
			return true
		}
		// Level 0: jump straight to the next occupied tick in window.
		if idx := int(q.curTick & wheelMask); idx < wheelMask {
			if m := q.occ[0] &^ (1<<uint(idx+1) - 1); m != 0 {
				b := bits.TrailingZeros64(m)
				tk := q.curTick&^wheelMask | int64(b)
				if tk > limit {
					q.stopAt(limit)
					return false
				}
				q.curTick = tk
				q.loadRun(b)
				continue
			}
		}
		// Higher levels: cascade the next occupied bucket down one
		// level, cursor set to the bucket's first tick.
		cascaded := false
		for lvl := 1; lvl < wheelLevels; lvl++ {
			shift := uint(lvl * wheelBits)
			idx := int(q.curTick >> shift & wheelMask)
			if idx == wheelMask {
				continue
			}
			m := q.occ[lvl] &^ (1<<uint(idx+1) - 1)
			if m == 0 {
				continue
			}
			b := bits.TrailingZeros64(m)
			span := int64(1) << (shift + wheelBits)
			start := q.curTick&^(span-1) | int64(b)<<shift
			if start > limit {
				q.stopAt(limit)
				return false
			}
			q.curTick = start
			q.cascade(lvl, b)
			cascaded = true
			break
		}
		if cascaded {
			continue
		}
		// Spill: the wheel is empty out to its horizon. Jump to the
		// earliest far-future event and refill its top-level epoch.
		if len(q.spill) == 0 {
			q.stopAt(limit)
			return false
		}
		earliest := tickOf(q.spill[0].At)
		if earliest > limit {
			// The wheel is empty, so the cursor may cross epochs —
			// but not into the earliest spill's epoch, which must stay
			// strictly ahead of the cursor's wheel range.
			stop := limit
			if es := earliest >> epochShift << epochShift; es <= limit {
				stop = es - 1
			}
			q.stopAt(stop)
			return false
		}
		q.curTick = earliest
		epoch := q.curTick >> epochShift
		for len(q.spill) > 0 && tickOf(q.spill[0].At)>>epochShift == epoch {
			q.place(q.spillPop())
		}
	}
}

// stopAt parks the cursor at tick t after a scan proved no live event
// occupies (curTick, t]. Unbounded advances (t == maxTick) and backward
// moves are no-ops.
func (q *Queue) stopAt(t int64) {
	if t != maxTick && t > q.curTick {
		q.curTick = t
	}
}

// loadRun empties level-0 bucket b into the run slice and sorts it.
// Bucket lists are LIFO, so the collected slice is reversed back to
// insertion order first, leaving the insertion sort near-linear (it
// only has to fix At-order inversions from cascading).
func (q *Queue) loadRun(b int) {
	for e := q.wheel[0][b]; e != nil; {
		next := e.next
		e.next, e.prev = nil, nil
		e.where = zoneRun
		q.run = append(q.run, e)
		e = next
	}
	q.wheel[0][b] = nil
	q.occ[0] &^= 1 << uint(b)
	for i, j := 0, len(q.run)-1; i < j; i, j = i+1, j-1 {
		q.run[i], q.run[j] = q.run[j], q.run[i]
	}
	for i := 1; i < len(q.run); i++ {
		e := q.run[i]
		j := i - 1
		for j >= 0 && less(e, q.run[j]) {
			q.run[j+1] = q.run[j]
			j--
		}
		q.run[j+1] = e
	}
}

// cascade re-places every event of bucket (lvl, b) now that the cursor
// has entered the bucket's span. Events land one or more levels lower —
// or in run, when they sit on the bucket's first tick.
func (q *Queue) cascade(lvl, b int) {
	e := q.wheel[lvl][b]
	q.wheel[lvl][b] = nil
	q.occ[lvl] &^= 1 << uint(b)
	for e != nil {
		next := e.next
		e.next, e.prev = nil, nil
		q.place(e)
		e = next
	}
}

// Cancel removes a pending event. Canceling an already-fired,
// already-canceled, or recycled handle is a no-op, so callers can
// cancel timers unconditionally. Wheel-bucket events unlink (and
// recycle) in O(1) and spill events heap-delete in O(log n); events in
// the run and overdue slices are marked and reaped when the drain
// reaches them, which keeps Cancel O(1) there too.
func (q *Queue) Cancel(h Handle) {
	e := h.e
	if e == nil || e.seq != h.seq || e.where < zoneRun || e.canceled {
		return
	}
	q.n--
	e.canceled = true
	switch {
	case e.where >= zoneWheel:
		q.bucketRemove(e)
		e.where = idxPopped
		q.Release(e)
	case e.where == zoneSpill:
		q.spillRemove(int(e.pos))
		e.where = idxPopped
		q.Release(e)
	}
}

// Pop removes and returns the earliest event, or nil if the queue is
// empty. The caller runs it (Call) and then must hand it back with
// Release.
func (q *Queue) Pop() *Event {
	return q.take(q.front(maxTick))
}

// PopUntil removes and returns the earliest event with At <= t, or nil
// when none is due. Unlike Peek-then-Pop, the cursor never advances past
// t's tick: a far-future timer does not drag the cursor forward, so
// events scheduled after a bounded run still land in wheel buckets
// instead of the overdue slice. This is the form clock-sliced drivers
// (sim.RunUntil) should use.
func (q *Queue) PopUntil(t time.Duration) *Event {
	limit := tickOf(t)
	if q.n == 0 {
		q.settle(limit)
		return nil
	}
	e := q.front(limit)
	if e == nil || e.At > t {
		return nil
	}
	return q.take(e)
}

// take finalizes a pop of the event front just returned.
func (q *Queue) take(e *Event) *Event {
	if e == nil {
		return nil
	}
	switch e.where {
	case zoneRun:
		q.runPos++
	case zoneOver:
		q.overdue = q.overdue[:len(q.overdue)-1]
	}
	e.where = idxPopped
	q.n--
	return e
}

// settle advances an empty queue's cursor to limit, reaping any
// lazily-canceled strays first (with n == 0 every slice entry is one).
func (q *Queue) settle(limit int64) {
	if limit <= q.curTick {
		return
	}
	for _, e := range q.run[q.runPos:] {
		q.reap(e)
	}
	q.run = q.run[:0]
	q.runPos = 0
	for _, e := range q.overdue {
		q.reap(e)
	}
	q.overdue = q.overdue[:0]
	q.curTick = limit
}

// Release returns a popped or canceled event to the free list. Events
// still queued, nil events, and double releases are no-ops.
func (q *Queue) Release(e *Event) {
	if e == nil || e.where != idxPopped {
		return
	}
	e.fn, e.argFn, e.arg = nil, nil, nil
	e.where = idxFreed
	if q.noPool {
		return
	}
	q.free = append(q.free, e)
}

// Peek returns the earliest pending event without removing it, or nil.
// Finding it may advance the cursor to that event's tick; drivers that
// slice time should prefer PopUntil, which bounds the advance.
func (q *Queue) Peek() *Event {
	return q.front(maxTick)
}

// NewPool allocates n pooled events in one contiguous block, ready to
// seed a queue's free list via Prime. Arena owners use it to grow a
// shard's event pool to a known footprint in a single allocation
// instead of one miss at a time.
func NewPool(n int) []*Event {
	block := make([]Event, n)
	out := make([]*Event, n)
	for i := range block {
		block[i].where = idxFreed
		out[i] = &block[i]
	}
	return out
}

// Prime seeds the queue's free list with events reclaimed from another
// queue (or built by NewPool), so the first schedules of a fresh run
// hit the pool instead of the allocator. The queue takes ownership of
// the slice — when its own free list is empty (the usual case: a fresh
// queue) the backing array is adopted wholesale, so an arena's
// Reclaim/Prime round trip moves slice headers instead of copying
// pool-sized arrays. No-op with pooling disabled.
func (q *Queue) Prime(events []*Event) {
	if q.noPool || len(events) == 0 {
		return
	}
	if len(q.free) == 0 {
		q.free = events
		return
	}
	q.free = append(q.free, events...)
}

// Reclaim empties the queue — pending events, lazily-canceled strays,
// and the free list alike — resetting every Event struct and appending
// it to dst, which is returned. It is the arena hand-back at the end of
// a simulation's life: the structs move to the owner's pool and the
// queue is left logically empty (cursor position retained). When dst is
// empty the queue's free-list backing array is handed back wholesale,
// the other half of the Prime ownership move. The queue must be idle —
// no popped event still outstanding with the caller.
func (q *Queue) Reclaim(dst []*Event) []*Event {
	// Pending strays fold into the free list first; free-list entries
	// were already reset by Release (or NewPool).
	collect := func(e *Event) {
		e.fn, e.argFn, e.arg = nil, nil, nil
		e.next, e.prev = nil, nil
		e.canceled = false
		e.where = idxFreed
		q.free = append(q.free, e)
	}
	for _, e := range q.run[q.runPos:] {
		collect(e)
	}
	q.run = q.run[:0]
	q.runPos = 0
	for _, e := range q.overdue {
		collect(e)
	}
	q.overdue = q.overdue[:0]
	for _, e := range q.spill {
		collect(e)
	}
	q.spill = q.spill[:0]
	for lvl := range q.wheel {
		for m := q.occ[lvl]; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			for e := q.wheel[lvl][b]; e != nil; {
				next := e.next
				collect(e)
				e = next
			}
			q.wheel[lvl][b] = nil
		}
		q.occ[lvl] = 0
	}
	q.n = 0
	if len(dst) == 0 {
		dst, q.free = q.free, dst[:0]
		return dst
	}
	dst = append(dst, q.free...)
	for i := range q.free {
		q.free[i] = nil
	}
	q.free = q.free[:0]
	return dst
}
