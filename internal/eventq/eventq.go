// Package eventq implements the event queue driving the discrete-event
// simulator: a binary min-heap of timestamped callbacks with a stable
// tie-break, so two events scheduled for the same instant always fire in
// scheduling order. Determinism of the whole simulation rests on this
// property.
//
// The queue owns a free list of Event structs so steady-state
// scheduling allocates nothing: popped and canceled events are returned
// to the pool with Release and handed out again by the next Schedule.
// Callers therefore never hold a bare *Event across a firing — Schedule
// returns a Handle, a value type carrying the scheduling sequence
// number, so a stale Handle (its event already fired, was canceled, or
// was recycled into a different event) cancels nothing.
package eventq

import (
	"container/heap"
	"time"
)

// Event is a callback scheduled to run at a virtual time. Events are
// owned by their Queue: after Pop the caller runs the event and gives
// the struct back with Release, which recycles it for a future
// Schedule. Hold a Handle, not an *Event.
type Event struct {
	At time.Duration // virtual time since simulation epoch

	fn    func()
	argFn func(any)
	arg   any

	seq      uint64 // insertion order, breaks ties deterministically
	index    int    // heap index; negative once popped/canceled/freed
	canceled bool
}

// Sentinel index values for events no longer in the heap.
const (
	idxPopped = -1 // removed by Pop, possibly running
	idxFreed  = -2 // returned to the free list
)

// Call invokes the event's callback (either form; argFn wins).
func (e *Event) Call() {
	if e.argFn != nil {
		e.argFn(e.arg)
		return
	}
	if e.fn != nil {
		e.fn()
	}
}

// Handle identifies one scheduled event for cancellation. The zero
// Handle is valid and refers to nothing. Because the Handle carries the
// event's scheduling sequence number, it stays safe after the event
// fires and its struct is recycled: Cancel and Pending treat a recycled
// event as gone.
type Handle struct {
	e   *Event
	seq uint64
}

// Pending reports whether the handled event is still queued (not yet
// fired, canceled, or recycled).
func (h Handle) Pending() bool {
	return h.e != nil && h.e.seq == h.seq && h.e.index >= 0
}

// Canceled reports whether the handled event was removed before firing.
// Once the event struct has been recycled into a new event the answer
// degrades to false, matching Pending.
func (h Handle) Canceled() bool {
	return h.e != nil && h.e.seq == h.seq && h.e.canceled
}

// Queue is a min-heap of events ordered by (At, insertion order).
// The zero value is an empty queue ready to use.
type Queue struct {
	h      eventHeap
	seq    uint64
	free   []*Event
	noPool bool
}

// SetPooling toggles free-list reuse (on by default). Disabling it
// makes every Schedule allocate a fresh Event — behaviorally identical,
// just slower — which is how the pooling property tests get their
// reference run.
func (q *Queue) SetPooling(on bool) { q.noPool = !on }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

func (q *Queue) alloc() *Event {
	if n := len(q.free); n > 0 && !q.noPool {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return e
	}
	return &Event{}
}

func (q *Queue) push(e *Event, at time.Duration) Handle {
	e.At = at
	e.seq = q.seq
	e.canceled = false
	q.seq++
	heap.Push(&q.h, e)
	return Handle{e: e, seq: e.seq}
}

// Schedule adds fn to run at virtual time at and returns a handle,
// which can later be passed to Cancel. Scheduling in the past is allowed
// (the simulator treats it as "run as soon as possible"); the caller is
// responsible for monotonic clock discipline.
func (q *Queue) Schedule(at time.Duration, fn func()) Handle {
	e := q.alloc()
	e.fn, e.argFn, e.arg = fn, nil, nil
	return q.push(e, at)
}

// ScheduleArg adds fn(arg) to run at virtual time at. Because fn can be
// a long-lived callback and arg a pooled object, this form schedules
// without allocating a closure — the simulator's packet hot path runs
// entirely on it.
func (q *Queue) ScheduleArg(at time.Duration, fn func(any), arg any) Handle {
	e := q.alloc()
	e.fn, e.argFn, e.arg = nil, fn, arg
	return q.push(e, at)
}

// Cancel removes a pending event and recycles its struct. Canceling an
// already-fired, already-canceled, or recycled handle is a no-op, so
// callers can cancel timers unconditionally.
func (q *Queue) Cancel(h Handle) {
	e := h.e
	if e == nil || e.seq != h.seq || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = idxPopped
	e.canceled = true
	q.Release(e)
}

// Pop removes and returns the earliest event, or nil if the queue is
// empty. The caller runs it (Call) and then must hand it back with
// Release.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Release returns a popped or canceled event to the free list. Events
// still in the heap, nil events, and double releases are no-ops.
func (q *Queue) Release(e *Event) {
	if e == nil || e.index >= 0 || e.index == idxFreed {
		return
	}
	e.fn, e.argFn, e.arg = nil, nil, nil
	e.index = idxFreed
	if q.noPool {
		return
	}
	q.free = append(q.free, e)
}

// Peek returns the earliest pending event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = idxPopped
	*h = old[:n-1]
	return e
}
