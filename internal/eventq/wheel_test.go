package eventq

import (
	"testing"
	"time"
)

// Edge cases specific to the timing-wheel implementation: cancellation
// racing cascades, scheduling behind the cursor, handle reuse across a
// full wheel rotation, and the steady-state allocation guarantee at
// wheel-spanning depths.

// tick n's first instant, as a virtual time.
func tickStart(n int64) time.Duration { return time.Duration(n << tickShift) }

// TestCancelDuringCascade parks events in a level-1 bucket, forces the
// cascade by draining up to the bucket's span, then cancels one of the
// cascaded events after it has been re-placed in level 0 — and one
// sibling before the cascade while it still sits in level 1.
func TestCancelDuringCascade(t *testing.T) {
	var q Queue
	fired := map[int]bool{}
	mark := func(arg any) { fired[arg.(int)] = true }

	// Three events inside one level-1 bucket, distinct level-0 ticks.
	base := int64(2 * wheelSize) // level-1 bucket 2
	q.ScheduleArg(tickStart(base+1), mark, 0)
	h1 := q.ScheduleArg(tickStart(base+5), mark, 1)
	h2 := q.ScheduleArg(tickStart(base+9), mark, 2)
	// A sentinel before the bucket so the first pops don't cascade yet.
	q.ScheduleArg(tickStart(1), mark, 99)

	// Cancel h1 while it is still parked in level 1.
	q.Cancel(h1)
	if h1.Pending() || !h1.Canceled() {
		t.Fatalf("pre-cascade cancel: Pending=%v Canceled=%v", h1.Pending(), h1.Canceled())
	}

	// Pop the sentinel, then peek: this advances the cursor into the
	// level-1 bucket, cascading h0 and h2 down into level 0.
	e := q.Pop()
	e.Call()
	q.Release(e)
	if q.Peek() == nil {
		t.Fatal("peek found nothing after cascade")
	}
	// Cancel h2 now that the cascade has moved it to a level-0 bucket.
	q.Cancel(h2)
	if h2.Pending() || !h2.Canceled() {
		t.Fatalf("post-cascade cancel: Pending=%v Canceled=%v", h2.Pending(), h2.Canceled())
	}
	if q.Len() != 1 {
		t.Fatalf("Len() = %d after two cancels, want 1", q.Len())
	}

	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Call()
		q.Release(e)
	}
	if !fired[0] || fired[1] || fired[2] || !fired[99] {
		t.Fatalf("fired = %v, want only 0 and 99", fired)
	}
}

// TestPastEventsFireImmediatelyInSeqOrder advances the cursor deep into
// virtual time, then schedules events behind it — including several at
// the same past instant. They must pop before anything in the wheel, in
// (At, seq) order.
func TestPastEventsFireImmediatelyInSeqOrder(t *testing.T) {
	var q Queue
	// Advance the cursor: pop an event a few level-1 buckets in.
	far := tickStart(5 * wheelSize)
	q.Schedule(far, nil)
	q.Release(q.Pop())

	// A future event that must lose to everything overdue.
	q.ScheduleArg(far+time.Millisecond, nil, nil)

	var got []int
	rec := func(arg any) { got = append(got, arg.(int)) }
	q.ScheduleArg(far-time.Microsecond, rec, 2) // later past instant
	q.ScheduleArg(far-time.Millisecond, rec, 0) // earliest, scheduled 2nd
	q.ScheduleArg(far-time.Millisecond, rec, 1) // same instant, scheduled 3rd

	for i := 0; i < 3; i++ {
		e := q.Pop()
		if e.At >= far {
			t.Fatalf("pop %d returned future event at %v before overdue ones", i, e.At)
		}
		e.Call()
		q.Release(e)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("overdue fire order = %v, want [0 1 2]", got)
	}
	if e := q.Pop(); e == nil || e.At != far+time.Millisecond {
		t.Fatalf("future event did not pop last: %v", e)
	}
}

// TestHandleReuseAfterFullWheelRotation recycles an event struct into a
// schedule more than a full wheel span (and spill epoch) later, and
// checks the stale handle can't touch it anywhere along the way.
func TestHandleReuseAfterFullWheelRotation(t *testing.T) {
	var q Queue
	h1 := q.Schedule(tickStart(3), func() {})
	first := h1.e
	e := q.Pop()
	e.Call()
	q.Release(e)

	// Reuse the struct for an event beyond the wheel horizon (spill).
	rotation := time.Duration(1) << (tickShift + epochShift)
	h2 := q.Schedule(2*rotation, func() {})
	if h2.e != first {
		t.Fatal("free list did not recycle the event struct")
	}
	q.Cancel(h1) // stale: must not disturb the recycled event
	if !h2.Pending() || q.Len() != 1 {
		t.Fatalf("stale cancel hit recycled event: Pending=%v Len=%d", h2.Pending(), q.Len())
	}
	// Drain across the full rotation: spill refill, cascades, pop.
	e = q.Pop()
	if e == nil || e.At != 2*rotation {
		t.Fatalf("pop after rotation = %v, want event at %v", e, 2*rotation)
	}
	q.Release(e)
	q.Cancel(h1) // still a no-op on an empty queue
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after drain, want 0", q.Len())
	}
}

// TestWheelSteadyStateDoesNotAllocate keeps thousands of events spread
// across multiple wheel levels and replaces each popped event with a
// new one far ahead, so every pop exercises cursor advance (and
// periodically cascades) while every schedule exercises bucket
// placement. Steady state must not allocate.
func TestWheelSteadyStateDoesNotAllocate(t *testing.T) {
	var q Queue
	const depth = 4096
	window := time.Duration(depth) * 4 * time.Microsecond // spans level 0-2
	at := time.Duration(0)
	gap := window / depth
	for i := 0; i < depth; i++ {
		q.ScheduleArg(at, func(any) {}, nil)
		at += gap
	}
	step := func() {
		e := q.Pop()
		q.Release(e)
		q.ScheduleArg(e.At+window, func(any) {}, nil)
	}
	// Warm the pools and slice capacities through several full wheel
	// rotations before measuring.
	for i := 0; i < 4*depth; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(2*depth, step); allocs != 0 {
		t.Errorf("steady-state wheel churn allocates %.3f per op, want 0", allocs)
	}
}

// TestSpillOrderAcrossEpochs schedules far-future events in several
// distinct spill epochs interleaved with near events, and verifies the
// global pop order survives the epoch-by-epoch refills.
func TestSpillOrderAcrossEpochs(t *testing.T) {
	var q Queue
	rotation := time.Duration(1) << (tickShift + epochShift)
	want := []time.Duration{
		time.Microsecond,
		rotation + time.Millisecond,
		rotation + time.Millisecond, // same instant: seq tie-break
		3*rotation + time.Second,
		7 * rotation,
	}
	// Schedule in scrambled order.
	q.Schedule(3*rotation+time.Second, nil)
	a := q.Schedule(rotation+time.Millisecond, nil)
	q.Schedule(7*rotation, nil)
	b := q.Schedule(rotation+time.Millisecond, nil)
	q.Schedule(time.Microsecond, nil)

	var got []time.Duration
	var seqs []uint64
	for e := q.Pop(); e != nil; e = q.Pop() {
		got = append(got, e.At)
		seqs = append(seqs, e.seq)
		q.Release(e)
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d at %v, want %v", i, got[i], want[i])
		}
	}
	if seqs[1] != a.seq || seqs[2] != b.seq {
		t.Fatalf("same-instant spill events out of scheduling order: %v", seqs)
	}
}

// TestCancelSpilledEvent cancels an event while it waits in the spill
// slice and checks it neither fires nor corrupts the count.
func TestCancelSpilledEvent(t *testing.T) {
	var q Queue
	rotation := time.Duration(1) << (tickShift + epochShift)
	h := q.Schedule(rotation+time.Second, func() { t.Fatal("canceled spill event fired") })
	keep := q.Schedule(2*rotation, func() {})
	q.Cancel(h)
	if q.Len() != 1 {
		t.Fatalf("Len() = %d after spill cancel, want 1", q.Len())
	}
	e := q.Pop()
	if e == nil || e.At != 2*rotation {
		t.Fatalf("pop = %v, want the kept event", e)
	}
	e.Call()
	q.Release(e)
	if keep.Pending() || keep.Canceled() {
		t.Fatal("kept event should have fired normally")
	}
	if q.Pop() != nil {
		t.Fatal("queue should be empty")
	}
}
