package probe

import (
	"testing"
	"testing/quick"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

func TestDeparturesStrictlyIncreasingProperty(t *testing.T) {
	// For any valid periodic spec, departures are strictly increasing
	// and the gap equals L/Ri everywhere.
	f := func(rateRaw uint16, sizeRaw uint16, countRaw uint8) bool {
		rate := unit.Rate(float64(rateRaw%900)+1) * unit.Mbps
		size := unit.Bytes(sizeRaw%1460 + 40)
		count := int(countRaw%200) + 2
		sp := Periodic(rate, size, count)
		deps, err := sp.Departures()
		if err != nil {
			return false
		}
		gap := unit.GapFor(size, rate)
		for i := 1; i < len(deps); i++ {
			if deps[i] <= deps[i-1] || deps[i]-deps[i-1] != gap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChirpRatesSpanBoundsProperty(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		lo := unit.Rate(r.Uniform(1, 100)) * unit.Mbps
		hi := lo * unit.Rate(r.Uniform(1.5, 20))
		count := 3 + r.Intn(40)
		sp, err := Chirp(lo, hi, 1000, count, 1.2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := 0; k+1 < sp.Count; k++ {
			rate := sp.RateAtPair(k)
			if rate < lo*99/100 || rate > hi*101/100 {
				t.Fatalf("trial %d: pair %d rate %v outside [%v, %v]", trial, k, rate, lo, hi)
			}
		}
	}
}

func TestRecordRatioWithMonotoneWaitsProperty(t *testing.T) {
	// When per-packet waiting times are non-decreasing (a growing queue,
	// the overload scenario of Eq. 6-8), the output span can only be
	// stretched, so Ro <= Ri. Note this is deliberately NOT claimed for
	// arbitrary FIFO waits: a draining queue delays early packets more
	// than late ones and can yield Ro > Ri on a single stream — one
	// reason single streams are noisy avail-bw samples.
	r := rng.New(2)
	for trial := 0; trial < 100; trial++ {
		sp := Periodic(unit.Rate(r.Uniform(5, 45))*unit.Mbps, 1500, 10+r.Intn(80))
		rec := NewRecord(sp)
		deps, err := sp.Departures()
		if err != nil {
			t.Fatal(err)
		}
		copy(rec.Sent, deps)
		base := 2 * time.Millisecond
		wait := time.Duration(0)
		for i := range rec.Recv {
			wait += time.Duration(r.Uniform(0, 2e5)) // non-negative increments
			rec.Recv[i] = rec.Sent[i] + base + wait
		}
		if ratio := rec.Ratio(); ratio > 1.0001 {
			t.Fatalf("trial %d: Ro/Ri = %g > 1 with monotone waits", trial, ratio)
		}
	}
}

func TestRecordRatioEqualWaitsIsUnity(t *testing.T) {
	// Equal per-packet delay (an uncongested path) leaves the stream
	// untouched: Ro == Ri exactly.
	sp := Periodic(20*unit.Mbps, 1500, 50)
	rec := NewRecord(sp)
	deps, err := sp.Departures()
	if err != nil {
		t.Fatal(err)
	}
	copy(rec.Sent, deps)
	for i := range rec.Recv {
		rec.Recv[i] = rec.Sent[i] + 3*time.Millisecond
	}
	if ratio := rec.Ratio(); ratio != 1 {
		t.Fatalf("Ro/Ri = %g, want exactly 1", ratio)
	}
}

func TestPoissonPairsSpacingNonOverlappingProperty(t *testing.T) {
	r := rng.New(3)
	sp, err := PoissonPairs(100*unit.Mbps, 1500, 200, 2*time.Millisecond, r)
	if err != nil {
		t.Fatal(err)
	}
	deps, err := sp.Departures()
	if err != nil {
		t.Fatal(err)
	}
	intra := unit.GapFor(1500, 100*unit.Mbps)
	for i := 1; i < len(deps); i++ {
		if deps[i]-deps[i-1] < intra {
			t.Fatalf("gap %d (%v) below the intra-pair minimum %v", i, deps[i]-deps[i-1], intra)
		}
	}
}
