package probe

import (
	"math"
	"testing"
	"time"

	"abw/internal/crosstraffic"
	"abw/internal/rng"
	"abw/internal/sim"
	"abw/internal/unit"
)

func TestSendOverSimIdlePath(t *testing.T) {
	// On an idle link, Ro must equal Ri and OWDs must be flat.
	s := sim.New()
	l := s.NewLink("l", 50*unit.Mbps, time.Millisecond)
	rec, err := SendOverSim(s, []*sim.Link{l}, Periodic(20*unit.Mbps, 1500, 50), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !rec.Complete() {
		t.Fatalf("lost %d packets on idle path", rec.LossCount())
	}
	if math.Abs(rec.Ratio()-1) > 1e-6 {
		t.Errorf("idle path Ro/Ri = %g, want 1", rec.Ratio())
	}
	owds := rec.OWDs()
	for i := 1; i < len(owds); i++ {
		if owds[i] != owds[0] {
			t.Fatalf("idle path OWD varies: %v vs %v", owds[i], owds[0])
		}
	}
}

func TestSendOverSimMatchesFluidModel(t *testing.T) {
	// With CBR cross traffic (the fluid limit), the measured Ro must
	// match Equation (8) closely: Ri=40, Ct=50, A=25 → Ro ≈ 30.77 Mbps.
	s := sim.New()
	l := s.NewLink("l", 50*unit.Mbps, 0)
	ct := crosstraffic.CBR(crosstraffic.Stream{Rate: 25 * unit.Mbps, Sizes: rng.FixedSize(200)})
	ct.Run(s, []*sim.Link{l}, 0, 2*time.Second)
	rec, err := SendOverSim(s, []*sim.Link{l}, Periodic(40*unit.Mbps, 1500, 300), 500*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !rec.Complete() {
		t.Fatalf("lost %d packets", rec.LossCount())
	}
	want := 40.0 * 50 / 65 // Eq. (8)
	got := rec.OutputRate().MbpsOf()
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("Ro = %.2f Mbps, fluid model predicts %.2f", got, want)
	}
}

func TestSendOverSimBelowAvailBw(t *testing.T) {
	// Probing below A with small-packet CBR cross traffic: ratio ≈ 1.
	s := sim.New()
	l := s.NewLink("l", 50*unit.Mbps, 0)
	ct := crosstraffic.CBR(crosstraffic.Stream{Rate: 25 * unit.Mbps, Sizes: rng.FixedSize(200)})
	ct.Run(s, []*sim.Link{l}, 0, 2*time.Second)
	rec, err := SendOverSim(s, []*sim.Link{l}, Periodic(15*unit.Mbps, 1500, 200), 500*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if ratio := rec.Ratio(); math.Abs(ratio-1) > 0.02 {
		t.Errorf("Ro/Ri below A = %g, want ~1", ratio)
	}
}

func TestSendOverSimOWDSlopeMatchesEq7(t *testing.T) {
	// Overloaded link: per-packet OWD increase ≈ Eq. (7).
	s := sim.New()
	l := s.NewLink("l", 50*unit.Mbps, 0)
	ct := crosstraffic.CBR(crosstraffic.Stream{Rate: 25 * unit.Mbps, Sizes: rng.FixedSize(100)})
	ct.Run(s, []*sim.Link{l}, 0, time.Second)
	const n = 100
	rec, err := SendOverSim(s, []*sim.Link{l}, Periodic(40*unit.Mbps, 1500, n), 200*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	owds := rec.OWDs()
	slope := (owds[len(owds)-1] - owds[0]).Seconds() / float64(len(owds)-1)
	// Eq. (7): Δd = (L/Ct)(Ri−A)/Ri = (1500·8/50e6)·(15/40) = 90µs.
	want := 90e-6
	if math.Abs(slope-want)/want > 0.05 {
		t.Errorf("OWD slope = %.2fµs/pkt, Eq.(7) predicts %.2fµs", slope*1e6, want*1e6)
	}
}

func TestSendOverSimInvalidSpec(t *testing.T) {
	s := sim.New()
	l := s.NewLink("l", 50*unit.Mbps, 0)
	if _, err := SendOverSim(s, []*sim.Link{l}, StreamSpec{}, 0, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSendOverSimRecordsLossWithTinyBuffer(t *testing.T) {
	s := sim.New()
	l := s.NewLink("l", 10*unit.Mbps, 0)
	l.BufferBytes = 1500
	rec, err := SendOverSim(s, []*sim.Link{l}, Periodic(100*unit.Mbps, 1500, 20), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if rec.LossCount() == 0 {
		t.Error("expected losses with a 1-packet buffer at 10x overload")
	}
	if rec.LossCount() >= 20 {
		t.Error("some packets should still arrive")
	}
}
