package probe

import (
	"math"
	"time"

	"abw/internal/stats"
	"abw/internal/unit"
)

// This file is the one place probe-stream timing signatures become
// numbers. Every estimator used to carry a private copy of some slice
// of this arithmetic (IGI's gap averaging, Spruce's pair-gap model,
// TOPP's per-rate gap sums, Pathload's OWD conversion, pathChirp's
// queue-delay series); they now all call these helpers, and the learned
// eighth tool is trained on exactly the FeatureVector extracted here.
//
// Canonical pair-measurability convention (the one convention all
// tools share — audit note for the historical drift): pair (k, k+1) is
// measurable iff BOTH packets were received AND the receiver-side gap
// is strictly positive. A zero or negative output gap (duplicate or
// reordered receive timestamps) is discarded exactly like a loss, never
// clamped, because the gap models divide by it. The send-side gap is
// reported as recorded even for unmeasurable pairs.

// PairGaps returns the send-side and receive-side spacings of pair
// (k, k+1). ok follows the canonical measurability convention above;
// gout is 0 when the pair is not measurable.
func (r *Record) PairGaps(k int) (gin, gout time.Duration, ok bool) {
	if k < 0 || k+1 >= len(r.Sent) || k+1 >= len(r.Recv) {
		return 0, 0, false
	}
	gin = r.Sent[k+1] - r.Sent[k]
	a, b := r.Recv[k], r.Recv[k+1]
	if a == Lost || b == Lost || b-a <= 0 {
		return gin, 0, false
	}
	return gin, b - a, true
}

// MeanOutputGap returns the mean receiver-side spacing over measurable
// pairs — IGI's average output gap — or 0 when no pair is measurable.
// The integer division mirrors the gap model's time.Duration algebra.
func (r *Record) MeanOutputGap() time.Duration {
	var sum time.Duration
	n := 0
	for k := 0; k+1 < len(r.Recv); k++ {
		_, gout, ok := r.PairGaps(k)
		if !ok {
			continue
		}
		sum += gout
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// OWDSeconds returns the one-way delays of received packets in seconds,
// in packet order — Pathload's trend-test input.
func (r *Record) OWDSeconds() []float64 {
	owds := r.OWDs()
	out := make([]float64, len(owds))
	for i, d := range owds {
		out[i] = d.Seconds()
	}
	return out
}

// QueueDelaysSeconds returns per-packet queueing delays in seconds:
// each received packet's OWD minus the stream's minimum OWD, in packet
// order — pathChirp's excursion signal. Nil when nothing arrived.
func (r *Record) QueueDelaysSeconds() []float64 {
	owds := r.OWDs()
	if len(owds) == 0 {
		return nil
	}
	min := owds[0]
	for _, d := range owds[1:] {
		if d < min {
			min = d
		}
	}
	out := make([]float64, len(owds))
	for i, d := range owds {
		out[i] = (d - min).Seconds()
	}
	return out
}

// PairGapAvailBw maps one measured pair through the gap model
// A = C·(1 − (gout − gin)/gin), clamped to [0, C] — Spruce's per-pair
// sample. gin is the constructed input spacing (the model's Δin), not
// necessarily the measured one.
func PairGapAvailBw(capacity unit.Rate, gin, gout time.Duration) unit.Rate {
	a := float64(capacity) * (1 - float64(gout-gin)/float64(gin))
	if a < 0 {
		a = 0
	}
	if a > float64(capacity) {
		a = float64(capacity)
	}
	return unit.Rate(a)
}

// ClampToCapacity bounds an estimate to the physically meaningful
// range [0, capacity] — the final step every rate-model tool applies.
func ClampToCapacity(a, capacity unit.Rate) unit.Rate {
	if a < 0 {
		return 0
	}
	if a > capacity {
		return capacity
	}
	return a
}

// AbsDeltas returns |xs[i+1] − xs[i]|, the successive absolute
// differences pathChirp's jitter threshold is the median of. Nil for
// fewer than two values.
func AbsDeltas(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, 0, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		d := xs[i] - xs[i-1]
		if d < 0 {
			d = -d
		}
		out = append(out, d)
	}
	return out
}

// FeatureVector is the canonical per-stream summary of a probe record:
// every timing signature the seven classical tools consume, reduced to
// dimensionless numbers. Gap features are normalized by the mean input
// gap and rate features by ratios, so vectors are comparable across
// capacities and packet sizes. Degenerate records (all packets lost,
// single packet, no measurable pair) yield zero values with the
// corresponding Has* flag false — never NaN, never a panic.
type FeatureVector struct {
	HasGaps  bool // gap features valid (≥1 measurable pair, positive mean input gap)
	HasTrend bool // trend features valid (≥4 received packets)
	HasRates bool // rate features valid (measurable input and output rates)

	LossFrac   float64 // lost packets / packets sent
	PairFrac   float64 // measurable pairs / total adjacent pairs
	GapRatio   float64 // mean output gap / mean input gap over measurable pairs
	GapCV      float64 // coefficient of variation of output gaps
	GapQ10     float64 // 10th-percentile output gap / mean input gap
	GapQ50     float64 // median output gap / mean input gap
	GapQ90     float64 // 90th-percentile output gap / mean input gap
	TrendPCT   float64 // pairwise-comparison trend statistic of OWDs
	TrendPDT   float64 // pairwise-difference trend statistic of OWDs
	OWDSlope   float64 // queue-delay slope per packet / mean input gap
	QueueMean  float64 // mean queueing delay / mean input gap
	RateRatio  float64 // Ro/Ri over the whole stream
	ExpandFrac float64 // fraction of measurable pairs with gout > gin
	ExpandRun  float64 // longest run of consecutive expanded pairs / total pairs
}

// FeatureNames returns the column names of Values, in order. The first
// three are the 0/1 validity flags.
func FeatureNames() []string {
	return []string{
		"has_gaps", "has_trend", "has_rates",
		"loss_frac", "pair_frac", "gap_ratio", "gap_cv",
		"gap_q10", "gap_q50", "gap_q90",
		"trend_pct", "trend_pdt", "owd_slope", "queue_mean",
		"rate_ratio", "expand_frac", "expand_run",
	}
}

// Values flattens the vector in FeatureNames order, flags as 0/1.
func (f FeatureVector) Values() []float64 {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	return []float64{
		b(f.HasGaps), b(f.HasTrend), b(f.HasRates),
		f.LossFrac, f.PairFrac, f.GapRatio, f.GapCV,
		f.GapQ10, f.GapQ50, f.GapQ90,
		f.TrendPCT, f.TrendPDT, f.OWDSlope, f.QueueMean,
		f.RateRatio, f.ExpandFrac, f.ExpandRun,
	}
}

// ExtractFeatures reduces one probe record to its FeatureVector. The
// extraction is a pure function of the record: no randomness, no
// global state, so the same record yields bit-identical features under
// any pooling or worker configuration.
func ExtractFeatures(r *Record) FeatureVector {
	var f FeatureVector
	n := len(r.Recv)
	if n > 0 {
		f.LossFrac = float64(r.LossCount()) / float64(n)
	}

	// Gap features over measurable pairs.
	pairs := n - 1
	var gins, gouts []float64
	var expanded []bool
	for k := 0; k+1 < n; k++ {
		gin, gout, ok := r.PairGaps(k)
		if !ok {
			continue
		}
		gins = append(gins, gin.Seconds())
		gouts = append(gouts, gout.Seconds())
		expanded = append(expanded, gout > gin)
	}
	if pairs > 0 {
		f.PairFrac = float64(len(gouts)) / float64(pairs)
	}
	ginMean := 0.0
	if len(gins) > 0 {
		ginMean = stats.Mean(gins)
	}
	if len(gouts) > 0 && ginMean > 0 {
		f.HasGaps = true
		goutMean := stats.Mean(gouts)
		f.GapRatio = goutMean / ginMean
		if len(gouts) >= 2 && goutMean > 0 {
			f.GapCV = stats.StdDev(gouts) / goutMean
		}
		cdf := stats.NewCDF(gouts)
		f.GapQ10 = cdf.Quantile(0.10) / ginMean
		f.GapQ50 = cdf.Quantile(0.50) / ginMean
		f.GapQ90 = cdf.Quantile(0.90) / ginMean

		run, best := 0, 0
		nExp := 0
		for _, e := range expanded {
			if e {
				nExp++
				run++
				if run > best {
					best = run
				}
			} else {
				run = 0
			}
		}
		f.ExpandFrac = float64(nExp) / float64(len(expanded))
		f.ExpandRun = float64(best) / float64(pairs)
	}

	// Trend features over the received OWD series.
	owds := r.OWDSeconds()
	if len(owds) >= 4 {
		f.HasTrend = true
		g := int(math.Sqrt(float64(len(owds))))
		if g < 2 {
			g = 2
		}
		groups := stats.MedianGroups(owds, g)
		if pct := stats.PCT(groups); !math.IsNaN(pct) {
			f.TrendPCT = pct
		}
		if pdt := stats.PDT(groups); !math.IsNaN(pdt) {
			f.TrendPDT = pdt
		}
	}
	if q := r.QueueDelaysSeconds(); len(q) >= 2 && ginMean > 0 {
		idx := make([]float64, len(q))
		for i := range idx {
			idx[i] = float64(i)
		}
		if _, slope, _, err := stats.LinearFit(idx, q); err == nil {
			f.OWDSlope = slope / ginMean
		}
		f.QueueMean = stats.Mean(q) / ginMean
	}

	// Whole-stream rate features.
	if ratio := r.Ratio(); ratio > 0 {
		f.HasRates = true
		f.RateRatio = ratio
	}
	return f
}
