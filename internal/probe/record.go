package probe

import (
	"fmt"
	"time"

	"abw/internal/unit"
)

// Lost marks a packet that never reached the receiver in a Record.
const Lost = time.Duration(-1)

// Record is the outcome of sending one probing stream: per-packet send
// and receive timestamps on a common (virtual or wall) clock. Receive
// entries equal Lost for dropped packets.
type Record struct {
	Spec StreamSpec
	Sent []time.Duration
	Recv []time.Duration

	resolved int // packets either received or confirmed dropped
}

// Done reports whether every packet has been resolved: received or
// confirmed dropped. Only senders that track drops (SendOverSim, the
// live transport) maintain this; hand-built records report Done only
// when complete.
func (r *Record) Done() bool {
	return r.resolved >= r.Spec.Count || r.Complete()
}

// MarkResolved records that one more packet's fate is known. Senders
// call it once per packet on arrival or drop.
func (r *Record) MarkResolved() { r.resolved++ }

// NewRecord allocates a record for the given spec with all packets
// initially marked lost.
func NewRecord(spec StreamSpec) *Record {
	r := &Record{
		Spec: spec,
		Sent: make([]time.Duration, spec.Count),
		Recv: make([]time.Duration, spec.Count),
	}
	for i := range r.Recv {
		r.Recv[i] = Lost
	}
	return r
}

// LossCount returns the number of lost packets.
func (r *Record) LossCount() int {
	n := 0
	for _, t := range r.Recv {
		if t == Lost {
			n++
		}
	}
	return n
}

// Complete reports whether every packet arrived.
func (r *Record) Complete() bool { return r.LossCount() == 0 }

// OWDs returns the one-way delays of received packets, in packet order,
// skipping losses.
func (r *Record) OWDs() []time.Duration {
	out := make([]time.Duration, 0, len(r.Recv))
	for i, t := range r.Recv {
		if t == Lost {
			continue
		}
		out = append(out, t-r.Sent[i])
	}
	return out
}

// RelativeOWDsMs returns one-way delays in milliseconds relative to the
// minimum observed delay, the normalization the paper's Figure 5 plots.
func (r *Record) RelativeOWDsMs() []float64 {
	owds := r.OWDs()
	if len(owds) == 0 {
		return nil
	}
	min := owds[0]
	for _, d := range owds[1:] {
		if d < min {
			min = d
		}
	}
	out := make([]float64, len(owds))
	for i, d := range owds {
		out[i] = float64(d-min) / float64(time.Millisecond)
	}
	return out
}

// InputRate returns the achieved input rate Ri over the whole stream,
// measured from the actual send timestamps.
func (r *Record) InputRate() unit.Rate {
	first, last, n := r.sentSpan()
	if n < 2 {
		return 0
	}
	return unit.RateOf(r.Spec.PktSize*unit.Bytes(n-1), last-first)
}

// OutputRate returns Ro: the rate at which the stream arrived, measured
// from the first to the last received packet. Lost packets shrink the
// delivered volume accordingly.
func (r *Record) OutputRate() unit.Rate {
	var first, last time.Duration
	n := 0
	for _, t := range r.Recv {
		if t == Lost {
			continue
		}
		if n == 0 {
			first = t
		}
		if t > last {
			last = t
		}
		n++
	}
	if n < 2 || last <= first {
		return 0
	}
	return unit.RateOf(r.Spec.PktSize*unit.Bytes(n-1), last-first)
}

// Ratio returns Ro/Ri, the quantity Figures 3 and 4 sweep. It returns 0
// when either rate is unmeasurable.
func (r *Record) Ratio() float64 {
	ri := r.InputRate()
	ro := r.OutputRate()
	if ri <= 0 || ro <= 0 {
		return 0
	}
	return float64(ro) / float64(ri)
}

// PairOutputRate returns the output rate of the pair (k, k+1), or 0 if
// either packet was lost or timestamps are degenerate. Pair-based tools
// (Spruce, TOPP, pathChirp) consume this.
func (r *Record) PairOutputRate(k int) unit.Rate {
	if k < 0 || k+1 >= len(r.Recv) {
		return 0
	}
	a, b := r.Recv[k], r.Recv[k+1]
	if a == Lost || b == Lost || b <= a {
		return 0
	}
	return unit.RateOf(r.Spec.PktSize, b-a)
}

// PairInputRate returns the send rate of the pair (k, k+1).
func (r *Record) PairInputRate(k int) unit.Rate {
	if k < 0 || k+1 >= len(r.Sent) {
		return 0
	}
	a, b := r.Sent[k], r.Sent[k+1]
	if b <= a {
		return 0
	}
	return unit.RateOf(r.Spec.PktSize, b-a)
}

// Gap returns the receiver-side spacing of pair (k, k+1), or Lost when
// unmeasurable — the quantity IGI's gap model works with.
func (r *Record) Gap(k int) time.Duration {
	if k < 0 || k+1 >= len(r.Recv) {
		return Lost
	}
	a, b := r.Recv[k], r.Recv[k+1]
	if a == Lost || b == Lost {
		return Lost
	}
	return b - a
}

func (r *Record) sentSpan() (first, last time.Duration, n int) {
	if len(r.Sent) == 0 {
		return 0, 0, 0
	}
	return r.Sent[0], r.Sent[len(r.Sent)-1], len(r.Sent)
}

// String summarizes the record for diagnostics.
func (r *Record) String() string {
	return fmt.Sprintf("probe.Record{N=%d L=%dB Ri=%v Ro=%v loss=%d}",
		r.Spec.Count, r.Spec.PktSize, r.InputRate(), r.OutputRate(), r.LossCount())
}
