package probe

import (
	"math"
	"testing"
	"time"

	"abw/internal/unit"
)

// rec builds a hand-made record: sent timestamps at a fixed gap, recv
// timestamps as given (Lost entries mark drops).
func rec(gap time.Duration, recv []time.Duration) *Record {
	spec := StreamSpec{PktSize: 1000, Count: len(recv), Gaps: fixedGaps(gap, len(recv)-1)}
	r := NewRecord(spec)
	for i := range recv {
		r.Sent[i] = time.Duration(i) * gap
		r.Recv[i] = recv[i]
	}
	return r
}

func fixedGaps(g time.Duration, n int) []time.Duration {
	if n <= 0 {
		return nil
	}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = g
	}
	return out
}

func ms(xs ...float64) []time.Duration {
	out := make([]time.Duration, len(xs))
	for i, x := range xs {
		if x < 0 {
			out[i] = Lost
		} else {
			out[i] = time.Duration(x * float64(time.Millisecond))
		}
	}
	return out
}

func TestPairGapsConvention(t *testing.T) {
	r := rec(time.Millisecond, ms(5, 6.5, 6.5, 6.2, -1, 9))
	cases := []struct {
		k        int
		wantGout time.Duration
		wantOK   bool
	}{
		{0, 1500 * time.Microsecond, true}, // expanded pair
		{1, 0, false},                      // duplicate recv timestamp: gout == 0
		{2, 0, false},                      // reordered: gout < 0
		{3, 0, false},                      // second packet lost
		{4, 0, false},                      // first packet lost
		{5, 0, false},                      // out of range
		{-1, 0, false},                     // out of range
	}
	for _, tc := range cases {
		gin, gout, ok := r.PairGaps(tc.k)
		if ok != tc.wantOK || gout != tc.wantGout {
			t.Errorf("PairGaps(%d) = (%v, %v, %v), want gout %v ok %v", tc.k, gin, gout, ok, tc.wantGout, tc.wantOK)
		}
		if ok && gin != time.Millisecond {
			t.Errorf("PairGaps(%d) gin = %v, want 1ms", tc.k, gin)
		}
	}
}

func TestMeanOutputGapMatchesManual(t *testing.T) {
	r := rec(time.Millisecond, ms(5, 6, 8, -1, 12, 12.5))
	// Measurable pairs: (0,1)=1ms, (1,2)=2ms, (4,5)=0.5ms → integer mean.
	want := (1*time.Millisecond + 2*time.Millisecond + 500*time.Microsecond) / 3
	if got := r.MeanOutputGap(); got != want {
		t.Errorf("MeanOutputGap = %v, want %v", got, want)
	}
}

func TestQueueDelaysSeconds(t *testing.T) {
	r := rec(time.Millisecond, ms(5, 7, -1, 6))
	q := r.QueueDelaysSeconds()
	// OWDs: 5ms, 6ms, 3ms → min 3ms → queue delays 2ms, 3ms, 0.
	want := []float64{0.002, 0.003, 0}
	if len(q) != len(want) {
		t.Fatalf("QueueDelaysSeconds len = %d, want %d", len(q), len(want))
	}
	for i := range want {
		if math.Abs(q[i]-want[i]) > 1e-12 {
			t.Errorf("q[%d] = %g, want %g", i, q[i], want[i])
		}
	}
}

func TestPairGapAvailBwClamps(t *testing.T) {
	c := 10 * unit.Mbps
	gin := unit.GapFor(1500, c)
	if a := PairGapAvailBw(c, gin, gin); a != c {
		t.Errorf("equal gaps → %v, want full capacity %v", a, c)
	}
	if a := PairGapAvailBw(c, gin, 10*gin); a != 0 {
		t.Errorf("huge expansion → %v, want 0", a)
	}
	if a := PairGapAvailBw(c, gin, gin/2); a != c {
		t.Errorf("compressed gap → %v, want clamp at capacity", a)
	}
}

// TestExtractFeaturesEdgeCases: degenerate records must produce tagged,
// NaN-free defaults and never panic.
func TestExtractFeaturesEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		r    *Record
	}{
		{"allLost", rec(time.Millisecond, ms(-1, -1, -1, -1, -1))},
		{"singlePacket", rec(time.Millisecond, ms(5))},
		{"emptyRecord", &Record{Spec: StreamSpec{PktSize: 1000}}},
		{"twoPackets", rec(time.Millisecond, ms(5, 6))},
		{"duplicateTimestamps", rec(time.Millisecond, ms(5, 5, 5, 5, 5, 5))},
		{"reordered", rec(time.Millisecond, ms(5, 9, 6, 8, 7, 10))},
		{"oneSurvivor", rec(time.Millisecond, ms(-1, 5, -1, -1))},
		{"halfLost", rec(time.Millisecond, ms(5, -1, 6, -1, 7, -1, 8, -1))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ExtractFeatures(tc.r)
			for i, v := range f.Values() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("feature %q = %g; want finite", FeatureNames()[i], v)
				}
			}
		})
	}

	all := ExtractFeatures(rec(time.Millisecond, ms(-1, -1, -1)))
	if all.HasGaps || all.HasTrend || all.HasRates {
		t.Error("all-lost record should have every validity flag false")
	}
	if all.LossFrac != 1 {
		t.Errorf("all-lost LossFrac = %g, want 1", all.LossFrac)
	}
	dup := ExtractFeatures(rec(time.Millisecond, ms(5, 5, 5, 5, 5, 5)))
	if dup.HasGaps {
		t.Error("duplicate-timestamp record has no measurable pair; HasGaps must be false")
	}
	if dup.PairFrac != 0 {
		t.Errorf("duplicate-timestamp PairFrac = %g, want 0", dup.PairFrac)
	}
}

func TestExtractFeaturesTypicalStream(t *testing.T) {
	// Monotonically growing queueing delay: 5, 5.2, 5.4, ... ms over 20
	// packets — every gap expanded, strong increasing trend.
	recv := make([]time.Duration, 20)
	for i := range recv {
		recv[i] = time.Duration(i)*time.Millisecond + 5*time.Millisecond + time.Duration(i)*200*time.Microsecond
	}
	r := rec(time.Millisecond, recv)
	f := ExtractFeatures(r)
	if !f.HasGaps || !f.HasTrend || !f.HasRates {
		t.Fatalf("all flags should be set: %+v", f)
	}
	if f.LossFrac != 0 {
		t.Errorf("LossFrac = %g, want 0", f.LossFrac)
	}
	if f.PairFrac != 1 {
		t.Errorf("PairFrac = %g, want 1", f.PairFrac)
	}
	if f.GapRatio <= 1.1 || f.GapRatio >= 1.3 {
		t.Errorf("GapRatio = %g, want ≈1.2", f.GapRatio)
	}
	if f.TrendPCT != 1 {
		t.Errorf("TrendPCT = %g, want 1 for a monotone series", f.TrendPCT)
	}
	if f.ExpandFrac != 1 || f.ExpandRun != 1 {
		t.Errorf("ExpandFrac/Run = %g/%g, want 1/1", f.ExpandFrac, f.ExpandRun)
	}
	if f.OWDSlope <= 0 {
		t.Errorf("OWDSlope = %g, want positive", f.OWDSlope)
	}
	if f.RateRatio >= 1 {
		t.Errorf("RateRatio = %g, want < 1 for an expanding stream", f.RateRatio)
	}
}

func TestFeatureNamesMatchValues(t *testing.T) {
	names := FeatureNames()
	vals := FeatureVector{}.Values()
	if len(names) != len(vals) {
		t.Fatalf("FeatureNames has %d entries, Values %d", len(names), len(vals))
	}
	f := FeatureVector{HasGaps: true, HasTrend: true, HasRates: true}
	v := f.Values()
	if v[0] != 1 || v[1] != 1 || v[2] != 1 {
		t.Error("validity flags should flatten to leading 1s")
	}
}

func TestExtractFeaturesDeterministic(t *testing.T) {
	r := rec(time.Millisecond, ms(5, 6.5, -1, 6.2, 9, 9.1, 8.9, 12))
	a := ExtractFeatures(r)
	b := ExtractFeatures(r)
	if a != b {
		t.Errorf("extraction not deterministic: %+v vs %+v", a, b)
	}
}

func BenchmarkFeatureExtract(b *testing.B) {
	recv := make([]time.Duration, 100)
	for i := range recv {
		jit := time.Duration((i*2654435761)%977) * time.Microsecond / 10
		recv[i] = time.Duration(i)*time.Millisecond + 5*time.Millisecond + jit
	}
	r := rec(time.Millisecond, recv)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractFeatures(r)
	}
}
