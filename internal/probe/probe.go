// Package probe implements the probing-stream machinery shared by every
// estimation technique: construction of periodic packet trains, packet
// pairs, exponential chirps, and Poisson-spaced pairs, and the
// receiver-side measurements (one-way delays, input/output rates) that
// direct and iterative probing consume.
package probe

import (
	"fmt"
	"math"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

// StreamSpec describes one probing stream. Either Rate (periodic stream)
// or Gaps (arbitrary spacing, e.g. chirps) must be set.
type StreamSpec struct {
	// PktSize is the probing packet size L.
	PktSize unit.Bytes
	// Count is the number of packets N >= 2.
	Count int
	// Rate is the input rate for a periodic stream; ignored when Gaps is
	// non-nil.
	Rate unit.Rate
	// Gaps holds Count-1 explicit interdeparture times for non-periodic
	// streams.
	Gaps []time.Duration
}

// Validate checks internal consistency.
func (sp StreamSpec) Validate() error {
	if sp.PktSize <= 0 {
		return fmt.Errorf("probe: packet size %d must be positive", sp.PktSize)
	}
	if sp.Count < 2 {
		return fmt.Errorf("probe: stream needs at least 2 packets, got %d", sp.Count)
	}
	if sp.Gaps != nil {
		if len(sp.Gaps) != sp.Count-1 {
			return fmt.Errorf("probe: %d gaps for %d packets, want %d", len(sp.Gaps), sp.Count, sp.Count-1)
		}
		for i, g := range sp.Gaps {
			if g <= 0 {
				return fmt.Errorf("probe: gap %d is %v, must be positive", i, g)
			}
		}
		return nil
	}
	if sp.Rate <= 0 {
		return fmt.Errorf("probe: periodic stream needs a positive rate, got %v", sp.Rate)
	}
	return nil
}

// Departures returns the Count send offsets relative to the stream start.
func (sp StreamSpec) Departures() ([]time.Duration, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	out := make([]time.Duration, sp.Count)
	if sp.Gaps != nil {
		for i := 1; i < sp.Count; i++ {
			out[i] = out[i-1] + sp.Gaps[i-1]
		}
		return out, nil
	}
	gap := unit.GapFor(sp.PktSize, sp.Rate)
	for i := 1; i < sp.Count; i++ {
		out[i] = out[i-1] + gap
	}
	return out, nil
}

// Duration returns the stream's send duration (first to last departure),
// the paper's probing-duration knob that controls the averaging
// timescale τ.
func (sp StreamSpec) Duration() time.Duration {
	deps, err := sp.Departures()
	if err != nil {
		return 0
	}
	return deps[len(deps)-1]
}

// Bytes returns the total probe volume.
func (sp StreamSpec) Bytes() unit.Bytes { return sp.PktSize * unit.Bytes(sp.Count) }

// Periodic builds a periodic train of count packets of size at rate —
// the stream both Figure 2 and the iterative tools use. The averaging
// timescale is (count-1)·L/rate.
func Periodic(rate unit.Rate, size unit.Bytes, count int) StreamSpec {
	return StreamSpec{PktSize: size, Count: count, Rate: rate}
}

// PeriodicForDuration builds a periodic train whose send duration is
// approximately d: the explicit "probing duration = averaging timescale"
// knob from the paper's second pitfall.
func PeriodicForDuration(rate unit.Rate, size unit.Bytes, d time.Duration) StreamSpec {
	gap := unit.GapFor(size, rate)
	count := int(d/gap) + 1
	if count < 2 {
		count = 2
	}
	return StreamSpec{PktSize: size, Count: count, Rate: rate}
}

// Pair builds a single packet pair at the given rate.
func Pair(rate unit.Rate, size unit.Bytes) StreamSpec {
	return StreamSpec{PktSize: size, Count: 2, Rate: rate}
}

// Chirp builds a pathChirp-style stream: interarrivals shrink
// geometrically by factor gamma > 1, so the N−1 consecutive pairs probe
// N−1 exponentially spaced rates from lo up to hi.
func Chirp(lo, hi unit.Rate, size unit.Bytes, count int, gamma float64) (StreamSpec, error) {
	if count < 3 {
		return StreamSpec{}, fmt.Errorf("probe: chirp needs at least 3 packets")
	}
	if lo <= 0 || hi <= lo {
		return StreamSpec{}, fmt.Errorf("probe: chirp needs 0 < lo < hi (got %v, %v)", lo, hi)
	}
	if gamma <= 1 {
		return StreamSpec{}, fmt.Errorf("probe: chirp spread factor %g must exceed 1", gamma)
	}
	// First gap corresponds to rate lo; gaps shrink by gamma until the
	// last pair reaches hi (count overrides gamma if they disagree, by
	// recomputing gamma to fit exactly).
	n := count - 1
	// gap_k = gap_0 / gamma^k with gap_0 = L/lo and gap_{n-1} = L/hi:
	// gamma_fit = (hi/lo)^{1/(n-1)}.
	gammaFit := gamma
	if n > 1 {
		gammaFit = math.Pow(float64(hi)/float64(lo), 1/float64(n-1))
	}
	gaps := make([]time.Duration, n)
	g := float64(unit.GapFor(size, lo))
	for i := 0; i < n; i++ {
		gaps[i] = time.Duration(g)
		g /= gammaFit
	}
	return StreamSpec{PktSize: size, Count: count, Gaps: gaps}, nil
}

// RateAtPair returns the instantaneous probing rate of pair k (between
// packets k and k+1) for a spec with explicit gaps.
func (sp StreamSpec) RateAtPair(k int) unit.Rate {
	deps, err := sp.Departures()
	if err != nil || k < 0 || k+1 >= len(deps) {
		return 0
	}
	return unit.RateOf(sp.PktSize, deps[k+1]-deps[k])
}

// PoissonPairs builds Spruce-style probing: count packet pairs, each pair
// spaced internally to probe at rate (one tight-link transmission time of
// the probe size), with exponentially distributed inter-pair gaps of the
// given mean, emulating Poisson sampling of the avail-bw process. The
// result is returned as a single StreamSpec with explicit gaps; pair k
// consists of packets 2k and 2k+1.
func PoissonPairs(rate unit.Rate, size unit.Bytes, pairs int, meanSpacing time.Duration, r *rng.Rand) (StreamSpec, error) {
	if pairs < 1 {
		return StreamSpec{}, fmt.Errorf("probe: need at least 1 pair")
	}
	if meanSpacing <= 0 {
		return StreamSpec{}, fmt.Errorf("probe: mean spacing %v must be positive", meanSpacing)
	}
	if r == nil {
		return StreamSpec{}, fmt.Errorf("probe: PoissonPairs needs a random source")
	}
	intra := unit.GapFor(size, rate)
	gaps := make([]time.Duration, 0, 2*pairs-1)
	for k := 0; k < pairs; k++ {
		if k > 0 {
			g := time.Duration(r.Exp(meanSpacing.Seconds()) * 1e9)
			if g < intra {
				g = intra // pairs must not overlap
			}
			gaps = append(gaps, g)
		}
		gaps = append(gaps, intra)
	}
	return StreamSpec{PktSize: size, Count: 2 * pairs, Gaps: gaps}, nil
}
