package probe

import (
	"math"
	"testing"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

func TestPeriodicSpec(t *testing.T) {
	sp := Periodic(40*unit.Mbps, 1500, 100)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	deps, err := sp.Departures()
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 100 {
		t.Fatalf("departures = %d, want 100", len(deps))
	}
	gap := unit.GapFor(1500, 40*unit.Mbps) // 300µs
	for i := 1; i < len(deps); i++ {
		if deps[i]-deps[i-1] != gap {
			t.Fatalf("gap %d = %v, want %v", i, deps[i]-deps[i-1], gap)
		}
	}
	if sp.Duration() != 99*gap {
		t.Errorf("Duration = %v, want %v", sp.Duration(), 99*gap)
	}
	if sp.Bytes() != 150000 {
		t.Errorf("Bytes = %d, want 150000", sp.Bytes())
	}
}

func TestPeriodicForDuration(t *testing.T) {
	// Paper Figure 2: stream duration controls averaging timescale.
	for _, d := range []time.Duration{25, 50, 100, 150, 200} {
		d := d * time.Millisecond
		sp := PeriodicForDuration(40*unit.Mbps, 1500, d)
		got := sp.Duration()
		if math.Abs(float64(got-d)) > float64(unit.GapFor(1500, 40*unit.Mbps)) {
			t.Errorf("duration %v: got %v", d, got)
		}
	}
}

func TestPeriodicForDurationMinimumTwoPackets(t *testing.T) {
	sp := PeriodicForDuration(unit.Mbps, 1500, time.Microsecond)
	if sp.Count < 2 {
		t.Errorf("Count = %d, want >= 2", sp.Count)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []StreamSpec{
		{PktSize: 0, Count: 10, Rate: unit.Mbps},
		{PktSize: 1500, Count: 1, Rate: unit.Mbps},
		{PktSize: 1500, Count: 10},
		{PktSize: 1500, Count: 3, Gaps: []time.Duration{time.Millisecond}},
		{PktSize: 1500, Count: 3, Gaps: []time.Duration{time.Millisecond, -1}},
	}
	for i, sp := range cases {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, sp)
		}
	}
}

func TestPair(t *testing.T) {
	sp := Pair(50*unit.Mbps, 1500)
	if sp.Count != 2 {
		t.Errorf("pair count = %d", sp.Count)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChirpRates(t *testing.T) {
	sp, err := Chirp(5*unit.Mbps, 80*unit.Mbps, 1000, 17, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	// First pair probes ~lo, last pair probes ~hi, monotone increasing.
	first := sp.RateAtPair(0)
	last := sp.RateAtPair(sp.Count - 2)
	if math.Abs(first.MbpsOf()-5)/5 > 0.02 {
		t.Errorf("first pair rate = %v, want ~5Mbps", first)
	}
	if math.Abs(last.MbpsOf()-80)/80 > 0.02 {
		t.Errorf("last pair rate = %v, want ~80Mbps", last)
	}
	prev := unit.Rate(0)
	for k := 0; k+1 < sp.Count; k++ {
		r := sp.RateAtPair(k)
		if r <= prev {
			t.Fatalf("chirp rates not increasing at pair %d: %v after %v", k, r, prev)
		}
		prev = r
	}
}

func TestChirpErrors(t *testing.T) {
	if _, err := Chirp(5*unit.Mbps, 80*unit.Mbps, 1000, 2, 1.2); err == nil {
		t.Error("2-packet chirp accepted")
	}
	if _, err := Chirp(80*unit.Mbps, 5*unit.Mbps, 1000, 10, 1.2); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := Chirp(5*unit.Mbps, 80*unit.Mbps, 1000, 10, 1.0); err == nil {
		t.Error("gamma=1 accepted")
	}
}

func TestPoissonPairs(t *testing.T) {
	sp, err := PoissonPairs(100*unit.Mbps, 1500, 100, 5*time.Millisecond, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Count != 200 {
		t.Fatalf("count = %d, want 200", sp.Count)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intra-pair gaps are exactly the tight-link transmission time.
	intra := unit.GapFor(1500, 100*unit.Mbps)
	deps, err := sp.Departures()
	if err != nil {
		t.Fatal(err)
	}
	var interSum time.Duration
	for k := 0; k < 100; k++ {
		if got := deps[2*k+1] - deps[2*k]; got != intra {
			t.Fatalf("pair %d intra gap = %v, want %v", k, got, intra)
		}
		if k > 0 {
			interSum += deps[2*k] - deps[2*k-1]
		}
	}
	meanInter := interSum / 99
	if math.Abs(float64(meanInter-5*time.Millisecond)) > float64(2*time.Millisecond) {
		t.Errorf("mean inter-pair spacing = %v, want ~5ms", meanInter)
	}
}

func TestPoissonPairsErrors(t *testing.T) {
	if _, err := PoissonPairs(unit.Mbps, 1500, 0, time.Millisecond, rng.New(1)); err == nil {
		t.Error("0 pairs accepted")
	}
	if _, err := PoissonPairs(unit.Mbps, 1500, 10, 0, rng.New(1)); err == nil {
		t.Error("zero spacing accepted")
	}
	if _, err := PoissonPairs(unit.Mbps, 1500, 10, time.Millisecond, nil); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestRecordRates(t *testing.T) {
	sp := Periodic(40*unit.Mbps, 1500, 5)
	rec := NewRecord(sp)
	gap := unit.GapFor(1500, 40*unit.Mbps)
	for i := 0; i < 5; i++ {
		rec.Sent[i] = time.Duration(i) * gap
		// Receiver sees the stream compressed to 30 Mbps.
		rec.Recv[i] = time.Millisecond + time.Duration(i)*unit.GapFor(1500, 30*unit.Mbps)
	}
	if ri := rec.InputRate(); math.Abs(ri.MbpsOf()-40) > 0.1 {
		t.Errorf("InputRate = %v, want 40Mbps", ri)
	}
	if ro := rec.OutputRate(); math.Abs(ro.MbpsOf()-30) > 0.1 {
		t.Errorf("OutputRate = %v, want 30Mbps", ro)
	}
	if ratio := rec.Ratio(); math.Abs(ratio-0.75) > 0.01 {
		t.Errorf("Ratio = %g, want 0.75", ratio)
	}
}

func TestRecordLoss(t *testing.T) {
	sp := Periodic(10*unit.Mbps, 1500, 4)
	rec := NewRecord(sp)
	if rec.Complete() {
		t.Error("fresh record should be incomplete")
	}
	if rec.LossCount() != 4 {
		t.Errorf("LossCount = %d, want 4", rec.LossCount())
	}
	for i := 0; i < 4; i++ {
		rec.Sent[i] = time.Duration(i) * time.Millisecond
		if i != 2 {
			rec.Recv[i] = time.Duration(i)*time.Millisecond + 10*time.Millisecond
		}
	}
	if rec.LossCount() != 1 {
		t.Errorf("LossCount = %d, want 1", rec.LossCount())
	}
	if got := len(rec.OWDs()); got != 3 {
		t.Errorf("OWDs length = %d, want 3", got)
	}
}

func TestRelativeOWDs(t *testing.T) {
	sp := Periodic(10*unit.Mbps, 1500, 3)
	rec := NewRecord(sp)
	for i := 0; i < 3; i++ {
		rec.Sent[i] = time.Duration(i) * time.Millisecond
	}
	rec.Recv[0] = 5 * time.Millisecond  // OWD 5ms
	rec.Recv[1] = 8 * time.Millisecond  // OWD 7ms
	rec.Recv[2] = 11 * time.Millisecond // OWD 9ms
	rel := rec.RelativeOWDsMs()
	want := []float64{0, 2, 4}
	for i := range want {
		if math.Abs(rel[i]-want[i]) > 1e-9 {
			t.Fatalf("RelativeOWDsMs = %v, want %v", rel, want)
		}
	}
}

func TestPairRates(t *testing.T) {
	sp := StreamSpec{PktSize: 1500, Count: 4, Gaps: []time.Duration{
		300 * time.Microsecond, time.Millisecond, 300 * time.Microsecond,
	}}
	rec := NewRecord(sp)
	deps, err := sp.Departures()
	if err != nil {
		t.Fatal(err)
	}
	copy(rec.Sent, deps)
	for i := range rec.Recv {
		rec.Recv[i] = deps[i] + time.Millisecond
	}
	// Undisturbed: pair rates in == out.
	if in, out := rec.PairInputRate(0), rec.PairOutputRate(0); in != out {
		t.Errorf("pair 0: in %v out %v", in, out)
	}
	if got := rec.PairInputRate(0); math.Abs(got.MbpsOf()-40) > 0.1 {
		t.Errorf("pair 0 rate = %v, want 40Mbps", got)
	}
	// Lost second packet kills pair metrics.
	rec.Recv[2] = Lost
	if rec.PairOutputRate(1) != 0 || rec.PairOutputRate(2) != 0 {
		t.Error("lost packet should zero pair output rates")
	}
	if rec.Gap(1) != Lost {
		t.Error("Gap with lost packet should be Lost")
	}
}

func TestRecordString(t *testing.T) {
	rec := NewRecord(Periodic(10*unit.Mbps, 1500, 2))
	if rec.String() == "" {
		t.Error("empty String()")
	}
}
