package probe

import (
	"time"

	"abw/internal/sim"
)

// SendOverSim schedules the probing stream on the simulator starting at
// the given virtual time and returns the record, which fills in as the
// simulation executes. The caller is responsible for running the
// simulation far enough for all packets to arrive (or be dropped).
//
// flow labels the probe packets so multiple concurrent streams can share
// a path without confusing the receiver.
func SendOverSim(s *sim.Sim, route []*sim.Link, spec StreamSpec, at time.Duration, flow int) (*Record, error) {
	deps, err := spec.Departures()
	if err != nil {
		return nil, err
	}
	rec := NewRecord(spec)
	// One pair of callbacks serves the whole stream (the arrival reads
	// the sequence number off the packet), and the packets themselves
	// come from the simulation's free list: they are recycled as soon as
	// the callbacks return, so probing allocates per stream, not per
	// packet.
	onArrive := func(p *sim.Packet, t time.Duration) {
		rec.Recv[p.Seq] = t
		rec.MarkResolved()
	}
	onDrop := func(*sim.Packet, *sim.Link, time.Duration) {
		rec.MarkResolved()
	}
	for i, d := range deps {
		rec.Sent[i] = at + d
		p := s.NewPacket()
		p.Size, p.Kind, p.Flow, p.Seq, p.Route = spec.PktSize, sim.KindProbe, flow, i, route
		p.OnArrive, p.OnDrop = onArrive, onDrop
		s.Inject(p, at+d)
	}
	return rec, nil
}
