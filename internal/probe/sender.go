package probe

import (
	"time"

	"abw/internal/sim"
)

// SendOverSim schedules the probing stream on the simulator starting at
// the given virtual time and returns the record, which fills in as the
// simulation executes. The caller is responsible for running the
// simulation far enough for all packets to arrive (or be dropped).
//
// flow labels the probe packets so multiple concurrent streams can share
// a path without confusing the receiver.
func SendOverSim(s *sim.Sim, route []*sim.Link, spec StreamSpec, at time.Duration, flow int) (*Record, error) {
	deps, err := spec.Departures()
	if err != nil {
		return nil, err
	}
	rec := NewRecord(spec)
	for i, d := range deps {
		i := i
		rec.Sent[i] = at + d
		s.Inject(&sim.Packet{
			Size:  spec.PktSize,
			Kind:  sim.KindProbe,
			Flow:  flow,
			Seq:   i,
			Route: route,
			OnArrive: func(p *sim.Packet, t time.Duration) {
				rec.Recv[p.Seq] = t
				rec.MarkResolved()
			},
			OnDrop: func(*sim.Packet, *sim.Link, time.Duration) {
				rec.MarkResolved()
			},
		}, at+d)
	}
	return rec, nil
}
