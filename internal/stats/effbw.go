package stats

import (
	"fmt"
	"math"
)

// EffectiveBandwidth computes Kelly's effective-bandwidth functional
//
//	α(s) = (1/s·τ) · log E[exp(s · X_τ)]
//
// over per-window arrival volumes X_τ (in bits), where s > 0 is the
// space parameter (per bit) and tau is the window length in seconds.
// The paper's "multiple bottlenecks / burstiness" discussion points to
// this as the richer alternative to the plain avail-bw definition of
// Equation (3): unlike the mean rate, α(s) grows with burstiness, so a
// bursty source at the same mean demands more capacity to meet a given
// delay/loss constraint. As s → 0 it approaches the mean rate; as s
// grows it approaches the peak rate.
//
// windows is the series of per-window arrival volumes in bits.
func EffectiveBandwidth(windows []float64, s, tau float64) (float64, error) {
	if len(windows) == 0 {
		return 0, fmt.Errorf("stats: effective bandwidth of empty sample")
	}
	if s <= 0 || tau <= 0 {
		return 0, fmt.Errorf("stats: effective bandwidth needs s>0 and tau>0 (got s=%g tau=%g)", s, tau)
	}
	// Log-sum-exp for numerical stability: volumes can be ~1e7 bits.
	maxV := windows[0]
	for _, v := range windows {
		if v > maxV {
			maxV = v
		}
	}
	var acc float64
	for _, v := range windows {
		acc += math.Exp(s * (v - maxV))
	}
	logE := s*maxV + math.Log(acc/float64(len(windows)))
	return logE / (s * tau), nil
}
