package stats

import (
	"math"
	"strings"
	"testing"

	"abw/internal/rng"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5, 10); err == nil {
		t.Error("lo == hi accepted")
	}
	if _, err := NewHistogram(10, 5, 10); err == nil {
		t.Error("lo > hi accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 1.9, 2, 5, 9.99})
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, want := range wantCounts {
		if c, _, _ := h.Bin(i); c != want {
			t.Errorf("bin %d count = %d, want %d", i, c, want)
		}
	}
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
}

func TestHistogramOutliersAndNaN(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)
	h.Add(10) // hi edge is exclusive: counts as over
	h.Add(100)
	h.Add(math.NaN())
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers = (%d, %d), want (1, 2)", under, over)
	}
	if h.Total() != 3 {
		t.Errorf("total = %d, want 3 (NaN excluded)", h.Total())
	}
}

func TestHistogramBinEdges(t *testing.T) {
	h, err := NewHistogram(10, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, lo, hi := h.Bin(1)
	if lo != 12.5 || hi != 15 {
		t.Errorf("bin 1 edges = [%g, %g), want [12.5, 15)", lo, hi)
	}
	if h.Bins() != 4 {
		t.Errorf("Bins = %d", h.Bins())
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		h.Add(r.Uniform(0, 10))
	}
	h.Add(-5)
	out := h.Render(30)
	if !strings.Contains(out, "#") {
		t.Error("render has no bars")
	}
	if !strings.Contains(out, "below") {
		t.Error("render omits outliers")
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("render lines = %d, want 3", lines)
	}
}

func TestHistogramRoughUniformity(t *testing.T) {
	h, err := NewHistogram(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	n := 100000
	for i := 0; i < n; i++ {
		h.Add(r.Float64())
	}
	for i := 0; i < h.Bins(); i++ {
		c, _, _ := h.Bin(i)
		if math.Abs(float64(c)-float64(n)/10) > float64(n)/50 {
			t.Errorf("bin %d count %d deviates from uniform", i, c)
		}
	}
}
