package stats

import (
	"math"
)

// This file implements Pathload's one-way-delay trend analysis: the
// Pairwise Comparison Test (PCT) and the Pairwise Difference Test (PDT),
// applied to the median-of-groups robustification described in Jain &
// Dovrolis (ToN 2003). The paper's Figure 5 fallacy — "increasing OWDs is
// equivalent to Ro < Ri" — is resolved exactly by these statistics: a
// late burst can depress the output rate without creating an increasing
// trend, and PCT/PDT see through it.

// Trend is the verdict of the OWD trend analysis.
type Trend int

// Trend verdicts.
const (
	TrendAmbiguous Trend = iota // metrics disagree or are in the gray zone
	TrendIncreasing
	TrendNonIncreasing
)

// String returns a short name for the verdict.
func (t Trend) String() string {
	switch t {
	case TrendIncreasing:
		return "increasing"
	case TrendNonIncreasing:
		return "non-increasing"
	default:
		return "ambiguous"
	}
}

// PCT returns the Pairwise Comparison Test statistic of xs: the fraction
// of consecutive pairs that strictly increase. An uncorrelated series
// gives ≈ 0.5; a strongly increasing one approaches 1.
func PCT(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	inc := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1] {
			inc++
		}
	}
	return float64(inc) / float64(len(xs)-1)
}

// PDT returns the Pairwise Difference Test statistic:
// (x_n − x_1) / Σ|x_i − x_{i−1}|. It approaches 1 for a monotonically
// increasing series and 0 for a trendless one.
func PDT(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	var absSum float64
	for i := 1; i < len(xs); i++ {
		absSum += math.Abs(xs[i] - xs[i-1])
	}
	if absSum == 0 {
		return 0
	}
	return (xs[len(xs)-1] - xs[0]) / absSum
}

// TrendConfig holds the PCT/PDT decision thresholds. Zero fields take
// Pathload's published defaults.
type TrendConfig struct {
	// PCTIncrease/PCTNoIncrease bound the increasing / non-increasing
	// regions (defaults 0.66 and 0.54).
	PCTIncrease, PCTNoIncrease float64
	// PDTIncrease/PDTNoIncrease likewise (defaults 0.55 and 0.45).
	PDTIncrease, PDTNoIncrease float64
	// Groups is the number of median groups the series is reduced to
	// before testing (default: sqrt of series length).
	Groups int
}

func (c TrendConfig) withDefaults(n int) TrendConfig {
	if c.PCTIncrease == 0 {
		c.PCTIncrease = 0.66
	}
	if c.PCTNoIncrease == 0 {
		c.PCTNoIncrease = 0.54
	}
	if c.PDTIncrease == 0 {
		c.PDTIncrease = 0.55
	}
	if c.PDTNoIncrease == 0 {
		c.PDTNoIncrease = 0.45
	}
	if c.Groups == 0 {
		c.Groups = int(math.Sqrt(float64(n)))
		if c.Groups < 2 {
			c.Groups = 2
		}
	}
	return c
}

// MedianGroups reduces xs to g group medians, Pathload's robustification
// against measurement noise before trend testing.
func MedianGroups(xs []float64, g int) []float64 {
	if g <= 0 || len(xs) == 0 {
		return nil
	}
	if g > len(xs) {
		g = len(xs)
	}
	size := len(xs) / g
	out := make([]float64, 0, g)
	for i := 0; i < g; i++ {
		lo := i * size
		hi := lo + size
		if i == g-1 {
			hi = len(xs)
		}
		out = append(out, median(xs[lo:hi]))
	}
	return out
}

func median(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	n := len(tmp)
	if n == 0 {
		return math.NaN()
	}
	// Partial selection: full sort is fine at these sizes.
	quickMedianSort(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

func quickMedianSort(xs []float64) {
	// Insertion sort: groups are tiny (~sqrt of a 100-packet stream).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TrendResult carries the verdict together with the raw statistics so
// callers (and the Figure 5 experiment) can report them.
type TrendResult struct {
	Verdict Trend
	PCT     float64
	PDT     float64
}

// OWDTrend runs Pathload's trend analysis on a one-way-delay series.
func OWDTrend(owds []float64, cfg TrendConfig) TrendResult {
	c := cfg.withDefaults(len(owds))
	groups := MedianGroups(owds, c.Groups)
	pct := PCT(groups)
	pdt := PDT(groups)
	pctInc := pct > c.PCTIncrease
	pctNon := pct < c.PCTNoIncrease
	pdtInc := pdt > c.PDTIncrease
	pdtNon := pdt < c.PDTNoIncrease
	var v Trend
	switch {
	case pctInc && pdtInc:
		v = TrendIncreasing
	case pctNon && pdtNon:
		v = TrendNonIncreasing
	case pctInc || pdtInc:
		// One metric strongly indicates increase and the other is not
		// contradicting: Pathload treats this as increasing.
		if !pctNon && !pdtNon {
			v = TrendIncreasing
		} else {
			v = TrendAmbiguous
		}
	case pctNon || pdtNon:
		if !pctInc && !pdtInc {
			v = TrendNonIncreasing
		} else {
			v = TrendAmbiguous
		}
	default:
		v = TrendAmbiguous
	}
	return TrendResult{Verdict: v, PCT: pct, PDT: pdt}
}
