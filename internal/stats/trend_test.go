package stats

import (
	"math"
	"testing"

	"abw/internal/rng"
)

func TestPCTMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := PCT(xs); got != 1 {
		t.Errorf("PCT of increasing series = %g, want 1", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := PCT(rev); got != 0 {
		t.Errorf("PCT of decreasing series = %g, want 0", got)
	}
}

func TestPCTRandomNearHalf(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if got := PCT(xs); math.Abs(got-0.5) > 0.03 {
		t.Errorf("PCT of random series = %g, want ~0.5", got)
	}
}

func TestPDTMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := PDT(xs); got != 1 {
		t.Errorf("PDT of increasing series = %g, want 1", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := PDT(rev); got != -1 {
		t.Errorf("PDT of decreasing series = %g, want -1", got)
	}
}

func TestPDTTrendless(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if got := PDT(xs); math.Abs(got) > 0.05 {
		t.Errorf("PDT of random series = %g, want ~0", got)
	}
}

func TestPDTConstantSeries(t *testing.T) {
	if got := PDT([]float64{3, 3, 3}); got != 0 {
		t.Errorf("PDT of constant series = %g, want 0", got)
	}
}

func TestShortSeriesNaN(t *testing.T) {
	if !math.IsNaN(PCT([]float64{1})) || !math.IsNaN(PDT(nil)) {
		t.Error("PCT/PDT of short series should be NaN")
	}
}

func TestMedianGroups(t *testing.T) {
	xs := []float64{5, 1, 3, 9, 7, 11, 2, 8, 6}
	got := MedianGroups(xs, 3)
	// groups: [5 1 3] [9 7 11] [2 8 6] → medians 3, 9, 6
	want := []float64{3, 9, 6}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MedianGroups = %v, want %v", got, want)
		}
	}
}

func TestMedianGroupsEdges(t *testing.T) {
	if got := MedianGroups(nil, 3); got != nil {
		t.Error("MedianGroups(nil) should be nil")
	}
	if got := MedianGroups([]float64{1, 2}, 5); len(got) != 2 {
		t.Errorf("g > len collapses to len: got %v", got)
	}
	if got := MedianGroups([]float64{1, 2, 3, 4}, 2); got[0] != 1.5 || got[1] != 3.5 {
		t.Errorf("even-size medians wrong: %v", got)
	}
}

func TestOWDTrendIncreasing(t *testing.T) {
	// Steady queue buildup with mild noise: must classify increasing.
	r := rng.New(3)
	owds := make([]float64, 160)
	for i := range owds {
		owds[i] = float64(i)*0.5 + r.Norm()*2
	}
	res := OWDTrend(owds, TrendConfig{})
	if res.Verdict != TrendIncreasing {
		t.Errorf("verdict = %v (PCT=%.2f PDT=%.2f), want increasing", res.Verdict, res.PCT, res.PDT)
	}
}

func TestOWDTrendFlat(t *testing.T) {
	r := rng.New(4)
	owds := make([]float64, 160)
	for i := range owds {
		owds[i] = 200 + r.Norm()*3
	}
	res := OWDTrend(owds, TrendConfig{})
	if res.Verdict != TrendNonIncreasing {
		t.Errorf("verdict = %v (PCT=%.2f PDT=%.2f), want non-increasing", res.Verdict, res.PCT, res.PDT)
	}
}

func TestOWDTrendLateBurstIsNotIncreasing(t *testing.T) {
	// The Figure 5 scenario: flat OWDs with a sudden level shift in the
	// last few packets (a cross-traffic burst). Ro/Ri would scream
	// "overload"; trend analysis must not.
	r := rng.New(5)
	owds := make([]float64, 160)
	for i := range owds {
		owds[i] = 200 + r.Norm()*2
	}
	for i := 152; i < 160; i++ {
		owds[i] = 240 + r.Norm()*2 // late burst
	}
	res := OWDTrend(owds, TrendConfig{})
	if res.Verdict == TrendIncreasing {
		t.Errorf("late burst misclassified as increasing (PCT=%.2f PDT=%.2f)", res.PCT, res.PDT)
	}
}

func TestOWDTrendRobustToOutliers(t *testing.T) {
	// Median-of-groups should shrug off isolated spikes on a clear trend.
	r := rng.New(6)
	owds := make([]float64, 160)
	for i := range owds {
		owds[i] = float64(i) + r.Norm()
		if i%37 == 0 {
			owds[i] += 500 // spike
		}
	}
	res := OWDTrend(owds, TrendConfig{})
	if res.Verdict != TrendIncreasing {
		t.Errorf("spiky increasing series: verdict = %v, want increasing", res.Verdict)
	}
}

func TestTrendString(t *testing.T) {
	if TrendIncreasing.String() != "increasing" ||
		TrendNonIncreasing.String() != "non-increasing" ||
		TrendAmbiguous.String() != "ambiguous" {
		t.Error("Trend String names wrong")
	}
}

func TestEffectiveBandwidthLimits(t *testing.T) {
	// Constant traffic: α(s) equals the constant rate for every s.
	tau := 0.01
	rate := 10e6 // 10 Mbps
	windows := make([]float64, 100)
	for i := range windows {
		windows[i] = rate * tau
	}
	for _, s := range []float64{1e-7, 1e-5, 1e-3} {
		got, err := EffectiveBandwidth(windows, s, tau)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-rate)/rate > 1e-9 {
			t.Errorf("s=%g: effective bw of CBR = %g, want %g", s, got, rate)
		}
	}
}

func TestEffectiveBandwidthGrowsWithBurstiness(t *testing.T) {
	// Two traffic patterns with identical mean: steady vs bursty. The
	// bursty one must have strictly larger effective bandwidth — the
	// paper's argument for burstiness-aware definitions.
	tau := 0.01
	steady := make([]float64, 200)
	bursty := make([]float64, 200)
	for i := range steady {
		steady[i] = 1e5
		if i%10 == 0 {
			bursty[i] = 1e6
		}
	}
	s := 1e-5
	a1, err := EffectiveBandwidth(steady, s, tau)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := EffectiveBandwidth(bursty, s, tau)
	if err != nil {
		t.Fatal(err)
	}
	if a2 <= a1 {
		t.Errorf("effective bw: bursty %g <= steady %g", a2, a1)
	}
}

func TestEffectiveBandwidthMonotoneInS(t *testing.T) {
	r := rng.New(7)
	tau := 0.01
	windows := make([]float64, 300)
	for i := range windows {
		windows[i] = math.Abs(r.Norm()) * 1e5
	}
	prev := -math.Inf(1)
	for _, s := range []float64{1e-7, 1e-6, 1e-5, 1e-4} {
		a, err := EffectiveBandwidth(windows, s, tau)
		if err != nil {
			t.Fatal(err)
		}
		if a < prev {
			t.Errorf("effective bandwidth not monotone in s: %g then %g", prev, a)
		}
		prev = a
	}
}

func TestEffectiveBandwidthErrors(t *testing.T) {
	if _, err := EffectiveBandwidth(nil, 1, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := EffectiveBandwidth([]float64{1}, 0, 1); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := EffectiveBandwidth([]float64{1}, 1, 0); err == nil {
		t.Error("tau=0 accepted")
	}
}
