package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over a known range, used by the
// CLIs to visualize avail-bw sample paths and error distributions in
// plain text.
type Histogram struct {
	lo, hi float64
	counts []int
	under  int
	over   int
	total  int
}

// NewHistogram builds a histogram with bins equal-width bins over
// [lo, hi). Values outside the range are tallied separately.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs lo < hi (got %g, %g)", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin")
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}, nil
}

// Add tallies one value.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case math.IsNaN(v):
		h.total-- // NaNs are not observations
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		i := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// AddAll tallies a sample.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Total returns the number of observations (NaNs excluded).
func (h *Histogram) Total() int { return h.total }

// Bin returns the count of bin i and its [lo, hi) edges.
func (h *Histogram) Bin(i int) (count int, lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.counts[i], h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Outliers returns the counts below and above the range.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// Render draws the histogram as text bars of at most width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := 1
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i := range h.counts {
		c, lo, hi := h.Bin(i)
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(&b, "%10.2f–%-10.2f %6d %s\n", lo, hi, c, bar)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "%22s %6d below, %d above range\n", "", h.under, h.over)
	}
	return b.String()
}
